package pdce

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"runtime/debug"
	"strings"

	"pdce/internal/cfg"
	"pdce/internal/core"
	"pdce/internal/verify"
)

// SafeOptimize is Optimize hardened for service use: every failure
// mode degrades to a usable program plus a structured error from the
// taxonomy in errors.go, and the returned Program is never nil.
//
//   - An internal panic is recovered; the input program is returned
//     unchanged with a *PanicError, and a repro bundle (the serialized
//     input, the options, and the stack) is written to Options.ReproDir
//     when one is configured.
//   - A watchdog expiry (Options.Context or Options.RoundBudget)
//     returns the best phase-boundary program reached with a
//     *DeadlineError — correct, possibly short of the optimum.
//   - With Options.Verify set, every round's result is checked against
//     the input by the decision-enumeration oracle on a bounded
//     execution sample; a mismatch returns the last verified program
//     with a *MiscompileError.
//   - Any other error (e.g. an invalid input graph) returns the input
//     program unchanged alongside it.
//
// The successful path is identical to Optimize — in particular it is
// deterministic (Theorem 3.7: the fixpoint result is unique), so a
// successful SafeOptimize result is content-addressable by
// Program.CacheKey and safe to memoize; the pdced server's result
// cache relies on this. Errored results, being partial or degraded,
// are not.
func (p *Program) SafeOptimize(o Options) (res *Program, st Stats, err error) {
	defer func() {
		if v := recover(); v != nil {
			stack := debug.Stack()
			pe := &PanicError{Value: v, Stack: string(stack)}
			pe.Bundle, pe.BundleErr = writeReproBundle(o.ReproDir, p, o, v, stack)
			res, st, err = p, Stats{}, pe
		}
	}()
	res, st, err = p.Optimize(o)
	if res == nil {
		res = p
	}
	return res, st, err
}

// mapCoreError lifts the driver's containment errors into the public
// taxonomy; anything else passes through.
func mapCoreError(err error) error {
	var ie *core.InterruptError
	if errors.As(err, &ie) {
		return &DeadlineError{Rounds: ie.Rounds, Phase: ie.Phase, Cause: ie.Cause}
	}
	var re *core.RoundCheckError
	if errors.As(err, &re) {
		return &MiscompileError{Round: re.Round, GoodRound: re.GoodRound, Report: re.Err.Error()}
	}
	return err
}

// defaultVerifyRuns is the per-round execution sample of verified mode
// when Options.VerifyRuns is zero. Matches the scale of the repo's
// other sampling oracles (Check's default of 64 over a whole run) while
// keeping per-round cost bounded.
const defaultVerifyRuns = 48

// verifyRoundCheck builds the verified-mode oracle for one input
// program: the driver calls it after every round with the intermediate
// graph. It prefers the decision-enumeration oracle (every
// nondeterministic execution up to the run bound — exact for
// figure-sized programs) and falls back to seeded sampling when the
// decision tree exceeds the bound.
func verifyRoundCheck(orig *cfg.Graph, runs int) func(*cfg.Graph, int) error {
	if runs <= 0 {
		runs = defaultVerifyRuns
	}
	return func(g *cfg.Graph, round int) error {
		rep, err := verify.CheckTransformedExhaustive(orig, g, 0, runs)
		if err != nil {
			rep = verify.CheckTransformed(orig, g, verify.Options{Seeds: runs})
		}
		if !rep.OK() {
			return fmt.Errorf("%s", rep.String())
		}
		return nil
	}
}

// writeReproBundle serializes a panicking run — input program, options,
// panic value, stack — into dir and returns the bundle path. The
// bundle doubles as a parseable CFG-language program (everything but
// the program text is comments), so `pdce -lang cfg bundle` replays
// the input directly. An empty dir disables writing.
func writeReproBundle(dir string, p *Program, o Options, v any, stack []byte) (string, error) {
	if dir == "" {
		return "", nil
	}
	var b strings.Builder
	b.WriteString("# pdce repro bundle — replay with: pdce -lang cfg <this file>\n")
	fmt.Fprintf(&b, "# program: %s\n", p.Name())
	fmt.Fprintf(&b, "# options: mode=%v max-rounds=%d keep-synthetic=%v no-incremental=%v verify=%v round-budget=%v hot=%v\n",
		o.Mode, o.MaxRounds, o.KeepSynthetic, o.NoIncremental, o.Verify, o.RoundBudget, o.Hot != nil)
	fmt.Fprintf(&b, "# panic: %v\n#\n", v)
	for _, line := range strings.Split(strings.TrimRight(string(stack), "\n"), "\n") {
		b.WriteString("# ")
		b.WriteString(line)
		b.WriteString("\n")
	}
	b.WriteString("#\n")
	b.WriteString(p.Format())
	content := b.String()

	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	h := fnv.New32a()
	h.Write([]byte(content))
	// Stamp the request tag (the serving layer's Pdce-Request-Id) into
	// the filename so an operator can go from a failed response
	// straight to its bundle.
	tag := ""
	if o.RequestTag != "" {
		tag = "-" + sanitizeName(o.RequestTag)
	}
	path := filepath.Join(dir, fmt.Sprintf("pdce-repro-%s%s-%08x.cfg", sanitizeName(p.Name()), tag, h.Sum32()))
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// sanitizeName reduces a program name to a filesystem-safe token.
func sanitizeName(name string) string {
	mapped := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '.', r == '_', r == '-':
			return r
		default:
			return '_'
		}
	}, name)
	if mapped == "" {
		return "program"
	}
	const maxLen = 64
	if len(mapped) > maxLen {
		mapped = mapped[:maxLen]
	}
	return mapped
}
