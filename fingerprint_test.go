package pdce_test

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"pdce"
)

// TestCacheKeyProperty is the content-addressing property test: over
// 200 generated programs, any formatting perturbation of the source —
// whitespace, indentation, comments, blank lines — must hash to the
// same CacheKey, and a semantic edit (a changed assignment RHS) must
// change it. This is the contract the pdced result cache stands on.
func TestCacheKeyProperty(t *testing.T) {
	const programs = 200
	opts := pdce.Options{Mode: pdce.Dead}
	edited := 0
	for seed := 0; seed < programs; seed++ {
		p := pdce.Generate(pdce.GenParams{
			Seed:        int64(seed),
			Stmts:       10 + seed%60,
			Vars:        2 + seed%6,
			Irreducible: seed%7 == 0,
		})
		src := p.Format()
		base, err := pdce.ParseCFG(src)
		if err != nil {
			t.Fatalf("seed %d: reparsing canonical format: %v", seed, err)
		}
		want := base.CacheKey(opts)

		for pi, perturb := range perturbations {
			mutated := perturb(src)
			q, err := pdce.ParseCFG(mutated)
			if err != nil {
				t.Fatalf("seed %d perturbation %d broke the parse: %v\n%s", seed, pi, err, mutated)
			}
			if got := q.CacheKey(opts); got != want {
				t.Errorf("seed %d perturbation %d changed the key: %s != %s", seed, pi, got, want)
			}
		}

		if semantic, ok := semanticEdit(src); ok {
			edited++
			q, err := pdce.ParseCFG(semantic)
			if err != nil {
				t.Fatalf("seed %d semantic edit broke the parse: %v", seed, err)
			}
			if q.CacheKey(opts) == want {
				t.Errorf("seed %d: semantic edit did not change the key\n%s", seed, semantic)
			}
		}
	}
	if edited < programs*9/10 {
		t.Fatalf("semantic edit applied to only %d/%d programs — the negative half of the property is undertested", edited, programs)
	}

	// Option changes that affect the result (or its payload) must also
	// change the key; option changes that cannot must not.
	p := pdce.Generate(pdce.GenParams{Seed: 42, Stmts: 40})
	base := p.CacheKey(pdce.Options{Mode: pdce.Dead})
	if p.CacheKey(pdce.Options{Mode: pdce.Faint}) == base {
		t.Error("pfe and pde share a key")
	}
	if p.CacheKey(pdce.Options{Mode: pdce.Dead, MaxRounds: 1}) == base {
		t.Error("truncated and full runs share a key")
	}
	if p.CacheKey(pdce.Options{Mode: pdce.Dead, Telemetry: true}) == base {
		t.Error("instrumented and plain runs share a key (payloads differ)")
	}
	if p.CacheKey(pdce.Options{Mode: pdce.Dead, Verify: true, VerifyRuns: 7}) != base {
		t.Error("verified mode changed the key (it cannot change a successful result)")
	}
}

// perturbations are semantics-preserving rewrites of canonical CFG
// text. The "graph" header line is left alone — its quoted name is the
// only token whitespace could leak into.
var perturbations = []func(string) string{
	// Interleave comments in both syntaxes.
	func(s string) string {
		lines := strings.Split(s, "\n")
		out := []string{"# leading hash comment", "// leading slash comment"}
		for i, l := range lines {
			out = append(out, l)
			if i%3 == 0 {
				out = append(out, "  // interleaved comment")
			}
		}
		return strings.Join(out, "\n")
	},
	// Blank lines everywhere.
	func(s string) string {
		return strings.ReplaceAll(s, "\n", "\n\n")
	},
	// Trailing whitespace on every line.
	func(s string) string {
		lines := strings.Split(s, "\n")
		for i := range lines {
			if lines[i] != "" {
				lines[i] += "   "
			}
		}
		return strings.Join(lines, "\n")
	},
	// Tabs for indentation and doubled interior spacing (skipping the
	// quoted graph-name line).
	func(s string) string {
		lines := strings.Split(s, "\n")
		for i, l := range lines {
			if strings.HasPrefix(l, "graph ") {
				continue
			}
			l = strings.ReplaceAll(l, " ", "  ")
			if strings.HasPrefix(l, "    ") {
				l = "\t" + strings.TrimLeft(l, " ")
			}
			lines[i] = l
		}
		return strings.Join(lines, "\n")
	},
}

// assignLine matches an assignment statement inside a node body.
var assignLine = regexp.MustCompile(`(?m)^(\s+\w+ := )(.+)$`)

// semanticEdit changes the first assignment's RHS (t becomes t+1) —
// a minimal semantic difference that must move the content address.
func semanticEdit(src string) (string, bool) {
	loc := assignLine.FindStringSubmatchIndex(src)
	if loc == nil {
		return "", false
	}
	rhs := src[loc[4]:loc[5]]
	return src[:loc[4]] + fmt.Sprintf("(%s)+1", rhs) + src[loc[5]:], true
}
