package pdce_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pdce"
	"pdce/internal/cfg"
	"pdce/internal/core"
	"pdce/internal/faultinject"
	"pdce/internal/ir"
)

// The tests in this file exercise the fault-containment layer end to
// end through injected faults: panics, stalls, and miscompiles at the
// optimizer's phase boundaries (internal/faultinject). The injection
// hook is process-global, so none of them run in parallel.

const containSrc = `
y := a + b
if * {
    y := c
}
out(x + y)
`

func mustParse(t *testing.T, name, src string) *pdce.Program {
	t.Helper()
	p, err := pdce.ParseSource(name, src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseErrorTaxonomy(t *testing.T) {
	_, err := pdce.ParseCFG("graph \"g\"\nnode 1 { y := }\n")
	if err == nil {
		t.Fatal("invalid program parsed")
	}
	if !errors.Is(err, pdce.ErrParse) {
		t.Errorf("parse failure does not match ErrParse: %v", err)
	}
	var pe *pdce.ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("parse failure is not a *ParseError: %T", err)
	}
	if pe.Name != "cfg input" || pe.Err == nil {
		t.Errorf("ParseError incomplete: %+v", pe)
	}

	if _, err := pdce.ParseSource("broken.while", "while { }"); !errors.Is(err, pdce.ErrParse) {
		t.Errorf("ParseSource failure does not match ErrParse: %v", err)
	}
}

// TestSafeOptimizePanicContainment injects a panic into the eliminate
// phase and checks the full degradation contract: the input program
// comes back unchanged, the error is a *PanicError carrying the panic
// value and stack, and the repro bundle written to ReproDir is itself a
// parseable copy of the input.
func TestSafeOptimizePanicContainment(t *testing.T) {
	restore := faultinject.Set(func(pt faultinject.Point, _ any) {
		if pt == faultinject.EliminatePhase {
			panic("injected eliminate fault")
		}
	})
	defer restore()

	p := mustParse(t, "panic.while", containSrc)
	dir := t.TempDir()
	res, st, err := p.SafeOptimize(pdce.Options{Mode: pdce.Dead, ReproDir: dir})

	if res == nil {
		t.Fatal("SafeOptimize returned nil program")
	}
	if res.Format() != p.Format() {
		t.Error("panicked run did not return the input unchanged")
	}
	if st != (pdce.Stats{}) {
		t.Errorf("panicked run reported stats: %+v", st)
	}
	if !errors.Is(err, pdce.ErrPanic) {
		t.Fatalf("error does not match ErrPanic: %v", err)
	}
	var pe *pdce.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error is not a *PanicError: %T", err)
	}
	if pe.Value != "injected eliminate fault" {
		t.Errorf("panic value = %v", pe.Value)
	}
	if !strings.Contains(pe.Stack, "faultinject") {
		t.Errorf("stack does not show the panic site:\n%s", pe.Stack)
	}
	if pe.BundleErr != nil {
		t.Fatalf("bundle write failed: %v", pe.BundleErr)
	}
	if filepath.Dir(pe.Bundle) != dir {
		t.Fatalf("bundle %q not in repro dir %q", pe.Bundle, dir)
	}
	raw, err := os.ReadFile(pe.Bundle)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "injected eliminate fault") {
		t.Error("bundle does not record the panic value")
	}
	replay, err := pdce.ParseCFG(string(raw))
	if err != nil {
		t.Fatalf("repro bundle does not parse: %v", err)
	}
	if replay.Format() != p.Format() {
		t.Error("repro bundle program differs from the input")
	}
}

// TestSafeOptimizeWithoutReproDir checks panic containment works with
// bundle capture disabled.
func TestSafeOptimizeWithoutReproDir(t *testing.T) {
	restore := faultinject.Set(func(pt faultinject.Point, _ any) {
		if pt == faultinject.SinkPhase {
			panic("injected sink fault")
		}
	})
	defer restore()

	p := mustParse(t, "nodir.while", containSrc)
	res, _, err := p.SafeOptimize(pdce.Options{Mode: pdce.Faint})
	if res == nil || res.Format() != p.Format() {
		t.Error("panicked run did not return the input unchanged")
	}
	var pe *pdce.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error is not a *PanicError: %v", err)
	}
	if pe.Bundle != "" || pe.BundleErr != nil {
		t.Errorf("bundle recorded without a repro dir: %q %v", pe.Bundle, pe.BundleErr)
	}
}

// stallHook slows every solver node visit enough that any watchdog
// bound in the tens of milliseconds expires mid-analysis.
func stallHook() func() {
	return faultinject.Set(func(pt faultinject.Point, _ any) {
		if pt == faultinject.SolverVisit {
			time.Sleep(time.Millisecond)
		}
	})
}

// TestSafeOptimizeContextDeadline injects a solver stall and bounds the
// run with a context deadline: the result must be a correct
// phase-boundary program plus a *DeadlineError caused by the context.
func TestSafeOptimizeContextDeadline(t *testing.T) {
	restore := stallHook()
	defer restore()

	p := pdce.Generate(pdce.GenParams{Seed: 7, Stmts: 240, Vars: 6})
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	res, _, err := p.SafeOptimize(pdce.Options{Mode: pdce.Dead, Context: ctx})

	if res == nil {
		t.Fatal("SafeOptimize returned nil program")
	}
	if !errors.Is(err, pdce.ErrDeadline) {
		t.Fatalf("stalled run did not report ErrDeadline: %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("cause is not the context deadline: %v", err)
	}
	var de *pdce.DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("error is not a *DeadlineError: %T", err)
	}
	if de.Phase == "" {
		t.Errorf("DeadlineError has no phase: %+v", de)
	}
	if issues := cfg.Validate(res.Graph()); len(issues) > 0 {
		t.Fatalf("partial result is invalid: %v", issues)
	}
	if err := p.Check(res, 48); err != nil {
		t.Errorf("partial result is not a correct transformation: %v", err)
	}
}

// TestSafeOptimizeRoundBudget exercises the second watchdog condition:
// no context, but a per-round budget that the stalled solver blows.
func TestSafeOptimizeRoundBudget(t *testing.T) {
	restore := stallHook()
	defer restore()

	p := pdce.Generate(pdce.GenParams{Seed: 11, Stmts: 240, Vars: 6})
	res, _, err := p.SafeOptimize(pdce.Options{Mode: pdce.Dead, RoundBudget: 25 * time.Millisecond})

	if res == nil {
		t.Fatal("SafeOptimize returned nil program")
	}
	if !errors.Is(err, pdce.ErrDeadline) {
		t.Fatalf("stalled run did not report ErrDeadline: %v", err)
	}
	if !errors.Is(err, core.ErrRoundBudget) {
		t.Errorf("cause is not the round budget: %v", err)
	}
	if err := p.Check(res, 48); err != nil {
		t.Errorf("partial result is not a correct transformation: %v", err)
	}
}

// TestVerifiedModeMiscompileRollback corrupts the graph after the sink
// phase (replacing an out statement with skip — an observable change)
// and checks that verified mode catches it, rolls back to the last
// verified snapshot, and reports a *MiscompileError.
func TestVerifiedModeMiscompileRollback(t *testing.T) {
	corrupted := false
	restore := faultinject.Set(func(pt faultinject.Point, payload any) {
		if pt != faultinject.SinkPhase || corrupted {
			return
		}
		g := payload.(*cfg.Graph)
		for _, n := range g.Nodes() {
			for i, s := range n.Stmts {
				if _, ok := s.(ir.Out); ok {
					n.Stmts[i] = ir.Skip{}
					corrupted = true
					return
				}
			}
		}
	})
	defer restore()

	p := mustParse(t, "miscompile.while", containSrc)
	res, _, err := p.SafeOptimize(pdce.Options{Mode: pdce.Dead, Verify: true})

	if !corrupted {
		t.Fatal("fault injection never fired")
	}
	if res == nil {
		t.Fatal("SafeOptimize returned nil program")
	}
	if !errors.Is(err, pdce.ErrMiscompile) {
		t.Fatalf("miscompiled run did not report ErrMiscompile: %v", err)
	}
	var me *pdce.MiscompileError
	if !errors.As(err, &me) {
		t.Fatalf("error is not a *MiscompileError: %T", err)
	}
	if me.Round < 1 || me.GoodRound != 0 {
		t.Errorf("unexpected rollback rounds: %+v", me)
	}
	if me.Report == "" {
		t.Error("MiscompileError carries no oracle report")
	}
	// The rolled-back program is the round-0 snapshot: semantically the
	// input, with the miscompiled sink round discarded.
	if err := p.Check(res, 48); err != nil {
		t.Errorf("rolled-back result is not semantics-preserving: %v", err)
	}
}

// TestVerifiedModeCleanRun checks verified mode is invisible on healthy
// runs: same result as plain optimization, no error.
func TestVerifiedModeCleanRun(t *testing.T) {
	p := pdce.Generate(pdce.GenParams{Seed: 3, Stmts: 60, Vars: 5})
	plain, _, err := p.Optimize(pdce.Options{Mode: pdce.Faint})
	if err != nil {
		t.Fatal(err)
	}
	verified, _, err := p.SafeOptimize(pdce.Options{Mode: pdce.Faint, Verify: true, VerifyRuns: 16})
	if err != nil {
		t.Fatalf("verified clean run reported: %v", err)
	}
	if verified.Format() != plain.Format() {
		t.Error("verified mode changed the optimization result")
	}
}

// TestOptimizeAllPanicContainment checks the batch path: one job
// panics, the pool survives, the job degrades to its unchanged input
// with a repro bundle, and every other job is optimized normally.
func TestOptimizeAllPanicContainment(t *testing.T) {
	progs := batchPrograms(6)
	victim := progs[2].Name()
	restore := faultinject.Set(func(pt faultinject.Point, payload any) {
		if pt == faultinject.BatchJob && payload == victim {
			panic("injected batch fault")
		}
	})
	defer restore()

	dir := t.TempDir()
	results := pdce.OptimizeAll(progs, pdce.Options{Mode: pdce.Dead, ReproDir: dir}, 4)
	for i, r := range results {
		if i == 2 {
			if !errors.Is(r.Err, pdce.ErrPanic) {
				t.Fatalf("victim job error = %v", r.Err)
			}
			if r.Program == nil || r.Program.Format() != progs[i].Format() {
				t.Error("victim job did not degrade to its unchanged input")
			}
			var pe *pdce.PanicError
			if !errors.As(r.Err, &pe) || pe.Bundle == "" {
				t.Fatalf("victim job has no repro bundle: %v", r.Err)
			}
			if _, err := os.Stat(pe.Bundle); err != nil {
				t.Errorf("repro bundle missing: %v", err)
			}
			continue
		}
		if r.Err != nil {
			t.Errorf("job %d failed: %v", i, r.Err)
		}
	}
}

// TestOptimizeAllCancellation cancels a batch up front: every job must
// report promptly, with context errors for the untouched ones.
func TestOptimizeAllCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	progs := batchPrograms(5)
	results := pdce.OptimizeAll(progs, pdce.Options{Mode: pdce.Dead, Context: ctx}, 2)
	if len(results) != len(progs) {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r.Err == nil {
			t.Errorf("job %d of a cancelled batch reported success", i)
		}
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("job %d error = %v, want context.Canceled", i, r.Err)
		}
	}
}

// FuzzSafeOptimize is the containment smoke oracle: whatever the input
// and options, SafeOptimize must not panic, must return a non-nil
// program, and that program must be a structurally valid graph; on
// clean runs it must also preserve semantics.
func FuzzSafeOptimize(f *testing.F) {
	seed1, err := pdce.ParseSource("seed1", containSrc)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed1.Format(), uint8(0))
	f.Add(pdce.Generate(pdce.GenParams{Seed: 1, Stmts: 40, Vars: 4}).Format(), uint8(1))
	f.Add(pdce.Generate(pdce.GenParams{Seed: 2, Stmts: 30, Vars: 3, Irreducible: true}).Format(), uint8(9))
	f.Add("graph \"g\"\nnode a { out(x) }\nedge s a\nedge a e\n", uint8(17))
	f.Add("node 1 { y := }", uint8(0))

	f.Fuzz(func(t *testing.T, src string, knobs uint8) {
		p, err := pdce.ParseCFG(src)
		if err != nil {
			if !errors.Is(err, pdce.ErrParse) {
				t.Fatalf("parse failure outside the taxonomy: %v", err)
			}
			return
		}
		o := pdce.Options{Mode: pdce.Dead}
		if knobs&1 != 0 {
			o.Mode = pdce.Faint
		}
		o.MaxRounds = int(knobs>>1) & 3
		if knobs&8 != 0 {
			o.Verify = true
			o.VerifyRuns = 4
		}
		if knobs&16 != 0 {
			o.NoIncremental = true
		}
		res, _, err := p.SafeOptimize(o)
		if res == nil {
			t.Fatal("SafeOptimize returned nil program")
		}
		if issues := cfg.Validate(res.Graph()); len(issues) > 0 {
			t.Fatalf("SafeOptimize returned an invalid graph: %v", issues)
		}
		if err == nil {
			if cerr := p.Check(res, 8); cerr != nil {
				t.Fatalf("clean run broke semantics: %v", cerr)
			}
		}
	})
}
