package pdce_test

import (
	"os"
	"testing"
	"time"

	"pdce/internal/core"
	"pdce/internal/dataflow"
	"pdce/internal/progen"
)

// TestBenchSmoke is the `make bench-smoke` guard: a tiny-n scaling run
// over the three dataflow engines that must hold on every commit.
//
// Two properties are asserted. First, the deterministic one: dense,
// sparse, and auto produce byte-identical programs. Second, the cost
// one: the auto heuristic must track the dense engine within a slack
// factor. Forced sparse is intentionally NOT asserted to beat dense
// here — at small n the word-parallel dense engine wins (one vector op
// covers 64 patterns), and the density heuristic exists precisely to
// keep such cases on the dense path; asserting auto ≤ slack·dense
// catches a broken heuristic that strands small programs on per-bit
// propagation.
//
// Wall-clock assertions flake under load, so the test is opt-in via
// PDCE_BENCH_SMOKE=1 (the Makefile target sets it) and uses best-of-3
// timings with a generous slack.
func TestBenchSmoke(t *testing.T) {
	if os.Getenv("PDCE_BENCH_SMOKE") == "" {
		t.Skip("set PDCE_BENCH_SMOKE=1 (or run `make bench-smoke`)")
	}
	const slack = 2.0
	for _, n := range []int{256, 1024} {
		g := progen.Generate(progen.Params{Seed: 42, Stmts: n})
		times := map[dataflow.SolverMode]time.Duration{}
		texts := map[dataflow.SolverMode]string{}
		for _, mode := range []dataflow.SolverMode{dataflow.SolveDense, dataflow.SolveSparse, dataflow.SolveAuto} {
			best := time.Duration(1<<63 - 1)
			for rep := 0; rep < 3; rep++ {
				start := time.Now()
				out, _, err := core.Transform(g, core.Options{Mode: core.ModeDead, Solver: mode})
				if d := time.Since(start); d < best {
					best = d
				}
				if err != nil {
					t.Fatalf("n=%d mode=%v: %v", n, mode, err)
				}
				texts[mode] = out.Format()
			}
			times[mode] = best
		}
		if texts[dataflow.SolveSparse] != texts[dataflow.SolveDense] ||
			texts[dataflow.SolveAuto] != texts[dataflow.SolveDense] {
			t.Fatalf("n=%d: engine outputs differ", n)
		}
		dense, auto := times[dataflow.SolveDense], times[dataflow.SolveAuto]
		if float64(auto) > slack*float64(dense) {
			t.Errorf("n=%d: auto engine took %v, more than %.1fx dense (%v) — density heuristic regressed",
				n, auto, slack, dense)
		}
		t.Logf("n=%d: dense %v, sparse %v, auto %v", n, dense, times[dataflow.SolveSparse], auto)
	}
}
