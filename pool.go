package pdce

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pdce/internal/faultinject"
	"pdce/internal/obs"
)

// Pool is a cluster-aware client for a set of pdced replicas. It
// layers four behaviours over the single-replica Client:
//
//   - Affinity routing: requests are routed by consistent hashing over
//     the program's content address (Program.CacheKey), so repeated
//     submissions of the same program land on the replica whose LRU
//     already holds the byte-identical result. Because the optimizer
//     is deterministic (DESIGN.md §9), replica choice is purely a
//     cache-locality decision — any replica returns the same bytes.
//   - Health-driven membership: replicas that fail /healthz, report
//     draining, or error at the transport level are ejected from
//     routing and probed back in by a background prober.
//   - Bounded retry: failed attempts back off exponentially with
//     jitter and fail over to the next ring member; a server-sent
//     Retry-After (429/503) is honored as a per-replica cooldown.
//   - Hedging (opt-in): a second replica is raced after a p95-derived
//     delay; the first response wins and the loser is cancelled. A
//     warm ring makes hedges nearly free — the hedge target answers
//     from its cache or coalesces onto an in-flight computation.
//
// Construct with NewPool, stop the prober with Close. Methods are safe
// for concurrent use.
type Pool struct {
	opts    PoolOptions
	members []*member
	ring    []ringSlot
	stats   *obs.ClientStats
	jitter  *lockedRand

	// sleep is the backoff clock, injectable so retry tests observe
	// requested delays instead of serving them in real time.
	sleep func(ctx context.Context, d time.Duration) error

	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// PoolOptions configures a Pool. The zero value selects the defaults
// documented per field.
type PoolOptions struct {
	// HTTPClient substitutes the transport shared by every replica
	// client (custom timeouts, test doubles).
	HTTPClient *http.Client
	// Retry bounds the failover loop (see RetryPolicy).
	Retry RetryPolicy
	// VirtualNodes is the number of ring points per replica (default
	// 64). More points smooth the key distribution at the cost of a
	// larger ring.
	VirtualNodes int
	// ProbeInterval is the background health-probe period (default 2s;
	// negative disables the prober — ejected replicas then return only
	// via an explicit Probe call). ProbeTimeout bounds each probe
	// (default 1s).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// Hedge enables hedged requests: when a primary attempt has not
	// answered after HedgeDelay, a second replica is raced against it.
	// HedgeDelay 0 derives the delay from the pool's observed p95
	// latency (50ms until enough samples exist).
	Hedge      bool
	HedgeDelay time.Duration
	// Seed seeds the backoff jitter (0 = wall clock). Fixing it makes
	// retry schedules reproducible in tests.
	Seed int64
	// Traces, when set, records a client-side span tree per request —
	// one root ("client.request"/"client.submit", service "pool") with
	// a child per attempt and hedge — and, after a success, exports the
	// completed trace to the winning replica's /debug/traces so server
	// and client halves meet in one store. Nil disables tracing at the
	// cost of one pointer check per request.
	Traces *obs.TraceStore
}

func (o PoolOptions) withDefaults() PoolOptions {
	o.Retry = o.Retry.withDefaults()
	if o.VirtualNodes <= 0 {
		o.VirtualNodes = 64
	}
	if o.ProbeInterval == 0 {
		o.ProbeInterval = 2 * time.Second
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = time.Second
	}
	return o
}

// member is one replica: its client, health flag, and server-directed
// cooldown deadline (unix nanoseconds; 0 = none).
type member struct {
	base     string
	client   *Client
	healthy  atomic.Bool
	cooldown atomic.Int64
}

func (m *member) cooldownLeft(now time.Time) time.Duration {
	until := m.cooldown.Load()
	if until == 0 {
		return 0
	}
	if left := time.Duration(until - now.UnixNano()); left > 0 {
		return left
	}
	return 0
}

// ringSlot is one virtual node of the consistent-hash ring.
type ringSlot struct {
	hash uint64
	m    *member
}

// NewPool builds a pool over the given replica base URLs (at least
// one; duplicates are rejected) and starts the health prober.
func NewPool(replicas []string, opts PoolOptions) (*Pool, error) {
	if len(replicas) == 0 {
		return nil, errors.New("pdce: pool needs at least one replica")
	}
	opts = opts.withDefaults()
	hc := opts.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	seed := opts.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	p := &Pool{
		opts:   opts,
		stats:  &obs.ClientStats{},
		jitter: newLockedRand(seed),
		sleep:  sleepCtx,
		stop:   make(chan struct{}),
	}
	seen := make(map[string]bool, len(replicas))
	for _, r := range replicas {
		base := strings.TrimRight(r, "/")
		if seen[base] {
			return nil, fmt.Errorf("pdce: duplicate pool replica %q", base)
		}
		seen[base] = true
		m := &member{base: base, client: NewClient(base).WithHTTPClient(hc)}
		m.healthy.Store(true)
		p.members = append(p.members, m)
	}
	for _, m := range p.members {
		for v := 0; v < opts.VirtualNodes; v++ {
			p.ring = append(p.ring, ringSlot{hash: hashKey(m.base + "#" + strconv.Itoa(v)), m: m})
		}
	}
	sort.Slice(p.ring, func(i, j int) bool { return p.ring[i].hash < p.ring[j].hash })
	if opts.ProbeInterval > 0 {
		p.wg.Add(1)
		go p.probeLoop()
	}
	return p, nil
}

// Close stops the background prober. The pool remains usable (routing
// keeps working on the last known health state).
func (p *Pool) Close() {
	p.closeOnce.Do(func() { close(p.stop) })
	p.wg.Wait()
}

// Stats exposes the pool's client-side counters.
func (p *Pool) Stats() *obs.ClientStats { return p.stats }

// Members reports each replica and its current health, in
// construction order.
func (p *Pool) Members() []MemberStatus {
	out := make([]MemberStatus, len(p.members))
	for i, m := range p.members {
		out[i] = MemberStatus{URL: m.base, Healthy: m.healthy.Load()}
	}
	return out
}

// MemberStatus is one replica's view in Members.
type MemberStatus struct {
	URL     string
	Healthy bool
}

// hashKey maps a string to a ring position. SHA-256 (truncated) rather
// than a fast non-cryptographic hash: vnode labels and test keys are
// near-identical short strings, and weak avalanche behaviour there
// clusters the ring badly enough to break balance.
func hashKey(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// candidates returns every replica in ring order starting at key's
// position: index 0 is the key's home replica, the rest the failover
// sequence. Health is deliberately not consulted here — the home
// assignment must be stable under churn so an ejected replica gets its
// keys back the moment it is readmitted.
func (p *Pool) candidates(key string) []*member {
	h := hashKey(key)
	start := sort.Search(len(p.ring), func(i int) bool { return p.ring[i].hash >= h })
	out := make([]*member, 0, len(p.members))
	seen := make(map[*member]bool, len(p.members))
	for i := 0; i < len(p.ring) && len(out) < len(p.members); i++ {
		m := p.ring[(start+i)%len(p.ring)].m
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}

// affinityKey computes the routing key for one request: the same
// content address the server caches under (Program.CacheKey over the
// parsed, canonically re-rendered program, plus the explain variable
// when one is requested). Unparseable sources fall back to hashing the
// raw bytes — the server will reject them, but they still route
// deterministically.
func (p *Pool) affinityKey(name, source string, o RequestOptions) string {
	if name == "" {
		name = "request" // the server's default, so keys match its cache keys
	}
	lang := o.Lang
	if lang == "" {
		lang = DetectLang(source)
	}
	var prog *Program
	var err error
	switch lang {
	case "cfg":
		prog, err = ParseCFG(source)
	default:
		prog, err = ParseSource(name, source)
	}
	if err != nil {
		p.stats.AddParseFallback()
		sum := sha256.Sum256([]byte(lang + "\x00" + name + "\x00" + source))
		return hex.EncodeToString(sum[:])
	}
	opt := Options{Mode: o.Mode, MaxRounds: o.MaxRounds, Telemetry: o.Telemetry, Trace: o.Trace}
	if o.Explain != "" {
		opt.Trace = true
	}
	key := prog.CacheKey(opt)
	if o.Explain != "" {
		sum := sha256.Sum256([]byte(key + "|explain=" + o.Explain))
		key = hex.EncodeToString(sum[:])
	}
	return key
}

// reqBudget caps the wire requests of one logical call. Retries and
// hedges draw from the same pool — MaxAttempts bounds failover rounds,
// but with hedging each round can cost two requests, and the budget is
// what keeps that amplification bounded cluster-wide.
type reqBudget struct {
	mu   sync.Mutex
	left int
}

func (b *reqBudget) take() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.left <= 0 {
		return false
	}
	b.left--
	return true
}

// errRequestBudget aborts the failover loop once the per-call request
// budget (RetryPolicy.MaxTotalRequests) is spent.
var errRequestBudget = errors.New("pdce: per-request budget exhausted")

// Optimize submits one program to the cluster with affinity routing,
// retry, and (when enabled) hedging. The semantics match
// Client.Optimize: non-2xx outcomes surface as *ServerError, degraded
// results as 200s with resp.Degraded set. Deterministic failures (bad
// request, parse error, contained panic) are never retried — every
// replica would answer them identically.
func (p *Pool) Optimize(ctx context.Context, name, source string, o RequestOptions) (resp *OptimizeResponse, cs CacheState, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	key := p.affinityKey(name, source, o)
	cands := p.candidates(key)
	home := cands[0]
	start := time.Now()
	// The root span joins any caller-attached trace (e.g. a batch
	// driver tracing its own loop) and fathers one child per wire
	// attempt. It is nil — and every operation on it free — when
	// PoolOptions.Traces is unset.
	root := p.opts.Traces.StartSpan("client.request", "pool", obs.SpanFromContext(ctx).Context())
	root.SetAttr("program", name)
	defer func() {
		if err != nil {
			root.SetError(spanErrClass(ctx, err))
			root.End()
		}
	}()
	budget := &reqBudget{left: p.opts.Retry.MaxTotalRequests}
	var lastErr error
	for attempt := 0; attempt < p.opts.Retry.MaxAttempts; attempt++ {
		m, cooldown := p.pick(cands, attempt)
		delay := cooldown
		if attempt > 0 {
			if d := p.opts.Retry.delay(attempt, p.jitter.Float64); d > delay {
				delay = d
			}
		}
		if delay > 0 {
			if err := p.sleep(ctx, delay); err != nil {
				return nil, "", err
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, "", err
		}
		resp, cs, winner, err := p.attempt(ctx, m, p.hedgeTarget(cands, m), budget, root, attempt, name, source, o)
		if err == nil {
			p.stats.RecordLatency(time.Since(start))
			if winner == home {
				p.stats.AddAffinityHit()
				root.SetAttr("affinity", "hit")
			} else {
				p.stats.AddAffinityMiss()
				root.SetAttr("affinity", "miss")
			}
			root.SetAttr("replica", winner.base)
			root.SetInt("attempts", int64(attempt+1))
			root.End()
			p.exportTrace(ctx, winner, root.TraceID())
			return resp, cs, nil
		}
		if errors.Is(err, errRequestBudget) {
			if lastErr == nil {
				lastErr = err
			}
			return nil, "", fmt.Errorf("pdce: request budget (%d) exhausted: %w",
				p.opts.Retry.MaxTotalRequests, lastErr)
		}
		if ctx.Err() != nil {
			return nil, "", err
		}
		if !classify(err).retry {
			return nil, "", err
		}
		lastErr = err
		p.stats.AddFailover()
	}
	return nil, "", fmt.Errorf("pdce: all %d attempts failed: %w", p.opts.Retry.MaxAttempts, lastErr)
}

// spanErrClass maps a pool-level failure to a span error class: the
// server's own failure kind when one came back, "canceled" for a
// caller-abandoned request, "transport" for everything that never got
// an HTTP answer.
func spanErrClass(ctx context.Context, err error) string {
	if ctx.Err() != nil {
		return "canceled"
	}
	var se *ServerError
	if errors.As(err, &se) {
		if se.Kind != "" {
			return se.Kind
		}
		return "http-" + strconv.Itoa(se.Status)
	}
	return "transport"
}

// exportTrace best-effort pushes the pool's half of a completed trace
// to the replica that answered, so /debug/traces/{id} there shows the
// full client→server tree. Failures are swallowed — exporting
// telemetry must never fail a request that already succeeded.
func (p *Pool) exportTrace(ctx context.Context, m *member, traceID string) {
	if p.opts.Traces == nil || traceID == "" {
		return
	}
	spans := p.opts.Traces.Export(traceID)
	if len(spans) == 0 {
		return // sampled out locally: nothing to ship
	}
	ectx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 2*time.Second)
	defer cancel()
	m.client.PushTraces(ectx, spans)
}

// pick selects the replica for one attempt: the first healthy,
// cooldown-free candidate starting at the attempt's rotation; else the
// healthy one whose cooldown expires soonest (the returned duration is
// the wait the caller must honor — this is where a 429's Retry-After
// becomes a real delay); else, with every replica ejected, the
// rotation's candidate anyway — health data may be stale and a dead
// ring has nothing to lose.
func (p *Pool) pick(cands []*member, attempt int) (*member, time.Duration) {
	n := len(cands)
	now := time.Now()
	for i := 0; i < n; i++ {
		m := cands[(attempt+i)%n]
		if m.healthy.Load() && m.cooldownLeft(now) <= 0 {
			return m, 0
		}
	}
	var best *member
	var bestLeft time.Duration
	for i := 0; i < n; i++ {
		m := cands[(attempt+i)%n]
		if !m.healthy.Load() {
			continue
		}
		if left := m.cooldownLeft(now); best == nil || left < bestLeft {
			best, bestLeft = m, left
		}
	}
	if best != nil {
		return best, bestLeft
	}
	m := cands[attempt%n]
	return m, m.cooldownLeft(now)
}

// hedgeTarget returns the replica a hedge would race against primary:
// the next healthy, cooldown-free candidate after it (nil when hedging
// is off or no distinct target exists).
func (p *Pool) hedgeTarget(cands []*member, primary *member) *member {
	if !p.opts.Hedge {
		return nil
	}
	now := time.Now()
	idx := 0
	for i, m := range cands {
		if m == primary {
			idx = i
			break
		}
	}
	for i := 1; i < len(cands); i++ {
		m := cands[(idx+i)%len(cands)]
		if m != primary && m.healthy.Load() && m.cooldownLeft(now) <= 0 {
			return m
		}
	}
	return nil
}

// attemptResult is one arm's outcome in a hedged race.
type attemptResult struct {
	resp *OptimizeResponse
	cs   CacheState
	m    *member
	err  error
}

// attempt performs one (possibly hedged) try. Failure side effects —
// failure counters, ejection, cooldown — are applied here for every
// failed arm, including a losing hedge; the caller only decides
// whether the returned error is worth another attempt. The primary
// send and the hedge each draw one request from the budget; a hedge
// the budget cannot fund is silently skipped, a primary it cannot
// fund aborts with errRequestBudget.
func (p *Pool) attempt(ctx context.Context, primary, hedge *member, budget *reqBudget, root *obs.Span, attemptNo int, name, source string, o RequestOptions) (*OptimizeResponse, CacheState, *member, error) {
	if !budget.take() {
		return nil, "", primary, errRequestBudget
	}
	asp := root.Child("client.attempt")
	asp.SetAttr("replica", primary.base)
	asp.SetInt("attempt", int64(attemptNo))
	if hedge == nil {
		r := p.send(ctx, primary, asp, name, source, o)
		return r.resp, r.cs, r.m, r.err
	}
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	resc := make(chan attemptResult, 2) // buffered: the losing arm must never block
	go func() { resc <- p.send(actx, primary, asp, name, source, o) }()
	timer := time.NewTimer(p.hedgeDelay())
	defer timer.Stop()
	outstanding, hedged := 1, false
	for {
		select {
		case r := <-resc:
			outstanding--
			if r.err == nil {
				if hedged && r.m == hedge {
					p.stats.AddHedgeWin()
				}
				return r.resp, r.cs, r.m, nil
			}
			if outstanding == 0 {
				return nil, "", r.m, r.err
			}
		case <-timer.C:
			if !budget.take() {
				continue // the hedge is an optimization; the budget says no
			}
			hedged = true
			faultinject.Fire(faultinject.ClientHedge, hedge.base)
			p.stats.AddHedge()
			outstanding++
			hsp := root.Child("client.hedge")
			hsp.SetAttr("replica", hedge.base)
			go func() { resc <- p.send(actx, hedge, hsp, name, source, o) }()
		case <-ctx.Done():
			return nil, "", primary, ctx.Err()
		}
	}
}

// send performs one attempt against one replica and applies its
// failure side effects. sp is the attempt's span (nil when tracing is
// off): attaching it to the context is what makes Client.Optimize
// stamp this arm's traceparent on the wire, so the server's root span
// becomes this attempt's child — each hedge arm parents its own
// server-side subtree.
func (p *Pool) send(ctx context.Context, m *member, sp *obs.Span, name, source string, o RequestOptions) attemptResult {
	faultinject.Fire(faultinject.ClientDial, m.base)
	p.stats.AddAttempt(m.base)
	resp, cs, err := m.client.Optimize(obs.ContextWithSpan(ctx, sp), name, source, o)
	if err != nil {
		if ctx.Err() == nil {
			p.applyFailure(m, err)
		}
		sp.SetError(spanErrClass(ctx, err))
	}
	sp.End()
	return attemptResult{resp: resp, cs: cs, m: m, err: err}
}

func (p *Pool) applyFailure(m *member, err error) {
	p.stats.AddFailure(m.base)
	dec := classify(err)
	if dec.eject {
		p.eject(m)
	}
	if dec.cooldown > 0 {
		m.cooldown.Store(time.Now().Add(dec.cooldown).UnixNano())
	}
}

func (p *Pool) hedgeDelay() time.Duration {
	if p.opts.HedgeDelay > 0 {
		return p.opts.HedgeDelay
	}
	if p95 := p.stats.P95(); p95 > 0 {
		return p95
	}
	return 50 * time.Millisecond
}

func (p *Pool) eject(m *member) {
	if m.healthy.CompareAndSwap(true, false) {
		p.stats.AddEjection(m.base)
	}
}

func (p *Pool) readmit(m *member) {
	if m.healthy.CompareAndSwap(false, true) {
		m.cooldown.Store(0)
		p.stats.AddReadmission(m.base)
	}
}

// --- health probing ---------------------------------------------------

func (p *Pool) probeLoop() {
	defer p.wg.Done()
	t := time.NewTimer(p.probeDelay())
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.Probe()
			t.Reset(p.probeDelay())
		}
	}
}

// probeDelay jitters the probe interval uniformly in [0.8, 1.2)× so a
// fleet of pools started together does not synchronize its health
// probes into a periodic thundering herd against the replicas.
func (p *Pool) probeDelay() time.Duration {
	return time.Duration(float64(p.opts.ProbeInterval) * (0.8 + 0.4*p.jitter.Float64()))
}

// Probe runs one synchronous health pass over every replica: /healthz
// answering "ok" readmits an ejected replica, anything else (draining,
// non-2xx, transport failure) ejects it. The background prober calls
// this every ProbeInterval; tests call it directly for deterministic
// membership transitions.
func (p *Pool) Probe() {
	for _, m := range p.members {
		ctx, cancel := context.WithTimeout(context.Background(), p.opts.ProbeTimeout)
		status, err := m.client.Health(ctx)
		cancel()
		if err == nil && status == "ok" {
			p.readmit(m)
		} else {
			p.eject(m)
		}
	}
}

// --- async submission -------------------------------------------------

// Submit enqueues one program on the cluster's durable async queues
// with affinity routing and retry (no hedging — a submission is one
// cheap fsync'd append, and racing two replicas would durably enqueue
// the job twice). It returns the receipt together with the base URL of
// the replica that accepted it: the queue is per-replica state, so
// result polls must go back to that replica (PollResult does).
func (p *Pool) Submit(ctx context.Context, name, source string, o RequestOptions) (resp *SubmitResponse, replica string, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	key := p.affinityKey(name, source, o)
	cands := p.candidates(key)
	root := p.opts.Traces.StartSpan("client.submit", "pool", obs.SpanFromContext(ctx).Context())
	root.SetAttr("program", name)
	defer func() {
		if err != nil {
			root.SetError(spanErrClass(ctx, err))
			root.End()
		}
	}()
	budget := &reqBudget{left: p.opts.Retry.MaxTotalRequests}
	var lastErr error
	for attempt := 0; attempt < p.opts.Retry.MaxAttempts; attempt++ {
		m, cooldown := p.pick(cands, attempt)
		delay := cooldown
		if attempt > 0 {
			if d := p.opts.Retry.delay(attempt, p.jitter.Float64); d > delay {
				delay = d
			}
		}
		if delay > 0 {
			if err := p.sleep(ctx, delay); err != nil {
				return nil, "", err
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, "", err
		}
		if !budget.take() {
			if lastErr == nil {
				lastErr = errRequestBudget
			}
			return nil, "", fmt.Errorf("pdce: request budget (%d) exhausted: %w",
				p.opts.Retry.MaxTotalRequests, lastErr)
		}
		faultinject.Fire(faultinject.ClientDial, m.base)
		p.stats.AddAttempt(m.base)
		asp := root.Child("client.attempt")
		asp.SetAttr("replica", m.base)
		asp.SetInt("attempt", int64(attempt))
		resp, err := m.client.Submit(obs.ContextWithSpan(ctx, asp), name, source, o)
		if err == nil {
			asp.End()
			root.SetAttr("replica", m.base)
			if resp.ID != "" {
				root.SetAttr("job", resp.ID)
			}
			root.End()
			p.exportTrace(ctx, m, root.TraceID())
			return resp, m.base, nil
		}
		asp.SetError(spanErrClass(ctx, err))
		asp.End()
		if ctx.Err() == nil {
			p.applyFailure(m, err)
		}
		if ctx.Err() != nil {
			return nil, "", err
		}
		if !classify(err).retry {
			return nil, "", err
		}
		lastErr = err
		p.stats.AddFailover()
	}
	return nil, "", fmt.Errorf("pdce: all %d attempts failed: %w", p.opts.Retry.MaxAttempts, lastErr)
}

// SubmitStatus is one program's outcome in SubmitAll.
type SubmitStatus struct {
	// Name identifies the program; ID is the job to poll (empty when
	// Err is set); Replica is the accepting replica's base URL; State
	// is the job's state at submission time.
	Name    string
	ID      string
	Replica string
	State   string
	Err     error
}

// SubmitAll submits a set of programs, each routed by its own content
// address, and reports per-program receipts. Individual failures do
// not stop the rest of the batch.
func (p *Pool) SubmitAll(ctx context.Context, programs []BatchProgram, o RequestOptions) []SubmitStatus {
	out := make([]SubmitStatus, len(programs))
	for i, bp := range programs {
		name := bp.Name
		if name == "" {
			name = fmt.Sprintf("program-%d", i)
		}
		out[i].Name = name
		resp, replica, err := p.Submit(ctx, name, bp.Source, o)
		if err != nil {
			out[i].Err = err
			continue
		}
		out[i].ID = resp.ID
		out[i].Replica = replica
		out[i].State = resp.State
	}
	return out
}

// PollResult polls the replica that accepted a submission until the
// job reaches a terminal state or ctx expires. replica is the base URL
// returned by Submit; an unknown one is an error (polling a different
// replica would 404 — queues are per-replica state).
func (p *Pool) PollResult(ctx context.Context, replica, id string, interval time.Duration) (*JobResult, error) {
	base := strings.TrimRight(replica, "/")
	for _, m := range p.members {
		if m.base == base {
			return m.client.Poll(ctx, id, interval)
		}
	}
	return nil, fmt.Errorf("pdce: unknown pool replica %q", replica)
}
