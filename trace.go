package pdce

import (
	"context"

	"pdce/internal/obs"
)

// Request tracing (distinct from the provenance TraceEvent stream):
// spans describe where one request spent its time across the serving
// stack — pool routing, retries, admission, cache, queue, and the
// solver's fixpoint rounds — propagated over HTTP in the W3C
// traceparent header and retained in a tail-sampled TraceStore. The
// types are aliases of internal/obs so the client, pool, and server
// share one implementation.

// Span is one live span of a request trace. Nil-safe: every method on
// a nil *Span is a no-op, so untraced paths cost one pointer check.
type Span = obs.Span

// SpanContext is a span's wire identity (trace ID + span ID), carried
// in the traceparent header.
type SpanContext = obs.SpanContext

// SpanRecord is one finished span's frozen wire form.
type SpanRecord = obs.SpanRecord

// TraceStore is the bounded, tail-sampled in-process trace store. A
// nil *TraceStore means "tracing off" and is valid everywhere one is
// accepted.
type TraceStore = obs.TraceStore

// TraceSummary, TraceList, and TraceDump are the /debug/traces wire
// shapes; TraceStoreSnapshot is the "traces" section of /metrics.
type (
	TraceSummary       = obs.TraceSummary
	TraceList          = obs.TraceList
	TraceDump          = obs.TraceDump
	TraceStoreSnapshot = obs.TraceStoreSnapshot
	StageStats         = obs.StageStats
)

// NewTraceStore builds a trace store retaining at most capacity traces
// (<=0 selects 512). sample is the keep probability for unremarkable
// traces; error and p99-slow traces are always kept. seed fixes the
// sampling RNG (0 = wall clock).
func NewTraceStore(capacity int, sample float64, seed int64) *TraceStore {
	return obs.NewTraceStore(capacity, sample, seed)
}

// ParseTraceparent decodes a W3C traceparent header value.
func ParseTraceparent(s string) (SpanContext, bool) { return obs.ParseTraceparent(s) }

// ContextWithSpan attaches a span to a context; Client.Optimize and
// Client.Submit propagate the span's identity as the request's
// traceparent header.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return obs.ContextWithSpan(ctx, s)
}

// SpanFromContext returns the span attached to ctx, or nil.
func SpanFromContext(ctx context.Context) *Span { return obs.SpanFromContext(ctx) }
