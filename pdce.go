// Package pdce is the public API of this repository: a from-scratch
// implementation of
//
//	J. Knoop, O. Rüthing, B. Steffen:
//	"Partial Dead Code Elimination", PLDI 1994.
//
// The optimizer removes partially dead assignments — assignments dead
// along some but not all control flow paths — by alternating
// admissible assignment sinking with dead (or faint) code elimination
// until the program stabilizes. The result is optimal in the paper's
// sense: no remaining partially dead code can be eliminated without
// changing the branching structure or semantics of the program, or
// impairing some execution.
//
// Programs are nondeterministic flow graphs over three statement
// forms: assignments x := t, skip, and the relevant statements out(t)
// and branch(t) whose operands must stay alive. Two textual front ends
// are provided: a structured WHILE-language (ParseSource) and a
// low-level node/edge format (ParseCFG) capable of irreducible control
// flow.
//
// Quick start:
//
//	p, err := pdce.ParseSource("demo", `
//	    y := a + b
//	    if * {
//	        y := c
//	    }
//	    out(x + y)
//	`)
//	opt, stats, err := p.PDE()
//	fmt.Println(opt)
//
// Baselines (classic dead/faint code elimination, SSA-based DCE,
// def-use marking DCE) and the dual transformation (lazy code motion)
// are exposed for comparison, and Check replays executions to confirm
// that a transformation preserved semantics without impairing any
// execution.
package pdce

import (
	"context"
	"errors"
	"fmt"
	"time"

	"pdce/internal/baseline"
	"pdce/internal/batch"
	"pdce/internal/cfg"
	"pdce/internal/copyprop"
	"pdce/internal/core"
	"pdce/internal/hoist"
	"pdce/internal/interp"
	"pdce/internal/ir"
	"pdce/internal/lcm"
	"pdce/internal/obs"
	"pdce/internal/parser"
	"pdce/internal/progen"
	"pdce/internal/ssa"
	"pdce/internal/verify"
)

// Program is an immutable-by-convention flow-graph program. All
// transformations return new Programs; the receiver is never mutated.
type Program struct {
	g *cfg.Graph
}

// ParseCFG parses the low-level flow-graph language (see the
// repository README for the grammar):
//
//	graph "name"
//	node 1 { y := a+b }
//	node 2 { out(x+y) }
//	edge s 1
//	edge 1 2
//	edge 2 e
func ParseCFG(src string) (*Program, error) {
	g, err := parser.ParseCFG(src)
	if err != nil {
		return nil, &ParseError{Name: "cfg input", Err: err}
	}
	return &Program{g: g}, nil
}

// ParseSource parses the structured WHILE-language and lowers it to a
// flow graph:
//
//	x := a + b
//	while x > 0 { x := x - 1 }
//	if * { out(x) } else { skip }
func ParseSource(name, src string) (*Program, error) {
	g, err := parser.ParseSource(name, src)
	if err != nil {
		return nil, &ParseError{Name: name, Err: err}
	}
	return &Program{g: g}, nil
}

// FromGraph wraps an existing graph. Internal use by cmd binaries.
func FromGraph(g *cfg.Graph) *Program { return &Program{g: g} }

// Graph exposes the underlying graph for packages inside this module.
func (p *Program) Graph() *cfg.Graph { return p.g }

// Name returns the program name.
func (p *Program) Name() string { return p.g.Name }

// String renders a compact human-readable listing.
func (p *Program) String() string { return p.g.String() }

// Format renders the program in the parseable low-level CFG language.
func (p *Program) Format() string { return p.g.Format() }

// DOT renders the program in Graphviz syntax.
func (p *Program) DOT() string { return cfg.DOT(p.g) }

// NumStatements returns the instruction count (the paper's i).
func (p *Program) NumStatements() int { return p.g.NumStmts() }

// NumAssignments returns the number of assignment statements.
func (p *Program) NumAssignments() int { return p.g.NumAssignments() }

// NumBlocks returns the number of basic blocks including start/end.
func (p *Program) NumBlocks() int { return p.g.NumNodes() }

// Equal reports whether two programs are structurally identical.
func (p *Program) Equal(q *Program) bool { return cfg.Equal(p.g, q.g) }

// Mode selects the elimination power of Optimize.
type Mode = core.Mode

// Optimization modes.
const (
	// Dead uses the bit-vector dead-variable analysis (the paper's
	// pde).
	Dead = core.ModeDead
	// Faint uses the slotwise faint-variable analysis (the paper's
	// pfe) — strictly more powerful, somewhat more expensive.
	Faint = core.ModeFaint
)

// Options configures Optimize.
type Options struct {
	// Mode selects pde (Dead) or pfe (Faint).
	Mode Mode
	// MaxRounds truncates the fixpoint iteration (0 = run to the
	// optimum). Truncation trades optimality for compile time; the
	// result stays correct.
	MaxRounds int
	// KeepSynthetic retains empty synthetic nodes inserted by
	// critical-edge splitting.
	KeepSynthetic bool
	// NoIncremental forces the from-scratch reference driver instead
	// of the default incremental one (which reuses analysis results
	// round to round). Both produce identical programs; the switch
	// exists for cross-checking and performance comparison.
	NoIncremental bool
	// Hot, when non-nil, localizes the optimization to the blocks
	// whose labels it accepts — the paper's Section 7 "hot areas"
	// heuristic. Cold blocks are left untouched except for code
	// arriving at their entry boundary.
	Hot func(blockLabel string) bool
	// Observe, when non-nil, receives a notification after every
	// eliminate/sink phase with a rendered snapshot of the
	// intermediate program — a window onto the second-order effects.
	Observe func(round int, phase string, changed bool, snapshot string)

	// Context, when non-nil, bounds the run: cancellation or deadline
	// expiry stops the fixpoint iteration at the next phase boundary
	// and returns the best program reached alongside a *DeadlineError.
	Context context.Context
	// RoundBudget, when positive, is a watchdog on each individual
	// eliminate+sink round: a round exceeding it stops the run the
	// same way an expired Context does. It catches stalls (a wedged
	// analysis) that a generous overall deadline would let run on.
	RoundBudget time.Duration
	// Verify enables verified mode: after every round the intermediate
	// program is checked against the input by the decision-enumeration
	// oracle on a bounded execution sample. A rejected round rolls the
	// result back to the last verified program and reports a
	// *MiscompileError. Costs roughly one interpreter sweep per round.
	Verify bool
	// VerifyRuns bounds the per-round execution sample of verified
	// mode (0 = a small default).
	VerifyRuns int
	// ReproDir, when non-empty, is where SafeOptimize and OptimizeAll
	// write repro bundles for contained panics. The directory is
	// created if missing; bundle write failures are reported in the
	// *PanicError, never as a separate failure.
	ReproDir string

	// Telemetry enables cost-counter collection: per-analysis solver
	// metrics (solves, node visits, worklist pushes, incremental-reuse
	// rate, bit-vector ops) and arena slab statistics, returned as
	// Stats.Telemetry. Off by default; when off, the optimizer's hot
	// path is byte-identical to an uninstrumented build.
	Telemetry bool
	// Trace additionally records the provenance event stream — one
	// structured event per split edge, elimination, sinking-candidate
	// removal, insertion, and fusion — in Stats.Telemetry.Events.
	// Implies Telemetry. Tracing allocates per event; leave it off in
	// performance measurements.
	Trace bool

	// Span, when non-nil, is the request-tracing span covering this
	// run: the solver opens "solve.round" child spans with per-phase
	// children under it and annotates it with round/effect counts.
	// The optimizer never ends the span; its creator does. Nil (the
	// default) keeps the hot path free of tracing work. Span does not
	// participate in Options.Fingerprint — it cannot change the
	// output.
	Span *Span
	// RequestTag, when non-empty, labels artifacts this run emits on
	// failure: SafeOptimize stamps it (sanitized) into repro-bundle
	// filenames so a failed request's Pdce-Request-Id leads straight
	// to its bundle. Like Span it is not part of the fingerprint.
	RequestTag string
}

// Telemetry is the observability section of a run: per-analysis solver
// metrics, arena slab statistics, and (with Options.Trace) the
// provenance event stream. See the internal/obs package documentation
// for field semantics; the type serializes to stable JSON.
type Telemetry = obs.Telemetry

// SolverMetrics is one analysis's frozen cost counters.
type SolverMetrics = obs.SolverSnapshot

// TraceEvent is one provenance record of Telemetry.Events.
type TraceEvent = obs.Event

// Provenance event kinds (TraceEvent.Kind).
const (
	EventSplitEdge   = obs.KindSplitEdge
	EventEliminate   = obs.KindEliminate
	EventSinkRemove  = obs.KindSinkRemove
	EventInsertEntry = obs.KindInsertEntry
	EventInsertExit  = obs.KindInsertExit
	EventFuse        = obs.KindFuse
)

// Stats reports what an optimization run did.
type Stats struct {
	// Rounds is the number of eliminate+sink rounds (the paper's r).
	Rounds int `json:"rounds"`
	// Eliminated counts assignments removed by elimination steps;
	// SinkRemoved/Inserted count the sinking transformation's
	// removals and materializations.
	Eliminated  int `json:"eliminated"`
	SinkRemoved int `json:"sink_removed"`
	Inserted    int `json:"inserted"`
	// CriticalEdges is the number of edges split up front.
	CriticalEdges int `json:"critical_edges"`
	// OriginalStmts/FinalStmts/PeakStmts track code size; the
	// paper's growth factor w is PeakStmts/OriginalStmts.
	OriginalStmts int `json:"original_stmts"`
	FinalStmts    int `json:"final_stmts"`
	PeakStmts     int `json:"peak_stmts"`

	// Telemetry is present exactly when Options.Telemetry (or Trace)
	// was set.
	Telemetry *Telemetry `json:"telemetry,omitempty"`
}

// GrowthFactor returns the paper's w.
func (s Stats) GrowthFactor() float64 {
	if s.OriginalStmts == 0 {
		return 1
	}
	return float64(s.PeakStmts) / float64(s.OriginalStmts)
}

func fromCoreStats(st core.Stats) Stats {
	return Stats{
		Rounds:        st.Rounds,
		Eliminated:    st.Eliminated,
		SinkRemoved:   st.SinkRemoved,
		Inserted:      st.Inserted,
		CriticalEdges: st.CriticalEdges,
		OriginalStmts: st.OriginalStmts,
		FinalStmts:    st.FinalStmts,
		PeakStmts:     st.PeakStmts,
		Telemetry:     st.Telemetry,
	}
}

// coreOptions lowers the public options to the driver's.
func (o Options) coreOptions() core.Options {
	copt := core.Options{
		Mode:          o.Mode,
		MaxRounds:     o.MaxRounds,
		KeepSynthetic: o.KeepSynthetic,
		NoIncremental: o.NoIncremental,
		Ctx:           o.Context,
		RoundBudget:   o.RoundBudget,
		Span:          o.Span,
	}
	if o.Telemetry || o.Trace {
		copt.Collector = obs.NewCollector(o.Trace)
	}
	if o.Hot != nil {
		hot := o.Hot
		copt.Hot = func(n *cfg.Node) bool { return hot(n.Label) }
	}
	if o.Observe != nil {
		observe := o.Observe
		copt.Observe = func(ev core.PhaseEvent) {
			observe(ev.Round, ev.Phase, ev.Changed, ev.Graph.String())
		}
	}
	return copt
}

// Optimize runs partial dead (faint) code elimination and returns the
// optimized program.
//
// Errors follow the taxonomy in errors.go: watchdog stops
// (Options.Context, Options.RoundBudget) and verified-mode rollbacks
// (Options.Verify) return a non-nil partial Program — the best correct
// result reached — together with a *DeadlineError or *MiscompileError;
// any other error returns a nil Program. SafeOptimize additionally
// contains panics and never returns nil.
func (p *Program) Optimize(o Options) (*Program, Stats, error) {
	copt := o.coreOptions()
	if o.Verify {
		copt.RoundCheck = verifyRoundCheck(p.g, o.VerifyRuns)
	}
	g, st, err := core.Transform(p.g, copt)
	if err != nil {
		err = mapCoreError(err)
		if g != nil {
			// Watchdog or rollback: the graph is the best correct
			// partial result, surfaced alongside the error.
			return &Program{g: g}, fromCoreStats(st), err
		}
		return nil, Stats{}, err
	}
	return &Program{g: g}, fromCoreStats(st), nil
}

// BatchResult is the outcome of one program of an OptimizeAll batch.
type BatchResult struct {
	// Name is the program's name; results preserve input order.
	Name string
	// Program is the optimized program. With a non-nil Err it is the
	// degraded result of the containment layer: the best partial
	// program for ErrDeadline/ErrMiscompile, the unchanged input for
	// ErrPanic, and nil only for jobs never started (a cancelled
	// batch, Err matching the context's error).
	Program *Program
	Stats   Stats
	Err     error

	// Duration is the job's wall-clock optimization time; Worker the
	// 0-based pool worker that ran it (-1 for jobs never started).
	Duration time.Duration
	Worker   int
}

// OptimizeAll optimizes every program concurrently with at most
// workers simultaneous runs (workers <= 0 selects GOMAXPROCS). Each
// run is independent — inputs are never mutated — and results are
// returned in input order. The function-valued options (Hot, Observe)
// are shared across all runs and must be safe for concurrent use;
// Observe additionally receives interleaved events from different
// programs, so most batch callers leave it nil.
//
// The batch is fault-contained with SafeOptimize's semantics per job:
// a panicking job is recovered (repro bundle in Options.ReproDir, if
// set) and reports the input unchanged; watchdog and verified-mode
// stops report partial programs. Cancelling Options.Context stops
// dispatch — jobs not yet started report the context's error with a
// nil Program — and the worker pool always drains before returning.
func OptimizeAll(programs []*Program, o Options, workers int) []BatchResult {
	results, _ := OptimizeAllObserved(programs, o, workers, nil)
	return results
}

// OptimizeAllObserved is OptimizeAll with batch observability: tk, when
// non-nil, publishes live progress while the pool runs (poll
// tk.Snapshot from another goroutine), and the returned BatchMetrics
// aggregates the finished batch — failure classes, latency percentiles
// (p50/p95/max), and per-worker load. Each job collects its own
// telemetry when Options.Telemetry or Options.Trace is set: collectors
// are created per job, never shared, so per-program Stats.Telemetry is
// exact even under full concurrency.
func OptimizeAllObserved(programs []*Program, o Options, workers int, tk *BatchTracker) ([]BatchResult, BatchMetrics) {
	return OptimizeAllGated(programs, o, workers, tk, nil)
}

// AdmissionGate is a per-job admission controller for OptimizeAllGated;
// see internal/batch.Gate for the contract.
type AdmissionGate = batch.Gate

// OptimizeAllGated is OptimizeAllObserved with a per-job admission
// gate: each pool worker acquires a slot from gate before running a
// job and releases it after, so a batch embedded in a larger system
// (the pdced server) shares that system's global concurrency budget
// instead of adding its own. A job rejected by the gate reports the
// gate's error with a nil Program, like a job the pool never started.
// A nil gate admits everything.
func OptimizeAllGated(programs []*Program, o Options, workers int, tk *BatchTracker, gate AdmissionGate) ([]BatchResult, BatchMetrics) {
	jobs := make([]batch.Job, len(programs))
	for i, p := range programs {
		copt := o.coreOptions()
		if o.Verify {
			copt.RoundCheck = verifyRoundCheck(p.g, o.VerifyRuns)
		}
		if o.Span != nil {
			// One child span per job; the pool worker that runs the
			// job ends it (covering panic and interrupt paths).
			js := o.Span.Child("batch.job")
			js.SetAttr("program", p.Name())
			copt.Span = js
		}
		jobs[i] = batch.Job{Name: p.Name(), Graph: p.g, Options: copt}
	}
	ctx := o.Context
	if ctx == nil {
		ctx = context.Background()
	}
	res := batch.RunGated(ctx, jobs, workers, tk, gate)
	out := make([]BatchResult, len(res))
	for i, r := range res {
		out[i] = BatchResult{Name: r.Name, Duration: r.Duration, Worker: r.Worker}
		if r.Graph != nil {
			out[i].Program = &Program{g: r.Graph}
			out[i].Stats = fromCoreStats(r.Stats)
		}
		if r.Err == nil {
			continue
		}
		var pe *core.PanicError
		switch {
		case errors.As(r.Err, &pe):
			e := &PanicError{Value: pe.Value, Stack: string(pe.Stack)}
			e.Bundle, e.BundleErr = writeReproBundle(o.ReproDir, programs[i], o, pe.Value, pe.Stack)
			out[i].Err = e
			out[i].Program = programs[i] // degrade to the unchanged input
		default:
			out[i].Err = mapCoreError(r.Err)
		}
	}
	return out, batch.ComputeMetrics(res)
}

// PDE runs partial dead code elimination to its optimum.
func (p *Program) PDE() (*Program, Stats, error) { return p.Optimize(Options{Mode: Dead}) }

// PFE runs partial faint code elimination to its optimum.
func (p *Program) PFE() (*Program, Stats, error) { return p.Optimize(Options{Mode: Faint}) }

// --- baselines -------------------------------------------------------

// DeadCodeElimination applies classic iterated dead code elimination
// (no code motion) — the "usual approach" the paper improves on.
func (p *Program) DeadCodeElimination() (*Program, int) {
	r := baseline.IteratedDCE(p.g)
	return &Program{g: r.Graph}, r.Removed
}

// FaintCodeElimination applies iterated faint code elimination (no
// code motion).
func (p *Program) FaintCodeElimination() (*Program, int) {
	r := baseline.IteratedFCE(p.g)
	return &Program{g: r.Graph}, r.Removed
}

// SSADeadCodeElimination applies the sparse def-use (SSA mark-sweep)
// elimination of Cytron et al. — the paper's reference [5] baseline.
func (p *Program) SSADeadCodeElimination() (*Program, int) {
	g, removed := ssa.Eliminate(p.g)
	return &Program{g: g}, removed
}

// DefUseDCE applies the classic def-use-graph marking elimination.
func (p *Program) DefUseDCE() (*Program, int) {
	r := baseline.DefUseDCE(p.g)
	return &Program{g: r.Graph}, r.Removed
}

// HoistAssignments applies assignment hoisting — the Related-Work
// baseline [9] that moves assignments against the control flow. It is
// semantics preserving and exactly cost-neutral (every path executes
// the same assignment instances, earlier); in particular it cannot
// eliminate partially dead code, which is the paper's argument for
// sinking instead.
func (p *Program) HoistAssignments() (*Program, error) {
	g, _, err := hoist.Optimize(p.g)
	if err != nil {
		return nil, err
	}
	return &Program{g: g}, nil
}

// CopyPropagation applies global copy propagation: uses of x after a
// copy x := y that provably still holds are rewritten to y. The
// then-dead copies are left for the elimination passes. Returns the
// transformed program and the number of rewritten statements.
func (p *Program) CopyPropagation() (*Program, int) {
	g, st := copyprop.Optimize(p.g)
	return &Program{g: g}, st.Rewritten
}

// LazyCodeMotion applies partial redundancy elimination (the dual
// transformation) and returns the transformed program together with
// the number of inserted temporaries and replaced computations.
func (p *Program) LazyCodeMotion() (*Program, int, int, error) {
	r, err := lcm.Optimize(p.g)
	if err != nil {
		return nil, 0, 0, err
	}
	return &Program{g: r.Graph}, r.Inserted, r.Deleted + r.Rewritten, nil
}

// --- execution and verification --------------------------------------

// Trace is the observable record of one interpreted execution.
type Trace struct {
	// Outputs is the sequence of out(...) values.
	Outputs []int64
	// Terminated is true when the end node was reached, false when
	// the fuel bound was hit or a run-time error occurred.
	Terminated bool
	// Faulted is true when evaluation raised a run-time error
	// (division or modulus by zero); Err carries it.
	Faulted bool
	Err     error
	// AssignExecs is the number of executed assignment instances —
	// the dynamic cost partial dead code elimination minimizes.
	AssignExecs int
	// TermEvals is the number of non-trivial expression
	// evaluations — the dynamic cost lazy code motion minimizes.
	TermEvals int
	// Decisions records the branch choices taken, replayable via
	// RunDecisions.
	Decisions []int
	// VisitsPerBlock is the execution profile: how often each block
	// ran. Feed the hot set it induces into Options.Hot for
	// profile-guided regional optimization (the paper's Section 7).
	VisitsPerBlock map[string]int
}

func fromTrace(t *interp.Trace) Trace {
	return Trace{
		Outputs:        t.Outputs,
		Terminated:     t.Outcome == interp.Terminated,
		Faulted:        t.Outcome == interp.Faulted,
		Err:            t.Err,
		AssignExecs:    t.AssignExecs,
		TermEvals:      t.TermEvals,
		Decisions:      t.Decisions,
		VisitsPerBlock: t.VisitsPerBlock,
	}
}

// Run executes the program, resolving nondeterministic branches from
// the seed. Fuel bounds the execution in block visits (0 = default).
func (p *Program) Run(seed uint64, fuel int) Trace {
	return fromTrace(interp.Run(p.g, interp.NewSeededOracle(seed), interp.Config{MaxBlockVisits: fuel}))
}

// RunWithInput is Run with an initial variable store.
func (p *Program) RunWithInput(seed uint64, fuel int, input map[string]int64) Trace {
	in := make(map[ir.Var]int64, len(input))
	for k, v := range input {
		in[ir.Var(k)] = v
	}
	return fromTrace(interp.Run(p.g, interp.NewSeededOracle(seed), interp.Config{MaxBlockVisits: fuel, Input: in}))
}

// RunDecisions replays a recorded branch-decision sequence.
func (p *Program) RunDecisions(decisions []int, fuel int) Trace {
	return fromTrace(interp.Replay(p.g, decisions, interp.Config{MaxBlockVisits: fuel}))
}

// Check verifies that opt is a faithful optimization of p: over the
// given number of sampled executions, outputs agree (modulo
// fault-potential reduction) and no execution runs more assignment
// instances of any pattern. A nil error means the pair passed.
func (p *Program) Check(opt *Program, executions int) error {
	rep := verify.CheckTransformed(p.g, opt.g, verify.Options{Seeds: executions})
	if !rep.OK() {
		return fmt.Errorf("%s", rep.String())
	}
	return nil
}

// CheckOutputs verifies observable behaviour only (output traces,
// modulo fault reduction), without the non-impairment comparison. Use
// it for transformations that legitimately introduce assignments, such
// as LazyCodeMotion's temporaries.
func (p *Program) CheckOutputs(opt *Program, executions int) error {
	rep := verify.CheckTransformed(p.g, opt.g, verify.Options{Seeds: executions, OutputsOnly: true})
	if !rep.OK() {
		return fmt.Errorf("%s", rep.String())
	}
	return nil
}

// Savings samples executions of both programs and returns the fraction
// of dynamic assignment executions the optimization removed.
func (p *Program) Savings(opt *Program, executions int) float64 {
	return verify.MeasureImprovement(p.g, opt.g, executions, 0).Savings()
}

// --- workload generation ----------------------------------------------

// GenParams configures random program generation (see
// internal/progen for the full knob set semantics).
type GenParams struct {
	Seed        int64
	Stmts       int
	Vars        int
	Irreducible bool
}

// Generate produces a deterministic random program, useful for
// experimentation and benchmarking.
func Generate(p GenParams) *Program {
	return &Program{g: progen.Generate(progen.Params{
		Seed:        p.Seed,
		Stmts:       p.Stmts,
		Vars:        p.Vars,
		Irreducible: p.Irreducible,
	})}
}

// --- pass pipeline -----------------------------------------------------

// Passes runs a named sequence of transformations, threading the
// program through each. Recognized pass names: "pde", "pfe", "dce",
// "fce", "ssadce", "dudce", "lcm", "copyprop", "hoist". Unknown names
// return an error. Example: Passes("lcm", "copyprop", "pde") composes
// partial redundancy elimination with copy propagation and partial
// dead code elimination into a small optimizer.
func (p *Program) Passes(names ...string) (*Program, error) {
	cur := p
	for _, name := range names {
		var next *Program
		var err error
		switch name {
		case "pde":
			next, _, err = cur.PDE()
		case "pfe":
			next, _, err = cur.PFE()
		case "dce":
			next, _ = cur.DeadCodeElimination()
		case "fce":
			next, _ = cur.FaintCodeElimination()
		case "ssadce":
			next, _ = cur.SSADeadCodeElimination()
		case "dudce":
			next, _ = cur.DefUseDCE()
		case "lcm":
			next, _, _, err = cur.LazyCodeMotion()
		case "copyprop":
			next, _ = cur.CopyPropagation()
		case "hoist":
			next, err = cur.HoistAssignments()
		default:
			return nil, fmt.Errorf("pdce: unknown pass %q", name)
		}
		if err != nil {
			return nil, fmt.Errorf("pdce: pass %q: %w", name, err)
		}
		cur = next
	}
	return cur, nil
}
