package pdce

import (
	"encoding/json"
	"fmt"

	"pdce/internal/obs"
)

// Wire types of the pdced optimization service (internal/server,
// cmd/pdced). They live in the public package so the server, the
// Client, and external consumers decode the same structs; the server
// imports this package, never the other way around.

// OptimizeResponse is the JSON body of a successful POST /optimize and
// of each entry of a batch response. For single requests the body is
// cached and replayed verbatim — a cache hit is byte-identical to the
// miss that filled it — so cache status travels out of band in the
// X-Pdced-Cache response header ("hit", "miss", or "dedup" for a
// request coalesced onto an identical in-flight computation).
type OptimizeResponse struct {
	// Name is the program name, Key its content address
	// (Program.CacheKey), Mode "pde" or "pfe".
	Name string `json:"name"`
	Key  string `json:"key"`
	Mode string `json:"mode"`
	// Program is the optimized program in the canonical CFG format
	// (parseable by ParseCFG); Listing is the human-readable rendering.
	Program string `json:"program"`
	Listing string `json:"listing"`
	Stats   Stats  `json:"stats"`
	// Degraded is true when the containment layer cut the run short:
	// the program is the best correct partial result, Error/ErrorKind
	// ("deadline" or "miscompile") say why. Degraded results are
	// served 200 but never cached.
	Degraded  bool   `json:"degraded,omitempty"`
	Error     string `json:"error,omitempty"`
	ErrorKind string `json:"error_kind,omitempty"`
	// Explain carries the provenance report when the request asked for
	// one (?explain=var, PR-3's FormatExplain rendering).
	Explain string `json:"explain,omitempty"`
}

// CacheState is the X-Pdced-Cache header value of an optimize
// response.
type CacheState string

// Cache states.
const (
	CacheMiss  CacheState = "miss"
	CacheHit   CacheState = "hit"
	CacheDedup CacheState = "dedup"
)

// ServerError is a non-2xx pdced response: the decoded error body plus
// transport-level fields. It is what Client methods return for HTTP
// errors.
type ServerError struct {
	// Status is the HTTP status code: 400 bad request/parse failure,
	// 429 queue full, 500 contained optimizer panic, 503 draining.
	Status int `json:"-"`
	// Kind classifies the failure: "parse", "bad-request", "panic",
	// "queue-full", "draining".
	Kind    string `json:"kind,omitempty"`
	Message string `json:"error"`
	// ReproBundle is the server-side path of the repro bundle written
	// for a contained panic (500 only, empty when no directory is
	// configured).
	ReproBundle string `json:"repro_bundle,omitempty"`
	// RetryAfter is the Retry-After header in seconds (429/503), 0
	// when absent.
	RetryAfter int `json:"-"`
}

func (e *ServerError) Error() string {
	return fmt.Sprintf("pdced: %d %s: %s", e.Status, e.Kind, e.Message)
}

// BatchProgram is one program of a batch optimize request.
type BatchProgram struct {
	Name string `json:"name"`
	// Source is the program text, WHILE-language or CFG format
	// (auto-detected).
	Source string `json:"source"`
}

// BatchOptimizeRequest is the JSON body of POST /optimize/batch.
type BatchOptimizeRequest struct {
	// Mode is "pde" (default) or "pfe".
	Mode string `json:"mode,omitempty"`
	// MaxRounds truncates each program's fixpoint (0 = optimum).
	MaxRounds int `json:"max_rounds,omitempty"`
	// DeadlineMS bounds each program's optimization (0 = the server's
	// default deadline).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Telemetry includes solver metrics in each result's Stats.
	Telemetry bool           `json:"telemetry,omitempty"`
	Programs  []BatchProgram `json:"programs"`
}

// BatchEntryResult is one program's outcome within a batch response.
type BatchEntryResult struct {
	OptimizeResponse
	// Cached is true when the entry was served from the result cache
	// (batch responses are assembled per request, so cache status is
	// in-band here, unlike single optimizes).
	Cached bool `json:"cached,omitempty"`
	// Shed is true when the admission gate rejected the program's job
	// (server at capacity); Error carries the reason and the entry has
	// no program.
	Shed bool `json:"shed,omitempty"`
}

// BatchOptimizeResponse is the JSON body of POST /optimize/batch.
// Results preserve request order.
type BatchOptimizeResponse struct {
	Results []BatchEntryResult `json:"results"`
	// Metrics aggregates the pool run behind the cache misses (absent
	// when every program was served from cache).
	Metrics *BatchMetrics `json:"metrics,omitempty"`
}

// ServerCounters is the request-level counter section of /metrics; see
// internal/obs.ServerSnapshot for field semantics.
type ServerCounters = obs.ServerSnapshot

// StoreMetrics is the shared L2 store section of /metrics; see
// internal/obs.StoreSnapshot for field semantics.
type StoreMetrics = obs.StoreSnapshot

// CacheMetrics is the result-cache section of /metrics.
type CacheMetrics struct {
	// Entries/Capacity are the in-memory LRU's current and maximum
	// entry counts across all shards.
	Entries  int `json:"entries"`
	Capacity int `json:"capacity"`
	// Hits/Misses/Evictions are lifetime in-memory lookup outcomes;
	// SpillHits counts misses recovered from the disk-spill directory,
	// SpillCorrupt corrupted spill entries detected and quarantined.
	Hits         int64 `json:"hits"`
	Misses       int64 `json:"misses"`
	Evictions    int64 `json:"evictions"`
	SpillHits    int64 `json:"spill_hits"`
	SpillCorrupt int64 `json:"spill_corrupt"`
	// SpillSwept counts orphaned temp files (crash litter from torn
	// spill writes) removed at boot.
	SpillSwept int64 `json:"spill_swept"`
	// HitRate is (memory + spill hits)/lookups.
	HitRate float64 `json:"hit_rate"`
}

// QueueMetrics is the admission-control section of /metrics.
type QueueMetrics struct {
	// Active is the number of requests currently holding a work slot,
	// Queued the number waiting for one; MaxInFlight/MaxQueue are the
	// configured bounds.
	Active      int `json:"active"`
	Queued      int `json:"queued"`
	MaxInFlight int `json:"max_inflight"`
	MaxQueue    int `json:"max_queue"`
	// Draining is true once graceful shutdown began: new work is
	// rejected 503 while in-flight requests complete.
	Draining bool `json:"draining"`
}

// ServerMetrics is the JSON body of GET /metrics.
type ServerMetrics struct {
	Server ServerCounters `json:"server"`
	Cache  CacheMetrics   `json:"cache"`
	Queue  QueueMetrics   `json:"queue"`
	// JobQueue is the durable async queue's section, absent when the
	// server runs without a queue directory.
	JobQueue *obs.QueueSnapshot `json:"job_queue,omitempty"`
	// Traces is the request-tracing section — store counters and
	// per-stage latency aggregates — absent when tracing is disabled.
	Traces *TraceStoreSnapshot `json:"traces,omitempty"`
	// Store is the shared L2 blob store's section — read/publish
	// counters and cluster-lease outcomes — absent when the server runs
	// without a -store backend.
	Store *StoreMetrics `json:"store,omitempty"`
	// UptimeMS is the wall time since the server was constructed.
	UptimeMS int64 `json:"uptime_ms"`
}

// Async job states reported by POST /optimize/submit and GET
// /optimize/result/{id}. A job moves queued → running → done, taking
// the failed state only after exhausting the server's retry budget
// (poisoned — parked for operator triage, it will not retry again).
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// SubmitResponse is the JSON body of POST /optimize/submit. A 202
// means the submission was durably logged (fsync'd) before the
// response was written: the job survives a server crash. A 200 with
// Cached true means the result already existed and no job was queued.
type SubmitResponse struct {
	// ID is the job identifier — the program's content address
	// (Program.CacheKey) — to poll at GET /optimize/result/{id}.
	ID string `json:"id"`
	// State is the job's state at submission time (JobQueued for a
	// fresh job; a duplicate reports the existing job's state).
	State string `json:"state"`
	// Cached is true when the result was already in the cache and the
	// submission short-circuited to done. Duplicate is true when an
	// identical job was already queued or finished; the submission
	// collapsed onto it.
	Cached    bool `json:"cached,omitempty"`
	Duplicate bool `json:"duplicate,omitempty"`
	// TraceID is the request trace the job was submitted under; the
	// job's asynchronous execution records its spans in the same
	// trace, so the ID stays queryable at /debug/traces/{id} across
	// retries and even a daemon restart.
	TraceID string `json:"trace_id,omitempty"`
}

// JobResult is the JSON body of GET /optimize/result/{id}.
type JobResult struct {
	ID string `json:"id"`
	// State is JobQueued, JobRunning, JobDone, or JobFailed.
	State string `json:"state"`
	// Attempts counts execution attempts so far; Error is the last
	// attempt's failure (set for failed jobs and between retries).
	Attempts int    `json:"attempts,omitempty"`
	Error    string `json:"error,omitempty"`
	// Result is the OptimizeResponse body for a done job, byte-identical
	// to what a synchronous POST /optimize of the same program returns.
	Result json.RawMessage `json:"result,omitempty"`
	// TraceID is the request trace the job executes under (see
	// SubmitResponse.TraceID).
	TraceID string `json:"trace_id,omitempty"`
}

// HealthResponse is the JSON body of GET /healthz: status "ok" (200)
// or "draining" (503). Health stays "ok" under load shedding — a
// saturated queue is capacity policy, not ill health.
type HealthResponse struct {
	Status string `json:"status"`
}
