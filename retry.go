package pdce

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// Retry policy of the cluster-aware client (Pool): bounded attempts,
// capped exponential backoff with jitter, and server-directed
// cooldowns. The policy is deliberately separate from the routing so
// both are testable on their own.

// RetryPolicy bounds Pool's failover loop. The zero value selects the
// defaults documented per field.
type RetryPolicy struct {
	// MaxAttempts bounds the total tries per request, the first
	// included (default 4; minimum 1). Attempts after the first fail
	// over to the next ring member.
	MaxAttempts int
	// BaseBackoff is the delay before the second attempt, doubled per
	// subsequent attempt up to MaxBackoff (defaults 25ms and 2s). Every
	// delay is jittered uniformly in [d/2, d) so synchronized clients
	// desynchronize; a server-sent Retry-After overrides the computed
	// delay when it is longer.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// MaxTotalRequests caps the wire requests one logical call may
	// issue across the cluster, hedges included (default
	// 2×MaxAttempts). MaxAttempts alone bounds failover rounds, but
	// with hedging each round can cost two requests; under a cluster
	// brown-out that doubling is exactly the amplification that turns a
	// slowdown into a storm. When the budget is exhausted, no further
	// attempt or hedge is sent and the last error is returned.
	MaxTotalRequests int
}

func (rp RetryPolicy) withDefaults() RetryPolicy {
	if rp.MaxAttempts <= 0 {
		rp.MaxAttempts = 4
	}
	if rp.BaseBackoff <= 0 {
		rp.BaseBackoff = 25 * time.Millisecond
	}
	if rp.MaxBackoff <= 0 {
		rp.MaxBackoff = 2 * time.Second
	}
	if rp.MaxTotalRequests <= 0 {
		rp.MaxTotalRequests = 2 * rp.MaxAttempts
	}
	return rp
}

// delay returns the jittered backoff before attempt (1-based retry
// count: attempt 1 is the first retry).
func (rp RetryPolicy) delay(attempt int, jitter func() float64) time.Duration {
	d := rp.BaseBackoff
	for i := 1; i < attempt && d < rp.MaxBackoff; i++ {
		d *= 2
	}
	if d > rp.MaxBackoff {
		d = rp.MaxBackoff
	}
	// Uniform in [d/2, d): full jitter would allow near-zero delays,
	// which defeats the point of backing off at all.
	return d/2 + time.Duration(jitter()*float64(d/2))
}

// lockedRand is a concurrency-safe jitter source (math/rand's global
// source is locked too, but a private one keeps tests reproducible).
type lockedRand struct {
	mu sync.Mutex
	r  *rand.Rand
}

func newLockedRand(seed int64) *lockedRand {
	return &lockedRand{r: rand.New(rand.NewSource(seed))}
}

func (l *lockedRand) Float64() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Float64()
}

// retryDecision classifies one failed attempt.
type retryDecision struct {
	// retry is false for permanent failures (bad request, parse error,
	// contained panic — deterministic, so every replica would answer
	// identically).
	retry bool
	// eject removes the replica from the healthy set until a probe
	// readmits it (transport failures, draining).
	eject bool
	// cooldown is the server-directed Retry-After (0 = none): the
	// replica must not be retried before it elapses, but other ring
	// members may be tried immediately.
	cooldown time.Duration
}

// classify maps one attempt's error to a decision. ctx errors are
// terminal and handled by the caller before classification.
func classify(err error) retryDecision {
	var se *ServerError
	if errors.As(err, &se) {
		switch se.Status {
		case http.StatusTooManyRequests:
			// Shed at admission: the replica is healthy but full.
			// Honor its Retry-After as a cooldown and go elsewhere.
			return retryDecision{retry: true, cooldown: retryAfter(se)}
		case http.StatusServiceUnavailable:
			// Draining (or a canceled wait): the replica is leaving the
			// ring. Eject it; the prober readmits it if it comes back.
			return retryDecision{retry: true, eject: true, cooldown: retryAfter(se)}
		default:
			// 400/500: deterministic outcomes — a parse error or a
			// contained panic replays identically on every replica.
			return retryDecision{}
		}
	}
	// Anything else is transport-level (dial failure, reset, truncated
	// body): eject and fail over.
	return retryDecision{retry: true, eject: true}
}

func retryAfter(se *ServerError) time.Duration {
	if se.RetryAfter <= 0 {
		return 0
	}
	return time.Duration(se.RetryAfter) * time.Second
}

// sleepCtx sleeps for d or until ctx is done, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
