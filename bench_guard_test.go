package pdce_test

import (
	"testing"

	"pdce/internal/core"
	"pdce/internal/progen"
)

// TestTransformAllocBudget guards the allocation discipline of the
// incremental driver: a full pde run on the standard 1024-statement
// generated program must stay within a fixed allocation budget.
//
// The budget is ~2x the measured value after the sparse-solver and
// rewrite-hint work (about 22k allocations; the pooled-storage driver
// before it needed ~28k, the pre-pooling one ~134k), so it trips on a
// regression that reintroduces per-round re-allocation of analysis
// storage or per-statement re-resolution, while leaving room for
// routine drift. Revisit the constant deliberately if the driver's
// structure changes.
func TestTransformAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc measurement is slow")
	}
	g := progen.Generate(progen.Params{Seed: 42, Stmts: 1024})
	const budget = 45_000

	avg := testing.AllocsPerRun(3, func() {
		if _, _, err := core.Transform(g, core.Options{Mode: core.ModeDead}); err != nil {
			t.Fatal(err)
		}
	})
	if avg > budget {
		t.Errorf("core.Transform allocated %.0f objects on the 1024-stmt program, budget %d", avg, budget)
	}
}
