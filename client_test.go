package pdce_test

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pdce"
	"pdce/internal/server"
)

// Regression: a proxy answering /healthz with a non-JSON 502 used to
// surface as a JSON decode error. It must come back as a *ServerError
// carrying the real status code.
func TestHealthNon2xxIsServerError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		w.WriteHeader(http.StatusBadGateway)
		fmt.Fprintln(w, "<html><body>upstream connect error</body></html>")
	}))
	defer ts.Close()

	_, err := pdce.NewClient(ts.URL).Health(context.Background())
	var se *pdce.ServerError
	if !errors.As(err, &se) {
		t.Fatalf("want *ServerError, got %T: %v", err, err)
	}
	if se.Status != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502", se.Status)
	}
	if !strings.Contains(se.Message, "upstream connect error") {
		t.Fatalf("message %q lost the proxy body", se.Message)
	}
	if strings.Contains(err.Error(), "decoding health response") {
		t.Fatalf("502 still misreported as a decode error: %v", err)
	}
}

// A draining pdced still reports its status without error (503 with a
// JSON body is the health endpoint talking, not a failure).
func TestHealthDrainingStillDecodes(t *testing.T) {
	s, err := server.New(server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.BeginDrain()

	status, err := pdce.NewClient(ts.URL).Health(context.Background())
	if err != nil {
		t.Fatalf("draining health probe errored: %v", err)
	}
	if status != "draining" {
		t.Fatalf("status = %q, want draining", status)
	}
}
