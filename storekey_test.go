package pdce_test

import (
	"errors"
	"fmt"
	"testing"

	"pdce"
	"pdce/internal/store"
)

// TestStoreKeyVersionIsolation is the mixed-version fleet property,
// companion to TestCacheKeyProperty: over 200 generated programs, a
// shared store populated by a replica at cache-key version X never
// serves a replica at version Y — the two builds address disjoint key
// spaces in the same backend — while same-version replicas see every
// entry. Every key must also survive the store's key validation, so
// the content-address alphabet and the blob-store alphabet can never
// drift apart unnoticed.
func TestStoreKeyVersionIsolation(t *testing.T) {
	const programs = 200
	opts := pdce.Options{Mode: pdce.Dead}
	shared := store.NewMemStore()
	vX := pdce.CacheKeyVersion()
	vY := vX + "-next" // the build after a key-format bump

	keys := make([]string, 0, programs)
	for seed := 0; seed < programs; seed++ {
		p := pdce.Generate(pdce.GenParams{
			Seed:        int64(seed),
			Stmts:       10 + seed%60,
			Vars:        2 + seed%6,
			Irreducible: seed%7 == 0,
		})
		key := p.CacheKey(opts)
		keys = append(keys, key)

		vkey := store.VersionedKey(vX, key)
		if !store.ValidKey(vkey) {
			t.Fatalf("seed %d: versioned key %q rejected by the store", seed, vkey)
		}
		created, err := shared.Put(vkey, []byte(fmt.Sprintf("result-of-%d", seed)))
		if err != nil || !created {
			t.Fatalf("seed %d: Put = %v, %v", seed, created, err)
		}
	}

	for seed, key := range keys {
		// A same-version replica sees the entry.
		if _, err := shared.Get(store.VersionedKey(vX, key)); err != nil {
			t.Fatalf("seed %d: same-version Get failed: %v", seed, err)
		}
		// A replica from a different build must miss, never cross-read.
		if _, err := shared.Get(store.VersionedKey(vY, key)); !errors.Is(err, store.ErrNotFound) {
			t.Errorf("seed %d: version-Y replica read a version-X entry (err = %v)", seed, err)
		}
		if store.VersionedKey(vX, key) == store.VersionedKey(vY, key) {
			t.Fatalf("seed %d: version prefix did not change the store key", seed)
		}
	}

	// After the Y build populates its own space, both generations
	// coexist without collision.
	st, _ := shared.Stats()
	if st.Blobs != programs {
		t.Fatalf("store holds %d blobs, want %d", st.Blobs, programs)
	}
	for _, key := range keys[:10] {
		if created, err := shared.Put(store.VersionedKey(vY, key), []byte("y-result")); err != nil || !created {
			t.Fatalf("version-Y Put = %v, %v", created, err)
		}
	}
	if st, _ = shared.Stats(); st.Blobs != programs+10 {
		t.Fatalf("mixed-version store holds %d blobs, want %d", st.Blobs, programs+10)
	}
}
