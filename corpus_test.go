package pdce_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pdce"
)

// loadCorpus reads the realistic case-study programs under
// testdata/corpus.
func loadCorpus(t *testing.T) map[string]*pdce.Program {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.while"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("corpus missing: %v (%d files)", err, len(paths))
	}
	out := make(map[string]*pdce.Program, len(paths))
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		name := strings.TrimSuffix(filepath.Base(path), ".while")
		prog, err := pdce.ParseSource(name, string(data))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		out[name] = prog
	}
	return out
}

// TestCorpusAllTransformationsVerified runs every transformation over
// every corpus program and verifies behaviour.
func TestCorpusAllTransformationsVerified(t *testing.T) {
	for name, prog := range loadCorpus(t) {
		prog := prog
		t.Run(name, func(t *testing.T) {
			// The motion/elimination family must satisfy the
			// full guarantee (outputs + never-more-work).
			pdeOut, _, err := prog.PDE()
			if err != nil {
				t.Fatal(err)
			}
			if err := prog.Check(pdeOut, 64); err != nil {
				t.Fatalf("pde: %v", err)
			}
			pfeOut, _, err := prog.PFE()
			if err != nil {
				t.Fatal(err)
			}
			if err := prog.Check(pfeOut, 64); err != nil {
				t.Fatalf("pfe: %v", err)
			}
			for _, pass := range []string{"dce", "fce", "ssadce", "dudce"} {
				opt, err := prog.Passes(pass)
				if err != nil {
					t.Fatal(err)
				}
				if err := prog.Check(opt, 48); err != nil {
					t.Fatalf("%s: %v", pass, err)
				}
			}
			// lcm and copyprop rename; outputs-only.
			for _, pass := range []string{"lcm", "copyprop"} {
				opt, err := prog.Passes(pass)
				if err != nil {
					t.Fatal(err)
				}
				if err := prog.CheckOutputs(opt, 48); err != nil {
					t.Fatalf("%s: %v", pass, err)
				}
			}
			// hoist preserves counts exactly.
			h, err := prog.HoistAssignments()
			if err != nil {
				t.Fatal(err)
			}
			if err := prog.Check(h, 48); err != nil {
				t.Fatalf("hoist: %v", err)
			}
		})
	}
}

// TestCorpusPDEWins: every corpus program was written with partially
// dead work in its hot loop; pde must achieve strictly positive
// dynamic savings, strictly more than classic dce on the programs
// whose waste is branch-dependent.
func TestCorpusPDEWins(t *testing.T) {
	wins := 0
	for name, prog := range loadCorpus(t) {
		opt, _, err := prog.PDE()
		if err != nil {
			t.Fatal(err)
		}
		s := prog.Savings(opt, 64)
		if s <= 0 {
			t.Errorf("%s: pde saved nothing", name)
			continue
		}
		dceOut, _ := prog.DeadCodeElimination()
		if s > prog.Savings(dceOut, 64) {
			wins++
		}
		t.Logf("%s: pde savings %.1f%%", name, 100*s)
	}
	if wins < 2 {
		t.Errorf("pde beat plain dce on only %d corpus programs", wins)
	}
}

// TestCorpusDeterministicAcrossRuns: optimizing twice yields identical
// programs (full pipeline determinism on realistic inputs).
func TestCorpusDeterministicAcrossRuns(t *testing.T) {
	for name, prog := range loadCorpus(t) {
		a, _, err := prog.PDE()
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := prog.PDE()
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Errorf("%s: nondeterministic optimization", name)
		}
	}
}

// TestCorpusProfilesIdentifyLoops: the interpreter's execution profile
// must put the loop blocks at the top for every corpus program —
// the signal the Section 7 heuristic consumes.
func TestCorpusProfilesIdentifyLoops(t *testing.T) {
	for name, prog := range loadCorpus(t) {
		tr := prog.RunWithInput(1, 8192, map[string]int64{"n": 200, "base": 3})
		if !tr.Terminated {
			t.Errorf("%s: profile run did not terminate", name)
			continue
		}
		max := 0
		for _, v := range tr.VisitsPerBlock {
			if v > max {
				max = v
			}
		}
		if max < 100 {
			t.Errorf("%s: no block visited ≥100 times with n=200 (profile flat: %v)",
				name, tr.VisitsPerBlock)
		}
	}
}
