package pdce

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Client is a small HTTP client for the pdced optimization service.
// The zero value is not usable; construct with NewClient. Methods are
// safe for concurrent use (the underlying http.Client is).
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the pdced server at baseURL (e.g.
// "http://localhost:8723"). A trailing slash is tolerated.
func NewClient(baseURL string) *Client {
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: &http.Client{}}
}

// WithHTTPClient substitutes the transport (custom timeouts, test
// doubles) and returns the same client for chaining.
func (c *Client) WithHTTPClient(hc *http.Client) *Client {
	c.hc = hc
	return c
}

// RequestOptions configures one Optimize call. The zero value requests
// a plain pde run with the server's default deadline.
type RequestOptions struct {
	// Mode selects pde (Dead, the default) or pfe (Faint).
	Mode Mode
	// MaxRounds truncates the fixpoint (0 = optimum).
	MaxRounds int
	// Deadline bounds this request's optimization (0 = the server's
	// default). On expiry the server returns the best partial result,
	// marked Degraded.
	Deadline time.Duration
	// Telemetry includes solver metrics in the response's Stats; Trace
	// additionally records provenance events (implied by Explain).
	Telemetry bool
	Trace     bool
	// Explain asks for the named variable's provenance report.
	Explain string
	// Lang forces the input language ("cfg" or "while"; empty =
	// auto-detect).
	Lang string
}

// Optimize submits one program and returns the optimized result plus
// the cache state from the X-Pdced-Cache header. Non-2xx responses
// return a *ServerError; a Degraded response (deadline, rollback) is
// returned as a result, not an error — check resp.Degraded.
func (c *Client) Optimize(ctx context.Context, name, source string, o RequestOptions) (*OptimizeResponse, CacheState, error) {
	q := url.Values{}
	if name != "" {
		q.Set("name", name)
	}
	q.Set("mode", o.Mode.String())
	if o.MaxRounds > 0 {
		q.Set("max_rounds", strconv.Itoa(o.MaxRounds))
	}
	if o.Deadline > 0 {
		q.Set("deadline_ms", strconv.FormatInt(o.Deadline.Milliseconds(), 10))
	}
	if o.Telemetry {
		q.Set("telemetry", "1")
	}
	if o.Trace {
		q.Set("trace", "1")
	}
	if o.Explain != "" {
		q.Set("explain", o.Explain)
	}
	if o.Lang != "" {
		q.Set("lang", o.Lang)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+"/optimize?"+q.Encode(), strings.NewReader(source))
	if err != nil {
		return nil, "", err
	}
	req.Header.Set("Content-Type", "text/plain")
	injectTraceContext(ctx, req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, "", decodeServerError(resp)
	}
	var out OptimizeResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, "", fmt.Errorf("pdced: decoding optimize response: %w", err)
	}
	return &out, CacheState(resp.Header.Get("X-Pdced-Cache")), nil
}

// OptimizeBatch submits a batch of programs in one request. Per-program
// failures (parse errors, shed jobs, degraded results) are reported in
// the entries, not as a call error.
func (c *Client) OptimizeBatch(ctx context.Context, breq BatchOptimizeRequest) (*BatchOptimizeResponse, error) {
	body, err := json.Marshal(breq)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+"/optimize/batch", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeServerError(resp)
	}
	var out BatchOptimizeResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("pdced: decoding batch response: %w", err)
	}
	return &out, nil
}

// Submit enqueues one program on the server's durable async queue
// (POST /optimize/submit) and returns the submission receipt. A 202
// receipt means the job is durably logged server-side: it survives a
// server crash and can be polled — across restarts — at Result with
// the receipt's ID. Explain is rejected by the server on async
// submissions.
func (c *Client) Submit(ctx context.Context, name, source string, o RequestOptions) (*SubmitResponse, error) {
	q := url.Values{}
	if name != "" {
		q.Set("name", name)
	}
	q.Set("mode", o.Mode.String())
	if o.MaxRounds > 0 {
		q.Set("max_rounds", strconv.Itoa(o.MaxRounds))
	}
	if o.Telemetry {
		q.Set("telemetry", "1")
	}
	if o.Trace {
		q.Set("trace", "1")
	}
	if o.Lang != "" {
		q.Set("lang", o.Lang)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+"/optimize/submit?"+q.Encode(), strings.NewReader(source))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "text/plain")
	injectTraceContext(ctx, req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return nil, decodeServerError(resp)
	}
	var out SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("pdced: decoding submit response: %w", err)
	}
	return &out, nil
}

// Result fetches one async job's state (GET /optimize/result/{id}).
// With ack true a terminal job is acknowledged — the server may then
// forget it, so ack only after the result is safely consumed.
func (c *Client) Result(ctx context.Context, id string, ack bool) (*JobResult, error) {
	u := c.base + "/optimize/result/" + url.PathEscape(id)
	if ack {
		u += "?ack=1"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeServerError(resp)
	}
	var out JobResult
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("pdced: decoding job result: %w", err)
	}
	return &out, nil
}

// Poll polls Result every interval until the job reaches a terminal
// state (done or failed) or ctx expires. Transport failures and 5xx
// answers do not abort the poll — the server may be mid-restart, and a
// durably-logged job will be there when it returns — so the only error
// Poll returns of its own accord is ctx's.
func (c *Client) Poll(ctx context.Context, id string, interval time.Duration) (*JobResult, error) {
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		res, err := c.Result(ctx, id, false)
		if err == nil && (res.State == JobDone || res.State == JobFailed) {
			return res, nil
		}
		if ctx.Err() != nil {
			if err == nil {
				err = ctx.Err()
			}
			return nil, err
		}
		select {
		case <-t.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Health probes GET /healthz and returns the reported status ("ok" or
// "draining"). A draining server reports its status without error; a
// transport failure returns one. Any other non-2xx answer — say a
// proxy's 502 with an HTML body — is returned as a *ServerError, never
// misreported as a JSON decode failure.
func (c *Client) Health(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	// A real pdced answers 200 ("ok") or 503 ("draining"); both carry
	// the HealthResponse shape. Anything else is not the health
	// endpoint talking — route it through the error decoder.
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusServiceUnavailable {
		var h HealthResponse
		if json.Unmarshal(body, &h) == nil && h.Status != "" {
			return h.Status, nil
		}
	}
	if resp.StatusCode/100 == 2 {
		return "", fmt.Errorf("pdced: decoding health response: unexpected body %q", truncate(body, 128))
	}
	return "", serverErrorFromResponse(resp, body)
}

// Metrics fetches GET /metrics.
func (c *Client) Metrics(ctx context.Context) (*ServerMetrics, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeServerError(resp)
	}
	var m ServerMetrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, fmt.Errorf("pdced: decoding metrics response: %w", err)
	}
	return &m, nil
}

// injectTraceContext propagates the span attached to ctx (via
// ContextWithSpan) as the W3C traceparent header, so the server-side
// root span joins the caller's trace instead of starting a fresh one.
// Without a span on the context the request goes out unmarked.
func injectTraceContext(ctx context.Context, req *http.Request) {
	if sc := SpanFromContext(ctx).Context(); sc.Valid() {
		req.Header.Set("Traceparent", sc.Traceparent())
	}
}

// Traces lists the server's retained request traces, newest first
// (GET /debug/traces). limit bounds the listing (0 = server default).
func (c *Client) Traces(ctx context.Context, limit int) (*TraceList, error) {
	u := c.base + "/debug/traces"
	if limit > 0 {
		u += "?limit=" + strconv.Itoa(limit)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeServerError(resp)
	}
	var out TraceList
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("pdced: decoding trace list: %w", err)
	}
	return &out, nil
}

// TraceByID fetches one retained trace's span tree
// (GET /debug/traces/{id}). A 404 — never recorded, sampled out, or
// evicted — is returned as a *ServerError with Kind "not-found".
func (c *Client) TraceByID(ctx context.Context, id string) (*TraceDump, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/debug/traces/"+url.PathEscape(id), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeServerError(resp)
	}
	var out TraceDump
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("pdced: decoding trace: %w", err)
	}
	return &out, nil
}

// PushTraces exports locally-recorded spans to the server's trace
// store (POST /debug/traces), returning the count the server accepted.
// The Pool uses this to ship its client-side spans so one trace shows
// both sides of a request.
func (c *Client) PushTraces(ctx context.Context, spans []SpanRecord) (int, error) {
	body, err := json.Marshal(spans)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+"/debug/traces", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, decodeServerError(resp)
	}
	var out map[string]int
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, fmt.Errorf("pdced: decoding ingest response: %w", err)
	}
	return out["ingested"], nil
}

// decodeServerError turns a non-2xx response into a *ServerError,
// tolerating non-JSON bodies (proxies, panics before the handler).
func decodeServerError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	return serverErrorFromResponse(resp, body)
}

// serverErrorFromResponse is decodeServerError over an already-read
// body (Health reads the body before deciding how to interpret it).
func serverErrorFromResponse(resp *http.Response, body []byte) error {
	se := &ServerError{Status: resp.StatusCode}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if n, err := strconv.Atoi(ra); err == nil {
			se.RetryAfter = n
		}
	}
	if err := json.Unmarshal(body, se); err != nil || se.Message == "" {
		se.Message = strings.TrimSpace(string(body))
		if se.Message == "" {
			se.Message = http.StatusText(resp.StatusCode)
		}
	}
	return se
}

// truncate bounds b for inclusion in an error message.
func truncate(b []byte, n int) string {
	s := strings.TrimSpace(string(b))
	if len(s) > n {
		s = s[:n] + "..."
	}
	return s
}
