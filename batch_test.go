package pdce_test

import (
	"fmt"
	"testing"

	"pdce"
)

// batchPrograms generates a mixed workload for the batch tests.
func batchPrograms(count int) []*pdce.Program {
	out := make([]*pdce.Program, count)
	for i := range out {
		p := pdce.GenParams{Seed: int64(i), Stmts: 80 + 10*(i%5), Vars: 4 + i%6}
		if i%4 == 3 {
			p.Irreducible = true
		}
		out[i] = pdce.Generate(p)
	}
	return out
}

// TestOptimizeAllMatchesSequential runs a 12-program batch through the
// concurrent pipeline (run under -race in CI) and checks each result
// against an individually-optimized reference.
func TestOptimizeAllMatchesSequential(t *testing.T) {
	progs := batchPrograms(12)
	for _, mode := range []pdce.Mode{pdce.Dead, pdce.Faint} {
		o := pdce.Options{Mode: mode}
		results := pdce.OptimizeAll(progs, o, 8)
		if len(results) != len(progs) {
			t.Fatalf("mode %v: got %d results for %d programs", mode, len(results), len(progs))
		}
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("mode %v, program %d: %v", mode, i, r.Err)
			}
			if r.Name != progs[i].Name() {
				t.Errorf("mode %v, program %d: result order broken: %q vs %q",
					mode, i, r.Name, progs[i].Name())
			}
			want, wantSt, err := progs[i].Optimize(o)
			if err != nil {
				t.Fatal(err)
			}
			if r.Program.Format() != want.Format() {
				t.Errorf("mode %v, program %d: batch result differs from sequential", mode, i)
			}
			if r.Stats != wantSt {
				t.Errorf("mode %v, program %d: stats differ: %+v vs %+v", mode, i, r.Stats, wantSt)
			}
		}
	}
}

// TestOptimizeAllWorkerCounts checks the pool produces the same results
// whatever its size, including degenerate counts.
func TestOptimizeAllWorkerCounts(t *testing.T) {
	progs := batchPrograms(9)
	o := pdce.Options{Mode: pdce.Dead}
	ref := pdce.OptimizeAll(progs, o, 1)
	for _, workers := range []int{0, 2, 16} {
		got := pdce.OptimizeAll(progs, o, workers)
		for i := range ref {
			if got[i].Program.Format() != ref[i].Program.Format() {
				t.Errorf("workers=%d, program %d: result differs from workers=1", workers, i)
			}
		}
	}
	if res := pdce.OptimizeAll(nil, o, 4); len(res) != 0 {
		t.Errorf("empty batch returned %d results", len(res))
	}
}

// TestOptimizeAllDoesNotMutateInputs verifies batch jobs only read
// their input programs — the guarantee that makes sharing one program
// across concurrent jobs safe.
func TestOptimizeAllDoesNotMutateInputs(t *testing.T) {
	progs := batchPrograms(8)
	before := make([]string, len(progs))
	for i, p := range progs {
		before[i] = p.Format()
	}
	pdce.OptimizeAll(progs, pdce.Options{Mode: pdce.Faint}, 4)
	for i, p := range progs {
		if p.Format() != before[i] {
			t.Errorf("program %d was mutated by OptimizeAll", i)
		}
	}
}

// BenchmarkOptimizeAll measures batch throughput at different pool
// sizes (the C9 experiment's microbenchmark form).
func BenchmarkOptimizeAll(b *testing.B) {
	progs := batchPrograms(16)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := pdce.OptimizeAll(progs, pdce.Options{Mode: pdce.Dead}, workers)
				for _, r := range res {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
	}
}
