// Benchmarks regenerating the paper's artifacts, one per table and
// figure (DESIGN.md's experiment index):
//
//   - BenchmarkFigNN: the full pde (or pfe, where the figure is about
//     faintness) transformation on each paper example.
//   - BenchmarkTable1Dead / BenchmarkTable1Faint: the Table 1 analyses.
//   - BenchmarkTable2Delayability: the Table 2 analysis.
//   - BenchmarkPDEScaling / BenchmarkPFEScaling: Section 6's
//     complexity claims, swept over program size.
//   - BenchmarkBaselines: the conventional eliminators for comparison.
//
// Run with: go test -bench=. -benchmem
package pdce_test

import (
	"fmt"
	"testing"

	"pdce/internal/analysis"
	"pdce/internal/baseline"
	"pdce/internal/cfg"
	"pdce/internal/copyprop"
	"pdce/internal/core"
	"pdce/internal/figures"
	"pdce/internal/hoist"
	"pdce/internal/interp"
	"pdce/internal/lcm"
	"pdce/internal/progen"
	"pdce/internal/ssa"
	"pdce/internal/verify"
)

// benchFigure runs the driver over one paper figure per iteration.
func benchFigure(b *testing.B, num int, mode core.Mode) {
	b.Helper()
	fig, err := figures.ByNum(num)
	if err != nil {
		b.Fatal(err)
	}
	g := fig.Graph()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.Transform(g, core.Options{Mode: mode}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig01(b *testing.B) { benchFigure(b, 1, core.ModeDead) }
func BenchmarkFig03(b *testing.B) { benchFigure(b, 3, core.ModeDead) }
func BenchmarkFig05(b *testing.B) { benchFigure(b, 5, core.ModeDead) }
func BenchmarkFig07(b *testing.B) { benchFigure(b, 7, core.ModeDead) }
func BenchmarkFig08(b *testing.B) { benchFigure(b, 8, core.ModeDead) }
func BenchmarkFig09(b *testing.B) { benchFigure(b, 9, core.ModeFaint) }
func BenchmarkFig10(b *testing.B) { benchFigure(b, 10, core.ModeDead) }
func BenchmarkFig11(b *testing.B) { benchFigure(b, 11, core.ModeDead) }
func BenchmarkFig12(b *testing.B) { benchFigure(b, 12, core.ModeFaint) }

// BenchmarkFig13 measures the block-local predicate computation the
// figure illustrates (sinking candidates).
func BenchmarkFig13(b *testing.B) {
	fig, err := figures.ByNum(13)
	if err != nil {
		b.Fatal(err)
	}
	g := fig.Graph()
	pt := g.CollectPatterns()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.ComputeLocals(g, pt)
	}
}

// benchSizes are the program sizes the scaling benchmarks sweep.
var benchSizes = []int{64, 256, 1024, 4096}

func scaledProgram(n int) *cfg.Graph {
	return progen.Generate(progen.Params{Seed: 42, Stmts: n})
}

// --- Table 1 -----------------------------------------------------------

func BenchmarkTable1Dead(b *testing.B) {
	for _, n := range benchSizes {
		g := scaledProgram(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				analysis.DeadVars(g)
			}
		})
	}
}

func BenchmarkTable1Faint(b *testing.B) {
	for _, n := range benchSizes {
		g := scaledProgram(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				analysis.FaintVars(g)
			}
		})
	}
}

// BenchmarkTable1FaintBlockwise measures the reference block-level
// solver for comparison with the paper's slotwise algorithm.
func BenchmarkTable1FaintBlockwise(b *testing.B) {
	for _, n := range benchSizes {
		g := scaledProgram(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				analysis.FaintVarsBlockwise(g)
			}
		})
	}
}

// --- Table 2 -----------------------------------------------------------

func BenchmarkTable2Delayability(b *testing.B) {
	for _, n := range benchSizes {
		g := scaledProgram(n)
		cfg.SplitCriticalEdges(g)
		pt := g.CollectPatterns()
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				analysis.Delayability(g, pt)
			}
		})
	}
}

// --- Section 6: full transformation scaling -----------------------------

func BenchmarkPDEScaling(b *testing.B) {
	for _, n := range benchSizes {
		g := scaledProgram(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.PDE(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPFEScaling(b *testing.B) {
	for _, n := range benchSizes {
		g := scaledProgram(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.PFE(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPDEIrreducible exercises the slotwise regime the paper's
// Section 6.1.1 reserves for arbitrary control flow.
func BenchmarkPDEIrreducible(b *testing.B) {
	for _, n := range benchSizes {
		g := progen.Generate(progen.Params{Seed: 42, Stmts: n, Irreducible: true})
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.PDE(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- baselines ----------------------------------------------------------

func BenchmarkBaselines(b *testing.B) {
	g := scaledProgram(1024)
	b.Run("dce", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			baseline.IteratedDCE(g)
		}
	})
	b.Run("fce", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			baseline.IteratedFCE(g)
		}
	})
	b.Run("dudce", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			baseline.DefUseDCE(g)
		}
	})
	b.Run("ssadce", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ssa.Eliminate(g)
		}
	})
	b.Run("pde", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.PDE(g); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pfe", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.PFE(g); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lcm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := lcm.Optimize(g); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSSABuild isolates SSA construction (the baseline's
// substrate).
func BenchmarkSSABuild(b *testing.B) {
	for _, n := range benchSizes {
		g := scaledProgram(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ssa.Build(g)
			}
		})
	}
}

// BenchmarkCriticalEdgeSplit isolates the Section 2.1 normalization.
func BenchmarkCriticalEdgeSplit(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				g := scaledProgram(n)
				b.StartTimer()
				cfg.SplitCriticalEdges(g)
			}
		})
	}
}

// BenchmarkInterpreter measures the verification substrate (one
// bounded execution per iteration).
func BenchmarkInterpreter(b *testing.B) {
	g := scaledProgram(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := interp.RunSeeded(g, uint64(i))
		if tr.BlockVisits == 0 {
			b.Fatal("empty execution")
		}
	}
}

// BenchmarkHoist measures the Related-Work hoisting baseline.
func BenchmarkHoist(b *testing.B) {
	g := scaledProgram(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := hoist.Optimize(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCopyProp measures global copy propagation.
func BenchmarkCopyProp(b *testing.B) {
	g := scaledProgram(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		copyprop.Optimize(g)
	}
}

// BenchmarkChaoticDriver measures the Theorem 3.7 chaotic-iteration
// driver against the deterministic one (BenchmarkPDEScaling).
func BenchmarkChaoticDriver(b *testing.B) {
	g := scaledProgram(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.TransformChaotic(g, core.ModeDead, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVerify measures the replay-based checker itself.
func BenchmarkVerify(b *testing.B) {
	g := scaledProgram(256)
	opt, _, err := core.PDE(g)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := verify.CheckTransformed(g, opt, verify.Options{Seeds: 8, Fuel: 256})
		if !rep.OK() {
			b.Fatal(rep.String())
		}
	}
}
