package pdce_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pdce"
	"pdce/internal/server"
)

const poolTestSource = "y := a + b\nif * {\n    y := c\n}\nout(x + y)\n"

func newTestReplica(t *testing.T) (*server.Server, *httptest.Server) {
	t.Helper()
	s, err := server.New(server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// The optimizer's determinism is what makes replica choice an
// affinity-only decision: every replica must answer a given request
// with the same bytes, and the pool must return that same answer no
// matter which members are alive.
func TestPoolByteIdenticalAcrossReplicas(t *testing.T) {
	var servers []*server.Server
	var urls []string
	for i := 0; i < 3; i++ {
		s, ts := newTestReplica(t)
		servers = append(servers, s)
		urls = append(urls, ts.URL)
	}

	// Direct per-replica answers must already be byte-identical.
	var want []byte
	for i, u := range urls {
		resp, _, err := pdce.NewClient(u).Optimize(context.Background(), "p", poolTestSource, pdce.RequestOptions{})
		if err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
		body, _ := json.Marshal(resp)
		if want == nil {
			want = body
		} else if string(body) != string(want) {
			t.Fatalf("replica %d answered differently:\n%s\nvs\n%s", i, body, want)
		}
	}

	p, err := pdce.NewPool(urls, pdce.PoolOptions{ProbeInterval: -1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	first, _, err := p.Optimize(context.Background(), "p", poolTestSource, pdce.RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Drain two replicas: whichever member was the key's home, the
	// request is now forced onto the single survivor.
	servers[0].BeginDrain()
	servers[1].BeginDrain()
	second, _, err := p.Optimize(context.Background(), "p", poolTestSource, pdce.RequestOptions{})
	if err != nil {
		t.Fatalf("optimize with two replicas draining: %v", err)
	}
	b1, _ := json.Marshal(first)
	b2, _ := json.Marshal(second)
	if string(b1) != string(want) || string(b2) != string(want) {
		t.Fatalf("pool answers diverged from the replica answer:\nfirst  %s\nsecond %s\nwant   %s", b1, b2, want)
	}
}

// An ejected replica must be probed back in: /healthz failures eject
// it, a later "ok" readmits it, and routing resumes using it.
func TestPoolEjectedReplicaReadmitted(t *testing.T) {
	_, healthyTS := newTestReplica(t)
	flaky, flakyBackend := newTestReplica(t)
	_ = flaky
	var down atomic.Bool
	flakyTS := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			w.WriteHeader(http.StatusBadGateway)
			fmt.Fprintln(w, "<html>replica rebooting</html>")
			return
		}
		flakyBackend.Config.Handler.ServeHTTP(w, r)
	}))
	defer flakyTS.Close()

	p, err := pdce.NewPool([]string{flakyTS.URL, healthyTS.URL}, pdce.PoolOptions{ProbeInterval: -1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	down.Store(true)
	p.Probe()
	if m := p.Members(); m[0].Healthy || !m[1].Healthy {
		t.Fatalf("after failing probe: members = %+v, want flaky ejected", m)
	}
	// Requests keep succeeding while one member is out.
	if _, _, err := p.Optimize(context.Background(), "p", poolTestSource, pdce.RequestOptions{}); err != nil {
		t.Fatalf("optimize with ejected member: %v", err)
	}

	down.Store(false)
	p.Probe()
	if m := p.Members(); !m[0].Healthy {
		t.Fatalf("after passing probe: members = %+v, want flaky readmitted", m)
	}
	snap := p.Stats().Snapshot()
	rc := snap.Replicas[flakyTS.URL]
	if rc.Ejections < 1 || rc.Readmissions < 1 {
		t.Fatalf("flaky replica counters = %+v, want >=1 ejection and readmission", rc)
	}
}

// Killing a replica outright (closed listener) must stay invisible to
// callers: every request completes via failover.
func TestPoolSurvivesReplicaKill(t *testing.T) {
	_, aliveTS := newTestReplica(t)
	_, deadTS := newTestReplica(t)
	p, err := pdce.NewPool([]string{deadTS.URL, aliveTS.URL}, pdce.PoolOptions{ProbeInterval: -1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	deadTS.Close()

	for i := 0; i < 12; i++ {
		src := fmt.Sprintf("x := a + b%d\nout(x)\n", i)
		if _, _, err := p.Optimize(context.Background(), fmt.Sprintf("p%d", i), src, pdce.RequestOptions{}); err != nil {
			t.Fatalf("request %d saw the kill: %v", i, err)
		}
	}
	if m := p.Members(); m[0].Healthy {
		t.Fatal("killed replica still marked healthy")
	}
}

func newQueuedReplica(t *testing.T) (*server.Server, *httptest.Server) {
	t.Helper()
	s, err := server.New(server.Config{QueueDir: t.TempDir(), QueueBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// Async submission through the pool: SubmitAll fans a batch out by
// affinity, each receipt names the replica that durably owns the job,
// and PollResult against that replica completes with the same bytes a
// synchronous call yields. Queues are per-replica state, so polling a
// replica that never accepted the job must miss.
func TestPoolSubmitPollAcrossReplicas(t *testing.T) {
	var urls []string
	for i := 0; i < 3; i++ {
		_, ts := newQueuedReplica(t)
		urls = append(urls, ts.URL)
	}
	p, err := pdce.NewPool(urls, pdce.PoolOptions{ProbeInterval: -1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var batch []pdce.BatchProgram
	for i := 0; i < 8; i++ {
		batch = append(batch, pdce.BatchProgram{
			Name:   fmt.Sprintf("async-%d", i),
			Source: fmt.Sprintf("x := a + b%d\nif * {\n    x := c\n}\nout(x)\n", i),
		})
	}
	receipts := p.SubmitAll(ctx, batch, pdce.RequestOptions{})
	if len(receipts) != len(batch) {
		t.Fatalf("SubmitAll returned %d receipts for %d programs", len(receipts), len(batch))
	}
	replicas := make(map[string]bool)
	for i, rec := range receipts {
		if rec.Err != nil {
			t.Fatalf("submit %s: %v", rec.Name, rec.Err)
		}
		if rec.ID == "" || rec.Replica == "" {
			t.Fatalf("receipt %d incomplete: %+v", i, rec)
		}
		replicas[rec.Replica] = true
	}
	if len(replicas) < 2 {
		t.Fatalf("all %d submissions landed on one replica — affinity routing is not spreading", len(batch))
	}

	for i, rec := range receipts {
		res, err := p.PollResult(ctx, rec.Replica, rec.ID, time.Millisecond)
		if err != nil {
			t.Fatalf("poll %s on %s: %v", rec.Name, rec.Replica, err)
		}
		if res.State != pdce.JobDone {
			t.Fatalf("job %s: state %q error %q", rec.Name, res.State, res.Error)
		}
		// The async bytes must match a synchronous answer for the same
		// program (determinism is the whole exactly-once story).
		sync, _, err := p.Optimize(ctx, batch[i].Name, batch[i].Source, pdce.RequestOptions{})
		if err != nil {
			t.Fatal(err)
		}
		var async pdce.OptimizeResponse
		if err := json.Unmarshal(res.Result, &async); err != nil {
			t.Fatalf("job %s result: %v", rec.Name, err)
		}
		ab, _ := json.Marshal(async)
		sb, _ := json.Marshal(sync)
		if string(ab) != string(sb) {
			t.Fatalf("job %s: async result diverged from sync\nasync: %s\nsync:  %s", rec.Name, ab, sb)
		}
	}

	// Duplicate submission: same program resubmitted must collapse onto
	// the same replica and job ID.
	again, replica, err := p.Submit(ctx, batch[0].Name, batch[0].Source, pdce.RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if again.ID != receipts[0].ID || replica != receipts[0].Replica {
		t.Fatalf("resubmission moved: id %s@%s, want %s@%s",
			again.ID, replica, receipts[0].ID, receipts[0].Replica)
	}

	// Polling a replica that never saw the job must not fabricate one.
	var other string
	for _, u := range urls {
		if u != receipts[0].Replica {
			other = u
			break
		}
	}
	if _, err := pdce.NewClient(other).Result(ctx, receipts[0].ID, false); err == nil {
		t.Fatal("foreign replica answered for a job it never accepted")
	}
	if _, err := p.PollResult(ctx, "http://nobody:1", receipts[0].ID, time.Millisecond); err == nil ||
		!strings.Contains(err.Error(), "unknown pool replica") {
		t.Fatalf("PollResult against a non-member: err %v, want unknown-replica", err)
	}
}
