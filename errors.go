package pdce

import (
	"errors"
	"fmt"
)

// The structured error taxonomy of the failure-containment layer.
// Every failure the package can report — from the parsing front ends,
// Optimize, SafeOptimize, or OptimizeAll — matches exactly one of the
// sentinel errors below under errors.Is, and errors.As recovers the
// corresponding structured error for details:
//
//	ErrParse      → *ParseError       the input did not parse
//	ErrPanic      → *PanicError       the optimizer panicked; the
//	                                  input program is returned
//	                                  unchanged and a repro bundle is
//	                                  captured
//	ErrDeadline   → *DeadlineError    the watchdog stopped the run;
//	                                  the best phase-boundary program
//	                                  is returned
//	ErrMiscompile → *MiscompileError  verified mode caught a semantic
//	                                  mismatch; the last verified
//	                                  program is returned
//
// The taxonomy exists so that a batch caller can triage failures
// without string matching: parse errors are the input's fault,
// deadlines are capacity policy, panics and miscompiles are optimizer
// bugs worth a repro bundle and a bug report.
var (
	// ErrParse marks failures of ParseCFG and ParseSource.
	ErrParse = errors.New("pdce: parse error")
	// ErrPanic marks internal optimizer panics contained by
	// SafeOptimize or OptimizeAll.
	ErrPanic = errors.New("pdce: internal panic in optimizer")
	// ErrDeadline marks runs stopped by Options.Context or
	// Options.RoundBudget. The accompanying program is valid and
	// correct, possibly short of the optimum.
	ErrDeadline = errors.New("pdce: optimization deadline exceeded")
	// ErrMiscompile marks runs rolled back by verified mode
	// (Options.Verify) after the semantics oracle rejected a round.
	ErrMiscompile = errors.New("pdce: verified mode detected a semantic mismatch")
)

// ParseError wraps a front-end parse failure with the program (or
// file) name. It matches ErrParse and the parser's underlying
// positioned error under errors.Is/As.
type ParseError struct {
	// Name is the program name (ParseSource) or "cfg input"
	// (ParseCFG); cmd-line callers overwrite it with the file path.
	Name string
	// Err is the parser's error, carrying line/column position.
	Err error
}

func (e *ParseError) Error() string { return fmt.Sprintf("pdce: parse %s: %v", e.Name, e.Err) }

func (e *ParseError) Unwrap() []error { return []error{ErrParse, e.Err} }

// PanicError is an optimizer panic contained by SafeOptimize or
// OptimizeAll. The caller received the input program unchanged.
type PanicError struct {
	// Value is the recovered panic value, Stack the goroutine stack
	// at the panic site.
	Value any
	Stack string
	// Bundle is the path of the repro bundle written to
	// Options.ReproDir ("" when no directory was configured or the
	// write failed; BundleErr carries a failed write's error).
	Bundle    string
	BundleErr error
}

func (e *PanicError) Error() string {
	if e.Bundle != "" {
		return fmt.Sprintf("pdce: optimizer panicked: %v (repro bundle: %s)", e.Value, e.Bundle)
	}
	return fmt.Sprintf("pdce: optimizer panicked: %v", e.Value)
}

func (e *PanicError) Unwrap() error { return ErrPanic }

// DeadlineError is a run stopped by the watchdog. The caller received
// the best phase-boundary program reached — semantically correct,
// possibly short of the optimum (Options.MaxRounds truncation has the
// same correctness contract).
type DeadlineError struct {
	// Rounds is the number of driver rounds entered before the stop;
	// Phase names the checkpoint that observed it ("round",
	// "eliminate", or "sink").
	Rounds int
	Phase  string
	// Cause is context.DeadlineExceeded, context.Canceled, or
	// core.ErrRoundBudget — errors.Is sees through to it.
	Cause error
}

func (e *DeadlineError) Error() string {
	return fmt.Sprintf("pdce: optimization stopped at %s after %d rounds: %v", e.Phase, e.Rounds, e.Cause)
}

func (e *DeadlineError) Unwrap() []error { return []error{ErrDeadline, e.Cause} }

// MiscompileError is a verified-mode rollback: the semantics oracle
// rejected the program after round Round, and the caller received the
// program as of round GoodRound (0 = the unoptimized input) instead.
type MiscompileError struct {
	Round, GoodRound int
	// Report is the oracle's verdict (the first violation found).
	Report string
}

func (e *MiscompileError) Error() string {
	return fmt.Sprintf("pdce: round %d miscompiled, rolled back to round %d: %s",
		e.Round, e.GoodRound, e.Report)
}

func (e *MiscompileError) Unwrap() error { return ErrMiscompile }
