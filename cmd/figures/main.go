// Command figures regenerates every example of the paper: it runs the
// implementation over the programs of Figures 1–13 and checks the
// results against the transformations the paper reports (Figure 2,
// Figure 4, Figure 6, ...). This is the per-figure reproduction
// harness of DESIGN.md's experiment index.
//
// Usage:
//
//	figures            # run and check all figures
//	figures -fig 5     # only the Figure 5 → Figure 6 example
//	figures -v         # also print the before/after programs
//	figures -dump DIR  # write the figure programs as .cfg files
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"pdce/internal/cfg"
	"pdce/internal/core"
	"pdce/internal/figures"
	"pdce/internal/verify"
)

var (
	figNum  = flag.Int("fig", 0, "only run the figure with this paper number (0 = all)")
	verbose = flag.Bool("v", false, "print before/after programs")
	dumpDir = flag.String("dump", "", "write the figure programs as .cfg files into this directory")
)

func main() {
	flag.Parse()
	if *dumpDir != "" {
		if err := dump(*dumpDir); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		return
	}

	var figs []*figures.Figure
	if *figNum != 0 {
		f, err := figures.ByNum(*figNum)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		figs = []*figures.Figure{f}
	} else {
		figs = figures.All()
	}

	failures := 0
	for _, f := range figs {
		if !runFigure(f) {
			failures++
		}
	}
	if failures > 0 {
		fmt.Printf("\n%d figure(s) FAILED\n", failures)
		os.Exit(1)
	}
	fmt.Printf("\nall %d figures reproduce the paper's transformations\n", len(figs))
}

func runFigure(f *figures.Figure) bool {
	fmt.Printf("== Figure %d (%s): %s\n", f.Num, f.Name, f.Title)
	in := f.Graph()
	ok := true

	if *verbose {
		fmt.Println("-- input:")
		fmt.Print(indent(in.String()))
	}

	check := func(label string, mode core.Mode, want *cfg.Graph) {
		if want == nil {
			return
		}
		got, st, err := core.Transform(in, core.Options{Mode: mode})
		if err != nil {
			fmt.Printf("   %s: ERROR: %v\n", label, err)
			ok = false
			return
		}
		rep := verify.CheckTransformed(in, got, verify.Options{Seeds: 48})
		diffs := cfg.Diff(got, want)
		switch {
		case len(diffs) > 0:
			fmt.Printf("   %s: MISMATCH with the paper's result:\n", label)
			for _, d := range diffs {
				fmt.Printf("      %s\n", d)
			}
			ok = false
		case !rep.OK():
			fmt.Printf("   %s: SEMANTICS VIOLATION: %s\n", label, rep)
			ok = false
		default:
			fmt.Printf("   %s: matches the paper (rounds=%d, eliminated=%d, %s)\n",
				label, st.Rounds, st.Eliminated, rep)
			if *verbose {
				fmt.Printf("-- %s result:\n%s", label, indent(got.String()))
			}
		}
	}

	check("pde", core.ModeDead, f.PDEGraph())
	if f.ExpectedPFE != "" {
		check("pfe", core.ModeFaint, f.PFEGraph())
	}
	if f.ExpectedPDE == "" && f.ExpectedPFE == "" {
		fmt.Printf("   (block-local illustration; exercised by the analysis test suite)\n")
	}
	return ok
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return "      " + strings.Join(lines, "\n      ") + "\n"
}

func dump(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, f := range figures.All() {
		path := filepath.Join(dir, f.Name+".cfg")
		if err := os.WriteFile(path, []byte(f.Source), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", path)
	}
	return nil
}
