package main

import (
	"os"
	"path/filepath"
	"testing"

	"pdce/internal/figures"
	"pdce/internal/parser"
)

func TestRunFigureAll(t *testing.T) {
	for _, f := range figures.All() {
		if !runFigure(f) {
			t.Errorf("figure %d failed", f.Num)
		}
	}
}

func TestDumpWritesParseableFiles(t *testing.T) {
	dir := t.TempDir()
	if err := dump(dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(figures.All()) {
		t.Fatalf("dumped %d files, want %d", len(entries), len(figures.All()))
	}
	for _, ent := range entries {
		data, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := parser.ParseCFG(string(data)); err != nil {
			t.Errorf("%s does not re-parse: %v", ent.Name(), err)
		}
	}
}

func TestIndent(t *testing.T) {
	got := indent("a\nb\n")
	want := "      a\n      b\n"
	if got != want {
		t.Errorf("indent = %q, want %q", got, want)
	}
}
