// Command pdce-blobd is the shared blob daemon of the pdced serving
// tier: a small stdlib-only HTTP front over a checksummed blob
// directory, serving the fleet's L2 result store when replicas have
// no shared filesystem to mount a dir: store on.
//
// Usage:
//
//	pdce-blobd -addr localhost:8742 -dir /var/cache/pdce-store
//
// Endpoints:
//
//	PUT    /cache/{key}  store a blob (write-once: 201 created,
//	                     200 when the key already holds one)
//	GET    /cache/{key}  fetch a blob (404 when absent)
//	HEAD   /cache/{key}  existence probe
//	DELETE /cache/{key}  remove a blob (operator cleanup, lease expiry)
//	GET    /stats        {"blobs":N,"bytes":M}
//	GET    /healthz      liveness: "ok"
//
// Blobs are immutable facts keyed by content address (the optimizer
// is deterministic, Theorem 3.7), so the daemon needs no locking
// protocol: racing writers of one key carry identical bytes and the
// first wins. Point a fleet at it with `pdced -store=http://host:8742`.
//
// The surface is fleet-internal and unauthenticated — run it on a
// private network, like any shared cache tier.
//
// On SIGTERM/SIGINT the daemon finishes in-flight transfers and
// exits 0; blobs are fsync'd before they become visible, so a crash
// loses at most in-progress writes (swept as tmp-* orphans on the
// next boot).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pdce/internal/store"
)

var (
	addr = flag.String("addr", "localhost:8742", "listen address")
	dir  = flag.String("dir", "", "blob directory (required; created if missing)")
)

func main() {
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "pdce-blobd: -dir is required")
		os.Exit(2)
	}
	backend, err := store.NewDirStore(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdce-blobd:", err)
		os.Exit(1)
	}
	if n := backend.Swept(); n > 0 {
		fmt.Fprintf(os.Stderr, "pdce-blobd: swept %d orphaned temp files\n", n)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdce-blobd:", err)
		os.Exit(1)
	}
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	if err := serve(backend, ln, sig); err != nil {
		fmt.Fprintln(os.Stderr, "pdce-blobd:", err)
		os.Exit(1)
	}
}

// serve runs the daemon on ln until a signal arrives, then shuts down
// gracefully. Factored out of main so tests can drive a real daemon
// on an ephemeral port with a synthesized signal.
func serve(backend store.Backend, ln net.Listener, sig <-chan os.Signal) error {
	blobs := store.Handler(backend)
	mux := http.NewServeMux()
	mux.Handle("/cache/", blobs)
	mux.Handle("GET /stats", blobs)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	srv := &http.Server{Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "pdce-blobd: serving on http://%s\n", ln.Addr())

	select {
	case err := <-errc:
		ln.Close()
		return err
	case <-sig:
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	fmt.Fprintln(os.Stderr, "pdce-blobd: drained, exiting")
	return nil
}
