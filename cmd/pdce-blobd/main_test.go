package main

import (
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"pdce/internal/store"
)

// TestServeSmoke boots the real daemon loop on an ephemeral port,
// exercises the wire contract end to end, and shuts it down with a
// synthesized signal — the same path a SIGTERM takes in production.
func TestServeSmoke(t *testing.T) {
	backend, err := store.NewDirStore(filepath.Join(t.TempDir(), "blobs"))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "localhost:0")
	if err != nil {
		t.Fatal(err)
	}
	sig := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() { done <- serve(backend, ln, sig) }()
	base := "http://" + ln.Addr().String()

	put := func(key, body string) int {
		req, _ := http.NewRequest(http.MethodPut, base+"/cache/"+key, strings.NewReader(body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	key := "pdce-cache-v1-blobd-smoke"
	if code := put(key, "result bytes"); code != http.StatusCreated {
		t.Fatalf("first PUT = %d, want 201", code)
	}
	// Write-once: a racing second writer is told the key already exists.
	if code := put(key, "racing writer"); code != http.StatusOK {
		t.Fatalf("second PUT = %d, want 200", code)
	}
	resp, err := http.Get(base + "/cache/" + key)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "result bytes" {
		t.Fatalf("GET = %d %q, want first writer's bytes", resp.StatusCode, body)
	}

	for _, path := range []string{"/healthz", "/stats"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		payload, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d: %s", path, resp.StatusCode, payload)
		}
	}

	sig <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve exited with %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not shut down after signal")
	}
}
