package main

import (
	"context"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"pdce"
	"pdce/internal/server"
)

// TestSmokeTrace is the tracing smoke behind `make smoke-trace`: a
// real pdced on an ephemeral port takes one traced request through a
// pdce.Pool, and the daemon's /debug/traces must then hold ONE merged
// trace containing the pool's client spans and the server's own
// subtree down to the solver rounds, while /metrics?format=prom
// exposes the store counters in Prometheus text format.
func TestSmokeTrace(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sig := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() {
		done <- serve(server.Config{TraceSeed: 42}, ln, nil, sig)
	}()
	base := "http://" + ln.Addr().String()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	client := pdce.NewClient(base)
	waitHealthy(t, ctx, client)

	store := pdce.NewTraceStore(16, 1.0, 7)
	p, err := pdce.NewPool([]string{base}, pdce.PoolOptions{Traces: store, ProbeInterval: -1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	src := "y := a + b\nif * {\n    y := c\n}\nout(x + y)\n"
	if _, _, err := p.Optimize(ctx, "smoke-trace", src, pdce.RequestOptions{}); err != nil {
		t.Fatal(err)
	}

	list := store.Summaries(0)
	if len(list.Traces) != 1 {
		t.Fatalf("pool recorded %d traces, want 1", len(list.Traces))
	}
	dump, err := client.TraceByID(ctx, list.Traces[0].TraceID)
	if err != nil {
		t.Fatalf("daemon lost the trace: %v", err)
	}
	names := map[string]int{}
	for _, sp := range dump.Spans {
		if sp.TraceID != list.Traces[0].TraceID {
			t.Fatalf("span %s in foreign trace %s", sp.SpanID, sp.TraceID)
		}
		names[sp.Name]++
	}
	for _, n := range []string{"client.request", "client.attempt", "server.optimize", "solve", "solve.round"} {
		if names[n] == 0 {
			t.Errorf("merged trace missing %q span: %v", n, names)
		}
	}

	resp, err := http.Get(base + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("prom content type %q", ct)
	}
	if !strings.Contains(string(prom), "pdce_traces_kept 1") {
		t.Errorf("prom exposition missing trace counters:\n%s", prom)
	}

	sig <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
}

// TestDebugListenerShutdown is the -debug-addr leak regression: the
// pprof side listener must serve while the daemon runs and be fully
// released — port rebindable — after SIGTERM, even though it lives on
// its own http.Server outside the main drain path.
func TestDebugListenerShutdown(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	debugLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sig := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() {
		done <- serve(server.Config{}, ln, debugLn, sig)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	waitHealthy(t, ctx, pdce.NewClient("http://"+ln.Addr().String()))

	debugBase := "http://" + debugLn.Addr().String()
	resp, err := http.Get(debugBase + "/debug/pprof/")
	if err != nil {
		t.Fatalf("pprof index: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index: %d %s", resp.StatusCode, body)
	}
	// The service endpoints must NOT be on the debug listener, nor
	// pprof on the service one.
	if resp, err := http.Get(debugBase + "/optimize"); err == nil {
		if resp.StatusCode == http.StatusOK {
			t.Error("service route reachable on the debug listener")
		}
		resp.Body.Close()
	}
	if resp, err := http.Get("http://" + ln.Addr().String() + "/debug/pprof/"); err == nil {
		if resp.StatusCode == http.StatusOK {
			t.Error("pprof reachable on the service listener")
		}
		resp.Body.Close()
	}

	sig <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	for _, addr := range []string{ln.Addr().String(), debugLn.Addr().String()} {
		l, err := net.Listen("tcp", addr)
		if err != nil {
			t.Fatalf("port %s still held after shutdown: %v", addr, err)
		}
		l.Close()
	}
}
