package main

import (
	"flag"
	"os"
	"strings"
	"testing"
)

// TestOpsDocsCoverFlags is the flag half of the docs drift guard
// (docs_test.go in internal/server covers query parameters and
// /metrics fields): every flag pdced registers must appear backticked
// in docs/OPERATIONS.md's reference, so adding a flag without
// documenting it fails ci.
func TestOpsDocsCoverFlags(t *testing.T) {
	data, err := os.ReadFile("../../docs/OPERATIONS.md")
	if err != nil {
		t.Fatalf("reading docs/OPERATIONS.md: %v", err)
	}
	doc := string(data)
	n := 0
	flag.VisitAll(func(f *flag.Flag) {
		if strings.HasPrefix(f.Name, "test.") { // the test binary's own flags
			return
		}
		n++
		if !strings.Contains(doc, "`-"+f.Name+"`") {
			t.Errorf("flag -%s is registered by pdced but not documented in docs/OPERATIONS.md", f.Name)
		}
	})
	if n < 10 {
		t.Fatalf("visited only %d flags — the filter no longer matches the flag set", n)
	}
}

// TestValidateDirs pins the startup guard against directory flags that
// alias each other: every tier sweeps or rewrites its directory, so a
// shared path is caught before it becomes silent data loss.
func TestValidateDirs(t *testing.T) {
	cases := []struct {
		name                      string
		spill, queue, repro, spec string
		wantErr                   string
	}{
		{name: "all empty"},
		{name: "distinct", spill: "/a", queue: "/b", repro: "/c", spec: "dir:/d"},
		{name: "spill vs queue", spill: "/x", queue: "/x", wantErr: "-queue-dir"},
		{name: "spill vs store", spill: "/x", spec: "dir:/x", wantErr: "-store=dir:"},
		{name: "queue vs store", queue: "/q", spec: "dir:/q", wantErr: "-store=dir:"},
		{name: "repro vs store", repro: "/r", spec: "dir:/r", wantErr: "-store=dir:"},
		{name: "trailing slash aliases", spill: "/x/", spec: "dir:/x", wantErr: "-store=dir:"},
		{name: "dot segments alias", spill: "/x/y/../y", queue: "/x/y", wantErr: "-queue-dir"},
		{name: "http store never aliases", spill: "/x", spec: "http://x"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateDirs(tc.spill, tc.queue, tc.repro, tc.spec)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validateDirs = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validateDirs = %v, want error naming %s", err, tc.wantErr)
			}
		})
	}
}

// TestConfigFromFlagsStore pins the -store flag's wiring end to end:
// a valid spec yields a backend, a bad one refuses startup.
func TestConfigFromFlagsStore(t *testing.T) {
	set := func(name, val string) {
		t.Helper()
		f := flag.Lookup(name)
		if f == nil {
			t.Fatalf("flag %s not registered", name)
		}
		old := f.Value.String()
		if err := f.Value.Set(val); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { f.Value.Set(old) })
	}

	set("store", "mem")
	cfg, err := configFromFlags()
	if err != nil || cfg.Store == nil {
		t.Fatalf("configFromFlags with -store=mem: cfg.Store=%v err=%v", cfg.Store, err)
	}

	set("store", "nonsense")
	if _, err := configFromFlags(); err == nil {
		t.Fatal("configFromFlags accepted -store=nonsense")
	}

	set("store", "dir:"+t.TempDir())
	set("queue-dir", "")
	cfg, err = configFromFlags()
	if err != nil || cfg.Store == nil {
		t.Fatalf("configFromFlags with -store=dir: cfg.Store=%v err=%v", cfg.Store, err)
	}
}
