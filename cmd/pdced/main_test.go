package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"pdce"
	"pdce/internal/faultinject"
	"pdce/internal/server"
)

// TestServeSmoke is the end-to-end daemon smoke test behind `make
// smoke-server`: start a real pdced on an ephemeral port, optimize a
// corpus file through the client, prove the second request is a cache
// hit, then shut down via a synthesized SIGTERM and assert a clean
// drain.
func TestServeSmoke(t *testing.T) {
	src, err := os.ReadFile("../../testdata/corpus/stats.while")
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sig := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() {
		done <- serve(server.Config{SpillDir: t.TempDir()}, ln, nil, sig)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	client := pdce.NewClient("http://" + ln.Addr().String())
	waitHealthy(t, ctx, client)

	first, state, err := client.Optimize(ctx, "stats", string(src), pdce.RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if state != pdce.CacheMiss || first.Program == "" {
		t.Fatalf("first optimize: state %q, program %d bytes", state, len(first.Program))
	}
	second, state, err := client.Optimize(ctx, "stats", string(src), pdce.RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if state != pdce.CacheHit {
		t.Fatalf("second optimize: state %q, want hit", state)
	}
	if second.Program != first.Program || second.Key != first.Key {
		t.Error("cached response differs from the computed one")
	}

	m, err := client.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Server.Optimizes != 1 || m.Server.CacheHits != 1 {
		t.Errorf("metrics after two requests: optimizes=%d hits=%d, want 1/1",
			m.Server.Optimizes, m.Server.CacheHits)
	}

	// SIGTERM: the daemon drains and serve returns nil.
	sig <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	// The port is actually released.
	ln2, err := net.Listen("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("rebinding the daemon port after shutdown: %v", err)
	}
	ln2.Close()
}

// TestServeDrainRestartQueue is the restart drill end to end: a real
// pdced with a durable queue takes async submissions plus an in-flight
// batch, gets SIGTERM'd mid-work, restarts on the same queue
// directory, and must complete every job — byte-identical to a
// fault-free reference server. The in-flight batch must finish inside
// the first daemon's drain; the queued async jobs must survive into
// the second.
func TestServeDrainRestartQueue(t *testing.T) {
	queueDir := t.TempDir()
	cfg := server.Config{QueueDir: queueDir, QueueWorkers: 1, QueueBackoff: time.Millisecond}
	programs := map[string]string{
		"drill-a": "x := 1\ny := x + 2\nif * {\n    y := 3\n}\nout(x + y)\n",
		"drill-b": "a := 4\nb := a + 5\nif * {\n    b := 6\n}\nout(a + b)\n",
		"drill-c": "p := 7\nq := p + 8\nif * {\n    q := 9\n}\nout(p + q)\n",
	}

	// Slow the solver so the async jobs are still working (or queued —
	// one worker) when the SIGTERM lands.
	var stall atomic.Int64
	stall.Store(int64(2 * time.Millisecond))
	defer faultinject.Set(func(p faultinject.Point, _ any) {
		if p == faultinject.SolverVisit {
			if d := stall.Load(); d > 0 {
				time.Sleep(time.Duration(d))
			}
		}
	})()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sig := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() { done <- serve(cfg, ln, nil, sig) }()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	client := pdce.NewClient("http://" + ln.Addr().String())
	waitHealthy(t, ctx, client)

	ids := make(map[string]string)
	for name, src := range programs {
		sub, err := client.Submit(ctx, name, src, pdce.RequestOptions{})
		if err != nil {
			t.Fatalf("submit %s: %v", name, err)
		}
		ids[name] = sub.ID
	}

	// An in-flight batch riding through the drain: launched before the
	// signal, it must be allowed to finish and answer 200.
	batchDone := make(chan error, 1)
	go func() {
		breq, _ := json.Marshal(pdce.BatchOptimizeRequest{Programs: []pdce.BatchProgram{
			{Name: "batch-a", Source: "m := 1\nout(m)\n"},
			{Name: "batch-b", Source: "n := 2\nn := 3\nout(n)\n"},
		}})
		resp, err := http.Post("http://"+ln.Addr().String()+"/optimize/batch",
			"application/json", bytes.NewReader(breq))
		if err != nil {
			batchDone <- err
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			batchDone <- fmt.Errorf("batch: %d %s", resp.StatusCode, body)
			return
		}
		var bresp pdce.BatchOptimizeResponse
		if err := json.Unmarshal(body, &bresp); err != nil {
			batchDone <- err
			return
		}
		for _, e := range bresp.Results {
			if e.Error != "" || e.Program == "" {
				batchDone <- fmt.Errorf("batch entry %s: error %q", e.Name, e.Error)
				return
			}
		}
		batchDone <- nil
	}()
	time.Sleep(20 * time.Millisecond) // let the batch be admitted before the drain begins

	sig <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve after SIGTERM: %v", err)
		}
	case <-time.After(45 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	if err := <-batchDone; err != nil {
		t.Fatalf("in-flight batch across drain: %v", err)
	}

	// Restart on the same queue directory, full speed.
	stall.Store(0)
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sig2 := make(chan os.Signal, 1)
	done2 := make(chan error, 1)
	go func() { done2 <- serve(cfg, ln2, nil, sig2) }()
	client2 := pdce.NewClient("http://" + ln2.Addr().String())
	waitHealthy(t, ctx, client2)

	// Fault-free reference for byte-identity.
	oracleSrv, err := server.New(server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	oracle := httptest.NewServer(oracleSrv.Handler())
	defer oracle.Close()

	for name, src := range programs {
		res, err := client2.Poll(ctx, ids[name], time.Millisecond)
		if err != nil {
			t.Fatalf("job %s after restart: %v", name, err)
		}
		if res.State != pdce.JobDone {
			t.Fatalf("job %s after restart: state %q error %q", name, res.State, res.Error)
		}
		oresp, err := http.Post(oracle.URL+"/optimize?name="+name, "text/plain", strings.NewReader(src))
		if err != nil {
			t.Fatal(err)
		}
		want, _ := io.ReadAll(oresp.Body)
		oresp.Body.Close()
		if oresp.StatusCode != http.StatusOK {
			t.Fatalf("oracle %s: %d %s", name, oresp.StatusCode, want)
		}
		if string(res.Result) != string(want) {
			t.Fatalf("job %s: restart result diverged from reference\ngot:  %s\nwant: %s",
				name, res.Result, want)
		}
	}

	sig2 <- syscall.SIGTERM
	select {
	case err := <-done2:
		if err != nil {
			t.Fatalf("second daemon after SIGTERM: %v", err)
		}
	case <-time.After(45 * time.Second):
		t.Fatal("second daemon did not exit after SIGTERM")
	}
}

func waitHealthy(t *testing.T, ctx context.Context, client *pdce.Client) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if status, err := client.Health(ctx); err == nil && status == "ok" {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("daemon never became healthy")
}
