package main

import (
	"context"
	"net"
	"os"
	"syscall"
	"testing"
	"time"

	"pdce"
	"pdce/internal/server"
)

// TestServeSmoke is the end-to-end daemon smoke test behind `make
// smoke-server`: start a real pdced on an ephemeral port, optimize a
// corpus file through the client, prove the second request is a cache
// hit, then shut down via a synthesized SIGTERM and assert a clean
// drain.
func TestServeSmoke(t *testing.T) {
	src, err := os.ReadFile("../../testdata/corpus/stats.while")
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sig := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() {
		done <- serve(server.Config{SpillDir: t.TempDir()}, ln, sig)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	client := pdce.NewClient("http://" + ln.Addr().String())
	waitHealthy(t, ctx, client)

	first, state, err := client.Optimize(ctx, "stats", string(src), pdce.RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if state != pdce.CacheMiss || first.Program == "" {
		t.Fatalf("first optimize: state %q, program %d bytes", state, len(first.Program))
	}
	second, state, err := client.Optimize(ctx, "stats", string(src), pdce.RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if state != pdce.CacheHit {
		t.Fatalf("second optimize: state %q, want hit", state)
	}
	if second.Program != first.Program || second.Key != first.Key {
		t.Error("cached response differs from the computed one")
	}

	m, err := client.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Server.Optimizes != 1 || m.Server.CacheHits != 1 {
		t.Errorf("metrics after two requests: optimizes=%d hits=%d, want 1/1",
			m.Server.Optimizes, m.Server.CacheHits)
	}

	// SIGTERM: the daemon drains and serve returns nil.
	sig <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	// The port is actually released.
	ln2, err := net.Listen("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("rebinding the daemon port after shutdown: %v", err)
	}
	ln2.Close()
}

func waitHealthy(t *testing.T, ctx context.Context, client *pdce.Client) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if status, err := client.Health(ctx); err == nil && status == "ok" {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("daemon never became healthy")
}
