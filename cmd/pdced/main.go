// Command pdced is the long-running optimization service: it accepts
// programs over HTTP (single and batch), optimizes them through the
// failure-contained pdce pipeline, and memoizes results in a
// content-addressed cache (the transformation is deterministic, so
// identical inputs are served without re-solving).
//
// Usage:
//
//	pdced -addr localhost:8723 -spill-dir /var/cache/pdced
//
// Endpoints:
//
//	POST /optimize             optimize one program (body = source text)
//	POST /optimize/batch       optimize many programs (JSON body)
//	POST /optimize/submit      enqueue one program durably (needs -queue-dir)
//	GET  /optimize/result/{id} poll an async job
//	GET  /healthz              liveness (green even while load shedding)
//	GET  /metrics              cache, queue, and latency counters
//	                           (?format=prom for Prometheus text)
//	GET  /debug/traces         retained request traces (tail-sampled)
//	GET  /debug/traces/{id}    one trace's span tree
//	GET/PUT /cache/{key}       peer L2 serving (only with -peer-cache)
//
// A fleet shares results through the L2 store (-store): every local
// solve is published, every local miss consults it before solving, and
// solve ownership for cold keys is arbitrated cluster-wide through TTL
// leases (-lease-ttl), so a thundering herd across replicas computes
// once. Back it with a shared directory (-store=dir:/mnt/pdce), a
// pdce-blobd daemon (-store=http://host:8742), or a sibling replica
// running -peer-cache.
//
// Examples:
//
//	curl -s -X POST --data-binary @prog.while 'localhost:8723/optimize?telemetry=1'
//	curl -s -X POST --data-binary @prog.while 'localhost:8723/optimize?mode=pfe&deadline_ms=500'
//	curl -s 'localhost:8723/metrics' | jq .cache.hit_rate
//
// On SIGTERM/SIGINT the daemon drains gracefully: new requests are
// rejected with 503 (and /healthz turns red so load balancers stop
// routing), every in-flight optimization runs to completion, then the
// process exits 0. A second signal, or -drain-timeout expiring, forces
// exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"pdce/internal/server"
	"pdce/internal/store"
)

var (
	addr         = flag.String("addr", "localhost:8723", "listen address")
	cacheEntries = flag.Int("cache-entries", 4096, "in-memory result cache capacity (entries)")
	spillDir     = flag.String("spill-dir", "", "directory for disk-spilled cache entries (warm results survive restarts; empty = memory only)")
	maxInFlight  = flag.Int("max-inflight", 0, "concurrent optimizations (0 = GOMAXPROCS)")
	maxQueue     = flag.Int("max-queue", 0, "requests allowed to wait for a slot before shedding with 429 (0 = 4x max-inflight)")
	deadline     = flag.Duration("deadline", 10*time.Second, "default per-request optimization deadline (0 = none; requests may override with deadline_ms)")
	roundBudget  = flag.Duration("round-budget", 0, "watchdog bound per fixpoint round (0 = none)")
	reproDir     = flag.String("repro-dir", "", "directory for repro bundles of contained optimizer panics")
	batchWorkers = flag.Int("workers", 0, "worker pool size for /optimize/batch (0 = max-inflight)")
	drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long graceful drain waits for in-flight requests")
	queueDir     = flag.String("queue-dir", "", "directory for the durable async job queue's write-ahead log (empty = async endpoints disabled)")
	queueRetries = flag.Int("queue-retries", 0, "attempts per async job before it is poisoned (0 = 3)")
	queueWorkers = flag.Int("queue-workers", 0, "worker pool size for the async queue (0 = 2)")
	storeSpec    = flag.String("store", "", "shared L2 result store: dir:/path (shared filesystem), http://host:port (pdce-blobd or a -peer-cache replica), mem (testing), or off/empty (disabled)")
	leaseTTL     = flag.Duration("lease-ttl", 0, "cluster solve-lease lifetime: how long a crashed replica can stall a key fleet-wide (0 = 3s)")
	peerCache    = flag.Bool("peer-cache", false, "serve this replica's own cache at GET/PUT /cache/{key} so fleet members can use each other as L2 peers")
	traceCap     = flag.Int("trace-cap", 512, "retained request traces (0 disables tracing)")
	traceSample  = flag.Float64("trace-sample", 1.0, "keep probability for unremarkable traces in [0,1]; error and p99-slow traces are always kept")
	debugAddr    = flag.String("debug-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060); keep it off the service port and firewalled — profiles expose source paths and heap contents")
)

func main() {
	flag.Parse()
	cfg, err := configFromFlags()
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdced:", err)
		os.Exit(2)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdced:", err)
		os.Exit(1)
	}
	var debugLn net.Listener
	if *debugAddr != "" {
		debugLn, err = net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pdced: -debug-addr:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pdced: pprof on http://%s/debug/pprof/ (do not expose publicly)\n", debugLn.Addr())
	}
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	if err := serve(cfg, ln, debugLn, sig); err != nil {
		fmt.Fprintln(os.Stderr, "pdced:", err)
		os.Exit(1)
	}
}

func configFromFlags() (server.Config, error) {
	if err := validateDirs(*spillDir, *queueDir, *reproDir, *storeSpec); err != nil {
		return server.Config{}, err
	}
	backend, err := store.Open(*storeSpec)
	if err != nil {
		return server.Config{}, fmt.Errorf("-store: %w", err)
	}
	cfg := server.Config{
		CacheEntries:    *cacheEntries,
		SpillDir:        *spillDir,
		MaxInFlight:     *maxInFlight,
		MaxQueue:        *maxQueue,
		DefaultDeadline: *deadline,
		RoundBudget:     *roundBudget,
		ReproDir:        *reproDir,
		BatchWorkers:    *batchWorkers,
		QueueDir:        *queueDir,
		QueueRetries:    *queueRetries,
		QueueWorkers:    *queueWorkers,
		TraceCapacity:   *traceCap,
		TraceSample:     *traceSample,
		Store:           backend,
		LeaseTTL:        *leaseTTL,
		PeerCache:       *peerCache,
	}
	if *traceCap <= 0 {
		cfg.TraceCapacity = -1 // the CLI's "0 = off" maps to Config's "negative = off"
	}
	return cfg, nil
}

// validateDirs refuses directory flags that alias each other. Each
// tier owns its directory's file lifecycle — the spill cache sweeps
// tmp-* orphans and quarantines corrupt .entry files, the queue
// rewrites its WAL, a dir: store sweeps and fans out blobs — so two
// tiers sharing one directory would sweep and quarantine each other's
// files. Caught at startup, where the fix (distinct paths) is obvious,
// instead of as silent data loss later.
func validateDirs(spill, queue, repro, storeSpec string) error {
	owners := map[string]string{}
	claim := func(flagName, p string) error {
		if p == "" {
			return nil
		}
		cp := filepath.Clean(p)
		if prev, ok := owners[cp]; ok {
			return fmt.Errorf("%s and %s both point at %q; each needs its own directory", prev, flagName, cp)
		}
		owners[cp] = flagName
		return nil
	}
	if err := claim("-spill-dir", spill); err != nil {
		return err
	}
	if err := claim("-queue-dir", queue); err != nil {
		return err
	}
	if err := claim("-repro-dir", repro); err != nil {
		return err
	}
	if p, ok := strings.CutPrefix(storeSpec, "dir:"); ok {
		if err := claim("-store=dir:", p); err != nil {
			return err
		}
	}
	return nil
}

// serveDebug runs the opt-in pprof surface on its own listener, kept
// apart from the service port so profiles are never one firewall
// mistake away from the public API. The returned shutdown closes the
// listener as well as the server — srv.Close only closes listeners
// Serve has already registered, and losing that race would leave the
// debug port bound for the life of the process (the same pattern as
// cmd/pdce's telemetry listener).
func serveDebug(ln net.Listener) (shutdown func()) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return func() {
		srv.Close()
		ln.Close()
	}
}

// serve runs the daemon on ln until a signal arrives, then drains:
// the server stops admitting (503 + red /healthz), the HTTP layer
// waits for in-flight requests, and the listener closes. debugLn, when
// non-nil, serves pprof until the same shutdown. Factored out of main
// so tests can drive a real daemon on an ephemeral port with a
// synthesized signal.
func serve(cfg server.Config, ln, debugLn net.Listener, sig <-chan os.Signal) error {
	s, err := server.New(cfg)
	if err != nil {
		return err
	}
	if debugLn != nil {
		defer serveDebug(debugLn)()
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "pdced: serving on http://%s\n", ln.Addr())

	select {
	case err := <-errc:
		ln.Close()
		return err
	case <-sig:
	}

	fmt.Fprintln(os.Stderr, "pdced: draining...")
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Refuse new work first so the HTTP shutdown below only has to
	// wait for requests that were already admitted.
	if err := s.Drain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "pdced:", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	fmt.Fprintln(os.Stderr, "pdced: drained, exiting")
	return nil
}
