package main

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pdce/internal/server"
)

// Smoke: a short closed-loop run against two in-process replicas
// completes without errors and reports per-replica traffic.
func TestLoadSmoke(t *testing.T) {
	var urls []string
	for i := 0; i < 2; i++ {
		s, err := server.New(server.Config{})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		urls = append(urls, ts.URL)
	}
	var out strings.Builder
	err := run(context.Background(), loadConfig{
		replicas: urls,
		conc:     4,
		duration: 300 * time.Millisecond,
		programs: 8,
		stmts:    48,
		seed:     1,
	}, &out)
	if err != nil {
		t.Fatalf("load run failed: %v\n%s", err, out.String())
	}
	report := out.String()
	if !strings.Contains(report, "0 failed") {
		t.Fatalf("report does not show a clean run:\n%s", report)
	}
	for _, u := range urls {
		if !strings.Contains(report, "replica "+u) {
			t.Fatalf("report is missing replica %s:\n%s", u, report)
		}
	}
	if !strings.Contains(report, "affinity hit rate 1.000") {
		t.Fatalf("healthy ring should route every request to its home:\n%s", report)
	}
}
