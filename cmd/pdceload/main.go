// Command pdceload drives one or more pdced replicas with a
// closed-loop load generator: a fixed number of workers each keep
// exactly one request in flight, so offered load adapts to what the
// cluster can absorb instead of piling up an open-loop backlog.
//
// Requests go through pdce.Pool, so the generator exercises the full
// cluster client — consistent-hash affinity, health ejection, bounded
// retry, and (with -hedge) hedged requests — and its report is the
// pool's own view of the run: throughput, latency percentiles,
// per-replica attempt and failure counts, affinity hit rate.
//
// Usage:
//
//	pdceload -replicas http://host1:8723,http://host2:8723 -conc 16 -duration 30s
//	pdceload -replicas http://localhost:8723 -programs 64 -stmts 256 -hedge
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pdce"
	"pdce/internal/progen"
)

type loadConfig struct {
	replicas   []string
	conc       int
	duration   time.Duration
	programs   int
	stmts      int
	seed       int64
	mode       string
	hedge      bool
	hedgeDelay time.Duration
}

var (
	replicasFlag = flag.String("replicas", "http://localhost:8723", "comma-separated pdced base URLs")
	conc         = flag.Int("conc", 8, "closed-loop workers (requests in flight)")
	duration     = flag.Duration("duration", 10*time.Second, "how long to drive load")
	programs     = flag.Int("programs", 32, "distinct generated programs (the working set)")
	stmts        = flag.Int("stmts", 160, "statements per generated program")
	seed         = flag.Int64("seed", 1, "program-generator seed")
	mode         = flag.String("mode", "", "optimization mode passed through (pde, pfe; empty = server default)")
	hedge        = flag.Bool("hedge", false, "race a second replica after the hedge delay")
	hedgeDelay   = flag.Duration("hedge-delay", 0, "fixed hedge delay (0 = derive from observed p95)")
)

func main() {
	flag.Parse()
	cfg := loadConfig{
		replicas:   strings.Split(*replicasFlag, ","),
		conc:       *conc,
		duration:   *duration,
		programs:   *programs,
		stmts:      *stmts,
		seed:       *seed,
		mode:       *mode,
		hedge:      *hedge,
		hedgeDelay: *hedgeDelay,
	}
	if err := run(context.Background(), cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pdceload:", err)
		os.Exit(1)
	}
}

// run drives the load and writes the report. Factored out of main so
// the smoke test can point it at in-process replicas.
func run(ctx context.Context, cfg loadConfig, out io.Writer) error {
	p, err := pdce.NewPool(cfg.replicas, pdce.PoolOptions{
		Hedge:      cfg.hedge,
		HedgeDelay: cfg.hedgeDelay,
		Seed:       cfg.seed,
	})
	if err != nil {
		return err
	}
	defer p.Close()

	sources := make([]string, cfg.programs)
	for i := range sources {
		sources[i] = progen.Generate(progen.Params{Seed: cfg.seed + int64(i), Stmts: cfg.stmts}).Format()
	}
	var opts pdce.RequestOptions
	switch cfg.mode {
	case "":
	case "pde":
		opts.Mode = pdce.Dead
	case "pfe":
		opts.Mode = pdce.Faint
	default:
		return fmt.Errorf("unknown -mode %q (want pde or pfe)", cfg.mode)
	}

	ctx, cancel := context.WithTimeout(ctx, cfg.duration)
	defer cancel()
	var done, failed atomic.Int64
	var errMu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; ctx.Err() == nil; i++ {
				idx := i % len(sources)
				_, _, err := p.Optimize(ctx, fmt.Sprintf("load-%02d", idx), sources[idx], opts)
				if ctx.Err() != nil {
					return // the deadline, not the cluster, ended this request
				}
				if err != nil {
					failed.Add(1)
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					continue
				}
				done.Add(1)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	snap := p.Stats().Snapshot()
	fmt.Fprintf(out, "pdceload: %d requests in %v (%.1f reqs/s), %d failed, %d workers, %d replicas\n",
		done.Load(), elapsed.Round(time.Millisecond),
		float64(done.Load())/elapsed.Seconds(), failed.Load(), cfg.conc, len(cfg.replicas))
	fmt.Fprintf(out, "latency: p50 %v  p95 %v  max %v\n",
		time.Duration(snap.P50NS).Round(time.Microsecond),
		time.Duration(snap.P95NS).Round(time.Microsecond),
		time.Duration(snap.MaxNS).Round(time.Microsecond))
	fmt.Fprintf(out, "affinity hit rate %.3f, failovers %d, hedges %d (won %d)\n",
		snap.AffinityHitRate, snap.Failovers, snap.Hedges, snap.HedgesWon)
	bases := make([]string, 0, len(snap.Replicas))
	for base := range snap.Replicas {
		bases = append(bases, base)
	}
	sort.Strings(bases)
	for _, base := range bases {
		rc := snap.Replicas[base]
		fmt.Fprintf(out, "replica %s: %d attempts, %d failures, %d ejections, %d readmissions\n",
			base, rc.Attempts, rc.Failures, rc.Ejections, rc.Readmissions)
	}
	if failed.Load() > 0 {
		return fmt.Errorf("%d requests failed, first: %w", failed.Load(), firstErr)
	}
	return nil
}
