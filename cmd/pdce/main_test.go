package main

import (
	"strings"
	"testing"

	"pdce"
)

func TestDetect(t *testing.T) {
	cases := []struct{ src, want string }{
		{"graph \"g\"\nnode 1 {}\n", "cfg"},
		{"node 1 { x := 1 }", "cfg"},
		{"edge s e", "cfg"},
		{"// comment\n# another\nnode 1 {}", "cfg"},
		{"x := a + b\nout(x)", "while"},
		{"if * { out(1) }", "while"},
		{"", "while"},
		{"// only comments", "while"},
		// A WHILE program whose first word merely *starts* with a
		// keyword is not the CFG format.
		{"nodes := 1\nout(nodes)", "while"},
		{"edges := 2\nout(edges)", "while"},
	}
	for _, c := range cases {
		if got := detect(c.src); got != c.want {
			t.Errorf("detect(%q) = %q, want %q", c.src, got, c.want)
		}
	}
}

func withMode(t *testing.T, m string, f func()) {
	t.Helper()
	old := *mode
	*mode = m
	defer func() { *mode = old }()
	f()
}

func TestTransformModes(t *testing.T) {
	prog, err := pdce.ParseSource("t", `
y := a + b
if * { y := c }
out(x + y)
`)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"pde", "pfe", "dce", "fce", "ssadce", "dudce", "lcm", "copyprop", "none"} {
		withMode(t, m, func() {
			opt, _, err := transform(prog)
			if err != nil {
				t.Errorf("mode %s: %v", m, err)
				return
			}
			if opt == nil {
				t.Errorf("mode %s: nil result", m)
			}
		})
	}
	withMode(t, "bogus", func() {
		if _, _, err := transform(prog); err == nil {
			t.Error("unknown mode accepted")
		}
	})
}

func TestTransformPDEHasStats(t *testing.T) {
	prog, err := pdce.ParseSource("t", "y := a+b\nif * { y := c }\nout(y)")
	if err != nil {
		t.Fatal(err)
	}
	withMode(t, "pde", func() {
		_, st, err := transform(prog)
		if err != nil {
			t.Fatal(err)
		}
		if st == nil || st.Rounds == 0 {
			t.Error("pde mode returned no stats")
		}
	})
	withMode(t, "dce", func() {
		_, st, err := transform(prog)
		if err != nil {
			t.Fatal(err)
		}
		if st != nil {
			t.Error("dce mode returned driver stats")
		}
	})
}

func TestParseLangSelection(t *testing.T) {
	oldLang := *lang
	defer func() { *lang = oldLang }()

	*lang = "auto"
	if _, err := parse("out(1)", "t"); err != nil {
		t.Errorf("auto/while: %v", err)
	}
	if _, err := parse("node 1 { out(1) }\nedge s 1\nedge 1 e", "t"); err != nil {
		t.Errorf("auto/cfg: %v", err)
	}
	*lang = "cfg"
	if _, err := parse("out(1)", "t"); err == nil {
		t.Error("cfg lang accepted while source")
	}
	*lang = "while"
	if _, err := parse("x := 1\nout(x)", "t"); err != nil {
		t.Errorf("while: %v", err)
	}
	*lang = "klingon"
	if _, err := parse("out(1)", "t"); err == nil || !strings.Contains(err.Error(), "unknown -lang") {
		t.Errorf("bad lang error = %v", err)
	}
}
