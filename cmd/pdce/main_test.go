package main

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pdce"
	"pdce/internal/faultinject"
)

func TestDetect(t *testing.T) {
	cases := []struct{ src, want string }{
		{"graph \"g\"\nnode 1 {}\n", "cfg"},
		{"node 1 { x := 1 }", "cfg"},
		{"edge s e", "cfg"},
		{"// comment\n# another\nnode 1 {}", "cfg"},
		{"x := a + b\nout(x)", "while"},
		{"if * { out(1) }", "while"},
		{"", "while"},
		{"// only comments", "while"},
		// A WHILE program whose first word merely *starts* with a
		// keyword is not the CFG format.
		{"nodes := 1\nout(nodes)", "while"},
		{"edges := 2\nout(edges)", "while"},
	}
	for _, c := range cases {
		if got := detect(c.src); got != c.want {
			t.Errorf("detect(%q) = %q, want %q", c.src, got, c.want)
		}
	}
}

func withMode(t *testing.T, m string, f func()) {
	t.Helper()
	old := *mode
	*mode = m
	defer func() { *mode = old }()
	f()
}

func TestTransformModes(t *testing.T) {
	prog, err := pdce.ParseSource("t", `
y := a + b
if * { y := c }
out(x + y)
`)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"pde", "pfe", "dce", "fce", "ssadce", "dudce", "lcm", "copyprop", "none"} {
		withMode(t, m, func() {
			opt, _, err := transform(prog)
			if err != nil {
				t.Errorf("mode %s: %v", m, err)
				return
			}
			if opt == nil {
				t.Errorf("mode %s: nil result", m)
			}
		})
	}
	withMode(t, "bogus", func() {
		if _, _, err := transform(prog); err == nil {
			t.Error("unknown mode accepted")
		}
	})
}

func TestTransformPDEHasStats(t *testing.T) {
	prog, err := pdce.ParseSource("t", "y := a+b\nif * { y := c }\nout(y)")
	if err != nil {
		t.Fatal(err)
	}
	withMode(t, "pde", func() {
		_, st, err := transform(prog)
		if err != nil {
			t.Fatal(err)
		}
		if st == nil || st.Rounds == 0 {
			t.Error("pde mode returned no stats")
		}
	})
	withMode(t, "dce", func() {
		_, st, err := transform(prog)
		if err != nil {
			t.Fatal(err)
		}
		if st != nil {
			t.Error("dce mode returned driver stats")
		}
	})
}

func TestParseLangSelection(t *testing.T) {
	oldLang := *lang
	defer func() { *lang = oldLang }()

	*lang = "auto"
	if _, err := parse("out(1)", "t"); err != nil {
		t.Errorf("auto/while: %v", err)
	}
	if _, err := parse("node 1 { out(1) }\nedge s 1\nedge 1 e", "t"); err != nil {
		t.Errorf("auto/cfg: %v", err)
	}
	*lang = "cfg"
	if _, err := parse("out(1)", "t"); err == nil {
		t.Error("cfg lang accepted while source")
	}
	*lang = "while"
	if _, err := parse("x := 1\nout(x)", "t"); err != nil {
		t.Errorf("while: %v", err)
	}
	*lang = "klingon"
	if _, err := parse("out(1)", "t"); err == nil || !strings.Contains(err.Error(), "unknown -lang") {
		t.Errorf("bad lang error = %v", err)
	}
}

func TestExpandArgs(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	b := write("b.while", "out(1)")
	a := write("a.while", "out(2)")
	write(".hidden", "ignored")
	if err := os.Mkdir(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}

	got, err := expandArgs([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != a || got[1] != b {
		t.Errorf("expandArgs(dir) = %v, want [%s %s]", got, a, b)
	}

	got, err = expandArgs([]string{b, a})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != b || got[1] != a {
		t.Errorf("expandArgs(files) = %v (explicit order must be kept)", got)
	}

	if _, err := expandArgs([]string{filepath.Join(dir, "missing")}); err == nil {
		t.Error("expandArgs accepted a missing path")
	}
	if _, err := expandArgs([]string{filepath.Join(dir, "sub")}); err == nil {
		t.Error("expandArgs accepted an empty directory")
	}
}

func TestProgBase(t *testing.T) {
	cases := []struct{ in, want string }{
		{"prog.while", "prog"},
		{"dir/sub/loop.cfg", "loop"},
		{"noext", "noext"},
		{".hidden", ".hidden"},
	}
	for _, c := range cases {
		if got := progBase(c.in); got != c.want {
			t.Errorf("progBase(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestRunBatchEndToEnd drives the batch path through the real flag
// surface: two files in a directory, optimized concurrently, output in
// input order; a parse failure in one file must not stop the other and
// must surface as a non-nil error.
func TestRunBatchEndToEnd(t *testing.T) {
	dir := t.TempDir()
	good1 := filepath.Join(dir, "1good.while")
	good2 := filepath.Join(dir, "2good.while")
	bad := filepath.Join(dir, "3bad.while")
	os.WriteFile(good1, []byte("x := a+b\nif * { out(x) }\n"), 0o644)
	os.WriteFile(good2, []byte("y := 1\nout(2)\n"), 0o644)

	oldStdout := os.Stdout
	r, w, _ := os.Pipe()
	os.Stdout = w
	err := runBatch([]string{good1, good2})
	w.Close()
	os.Stdout = oldStdout
	var buf strings.Builder
	io.Copy(&buf, r)
	out := buf.String()
	if err != nil {
		t.Fatalf("batch over good files: %v", err)
	}
	i1, i2 := strings.Index(out, "==> "+good1), strings.Index(out, "==> "+good2)
	if i1 < 0 || i2 < 0 || i2 < i1 {
		t.Errorf("batch output misses per-file headers or order: %q", out)
	}

	os.WriteFile(bad, []byte("out(\n"), 0o644)
	os.Stdout, _ = os.Open(os.DevNull)
	err = runBatch([]string{good1, bad})
	os.Stdout = oldStdout
	if err == nil || !strings.Contains(err.Error(), "1 of 2 programs failed") {
		t.Errorf("batch with a bad file returned %v", err)
	}
}

// TestTransformDegradedOnPanic checks the single-file path's
// containment: an injected optimizer panic must surface as a non-nil
// error *plus* a usable program — the input unchanged — so run() can
// still print something and exit non-zero.
func TestTransformDegradedOnPanic(t *testing.T) {
	restore := faultinject.Set(func(p faultinject.Point, _ any) {
		if p == faultinject.EliminatePhase {
			panic("injected cli fault")
		}
	})
	defer restore()

	prog, err := pdce.ParseSource("t", "y := a+b\nif * { y := c }\nout(y)")
	if err != nil {
		t.Fatal(err)
	}
	withMode(t, "pde", func() {
		opt, _, err := transform(prog)
		if err == nil {
			t.Fatal("injected panic not reported")
		}
		if !errors.Is(err, pdce.ErrPanic) {
			t.Errorf("error does not match ErrPanic: %v", err)
		}
		if opt == nil || opt.Format() != prog.Format() {
			t.Error("degraded result is not the unchanged input")
		}
	})
}

// setFlag overrides a flag variable for the duration of the test.
func setFlag[T any](t *testing.T, p *T, v T) {
	t.Helper()
	old := *p
	*p = v
	t.Cleanup(func() { *p = old })
}

// runWithStdin drives the full single-file run() path with the program
// fed through standard input, returning captured standard output.
func runWithStdin(t *testing.T, src string) (string, error) {
	t.Helper()
	oldIn, oldOut := os.Stdin, os.Stdout
	inR, inW, _ := os.Pipe()
	outR, outW, _ := os.Pipe()
	os.Stdin, os.Stdout = inR, outW
	go func() {
		io.WriteString(inW, src)
		inW.Close()
	}()
	err := run()
	outW.Close()
	os.Stdin, os.Stdout = oldIn, oldOut
	var b strings.Builder
	io.Copy(&b, outR)
	return b.String(), err
}

// TestRunExplain checks the -explain surface end to end: the journey of
// a sunk-then-eliminated assignment replaces the program listing.
func TestRunExplain(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("..", "..", "testdata", "corpus", "stats.while"))
	if err != nil {
		t.Fatal(err)
	}
	setFlag(t, mode, "pde")
	setFlag(t, explainVar, "sq")
	out, err := runWithStdin(t, string(src))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "provenance of sq:") {
		t.Errorf("-explain did not replace the listing: %q", out)
	}
	for _, want := range []string{"removed from block", "inserted at", "eliminated"} {
		if !strings.Contains(out, want) {
			t.Errorf("-explain output misses %q:\n%s", want, out)
		}
	}
}

// TestRunMetricsJSONStdout checks that -metrics-json - emits a report
// that parses as pdce.Report, with the telemetry section populated, and
// that the JSON payload replaces the program listing on stdout.
func TestRunMetricsJSONStdout(t *testing.T) {
	setFlag(t, mode, "pde")
	setFlag(t, metricsJSON, "-")
	out, err := runWithStdin(t, "y := a+b\nif * { y := c }\nout(y)\n")
	if err != nil {
		t.Fatal(err)
	}
	var rep pdce.Report
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("stdout is not a single JSON report: %v\n%s", err, out)
	}
	if rep.Name != "stdin" || !rep.OK {
		t.Errorf("report header = %q ok=%v", rep.Name, rep.OK)
	}
	if rep.Stats.Rounds == 0 {
		t.Error("report has no rounds")
	}
	if rep.Stats.Telemetry == nil || rep.Stats.Telemetry.Delay.Solves == 0 {
		t.Errorf("report telemetry missing or empty: %+v", rep.Stats.Telemetry)
	}
}

// TestRunTraceJSONFile checks that -trace-json writes a parseable,
// densely-numbered event stream to a file while the program listing
// still goes to stdout.
func TestRunTraceJSONFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	setFlag(t, mode, "pfe")
	setFlag(t, traceJSON, path)
	out, err := runWithStdin(t, "y := a+b\nif * { y := c }\nout(y)\n")
	if err != nil {
		t.Fatal(err)
	}
	if out == "" {
		t.Error("file output must not suppress the program listing")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var evs []pdce.TraceEvent
	if err := json.Unmarshal(data, &evs); err != nil {
		t.Fatalf("trace file: %v", err)
	}
	if len(evs) == 0 {
		t.Fatal("empty trace")
	}
	for i, ev := range evs {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d (stream must be dense)", i, ev.Seq)
		}
	}
}

// TestRunObservabilityGuards checks flag validation on the single-file
// path.
func TestRunObservabilityGuards(t *testing.T) {
	setFlag(t, mode, "dce")
	setFlag(t, explainVar, "x")
	if _, err := runWithStdin(t, "out(1)\n"); err == nil || !strings.Contains(err.Error(), "require -mode pde or pfe") {
		t.Errorf("-explain with -mode dce returned %v", err)
	}

	setFlag(t, mode, "pde")
	setFlag(t, explainVar, "")
	setFlag(t, teleAddr, "127.0.0.1:0")
	if _, err := runWithStdin(t, "out(1)\n"); err == nil || !strings.Contains(err.Error(), "batch mode") {
		t.Errorf("-telemetry-addr on one file returned %v", err)
	}
}

// TestServeProgress checks the batch telemetry endpoint: GET /progress
// returns the tracker snapshot as JSON.
func TestServeProgress(t *testing.T) {
	var tk pdce.BatchTracker
	shutdown, addr, err := serveProgress("127.0.0.1:0", &tk)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	resp, err := http.Get("http://" + addr.String() + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var p pdce.BatchProgress
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		t.Fatal(err)
	}
	if p.Total != 0 || p.Done != 0 {
		t.Errorf("fresh tracker snapshot = %+v", p)
	}
}

// TestServeProgressReleasesPort is the regression test for the
// -telemetry-addr listener leak: shutting the endpoint down
// immediately after starting it (a fast batch) could race srv.Close
// against the Serve goroutine and leave the port bound. Rebinding the
// same fixed port across many start/stop cycles fails within a few
// iterations if the listener leaks.
func TestServeProgressReleasesPort(t *testing.T) {
	var tk pdce.BatchTracker
	shutdown, addr, err := serveProgress("127.0.0.1:0", &tk)
	if err != nil {
		t.Fatal(err)
	}
	port := addr.String()
	shutdown()
	for i := 0; i < 20; i++ {
		shutdown, _, err := serveProgress(port, &tk)
		if err != nil {
			t.Fatalf("iteration %d: port %s still bound: %v", i, port, err)
		}
		shutdown()
	}
}

// TestRunBatchMetricsReport drives batch mode with -metrics-json: the
// report must cover every input in order — including the parse failure
// — and carry the aggregated batch metrics.
func TestRunBatchMetricsReport(t *testing.T) {
	dir := t.TempDir()
	good1 := filepath.Join(dir, "1good.while")
	bad := filepath.Join(dir, "2bad.while")
	good2 := filepath.Join(dir, "3good.while")
	os.WriteFile(good1, []byte("x := a+b\nif * { out(x) }\n"), 0o644)
	os.WriteFile(bad, []byte("out(\n"), 0o644)
	os.WriteFile(good2, []byte("y := 1\nout(2)\n"), 0o644)
	reportPath := filepath.Join(dir, "report.json")
	setFlag(t, metricsJSON, reportPath)

	oldStdout := os.Stdout
	os.Stdout, _ = os.Open(os.DevNull)
	err := runBatch([]string{good1, bad, good2})
	os.Stdout = oldStdout
	if err == nil || !strings.Contains(err.Error(), "1 of 3 programs failed") {
		t.Fatalf("batch returned %v", err)
	}

	data, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	var br pdce.BatchReport
	if err := json.Unmarshal(data, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Programs) != 3 {
		t.Fatalf("report covers %d programs, want 3", len(br.Programs))
	}
	if br.Programs[0].Name != "1good" || br.Programs[1].Name != "2bad" || br.Programs[2].Name != "3good" {
		t.Errorf("report order wrong: %s, %s, %s", br.Programs[0].Name, br.Programs[1].Name, br.Programs[2].Name)
	}
	if br.Programs[1].OK || br.Programs[1].Error == "" {
		t.Errorf("parse failure not recorded: %+v", br.Programs[1])
	}
	for _, i := range []int{0, 2} {
		p := br.Programs[i]
		if !p.OK || p.Stats.Telemetry == nil || p.DurationNS <= 0 {
			t.Errorf("program %s: ok=%v telemetry=%v duration=%d", p.Name, p.OK, p.Stats.Telemetry != nil, p.DurationNS)
		}
	}
	if br.Batch.Jobs != 2 || br.Batch.Failed != 0 {
		t.Errorf("batch metrics = %+v", br.Batch)
	}
	if br.Batch.P50NS <= 0 || br.Batch.MaxNS < br.Batch.P50NS {
		t.Errorf("batch percentiles = p50 %d max %d", br.Batch.P50NS, br.Batch.MaxNS)
	}
}

// TestRunBatchDegradedJob checks that a job whose optimization panics
// still prints its (unchanged) program under its header while the exit
// status reports the failure.
func TestRunBatchDegradedJob(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.while")
	victim := filepath.Join(dir, "victim.while")
	os.WriteFile(good, []byte("x := a+b\nif * { out(x) }\n"), 0o644)
	os.WriteFile(victim, []byte("y := 1\nout(2)\n"), 0o644)

	restore := faultinject.Set(func(p faultinject.Point, payload any) {
		if p == faultinject.BatchJob && payload == "victim" {
			panic("injected batch cli fault")
		}
	})
	defer restore()

	oldStdout := os.Stdout
	r, w, _ := os.Pipe()
	os.Stdout = w
	err := runBatch([]string{good, victim})
	w.Close()
	os.Stdout = oldStdout
	var buf strings.Builder
	io.Copy(&buf, r)
	out := buf.String()

	if err == nil || !strings.Contains(err.Error(), "1 of 2 programs failed") {
		t.Errorf("degraded batch returned %v", err)
	}
	if !strings.Contains(out, "==> "+good) || !strings.Contains(out, "==> "+victim) {
		t.Errorf("batch output misses a header: %q", out)
	}
	// The victim's degraded (unchanged) program must still be printed.
	if !strings.Contains(out, "out(2)") {
		t.Errorf("degraded program not printed: %q", out)
	}
}
