// Command pdce is the command-line optimizer: it reads a program
// (WHILE-language or low-level CFG format), applies partial dead code
// elimination or one of the baselines, and prints the result.
//
// Usage:
//
//	pdce [flags] [file ...]
//
// With no file, the program is read from standard input. The input
// language is auto-detected ("graph"/"node"/"edge" keywords select the
// CFG format) and can be forced with -lang.
//
// With several files — or a directory, which stands for every regular
// file directly inside it — the optimizer runs in batch mode: all
// programs are optimized concurrently through a bounded worker pool
// (-workers, default GOMAXPROCS) and printed in input order under
// per-program headers. Batch mode supports -mode pde/pfe; if any
// program fails to parse or optimize, the remaining programs still run
// and the exit status is non-zero.
//
// Examples:
//
//	pdce -stats program.cfg
//	pdce -mode pfe -verify program.while
//	pdce -mode lcm -format dot program.cfg | dot -Tpng > out.png
//	pdce -mode none -format cfg program.while   # just lower & print
//	pdce -stats -workers 4 testdata/            # batch over a directory
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"pdce"
	"pdce/internal/bitvec"
)

var (
	mode      = flag.String("mode", "pde", "transformation: pde, pfe, dce, fce, ssadce, dudce, lcm, copyprop, hoist, none")
	lang      = flag.String("lang", "auto", "input language: auto, cfg, while")
	format    = flag.String("format", "listing", "output format: listing, cfg, dot")
	stats     = flag.Bool("stats", false, "print transformation statistics to stderr")
	verifyRun = flag.Int("verify", 0, "replay N executions to verify semantics preservation (0 = off)")
	maxRounds = flag.Int("max-rounds", 0, "truncate the pde/pfe fixpoint iteration (0 = run to optimum)")
	keepSynth = flag.Bool("keep-synthetic", false, "keep empty synthetic nodes from edge splitting")
	name      = flag.String("name", "", "program name (defaults to the file name)")
	passes    = flag.String("passes", "", "comma-separated pass pipeline overriding -mode, e.g. lcm,copyprop,pde")
	hot       = flag.String("hot", "", "comma-separated block labels forming the hot region for pde/pfe (default: whole program)")
	trace     = flag.Bool("trace", false, "print the program after every eliminate/sink phase (pde/pfe only)")
	execSeed  = flag.Int64("exec", -1, "instead of printing, run the transformed program with this oracle seed and print its outputs")
	inputs    = flag.String("input", "", "comma-separated initial store for -exec, e.g. n=100,base=7")
	fuel      = flag.Int("fuel", 0, "block-visit bound for -exec (0 = default)")
	workers   = flag.Int("workers", 0, "concurrent optimizations in batch (multi-file) mode, 0 = GOMAXPROCS")

	// Failure-containment flags (pde/pfe only). All failure modes
	// degrade to a usable program: the watchdog returns the best
	// phase-boundary result, verified mode rolls back to the last
	// verified one, a panic returns the input unchanged. The process
	// still exits non-zero so scripts notice the degradation.
	timeout     = flag.Duration("timeout", 0, "wall-clock bound for the whole run; on expiry the best result so far is printed (0 = none)")
	roundBudget = flag.Duration("round-budget", 0, "watchdog bound per fixpoint round (0 = none)")
	verified    = flag.Bool("verified", false, "check every round against the input with the semantics oracle, rolling back on mismatch")
	reproDir    = flag.String("repro-dir", "", "directory for repro bundles of contained optimizer panics")

	// Observability flags (pde/pfe only, except the profiles).
	explainVar  = flag.String("explain", "", "print the named variable's provenance journey through the optimization instead of the program")
	traceJSON   = flag.String("trace-json", "", "write the provenance event stream as JSON to this file ('-' = stdout)")
	metricsJSON = flag.String("metrics-json", "", "write a machine-readable run report (stats + solver metrics) as JSON to this file ('-' = stdout)")
	cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile  = flag.String("memprofile", "", "write a heap profile taken after the run to this file")
	teleAddr    = flag.String("telemetry-addr", "", "serve live batch progress as JSON on this address while a batch runs (e.g. localhost:6060)")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pdce:", err)
		os.Exit(1)
	}
}

func run() error {
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			if err := writeMemProfile(*memProfile); err != nil {
				fmt.Fprintln(os.Stderr, "pdce: memprofile:", err)
			}
		}()
	}

	paths, err := expandArgs(flag.Args())
	if err != nil {
		return err
	}
	if len(paths) > 1 {
		return runBatch(paths)
	}

	if *teleAddr != "" {
		return fmt.Errorf("-telemetry-addr requires batch mode (several input files)")
	}
	observing := *explainVar != "" || *traceJSON != "" || *metricsJSON != ""
	if observing && *mode != "pde" && *mode != "pfe" {
		return fmt.Errorf("-explain, -trace-json, and -metrics-json require -mode pde or pfe")
	}
	if observing && *passes != "" {
		return fmt.Errorf("-passes does not support -explain, -trace-json, or -metrics-json")
	}
	if (*mode == "pde" || *mode == "pfe") && (*stats || *metricsJSON != "") {
		// The bit-vector op meter is process-global; a single-program
		// run owns it outright, so the delta is exact. Batch mode
		// leaves it off — concurrent runs would cross-attribute.
		bitvec.EnableOpCount(true)
	}

	src, progName, err := readInput(paths)
	if err != nil {
		return err
	}
	if *name != "" {
		progName = *name
	}

	prog, err := parse(src, progName)
	if err != nil {
		return err
	}

	start := time.Now()
	opt, st, err := transform(prog)
	dur := time.Since(start)
	if err != nil && opt == nil {
		return err
	}
	degraded := err
	if degraded != nil {
		// A contained failure: opt is the degraded result (the best
		// partial program, or the input unchanged). Print it anyway
		// and exit non-zero afterwards.
		fmt.Fprintf(os.Stderr, "pdce: %s: %v\n", progName, degraded)
	}
	if *passes != "" {
		opt, err = prog.Passes(strings.Split(*passes, ",")...)
		if err != nil {
			return err
		}
		st = nil
	}

	if *stats {
		fmt.Fprintf(os.Stderr, "blocks: %d -> %d   statements: %d -> %d\n",
			prog.NumBlocks(), opt.NumBlocks(), prog.NumStatements(), opt.NumStatements())
		if st != nil {
			fmt.Fprintf(os.Stderr, "rounds: %d   eliminated: %d   inserted: %d   critical edges split: %d   growth w: %.2f\n",
				st.Rounds, st.Eliminated, st.Inserted, st.CriticalEdges, st.GrowthFactor())
			if st.Telemetry != nil {
				printTelemetrySummary(st.Telemetry)
			}
		}
	}
	if *verifyRun > 0 {
		if err := prog.Check(opt, *verifyRun); err != nil {
			return fmt.Errorf("verification failed: %w", err)
		}
		fmt.Fprintf(os.Stderr, "verified over %d executions: outputs preserved, no execution impaired (savings: %.1f%%)\n",
			*verifyRun, 100*prog.Savings(opt, *verifyRun))
	}

	if *traceJSON != "" {
		if st == nil || st.Telemetry == nil {
			return fmt.Errorf("-trace-json: no trace collected")
		}
		if err := writeJSON(*traceJSON, st.Telemetry.Events); err != nil {
			return err
		}
	}
	if *metricsJSON != "" {
		if st == nil {
			return fmt.Errorf("-metrics-json: no stats collected")
		}
		if err := writeJSON(*metricsJSON, pdce.MakeReport(progName, modeOf(), *st, dur, degraded)); err != nil {
			return err
		}
	}
	if *explainVar != "" {
		// -explain replaces the program listing with the variable's
		// provenance journey.
		var tel *pdce.Telemetry
		if st != nil {
			tel = st.Telemetry
		}
		fmt.Print(pdce.FormatExplain(*explainVar, pdce.Explain(tel, *explainVar)))
		if degraded != nil {
			return fmt.Errorf("completed with a degraded result")
		}
		return nil
	}

	if *execSeed >= 0 {
		return execute(opt)
	}

	// A JSON payload on stdout replaces the program listing, so the
	// output stays pipeable into jq and friends.
	if *traceJSON != "-" && *metricsJSON != "-" {
		switch *format {
		case "listing":
			fmt.Print(opt.String())
		case "cfg":
			fmt.Print(opt.Format())
		case "dot":
			fmt.Print(opt.DOT())
		default:
			return fmt.Errorf("unknown -format %q (want listing, cfg, or dot)", *format)
		}
	}
	if degraded != nil {
		return fmt.Errorf("completed with a degraded result")
	}
	return nil
}

// modeOf maps the -mode flag to the pde/pfe Mode value; callers have
// already checked that the mode is one of the two.
func modeOf() pdce.Mode {
	if *mode == "pfe" {
		return pdce.Faint
	}
	return pdce.Dead
}

// writeJSON marshals v with indentation and writes it to path, where
// "-" means standard output.
func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// printTelemetrySummary renders the telemetry section of -stats.
func printTelemetrySummary(t *pdce.Telemetry) {
	solverLine("delay", t.Delay)
	solverLine("dead", t.Dead)
	solverLine("faint", t.Faint)
	if t.Arena.Slabs > 0 {
		fmt.Fprintf(os.Stderr, "arena: %d slabs, %d of %d words used\n",
			t.Arena.Slabs, t.Arena.UsedWords, t.Arena.CapWords)
	}
	if t.BitvecOps > 0 {
		fmt.Fprintf(os.Stderr, "bit-vector ops: %d\n", t.BitvecOps)
	}
	if n := len(t.Events); n > 0 {
		fmt.Fprintf(os.Stderr, "trace: %d provenance events\n", n)
	}
}

func solverLine(analysis string, s pdce.SolverMetrics) {
	if s.Solves == 0 && s.SlotUpdates == 0 {
		return
	}
	line := fmt.Sprintf("%s: %d solves (%d full, %d incremental, %d cached)   visits: %d   pushes: %d   vector ops: %d",
		analysis, s.Solves, s.FullSolves, s.IncrementalSolves, s.CacheHits,
		s.NodeVisits, s.WorklistPushes, s.VectorOps)
	if s.SeedableNodes > 0 {
		line += fmt.Sprintf("   reuse: %.0f%%", 100*s.ReuseRate)
	}
	if s.SlotUpdates > 0 {
		line += fmt.Sprintf("   slot updates: %d", s.SlotUpdates)
	}
	fmt.Fprintln(os.Stderr, line)
}

// writeMemProfile dumps the post-GC heap profile to path.
func writeMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}

// execute runs the program under the interpreter and prints its
// observable behaviour.
func execute(prog *pdce.Program) error {
	store := map[string]int64{}
	if *inputs != "" {
		for _, kv := range strings.Split(*inputs, ",") {
			parts := strings.SplitN(strings.TrimSpace(kv), "=", 2)
			if len(parts) != 2 {
				return fmt.Errorf("bad -input entry %q (want name=value)", kv)
			}
			var v int64
			if _, err := fmt.Sscanf(parts[1], "%d", &v); err != nil {
				return fmt.Errorf("bad -input value %q: %w", parts[1], err)
			}
			store[parts[0]] = v
		}
	}
	tr := prog.RunWithInput(uint64(*execSeed), *fuel, store)
	for _, v := range tr.Outputs {
		fmt.Println(v)
	}
	switch {
	case tr.Faulted:
		return fmt.Errorf("run-time error: %v", tr.Err)
	case !tr.Terminated:
		return fmt.Errorf("out of fuel after %d assignments", tr.AssignExecs)
	}
	fmt.Fprintf(os.Stderr, "terminated: %d assignment instances, %d term evaluations\n",
		tr.AssignExecs, tr.TermEvals)
	return nil
}

// expandArgs resolves the positional arguments to a flat file list: a
// directory argument stands for every regular file directly inside it,
// in name order.
func expandArgs(args []string) ([]string, error) {
	var paths []string
	for _, arg := range args {
		info, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			paths = append(paths, arg)
			continue
		}
		entries, err := os.ReadDir(arg)
		if err != nil {
			return nil, err
		}
		var inDir []string
		for _, e := range entries {
			if e.IsDir() || strings.HasPrefix(e.Name(), ".") {
				continue
			}
			inDir = append(inDir, filepath.Join(arg, e.Name()))
		}
		if len(inDir) == 0 {
			return nil, fmt.Errorf("directory %s contains no input files", arg)
		}
		sort.Strings(inDir)
		paths = append(paths, inDir...)
	}
	return paths, nil
}

// runBatch optimizes several programs concurrently and prints each in
// input order. Every program is attempted even after failures; the
// combined error makes the process exit non-zero if any failed.
func runBatch(paths []string) error {
	if *mode != "pde" && *mode != "pfe" {
		return fmt.Errorf("batch mode supports -mode pde or pfe, not %q", *mode)
	}
	if *passes != "" || *execSeed >= 0 || *verifyRun > 0 || *trace {
		return fmt.Errorf("batch mode does not support -passes, -exec, -verify, or -trace")
	}
	if *explainVar != "" || *traceJSON != "" {
		return fmt.Errorf("batch mode does not support -explain or -trace-json (run them on a single file)")
	}

	o, cancel := pdeOptions()
	defer cancel()

	// Parse everything first; a parse failure must not stop the
	// other programs from being optimized.
	progs := make([]*pdce.Program, 0, len(paths))
	parseErrs := make(map[string]error)
	order := make([]string, 0, len(paths))
	for _, path := range paths {
		order = append(order, path)
		data, err := os.ReadFile(path)
		if err != nil {
			parseErrs[path] = err
			continue
		}
		prog, err := parse(string(data), progBase(path))
		if err != nil {
			parseErrs[path] = err
			continue
		}
		progs = append(progs, prog)
	}

	var tk pdce.BatchTracker
	if *teleAddr != "" {
		shutdown, addr, err := serveProgress(*teleAddr, &tk)
		if err != nil {
			return fmt.Errorf("-telemetry-addr: %w", err)
		}
		defer shutdown()
		fmt.Fprintf(os.Stderr, "pdce: serving batch progress on http://%s/progress\n", addr)
	}

	begin := time.Now()
	results, metrics := pdce.OptimizeAllObserved(progs, o, *workers, &tk)
	elapsed := time.Since(begin)

	// JSON on stdout replaces the per-program listings, as in single
	// mode.
	listing := *metricsJSON != "-"
	var reports []pdce.Report

	failed := 0
	ri := 0
	for _, path := range order {
		if listing {
			fmt.Printf("==> %s\n", path)
		}
		if err, bad := parseErrs[path]; bad {
			failed++
			fmt.Fprintf(os.Stderr, "pdce: %s: %v\n", path, err)
			if *metricsJSON != "" {
				reports = append(reports, pdce.MakeReport(progBase(path), modeOf(), pdce.Stats{}, 0, err))
			}
			continue
		}
		prog := progs[ri]
		r := results[ri]
		ri++
		if *metricsJSON != "" {
			reports = append(reports, pdce.MakeReport(progBase(path), modeOf(), r.Stats, r.Duration, r.Err))
		}
		if r.Err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "pdce: %s: %v\n", path, r.Err)
			if r.Program == nil {
				continue
			}
			// A contained failure left a degraded result (partial
			// optimization or the unchanged input): print it like any
			// other program, under the warning above.
		}
		if *stats {
			fmt.Fprintf(os.Stderr, "%s: blocks: %d -> %d   statements: %d -> %d   rounds: %d   eliminated: %d   inserted: %d   worker: %d   %v\n",
				path, prog.NumBlocks(), r.Program.NumBlocks(),
				prog.NumStatements(), r.Program.NumStatements(),
				r.Stats.Rounds, r.Stats.Eliminated, r.Stats.Inserted,
				r.Worker, r.Duration.Round(time.Microsecond))
		}
		if !listing {
			continue
		}
		switch *format {
		case "listing":
			fmt.Print(r.Program.String())
		case "cfg":
			fmt.Print(r.Program.Format())
		case "dot":
			fmt.Print(r.Program.DOT())
		default:
			return fmt.Errorf("unknown -format %q (want listing, cfg, or dot)", *format)
		}
	}

	if *stats {
		fmt.Fprintf(os.Stderr, "batch: %d jobs on %d workers in %v   p50 %v   p95 %v   max %v   failed: %d (panics: %d, interrupted: %d, skipped: %d)\n",
			metrics.Jobs, tk.Snapshot().Workers, elapsed.Round(time.Millisecond),
			time.Duration(metrics.P50NS).Round(time.Microsecond),
			time.Duration(metrics.P95NS).Round(time.Microsecond),
			time.Duration(metrics.MaxNS).Round(time.Microsecond),
			metrics.Failed, metrics.Panics, metrics.Interrupted, metrics.Skipped)
	}
	if *metricsJSON != "" {
		if err := writeJSON(*metricsJSON, pdce.BatchReport{Programs: reports, Batch: metrics}); err != nil {
			return err
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d programs failed", failed, len(order))
	}
	return nil
}

// serveProgress starts the batch telemetry endpoint: GET /progress on
// the given address returns the tracker's live snapshot as JSON. The
// caller invokes the returned shutdown function when the batch is
// done; it closes the listener as well as the server, because
// srv.Close only closes listeners Serve has already registered — when
// the batch finishes quickly, Close can win the race against the
// Serve goroutine and leave the port bound for the life of the
// process.
func serveProgress(addr string, tk *pdce.BatchTracker) (shutdown func(), laddr net.Addr, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(tk.Snapshot())
	})
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return func() {
		srv.Close()
		ln.Close()
	}, ln.Addr(), nil
}

// pdeOptions assembles the pde/pfe options shared by single-file and
// batch mode from the flag set. The returned cancel function releases
// the -timeout context (a no-op when none is set) and must be called
// when the run is done.
func pdeOptions() (pdce.Options, context.CancelFunc) {
	m := pdce.Dead
	if *mode == "pfe" {
		m = pdce.Faint
	}
	o := pdce.Options{
		Mode:          m,
		MaxRounds:     *maxRounds,
		KeepSynthetic: *keepSynth,
		RoundBudget:   *roundBudget,
		Verify:        *verified,
		ReproDir:      *reproDir,
		Telemetry:     *stats || *metricsJSON != "",
		Trace:         *explainVar != "" || *traceJSON != "",
	}
	if *hot != "" {
		set := map[string]bool{}
		for _, l := range strings.Split(*hot, ",") {
			set[strings.TrimSpace(l)] = true
		}
		o.Hot = func(label string) bool { return set[label] }
	}
	cancel := context.CancelFunc(func() {})
	if *timeout > 0 {
		var ctx context.Context
		ctx, cancel = context.WithTimeout(context.Background(), *timeout)
		o.Context = ctx
	}
	return o, cancel
}

// progBase derives a program name from a file path.
func progBase(path string) string {
	base := filepath.Base(path)
	if i := strings.LastIndexByte(base, '.'); i > 0 {
		base = base[:i]
	}
	return base
}

func readInput(paths []string) (src, progName string, err error) {
	if len(paths) == 0 {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			return "", "", err
		}
		return string(data), "stdin", nil
	}
	data, err := os.ReadFile(paths[0])
	if err != nil {
		return "", "", err
	}
	return string(data), progBase(paths[0]), nil
}

func parse(src, progName string) (*pdce.Program, error) {
	language := *lang
	if language == "auto" {
		language = detect(src)
	}
	switch language {
	case "cfg":
		return pdce.ParseCFG(src)
	case "while":
		return pdce.ParseSource(progName, src)
	default:
		return nil, fmt.Errorf("unknown -lang %q (want auto, cfg, or while)", language)
	}
}

// detect sniffs the input language: the CFG format opens every
// construct with one of three keywords.
func detect(src string) string {
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "//") || strings.HasPrefix(line, "#") {
			continue
		}
		for _, kw := range []string{"graph", "node", "edge"} {
			if strings.HasPrefix(line, kw+" ") || strings.HasPrefix(line, kw+"\t") {
				return "cfg"
			}
		}
		return "while"
	}
	return "while"
}

func transform(prog *pdce.Program) (*pdce.Program, *pdce.Stats, error) {
	switch *mode {
	case "pde", "pfe":
		o, cancel := pdeOptions()
		defer cancel()
		if *trace {
			o.Observe = func(round int, phase string, changed bool, snapshot string) {
				if !changed {
					fmt.Fprintf(os.Stderr, "-- round %d %s: no change\n", round, phase)
					return
				}
				fmt.Fprintf(os.Stderr, "-- round %d %s:\n%s", round, phase, snapshot)
			}
		}
		opt, st, err := prog.SafeOptimize(o)
		if err != nil {
			// SafeOptimize always hands back a usable program; the
			// caller prints it and reports the degradation.
			return opt, &st, err
		}
		return opt, &st, nil
	case "dce":
		opt, _ := prog.DeadCodeElimination()
		return opt, nil, nil
	case "fce":
		opt, _ := prog.FaintCodeElimination()
		return opt, nil, nil
	case "ssadce":
		opt, _ := prog.SSADeadCodeElimination()
		return opt, nil, nil
	case "dudce":
		opt, _ := prog.DefUseDCE()
		return opt, nil, nil
	case "lcm":
		opt, _, _, err := prog.LazyCodeMotion()
		return opt, nil, err
	case "copyprop":
		opt, _ := prog.CopyPropagation()
		return opt, nil, nil
	case "hoist":
		opt, err := prog.HoistAssignments()
		return opt, nil, err
	case "none":
		return prog, nil, nil
	default:
		return nil, nil, fmt.Errorf("unknown -mode %q", *mode)
	}
}
