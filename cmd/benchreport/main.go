// Command benchreport is the analysis stage of the paper reproduction
// harness. It consumes the BENCH_paper.json run history written by
// cmd/benchpaper and either regenerates the reproduction docs (the
// default) or gates the newest run against its baselines (-check).
//
// Regeneration rewrites docs/BENCHMARKS.md wholesale and splices the
// generated-table blocks of EXPERIMENTS.md and README.md in place —
// everything between `<!-- generated:begin NAME -->` and
// `<!-- generated:end NAME -->` markers is owned by the renderer, the
// surrounding prose stays hand-written. The render is deterministic, so
// re-running against committed data is byte-stable; the drift-guard
// test in internal/bench enforces that the committed docs match.
//
// The regression gate compares the newest run's per-metric medians
// against a window of preceding same-scale runs and fails (exit 1) only
// when a metric moves in its worse direction beyond the measured
// variance band. PDCE_BENCH_TOLERANCE (or -tolerance) widens every band
// on noisy hosts.
//
// Usage:
//
//	benchreport                      # regenerate docs from BENCH_paper.json
//	benchreport -run paper_runs/<id> # include an uncommitted run as newest
//	benchreport -check               # regression gate, exit 1 on regression
//	benchreport -check -tolerance 2  # double every variance band
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"pdce/internal/bench"
	"pdce/internal/obs"
)

var (
	historyPath = flag.String("history", "BENCH_paper.json", "run history to analyze")
	configPath  = flag.String("config", "experiments.json", "experiment matrix config (missing file = built-in defaults)")
	runDir      = flag.String("run", "", "a paper_runs/<run-id> directory whose run.json is analyzed as the newest run without touching the history")
	check       = flag.Bool("check", false, "regression gate: compare the newest run against its baseline window and exit non-zero on out-of-band regressions")
	tolerance   = flag.Float64("tolerance", 0, "scale every variance band by this factor (0 = $PDCE_BENCH_TOLERANCE or 1.0)")
	window      = flag.Int("window", 0, "baseline window size (0 = experiments.json)")
	benchDoc    = flag.String("benchmarks", "docs/BENCHMARKS.md", "generated benchmarks document to (re)write ('' = skip)")
	expDoc      = flag.String("experiments-doc", "EXPERIMENTS.md", "document whose generated blocks are spliced ('' = skip)")
	readmeDoc   = flag.String("readme", "README.md", "document whose generated blocks are spliced ('' = skip)")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	h, err := obs.LoadBenchHistory(*historyPath)
	if err != nil {
		return err
	}
	matrix, err := bench.LoadMatrix(*configPath)
	if err != nil {
		return err
	}
	if *runDir != "" {
		data, err := os.ReadFile(filepath.Join(*runDir, "run.json"))
		if err != nil {
			return err
		}
		var extra obs.BenchRun
		if err := json.Unmarshal(data, &extra); err != nil {
			return fmt.Errorf("%s: %w", filepath.Join(*runDir, "run.json"), err)
		}
		h.Runs = append(h.Runs, extra)
	}
	if len(h.Runs) == 0 {
		return fmt.Errorf("%s: history has no runs; run `go run ./cmd/benchpaper -json %s` first",
			*historyPath, *historyPath)
	}
	if *check {
		return gate(h, matrix)
	}
	return regenerate(h, matrix)
}

// gate runs the regression check and reports the verdict.
func gate(h *obs.BenchHistory, matrix *bench.Matrix) error {
	cfg := matrix.Check
	if *window > 0 {
		cfg.Window = *window
	}
	tol := *tolerance
	if tol <= 0 {
		if env := os.Getenv("PDCE_BENCH_TOLERANCE"); env != "" {
			v, err := strconv.ParseFloat(env, 64)
			if err != nil || v <= 0 {
				return fmt.Errorf("PDCE_BENCH_TOLERANCE=%q: not a positive number", env)
			}
			tol = v
		}
	}
	res, err := bench.Check(h, cfg, tol)
	if err != nil {
		return err
	}
	if len(res.Baselines) == 0 {
		fmt.Printf("benchreport: run %s has no comparable baseline runs; %d metric(s) recorded, nothing gated\n",
			res.Run, res.Skipped)
		return nil
	}
	fmt.Printf("benchreport: run %s vs %d baseline run(s) %v: %d metric(s) checked, %d skipped\n",
		res.Run, len(res.Baselines), res.Baselines, res.Checked, res.Skipped)
	if len(res.Regressions) == 0 {
		fmt.Println("benchreport: no out-of-band regressions")
		return nil
	}
	for _, r := range res.Regressions {
		fmt.Fprintf(os.Stderr, "benchreport: REGRESSION %s\n", r)
	}
	return fmt.Errorf("%d metric(s) regressed beyond their variance band (PDCE_BENCH_TOLERANCE widens the bands on noisy hosts)",
		len(res.Regressions))
}

// regenerate rewrites the generated docs from the history.
func regenerate(h *obs.BenchHistory, matrix *bench.Matrix) error {
	r := bench.NewRenderer(h, matrix)
	if *benchDoc != "" {
		if err := writeIfChanged(*benchDoc, []byte(r.BenchmarksDoc())); err != nil {
			return err
		}
	}
	blocks := r.Blocks()
	for _, path := range []string{*expDoc, *readmeDoc} {
		if path == "" {
			continue
		}
		doc, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		next, changed, err := bench.SpliceAll(doc, blocks)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if !changed {
			fmt.Printf("benchreport: %s unchanged\n", path)
			continue
		}
		if err := os.WriteFile(path, next, 0o644); err != nil {
			return err
		}
		fmt.Printf("benchreport: %s updated\n", path)
	}
	return nil
}

func writeIfChanged(path string, content []byte) error {
	old, err := os.ReadFile(path)
	if err == nil && string(old) == string(content) {
		fmt.Printf("benchreport: %s unchanged\n", path)
		return nil
	}
	if err := os.WriteFile(path, content, 0o644); err != nil {
		return err
	}
	fmt.Printf("benchreport: %s updated\n", path)
	return nil
}
