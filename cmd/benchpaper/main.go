// Command benchpaper runs the reproduction experiments of DESIGN.md's
// per-experiment index and prints markdown tables (the source material
// of EXPERIMENTS.md):
//
//	F   — per-figure reproduction summary (Figures 1–13)
//	C1  — pde wall-clock scaling on structured programs (Section 6's
//	      expected ~quadratic behaviour; near-linear in practice)
//	C2  — pfe scaling and the pfe/pde cost ratio
//	C3  — code growth factor w (Section 6.2: O(b) worst case, O(1)
//	      expected in practice)
//	C4  — driver iteration count r (Section 6.3: conjectured ~linear,
//	      small constants in practice)
//	C5  — optimization power: dynamic assignment savings of pde/pfe
//	      against classic dce/fce, SSA dce, def-use dce, and a
//	      truncated single-round pde
//	C6  — safety ablation: replacing the delayability product with a
//	      sum (eager, Briggs/Cooper-style sinking) impairs or breaks
//	      executions; the paper's algorithm never does
//	C9  — incremental vs. from-scratch driver cost, and batch
//	      throughput of the concurrent optimization pipeline
//	C9b — dense vs. sparse vs. auto dataflow engines on the scaling
//	      corpus: wall time and solver node visits per mode
//	C10 — serving throughput of the pdced optimization service: cold
//	      vs. warm content-addressed cache, at several client
//	      concurrency levels
//	C11 — cluster serving through pdce.Pool: warm/cold throughput at
//	      1, 2, and 4 replicas under a fixed per-replica service cost,
//	      affinity hit rate, and a mid-run replica kill that must stay
//	      invisible to callers
//	C12 — shared persistence: a 4-replica fleet is killed and
//	      rescheduled, and the shared L2 store (dir: and http:// vs.
//	      the -store=off control) must serve the first post-restart
//	      pass warm and byte-identical to the cold solve
//
// The experiment matrix — sweeps, seeds, repeats, workload knobs per
// experiment — is declared in experiments.json (see
// docs/EXPERIMENTS-HOWTO.md); a missing file falls back to built-in
// defaults matching the historical hardcoded sweeps. Each invocation
// is one run: every selected experiment executes its configured number
// of repeats, per-repeat logs land in paper_runs/<run-id>/, and the
// run (raw per-repeat records plus variance-aware aggregates) is
// appended to the BENCH_paper.json history named by -json, which
// cmd/benchreport turns into the reproduction docs and gates for
// regressions.
//
// Usage:
//
//	benchpaper                          # run everything
//	benchpaper -exp C1,C9b              # a subset
//	benchpaper -quick                   # smaller sweeps (CI-friendly)
//	benchpaper -smoke                   # the bench-check gate matrix
//	benchpaper -json BENCH_paper.json   # append the run to the history
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"pdce"
	"pdce/internal/analysis"
	"pdce/internal/baseline"
	"pdce/internal/batch"
	"pdce/internal/bench"
	"pdce/internal/cfg"
	"pdce/internal/core"
	"pdce/internal/dataflow"
	"pdce/internal/figures"
	"pdce/internal/hoist"
	"pdce/internal/obs"
	"pdce/internal/progen"
	"pdce/internal/server"
	"pdce/internal/ssa"
	"pdce/internal/verify"
)

var (
	expFlag     = flag.String("exp", "all", "comma-separated experiments to run: F, C1, C2, C3, C4, C5, C6, C7, C8, C9, C9b, C10, C11, C12, all")
	quick       = flag.Bool("quick", false, "smaller sweeps")
	smoke       = flag.Bool("smoke", false, "run the smoke matrix from experiments.json (the bench-check gate's scale; implies -quick)")
	seedsFlag   = flag.Int("seeds", 0, "random seeds per configuration (0 = experiments.json)")
	repeatsFlag = flag.Int("repeats", 0, "repeats per experiment (0 = experiments.json)")
	configPath  = flag.String("config", "experiments.json", "experiment matrix config (missing file = built-in defaults)")
	jsonOut     = flag.String("json", "", "append this run to the BENCH_paper.json history at this path ('-' = print the run to stdout)")
	outRoot     = flag.String("out", "paper_runs", "root directory for per-run logs and run.json ('' = keep nothing on disk)")
	runIDFlag   = flag.String("run-id", "", "run id (default: UTC timestamp)")
)

// Run-loop state shared with the experiment functions: the loaded
// matrix, the experiment currently executing, and its repeat index.
var (
	matrix  *bench.Matrix
	cur     *bench.ExpConfig
	curRep  int
	records []obs.BenchPoint
)

// record captures one data point of the current repeat. d is the
// measured wall time where the experiment has one (0 otherwise).
func record(exp, name string, n int, d time.Duration, metrics map[string]float64) {
	records = append(records, obs.BenchPoint{
		Exp: exp, Name: name, N: n, Rep: curRep, NSPerOp: int64(d), Metrics: metrics,
	})
}

// experiment binds a matrix id to its runner; registry order is the
// execution and documentation order.
type experiment struct {
	id string
	fn func() error
}

func registry() []experiment {
	return []experiment{
		{"F", expFigures},
		{"C1", func() error { return expScaling(core.ModeDead, "C1", "pde") }},
		{"C2", expPFERatio},
		{"C3", expGrowth},
		{"C4", expRounds},
		{"C5", expPower},
		{"C6", expSafety},
		{"C7", expHoist},
		{"C8", expPressure},
		{"C9", expBatch},
		{"C9b", expSolverModes},
		{"C10", expServing},
		{"C11", expCluster},
		{"C12", expStore},
	}
}

// selected resolves -exp / -smoke into the set of experiment ids.
func selected() (map[string]bool, error) {
	known := map[string]string{}
	for _, e := range registry() {
		known[strings.ToLower(e.id)] = e.id
	}
	want := map[string]bool{}
	var list []string
	switch {
	// An explicit -exp narrows the smoke matrix too: -smoke keeps its
	// scale (sizes/seeds/repeats) either way.
	case *smoke && *expFlag == "all":
		list = matrix.Smoke.Exps
	case *expFlag == "all":
		for _, e := range registry() {
			want[e.id] = true
		}
		return want, nil
	default:
		list = strings.Split(*expFlag, ",")
	}
	for _, id := range list {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		canon, ok := known[strings.ToLower(id)]
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q", id)
		}
		want[canon] = true
	}
	if len(want) == 0 {
		return nil, fmt.Errorf("no experiments selected")
	}
	return want, nil
}

func main() {
	flag.Parse()
	var err error
	matrix, err = bench.LoadMatrix(*configPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchpaper: %v\n", err)
		os.Exit(1)
	}
	if *smoke {
		*quick = true
	}
	want, err := selected()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchpaper: %v\n", err)
		os.Exit(1)
	}
	runID := *runIDFlag
	if runID == "" {
		runID = bench.RunStamp(time.Now())
	}
	runDir := ""
	if *outRoot != "" {
		runDir = filepath.Join(*outRoot, runID)
		if err := os.MkdirAll(runDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "benchpaper: %v\n", err)
			os.Exit(1)
		}
	}
	// A failing experiment does not abort the process: its partial
	// tables and records stay, the failure is reported, and the
	// remaining experiments still run. The single exit path below
	// turns any failure into a non-zero status.
	var failed []string
	for _, e := range registry() {
		if !want[e.id] {
			continue
		}
		cur = matrix.Exp(e.id)
		reps := nrepeats()
		for rep := 0; rep < reps; rep++ {
			curRep = rep
			logPath := ""
			if runDir != "" {
				logPath = filepath.Join(runDir, fmt.Sprintf("%s_r%02d.log", e.id, rep))
			}
			// With -json - the run record owns stdout; the tables still
			// land in the per-repeat logs when -out is set.
			if err := runCaptured(logPath, rep == 0 && *jsonOut != "-", e.fn); err != nil {
				failed = append(failed, e.id)
				fmt.Fprintf(os.Stderr, "benchpaper: %s (repeat %d): %v (continuing)\n", e.id, rep, err)
				break
			}
		}
	}
	run := buildRun(runID, failed)
	if runDir != "" {
		if err := writeRunJSON(filepath.Join(runDir, "run.json"), run); err != nil {
			fmt.Fprintf(os.Stderr, "benchpaper: run.json: %v\n", err)
			os.Exit(1)
		}
	}
	switch {
	case *jsonOut == "-":
		data, err := json.MarshalIndent(run, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchpaper: -json: %v\n", err)
			os.Exit(1)
		}
		os.Stdout.Write(append(data, '\n'))
	case *jsonOut != "":
		// Partial records from a failed experiment are still appended;
		// the exit status reports the failure either way.
		if err := obs.AppendBenchRun(*jsonOut, run); err != nil {
			fmt.Fprintf(os.Stderr, "benchpaper: -json: %v\n", err)
			os.Exit(1)
		}
	}
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "benchpaper: %d experiment(s) failed: %s\n",
			len(failed), strings.Join(failed, ", "))
		os.Exit(1)
	}
}

// buildRun assembles this invocation's BenchRun: resolved config,
// every raw point, and the variance aggregates across repeats.
func buildRun(runID string, failed []string) obs.BenchRun {
	kind := "full"
	if *quick {
		kind = "quick"
	}
	if *smoke {
		kind = "smoke"
	}
	if records == nil {
		records = []obs.BenchPoint{}
	}
	run := obs.BenchRun{
		RunID:      runID,
		Kind:       kind,
		Time:       time.Now().UTC().Format(time.RFC3339),
		Quick:      *quick,
		Seeds:      globalSeeds(),
		Repeats:    globalRepeats(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Records:    records,
		Aggregates: obs.AggregateBench(records),
	}
	if len(failed) > 0 {
		run.Note = "failed: " + strings.Join(failed, ", ")
	}
	for _, p := range records {
		if len(run.Exps) == 0 || run.Exps[len(run.Exps)-1] != p.Exp {
			run.Exps = append(run.Exps, p.Exp)
		}
	}
	return run
}

func writeRunJSON(path string, run obs.BenchRun) error {
	data, err := json.MarshalIndent(run, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// runCaptured runs one experiment repeat with os.Stdout redirected
// into its per-repeat log. The first repeat's output is echoed to the
// real stdout afterwards, so the interactive table flow is unchanged;
// later repeats only measure.
func runCaptured(logPath string, echo bool, f func() error) error {
	if logPath == "" {
		if echo {
			return f()
		}
		devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
		if err != nil {
			return f()
		}
		old := os.Stdout
		os.Stdout = devnull
		runErr := f()
		os.Stdout = old
		devnull.Close()
		return runErr
	}
	logf, err := os.Create(logPath)
	if err != nil {
		return err
	}
	old := os.Stdout
	os.Stdout = logf
	runErr := f()
	os.Stdout = old
	closeErr := logf.Close()
	if echo {
		if data, err := os.ReadFile(logPath); err == nil {
			os.Stdout.Write(data)
		}
	}
	if runErr != nil {
		return runErr
	}
	return closeErr
}

// sizes is the current experiment's program-size sweep.
func sizes() []int {
	if *smoke && len(matrix.Smoke.Sizes) > 0 {
		return matrix.Smoke.Sizes
	}
	return matrix.Sizes(cur, *quick)
}

// nseeds is the current experiment's seeds-per-configuration count.
func nseeds() int {
	if *seedsFlag > 0 {
		return *seedsFlag
	}
	if *smoke && matrix.Smoke.Seeds > 0 {
		return matrix.Smoke.Seeds
	}
	return matrix.Seeds(cur)
}

// nrepeats is how many times the current experiment runs this
// invocation.
func nrepeats() int {
	if *repeatsFlag > 0 {
		return *repeatsFlag
	}
	if *smoke && matrix.Smoke.Repeats > 0 {
		return matrix.Smoke.Repeats
	}
	return matrix.Repeats(cur)
}

// globalSeeds/globalRepeats are the run-level defaults recorded in the
// run header (individual experiments may override via the matrix).
func globalSeeds() int {
	if *seedsFlag > 0 {
		return *seedsFlag
	}
	if *smoke && matrix.Smoke.Seeds > 0 {
		return matrix.Smoke.Seeds
	}
	return matrix.Defaults.Seeds
}

func globalRepeats() int {
	if *repeatsFlag > 0 {
		return *repeatsFlag
	}
	if *smoke && matrix.Smoke.Repeats > 0 {
		return matrix.Smoke.Repeats
	}
	if matrix.Defaults.Repeats > 0 {
		return matrix.Defaults.Repeats
	}
	return 1
}

// cfgInt resolves a workload knob of the current experiment against
// its built-in full/quick defaults.
func cfgInt(key string, full, quickDef int) int {
	return cur.Param(key, *quick, full, quickDef)
}

// --- F: figures -------------------------------------------------------

func expFigures() error {
	fmt.Println("## F — Figures 1–13: paper transformation vs. implementation")
	fmt.Println()
	fmt.Println("| figure | demonstrates | result | rounds | eliminated | verified |")
	fmt.Println("|--------|--------------|--------|-------:|-----------:|----------|")
	for _, f := range figures.All() {
		want := f.PDEGraph()
		mode := core.ModeDead
		if f.ExpectedPDE == "" && f.ExpectedPFE != "" {
			want, mode = f.PFEGraph(), core.ModeFaint
		}
		if want == nil {
			fmt.Printf("| %d | %s | block-local (analysis tests) | – | – | – |\n", f.Num, f.Title)
			continue
		}
		in := f.Graph()
		got, st, err := core.Transform(in, core.Options{Mode: mode})
		status := "matches paper"
		if err != nil {
			status = "ERROR: " + err.Error()
		} else if len(cfg.Diff(got, want)) > 0 {
			status = "MISMATCH"
		}
		rep := verify.CheckTransformed(in, got, verify.Options{Seeds: 64})
		verified := "48/48 replays ok"
		if !rep.OK() {
			verified = "FAILED: " + rep.Violations[0]
		} else {
			verified = fmt.Sprintf("%d replays ok", rep.Executions)
		}
		fmt.Printf("| %d | %s | %s | %d | %d | %s |\n", f.Num, f.Title, status, st.Rounds, st.Eliminated, verified)
		ok := 0.0
		if status == "matches paper" && rep.OK() {
			ok = 1
		}
		record("F", fmt.Sprintf("figure-%d", f.Num), 0, 0, map[string]float64{
			"ok": ok, "rounds": float64(st.Rounds), "eliminated": float64(st.Eliminated),
		})
	}
	fmt.Println()
	return nil
}

// --- C1/C2: time scaling ----------------------------------------------

func timeTransform(g *cfg.Graph, mode core.Mode) (time.Duration, core.Stats, error) {
	return timeTransformOpt(g, core.Options{Mode: mode})
}

// fitExponent estimates k in time ~ n^k by least squares on log-log.
func fitExponent(ns []int, ts []time.Duration) float64 {
	var sx, sy, sxx, sxy float64
	m := float64(len(ns))
	for i := range ns {
		x := math.Log(float64(ns[i]))
		y := math.Log(float64(ts[i].Nanoseconds()))
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	return (m*sxy - sx*sy) / (m*sxx - sx*sx)
}

func expScaling(mode core.Mode, id, label string) error {
	fmt.Printf("## %s — %s wall-clock scaling on structured programs\n\n", id, label)
	fmt.Println("| n (stmts) | blocks | time (median over seeds) | rounds | time/n |")
	fmt.Println("|----------:|-------:|-------------------------:|-------:|-------:|")
	var ns []int
	var ts []time.Duration
	for _, n := range sizes() {
		var durs []time.Duration
		var rounds int
		blocks := 0
		for s := 0; s < nseeds(); s++ {
			g := progen.Generate(progen.Params{Seed: int64(s), Stmts: n})
			blocks = g.NumNodes()
			d, st, err := timeTransform(g, mode)
			if err != nil {
				return fmt.Errorf("%s n=%d seed=%d: %w", label, n, s, err)
			}
			durs = append(durs, d)
			rounds += st.Rounds
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		med := durs[len(durs)/2]
		ns = append(ns, n)
		ts = append(ts, med)
		fmt.Printf("| %d | %d | %v | %.1f | %.1f ns |\n",
			n, blocks, med.Round(time.Microsecond), float64(rounds)/float64(nseeds()),
			float64(med.Nanoseconds())/float64(n))
		record(id, label+"-scaling", n, med, map[string]float64{
			"blocks": float64(blocks), "rounds_mean": float64(rounds) / float64(nseeds()),
		})
	}
	exp := fitExponent(ns, ts)
	fmt.Printf("\nfitted exponent: time ~ n^%.2f (paper bound for realistic structured programs: O(n^2))\n\n", exp)
	// A fit over fewer than three sizes has no residual — it is not a
	// measurement — so the smoke sweep records no exponent and the gate
	// never compares 2-point fits against real sweeps.
	if len(ns) >= 3 {
		record(id, label+"-fit", 0, 0, map[string]float64{"exponent": exp})
	}
	return nil
}

func expPFERatio() error {
	if err := expScaling(core.ModeFaint, "C2", "pfe"); err != nil {
		return err
	}
	fmt.Println("### pfe/pde cost ratio")
	fmt.Println()
	fmt.Println("| n (stmts) | pde | pfe | ratio |")
	fmt.Println("|----------:|----:|----:|------:|")
	for _, n := range sizes() {
		g := progen.Generate(progen.Params{Seed: 1, Stmts: n})
		dPDE, _, err := timeTransform(g, core.ModeDead)
		if err != nil {
			return fmt.Errorf("pde n=%d: %w", n, err)
		}
		dPFE, _, err := timeTransform(g, core.ModeFaint)
		if err != nil {
			return fmt.Errorf("pfe n=%d: %w", n, err)
		}
		fmt.Printf("| %d | %v | %v | %.2f |\n",
			n, dPDE.Round(time.Microsecond), dPFE.Round(time.Microsecond),
			float64(dPFE)/float64(dPDE))
		record("C2", "pfe-pde-ratio", n, dPFE, map[string]float64{"ratio": float64(dPFE) / float64(dPDE)})
	}
	fmt.Println()
	return nil
}

// --- C3: growth factor w ----------------------------------------------

func expGrowth() error {
	fmt.Println("## C3 — code growth factor w = peak/original statements (§6.2)")
	fmt.Println()
	fmt.Println("| n (stmts) | w (mean) | w (max) | final/original |")
	fmt.Println("|----------:|---------:|--------:|---------------:|")
	for _, n := range sizes() {
		var sum, max, shrink float64
		for s := 0; s < nseeds(); s++ {
			g := progen.Generate(progen.Params{Seed: int64(s), Stmts: n})
			_, st, err := core.PDE(g)
			if err != nil {
				return fmt.Errorf("pde n=%d seed=%d: %w", n, s, err)
			}
			w := st.GrowthFactor()
			sum += w
			if w > max {
				max = w
			}
			shrink += float64(st.FinalStmts) / float64(st.OriginalStmts)
		}
		fmt.Printf("| %d | %.3f | %.3f | %.3f |\n",
			n, sum/float64(nseeds()), max, shrink/float64(nseeds()))
		record("C3", "growth", n, 0, map[string]float64{
			"w_mean": sum / float64(nseeds()), "w_max": max, "shrink": shrink / float64(nseeds()),
		})
	}
	fmt.Println()
	fmt.Println("paper: w is O(b) in the worst case but expected O(1) in practice — confirmed if the columns stay near 1.")
	fmt.Println()
	return nil
}

// --- C4: iteration count r --------------------------------------------

func expRounds() error {
	fmt.Println("## C4 — driver iterations r until stabilization (§6.3)")
	fmt.Println()
	fmt.Println("| n (stmts) | r pde (mean) | r pde (max) | r pfe (mean) | r/n |")
	fmt.Println("|----------:|-------------:|------------:|-------------:|----:|")
	for _, n := range sizes() {
		var sumD, maxD, sumF float64
		for s := 0; s < nseeds(); s++ {
			g := progen.Generate(progen.Params{Seed: int64(s), Stmts: n, LoopProb: 0.15, BranchProb: 0.25})
			_, stD, err := core.PDE(g)
			if err != nil {
				return fmt.Errorf("pde n=%d seed=%d: %w", n, s, err)
			}
			_, stF, err := core.PFE(g)
			if err != nil {
				return fmt.Errorf("pfe n=%d seed=%d: %w", n, s, err)
			}
			sumD += float64(stD.Rounds)
			if float64(stD.Rounds) > maxD {
				maxD = float64(stD.Rounds)
			}
			sumF += float64(stF.Rounds)
		}
		fmt.Printf("| %d | %.1f | %.0f | %.1f | %.4f |\n",
			n, sumD/float64(nseeds()), maxD, sumF/float64(nseeds()),
			sumD/float64(nseeds())/float64(n))
		record("C4", "rounds", n, 0, map[string]float64{
			"r_pde_mean": sumD / float64(nseeds()), "r_pde_max": maxD, "r_pfe_mean": sumF / float64(nseeds()),
		})
	}
	fmt.Println()
	fmt.Println("paper: r is at most quadratic, conjectured linear; small constants here support the conjecture.")
	fmt.Println()
	return nil
}

// --- C5: optimization power -------------------------------------------

func expPower() error {
	fmt.Println("## C5 — optimization power: dynamic assignment savings vs. baselines")
	fmt.Println()
	fmt.Println("Savings = fraction of executed assignment instances removed,")
	fmt.Println("sampled over replayed executions (higher is better).")
	fmt.Println()
	fmt.Println("| workload | dce | fce | du-dce | ssa-dce | pde 1-round | pde | pfe |")
	fmt.Println("|----------|----:|----:|-------:|--------:|------------:|----:|----:|")

	workloads := []struct {
		name string
		gen  func(seed int64) *cfg.Graph
	}{
		{"structured, dense vars", func(s int64) *cfg.Graph {
			return progen.Generate(progen.Params{Seed: s, Stmts: 120, Vars: 4, BranchProb: 0.3})
		}},
		{"structured, loops", func(s int64) *cfg.Graph {
			return progen.Generate(progen.Params{Seed: s, Stmts: 120, Vars: 6, LoopProb: 0.2})
		}},
		{"irreducible", func(s int64) *cfg.Graph {
			return progen.Generate(progen.Params{Seed: s, Stmts: 120, Vars: 6, Irreducible: true})
		}},
		{"paper figures (1,3,5,7,8,10,11,12)", nil},
	}

	for _, w := range workloads {
		var graphs []*cfg.Graph
		if w.gen == nil {
			for _, f := range figures.All() {
				if f.ExpectedPDE != "" {
					graphs = append(graphs, f.Graph())
				}
			}
		} else {
			for s := 0; s < nseeds(); s++ {
				graphs = append(graphs, w.gen(int64(s)))
			}
		}
		var sav [7]float64
		for _, g := range graphs {
			results := make([]*cfg.Graph, 7)
			results[0] = baseline.IteratedDCE(g).Graph
			results[1] = baseline.IteratedFCE(g).Graph
			results[2] = baseline.DefUseDCE(g).Graph
			ssaG, _ := ssa.Eliminate(g)
			results[3] = ssaG
			sr, err := baseline.SingleRound(g, core.ModeDead)
			if err != nil {
				return fmt.Errorf("%s single-round: %w", w.name, err)
			}
			results[4] = sr.Graph
			pdeG, _, err := core.PDE(g)
			if err != nil {
				return fmt.Errorf("%s pde: %w", w.name, err)
			}
			results[5] = pdeG
			pfeG, _, err := core.PFE(g)
			if err != nil {
				return fmt.Errorf("%s pfe: %w", w.name, err)
			}
			results[6] = pfeG
			for i, r := range results {
				sav[i] += verify.MeasureImprovement(g, r, 32, 768).Savings()
			}
		}
		k := float64(len(graphs))
		fmt.Printf("| %s | %.1f%% | %.1f%% | %.1f%% | %.1f%% | %.1f%% | %.1f%% | %.1f%% |\n",
			w.name, 100*sav[0]/k, 100*sav[1]/k, 100*sav[2]/k, 100*sav[3]/k,
			100*sav[4]/k, 100*sav[5]/k, 100*sav[6]/k)
		record("C5", w.name, 0, 0, map[string]float64{
			"dce": sav[0] / k, "fce": sav[1] / k, "dudce": sav[2] / k, "ssadce": sav[3] / k,
			"pde1": sav[4] / k, "pde": sav[5] / k, "pfe": sav[6] / k,
		})
	}
	fmt.Println()
	return nil
}

// --- C6: safety ablation ----------------------------------------------

func expSafety() error {
	fmt.Println("## C6 — safety ablation: all-paths (paper) vs. some-path (eager) sinking")
	fmt.Println()
	fmt.Println("Replaying executions against the transformed program; a violation is a")
	fmt.Println("changed output or an execution running *more* instances of a pattern.")
	fmt.Println()
	fmt.Println("| workload | pde violations | union-sink violations | replayed runs per variant |")
	fmt.Println("|----------|---------------:|----------------------:|--------------------------:|")
	configs := []struct {
		name string
		p    progen.Params
	}{
		{"loop-heavy structured", progen.Params{Stmts: 80, Vars: 5, LoopProb: 0.3, BranchProb: 0.2}},
		{"irreducible", progen.Params{Stmts: 80, Vars: 5, Irreducible: true}},
		{"figure 5 (paper)", progen.Params{}},
	}
	for _, c := range configs {
		var graphs []*cfg.Graph
		if c.name == "figure 5 (paper)" {
			f, _ := figures.ByNum(5)
			graphs = []*cfg.Graph{f.Graph()}
		} else {
			for s := 0; s < nseeds()*2; s++ {
				p := c.p
				p.Seed = int64(s)
				graphs = append(graphs, progen.Generate(p))
			}
		}
		pdeViol, unionViol, unionRuns := 0, 0, 0
		for _, g := range graphs {
			pdeG, _, err := core.PDE(g)
			if err != nil {
				return fmt.Errorf("%s pde: %w", c.name, err)
			}
			rep := verify.CheckTransformed(g, pdeG, verify.Options{Seeds: 32, Fuel: 512})
			pdeViol += len(rep.Violations)

			ug := baseline.UnionSinkOnce(g)
			urep := verify.CheckTransformed(g, ug.Graph, verify.Options{Seeds: 32, Fuel: 512})
			unionViol += len(urep.Violations)
			unionRuns += urep.Executions
		}
		fmt.Printf("| %s | %d | %d | %d |\n", c.name, pdeViol, unionViol, unionRuns)
		record("C6", c.name, 0, 0, map[string]float64{
			"pde_violations": float64(pdeViol), "union_violations": float64(unionViol),
		})
	}
	fmt.Println("\npaper's guarantee: the pde column must be all zeros; the union ablation")
	fmt.Println("demonstrates why the product confluence (justified insertions) is essential.")
	fmt.Println()
	return nil
}

// --- C7: hoisting direction ---------------------------------------------

func expHoist() error {
	fmt.Println("## C7 — assignment hoisting ([9], Related Work) cannot eliminate partial deadness")
	fmt.Println()
	fmt.Println("Dynamic assignment savings of hoisting (must be exactly 0, the")
	fmt.Println("transformation is cost-neutral by construction) against pde:")
	fmt.Println()
	fmt.Println("| workload | hoist savings | pde savings | hoist violations |")
	fmt.Println("|----------|--------------:|------------:|-----------------:|")
	workloads := []struct {
		name   string
		graphs []*cfg.Graph
	}{
		{"paper figures", nil},
		{"structured random", nil},
	}
	for _, f := range figures.All() {
		if f.ExpectedPDE != "" {
			workloads[0].graphs = append(workloads[0].graphs, f.Graph())
		}
	}
	for s := 0; s < nseeds(); s++ {
		workloads[1].graphs = append(workloads[1].graphs,
			progen.Generate(progen.Params{Seed: int64(s), Stmts: 100, Vars: 5, BranchProb: 0.3}))
	}
	for _, w := range workloads {
		var sHoist, sPDE float64
		violations := 0
		for _, g := range w.graphs {
			h, _, err := hoist.Optimize(g)
			if err != nil {
				return fmt.Errorf("%s hoist: %w", w.name, err)
			}
			rep := verify.CheckTransformed(g, h, verify.Options{Seeds: 32, Fuel: 512})
			violations += len(rep.Violations)
			sHoist += verify.MeasureImprovement(g, h, 32, 512).Savings()
			p, _, err := core.PDE(g)
			if err != nil {
				return fmt.Errorf("%s pde: %w", w.name, err)
			}
			sPDE += verify.MeasureImprovement(g, p, 32, 512).Savings()
		}
		k := float64(len(w.graphs))
		fmt.Printf("| %s | %.1f%% | %.1f%% | %d |\n", w.name, 100*sHoist/k, 100*sPDE/k, violations)
		record("C7", w.name, 0, 0, map[string]float64{
			"hoist_savings": sHoist / k, "pde_savings": sPDE / k, "violations": float64(violations),
		})
	}
	fmt.Println()
	fmt.Println("paper: hoisting-based assignment motion \"does not allow any elimination")
	fmt.Println("of partially dead code\" — the hoist column staying at 0.0% while pde")
	fmt.Println("saves confirms it; 0 violations confirm hoisting is still admissible motion.")
	fmt.Println()
	return nil
}

// --- C9: incremental driver & batch throughput ---------------------------

func expBatch() error {
	fmt.Println("## C9 — incremental driver and batch-optimization throughput")
	fmt.Println()
	fmt.Println("### incremental vs. from-scratch driver (identical outputs)")
	fmt.Println()
	fmt.Println("The incremental driver fixes the variable/pattern universes once,")
	fmt.Println("reuses solver storage, and re-seeds each round's fixpoint from the")
	fmt.Println("previous solution plus the blocks the last round changed.")
	fmt.Println()
	fmt.Println("| n (stmts) | from-scratch | incremental | speedup |")
	fmt.Println("|----------:|-------------:|------------:|--------:|")
	for _, n := range sizes() {
		g := progen.Generate(progen.Params{Seed: 1, Stmts: n})
		ref, _, err := timeTransformOpt(g, core.Options{Mode: core.ModeDead, NoIncremental: true})
		if err != nil {
			return fmt.Errorf("from-scratch n=%d: %w", n, err)
		}
		inc, _, err := timeTransformOpt(g, core.Options{Mode: core.ModeDead})
		if err != nil {
			return fmt.Errorf("incremental n=%d: %w", n, err)
		}
		fmt.Printf("| %d | %v | %v | %.1fx |\n",
			n, ref.Round(time.Microsecond), inc.Round(time.Microsecond),
			float64(ref)/float64(inc))
		record("C9", "incremental", n, inc, map[string]float64{"speedup": float64(ref) / float64(inc)})
	}
	fmt.Println()

	fmt.Println("### batch throughput (worker pool over independent programs)")
	fmt.Println()
	nProgs := cfgInt("programs", 32, 12)
	stmts := cfgInt("stmts", 256, 128)
	jobs := make([]batch.Job, nProgs)
	for i := range jobs {
		jobs[i] = batch.Job{
			Name:    fmt.Sprintf("p%02d", i),
			Graph:   progen.Generate(progen.Params{Seed: int64(i), Stmts: stmts}),
			Options: core.Options{Mode: core.ModeDead},
		}
	}
	fmt.Printf("%d programs x %d statements, GOMAXPROCS=%d\n\n", nProgs, stmts, runtime.GOMAXPROCS(0))
	fmt.Println("| workers | wall time | programs/s | speedup vs 1 |")
	fmt.Println("|--------:|----------:|-----------:|-------------:|")
	var workerCounts []int
	for _, w := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		dup := false
		for _, seen := range workerCounts {
			dup = dup || seen == w
		}
		if !dup {
			workerCounts = append(workerCounts, w)
		}
	}
	var base time.Duration
	for _, w := range workerCounts {
		start := time.Now()
		results := batch.Run(jobs, w)
		d := time.Since(start)
		if s := batch.Summarize(results); s.Failed > 0 {
			return fmt.Errorf("workers=%d: %d batch jobs failed", w, s.Failed)
		}
		if base == 0 {
			base = d
		}
		fmt.Printf("| %d | %v | %.1f | %.2fx |\n",
			w, d.Round(time.Millisecond),
			float64(nProgs)/d.Seconds(), float64(base)/float64(d))
		record("C9", "batch-throughput", w, d, map[string]float64{
			"programs_per_s": float64(nProgs) / d.Seconds(), "speedup": float64(base) / float64(d),
		})
	}
	fmt.Println()
	fmt.Println("speedup tracks available cores; on a single-core host the pool")
	fmt.Println("degenerates gracefully to sequential cost.")
	fmt.Println()
	return nil
}

// --- C9b: solver engine comparison ---------------------------------------

// expSolverModes compares the three dataflow execution engines of the
// incremental driver on the scaling corpus. All three are pinned to
// byte-identical outputs by the equivalence property tests, so the
// comparison is pure cost: wall time plus the solvers' node-visit
// counts (elimination + sinking analyses), which attribute the gap to
// work actually avoided rather than constant factors.
func expSolverModes() error {
	fmt.Println("## C9b — dataflow engines: dense vs. sparse vs. auto (identical outputs)")
	fmt.Println()
	fmt.Println("Node visits = block relaxations of the dead-variable solver plus the")
	fmt.Println("delayability solver across all rounds (Stats.ElimSolverWork +")
	fmt.Println("Stats.SinkSolverWork); the sparse engine counts per-bit node visits.")
	fmt.Println()
	fmt.Println("| n (stmts) | dense | sparse | auto | dense visits | sparse visits | auto visits |")
	fmt.Println("|----------:|------:|-------:|-----:|-------------:|--------------:|------------:|")
	modes := []struct {
		name string
		m    dataflow.SolverMode
	}{
		{"dense", dataflow.SolveDense},
		{"sparse", dataflow.SolveSparse},
		{"auto", dataflow.SolveAuto},
	}
	for _, n := range sizes() {
		g := progen.Generate(progen.Params{Seed: 1, Stmts: n})
		durs := make([]time.Duration, len(modes))
		visits := make([]int, len(modes))
		for i, mode := range modes {
			d, st, err := timeTransformOpt(g, core.Options{Mode: core.ModeDead, Solver: mode.m})
			if err != nil {
				return fmt.Errorf("%s n=%d: %w", mode.name, n, err)
			}
			durs[i] = d
			visits[i] = st.ElimSolverWork + st.SinkSolverWork
			record("C9b", "solver-"+mode.name, n, d, map[string]float64{
				"node_visits": float64(visits[i]),
			})
		}
		fmt.Printf("| %d | %v | %v | %v | %d | %d | %d |\n",
			n, durs[0].Round(time.Microsecond), durs[1].Round(time.Microsecond),
			durs[2].Round(time.Microsecond), visits[0], visits[1], visits[2])
	}
	fmt.Println()
	fmt.Println("auto should track the better engine per size: sparse node visits stay")
	fmt.Println("near the def/use frontier while dense visits scale with blocks x passes.")
	fmt.Println()
	return nil
}

// --- C10: serving throughput (pdced, cold vs. warm cache) ----------------

// expServing measures the optimization service end to end: real HTTP
// requests through pdce.Client against internal/server. The cold pass
// sends every program once against an empty cache (each request runs
// the optimizer); the warm passes repeat the same programs, which by
// Theorem 3.7's determinism are pure cache hits. The gap is the
// paper's fixpoint cost as seen by a service consumer.
func expServing() error {
	fmt.Println("## C10 — serving throughput: cold vs. warm content-addressed cache")
	fmt.Println()
	nProgs := cfgInt("programs", 16, 8)
	stmts := cfgInt("stmts", 192, 96)
	warmReps := cfgInt("warm_reps", 5, 3)
	sources := make([]string, nProgs)
	for i := range sources {
		sources[i] = progen.Generate(progen.Params{Seed: int64(i), Stmts: stmts}).Format()
	}
	fmt.Printf("%d programs x %d statements, warm pass repeated %dx, GOMAXPROCS=%d\n\n",
		nProgs, stmts, warmReps, runtime.GOMAXPROCS(0))
	fmt.Println("| clients | cold reqs/s | warm reqs/s | warm/cold |")
	fmt.Println("|--------:|------------:|------------:|----------:|")
	for _, conc := range cur.ClientsOr([]int{1, 4, 16}) {
		// A fresh server per concurrency level keeps every cold pass
		// genuinely cold.
		// Default cache capacity: the LRU is sharded, so a capacity
		// near the working-set size can evict within a hot shard.
		s, err := server.New(server.Config{
			MaxInFlight: runtime.GOMAXPROCS(0),
			MaxQueue:    4 * nProgs,
		})
		if err != nil {
			return err
		}
		ts := httptest.NewServer(s.Handler())
		client := pdce.NewClient(ts.URL)

		cold, err := driveServing(client, sources, conc, 1)
		if err != nil {
			ts.Close()
			return fmt.Errorf("cold pass, %d clients: %w", conc, err)
		}
		warm, err := driveServing(client, sources, conc, warmReps)
		if err != nil {
			ts.Close()
			return fmt.Errorf("warm pass, %d clients: %w", conc, err)
		}
		ts.Close()
		if got := s.Stats().Optimizes(); got != int64(nProgs) {
			return fmt.Errorf("%d clients: optimizer ran %d times for %d distinct programs — warm requests were not served from cache", conc, got, nProgs)
		}
		coldRate := float64(nProgs) / cold.Seconds()
		warmRate := float64(nProgs*warmReps) / warm.Seconds()
		fmt.Printf("| %d | %.1f | %.1f | %.1fx |\n", conc, coldRate, warmRate, warmRate/coldRate)
		record("C10", "serving-cold", conc, cold, map[string]float64{"reqs_per_s": coldRate})
		record("C10", "serving-warm", conc, warm, map[string]float64{
			"reqs_per_s": warmRate, "speedup_vs_cold": warmRate / coldRate,
		})
	}
	fmt.Println()
	fmt.Println("warm throughput is bounded by HTTP and hashing, not by the solver:")
	fmt.Println("the transformation's determinism makes its results content-addressable,")
	fmt.Println("so repeated inputs cost one SHA-256 instead of a fixpoint iteration.")
	fmt.Println()
	return nil
}

// driveServing pushes reps full passes over sources through conc
// concurrent clients and returns the wall time.
func driveServing(client *pdce.Client, sources []string, conc, reps int) (time.Duration, error) {
	jobs := make(chan int, len(sources)*reps)
	for r := 0; r < reps; r++ {
		for i := range sources {
			jobs <- i
		}
	}
	close(jobs)
	errc := make(chan error, conc)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				_, _, err := client.Optimize(context.Background(),
					fmt.Sprintf("c10-%02d", i), sources[i], pdce.RequestOptions{})
				if err != nil {
					select {
					case errc <- err:
					default:
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	d := time.Since(start)
	select {
	case err := <-errc:
		return 0, err
	default:
	}
	return d, nil
}

// timeTransformOpt is timeTransform with explicit driver options.
func timeTransformOpt(g *cfg.Graph, opt core.Options) (time.Duration, core.Stats, error) {
	best := time.Duration(math.MaxInt64)
	var st core.Stats
	reps := 3
	if g.NumStmts() > 1500 {
		reps = 1
	}
	for r := 0; r < reps; r++ {
		start := time.Now()
		_, s, err := core.Transform(g, opt)
		d := time.Since(start)
		if err != nil {
			return 0, core.Stats{}, err
		}
		if d < best {
			best, st = d, s
		}
	}
	return best, st, nil
}

// --- C8: liveness pressure ------------------------------------------------

func expPressure() error {
	fmt.Println("## C8 — liveness pressure (register-pressure proxy) before/after pde")
	fmt.Println()
	fmt.Println("The paper's delayability descends from lcm's, whose purpose was")
	fmt.Println("minimizing temporary lifetimes. pde optimizes executed work, not")
	fmt.Println("pressure: sinking shortens the target's range but stretches the")
	fmt.Println("operands' ranges, so both directions occur.")
	fmt.Println()
	fmt.Println("| workload | mean before | mean after | peak before | peak after |")
	fmt.Println("|----------|------------:|-----------:|------------:|-----------:|")
	configs := []struct {
		name string
		p    progen.Params
	}{
		{"structured, dense vars", progen.Params{Stmts: 120, Vars: 4, BranchProb: 0.3}},
		{"structured, many vars", progen.Params{Stmts: 120, Vars: 16, BranchProb: 0.3}},
		{"irreducible", progen.Params{Stmts: 120, Vars: 8, Irreducible: true}},
	}
	for _, c := range configs {
		var mb, ma float64
		pb, pa := 0, 0
		for s := 0; s < nseeds(); s++ {
			params := c.p
			params.Seed = int64(s)
			g := progen.Generate(params)
			opt, _, err := core.PDE(g)
			if err != nil {
				return fmt.Errorf("%s seed=%d: %w", c.name, s, err)
			}
			before := analysis.Pressure(g)
			after := analysis.Pressure(opt)
			mb += before.Mean()
			ma += after.Mean()
			if before.Max > pb {
				pb = before.Max
			}
			if after.Max > pa {
				pa = after.Max
			}
		}
		k := float64(nseeds())
		fmt.Printf("| %s | %.2f | %.2f | %d | %d |\n", c.name, mb/k, ma/k, pb, pa)
		record("C8", c.name, 0, 0, map[string]float64{
			"mean_before": mb / k, "mean_after": ma / k,
			"peak_before": float64(pb), "peak_after": float64(pa),
		})
	}
	fmt.Println()
	return nil
}
