package main

// C11 — cluster serving: replica scaling, affinity routing, and fault
// tolerance of pdce.Pool over several pdced replicas.
//
// Replica scaling is invisible for pure cache hits on one machine (a
// warm hit costs microseconds, so N in-process replicas answer no
// faster than one). The experiment therefore installs the server's
// RequestHook to serialize a fixed per-request service cost on every
// replica — the standing model of a single-core replica with a fixed
// CPU floor per request — which makes the cluster's capacity R times a
// single replica's and lets affinity routing and failover show up in
// wall-clock numbers.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"pdce"
	"pdce/internal/progen"
	"pdce/internal/server"
)

// clusterReplica is one in-process pdced with the serialized service
// cost installed.
type clusterReplica struct {
	srv *server.Server
	ts  *httptest.Server
}

// newCluster starts n replicas, each serializing cost per /optimize
// request, and a Pool over them.
func newCluster(n, conc int, cost time.Duration, opts pdce.PoolOptions) ([]clusterReplica, *pdce.Pool, func(), error) {
	replicas := make([]clusterReplica, 0, n)
	urls := make([]string, 0, n)
	cleanup := func() {
		for _, r := range replicas {
			r.ts.Close()
		}
	}
	for i := 0; i < n; i++ {
		var mu sync.Mutex
		s, err := server.New(server.Config{
			MaxInFlight: conc,
			MaxQueue:    4 * conc,
			RequestHook: func(*http.Request) {
				mu.Lock()
				time.Sleep(cost)
				mu.Unlock()
			},
		})
		if err != nil {
			cleanup()
			return nil, nil, nil, err
		}
		ts := httptest.NewServer(s.Handler())
		replicas = append(replicas, clusterReplica{srv: s, ts: ts})
		urls = append(urls, ts.URL)
	}
	pool, err := pdce.NewPool(urls, opts)
	if err != nil {
		cleanup()
		return nil, nil, nil, err
	}
	full := func() { pool.Close(); cleanup() }
	return replicas, pool, full, nil
}

// drivePool pushes reps passes over sources through conc closed-loop
// workers. halfway, when non-nil, fires once after half the requests
// have been handed out — the hook the fault run uses to kill a replica
// mid-flight. Returns the wall time and the number of failed requests.
func drivePool(p *pdce.Pool, sources []string, conc, reps int, halfway func()) (time.Duration, int, error) {
	total := len(sources) * reps
	jobs := make(chan int, total)
	for r := 0; r < reps; r++ {
		for i := range sources {
			jobs <- i
		}
	}
	close(jobs)
	var handed, failures atomic.Int64
	var once sync.Once
	var firstErr error
	var errMu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if halfway != nil && handed.Add(1) == int64(total/2) {
					once.Do(halfway)
				}
				_, _, err := p.Optimize(context.Background(), fmt.Sprintf("c11-%02d", i), sources[i], pdce.RequestOptions{})
				if err != nil {
					failures.Add(1)
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return time.Since(start), int(failures.Load()), firstErr
}

// expCluster is C11: cold and warm throughput at 1, 2, and 4 replicas,
// then a warm 4-replica run with one replica drained mid-flight.
func expCluster() error {
	fmt.Println("## C11 — cluster serving: replica scaling, affinity, fault tolerance")
	fmt.Println()
	// Key balance over the ring is what bounds the busiest replica, so
	// even the quick sweep keeps the program count high: fewer keys
	// make the max per-replica share noisy run to run (httptest ports
	// randomize the ring layout).
	nProgs := cfgInt("programs", 48, 32)
	stmts := cfgInt("stmts", 160, 96)
	warmReps := cfgInt("warm_reps", 6, 4)
	conc := cfgInt("clients", 16, 16)
	const serviceCost = 4 * time.Millisecond
	sources := make([]string, nProgs)
	for i := range sources {
		sources[i] = progen.Generate(progen.Params{Seed: int64(i), Stmts: stmts}).Format()
	}
	fmt.Printf("%d programs x %d statements, %d closed-loop clients, warm pass %dx,\n",
		nProgs, stmts, conc, warmReps)
	fmt.Printf("per-replica serialized service cost %v (single-core replica model)\n\n", serviceCost)
	fmt.Println("| replicas | cold reqs/s | warm reqs/s | warm speedup vs 1 | affinity hit rate |")
	fmt.Println("|---------:|------------:|------------:|------------------:|------------------:|")

	replicaSweep := cur.ReplicasOr([]int{1, 2, 4})
	warmRate := map[int]float64{}
	base := 0.0 // first (smallest) replica count's warm rate
	for _, n := range replicaSweep {
		replicas, pool, done, err := newCluster(n, conc, serviceCost, pdce.PoolOptions{ProbeInterval: -1, Seed: 11})
		if err != nil {
			return err
		}
		cold, coldFail, err := drivePool(pool, sources, conc, 1, nil)
		if err != nil {
			done()
			return fmt.Errorf("cold pass, %d replicas: %d failures, first: %w", n, coldFail, err)
		}
		warm, warmFail, err := drivePool(pool, sources, conc, warmReps, nil)
		if err != nil {
			done()
			return fmt.Errorf("warm pass, %d replicas: %d failures, first: %w", n, warmFail, err)
		}
		// Affinity keeps every program on one home replica, so across
		// the whole cluster each distinct program is optimized exactly
		// once — warm requests and sibling replicas never re-solve it.
		var optimizes int64
		for _, r := range replicas {
			optimizes += r.srv.Stats().Optimizes()
		}
		snap := pool.Stats().Snapshot()
		done()
		if optimizes != int64(nProgs) {
			return fmt.Errorf("%d replicas: optimizer ran %d times for %d distinct programs — affinity routing failed to keep requests on their home replica", n, optimizes, nProgs)
		}
		coldRate := float64(nProgs) / cold.Seconds()
		warmRate[n] = float64(nProgs*warmReps) / warm.Seconds()
		if base == 0 {
			base = warmRate[n]
		}
		fmt.Printf("| %d | %.1f | %.1f | %.2fx | %.2f |\n",
			n, coldRate, warmRate[n], warmRate[n]/base, snap.AffinityHitRate)
		record("C11", "cluster-cold", n, cold, map[string]float64{"reqs_per_s": coldRate})
		record("C11", "cluster-warm", n, warm, map[string]float64{
			"reqs_per_s": warmRate[n], "speedup_vs_1": warmRate[n] / base,
			"affinity_hit_rate": snap.AffinityHitRate,
		})
	}
	// Scaling acceptance check only when the sweep covers the 1→4 span
	// it asserts about. The bar is declared per host class in
	// experiments.json (min_scaling_x100, hundredths of the required
	// speedup): on a single-core container every replica and client
	// schedules on one CPU, so warm scaling lands in a wide band and
	// the built-in 2x default over-asserts; the regression gate watches
	// the speedup_vs_1 metric for real collapses either way.
	minBar := float64(cfgInt("min_scaling_x100", 200, 200)) / 100
	if w1, ok1 := warmRate[1]; ok1 {
		if w4, ok4 := warmRate[4]; ok4 && w4 < minBar*w1 {
			return fmt.Errorf("4-replica warm throughput %.1f reqs/s is below %.2fx the single-replica %.1f — replica scaling failed", w4, minBar, w1)
		}
	}

	// Fault run: a fresh warm 4-replica ring, then one replica begins
	// draining once half the requests are out. The pool must absorb it
	// — 503s eject the member and fail the keys over — with zero
	// caller-visible errors.
	replicas, pool, done, err := newCluster(4, conc, serviceCost, pdce.PoolOptions{ProbeInterval: -1, Seed: 11})
	if err != nil {
		return err
	}
	defer done()
	if _, warmFail, err := drivePool(pool, sources, conc, 1, nil); err != nil {
		return fmt.Errorf("fault-run warmup: %d failures, first: %w", warmFail, err)
	}
	faultDur, faultFail, err := drivePool(pool, sources, conc, warmReps, func() {
		replicas[0].srv.BeginDrain()
	})
	if faultFail > 0 {
		return fmt.Errorf("replica kill leaked %d errors to callers, first: %w", faultFail, err)
	}
	snap := pool.Stats().Snapshot()
	victim := pool.Members()[0]
	if victim.Healthy {
		return fmt.Errorf("drained replica %s still marked healthy", victim.URL)
	}
	rc := snap.Replicas[victim.URL]
	faultRate := float64(nProgs*warmReps) / faultDur.Seconds()
	fmt.Println()
	fmt.Printf("fault run (4 replicas, one drained mid-flight): %.1f reqs/s, %d caller-visible errors, %d failovers, %d ejections\n",
		faultRate, faultFail, snap.Failovers, rc.Ejections)
	record("C11", "cluster-fault", 4, faultDur, map[string]float64{
		"reqs_per_s": faultRate, "errors": float64(faultFail),
		"failovers": float64(snap.Failovers), "ejections": float64(rc.Ejections),
	})
	fmt.Println()
	fmt.Println("determinism (Theorem 3.7) is what makes this purely a routing exercise:")
	fmt.Println("any replica can answer any request with identical bytes, so replica")
	fmt.Println("choice is an affinity decision and failover needs no state transfer.")
	fmt.Println()
	return nil
}
