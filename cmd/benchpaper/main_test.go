package main

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestFitExponent(t *testing.T) {
	// Perfect quadratic data must fit exponent 2.
	ns := []int{64, 128, 256, 512}
	var ts []time.Duration
	for _, n := range ns {
		ts = append(ts, time.Duration(n*n)*time.Nanosecond)
	}
	if k := fitExponent(ns, ts); math.Abs(k-2) > 1e-9 {
		t.Errorf("quadratic fit = %f", k)
	}
	// Linear data fits exponent 1.
	ts = ts[:0]
	for _, n := range ns {
		ts = append(ts, time.Duration(1000*n)*time.Nanosecond)
	}
	if k := fitExponent(ns, ts); math.Abs(k-1) > 1e-9 {
		t.Errorf("linear fit = %f", k)
	}
}

// TestBenchJSONReport runs the figure experiment with recording on and
// checks the -json payload round-trips with populated records.
func TestBenchJSONReport(t *testing.T) {
	oldRecords, oldJSON := records, *jsonOut
	defer func() { records, *jsonOut = oldRecords, oldJSON }()
	records = nil
	*jsonOut = filepath.Join(t.TempDir(), "bench.json")

	oldStdout := os.Stdout
	os.Stdout, _ = os.Open(os.DevNull)
	err := expFigures()
	os.Stdout = oldStdout
	if err != nil {
		t.Fatal(err)
	}
	if err := writeBenchJSON(*jsonOut); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(*jsonOut)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) == 0 {
		t.Fatal("empty records")
	}
	if rep.GOMAXPROCS < 1 {
		t.Errorf("gomaxprocs = %d", rep.GOMAXPROCS)
	}
	for _, r := range rep.Records {
		if r.Exp != "F" || r.Name == "" {
			t.Fatalf("bad record %+v", r)
		}
		if r.Metrics["ok"] != 1 {
			t.Errorf("figure %s does not match the paper in the report", r.Name)
		}
	}
}

func TestSizesQuickSubset(t *testing.T) {
	oldQuick := *quick
	defer func() { *quick = oldQuick }()
	*quick = true
	qs := sizes()
	*quick = false
	full := sizes()
	if len(qs) >= len(full) {
		t.Error("quick sweep not smaller than full sweep")
	}
	inFull := map[int]bool{}
	for _, n := range full {
		inFull[n] = true
	}
	for _, n := range qs {
		if !inFull[n] {
			t.Errorf("quick size %d not in full sweep", n)
		}
	}
}
