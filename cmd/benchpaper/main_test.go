package main

import (
	"math"
	"testing"
	"time"
)

func TestFitExponent(t *testing.T) {
	// Perfect quadratic data must fit exponent 2.
	ns := []int{64, 128, 256, 512}
	var ts []time.Duration
	for _, n := range ns {
		ts = append(ts, time.Duration(n*n)*time.Nanosecond)
	}
	if k := fitExponent(ns, ts); math.Abs(k-2) > 1e-9 {
		t.Errorf("quadratic fit = %f", k)
	}
	// Linear data fits exponent 1.
	ts = ts[:0]
	for _, n := range ns {
		ts = append(ts, time.Duration(1000*n)*time.Nanosecond)
	}
	if k := fitExponent(ns, ts); math.Abs(k-1) > 1e-9 {
		t.Errorf("linear fit = %f", k)
	}
}

func TestSizesQuickSubset(t *testing.T) {
	oldQuick := *quick
	defer func() { *quick = oldQuick }()
	*quick = true
	qs := sizes()
	*quick = false
	full := sizes()
	if len(qs) >= len(full) {
		t.Error("quick sweep not smaller than full sweep")
	}
	inFull := map[int]bool{}
	for _, n := range full {
		inFull[n] = true
	}
	for _, n := range qs {
		if !inFull[n] {
			t.Errorf("quick size %d not in full sweep", n)
		}
	}
}
