package main

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"pdce/internal/bench"
	"pdce/internal/obs"
)

func TestMain(m *testing.M) {
	// The run-loop normally loads the matrix in main(); tests exercise
	// experiment functions directly, so install the defaults here.
	matrix = bench.DefaultMatrix()
	cur = matrix.Exp("F")
	os.Exit(m.Run())
}

func TestFitExponent(t *testing.T) {
	// Perfect quadratic data must fit exponent 2.
	ns := []int{64, 128, 256, 512}
	var ts []time.Duration
	for _, n := range ns {
		ts = append(ts, time.Duration(n*n)*time.Nanosecond)
	}
	if k := fitExponent(ns, ts); math.Abs(k-2) > 1e-9 {
		t.Errorf("quadratic fit = %f", k)
	}
	// Linear data fits exponent 1.
	ts = ts[:0]
	for _, n := range ns {
		ts = append(ts, time.Duration(1000*n)*time.Nanosecond)
	}
	if k := fitExponent(ns, ts); math.Abs(k-1) > 1e-9 {
		t.Errorf("linear fit = %f", k)
	}
}

// TestRunHistoryAppend runs the figure experiment with recording on and
// checks the resulting run — records, aggregates, run header — appends
// to and round-trips through the BENCH_paper.json history.
func TestRunHistoryAppend(t *testing.T) {
	oldRecords, oldCur, oldRep := records, cur, curRep
	defer func() { records, cur, curRep = oldRecords, oldCur, oldRep }()
	records = nil
	cur = matrix.Exp("F")
	curRep = 0

	oldStdout := os.Stdout
	os.Stdout, _ = os.Open(os.DevNull)
	err := expFigures()
	os.Stdout = oldStdout
	if err != nil {
		t.Fatal(err)
	}

	run := buildRun("test-run", nil)
	if run.Kind != "full" || run.RunID != "test-run" {
		t.Fatalf("bad run header %+v", run)
	}
	if len(run.Records) == 0 {
		t.Fatal("empty records")
	}
	if len(run.Aggregates) == 0 {
		t.Fatal("no aggregates")
	}
	if run.GOMAXPROCS < 1 {
		t.Errorf("gomaxprocs = %d", run.GOMAXPROCS)
	}
	if len(run.Exps) != 1 || run.Exps[0] != "F" {
		t.Errorf("experiments = %v", run.Exps)
	}
	for _, r := range run.Records {
		if r.Exp != "F" || r.Name == "" {
			t.Fatalf("bad record %+v", r)
		}
		if r.Metrics["ok"] != 1 {
			t.Errorf("figure %s does not match the paper in the report", r.Name)
		}
	}

	path := filepath.Join(t.TempDir(), "bench.json")
	if err := obs.AppendBenchRun(path, run); err != nil {
		t.Fatal(err)
	}
	h, err := obs.LoadBenchHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if h.Schema != obs.BenchSchemaVersion || len(h.Runs) != 1 {
		t.Fatalf("history schema=%d runs=%d", h.Schema, len(h.Runs))
	}
	got := h.Runs[0]
	if got.RunID != "test-run" || len(got.Records) != len(run.Records) {
		t.Fatalf("round-trip lost records: %d != %d", len(got.Records), len(run.Records))
	}
	if st, ok := got.Stat("F", got.Records[0].Name, got.Records[0].N, "ok"); !ok || st.Median != 1 {
		t.Errorf("Stat(ok) = %+v, %v", st, ok)
	}
}

func TestSizesQuickSubset(t *testing.T) {
	oldQuick, oldCur := *quick, cur
	defer func() { *quick, cur = oldQuick, oldCur }()
	cur = matrix.Exp("C1")
	*quick = true
	qs := sizes()
	*quick = false
	full := sizes()
	if len(qs) >= len(full) {
		t.Error("quick sweep not smaller than full sweep")
	}
	inFull := map[int]bool{}
	for _, n := range full {
		inFull[n] = true
	}
	for _, n := range qs {
		if !inFull[n] {
			t.Errorf("quick size %d not in full sweep", n)
		}
	}
}

// TestSmokeSelection resolves -smoke into the smoke matrix's experiment
// subset, and rejects unknown -exp ids.
func TestSmokeSelection(t *testing.T) {
	oldSmoke, oldExp := *smoke, *expFlag
	defer func() { *smoke, *expFlag = oldSmoke, oldExp }()

	*smoke = true
	want, err := selected()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range matrix.Smoke.Exps {
		if !want[id] {
			t.Errorf("smoke selection missing %s", id)
		}
	}
	if len(want) != len(matrix.Smoke.Exps) {
		t.Errorf("smoke selected %d experiments, config lists %d", len(want), len(matrix.Smoke.Exps))
	}

	*smoke = false
	*expFlag = "c1, C9B"
	want, err = selected()
	if err != nil {
		t.Fatal(err)
	}
	if !want["C1"] || !want["C9b"] || len(want) != 2 {
		t.Errorf("case-insensitive list selection = %v", want)
	}

	*expFlag = "C99"
	if _, err := selected(); err == nil {
		t.Error("unknown experiment id accepted")
	}
}
