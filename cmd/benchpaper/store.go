package main

// C12 — shared persistence: a 4-replica fleet is killed and
// rescheduled on empty L1 caches, and the shared L2 blob store must
// carry the warm state across the restart.
//
// The experiment runs the same cold pass / kill / reschedule drill
// under three -store configurations: off (the control — every replica
// re-solves from scratch), dir: (replicas share one filesystem
// directory), and http:// (replicas share one pdce-blobd daemon). With
// a store the rescheduled fleet's first pass must be served almost
// entirely from L2 — fleet-wide hit rate >= 0.8 — and byte-identical
// to the cold-solve responses; without one the hit rate is exactly 0.
// Determinism (Theorem 3.7) is what makes the blobs shareable at all:
// any replica's solve of a key is the same bytes as any other's.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"sync"
	"time"

	"pdce"
	"pdce/internal/progen"
	"pdce/internal/server"
	"pdce/internal/store"
)

// newStoreFleet starts n replicas, each wired to its own backend from
// mk (nil mk = no L2), and a Pool over them. Separate backend values
// over shared storage model separate processes on one mount or one
// blobd.
func newStoreFleet(n, conc int, mk func() (store.Backend, error)) ([]clusterReplica, *pdce.Pool, func(), error) {
	replicas := make([]clusterReplica, 0, n)
	urls := make([]string, 0, n)
	cleanup := func() {
		for _, r := range replicas {
			r.ts.Close()
		}
	}
	for i := 0; i < n; i++ {
		cfg := server.Config{MaxInFlight: conc, MaxQueue: 4 * conc}
		if mk != nil {
			b, err := mk()
			if err != nil {
				cleanup()
				return nil, nil, nil, err
			}
			cfg.Store = b
			cfg.LeaseTTL = 500 * time.Millisecond
		}
		s, err := server.New(cfg)
		if err != nil {
			cleanup()
			return nil, nil, nil, err
		}
		ts := httptest.NewServer(s.Handler())
		replicas = append(replicas, clusterReplica{srv: s, ts: ts})
		urls = append(urls, ts.URL)
	}
	pool, err := pdce.NewPool(urls, pdce.PoolOptions{ProbeInterval: -1, Seed: 12})
	if err != nil {
		cleanup()
		return nil, nil, nil, err
	}
	full := func() { pool.Close(); cleanup() }
	return replicas, pool, full, nil
}

// killStoreFleet is the scheduler's kill: drain every replica (flushing
// the async L2 publishes) and tear the processes down. Only the store
// backend survives.
func killStoreFleet(replicas []clusterReplica, pool *pdce.Pool) error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var firstErr error
	for _, r := range replicas {
		if err := r.srv.Drain(ctx); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	pool.Close()
	for _, r := range replicas {
		r.ts.Close()
	}
	return firstErr
}

// driveStoreFleet pushes one pass over sources through conc closed-loop
// workers, returning each program's response bytes (for the
// byte-identity check across the restart) and the wall time.
func driveStoreFleet(p *pdce.Pool, sources []string, conc int) ([][]byte, time.Duration, error) {
	bodies := make([][]byte, len(sources))
	jobs := make(chan int, len(sources))
	for i := range sources {
		jobs <- i
	}
	close(jobs)
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				resp, _, err := p.Optimize(context.Background(), fmt.Sprintf("c12-%02d", i), sources[i], pdce.RequestOptions{})
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					continue
				}
				b, err := json.Marshal(resp)
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					continue
				}
				bodies[i] = b
			}
		}()
	}
	wg.Wait()
	return bodies, time.Since(start), firstErr
}

// expStore is C12: cold-solve a corpus on a 4-replica fleet, kill and
// reschedule the fleet, and measure how much of the first post-restart
// pass the shared L2 store serves.
func expStore() error {
	fmt.Println("## C12 — shared persistence: fleet kill/reschedule recovery through the L2 store")
	fmt.Println()
	nProgs := cfgInt("programs", 48, 32)
	stmts := cfgInt("stmts", 160, 96)
	conc := cfgInt("clients", 16, 16)
	replicas := cfgInt("replicas", 4, 4)
	sources := make([]string, nProgs)
	for i := range sources {
		sources[i] = progen.Generate(progen.Params{Seed: int64(i), Stmts: stmts}).Format()
	}
	fmt.Printf("%d programs x %d statements, %d replicas, %d closed-loop clients;\n", nProgs, stmts, replicas, conc)
	fmt.Println("fleet is drained and killed after the cold pass, then rescheduled with empty L1s")
	fmt.Println()
	fmt.Println("| store | cold reqs/s | restart reqs/s | fleet hit rate | re-solves | byte-identical |")
	fmt.Println("|-------|------------:|---------------:|---------------:|----------:|----------------|")

	type mode struct {
		name string
		mk   func() (func() (store.Backend, error), func(), error) // per-mode setup -> per-replica factory
	}
	modes := []mode{
		{name: "off", mk: func() (func() (store.Backend, error), func(), error) {
			return nil, func() {}, nil
		}},
		{name: "dir", mk: func() (func() (store.Backend, error), func(), error) {
			root, err := os.MkdirTemp("", "pdce-c12-dir-")
			if err != nil {
				return nil, nil, err
			}
			factory := func() (store.Backend, error) { return store.NewDirStore(root) }
			return factory, func() { os.RemoveAll(root) }, nil
		}},
		{name: "http", mk: func() (func() (store.Backend, error), func(), error) {
			root, err := os.MkdirTemp("", "pdce-c12-blobd-")
			if err != nil {
				return nil, nil, err
			}
			ds, err := store.NewDirStore(root)
			if err != nil {
				os.RemoveAll(root)
				return nil, nil, err
			}
			blobd := httptest.NewServer(store.Handler(ds)) // in-process pdce-blobd
			factory := func() (store.Backend, error) {
				return store.NewHTTPStore(blobd.URL, blobd.Client()), nil
			}
			return factory, func() { blobd.Close(); os.RemoveAll(root) }, nil
		}},
	}

	wantMode := map[string]bool{}
	for _, name := range cur.StoreModesOr([]string{"off", "dir", "http"}) {
		wantMode[name] = true
	}
	hitRate := map[string]float64{}
	for _, m := range modes {
		if !wantMode[m.name] {
			continue
		}
		factory, teardown, err := m.mk()
		if err != nil {
			return fmt.Errorf("%s: setup: %w", m.name, err)
		}

		// Cold fleet: every program solved once somewhere, results
		// published to the store as a side effect of solving.
		fleet, pool, _, err := newStoreFleet(replicas, conc, factory)
		if err != nil {
			teardown()
			return fmt.Errorf("%s: cold fleet: %w", m.name, err)
		}
		ref, cold, err := driveStoreFleet(pool, sources, conc)
		if err != nil {
			killStoreFleet(fleet, pool)
			teardown()
			return fmt.Errorf("%s: cold pass: %w", m.name, err)
		}
		if err := killStoreFleet(fleet, pool); err != nil {
			teardown()
			return fmt.Errorf("%s: fleet kill: %w", m.name, err)
		}

		// Rescheduled fleet: fresh processes, empty L1s, same store.
		fleet, pool, _, err = newStoreFleet(replicas, conc, factory)
		if err != nil {
			teardown()
			return fmt.Errorf("%s: rescheduled fleet: %w", m.name, err)
		}
		warm, restart, err := driveStoreFleet(pool, sources, conc)
		if err != nil {
			killStoreFleet(fleet, pool)
			teardown()
			return fmt.Errorf("%s: restart pass: %w", m.name, err)
		}
		var resolves, l2Hits int64
		for _, r := range fleet {
			resolves += r.srv.Stats().Optimizes()
			l2Hits += r.srv.StoreStats().L2Hits()
		}
		killStoreFleet(fleet, pool)
		teardown()

		identical := true
		for i := range ref {
			if !bytes.Equal(ref[i], warm[i]) {
				identical = false
				break
			}
		}
		if !identical {
			return fmt.Errorf("%s: rescheduled fleet served different bytes than the cold solve", m.name)
		}
		hitRate[m.name] = 1 - float64(resolves)/float64(nProgs)
		coldRate := float64(nProgs) / cold.Seconds()
		restartRate := float64(nProgs) / restart.Seconds()
		fmt.Printf("| %s | %.1f | %.1f | %.2f | %d | yes |\n",
			m.name, coldRate, restartRate, hitRate[m.name], resolves)
		record("C12", "recovery-"+m.name, replicas, restart, map[string]float64{
			"cold_reqs_per_s":    coldRate,
			"restart_reqs_per_s": restartRate,
			"fleet_hit_rate":     hitRate[m.name],
			"re_solves":          float64(resolves),
			"l2_hits":            float64(l2Hits),
			"byte_identical":     1,
		})
	}

	if r, ok := hitRate["off"]; ok && r != 0 {
		return fmt.Errorf("control run without a store shows hit rate %.2f; expected 0 (results leaked across the kill)", r)
	}
	for _, m := range []string{"dir", "http"} {
		if r, ok := hitRate[m]; ok && r < 0.8 {
			return fmt.Errorf("%s store: rescheduled fleet hit rate %.2f < 0.80 — the store failed to carry warm state across the restart", m, r)
		}
	}
	fmt.Println()
	fmt.Println("the store is the only state that survives the kill: the rescheduled fleet's")
	fmt.Println("L1s are empty, so every served-without-solving response above was fetched")
	fmt.Println("from L2 and is byte-identical to the original solve (content addressing +")
	fmt.Println("Theorem 3.7 determinism make the blobs safe to share fleet-wide).")
	fmt.Println()
	return nil
}
