GO ?= go

.PHONY: all build vet test race bench bench-json bench-check bench-smoke fuzz smoke-telemetry smoke-server smoke-trace chaos-smoke smoke-store docs-check ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One pass over the scaling benchmark: catches bit-rot in the benchmark
# harness and prints current numbers without a full measurement run.
bench:
	$(GO) test -run '^$$' -bench PDEScaling -benchmem -benchtime 1x .

# Measurement run: execute the experiments.json matrix at quick scale,
# append the run (raw per-repeat records plus variance aggregates) to
# the committed BENCH_paper.json history, and regenerate the docs from
# it. Commit the history and doc changes together — the drift guard in
# `make test` byte-compares the docs against a fresh render.
bench-json:
	$(GO) run ./cmd/benchpaper -quick -json BENCH_paper.json > /dev/null
	$(GO) run ./cmd/benchreport

# Regression gate: run the smoke matrix from experiments.json against a
# scratch copy of the history and fail if any metric regresses beyond
# its measured variance band. Set PDCE_BENCH_TOLERANCE (e.g. 2.0) to
# widen every band on noisy hosts — see docs/OPERATIONS.md.
bench-check:
	cp BENCH_paper.json /tmp/pdce-bench-check.json
	$(GO) run ./cmd/benchpaper -smoke -json /tmp/pdce-bench-check.json -out '' > /dev/null
	$(GO) run ./cmd/benchreport -history /tmp/pdce-bench-check.json -check

# Solver-engine smoke: tiny-n scaling run pinning byte-identical
# outputs across the dense/sparse/auto dataflow engines and asserting
# the auto density heuristic tracks the dense engine's wall time.
bench-smoke:
	PDCE_BENCH_SMOKE=1 $(GO) test -count=1 -run TestBenchSmoke -v .

# Fuzz smoke over the containment contract: SafeOptimize must never
# panic and must always return a structurally valid program, whatever
# the input and option combination.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzSafeOptimize -fuzztime 20s .

# Telemetry smoke: optimize the corpus with all collectors on and
# validate every report against the golden schema (in-process via the
# schema test, end-to-end via the CLI's -metrics-json and -explain).
smoke-telemetry:
	$(GO) test -run 'TestTelemetrySmoke|TestRunExplain|TestRunMetricsJSON|TestRunTraceJSON|TestRunBatchMetricsReport' . ./cmd/pdce
	$(GO) run ./cmd/pdce -stats -metrics-json /dev/null -workers 2 testdata/corpus > /dev/null
	$(GO) run ./cmd/pdce -explain sq testdata/corpus/stats.while | grep -q 'eliminated'

# Serving smoke: boot a real pdced daemon on an ephemeral port,
# optimize a corpus file through the client twice (the second request
# must be a content-addressed cache hit), then drain it cleanly with a
# synthesized SIGTERM. The server-package end-to-end tests (cache
# byte-identity, 429 shedding, graceful drain) ride along.
smoke-server:
	$(GO) test -race -count=1 -run 'TestServeSmoke' ./cmd/pdced
	$(GO) test -race -count=1 -run 'TestCacheHitByteIdentical|TestQueueSaturation|TestGracefulDrain|TestPanic500NeverPoisonsCache' ./internal/server

# Tracing smoke: boot a real pdced, push one request through a traced
# pdce.Pool, and assert the daemon ends up holding the single merged
# span tree (client root, attempt, server subtree down to the solver
# rounds) plus the Prometheus text exposition of the trace-store
# counters. The pool-retry, queue-span, and WAL-replay-link end-to-end
# tests ride along, as does the -debug-addr pprof listener drill.
smoke-trace:
	$(GO) test -race -count=1 -run 'TestSmokeTrace|TestDebugListenerShutdown' ./cmd/pdced
	$(GO) test -race -count=1 -run 'TestPoolTraceEndToEnd' .
	$(GO) test -race -count=1 -run 'TestQueueTraceSpans|TestQueueReplayTraceLink|TestTraceJoinAndSpanTree' ./internal/server

# Chaos smoke: one fixed-seed schedule of the cluster chaos harness
# under the race detector — replica crashes with torn WAL tails,
# interrupted drains, transport faults, and solver stalls against a
# three-replica in-process cluster, asserting no acked job is lost, no
# result diverges from a fault-free reference, and no goroutine leaks.
# (The full randomized sweep is TestChaosRandomized in ./internal/chaos.)
chaos-smoke:
	$(GO) test -race -count=1 -run 'TestChaosSmoke' ./internal/chaos

# Store smoke: the shared L2 persistence tier under the race detector —
# the blobd daemon's serve loop, the server wiring (L2 backfill, lease
# loser fetch, expiry takeover, outage degradation, peer serving, spill
# orphan sweep), the mixed-version key-space isolation property, and
# one fixed-seed chaos schedule with store outages, slow backends, and
# lease owners crashing mid-solve in the fault deck.
# (The full randomized sweep is TestChaosStoreRandomized in ./internal/chaos.)
smoke-store:
	$(GO) test -race -count=1 ./internal/store
	$(GO) test -race -count=1 -run 'TestServeSmoke' ./cmd/pdce-blobd
	$(GO) test -race -count=1 -run 'TestStore|TestPeerCacheServing|TestSpillOrphanSweep' ./internal/server
	$(GO) test -race -count=1 -run 'TestStoreKeyVersionIsolation' .
	$(GO) test -race -count=1 -run 'TestChaosStoreSmoke' ./internal/chaos

# Docs drift guard: every query parameter the server parses and every
# field /metrics emits must be documented in docs/API.md, and the
# generated benchmark tables in docs/BENCHMARKS.md, EXPERIMENTS.md, and
# README.md must byte-match a fresh render of the committed
# BENCH_paper.json history.
docs-check:
	$(GO) test -run 'TestDocsCover' ./internal/server
	$(GO) test -run 'TestCommittedDocs' ./internal/bench

# Full local CI: static checks, build, the whole suite under the race
# detector (includes the incremental-vs-reference equivalence property
# tests, the batch pipeline and fault-injection tests, and the
# allocation budget guard), a benchmark smoke pass, the solver-engine
# smoke, the containment fuzz smoke, the telemetry, serving, tracing,
# chaos, and store smokes, the docs drift guard, and the benchmark
# regression gate (smoke matrix + variance-band check).
ci: vet build race bench bench-smoke fuzz smoke-telemetry smoke-server smoke-trace chaos-smoke smoke-store docs-check bench-check
