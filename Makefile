GO ?= go

.PHONY: all build vet test race bench ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One pass over the scaling benchmark: catches bit-rot in the benchmark
# harness and prints current numbers without a full measurement run.
bench:
	$(GO) test -run '^$$' -bench PDEScaling -benchmem -benchtime 1x .

# Full local CI: static checks, build, the whole suite under the race
# detector (includes the incremental-vs-reference equivalence property
# tests, the batch pipeline tests, and the allocation budget guard),
# and a benchmark smoke pass.
ci: vet build race bench
