GO ?= go

.PHONY: all build vet test race bench fuzz ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One pass over the scaling benchmark: catches bit-rot in the benchmark
# harness and prints current numbers without a full measurement run.
bench:
	$(GO) test -run '^$$' -bench PDEScaling -benchmem -benchtime 1x .

# Fuzz smoke over the containment contract: SafeOptimize must never
# panic and must always return a structurally valid program, whatever
# the input and option combination.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzSafeOptimize -fuzztime 20s .

# Full local CI: static checks, build, the whole suite under the race
# detector (includes the incremental-vs-reference equivalence property
# tests, the batch pipeline and fault-injection tests, and the
# allocation budget guard), a benchmark smoke pass, and the
# containment fuzz smoke.
ci: vet build race bench fuzz
