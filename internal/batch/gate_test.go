package batch

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"pdce/internal/cfg"
	"pdce/internal/core"
)

// countingGate admits everything while tracking the concurrent-holder
// peak; it is the RunGated contract check that every admitted job
// pairs Acquire with exactly one Release.
type countingGate struct {
	mu      sync.Mutex
	cur     int
	peak    int
	acquire atomic.Int64
	release atomic.Int64
}

func (g *countingGate) Acquire(context.Context) error {
	g.acquire.Add(1)
	g.mu.Lock()
	g.cur++
	if g.cur > g.peak {
		g.peak = g.cur
	}
	g.mu.Unlock()
	return nil
}

func (g *countingGate) Release() {
	g.release.Add(1)
	g.mu.Lock()
	g.cur--
	g.mu.Unlock()
}

// rejectAfterGate admits n jobs, then rejects everything.
type rejectAfterGate struct {
	admitted atomic.Int64
	limit    int64
	err      error
}

func (g *rejectAfterGate) Acquire(context.Context) error {
	if g.admitted.Add(1) > g.limit {
		return g.err
	}
	return nil
}

func (g *rejectAfterGate) Release() {}

func TestRunGatedPairsAcquireRelease(t *testing.T) {
	const n = 12
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{Name: "j", Graph: goodGraph(int64(i)), Options: core.Options{Mode: core.ModeDead}}
	}
	g := &countingGate{}
	results := RunGated(context.Background(), jobs, 4, nil, g)
	for i, r := range results {
		if r.Err != nil {
			t.Errorf("job %d: %v", i, r.Err)
		}
	}
	if g.acquire.Load() != n || g.release.Load() != n {
		t.Errorf("acquire/release %d/%d, want %d/%d", g.acquire.Load(), g.release.Load(), n, n)
	}
	if g.peak > 4 {
		t.Errorf("gate saw %d concurrent holders with 4 workers", g.peak)
	}
}

func TestRunGatedRejectionSkipsJob(t *testing.T) {
	errShed := errors.New("shed")
	jobs := make([]Job, 6)
	for i := range jobs {
		jobs[i] = Job{Name: "j", Graph: goodGraph(int64(i)), Options: core.Options{Mode: core.ModeDead}}
	}
	g := &rejectAfterGate{limit: 2, err: errShed}
	// Single worker: jobs run in order, so exactly jobs 0-1 succeed.
	results := RunGated(context.Background(), jobs, 1, nil, g)
	for i, r := range results {
		if i < 2 {
			if r.Err != nil {
				t.Errorf("admitted job %d failed: %v", i, r.Err)
			}
			continue
		}
		if !errors.Is(r.Err, errShed) {
			t.Errorf("rejected job %d: err %v", i, r.Err)
		}
		if r.Worker != -1 {
			t.Errorf("rejected job %d ran on worker %d", i, r.Worker)
		}
		if r.Graph != nil {
			t.Errorf("rejected job %d carries a graph", i)
		}
	}
	// Shed jobs are visible to the tracker as skips, not starts.
	tk := &Tracker{}
	RunGated(context.Background(), jobs, 1, tk, &rejectAfterGate{limit: 0, err: errShed})
	p := tk.Snapshot()
	if p.Skipped != int64(len(jobs)) || p.Started != 0 || p.Failed != int64(len(jobs)) {
		t.Errorf("tracker after full shed: %+v", p)
	}
}

func TestRunGatedNilGateMatchesRunObserved(t *testing.T) {
	jobs := []Job{
		{Name: "a", Graph: goodGraph(1), Options: core.Options{Mode: core.ModeDead}},
		{Name: "b", Graph: goodGraph(2), Options: core.Options{Mode: core.ModeFaint}},
	}
	gated := RunGated(context.Background(), jobs, 2, nil, nil)
	plain := RunObserved(context.Background(), jobs, 2, nil)
	for i := range jobs {
		if gated[i].Err != nil || plain[i].Err != nil {
			t.Fatalf("job %d errored: %v / %v", i, gated[i].Err, plain[i].Err)
		}
		if !cfg.Equal(gated[i].Graph, plain[i].Graph) {
			t.Errorf("job %d: gated and plain results differ", i)
		}
	}
}
