package batch

import (
	"context"
	"errors"
	"sort"
	"sync/atomic"
	"time"

	"pdce/internal/core"
)

// Tracker publishes live progress of one batch run. All methods are
// nil-safe (a nil tracker collects nothing) and concurrency-safe; the
// pool updates it from every worker, and the batch progress endpoint of
// cmd/pdce reads snapshots while the run is in flight. A tracker may be
// reused across runs — begin resets it.
type Tracker struct {
	total   atomic.Int64
	workers atomic.Int64
	started atomic.Int64
	done    atomic.Int64
	failed  atomic.Int64
	skipped atomic.Int64
	beganAt atomic.Int64 // unix nanoseconds
}

func (t *Tracker) begin(jobs, workers int) {
	if t == nil {
		return
	}
	t.total.Store(int64(jobs))
	t.workers.Store(int64(workers))
	t.started.Store(0)
	t.done.Store(0)
	t.failed.Store(0)
	t.skipped.Store(0)
	t.beganAt.Store(time.Now().UnixNano())
}

func (t *Tracker) jobStarted() {
	if t != nil {
		t.started.Add(1)
	}
}

func (t *Tracker) jobDone(failed bool) {
	if t == nil {
		return
	}
	t.done.Add(1)
	if failed {
		t.failed.Add(1)
	}
}

func (t *Tracker) jobSkipped() {
	if t == nil {
		return
	}
	t.skipped.Add(1)
	t.failed.Add(1)
}

// Progress is a point-in-time view of a tracked batch run.
type Progress struct {
	// Total is the job count, Workers the pool size. Started counts
	// jobs handed to a worker, Done the finished ones (Failed of
	// those with an error), Skipped the jobs the pool never started
	// because the batch context was cancelled. ElapsedMS is the wall
	// time since the run began.
	Total     int64 `json:"total"`
	Workers   int64 `json:"workers"`
	Started   int64 `json:"started"`
	Done      int64 `json:"done"`
	Failed    int64 `json:"failed"`
	Skipped   int64 `json:"skipped"`
	ElapsedMS int64 `json:"elapsed_ms"`
}

// Snapshot freezes the tracker. Nil-safe.
func (t *Tracker) Snapshot() Progress {
	if t == nil {
		return Progress{}
	}
	p := Progress{
		Total:   t.total.Load(),
		Workers: t.workers.Load(),
		Started: t.started.Load(),
		Done:    t.done.Load(),
		Failed:  t.failed.Load(),
		Skipped: t.skipped.Load(),
	}
	if began := t.beganAt.Load(); began > 0 {
		p.ElapsedMS = (time.Now().UnixNano() - began) / int64(time.Millisecond)
	}
	return p
}

// WorkerStats aggregates one pool worker's share of a finished run.
type WorkerStats struct {
	Jobs   int   `json:"jobs"`
	BusyNS int64 `json:"busy_ns"`
}

// Metrics aggregates a finished result set for machine consumption:
// failure classification, latency percentiles, and per-worker load.
type Metrics struct {
	Jobs   int `json:"jobs"`
	Failed int `json:"failed"`

	// Failure classes: Panics counts contained *core.PanicError
	// results, Interrupted watchdog/context *core.InterruptError
	// results (which still carry a usable graph), Skipped jobs the
	// pool never started.
	Panics      int `json:"panics"`
	Interrupted int `json:"interrupted"`
	Skipped     int `json:"skipped"`

	// Latency percentiles (nearest-rank) and maximum over the jobs
	// that actually ran, plus the summed busy time.
	P50NS   int64 `json:"p50_ns"`
	P95NS   int64 `json:"p95_ns"`
	MaxNS   int64 `json:"max_ns"`
	TotalNS int64 `json:"total_ns"`

	// PerWorker is indexed by worker ID.
	PerWorker []WorkerStats `json:"per_worker,omitempty"`
}

// ComputeMetrics folds a finished result slice into batch metrics.
func ComputeMetrics(results []Result) Metrics {
	m := Metrics{Jobs: len(results)}
	var durs []time.Duration
	maxWorker := -1
	for _, r := range results {
		if r.Worker > maxWorker {
			maxWorker = r.Worker
		}
	}
	if maxWorker >= 0 {
		m.PerWorker = make([]WorkerStats, maxWorker+1)
	}
	for _, r := range results {
		if r.Err != nil {
			m.Failed++
			var pe *core.PanicError
			var ie *core.InterruptError
			switch {
			case errors.As(r.Err, &pe):
				m.Panics++
			case errors.As(r.Err, &ie):
				m.Interrupted++
			case errors.Is(r.Err, context.Canceled) || errors.Is(r.Err, context.DeadlineExceeded):
				if r.Worker < 0 {
					m.Skipped++
				}
			}
		}
		if r.Worker < 0 {
			continue
		}
		durs = append(durs, r.Duration)
		m.TotalNS += int64(r.Duration)
		if int64(r.Duration) > m.MaxNS {
			m.MaxNS = int64(r.Duration)
		}
		w := &m.PerWorker[r.Worker]
		w.Jobs++
		w.BusyNS += int64(r.Duration)
	}
	if len(durs) > 0 {
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		m.P50NS = int64(durs[nearestRank(len(durs), 50)])
		m.P95NS = int64(durs[nearestRank(len(durs), 95)])
	}
	return m
}

// nearestRank returns the 0-based index of the p-th percentile under
// the nearest-rank definition for a sorted sample of size n.
func nearestRank(n, p int) int {
	r := (p*n + 99) / 100 // ceil(p/100 * n)
	if r < 1 {
		r = 1
	}
	if r > n {
		r = n
	}
	return r - 1
}
