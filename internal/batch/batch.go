// Package batch runs the optimizer over many programs concurrently.
//
// Each program's fixpoint iteration is an independent, CPU-bound
// computation over its own graph clone, so the natural unit of
// parallelism is the whole optimization run: a bounded pool of workers
// (default: GOMAXPROCS) drains a job list, and results are reported in
// job order regardless of completion order. This is the engine behind
// pdce.OptimizeAll, the multi-file mode of cmd/pdce, and the batch
// throughput experiment of cmd/benchpaper.
//
// The pool is fault-isolated per job: a panic inside one optimization
// is recovered in the worker (core.SafeTransform) and reported as that
// job's *core.PanicError without taking down the pool or any other
// job. Cancelling the context stops dispatch — jobs not yet started
// report the context's error, in-flight jobs are interrupted through
// the driver's watchdog and report their best phase-boundary graph —
// and RunContext still returns a fully-populated, in-order result
// slice.
package batch

import (
	"context"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"pdce/internal/cfg"
	"pdce/internal/core"
	"pdce/internal/faultinject"
)

// Job is one program to optimize.
type Job struct {
	// Name identifies the job in results and summaries.
	Name string
	// Graph is the input program; it is only read, never mutated
	// (core.Transform clones it), so the same graph may appear in
	// several jobs.
	Graph *cfg.Graph
	// Options configures the run. Function-valued fields (Hot,
	// Observe) are invoked from worker goroutines and must be safe
	// for concurrent use if shared across jobs.
	Options core.Options
}

// Result is the outcome of one job. Results preserve job order.
type Result struct {
	Name  string
	Graph *cfg.Graph // nil when Err is non-nil, except partial results
	Stats core.Stats
	Err   error

	// Duration is the job's wall-clock optimization time; Worker is
	// the 0-based index of the pool worker that ran it, -1 for jobs
	// the pool never started (batch context cancelled first).
	Duration time.Duration
	Worker   int
}

// Run optimizes every job using at most workers concurrent
// optimizations. It is RunContext with a background context.
func Run(jobs []Job, workers int) []Result {
	return RunContext(context.Background(), jobs, workers)
}

// RunContext optimizes every job using at most workers concurrent
// optimizations. workers <= 0 selects GOMAXPROCS; the pool never
// exceeds the number of jobs. The returned slice is indexed like jobs.
//
// ctx bounds the whole batch: once it is cancelled no further job is
// started — skipped jobs report ctx.Err() — and it is forwarded to
// every job whose options carry no context of their own, so in-flight
// runs wind down through the driver's watchdog (their results carry an
// *core.InterruptError plus the best graph reached). RunContext always
// drains the pool before returning; no worker outlives the call.
func RunContext(ctx context.Context, jobs []Job, workers int) []Result {
	return RunObserved(ctx, jobs, workers, nil)
}

// RunObserved is RunContext with a live progress tracker. tk, when
// non-nil, is updated as jobs start and finish — the feed behind the
// batch progress endpoint of cmd/pdce. A nil tracker collects nothing.
func RunObserved(ctx context.Context, jobs []Job, workers int, tk *Tracker) []Result {
	return RunGated(ctx, jobs, workers, tk, nil)
}

// Gate is an admission controller consulted per job. The serving layer
// passes its global admission here so a batch request cannot
// monopolize capacity past the server-wide concurrency budget: each
// pool worker acquires a slot before running a job and releases it
// after. Acquire blocks until a slot is free, the queue rejects the
// caller, or ctx is done; a non-nil error skips the job (it is
// reported as that job's Result.Err with Worker -1, like a job the
// pool never started). Implementations must be safe for concurrent
// use from every pool worker.
type Gate interface {
	Acquire(ctx context.Context) error
	Release()
}

// RunGated is RunObserved with a per-job admission gate (nil gate =
// admit everything, identical to RunObserved).
func RunGated(ctx context.Context, jobs []Job, workers int, tk *Tracker, gate Gate) []Result {
	results := make([]Result, len(jobs))
	if len(jobs) == 0 {
		return results
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	tk.begin(len(jobs), workers)

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range idx {
				if gate != nil {
					if err := gate.Acquire(ctx); err != nil {
						results[i] = Result{Name: jobs[i].Name, Err: err, Worker: -1}
						tk.jobSkipped()
						continue
					}
				}
				tk.jobStarted()
				results[i] = runJob(ctx, jobs[i], worker)
				if gate != nil {
					gate.Release()
				}
				tk.jobDone(results[i].Err != nil)
			}
		}(w)
	}
dispatch:
	for i := range jobs {
		select {
		case idx <- i:
		case <-ctx.Done():
			// Mark this and every remaining job untouched; the
			// workers drain naturally once the channel closes.
			for j := i; j < len(jobs); j++ {
				results[j] = Result{Name: jobs[j].Name, Err: ctx.Err(), Worker: -1}
				tk.jobSkipped()
			}
			break dispatch
		}
	}
	close(idx)
	wg.Wait()
	return results
}

// runJob executes one job with panic containment: a panic anywhere in
// the run — including the fault-injection point, which fires inside
// the contained region so an injected panic takes the same recovery
// path a real one would — becomes that job's *core.PanicError.
func runJob(ctx context.Context, j Job, worker int) (res Result) {
	res.Name = j.Name
	res.Worker = worker
	start := time.Now()
	defer func() {
		res.Duration = time.Since(start)
		if v := recover(); v != nil {
			res.Graph, res.Err = nil, &core.PanicError{Value: v, Stack: debug.Stack()}
		}
		// The job's tracing span (if any) is owned by this worker: end
		// it here so panic and interrupt paths record an error class
		// and a duration like any other outcome.
		if sp := j.Options.Span; sp != nil {
			sp.SetInt("worker", int64(worker))
			if res.Err != nil {
				sp.SetError(core.ErrorClass(res.Err))
			}
			sp.End()
		}
	}()
	if j.Options.Ctx == nil {
		j.Options.Ctx = ctx
	}
	faultinject.Fire(faultinject.BatchJob, j.Name)
	res.Graph, res.Stats, res.Err = core.Transform(j.Graph, j.Options)
	return res
}

// Summary aggregates a result set.
type Summary struct {
	Programs, Failed int

	// Totals over the successful runs.
	Rounds, Eliminated, Inserted, SinkRemoved int
	OriginalStmts, FinalStmts                 int
}

// Summarize folds a result slice into per-batch totals.
func Summarize(results []Result) Summary {
	var s Summary
	s.Programs = len(results)
	for _, r := range results {
		if r.Err != nil {
			s.Failed++
			continue
		}
		s.Rounds += r.Stats.Rounds
		s.Eliminated += r.Stats.Eliminated
		s.Inserted += r.Stats.Inserted
		s.SinkRemoved += r.Stats.SinkRemoved
		s.OriginalStmts += r.Stats.OriginalStmts
		s.FinalStmts += r.Stats.FinalStmts
	}
	return s
}
