// Package batch runs the optimizer over many programs concurrently.
//
// Each program's fixpoint iteration is an independent, CPU-bound
// computation over its own graph clone, so the natural unit of
// parallelism is the whole optimization run: a bounded pool of workers
// (default: GOMAXPROCS) drains a job list, and results are reported in
// job order regardless of completion order. This is the engine behind
// pdce.OptimizeAll, the multi-file mode of cmd/pdce, and the batch
// throughput experiment of cmd/benchpaper.
package batch

import (
	"runtime"
	"sync"

	"pdce/internal/cfg"
	"pdce/internal/core"
)

// Job is one program to optimize.
type Job struct {
	// Name identifies the job in results and summaries.
	Name string
	// Graph is the input program; it is only read, never mutated
	// (core.Transform clones it), so the same graph may appear in
	// several jobs.
	Graph *cfg.Graph
	// Options configures the run. Function-valued fields (Hot,
	// Observe) are invoked from worker goroutines and must be safe
	// for concurrent use if shared across jobs.
	Options core.Options
}

// Result is the outcome of one job. Results preserve job order.
type Result struct {
	Name  string
	Graph *cfg.Graph // nil when Err is non-nil
	Stats core.Stats
	Err   error
}

// Run optimizes every job using at most workers concurrent
// optimizations. workers <= 0 selects GOMAXPROCS; the pool never
// exceeds the number of jobs. The returned slice is indexed like jobs.
func Run(jobs []Job, workers int) []Result {
	results := make([]Result, len(jobs))
	if len(jobs) == 0 {
		return results
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				j := jobs[i]
				g, st, err := core.Transform(j.Graph, j.Options)
				results[i] = Result{Name: j.Name, Graph: g, Stats: st, Err: err}
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// Summary aggregates a result set.
type Summary struct {
	Programs, Failed int

	// Totals over the successful runs.
	Rounds, Eliminated, Inserted, SinkRemoved int
	OriginalStmts, FinalStmts                 int
}

// Summarize folds a result slice into per-batch totals.
func Summarize(results []Result) Summary {
	var s Summary
	s.Programs = len(results)
	for _, r := range results {
		if r.Err != nil {
			s.Failed++
			continue
		}
		s.Rounds += r.Stats.Rounds
		s.Eliminated += r.Stats.Eliminated
		s.Inserted += r.Stats.Inserted
		s.SinkRemoved += r.Stats.SinkRemoved
		s.OriginalStmts += r.Stats.OriginalStmts
		s.FinalStmts += r.Stats.FinalStmts
	}
	return s
}
