package batch

import (
	"context"
	"fmt"
	"testing"
	"time"

	"pdce/internal/core"
	"pdce/internal/faultinject"
)

func TestComputeMetricsAggregation(t *testing.T) {
	results := []Result{
		{Name: "a", Worker: 0, Duration: 10 * time.Millisecond},
		{Name: "b", Worker: 1, Duration: 20 * time.Millisecond},
		{Name: "c", Worker: 0, Duration: 30 * time.Millisecond},
		{Name: "d", Worker: 1, Duration: 40 * time.Millisecond,
			Err: &core.PanicError{Value: "boom"}},
		{Name: "e", Worker: -1, Err: context.Canceled},
	}
	m := ComputeMetrics(results)
	if m.Jobs != 5 || m.Failed != 2 {
		t.Errorf("jobs/failed = %d/%d, want 5/2", m.Jobs, m.Failed)
	}
	if m.Panics != 1 || m.Interrupted != 0 || m.Skipped != 1 {
		t.Errorf("failure classes = %+v", m)
	}
	// Four jobs ran: sorted durations 10,20,30,40ms. Nearest-rank
	// p50 = 2nd (20ms), p95 = 4th (40ms).
	if m.P50NS != int64(20*time.Millisecond) || m.P95NS != int64(40*time.Millisecond) {
		t.Errorf("p50/p95 = %d/%d", m.P50NS, m.P95NS)
	}
	if m.MaxNS != int64(40*time.Millisecond) || m.TotalNS != int64(100*time.Millisecond) {
		t.Errorf("max/total = %d/%d", m.MaxNS, m.TotalNS)
	}
	if len(m.PerWorker) != 2 {
		t.Fatalf("per-worker = %+v", m.PerWorker)
	}
	if m.PerWorker[0].Jobs != 2 || m.PerWorker[0].BusyNS != int64(40*time.Millisecond) {
		t.Errorf("worker 0 = %+v", m.PerWorker[0])
	}
	if m.PerWorker[1].Jobs != 2 || m.PerWorker[1].BusyNS != int64(60*time.Millisecond) {
		t.Errorf("worker 1 = %+v", m.PerWorker[1])
	}
}

func TestNearestRank(t *testing.T) {
	cases := []struct{ n, p, want int }{
		{1, 50, 0}, {1, 95, 0},
		{4, 50, 1}, {4, 95, 3},
		{100, 50, 49}, {100, 95, 94},
	}
	for _, c := range cases {
		if got := nearestRank(c.n, c.p); got != c.want {
			t.Errorf("nearestRank(%d, %d) = %d, want %d", c.n, c.p, got, c.want)
		}
	}
}

// TestRunObservedTracker runs a real pool against a tracker and checks
// the final snapshot and the per-result worker/duration stamps.
func TestRunObservedTracker(t *testing.T) {
	const njobs = 6
	jobs := make([]Job, njobs)
	for i := range jobs {
		jobs[i] = Job{Name: fmt.Sprint(i), Graph: goodGraph(int64(i)), Options: core.Options{Mode: core.ModeDead}}
	}
	var tk Tracker
	results := RunObserved(context.Background(), jobs, 2, &tk)

	p := tk.Snapshot()
	if p.Total != njobs || p.Workers != 2 || p.Started != njobs || p.Done != njobs {
		t.Errorf("progress = %+v", p)
	}
	if p.Failed != 0 || p.Skipped != 0 {
		t.Errorf("unexpected failures: %+v", p)
	}
	for i, r := range results {
		if r.Worker < 0 || r.Worker > 1 {
			t.Errorf("job %d ran on worker %d", i, r.Worker)
		}
		if r.Duration <= 0 {
			t.Errorf("job %d has no duration", i)
		}
	}
	m := ComputeMetrics(results)
	if m.Jobs != njobs || m.Failed != 0 || m.P50NS <= 0 || m.P95NS < m.P50NS {
		t.Errorf("metrics = %+v", m)
	}
}

// TestTrackerCancelledRun pins the skipped accounting: jobs never
// dispatched count as skipped and failed in the live snapshot.
func TestTrackerCancelledRun(t *testing.T) {
	const njobs, workers = 8, 2
	started := make(chan struct{}, njobs)
	release := make(chan struct{})
	restore := faultinject.Set(func(p faultinject.Point, _ any) {
		if p == faultinject.BatchJob {
			started <- struct{}{}
			<-release
		}
	})
	defer restore()

	jobs := make([]Job, njobs)
	for i := range jobs {
		jobs[i] = Job{Name: fmt.Sprint(i), Graph: goodGraph(int64(i)), Options: core.Options{Mode: core.ModeDead}}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var tk Tracker
	done := make(chan []Result, 1)
	go func() { done <- RunObserved(ctx, jobs, workers, &tk) }()
	<-started
	<-started
	cancel()
	close(release)
	results := <-done

	p := tk.Snapshot()
	if p.Skipped != njobs-workers {
		t.Errorf("skipped = %d, want %d", p.Skipped, njobs-workers)
	}
	if p.Started != workers || p.Done != workers {
		t.Errorf("started/done = %d/%d, want %d each", p.Started, p.Done, workers)
	}
	m := ComputeMetrics(results)
	if m.Skipped != njobs-workers {
		t.Errorf("metrics skipped = %d, want %d", m.Skipped, njobs-workers)
	}
}
