package batch

import (
	"fmt"
	"testing"

	"pdce/internal/cfg"
	"pdce/internal/core"
	"pdce/internal/parser"
	"pdce/internal/progen"
)

func goodGraph(seed int64) *cfg.Graph {
	return progen.Generate(progen.Params{Seed: seed, Stmts: 40})
}

// badGraph is structurally invalid (a node unreachable from start,
// with no path to end), so core.Transform rejects it.
func badGraph() *cfg.Graph {
	g := parser.MustParseCFG(`
node a { out(1) }
edge s a
edge a e
`)
	g.AddNode("orphan")
	return g
}

func TestRunIsolatesFailures(t *testing.T) {
	jobs := []Job{
		{Name: "ok0", Graph: goodGraph(0), Options: core.Options{Mode: core.ModeDead}},
		{Name: "bad", Graph: badGraph(), Options: core.Options{Mode: core.ModeDead}},
		{Name: "ok1", Graph: goodGraph(1), Options: core.Options{Mode: core.ModeFaint}},
	}
	results := Run(jobs, 3)
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	for i, want := range []string{"ok0", "bad", "ok1"} {
		if results[i].Name != want {
			t.Errorf("result %d is %q, want %q (order must match jobs)", i, results[i].Name, want)
		}
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Errorf("good jobs failed: %v, %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil {
		t.Error("invalid graph did not produce an error")
	}
	if results[1].Graph != nil {
		t.Error("failed job carries a graph")
	}

	s := Summarize(results)
	if s.Programs != 3 || s.Failed != 1 {
		t.Errorf("Summarize = %+v, want 3 programs / 1 failed", s)
	}
	if s.Rounds != results[0].Stats.Rounds+results[2].Stats.Rounds {
		t.Errorf("Summarize.Rounds = %d, want sum of successful runs", s.Rounds)
	}
}

func TestRunWorkerClamping(t *testing.T) {
	if got := Run(nil, 4); len(got) != 0 {
		t.Fatalf("Run(nil) returned %d results", len(got))
	}
	var jobs []Job
	for i := 0; i < 5; i++ {
		jobs = append(jobs, Job{Name: fmt.Sprint(i), Graph: goodGraph(int64(i)), Options: core.Options{Mode: core.ModeDead}})
	}
	// More workers than jobs, zero workers (GOMAXPROCS), negative.
	for _, w := range []int{64, 0, -1} {
		results := Run(jobs, w)
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("workers=%d job %d: %v", w, i, r.Err)
			}
		}
	}
}
