package batch

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"pdce/internal/cfg"
	"pdce/internal/core"
	"pdce/internal/faultinject"
	"pdce/internal/parser"
	"pdce/internal/progen"
)

func goodGraph(seed int64) *cfg.Graph {
	return progen.Generate(progen.Params{Seed: seed, Stmts: 40})
}

// badGraph is structurally invalid (a node unreachable from start,
// with no path to end), so core.Transform rejects it.
func badGraph() *cfg.Graph {
	g := parser.MustParseCFG(`
node a { out(1) }
edge s a
edge a e
`)
	g.AddNode("orphan")
	return g
}

func TestRunIsolatesFailures(t *testing.T) {
	jobs := []Job{
		{Name: "ok0", Graph: goodGraph(0), Options: core.Options{Mode: core.ModeDead}},
		{Name: "bad", Graph: badGraph(), Options: core.Options{Mode: core.ModeDead}},
		{Name: "ok1", Graph: goodGraph(1), Options: core.Options{Mode: core.ModeFaint}},
	}
	results := Run(jobs, 3)
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	for i, want := range []string{"ok0", "bad", "ok1"} {
		if results[i].Name != want {
			t.Errorf("result %d is %q, want %q (order must match jobs)", i, results[i].Name, want)
		}
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Errorf("good jobs failed: %v, %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil {
		t.Error("invalid graph did not produce an error")
	}
	if results[1].Graph != nil {
		t.Error("failed job carries a graph")
	}

	s := Summarize(results)
	if s.Programs != 3 || s.Failed != 1 {
		t.Errorf("Summarize = %+v, want 3 programs / 1 failed", s)
	}
	if s.Rounds != results[0].Stats.Rounds+results[2].Stats.Rounds {
		t.Errorf("Summarize.Rounds = %d, want sum of successful runs", s.Rounds)
	}
}

func TestRunWorkerClamping(t *testing.T) {
	if got := Run(nil, 4); len(got) != 0 {
		t.Fatalf("Run(nil) returned %d results", len(got))
	}
	var jobs []Job
	for i := 0; i < 5; i++ {
		jobs = append(jobs, Job{Name: fmt.Sprint(i), Graph: goodGraph(int64(i)), Options: core.Options{Mode: core.ModeDead}})
	}
	// More workers than jobs, zero workers (GOMAXPROCS), negative.
	for _, w := range []int{64, 0, -1} {
		results := Run(jobs, w)
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("workers=%d job %d: %v", w, i, r.Err)
			}
		}
	}
}

// TestRunJobPanicContainment injects a panic into one job and checks
// the pool survives: the panicking job reports a *core.PanicError with
// the panic value and stack, every other job completes normally.
func TestRunJobPanicContainment(t *testing.T) {
	restore := faultinject.Set(func(p faultinject.Point, payload any) {
		if p == faultinject.BatchJob && payload == "boom" {
			panic("injected job fault")
		}
	})
	defer restore()

	jobs := []Job{
		{Name: "ok0", Graph: goodGraph(0), Options: core.Options{Mode: core.ModeDead}},
		{Name: "boom", Graph: goodGraph(1), Options: core.Options{Mode: core.ModeDead}},
		{Name: "ok1", Graph: goodGraph(2), Options: core.Options{Mode: core.ModeFaint}},
	}
	results := Run(jobs, 3)
	if results[0].Err != nil || results[2].Err != nil {
		t.Errorf("healthy jobs failed: %v, %v", results[0].Err, results[2].Err)
	}
	var pe *core.PanicError
	if !errors.As(results[1].Err, &pe) {
		t.Fatalf("panicking job error = %v, want *core.PanicError", results[1].Err)
	}
	if pe.Value != "injected job fault" {
		t.Errorf("panic value = %v", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("panic error carries no stack")
	}
	if results[1].Graph != nil {
		t.Error("panicking job carries a graph")
	}
}

// TestRunContextCancellation cancels a batch mid-run: two jobs are held
// in flight by the injection hook while the rest wait for dispatch.
// After cancellation the pool must drain — the in-flight jobs wind down
// through the driver's watchdog and report partial results, the
// untouched jobs report context.Canceled — and RunContext must return a
// fully populated, in-order result slice.
func TestRunContextCancellation(t *testing.T) {
	const njobs = 8
	const workers = 2

	started := make(chan struct{}, njobs)
	release := make(chan struct{})
	restore := faultinject.Set(func(p faultinject.Point, _ any) {
		if p == faultinject.BatchJob {
			started <- struct{}{}
			<-release
		}
	})
	defer restore()

	jobs := make([]Job, njobs)
	for i := range jobs {
		jobs[i] = Job{Name: fmt.Sprint(i), Graph: goodGraph(int64(i)), Options: core.Options{Mode: core.ModeDead}}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan []Result, 1)
	go func() { done <- RunContext(ctx, jobs, workers) }()

	// Both workers are now holding a job inside the hook; the
	// dispatcher is blocked offering the third. Cancel, then let the
	// in-flight jobs proceed into the (already expired) watchdog.
	<-started
	<-started
	cancel()
	close(release)
	results := <-done

	if len(results) != njobs {
		t.Fatalf("got %d results for %d jobs", len(results), njobs)
	}
	var inflight, untouched int
	for i, r := range results {
		if r.Name != jobs[i].Name {
			t.Errorf("result %d is %q, want %q", i, r.Name, jobs[i].Name)
		}
		switch {
		case r.Graph != nil:
			// An in-flight job: interrupted at a phase boundary with
			// its best graph, or finished before the cancellation won
			// the race. Either way the result must be coherent.
			inflight++
			if r.Err != nil && !core.Partial(r.Err) {
				t.Errorf("job %d: graph alongside non-partial error %v", i, r.Err)
			}
		default:
			untouched++
			if !errors.Is(r.Err, context.Canceled) {
				t.Errorf("job %d: err = %v, want context.Canceled", i, r.Err)
			}
		}
	}
	if inflight != workers {
		t.Errorf("%d in-flight results, want %d", inflight, workers)
	}
	if untouched != njobs-workers {
		t.Errorf("%d untouched results, want %d", untouched, njobs-workers)
	}
}
