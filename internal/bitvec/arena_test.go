package bitvec

import (
	"math/rand"
	"testing"
)

func TestArenaNewVectorsAreZeroAndIndependent(t *testing.T) {
	var a Arena
	sizes := []int{0, 1, 63, 64, 65, 200, 1000}
	var vs []*Vector
	for _, n := range sizes {
		v := a.New(n)
		if v.Len() != n {
			t.Fatalf("Len() = %d, want %d", v.Len(), n)
		}
		if !v.IsZero() {
			t.Fatalf("arena New(%d) not zero", n)
		}
		vs = append(vs, v)
	}
	// Writing one vector must not disturb its slab neighbours.
	for i, v := range vs {
		for b := 0; b < v.Len(); b += 7 {
			v.Set(b)
		}
		for j, w := range vs {
			if j == i {
				continue
			}
			for b := 0; b < w.Len(); b++ {
				want := j < i && b%7 == 0
				if w.Get(b) != want {
					t.Fatalf("vector %d bit %d = %v after writing vector %d", j, b, w.Get(b), i)
				}
			}
		}
	}
}

func TestArenaNewAllOnesAndCopy(t *testing.T) {
	var a Arena
	ones := a.NewAllOnes(130)
	if ones.Count() != 130 {
		t.Fatalf("NewAllOnes(130).Count() = %d", ones.Count())
	}

	src := New(99)
	for _, b := range []int{0, 17, 63, 64, 98} {
		src.Set(b)
	}
	cp := a.Copy(src)
	if !cp.Equal(src) {
		t.Fatalf("Copy = %s, want %s", cp, src)
	}
	cp.Clear(17)
	if !src.Get(17) {
		t.Fatal("mutating the arena copy changed the source")
	}
}

func TestArenaCrossesChunkBoundary(t *testing.T) {
	var a Arena
	// Enough 1024-bit vectors to force several chunks, plus one
	// vector larger than a whole chunk.
	var vs []*Vector
	for i := 0; i < 2000; i++ {
		vs = append(vs, a.New(1024))
	}
	huge := a.New(arenaChunkWords*64 + 5)
	if !huge.IsZero() {
		t.Fatal("oversized arena vector not zero")
	}
	huge.Set(arenaChunkWords * 64)
	for i, v := range vs {
		if !v.IsZero() {
			t.Fatalf("vector %d disturbed by oversized allocation", i)
		}
	}
}

func TestArenaReset(t *testing.T) {
	var a Arena
	v1 := a.New(256)
	v1.SetAll()
	a.Reset()
	v2 := a.New(256)
	if !v2.IsZero() {
		t.Fatal("vector carved after Reset sees stale bits")
	}
}

func TestOrNot(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(200)
		v, w := New(n), New(n)
		for b := 0; b < n; b++ {
			if rng.Intn(2) == 0 {
				v.Set(b)
			}
			if rng.Intn(2) == 0 {
				w.Set(b)
			}
		}
		want := New(n)
		for b := 0; b < n; b++ {
			if v.Get(b) || !w.Get(b) {
				want.Set(b)
			}
		}
		v.OrNot(w)
		if !v.Equal(want) {
			t.Fatalf("n=%d: OrNot = %s, want %s", n, v, want)
		}
		// The complement of bits past Len must not leak in.
		if v.Count() > n {
			t.Fatalf("OrNot set bits beyond Len: count %d > %d", v.Count(), n)
		}
	}
}
