// Package bitvec provides dense, fixed-length bit vectors.
//
// The dataflow analyses of Knoop/Rüthing/Steffen's partial dead code
// elimination (dead variables, delayability) are classic bit-vector
// problems: one bit per variable or per assignment pattern, with
// meet/join realized by word-parallel AND/OR. This package is the
// shared representation for all of them.
//
// A Vector has a fixed length chosen at creation time. Operations that
// combine two vectors panic if the lengths differ: mixing vectors from
// different analysis universes is always a programming error, and
// failing loudly during development is preferable to silent truncation.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Vector is a dense bit vector of fixed length. The zero value is an
// empty vector of length 0; use New to create a sized one.
type Vector struct {
	n     int
	words []uint64
}

// New returns a vector of n bits, all zero.
func New(n int) *Vector {
	if n < 0 {
		panic(fmt.Sprintf("bitvec: negative length %d", n))
	}
	return &Vector{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// NewAllOnes returns a vector of n bits, all one.
func NewAllOnes(n int) *Vector {
	v := New(n)
	v.SetAll()
	return v
}

// Len returns the number of bits in v.
func (v *Vector) Len() int { return v.n }

func (v *Vector) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
}

func (v *Vector) checkSame(w *Vector) {
	if v.n != w.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d vs %d", v.n, w.n))
	}
}

// Get reports whether bit i is set.
func (v *Vector) Get(i int) bool {
	v.check(i)
	return v.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Set sets bit i to one.
func (v *Vector) Set(i int) {
	v.check(i)
	v.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear sets bit i to zero.
func (v *Vector) Clear(i int) {
	v.check(i)
	v.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// SetChanged sets bit i to one and reports whether it was zero — the
// sparse engine's delta write-back uses the report to track which
// nodes' values actually moved.
func (v *Vector) SetChanged(i int) bool {
	v.check(i)
	w, bit := i/wordBits, uint64(1)<<(uint(i)%wordBits)
	if v.words[w]&bit != 0 {
		return false
	}
	v.words[w] |= bit
	return true
}

// ClearChanged sets bit i to zero and reports whether it was one.
func (v *Vector) ClearChanged(i int) bool {
	v.check(i)
	w, bit := i/wordBits, uint64(1)<<(uint(i)%wordBits)
	if v.words[w]&bit == 0 {
		return false
	}
	v.words[w] &^= bit
	return true
}

// Assign sets bit i to b.
func (v *Vector) Assign(i int, b bool) {
	if b {
		v.Set(i)
	} else {
		v.Clear(i)
	}
}

// SetAll sets every bit to one.
func (v *Vector) SetAll() {
	for i := range v.words {
		v.words[i] = ^uint64(0)
	}
	v.trim()
}

// ClearAll sets every bit to zero.
func (v *Vector) ClearAll() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// trim zeroes the unused high bits of the last word so that Equal,
// Count and IsZero can operate word-wise.
func (v *Vector) trim() {
	if r := uint(v.n % wordBits); r != 0 && len(v.words) > 0 {
		v.words[len(v.words)-1] &= (1 << r) - 1
	}
}

// Copy returns an independent copy of v.
func (v *Vector) Copy() *Vector {
	w := &Vector{n: v.n, words: make([]uint64, len(v.words))}
	copy(w.words, v.words)
	return w
}

// CopyFrom overwrites v with the contents of w. Lengths must match.
func (v *Vector) CopyFrom(w *Vector) {
	countOp()
	v.checkSame(w)
	copy(v.words, w.words)
}

// And sets v = v AND w and reports whether v changed.
func (v *Vector) And(w *Vector) bool {
	countOp()
	v.checkSame(w)
	changed := false
	for i, x := range w.words {
		old := v.words[i]
		v.words[i] = old & x
		if v.words[i] != old {
			changed = true
		}
	}
	return changed
}

// Or sets v = v OR w and reports whether v changed.
func (v *Vector) Or(w *Vector) bool {
	countOp()
	v.checkSame(w)
	changed := false
	for i, x := range w.words {
		old := v.words[i]
		v.words[i] = old | x
		if v.words[i] != old {
			changed = true
		}
	}
	return changed
}

// AndNot sets v = v AND NOT w and reports whether v changed.
func (v *Vector) AndNot(w *Vector) bool {
	countOp()
	v.checkSame(w)
	changed := false
	for i, x := range w.words {
		old := v.words[i]
		v.words[i] = old &^ x
		if v.words[i] != old {
			changed = true
		}
	}
	return changed
}

// AndNotOrInto sets v = (src AND NOT kill) OR gen in a single pass and
// reports whether v changed. It is the canonical gen/kill transfer
// step x ↦ (x − kill) ∪ gen fused with the solver's change test and
// result copy, which would otherwise cost three word sweeps (transfer
// into a temporary, Equal, CopyFrom). All four vectors must have the
// same length; v may alias src.
func (v *Vector) AndNotOrInto(src, kill, gen *Vector) bool {
	countOp()
	v.checkSame(src)
	v.checkSame(kill)
	v.checkSame(gen)
	changed := false
	for i, x := range src.words {
		nw := (x &^ kill.words[i]) | gen.words[i]
		if v.words[i] != nw {
			v.words[i] = nw
			changed = true
		}
	}
	return changed
}

// AndInto sets v = a AND b in a single pass — the two-predecessor meet
// fused with the copy that would otherwise seed it. v may alias a or b.
func (v *Vector) AndInto(a, b *Vector) {
	countOp()
	v.checkSame(a)
	v.checkSame(b)
	for i, x := range a.words {
		v.words[i] = x & b.words[i]
	}
}

// OrInto sets v = a OR b in a single pass. v may alias a or b.
func (v *Vector) OrInto(a, b *Vector) {
	countOp()
	v.checkSame(a)
	v.checkSame(b)
	for i, x := range a.words {
		v.words[i] = x | b.words[i]
	}
}

// AndNotInto sets v = a AND NOT b in a single pass. v may alias a or b.
// It exists for the single-successor X-INSERT case
// X-DELAYED · ¬N-DELAYED_succ, which would otherwise cost a clear, an
// OrNot and an And.
func (v *Vector) AndNotInto(a, b *Vector) {
	countOp()
	v.checkSame(a)
	v.checkSame(b)
	for i, x := range a.words {
		v.words[i] = x &^ b.words[i]
	}
}

// OrNot sets v = v OR NOT w. The complement respects the vector
// length (no stray high bits). It exists for the delayability
// insertion predicate Σ ¬N-DELAYED, which would otherwise need a
// temporary copy per successor.
func (v *Vector) OrNot(w *Vector) {
	countOp()
	v.checkSame(w)
	for i, x := range w.words {
		v.words[i] |= ^x
	}
	v.trim()
}

// Not sets v to its bitwise complement.
func (v *Vector) Not() {
	countOp()
	for i := range v.words {
		v.words[i] = ^v.words[i]
	}
	v.trim()
}

// Equal reports whether v and w hold identical bits. Vectors of
// different lengths are never equal.
func (v *Vector) Equal(w *Vector) bool {
	countOp()
	if v.n != w.n {
		return false
	}
	for i, x := range v.words {
		if x != w.words[i] {
			return false
		}
	}
	return true
}

// IsZero reports whether no bit is set.
func (v *Vector) IsZero() bool {
	for _, x := range v.words {
		if x != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of set bits.
func (v *Vector) Count() int {
	c := 0
	for _, x := range v.words {
		c += bits.OnesCount64(x)
	}
	return c
}

// ForEach calls f for every set bit, in increasing index order.
func (v *Vector) ForEach(f func(i int)) {
	for wi, x := range v.words {
		for x != 0 {
			b := bits.TrailingZeros64(x)
			f(wi*wordBits + b)
			x &= x - 1
		}
	}
}

// OrXor sets v = v OR (a XOR b) in a single pass and reports whether
// a and b differ anywhere. It accumulates a changed-bits mask across a
// sequence of before/after vector pairs — the incremental solvers feed
// the mask to the sparse engine's delta path, which then re-solves
// only the bits whose equations actually moved.
func (v *Vector) OrXor(a, b *Vector) bool {
	countOp()
	v.checkSame(a)
	v.checkSame(b)
	diff := uint64(0)
	for i, x := range a.words {
		d := x ^ b.words[i]
		v.words[i] |= d
		diff |= d
	}
	return diff != 0
}

// ForEachAnd calls f for every bit set in v AND mask, in increasing
// index order, skipping whole words where mask is zero — the sparse
// delta solve's seed enumeration restricted to changed bits.
func (v *Vector) ForEachAnd(mask *Vector, f func(i int)) {
	v.checkSame(mask)
	for wi, m := range mask.words {
		x := v.words[wi] & m
		for x != 0 {
			b := bits.TrailingZeros64(x)
			f(wi*wordBits + b)
			x &= x - 1
		}
	}
}

// ForEachAndNotAnd calls f for every bit set in v AND NOT w AND mask,
// in increasing index order, skipping whole words where mask is zero.
func (v *Vector) ForEachAndNotAnd(w, mask *Vector, f func(i int)) {
	v.checkSame(w)
	v.checkSame(mask)
	for wi, m := range mask.words {
		x := v.words[wi] &^ w.words[wi] & m
		for x != 0 {
			b := bits.TrailingZeros64(x)
			f(wi*wordBits + b)
			x &= x - 1
		}
	}
}

// ForEachAndNot calls f for every bit set in v AND NOT w, in
// increasing index order, without materializing the difference — the
// sparse solver's seed enumeration (kill·¬gen sites) runs on this.
func (v *Vector) ForEachAndNot(w *Vector, f func(i int)) {
	v.checkSame(w)
	for wi, x := range v.words {
		x &^= w.words[wi]
		for x != 0 {
			b := bits.TrailingZeros64(x)
			f(wi*wordBits + b)
			x &= x - 1
		}
	}
}

// Indices returns the indices of all set bits in increasing order.
func (v *Vector) Indices() []int {
	out := make([]int, 0, v.Count())
	v.ForEach(func(i int) { out = append(out, i) })
	return out
}

// String renders the vector as a 0/1 string, bit 0 first — convenient
// in test failure messages.
func (v *Vector) String() string {
	var sb strings.Builder
	sb.Grow(v.n)
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}
