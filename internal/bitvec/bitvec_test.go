package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewIsZero(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 128, 1000} {
		v := New(n)
		if v.Len() != n {
			t.Errorf("Len() = %d, want %d", v.Len(), n)
		}
		if !v.IsZero() {
			t.Errorf("New(%d) not zero", n)
		}
		if v.Count() != 0 {
			t.Errorf("New(%d).Count() = %d", n, v.Count())
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSetGetClear(t *testing.T) {
	v := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if v.Get(i) {
			t.Errorf("bit %d set in fresh vector", i)
		}
		v.Set(i)
		if !v.Get(i) {
			t.Errorf("bit %d not set after Set", i)
		}
		v.Clear(i)
		if v.Get(i) {
			t.Errorf("bit %d still set after Clear", i)
		}
	}
}

func TestAssign(t *testing.T) {
	v := New(10)
	v.Assign(3, true)
	if !v.Get(3) {
		t.Error("Assign(3,true) did not set")
	}
	v.Assign(3, false)
	if v.Get(3) {
		t.Error("Assign(3,false) did not clear")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	v := New(64)
	for _, i := range []int{-1, 64, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Get(%d) did not panic", i)
				}
			}()
			v.Get(i)
		}()
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	a, b := New(64), New(65)
	defer func() {
		if recover() == nil {
			t.Fatal("And on mismatched lengths did not panic")
		}
	}()
	a.And(b)
}

func TestSetAllTrimsTail(t *testing.T) {
	v := NewAllOnes(70)
	if v.Count() != 70 {
		t.Fatalf("NewAllOnes(70).Count() = %d", v.Count())
	}
	// Complement of all-ones must be zero even in the partial word.
	v.Not()
	if !v.IsZero() {
		t.Fatalf("Not(all-ones) not zero: %s", v)
	}
}

func TestNotInvolution(t *testing.T) {
	f := func(bits []bool) bool {
		v := fromBools(bits)
		w := v.Copy()
		w.Not()
		w.Not()
		return v.Equal(w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func fromBools(bits []bool) *Vector {
	v := New(len(bits))
	for i, b := range bits {
		if b {
			v.Set(i)
		}
	}
	return v
}

func TestDeMorgan(t *testing.T) {
	f := func(a, b []bool) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		va, vb := fromBools(a[:n]), fromBools(b[:n])
		// ¬(a ∧ b) == ¬a ∨ ¬b
		left := va.Copy()
		left.And(vb)
		left.Not()
		na, nb := va.Copy(), vb.Copy()
		na.Not()
		nb.Not()
		na.Or(nb)
		return left.Equal(na)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAndNotEquivalence(t *testing.T) {
	f := func(a, b []bool) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		va, vb := fromBools(a[:n]), fromBools(b[:n])
		// a &^ b == a ∧ ¬b
		x := va.Copy()
		x.AndNot(vb)
		nb := vb.Copy()
		nb.Not()
		y := va.Copy()
		y.And(nb)
		return x.Equal(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChangedReporting(t *testing.T) {
	a := New(100)
	b := New(100)
	b.Set(42)
	if a.Or(b) != true {
		t.Error("Or that sets a bit reported no change")
	}
	if a.Or(b) != false {
		t.Error("idempotent Or reported change")
	}
	if a.And(b) != false {
		t.Error("And with superset reported change")
	}
	c := New(100)
	if a.And(c) != true {
		t.Error("And that clears a bit reported no change")
	}
}

func TestForEachAndIndices(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		v := New(n)
		want := map[int]bool{}
		for k := 0; k < n/3; k++ {
			i := rng.Intn(n)
			v.Set(i)
			want[i] = true
		}
		got := v.Indices()
		if len(got) != len(want) {
			t.Fatalf("Indices len %d, want %d", len(got), len(want))
		}
		prev := -1
		for _, i := range got {
			if !want[i] {
				t.Fatalf("unexpected index %d", i)
			}
			if i <= prev {
				t.Fatalf("indices not strictly increasing: %v", got)
			}
			prev = i
		}
	}
}

func TestCopyIndependence(t *testing.T) {
	a := New(64)
	a.Set(5)
	b := a.Copy()
	b.Set(6)
	if a.Get(6) {
		t.Error("Copy shares storage with original")
	}
	if !b.Get(5) {
		t.Error("Copy lost original bit")
	}
}

func TestCopyFrom(t *testing.T) {
	a, b := New(64), New(64)
	b.Set(9)
	a.CopyFrom(b)
	if !a.Get(9) {
		t.Error("CopyFrom did not copy")
	}
	b.Clear(9)
	if !a.Get(9) {
		t.Error("CopyFrom aliases source")
	}
}

func TestEqualDifferentLengths(t *testing.T) {
	if New(10).Equal(New(11)) {
		t.Error("vectors of different lengths compared equal")
	}
}

func TestString(t *testing.T) {
	v := New(5)
	v.Set(0)
	v.Set(3)
	if got := v.String(); got != "10010" {
		t.Errorf("String() = %q, want 10010", got)
	}
}

func TestCountMatchesForEach(t *testing.T) {
	f := func(bits []bool) bool {
		v := fromBools(bits)
		n := 0
		v.ForEach(func(int) { n++ })
		return n == v.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
