package bitvec

// Arena is a slab allocator for Vectors: it carves vectors out of
// large shared []uint64 chunks instead of one heap allocation per
// vector. The dataflow solvers allocate two vectors per node per
// analysis universe; backing them with a handful of slabs removes the
// dominant allocation cost of a solve and keeps the vectors of one
// solution contiguous in memory.
//
// Vectors allocated from an arena behave exactly like heap vectors.
// Reset recycles the slabs: every vector previously handed out aliases
// memory that will be reused, so Reset may only be called when no such
// vector is referenced anymore.
//
// The zero Arena is ready to use.
type Arena struct {
	chunks [][]uint64
	cur    int // index of the chunk being carved
	off    int // carve offset into chunks[cur]
	used   int // words handed out since creation or the last Reset
}

// arenaChunkWords is the minimum slab size (64 KiB). Vectors wider
// than that get a dedicated slab.
const arenaChunkWords = 8192

// New returns a zeroed n-bit vector carved from the arena.
func (a *Arena) New(n int) *Vector {
	if n < 0 {
		panic("bitvec: negative length")
	}
	words := (n + wordBits - 1) / wordBits
	return &Vector{n: n, words: a.alloc(words)}
}

// NewAllOnes returns an all-ones n-bit vector carved from the arena.
func (a *Arena) NewAllOnes(n int) *Vector {
	v := a.New(n)
	v.SetAll()
	return v
}

// Copy returns an arena-backed copy of w.
func (a *Arena) Copy(w *Vector) *Vector {
	v := a.New(w.n)
	copy(v.words, w.words)
	return v
}

func (a *Arena) alloc(words int) []uint64 {
	if words == 0 {
		return nil
	}
	a.used += words
	for a.cur < len(a.chunks) {
		c := a.chunks[a.cur]
		if a.off+words <= len(c) {
			s := c[a.off : a.off+words : a.off+words]
			a.off += words
			clear(s)
			return s
		}
		a.cur++
		a.off = 0
	}
	size := arenaChunkWords
	if words > size {
		size = words
	}
	c := make([]uint64, size)
	a.chunks = append(a.chunks, c)
	a.cur = len(a.chunks) - 1
	a.off = words
	return c[:words:words]
}

// Reset makes the arena's slabs available for reuse. All vectors
// previously allocated from the arena are invalidated.
func (a *Arena) Reset() {
	a.cur = 0
	a.off = 0
	a.used = 0
}

// ArenaStats describes an arena's slab state for telemetry.
type ArenaStats struct {
	// Slabs is the number of backing chunks, CapWords their combined
	// capacity, UsedWords the words handed out since creation or the
	// last Reset. CapWords exceeding UsedWords measures carve waste
	// (abandoned slab tails plus never-carved capacity).
	Slabs, CapWords, UsedWords int
}

// Stats returns the arena's current slab statistics.
func (a *Arena) Stats() ArenaStats {
	st := ArenaStats{Slabs: len(a.chunks), UsedWords: a.used}
	for _, c := range a.chunks {
		st.CapWords += len(c)
	}
	return st
}
