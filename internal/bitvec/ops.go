package bitvec

import "sync/atomic"

// The op meter counts bulk vector operations (And, Or, AndNot, OrNot,
// Not, CopyFrom, Equal) process-wide. It exists for the telemetry
// layer: enabling it answers "how many bit-vector operations did this
// optimization perform" without threading a counter through every call
// site.
//
// The meter is off by default; the per-operation cost while off is a
// single relaxed atomic load (a plain MOV on amd64/arm64) in functions
// that already loop over their word slices, which is why the guarded
// counter — unlike an unconditional atomic add — does not register on
// the solver profile. Because the meter is process-global, deltas
// measured around a run attribute concurrently-running work too; the
// single-run CLI is the intended consumer.

var (
	opsEnabled atomic.Bool
	opsCount   atomic.Int64
)

// EnableOpCount switches the process-global op meter on or off.
func EnableOpCount(on bool) { opsEnabled.Store(on) }

// OpCountEnabled reports whether the meter is on.
func OpCountEnabled() bool { return opsEnabled.Load() }

// OpCount returns the number of bulk vector operations performed since
// the meter was last enabled (the counter is monotone; take deltas).
func OpCount() int64 { return opsCount.Load() }

// countOp is called by every bulk operation.
func countOp() {
	if opsEnabled.Load() {
		opsCount.Add(1)
	}
}
