package bitvec

import (
	"math/rand"
	"testing"
)

// randomVec returns a vector of n bits with each bit set with
// probability p.
func randomVec(rng *rand.Rand, n int, p float64) *Vector {
	v := New(n)
	for i := 0; i < n; i++ {
		if rng.Float64() < p {
			v.Set(i)
		}
	}
	return v
}

// TestAndNotOrIntoMatchesComposition cross-checks the fused transfer
// kernel against the three-step composition it replaces, across sizes
// that exercise empty, single-word, word-boundary and trailing-word
// layouts.
func TestAndNotOrIntoMatchesComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 7, 63, 64, 65, 128, 200, 1000} {
		for trial := 0; trial < 20; trial++ {
			src := randomVec(rng, n, 0.5)
			kill := randomVec(rng, n, 0.3)
			gen := randomVec(rng, n, 0.3)
			dst := randomVec(rng, n, 0.5)

			want := src.Copy()
			want.AndNot(kill)
			want.Or(gen)
			wantChanged := !want.Equal(dst)

			gotChanged := dst.AndNotOrInto(src, kill, gen)
			if !dst.Equal(want) {
				t.Fatalf("n=%d: AndNotOrInto = %s, want %s", n, dst, want)
			}
			if gotChanged != wantChanged {
				t.Fatalf("n=%d: changed = %v, want %v", n, gotChanged, wantChanged)
			}
		}
	}
}

// TestAndNotOrIntoAliasing: v may alias src (the in-place transfer the
// dense solver uses when meet and transfer share storage).
func TestAndNotOrIntoAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		n := 130
		v := randomVec(rng, n, 0.5)
		kill := randomVec(rng, n, 0.3)
		gen := randomVec(rng, n, 0.3)

		want := v.Copy()
		want.AndNot(kill)
		want.Or(gen)

		v.AndNotOrInto(v, kill, gen)
		if !v.Equal(want) {
			t.Fatalf("aliased AndNotOrInto = %s, want %s", v, want)
		}
	}
}

// TestBinaryIntoKernels checks AndInto / OrInto / AndNotInto against
// their two-step equivalents, including aliasing with either operand.
func TestBinaryIntoKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	kernels := []struct {
		name string
		into func(v, a, b *Vector)
		ref  func(v, b *Vector)
	}{
		{"AndInto", func(v, a, b *Vector) { v.AndInto(a, b) }, func(v, b *Vector) { v.And(b) }},
		{"OrInto", func(v, a, b *Vector) { v.OrInto(a, b) }, func(v, b *Vector) { v.Or(b) }},
		{"AndNotInto", func(v, a, b *Vector) { v.AndNotInto(a, b) }, func(v, b *Vector) { v.AndNot(b) }},
	}
	for _, k := range kernels {
		for _, n := range []int{1, 64, 65, 300} {
			for trial := 0; trial < 10; trial++ {
				a := randomVec(rng, n, 0.5)
				b := randomVec(rng, n, 0.5)
				want := a.Copy()
				k.ref(want, b)

				dst := New(n)
				k.into(dst, a, b)
				if !dst.Equal(want) {
					t.Fatalf("%s n=%d: got %s, want %s", k.name, n, dst, want)
				}
				// Alias with a.
				av := a.Copy()
				k.into(av, av, b)
				if !av.Equal(want) {
					t.Fatalf("%s n=%d aliased: got %s, want %s", k.name, n, av, want)
				}
			}
		}
	}
}

// TestAndNotOrIntoTrailingWord: gen bits beyond the logical length can
// never appear (all constructors keep high bits clear), so the fused
// kernel must preserve the trim invariant that Equal and IsZero rely
// on.
func TestAndNotOrIntoTrailingWord(t *testing.T) {
	n := 70 // 6 live bits in the second word
	src := NewAllOnes(n)
	kill := New(n)
	gen := NewAllOnes(n)
	dst := New(n)
	dst.AndNotOrInto(src, kill, gen)
	if !dst.Equal(NewAllOnes(n)) {
		t.Fatalf("got %s", dst)
	}
	if dst.Count() != n {
		t.Fatalf("count = %d, want %d (stray trailing-word bits?)", dst.Count(), n)
	}
}

// TestForEachAndNot checks the difference iterator against the
// materialized difference.
func TestForEachAndNot(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{0, 64, 100, 256} {
		for trial := 0; trial < 10; trial++ {
			a := randomVec(rng, n, 0.5)
			b := randomVec(rng, n, 0.5)
			want := a.Copy()
			want.AndNot(b)

			var got []int
			a.ForEachAndNot(b, func(i int) { got = append(got, i) })
			if len(got) != want.Count() {
				t.Fatalf("n=%d: %d indices, want %d", n, len(got), want.Count())
			}
			for _, i := range got {
				if !want.Get(i) {
					t.Fatalf("n=%d: spurious index %d", n, i)
				}
			}
		}
	}
}
