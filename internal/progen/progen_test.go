package progen

import (
	"testing"

	"pdce/internal/cfg"
	"pdce/internal/ir"
	"pdce/internal/verify"
)

func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		a := Generate(Params{Seed: seed, Stmts: 50})
		b := Generate(Params{Seed: seed, Stmts: 50})
		if a.Format() != b.Format() {
			t.Fatalf("seed %d not deterministic", seed)
		}
	}
	a := Generate(Params{Seed: 1, Stmts: 50})
	b := Generate(Params{Seed: 2, Stmts: 50})
	if a.Format() == b.Format() {
		t.Error("different seeds produced identical programs")
	}
}

func TestGenerateValid(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		for _, irr := range []bool{false, true} {
			g := Generate(Params{Seed: seed, Stmts: 60, Irreducible: irr})
			if errs := cfg.Validate(g); len(errs) > 0 {
				t.Fatalf("seed %d irr=%v: %v", seed, irr, errs)
			}
		}
	}
}

func TestGenerateSizeTracksParameter(t *testing.T) {
	for _, n := range []int{20, 100, 400} {
		g := Generate(Params{Seed: 3, Stmts: n})
		got := g.NumStmts()
		if got < n/2 || got > n*3 {
			t.Errorf("requested ~%d statements, got %d", n, got)
		}
	}
}

func TestGenerateHasObservableOutput(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g := Generate(Params{Seed: seed, Stmts: 30})
		outs := 0
		g.ForEachStmt(func(_ *cfg.Node, _ int, s ir.Stmt) {
			if _, ok := s.(ir.Out); ok {
				outs++
			}
		})
		if outs == 0 {
			t.Errorf("seed %d: no out statements — everything would be dead", seed)
		}
	}
}

func TestGenerateVarPool(t *testing.T) {
	g := Generate(Params{Seed: 5, Stmts: 80, Vars: 3})
	vars := g.CollectVars()
	if vars.Len() > 3 {
		t.Errorf("variable pool overflow: %d vars", vars.Len())
	}
}

func TestIrreducibleGeneratorProducesIrreducibleGraphs(t *testing.T) {
	// At least some seeds must yield graphs that are NOT reducible.
	// A graph is reducible iff removing all back edges (w.r.t. a DFS
	// dominator relation) leaves it acyclic; we use the simpler
	// check: some retreating edge's target does not dominate its
	// source.
	irreducibleSeen := false
	for seed := int64(0); seed < 20 && !irreducibleSeen; seed++ {
		g := Generate(Params{Seed: seed, Stmts: 60, Irreducible: true})
		dom := cfg.BuildDomTree(g)
		for _, e := range g.Edges() {
			// A cycle edge whose target does not dominate its
			// source is the signature of irreducibility.
			if reaches(e.To, e.From) && !dom.Dominates(e.To, e.From) {
				irreducibleSeen = true
				break
			}
		}
	}
	if !irreducibleSeen {
		t.Error("no irreducible graph in 20 seeds; generator too tame")
	}
}

// reaches reports whether a path from a to b exists.
func reaches(a, b *cfg.Node) bool {
	seen := map[*cfg.Node]bool{}
	stack := []*cfg.Node{a}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == b {
			return true
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		stack = append(stack, n.Succs()...)
	}
	return false
}

func TestStructuredGeneratorIsReducibleAndAcyclicOption(t *testing.T) {
	// With loops suppressed, the structured generator emits acyclic
	// programs (used by the Definition 3.6 path-profile tests).
	acyclic := 0
	for seed := int64(0); seed < 20; seed++ {
		g := Generate(Params{Seed: seed, Stmts: 25, LoopProb: 0.0001, BranchProb: 0.3})
		if verify.IsAcyclic(g) {
			acyclic++
		}
	}
	if acyclic < 15 {
		t.Errorf("only %d of 20 near-loop-free programs acyclic", acyclic)
	}
}

func TestDivProbProducesDivisions(t *testing.T) {
	g := Generate(Params{Seed: 7, Stmts: 120, DivProb: 0.5})
	divs := 0
	g.ForEachStmt(func(_ *cfg.Node, _ int, s ir.Stmt) {
		if a, ok := s.(ir.Assign); ok && ir.CanFault(a.RHS) {
			divs++
		}
	})
	if divs == 0 {
		t.Error("DivProb=0.5 produced no divisions")
	}
	g2 := Generate(Params{Seed: 7, Stmts: 120})
	g2.ForEachStmt(func(_ *cfg.Node, _ int, s ir.Stmt) {
		if a, ok := s.(ir.Assign); ok && ir.CanFault(a.RHS) {
			t.Error("default parameters produced a division")
		}
	})
}

func TestDefaultsApplied(t *testing.T) {
	g := Generate(Params{Seed: 1})
	if g.NumStmts() == 0 {
		t.Error("zero-valued params generated an empty program")
	}
}
