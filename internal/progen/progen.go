// Package progen generates random flow-graph programs. It is the
// workload generator behind the repository's property-based tests and
// the Section 6 complexity experiments (cmd/benchpaper): the paper has
// no machine evaluation, so scaling behaviour is measured on seeded
// synthetic programs whose shape parameters (size, branching, loop
// density, irreducibility, variable-pool size) are controlled here.
//
// Generation is deterministic in the seed.
package progen

import (
	"fmt"
	"math/rand"

	"pdce/internal/cfg"
	"pdce/internal/ir"
	"pdce/internal/parser"
)

// Params controls generation.
type Params struct {
	// Seed drives all random choices.
	Seed int64

	// Stmts is the approximate number of statements to generate.
	Stmts int

	// Vars is the size of the variable pool. Small pools produce
	// dense def-use interference (more blocking, more dead code);
	// large pools produce independent code. Default 8.
	Vars int

	// OutEvery inserts roughly one out statement per OutEvery
	// generated statements, anchoring liveness. Default 6.
	OutEvery int

	// BranchProb and LoopProb control the probability that a
	// structured construct is emitted instead of a plain
	// assignment (defaults 0.15 and 0.08).
	BranchProb, LoopProb float64

	// CondProb is the probability that a branch or loop gets a
	// concrete condition instead of nondeterministic choice
	// (default 0.5).
	CondProb float64

	// MaxDepth bounds construct nesting (default 4).
	MaxDepth int

	// Irreducible, when true, selects the arbitrary-CFG generator,
	// which adds cross edges that typically make the graph
	// irreducible (the paper's Figure 5 regime). Otherwise the
	// structured WHILE-language generator is used.
	Irreducible bool

	// DivProb is the probability that a generated expression uses
	// division (a potential run-time fault). Default 0: the
	// equivalence checker treats fault-potential reduction
	// specially, and most tests want noise-free traces.
	DivProb float64
}

func (p Params) withDefaults() Params {
	if p.Stmts <= 0 {
		p.Stmts = 40
	}
	if p.Vars <= 0 {
		p.Vars = 8
	}
	if p.OutEvery <= 0 {
		p.OutEvery = 6
	}
	if p.BranchProb == 0 {
		p.BranchProb = 0.15
	}
	if p.LoopProb == 0 {
		p.LoopProb = 0.08
	}
	if p.CondProb == 0 {
		p.CondProb = 0.5
	}
	if p.MaxDepth <= 0 {
		p.MaxDepth = 4
	}
	return p
}

// Generate produces a valid random program.
func Generate(p Params) *cfg.Graph {
	p = p.withDefaults()
	g := &gen{p: p, rng: rand.New(rand.NewSource(p.Seed))}
	if p.Irreducible {
		return g.arbitraryCFG()
	}
	return g.structured()
}

type gen struct {
	p     Params
	rng   *rand.Rand
	count int // statements generated so far
}

func (g *gen) varName(i int) ir.Var {
	return ir.Var(fmt.Sprintf("v%d", i))
}

func (g *gen) randVar() ir.Expr { return ir.V(g.varName(g.rng.Intn(g.p.Vars))) }

func (g *gen) randExpr(depth int) ir.Expr {
	if depth <= 0 || g.rng.Float64() < 0.35 {
		if g.rng.Float64() < 0.25 {
			return ir.C(int64(g.rng.Intn(64) - 16))
		}
		return g.randVar()
	}
	ops := []ir.Op{ir.OpAdd, ir.OpAdd, ir.OpSub, ir.OpMul}
	op := ops[g.rng.Intn(len(ops))]
	if g.p.DivProb > 0 && g.rng.Float64() < g.p.DivProb {
		op = ir.OpDiv
	}
	return ir.Bin(op, g.randExpr(depth-1), g.randExpr(depth-1))
}

func (g *gen) randCond() ir.Expr {
	rel := []ir.Op{ir.OpLt, ir.OpLe, ir.OpEq, ir.OpNe, ir.OpGt}
	return ir.Bin(rel[g.rng.Intn(len(rel))], g.randVar(), g.randExpr(1))
}

func (g *gen) randSimple() ir.Stmt {
	g.count++
	if g.count%g.p.OutEvery == 0 {
		return ir.Out{Arg: g.randExpr(2)}
	}
	return ir.Assign{LHS: ir.Var(string(g.varName(g.rng.Intn(g.p.Vars)))), RHS: g.randExpr(2)}
}

// --- structured generator -------------------------------------------

func (g *gen) structured() *cfg.Graph {
	body := g.stmtList(g.p.Stmts, g.p.MaxDepth)
	// Anchor liveness of the program tail.
	body = append(body, parser.SrcSimple{S: ir.Out{Arg: g.randExpr(2)}})
	graph, err := parser.Lower(fmt.Sprintf("gen-%d", g.p.Seed), body)
	if err != nil {
		panic("progen: generated invalid structured program: " + err.Error())
	}
	return graph
}

func (g *gen) stmtList(budget, depth int) []parser.SrcStmt {
	var out []parser.SrcStmt
	for budget > 0 {
		switch {
		case depth > 0 && g.rng.Float64() < g.p.LoopProb:
			n := 1 + g.rng.Intn(budget)
			body := g.stmtList(n/2+1, depth-1)
			out = append(out, parser.SrcWhile{Cond: g.maybeCond(), Body: body})
			budget -= n/2 + 1
		case depth > 0 && g.rng.Float64() < g.p.BranchProb:
			n := 1 + g.rng.Intn(budget)
			thenB := g.stmtList(n/2+1, depth-1)
			elseB := g.stmtList(n/2+1, depth-1)
			out = append(out, parser.SrcIf{Cond: g.maybeCond(), Then: thenB, Else: elseB})
			budget -= n + 1
		default:
			out = append(out, parser.SrcSimple{S: g.randSimple()})
			budget--
		}
	}
	return out
}

func (g *gen) maybeCond() ir.Expr {
	if g.rng.Float64() < g.p.CondProb {
		return g.randCond()
	}
	return nil
}

// --- arbitrary-CFG generator ----------------------------------------

// arbitraryCFG builds a random graph with unconstrained (typically
// irreducible) branching: a backbone path guarantees that every node
// is reachable from start and reaches end, then random forward and
// backward cross edges are layered on top. Only nondeterministic
// branching is used, so any out-degree is valid.
func (g *gen) arbitraryCFG() *cfg.Graph {
	stmtsPerBlock := 3
	numBlocks := g.p.Stmts/stmtsPerBlock + 2
	graph := cfg.New(fmt.Sprintf("gen-irr-%d", g.p.Seed))
	blocks := make([]*cfg.Node, numBlocks)
	for i := range blocks {
		blocks[i] = graph.AddNode(fmt.Sprintf("n%d", i))
		k := g.rng.Intn(stmtsPerBlock*2 - 1)
		for j := 0; j < k && g.count < g.p.Stmts; j++ {
			blocks[i].Stmts = append(blocks[i].Stmts, g.randSimple())
		}
	}
	// Make the final block observable so the whole program is not
	// trivially dead.
	blocks[numBlocks-1].Stmts = append(blocks[numBlocks-1].Stmts, ir.Out{Arg: g.randExpr(2)})

	// Backbone: s -> n0 -> n1 -> ... -> n(k-1) -> e.
	graph.AddEdge(graph.Start, blocks[0])
	for i := 0; i+1 < numBlocks; i++ {
		graph.AddEdge(blocks[i], blocks[i+1])
	}
	graph.AddEdge(blocks[numBlocks-1], graph.End)

	// Cross edges: forward jumps and back edges between arbitrary
	// blocks; landing back edges into the middle of other "loops"
	// is what produces irreducibility.
	extra := numBlocks / 2
	for i := 0; i < extra; i++ {
		a := blocks[g.rng.Intn(numBlocks)]
		b := blocks[g.rng.Intn(numBlocks)]
		if a == b || graph.HasEdge(a, b) {
			continue
		}
		graph.AddEdge(a, b)
	}
	cfg.MustValidate(graph)
	return graph
}
