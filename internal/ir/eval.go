package ir

import "fmt"

// EvalError is a run-time error raised by expression evaluation. The
// paper notes (Section 3) that dead code elimination may reduce the
// potential of run-time errors — e.g. a division by zero disappears
// with the assignment computing it — so the interpreter must model
// such errors explicitly rather than panic.
type EvalError struct {
	Expr Expr
	Msg  string
}

func (e *EvalError) Error() string {
	return fmt.Sprintf("evaluating %s: %s", e.Expr, e.Msg)
}

// Env supplies variable values during evaluation. Lookup of an
// undefined variable yields ok=false; the evaluator treats that as
// value 0 (programs analysed by the paper read uninitialized variables
// freely, e.g. out(a+b) with a, b never assigned).
type Env interface {
	Lookup(v Var) (int64, bool)
}

// EnvMap is a map-backed Env.
type EnvMap map[Var]int64

// Lookup implements Env.
func (m EnvMap) Lookup(v Var) (int64, bool) {
	x, ok := m[v]
	return x, ok
}

// Eval computes the value of e under env. Division and modulus by zero
// return an *EvalError; all other arithmetic wraps silently (two's
// complement), mirroring typical machine semantics.
func Eval(e Expr, env Env) (int64, error) {
	switch x := e.(type) {
	case Const:
		return x.Value, nil
	case VarRef:
		v, _ := env.Lookup(x.Name)
		return v, nil
	case Unary:
		v, err := Eval(x.X, env)
		if err != nil {
			return 0, err
		}
		if x.Op != OpNeg {
			return 0, &EvalError{Expr: e, Msg: "unknown unary operator " + string(x.Op)}
		}
		return -v, nil
	case Binary:
		l, err := Eval(x.L, env)
		if err != nil {
			return 0, err
		}
		r, err := Eval(x.R, env)
		if err != nil {
			return 0, err
		}
		return applyBinary(e, x.Op, l, r)
	}
	return 0, &EvalError{Expr: e, Msg: "unknown expression form"}
}

func applyBinary(e Expr, op Op, l, r int64) (int64, error) {
	switch op {
	case OpAdd:
		return l + r, nil
	case OpSub:
		return l - r, nil
	case OpMul:
		return l * r, nil
	case OpDiv:
		if r == 0 {
			return 0, &EvalError{Expr: e, Msg: "division by zero"}
		}
		return l / r, nil
	case OpMod:
		if r == 0 {
			return 0, &EvalError{Expr: e, Msg: "modulus by zero"}
		}
		return l % r, nil
	case OpEq:
		return b2i(l == r), nil
	case OpNe:
		return b2i(l != r), nil
	case OpLt:
		return b2i(l < r), nil
	case OpLe:
		return b2i(l <= r), nil
	case OpGt:
		return b2i(l > r), nil
	case OpGe:
		return b2i(l >= r), nil
	}
	return 0, &EvalError{Expr: e, Msg: "unknown binary operator " + string(op)}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// CanFault reports whether evaluating e could raise a run-time error
// for some environment — i.e. whether e contains a division or modulus.
// The verifier uses this to decide when an output-trace divergence is
// explained by the paper's permitted semantics change ("reducing the
// potential of run-time errors").
func CanFault(e Expr) bool {
	fault := false
	Walk(e, func(sub Expr) {
		if b, ok := sub.(Binary); ok && (b.Op == OpDiv || b.Op == OpMod) {
			fault = true
		}
	})
	return fault
}
