package ir

// Pattern identifies an assignment pattern α ≡ x := t (Section 2 of the
// paper): the pair of a left-hand-side variable and a right-hand-side
// term, independent of where the assignment occurs. The delayability
// analysis of Table 2 allocates one bit per pattern.
//
// Pattern is a comparable value type (usable as a map key): the RHS is
// captured by its canonical Key string.
type Pattern struct {
	LHS Var
	RHS string // canonical Key() of the right-hand-side term
}

// PatternOf returns the assignment pattern of statement s, if s is an
// assignment.
func PatternOf(s Stmt) (Pattern, bool) {
	a, ok := s.(Assign)
	if !ok {
		return Pattern{}, false
	}
	return Pattern{LHS: a.LHS, RHS: a.RHS.Key()}, true
}

// String renders the pattern as "x := t".
func (p Pattern) String() string { return string(p.LHS) + " := " + p.RHS }

// Matches reports whether statement s is an occurrence of pattern p.
func (p Pattern) Matches(s Stmt) bool {
	q, ok := PatternOf(s)
	return ok && q == p
}

// Blocks reports whether executing instruction s blocks the sinking of
// an assignment pattern α = x := t past s (Definition 3.1 discussion):
// s blocks α if it modifies an operand of t, uses x, or modifies x.
//
// Note that an occurrence of α itself blocks α (it modifies x), which
// is why at most the last occurrence of a pattern in a basic block can
// be a sinking candidate (Section 5.3, Figure 13).
func (p Pattern) Blocks(s Stmt, rhsVars map[Var]bool) bool {
	// s modifies an operand of t, or modifies x itself.
	if d, ok := Def(s); ok {
		if rhsVars[d] || d == p.LHS {
			return true
		}
	}
	// s uses x.
	return UsesVarStmt(s, p.LHS)
}

// RHSVars returns the set of variables in the pattern's right-hand
// side, recovered from an occurrence. The pattern itself stores only
// the canonical key, so callers that need operand sets should use
// PatternTable, which caches them.
func RHSVars(a Assign) map[Var]bool { return VarsOf(a.RHS) }

// PatternTable assigns dense indices to the assignment patterns of a
// program and caches per-pattern operand sets. It is the bit-numbering
// universe for the delayability analysis.
type PatternTable struct {
	patterns []Pattern
	rhsVars  []map[Var]bool
	rhsExpr  []Expr
	index    map[Pattern]int
}

// NewPatternTable returns an empty table.
func NewPatternTable() *PatternTable {
	return &PatternTable{index: make(map[Pattern]int)}
}

// Add ensures the pattern of assignment a is in the table and returns
// its index.
func (t *PatternTable) Add(a Assign) int {
	p, _ := PatternOf(a)
	if i, ok := t.index[p]; ok {
		return i
	}
	i := len(t.patterns)
	t.patterns = append(t.patterns, p)
	t.rhsVars = append(t.rhsVars, RHSVars(a))
	t.rhsExpr = append(t.rhsExpr, a.RHS)
	t.index[p] = i
	return i
}

// Len returns the number of distinct patterns.
func (t *PatternTable) Len() int { return len(t.patterns) }

// Pattern returns the pattern with index i.
func (t *PatternTable) Pattern(i int) Pattern { return t.patterns[i] }

// RHSVarsAt returns the operand-variable set of pattern i.
func (t *PatternTable) RHSVarsAt(i int) map[Var]bool { return t.rhsVars[i] }

// RHSExprAt returns a representative right-hand-side expression of
// pattern i (all occurrences share the same term, so any occurrence's
// expression is representative).
func (t *PatternTable) RHSExprAt(i int) Expr { return t.rhsExpr[i] }

// Index returns the index of pattern p and whether it is present.
func (t *PatternTable) Index(p Pattern) (int, bool) {
	i, ok := t.index[p]
	return i, ok
}

// IndexOfStmt returns the pattern index of statement s, if s is an
// assignment whose pattern is in the table.
func (t *PatternTable) IndexOfStmt(s Stmt) (int, bool) {
	p, ok := PatternOf(s)
	if !ok {
		return 0, false
	}
	return t.Index(p)
}

// BlocksIdx reports whether instruction s blocks sinking of pattern i.
func (t *PatternTable) BlocksIdx(s Stmt, i int) bool {
	return t.patterns[i].Blocks(s, t.rhsVars[i])
}

// MakeAssign materializes a fresh assignment statement for pattern i,
// used when the sinking transformation inserts an instance of a
// pattern at a block boundary.
func (t *PatternTable) MakeAssign(i int) Assign {
	return Assign{LHS: t.patterns[i].LHS, RHS: t.rhsExpr[i]}
}

// VarTable assigns dense indices to variables — the bit-numbering
// universe for the dead/faint variable analyses of Table 1.
type VarTable struct {
	vars  []Var
	index map[Var]int
}

// NewVarTable returns an empty table.
func NewVarTable() *VarTable {
	return &VarTable{index: make(map[Var]int)}
}

// Add ensures v is in the table and returns its index.
func (t *VarTable) Add(v Var) int {
	if i, ok := t.index[v]; ok {
		return i
	}
	i := len(t.vars)
	t.vars = append(t.vars, v)
	t.index[v] = i
	return i
}

// AddStmt registers every variable occurring in s (both sides).
func (t *VarTable) AddStmt(s Stmt) {
	if d, ok := Def(s); ok {
		t.Add(d)
	}
	Uses(s, func(v Var) { t.Add(v) })
}

// Len returns the number of variables.
func (t *VarTable) Len() int { return len(t.vars) }

// Var returns the variable with index i.
func (t *VarTable) Var(i int) Var { return t.vars[i] }

// Index returns the index of v and whether it is present.
func (t *VarTable) Index(v Var) (int, bool) {
	i, ok := t.index[v]
	return i, ok
}

// MustIndex returns the index of v, panicking if v is unknown. The
// analyses build their variable universe from the whole program before
// solving, so a miss is a bug.
func (t *VarTable) MustIndex(v Var) int {
	i, ok := t.index[v]
	if !ok {
		panic("ir: variable not in table: " + string(v))
	}
	return i
}
