package ir

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randExpr implements testing/quick.Generator, producing arbitrary
// expression trees over a small variable pool.
type randExpr struct{ E Expr }

// Generate implements quick.Generator.
func (randExpr) Generate(r *rand.Rand, size int) reflect.Value {
	return reflect.ValueOf(randExpr{E: genExpr(r, 4)})
}

func genExpr(r *rand.Rand, depth int) Expr {
	if depth == 0 || r.Intn(3) == 0 {
		if r.Intn(2) == 0 {
			return C(int64(r.Intn(200) - 100))
		}
		vars := []Var{"a", "b", "c", "x", "y"}
		return V(vars[r.Intn(len(vars))])
	}
	if r.Intn(6) == 0 {
		// Negation of a bare constant is not parser-producible
		// (the grammar folds it into the literal), so negate
		// non-constant operands only.
		x := genExpr(r, depth-1)
		if _, isConst := x.(Const); !isConst {
			return Unary{Op: OpNeg, X: x}
		}
	}
	ops := []Op{OpAdd, OpSub, OpMul, OpDiv, OpMod, OpLt, OpLe, OpEq, OpNe, OpGt, OpGe}
	return Bin(ops[r.Intn(len(ops))], genExpr(r, depth-1), genExpr(r, depth-1))
}

// TestQuickKeyIdentifiesTerm: equal keys mean structurally equal trees
// (Key is injective on expression structure).
func TestQuickKeyIdentifiesTerm(t *testing.T) {
	f := func(a, b randExpr) bool {
		if a.E.Key() == b.E.Key() {
			return reflect.DeepEqual(a.E, b.E)
		}
		return !reflect.DeepEqual(a.E, b.E)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickSubstIdentity: the empty substitution is the identity.
func TestQuickSubstIdentity(t *testing.T) {
	f := func(a randExpr) bool {
		return ExprEqual(SubstVars(a.E, nil), a.E) &&
			ExprEqual(SubstVars(a.E, map[Var]Var{}), a.E)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickSubstRemovesVariable: after substituting v -> w (v != w),
// v no longer occurs.
func TestQuickSubstRemovesVariable(t *testing.T) {
	f := func(a randExpr) bool {
		subst := map[Var]Var{"a": "z9"}
		out := SubstVars(a.E, subst)
		return !UsesVar(out, "a")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickSubstPreservesShape: substitution never changes the
// expression skeleton (number of sub-expressions).
func TestQuickSubstPreservesShape(t *testing.T) {
	f := func(a randExpr) bool {
		out := SubstVars(a.E, map[Var]Var{"a": "b", "b": "c"})
		return len(SubExprs(out)) == len(SubExprs(a.E))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickEvalRespectsSubstitution: evaluating e with x := env[y]
// renamed equals evaluating SubstVars(e, x->y) in the original env —
// the substitution lemma, restricted to non-faulting cases.
func TestQuickEvalRespectsSubstitution(t *testing.T) {
	f := func(a randExpr, av, bv int64) bool {
		env := EnvMap{"a": av, "b": bv, "c": 3, "x": 4, "y": 5}
		// rename a -> c everywhere; evaluate original with a set
		// to env[c].
		renamed := SubstVars(a.E, map[Var]Var{"a": "c"})
		env2 := EnvMap{"a": env["c"], "b": bv, "c": 3, "x": 4, "y": 5}
		v1, err1 := Eval(renamed, env)
		v2, err2 := Eval(a.E, env2)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		return err1 != nil || v1 == v2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickEvalDeterministic: same env, same value.
func TestQuickEvalDeterministic(t *testing.T) {
	f := func(a randExpr, av int64) bool {
		env := EnvMap{"a": av, "b": 2, "c": 3, "x": 4, "y": 5}
		v1, err1 := Eval(a.E, env)
		v2, err2 := Eval(a.E, env)
		return (err1 == nil) == (err2 == nil) && (err1 != nil || v1 == v2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickCanFaultSound: if CanFault is false, Eval never errors.
func TestQuickCanFaultSound(t *testing.T) {
	f := func(a randExpr, av, bv int64) bool {
		if CanFault(a.E) {
			return true // nothing claimed
		}
		_, err := Eval(a.E, EnvMap{"a": av, "b": bv})
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickPatternBlockSymmetric: for two assignments α, β with
// disjoint variables, neither blocks the other.
func TestQuickPatternBlockSymmetric(t *testing.T) {
	alpha := Assign{LHS: "p", RHS: Add(V("q"), V("r"))}
	beta := Assign{LHS: "u", RHS: Add(V("v"), V("w"))}
	pa, _ := PatternOf(alpha)
	pb, _ := PatternOf(beta)
	if pa.Blocks(beta, RHSVars(alpha)) || pb.Blocks(alpha, RHSVars(beta)) {
		t.Error("variable-disjoint assignments block each other")
	}
}
