// Package ir defines the intermediate representation of the paper
// "Partial Dead Code Elimination" (Knoop, Rüthing, Steffen; PLDI 1994):
// variables, right-hand-side terms, and the three statement forms the
// paper works with — assignments x := t, the empty statement skip, and
// relevant statements (out(t) and branch conditions) that force their
// operands to stay alive.
package ir

import (
	"fmt"
	"strings"
)

// Var is a program variable. Variables are compared by name.
type Var string

// Op is a binary or unary operator occurring in terms.
type Op string

// Operators understood by the term language. The set is deliberately
// small: the paper's analyses only inspect the variables occurring in a
// term, never its arithmetic meaning, but the interpreter in
// internal/interp gives these operators their usual semantics.
const (
	OpAdd Op = "+"
	OpSub Op = "-"
	OpMul Op = "*"
	OpDiv Op = "/"
	OpMod Op = "%"
	OpNeg Op = "neg" // unary minus

	// Relational operators, used in branch conditions.
	OpEq Op = "=="
	OpNe Op = "!="
	OpLt Op = "<"
	OpLe Op = "<="
	OpGt Op = ">"
	OpGe Op = ">="
)

// Expr is a term t of the paper: a side-effect-free expression over
// variables and integer constants. Implementations are immutable;
// sharing sub-expressions between statements is safe.
type Expr interface {
	// Key returns a canonical, parseable rendering of the
	// expression. Two expressions denote the same term if and only
	// if their keys are equal; assignment-pattern identity
	// (Section 2 of the paper) is defined through Key.
	Key() string

	fmt.Stringer
	isExpr()
}

// Const is an integer literal.
type Const struct {
	Value int64
}

// VarRef is a use of a variable.
type VarRef struct {
	Name Var
}

// Unary applies a unary operator (currently only OpNeg) to an operand.
type Unary struct {
	Op Op
	X  Expr
}

// Binary applies a binary operator to two operands.
type Binary struct {
	Op   Op
	L, R Expr
}

func (Const) isExpr()  {}
func (VarRef) isExpr() {}
func (Unary) isExpr()  {}
func (Binary) isExpr() {}

func (c Const) Key() string  { return fmt.Sprintf("%d", c.Value) }
func (v VarRef) Key() string { return string(v.Name) }
func (u Unary) Key() string  { return "(-" + u.X.Key() + ")" }
func (b Binary) Key() string {
	return "(" + b.L.Key() + string(b.Op) + b.R.Key() + ")"
}

func (c Const) String() string  { return c.Key() }
func (v VarRef) String() string { return v.Key() }
func (u Unary) String() string  { return "-" + parenthesize(u.X) }
func (b Binary) String() string {
	return parenthesize(b.L) + string(b.Op) + parenthesize(b.R)
}

// parenthesize renders an operand, wrapping compound operands in
// parentheses so that the output re-parses to the same tree.
func parenthesize(e Expr) string {
	switch e.(type) {
	case Const, VarRef:
		return e.String()
	default:
		return "(" + e.String() + ")"
	}
}

// C returns a constant expression.
func C(v int64) Expr { return Const{Value: v} }

// V returns a variable reference.
func V(name Var) Expr { return VarRef{Name: name} }

// Bin returns a binary expression.
func Bin(op Op, l, r Expr) Expr { return Binary{Op: op, L: l, R: r} }

// Add returns l + r.
func Add(l, r Expr) Expr { return Bin(OpAdd, l, r) }

// Sub returns l - r.
func Sub(l, r Expr) Expr { return Bin(OpSub, l, r) }

// Mul returns l * r.
func Mul(l, r Expr) Expr { return Bin(OpMul, l, r) }

// Walk calls f for e and every sub-expression of e, parents first.
func Walk(e Expr, f func(Expr)) {
	f(e)
	switch x := e.(type) {
	case Unary:
		Walk(x.X, f)
	case Binary:
		Walk(x.L, f)
		Walk(x.R, f)
	}
}

// ExprVars calls f once per occurrence of a variable in e, in
// left-to-right order. It recurses directly rather than through Walk:
// wrapping f in a fresh adapter closure allocated on every call showed
// up in the optimizer's allocation profile.
func ExprVars(e Expr, f func(Var)) {
	switch x := e.(type) {
	case VarRef:
		f(x.Name)
	case Unary:
		ExprVars(x.X, f)
	case Binary:
		ExprVars(x.L, f)
		ExprVars(x.R, f)
	}
}

// VarsOf returns the set of variables occurring in e.
func VarsOf(e Expr) map[Var]bool {
	m := make(map[Var]bool)
	ExprVars(e, func(v Var) { m[v] = true })
	return m
}

// UsesVar reports whether variable v occurs in e.
func UsesVar(e Expr, v Var) bool {
	found := false
	ExprVars(e, func(w Var) {
		if w == v {
			found = true
		}
	})
	return found
}

// ExprEqual reports whether a and b denote the same term.
func ExprEqual(a, b Expr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.Key() == b.Key()
}

// SubExprs returns e and all of its sub-expressions, parents first.
func SubExprs(e Expr) []Expr {
	var out []Expr
	Walk(e, func(sub Expr) { out = append(out, sub) })
	return out
}

// IsTrivial reports whether e is a constant or a bare variable — a term
// whose "computation" is free. Lazy code motion (internal/lcm) skips
// such terms as motion candidates.
func IsTrivial(e Expr) bool {
	switch e.(type) {
	case Const, VarRef:
		return true
	}
	return false
}

// SubstVars returns e with every occurrence of a variable in subst
// replaced by its image. Unmapped variables are untouched; the input
// expression is never modified (expressions are immutable).
func SubstVars(e Expr, subst map[Var]Var) Expr {
	switch x := e.(type) {
	case Const:
		return x
	case VarRef:
		if to, ok := subst[x.Name]; ok {
			return VarRef{Name: to}
		}
		return x
	case Unary:
		return Unary{Op: x.Op, X: SubstVars(x.X, subst)}
	case Binary:
		return Binary{Op: x.Op, L: SubstVars(x.L, subst), R: SubstVars(x.R, subst)}
	}
	return e
}

// RenderVarList formats a set of variables deterministically, for
// diagnostics.
func RenderVarList(vars map[Var]bool) string {
	names := make([]string, 0, len(vars))
	for v := range vars {
		names = append(names, string(v))
	}
	sortStrings(names)
	return strings.Join(names, ",")
}

// sortStrings is a tiny insertion sort; the lists formatted here are
// diagnostic-sized, and keeping ir free of non-essential imports keeps
// the dependency graph flat.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
