package ir

import "fmt"

// Stmt is a program instruction. The paper classifies statements into
// three groups (Section 2): assignment statements v := t, the empty
// statement skip, and relevant statements that force all their operands
// to be alive. We realize relevant statements as Out (explicit output,
// the paper's out(t)) and Branch (a branch condition; the paper's
// footnote 2 requires conditions to be treated as relevant).
type Stmt interface {
	fmt.Stringer
	isStmt()
}

// Assign is the assignment statement LHS := RHS.
type Assign struct {
	LHS Var
	RHS Expr
}

// Skip is the empty statement.
type Skip struct{}

// Out is the relevant statement out(Arg): it observably emits the value
// of Arg and therefore keeps every variable of Arg alive.
type Out struct {
	Arg Expr
}

// Branch is the condition of a two-way branch. It is a relevant
// statement: its operands must stay alive, and no assignment defining
// one of them may sink past it. A Branch may only appear as the last
// statement of a basic block with exactly two successors; the first
// successor is taken when the condition evaluates to a non-zero value.
//
// Blocks without a Branch statement branch nondeterministically, which
// is the paper's base model (Section 2: edges represent "the
// nondeterministic branching structure of G").
type Branch struct {
	Cond Expr
}

func (Assign) isStmt() {}
func (Skip) isStmt()   {}
func (Out) isStmt()    {}
func (Branch) isStmt() {}

func (a Assign) String() string { return string(a.LHS) + " := " + a.RHS.String() }
func (Skip) String() string     { return "skip" }
func (o Out) String() string    { return "out(" + o.Arg.String() + ")" }
func (b Branch) String() string { return "branch(" + b.Cond.String() + ")" }

// Uses calls f once per right-hand-side occurrence of a variable in s.
// For relevant statements every operand variable is a use; for an
// assignment the uses are the variables of its RHS; skip uses nothing.
func Uses(s Stmt, f func(Var)) {
	switch st := s.(type) {
	case Assign:
		ExprVars(st.RHS, f)
	case Out:
		ExprVars(st.Arg, f)
	case Branch:
		ExprVars(st.Cond, f)
	}
}

// UsesSet returns the set of variables used (read) by s.
func UsesSet(s Stmt) map[Var]bool {
	m := make(map[Var]bool)
	Uses(s, func(v Var) { m[v] = true })
	return m
}

// UsesVarStmt reports whether s reads variable v.
func UsesVarStmt(s Stmt, v Var) bool {
	found := false
	Uses(s, func(w Var) {
		if w == v {
			found = true
		}
	})
	return found
}

// Def returns the variable defined (written) by s, if any. Only
// assignments define a variable.
func Def(s Stmt) (Var, bool) {
	if a, ok := s.(Assign); ok {
		return a.LHS, true
	}
	return "", false
}

// Mods reports whether s modifies variable v. This is the paper's local
// predicate MOD.
func Mods(s Stmt, v Var) bool {
	d, ok := Def(s)
	return ok && d == v
}

// IsRelevant reports whether s is a relevant statement (out or branch):
// one whose operands must be treated as alive. The paper's predicate
// RELV-USED is UsesVarStmt restricted to relevant statements.
func IsRelevant(s Stmt) bool {
	switch s.(type) {
	case Out, Branch:
		return true
	}
	return false
}

// RelvUses reports whether s is a relevant statement that reads v
// (the paper's RELV-USED).
func RelvUses(s Stmt, v Var) bool {
	return IsRelevant(s) && UsesVarStmt(s, v)
}

// AssUses reports whether s is an assignment statement that reads v on
// its right-hand side (the paper's ASS-USED).
func AssUses(s Stmt, v Var) bool {
	_, isAssign := s.(Assign)
	return isAssign && UsesVarStmt(s, v)
}

// StmtEqual reports whether two statements are syntactically identical.
func StmtEqual(a, b Stmt) bool {
	switch x := a.(type) {
	case Assign:
		y, ok := b.(Assign)
		return ok && x.LHS == y.LHS && ExprEqual(x.RHS, y.RHS)
	case Skip:
		_, ok := b.(Skip)
		return ok
	case Out:
		y, ok := b.(Out)
		return ok && ExprEqual(x.Arg, y.Arg)
	case Branch:
		y, ok := b.(Branch)
		return ok && ExprEqual(x.Cond, y.Cond)
	}
	return false
}
