package ir

import (
	"testing"
)

func TestExprStringAndKey(t *testing.T) {
	cases := []struct {
		e   Expr
		str string
		key string
	}{
		{C(42), "42", "42"},
		{C(-3), "-3", "-3"},
		{V("x"), "x", "x"},
		{Add(V("a"), V("b")), "a+b", "(a+b)"},
		{Mul(Add(V("a"), V("b")), C(2)), "(a+b)*2", "((a+b)*2)"},
		{Sub(V("a"), Sub(V("b"), V("c"))), "a-(b-c)", "(a-(b-c))"},
		{Unary{Op: OpNeg, X: V("x")}, "-x", "(-x)"},
		{Bin(OpLt, V("i"), C(10)), "i<10", "(i<10)"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.str {
			t.Errorf("String(%#v) = %q, want %q", c.e, got, c.str)
		}
		if got := c.e.Key(); got != c.key {
			t.Errorf("Key(%#v) = %q, want %q", c.e, got, c.key)
		}
	}
}

func TestExprEqualDistinguishesStructure(t *testing.T) {
	// a+(b+c) vs (a+b)+c must differ: terms are syntactic.
	left := Add(V("a"), Add(V("b"), V("c")))
	right := Add(Add(V("a"), V("b")), V("c"))
	if ExprEqual(left, right) {
		t.Error("differently associated sums compared equal")
	}
	if !ExprEqual(left, Add(V("a"), Add(V("b"), V("c")))) {
		t.Error("identical terms compared unequal")
	}
	if ExprEqual(nil, left) || !ExprEqual(nil, nil) {
		t.Error("nil handling wrong")
	}
}

func TestVarsOf(t *testing.T) {
	e := Add(Mul(V("a"), V("b")), V("a"))
	vars := VarsOf(e)
	if len(vars) != 2 || !vars["a"] || !vars["b"] {
		t.Errorf("VarsOf = %v", vars)
	}
	if !UsesVar(e, "a") || UsesVar(e, "z") {
		t.Error("UsesVar wrong")
	}
}

func TestExprVarsOrderAndMultiplicity(t *testing.T) {
	e := Add(V("a"), Add(V("b"), V("a")))
	var seen []Var
	ExprVars(e, func(v Var) { seen = append(seen, v) })
	want := []Var{"a", "b", "a"}
	if len(seen) != len(want) {
		t.Fatalf("got %v", seen)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("occurrence order %v, want %v", seen, want)
		}
	}
}

func TestSubExprs(t *testing.T) {
	e := Mul(Add(V("a"), C(1)), V("b"))
	subs := SubExprs(e)
	if len(subs) != 5 { // e, a+1, a, 1, b
		t.Fatalf("SubExprs returned %d nodes, want 5", len(subs))
	}
	if subs[0].Key() != e.Key() {
		t.Error("parents-first order violated")
	}
}

func TestIsTrivial(t *testing.T) {
	if !IsTrivial(C(1)) || !IsTrivial(V("x")) {
		t.Error("constants and variables must be trivial")
	}
	if IsTrivial(Add(V("a"), C(1))) || IsTrivial(Unary{Op: OpNeg, X: V("x")}) {
		t.Error("compound expressions must not be trivial")
	}
}

func TestStmtString(t *testing.T) {
	cases := []struct {
		s    Stmt
		want string
	}{
		{Assign{LHS: "x", RHS: Add(V("a"), V("b"))}, "x := a+b"},
		{Skip{}, "skip"},
		{Out{Arg: V("x")}, "out(x)"},
		{Branch{Cond: Bin(OpGt, V("i"), C(0))}, "branch(i>0)"},
	}
	for _, c := range cases {
		if got := c.s.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestUsesAndDefs(t *testing.T) {
	a := Assign{LHS: "x", RHS: Add(V("a"), V("x"))}
	uses := UsesSet(a)
	if !uses["a"] || !uses["x"] || len(uses) != 2 {
		t.Errorf("UsesSet(assign) = %v", uses)
	}
	if d, ok := Def(a); !ok || d != "x" {
		t.Error("Def(assign) wrong")
	}
	if _, ok := Def(Out{Arg: V("x")}); ok {
		t.Error("out statement has a def")
	}
	if !Mods(a, "x") || Mods(a, "a") {
		t.Error("Mods wrong")
	}
}

func TestRelevantPredicates(t *testing.T) {
	o := Out{Arg: Add(V("a"), V("b"))}
	b := Branch{Cond: V("c")}
	a := Assign{LHS: "x", RHS: V("a")}
	if !IsRelevant(o) || !IsRelevant(b) || IsRelevant(a) || IsRelevant(Skip{}) {
		t.Error("IsRelevant wrong")
	}
	if !RelvUses(o, "a") || RelvUses(o, "x") || RelvUses(a, "a") {
		t.Error("RelvUses wrong")
	}
	if !AssUses(a, "a") || AssUses(o, "a") || AssUses(a, "x") {
		t.Error("AssUses wrong")
	}
}

func TestStmtEqual(t *testing.T) {
	a1 := Assign{LHS: "x", RHS: Add(V("a"), V("b"))}
	a2 := Assign{LHS: "x", RHS: Add(V("a"), V("b"))}
	a3 := Assign{LHS: "y", RHS: Add(V("a"), V("b"))}
	if !StmtEqual(a1, a2) || StmtEqual(a1, a3) {
		t.Error("StmtEqual on assigns wrong")
	}
	if !StmtEqual(Skip{}, Skip{}) || StmtEqual(Skip{}, a1) {
		t.Error("StmtEqual on skip wrong")
	}
	if !StmtEqual(Out{Arg: V("x")}, Out{Arg: V("x")}) {
		t.Error("StmtEqual on out wrong")
	}
}

func TestPatternOfAndMatches(t *testing.T) {
	a := Assign{LHS: "x", RHS: Add(V("a"), V("b"))}
	p, ok := PatternOf(a)
	if !ok || p.LHS != "x" || p.RHS != "(a+b)" {
		t.Fatalf("PatternOf = %v, %v", p, ok)
	}
	if p.String() != "x := (a+b)" {
		t.Errorf("Pattern.String = %q", p.String())
	}
	if !p.Matches(Assign{LHS: "x", RHS: Add(V("a"), V("b"))}) {
		t.Error("pattern does not match identical assignment")
	}
	if p.Matches(Assign{LHS: "x", RHS: Add(V("b"), V("a"))}) {
		t.Error("pattern matches commuted term (terms are syntactic)")
	}
	if _, ok := PatternOf(Skip{}); ok {
		t.Error("PatternOf(skip) succeeded")
	}
}

func TestPatternBlocks(t *testing.T) {
	// α = x := a+b
	a := Assign{LHS: "x", RHS: Add(V("a"), V("b"))}
	p, _ := PatternOf(a)
	rhs := RHSVars(a)

	cases := []struct {
		s      Stmt
		blocks bool
		why    string
	}{
		{Assign{LHS: "a", RHS: C(1)}, true, "modifies operand a"},
		{Assign{LHS: "x", RHS: C(1)}, true, "modifies lhs x"},
		{Assign{LHS: "y", RHS: V("x")}, true, "uses x"},
		{Out{Arg: V("x")}, true, "relevant use of x"},
		{Branch{Cond: V("x")}, true, "branch uses x"},
		{Assign{LHS: "y", RHS: V("a")}, false, "only reads operand a"},
		{Out{Arg: V("a")}, false, "relevant use of operand only"},
		{Skip{}, false, "skip never blocks"},
		{a, true, "an occurrence blocks its own pattern (modifies x)"},
	}
	for _, c := range cases {
		if got := p.Blocks(c.s, rhs); got != c.blocks {
			t.Errorf("Blocks(%s) = %v, want %v (%s)", c.s, got, c.blocks, c.why)
		}
	}
}

func TestPatternTable(t *testing.T) {
	pt := NewPatternTable()
	a1 := Assign{LHS: "x", RHS: Add(V("a"), V("b"))}
	a2 := Assign{LHS: "y", RHS: Add(V("a"), V("b"))}
	i1 := pt.Add(a1)
	i2 := pt.Add(a2)
	if i1 == i2 {
		t.Error("distinct patterns share an index")
	}
	if pt.Add(Assign{LHS: "x", RHS: Add(V("a"), V("b"))}) != i1 {
		t.Error("re-adding a pattern changed its index")
	}
	if pt.Len() != 2 {
		t.Errorf("Len = %d", pt.Len())
	}
	if got := pt.MakeAssign(i1); !StmtEqual(got, a1) {
		t.Errorf("MakeAssign = %v", got)
	}
	if idx, ok := pt.IndexOfStmt(a2); !ok || idx != i2 {
		t.Error("IndexOfStmt wrong")
	}
	if !pt.BlocksIdx(Assign{LHS: "a", RHS: C(0)}, i1) {
		t.Error("BlocksIdx missed operand modification")
	}
}

func TestVarTable(t *testing.T) {
	vt := NewVarTable()
	vt.AddStmt(Assign{LHS: "x", RHS: Add(V("a"), V("b"))})
	vt.AddStmt(Out{Arg: V("c")})
	if vt.Len() != 4 {
		t.Fatalf("Len = %d, want 4", vt.Len())
	}
	if i, ok := vt.Index("a"); !ok || vt.Var(i) != "a" {
		t.Error("Index/Var roundtrip failed")
	}
	if _, ok := vt.Index("nope"); ok {
		t.Error("Index found unknown var")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustIndex on unknown var did not panic")
		}
	}()
	vt.MustIndex("nope")
}

func TestEval(t *testing.T) {
	env := EnvMap{"a": 7, "b": 3}
	cases := []struct {
		e    Expr
		want int64
	}{
		{C(5), 5},
		{V("a"), 7},
		{V("undefined"), 0},
		{Add(V("a"), V("b")), 10},
		{Sub(V("a"), V("b")), 4},
		{Mul(V("a"), V("b")), 21},
		{Bin(OpDiv, V("a"), V("b")), 2},
		{Bin(OpMod, V("a"), V("b")), 1},
		{Unary{Op: OpNeg, X: V("a")}, -7},
		{Bin(OpLt, V("b"), V("a")), 1},
		{Bin(OpGe, V("b"), V("a")), 0},
		{Bin(OpEq, V("a"), C(7)), 1},
		{Bin(OpNe, V("a"), C(7)), 0},
		{Bin(OpLe, V("a"), C(7)), 1},
		{Bin(OpGt, V("a"), C(7)), 0},
	}
	for _, c := range cases {
		got, err := Eval(c.e, env)
		if err != nil {
			t.Errorf("Eval(%s): %v", c.e, err)
			continue
		}
		if got != c.want {
			t.Errorf("Eval(%s) = %d, want %d", c.e, got, c.want)
		}
	}
}

func TestEvalFaults(t *testing.T) {
	env := EnvMap{"z": 0}
	for _, e := range []Expr{
		Bin(OpDiv, C(1), V("z")),
		Bin(OpMod, C(1), V("z")),
		Add(C(1), Bin(OpDiv, C(2), V("z"))),
	} {
		if _, err := Eval(e, env); err == nil {
			t.Errorf("Eval(%s) did not fault", e)
		}
	}
}

func TestCanFault(t *testing.T) {
	if CanFault(Add(V("a"), V("b"))) {
		t.Error("addition cannot fault")
	}
	if !CanFault(Bin(OpDiv, V("a"), V("b"))) {
		t.Error("division can fault")
	}
	if !CanFault(Add(C(1), Bin(OpMod, V("a"), V("b")))) {
		t.Error("nested modulus can fault")
	}
}
