package interp

import (
	"testing"

	"pdce/internal/ir"
	"pdce/internal/parser"
)

func TestStraightLineExecution(t *testing.T) {
	g := parser.MustParseSource("p", `
x := 2
y := x * 3
out(y)
out(x + y)
`)
	tr := RunSeeded(g, 1)
	if tr.Outcome != Terminated {
		t.Fatalf("outcome = %v", tr.Outcome)
	}
	if len(tr.Outputs) != 2 || tr.Outputs[0] != 6 || tr.Outputs[1] != 8 {
		t.Errorf("outputs = %v", tr.Outputs)
	}
	if tr.AssignExecs != 2 {
		t.Errorf("AssignExecs = %d", tr.AssignExecs)
	}
}

func TestTermEvalCounting(t *testing.T) {
	g := parser.MustParseSource("p", `
x := 2
y := x * 3
out(y)
out(x + y)
`)
	tr := RunSeeded(g, 1)
	// Compound: x*3 (assign) and x+y (out). Trivial: x := 2, out(y).
	if tr.TermEvals != 2 {
		t.Errorf("TermEvals = %d, want 2", tr.TermEvals)
	}
}

func TestConditionalBranching(t *testing.T) {
	g := parser.MustParseSource("p", `
if n > 10 {
    out(1)
} else {
    out(0)
}
`)
	hi := Run(g, NewSeededOracle(1), Config{Input: map[ir.Var]int64{"n": 50}})
	lo := Run(g, NewSeededOracle(1), Config{Input: map[ir.Var]int64{"n": 5}})
	if len(hi.Outputs) != 1 || hi.Outputs[0] != 1 {
		t.Errorf("hi outputs = %v", hi.Outputs)
	}
	if len(lo.Outputs) != 1 || lo.Outputs[0] != 0 {
		t.Errorf("lo outputs = %v", lo.Outputs)
	}
	// Conditional branches consult the store, not the oracle.
	if len(hi.Decisions) != 0 {
		t.Errorf("conditional branch recorded oracle decisions: %v", hi.Decisions)
	}
}

func TestLoopExecution(t *testing.T) {
	g := parser.MustParseSource("p", `
acc := 0
i := 4
while i > 0 {
    acc := acc + i
    i := i - 1
}
out(acc)
`)
	tr := RunSeeded(g, 1)
	if tr.Outcome != Terminated {
		t.Fatalf("outcome = %v", tr.Outcome)
	}
	if len(tr.Outputs) != 1 || tr.Outputs[0] != 10 {
		t.Errorf("outputs = %v, want [10]", tr.Outputs)
	}
	if tr.AssignExecs != 2+8 {
		t.Errorf("AssignExecs = %d, want 10", tr.AssignExecs)
	}
}

func TestDoWhileExecutesBodyOnce(t *testing.T) {
	g := parser.MustParseSource("p", `
i := 0
do { i := i + 1 } while i < 0
out(i)
`)
	tr := RunSeeded(g, 1)
	if len(tr.Outputs) != 1 || tr.Outputs[0] != 1 {
		t.Errorf("outputs = %v, want [1] (body runs once)", tr.Outputs)
	}
}

func TestFuelExhaustion(t *testing.T) {
	g := parser.MustParseSource("p", `
while * { skip }
out(1)
`)
	// Oracle choices of a fixed seed eventually exit, so force the
	// loop with a replay oracle that always takes the loop branch.
	always := make([]int, 100000)
	tr := Replay(g, always, Config{MaxBlockVisits: 50})
	if tr.Outcome != OutOfFuel {
		t.Fatalf("outcome = %v, want out-of-fuel", tr.Outcome)
	}
	if tr.BlockVisits != 51 {
		t.Errorf("BlockVisits = %d", tr.BlockVisits)
	}
}

func TestFault(t *testing.T) {
	g := parser.MustParseSource("p", `
z := 0
out(1)
x := 10 / z
out(2)
`)
	tr := RunSeeded(g, 1)
	if tr.Outcome != Faulted {
		t.Fatalf("outcome = %v, want faulted", tr.Outcome)
	}
	if len(tr.Outputs) != 1 || tr.Outputs[0] != 1 {
		t.Errorf("outputs before fault = %v", tr.Outputs)
	}
	if tr.Err == nil {
		t.Error("no error recorded")
	}
}

func TestOracleDeterminismAndReplay(t *testing.T) {
	g := parser.MustParseSource("p", `
x := 0
if * { x := 1 } else { x := 2 }
if * { x := x + 10 } else { skip }
out(x)
`)
	a := RunSeeded(g, 42)
	b := RunSeeded(g, 42)
	if !OutputsEqual(a, b) {
		t.Error("same seed produced different outputs")
	}
	if len(a.Decisions) != 2 {
		t.Fatalf("decisions = %v, want 2 entries", a.Decisions)
	}
	c := Replay(g, a.Decisions, Config{})
	if !OutputsEqual(a, c) {
		t.Error("replay diverged from the recorded run")
	}
}

func TestSeedsDiffer(t *testing.T) {
	g := parser.MustParseSource("p", `
if * { out(1) } else { out(2) }
`)
	seen := map[int64]bool{}
	for seed := uint64(0); seed < 32; seed++ {
		tr := RunSeeded(g, seed)
		seen[tr.Outputs[0]] = true
	}
	if len(seen) != 2 {
		t.Error("32 seeds never exercised both branches")
	}
}

func TestPatternExecCounting(t *testing.T) {
	g := parser.MustParseSource("p", `
i := 3
do {
    x := a + b
    i := i - 1
} while i > 0
out(x)
`)
	tr := RunSeeded(g, 1)
	p := ir.Pattern{LHS: "x", RHS: "(a+b)"}
	if tr.PatternExecs[p] != 3 {
		t.Errorf("pattern execs = %d, want 3", tr.PatternExecs[p])
	}
}

func TestReplayOracleExhaustion(t *testing.T) {
	g := parser.MustParseSource("p", `
if * { out(1) } else { out(2) }
if * { out(3) } else { out(4) }
`)
	o := &ReplayOracle{Decisions: []int{1}}
	tr := Run(g, o, Config{})
	if !o.Exhausted {
		t.Error("oracle exhaustion not flagged")
	}
	// Exhausted decisions default to successor 0.
	if tr.Outputs[0] != 2 || tr.Outputs[1] != 3 {
		t.Errorf("outputs = %v", tr.Outputs)
	}
}

func TestInputEnvironment(t *testing.T) {
	g := parser.MustParseSource("p", `out(n * 2)`)
	tr := Run(g, NewSeededOracle(0), Config{Input: map[ir.Var]int64{"n": 21}})
	if tr.Outputs[0] != 42 {
		t.Errorf("outputs = %v", tr.Outputs)
	}
}

func TestPrefixOutputsEqual(t *testing.T) {
	a := &Trace{Outputs: []int64{1, 2}}
	b := &Trace{Outputs: []int64{1, 2, 3}}
	c := &Trace{Outputs: []int64{1, 9}}
	if !PrefixOutputsEqual(a, b) || !PrefixOutputsEqual(b, a) {
		t.Error("prefix comparison failed")
	}
	if PrefixOutputsEqual(a, c) {
		t.Error("diverging prefixes compared equal")
	}
	if OutputsEqual(a, b) {
		t.Error("different lengths compared equal")
	}
}

func TestOutcomeString(t *testing.T) {
	cases := map[Outcome]string{
		Terminated:  "terminated",
		OutOfFuel:   "out-of-fuel",
		Faulted:     "faulted",
		Outcome(99): "unknown",
	}
	for o, want := range cases {
		if o.String() != want {
			t.Errorf("Outcome(%d).String() = %q, want %q", o, o.String(), want)
		}
	}
}

func TestVisitsPerBlockProfile(t *testing.T) {
	g := parser.MustParseSource("p", `
i := 3
do { i := i - 1 } while i > 0
out(i)
`)
	tr := RunSeeded(g, 1)
	if tr.Outcome != Terminated {
		t.Fatal("did not terminate")
	}
	// The loop body block must be the most-visited non-trivial
	// block: 3 visits.
	max := 0
	for _, v := range tr.VisitsPerBlock {
		if v > max {
			max = v
		}
	}
	if max != 3 {
		t.Errorf("hottest block visited %d times, want 3: %v", max, tr.VisitsPerBlock)
	}
	sum := 0
	for _, v := range tr.VisitsPerBlock {
		sum += v
	}
	if sum != tr.BlockVisits {
		t.Errorf("profile sums to %d, BlockVisits = %d", sum, tr.BlockVisits)
	}
}
