// Package interp executes flow-graph programs. It exists to make the
// paper's correctness and optimality claims mechanically checkable:
//
//   - Semantics preservation: an optimized program must produce the
//     same output trace as the original on "the similar execution" —
//     the execution taking the same branch decisions. Branching is
//     nondeterministic in the paper's model (Section 2), so executions
//     are driven by a replayable Oracle. The only permitted divergence
//     is a *reduction* of run-time errors (Section 3).
//   - Non-impairment: on every replayed execution, the optimized
//     program must execute at most as many instances of every
//     assignment pattern as the original (Definition 3.6's "better"
//     relation, observed on executions rather than syntactic paths).
//
// Edge splitting and assignment sinking never change the set of
// multi-successor nodes or their successor order, so a recorded
// decision sequence replays one-to-one across transformation.
package interp

import (
	"fmt"

	"pdce/internal/cfg"
	"pdce/internal/ir"
)

// Oracle resolves nondeterministic branches: Choose returns the index
// of the successor to take at a multi-successor node without a Branch
// terminator.
type Oracle interface {
	Choose(n *cfg.Node, numSuccs int) int
}

// SeededOracle derives decisions from a deterministic linear
// congruential generator, so a seed identifies an execution.
type SeededOracle struct {
	state uint64
}

// NewSeededOracle returns an oracle seeded with seed.
func NewSeededOracle(seed uint64) *SeededOracle {
	return &SeededOracle{state: seed*6364136223846793005 + 1442695040888963407}
}

// Choose implements Oracle.
func (o *SeededOracle) Choose(_ *cfg.Node, numSuccs int) int {
	o.state = o.state*6364136223846793005 + 1442695040888963407
	return int((o.state >> 33) % uint64(numSuccs))
}

// ReplayOracle replays a recorded decision sequence. Decisions beyond
// the recorded prefix default to successor 0; Exhausted reports
// whether that happened.
type ReplayOracle struct {
	Decisions []int
	pos       int
	Exhausted bool
}

// Choose implements Oracle.
func (o *ReplayOracle) Choose(_ *cfg.Node, numSuccs int) int {
	if o.pos >= len(o.Decisions) {
		o.Exhausted = true
		return 0
	}
	d := o.Decisions[o.pos]
	o.pos++
	if d >= numSuccs {
		d = numSuccs - 1
	}
	return d
}

// Config bounds an execution.
type Config struct {
	// MaxBlockVisits is the execution fuel, counted in basic-block
	// entries (statement counts alone would let empty-block loops
	// spin forever). Zero selects DefaultFuel.
	MaxBlockVisits int

	// Input provides initial variable values; variables not present
	// read as 0.
	Input map[ir.Var]int64
}

// DefaultFuel is the default block-visit bound.
const DefaultFuel = 4096

// Outcome classifies how an execution ended.
type Outcome int

// Execution outcomes.
const (
	// Terminated: execution reached the end node.
	Terminated Outcome = iota
	// OutOfFuel: the block-visit bound was exhausted (the program
	// may diverge on this decision sequence).
	OutOfFuel
	// Faulted: a run-time error (division or modulus by zero)
	// occurred.
	Faulted
)

func (o Outcome) String() string {
	switch o {
	case Terminated:
		return "terminated"
	case OutOfFuel:
		return "out-of-fuel"
	case Faulted:
		return "faulted"
	}
	return "unknown"
}

// Trace is the observable record of one execution.
type Trace struct {
	Outcome Outcome
	// Outputs is the sequence of values emitted by out statements.
	Outputs []int64
	// Err is the run-time error if Outcome == Faulted.
	Err error
	// FaultNode is the label of the faulting block.
	FaultNode string

	// Decisions records every oracle choice made, enabling replay.
	Decisions []int

	// AssignExecs is the total number of executed assignment
	// instances; PatternExecs breaks it down per pattern — the
	// dynamic counterpart of Definition 3.6's per-path occurrence
	// counts.
	AssignExecs  int
	PatternExecs map[ir.Pattern]int

	// TermEvals counts evaluations of non-trivial expressions
	// (compound assignment right-hand sides and out/branch
	// arguments) — the cost metric of partial redundancy
	// elimination, where an eliminated recomputation becomes a
	// plain copy.
	TermEvals int

	// BlockVisits is the consumed fuel; VisitsPerBlock breaks it
	// down by block label (an execution profile — the input the
	// paper's Section 7 "hot areas" heuristic presumes); Env is the
	// final store.
	BlockVisits    int
	VisitsPerBlock map[string]int
	Env            ir.EnvMap
}

// Run executes g under the oracle and configuration.
func Run(g *cfg.Graph, oracle Oracle, cfgn Config) *Trace {
	fuel := cfgn.MaxBlockVisits
	if fuel <= 0 {
		fuel = DefaultFuel
	}
	env := ir.EnvMap{}
	for v, x := range cfgn.Input {
		env[v] = x
	}
	tr := &Trace{
		PatternExecs:   make(map[ir.Pattern]int),
		VisitsPerBlock: make(map[string]int),
		Env:            env,
	}

	node := g.Start
	for {
		tr.BlockVisits++
		tr.VisitsPerBlock[node.Label]++
		if tr.BlockVisits > fuel {
			tr.Outcome = OutOfFuel
			return tr
		}
		branchTaken := -1
		for _, s := range node.Stmts {
			switch st := s.(type) {
			case ir.Assign:
				val, err := ir.Eval(st.RHS, env)
				if err != nil {
					tr.Outcome = Faulted
					tr.Err = err
					tr.FaultNode = node.Label
					return tr
				}
				env[st.LHS] = val
				tr.AssignExecs++
				if !ir.IsTrivial(st.RHS) {
					tr.TermEvals++
				}
				p, _ := ir.PatternOf(st)
				tr.PatternExecs[p]++
			case ir.Out:
				val, err := ir.Eval(st.Arg, env)
				if err != nil {
					tr.Outcome = Faulted
					tr.Err = err
					tr.FaultNode = node.Label
					return tr
				}
				if !ir.IsTrivial(st.Arg) {
					tr.TermEvals++
				}
				tr.Outputs = append(tr.Outputs, val)
			case ir.Branch:
				val, err := ir.Eval(st.Cond, env)
				if err != nil {
					tr.Outcome = Faulted
					tr.Err = err
					tr.FaultNode = node.Label
					return tr
				}
				if val != 0 {
					branchTaken = 0
				} else {
					branchTaken = 1
				}
			case ir.Skip:
				// no effect
			}
		}
		if node == g.End {
			tr.Outcome = Terminated
			return tr
		}
		succs := node.Succs()
		switch {
		case len(succs) == 0:
			// Validate rejects this; degrade gracefully anyway.
			tr.Outcome = Terminated
			return tr
		case branchTaken >= 0:
			node = succs[branchTaken]
		case len(succs) == 1:
			node = succs[0]
		default:
			d := oracle.Choose(node, len(succs))
			if d < 0 || d >= len(succs) {
				panic(fmt.Sprintf("interp: oracle chose %d of %d successors", d, len(succs)))
			}
			tr.Decisions = append(tr.Decisions, d)
			node = succs[d]
		}
	}
}

// RunSeeded executes g with a seeded oracle and default configuration.
func RunSeeded(g *cfg.Graph, seed uint64) *Trace {
	return Run(g, NewSeededOracle(seed), Config{})
}

// Replay executes g replaying the decision sequence of an earlier
// trace.
func Replay(g *cfg.Graph, decisions []int, cfgn Config) *Trace {
	return Run(g, &ReplayOracle{Decisions: decisions}, cfgn)
}

// OutputsEqual reports whether two traces emitted identical output
// sequences.
func OutputsEqual(a, b *Trace) bool {
	if len(a.Outputs) != len(b.Outputs) {
		return false
	}
	for i, x := range a.Outputs {
		if x != b.Outputs[i] {
			return false
		}
	}
	return true
}

// PrefixOutputsEqual reports whether the shorter output sequence is a
// prefix of the longer — the right comparison when one of the runs ran
// out of fuel mid-loop.
func PrefixOutputsEqual(a, b *Trace) bool {
	n := len(a.Outputs)
	if len(b.Outputs) < n {
		n = len(b.Outputs)
	}
	for i := 0; i < n; i++ {
		if a.Outputs[i] != b.Outputs[i] {
			return false
		}
	}
	return true
}
