package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pdce"
	"pdce/internal/obs"
	"pdce/internal/server"
	"pdce/internal/store"
)

// drainServer flushes in-flight work including async L2 publishes.
func drainServer(t *testing.T, s *server.Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// optimizeOnce runs one request and returns its key, body, and cache
// header.
func optimizeOnce(t *testing.T, base string) (key string, body []byte, state string) {
	t.Helper()
	status, body, state := rawOptimize(t, base, "name=demo", demoSource)
	if status != http.StatusOK {
		t.Fatalf("optimize: status %d: %s", status, body)
	}
	var resp pdce.OptimizeResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	return resp.Key, body, state
}

// TestStoreL2Backfill is the fleet-warmth property the subsystem
// exists for: a result solved by one replica is served by a freshly
// booted replica sharing the store — from the store, byte-identical,
// with no solver work.
func TestStoreL2Backfill(t *testing.T) {
	shared := store.NewMemStore()

	a, tsA, _ := startServer(t, server.Config{Store: shared})
	_, first, state := optimizeOnce(t, tsA.URL)
	if state != string(pdce.CacheMiss) {
		t.Fatalf("cold request: cache %q, want miss", state)
	}
	drainServer(t, a) // flush the async publish

	b, tsB, _ := startServer(t, server.Config{Store: shared})
	_, second, state := optimizeOnce(t, tsB.URL)
	if state != string(pdce.CacheHit) {
		t.Fatalf("restarted replica: cache %q, want hit from L2", state)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("L2 hit is not byte-identical:\nfirst:  %s\nsecond: %s", first, second)
	}
	if got := b.Stats().Optimizes(); got != 0 {
		t.Errorf("restarted replica ran the optimizer %d times, want 0", got)
	}
	if got := b.StoreStats().L2Hits(); got != 1 {
		t.Errorf("l2 hits = %d, want 1", got)
	}

	// The third request on the same replica is a pure L1 hit: the L2
	// fetch backfilled memory.
	_, _, state = optimizeOnce(t, tsB.URL)
	if state != string(pdce.CacheHit) || b.StoreStats().L2Hits() != 1 {
		t.Errorf("backfill did not stick: cache %q, l2 hits %d", state, b.StoreStats().L2Hits())
	}

	// The store section reaches both /metrics wire formats.
	resp, err := http.Get(tsB.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"pdce_store_l2_hits 1", "pdce_store_blobs 1"} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("prom exposition is missing %q", want)
		}
	}
}

// TestStoreLeaseLoserFetches pins the cluster singleflight's loser
// path: a replica that loses the solve lease serves the winner's
// published result as a dedup instead of re-solving.
func TestStoreLeaseLoserFetches(t *testing.T) {
	shared := store.NewMemStore()

	// Learn the key and canonical body from a throwaway replica.
	a, tsA, _ := startServer(t, server.Config{Store: shared})
	key, body, _ := optimizeOnce(t, tsA.URL)
	drainServer(t, a)
	vkey := store.VersionedKey(pdce.CacheKeyVersion(), key)
	if err := shared.Delete(vkey); err != nil {
		t.Fatal(err)
	}

	// An "external replica" wins the lease and holds it while the
	// replica under test arrives cold.
	winner := store.NewLease(shared, "external-winner", time.Minute, nil)
	if won, err := winner.Acquire(vkey); err != nil || !won {
		t.Fatalf("external Acquire = %v, %v", won, err)
	}

	b, tsB, _ := startServer(t, server.Config{Store: shared, LeaseTTL: time.Second})
	done := make(chan []byte, 1)
	go func() {
		_, got, state := optimizeOnce(t, tsB.URL)
		if state != string(pdce.CacheDedup) {
			t.Errorf("loser replica: cache %q, want dedup", state)
		}
		done <- got
	}()

	// The winner publishes mid-poll; the loser must pick it up.
	time.Sleep(100 * time.Millisecond)
	if _, err := shared.Put(vkey, body); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-done:
		if !bytes.Equal(got, body) {
			t.Fatalf("fetched result differs from the winner's:\n%s\nvs\n%s", got, body)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("loser never fetched the winner's result")
	}
	if snap := b.StoreStats().Snapshot(obs.StoreGauges{}); snap.LeaseFetches != 1 || snap.LeaseLosses != 1 {
		t.Errorf("lease counters = %+v, want 1 loss, 1 fetch", snap)
	}
	if got := b.Stats().Optimizes(); got != 0 {
		t.Errorf("loser ran the optimizer %d times, want 0", got)
	}
}

// TestStoreLeaseExpiryTakeover pins the crashed-winner path: the
// winner never publishes, its lease expires, and the waiting replica
// takes the solve over locally — an acked request is never lost to a
// dead peer.
func TestStoreLeaseExpiryTakeover(t *testing.T) {
	shared := store.NewMemStore()

	a, tsA, _ := startServer(t, server.Config{Store: shared})
	key, _, _ := optimizeOnce(t, tsA.URL)
	drainServer(t, a)
	vkey := store.VersionedKey(pdce.CacheKeyVersion(), key)
	if err := shared.Delete(vkey); err != nil {
		t.Fatal(err)
	}

	// The "winner" grabs the lease with a tiny TTL and crashes: no
	// publish, no release.
	dead := store.NewLease(shared, "crashed-winner", 30*time.Millisecond, nil)
	if won, err := dead.Acquire(vkey); err != nil || !won {
		t.Fatalf("dead Acquire = %v, %v", won, err)
	}

	b, tsB, _ := startServer(t, server.Config{Store: shared, LeaseTTL: time.Second})
	_, _, state := optimizeOnce(t, tsB.URL)
	if state != string(pdce.CacheMiss) {
		t.Fatalf("takeover request: cache %q, want miss (local solve)", state)
	}
	if got := b.Stats().Optimizes(); got != 1 {
		t.Errorf("takeover ran the optimizer %d times, want 1", got)
	}
	snap := b.StoreStats().Snapshot(obs.StoreGauges{})
	if snap.LeaseExpiries == 0 || snap.LeaseWins == 0 {
		t.Errorf("takeover not counted: %+v", snap)
	}
}

// downBackend fails every operation — a dead blobd or an unmounted
// shared filesystem.
type downBackend struct{}

var errDown = errors.New("backend down")

func (downBackend) Put(string, []byte) (bool, error) { return false, errDown }
func (downBackend) Get(string) ([]byte, error)       { return nil, errDown }
func (downBackend) Has(string) (bool, error)         { return false, errDown }
func (downBackend) Delete(string) error              { return errDown }
func (downBackend) Stats() (store.Stats, error)      { return store.Stats{}, errDown }

// TestStoreOutageDegradesToLocal is the availability property: with
// the backend hard down, every request still succeeds locally and the
// failures are counted, never surfaced to callers.
func TestStoreOutageDegradesToLocal(t *testing.T) {
	s, ts, _ := startServer(t, server.Config{Store: downBackend{}})
	_, _, state := optimizeOnce(t, ts.URL)
	if state != string(pdce.CacheMiss) {
		t.Fatalf("outage request: cache %q, want miss", state)
	}
	_, _, state = optimizeOnce(t, ts.URL)
	if state != string(pdce.CacheHit) {
		t.Fatalf("repeat under outage: cache %q, want L1 hit", state)
	}
	drainServer(t, s)
	snap := s.StoreStats().Snapshot(obs.StoreGauges{})
	if snap.GetFailures == 0 || snap.LeaseErrors == 0 || snap.PutFailures == 0 {
		t.Errorf("outage not counted: %+v", snap)
	}
	if snap.Puts != 0 || snap.L2Hits != 0 {
		t.Errorf("phantom successes under outage: %+v", snap)
	}
}

// TestPeerCacheServing pins the peer surface: a replica with PeerCache
// serves its own L1 under the store wire contract, so a sibling can
// mount it as an HTTPStore — and a key carrying a different build's
// version prefix answers 404, the mixed-version guard.
func TestPeerCacheServing(t *testing.T) {
	s, ts, _ := startServer(t, server.Config{PeerCache: true})
	key, body, _ := optimizeOnce(t, ts.URL)
	before := s.Cache().Metrics()

	peer := store.NewHTTPStore(ts.URL, nil)
	vkey := store.VersionedKey(pdce.CacheKeyVersion(), key)
	got, err := peer.Get(vkey)
	if err != nil || !bytes.Equal(got, body) {
		t.Fatalf("peer Get = %v (%d bytes), want the replica's L1 entry", err, len(got))
	}
	if ok, err := peer.Has(vkey); err != nil || !ok {
		t.Fatalf("peer Has = %v, %v", ok, err)
	}

	// Mixed-version guard: the same raw key under a stale version
	// prefix does not exist on this replica.
	if _, err := peer.Get("pdce-cache-v0-" + key); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("stale-version Get: err = %v, want ErrNotFound", err)
	}

	// A pushed entry lands in L1 under the raw key (write-once: the
	// second push reports existing).
	extra := store.VersionedKey(pdce.CacheKeyVersion(), strings.Repeat("cd", 32))
	if created, err := peer.Put(extra, []byte(`{"pushed":true}`)); err != nil || !created {
		t.Fatalf("peer Put = %v, %v", created, err)
	}
	if created, err := peer.Put(extra, []byte(`{"pushed":true}`)); err != nil || created {
		t.Fatalf("second peer Put = %v, %v, want false nil", created, err)
	}
	if !s.Cache().Contains(strings.Repeat("cd", 32)) {
		t.Fatal("pushed entry did not land in L1")
	}

	// Peer traffic must not skew the replica's own cache statistics.
	after := s.Cache().Metrics()
	if after.Hits != before.Hits || after.Misses != before.Misses {
		t.Errorf("peer traffic moved hit/miss counters: %+v -> %+v", before, after)
	}

	if st, err := peer.Stats(); err != nil || st.Blobs == 0 {
		t.Errorf("peer Stats = %+v, %v, want nonzero blobs", st, err)
	}
}

// TestSpillOrphanSweep is the crash-litter regression: tmp-* files a
// crashed writer left in the spill directory are removed at boot and
// counted, while real entries survive.
func TestSpillOrphanSweep(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"tmp-111.entry", "tmp-222.entry"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("torn"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// A first server writes a real spill entry, then "crashes".
	a, tsA, _ := startServer(t, server.Config{SpillDir: dir})
	key, body, _ := optimizeOnce(t, tsA.URL)
	if got := a.Cache().Metrics().SpillSwept; got != 2 {
		t.Fatalf("boot sweep removed %d orphans, want 2", got)
	}
	for _, name := range []string{"tmp-111.entry", "tmp-222.entry"} {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Fatalf("%s survived the boot sweep", name)
		}
	}

	// The restarted server sweeps nothing further and still serves the
	// spilled result.
	b, tsB, _ := startServer(t, server.Config{SpillDir: dir})
	if got := b.Cache().Metrics().SpillSwept; got != 0 {
		t.Fatalf("clean boot swept %d files, want 0", got)
	}
	_, second, state := rawOptimize(t, tsB.URL, "name=demo", demoSource)
	if state != string(pdce.CacheHit) || !bytes.Equal(body, second) {
		t.Fatalf("spilled result not served after restart: cache %q", state)
	}
	_ = key
}
