package server_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"pdce"
	"pdce/internal/faultinject"
	"pdce/internal/server"
)

// queueConfig is a small, fast queue setup over a temp WAL directory.
func queueConfig(t *testing.T) server.Config {
	t.Helper()
	return server.Config{
		QueueDir:     t.TempDir(),
		QueueBackoff: time.Millisecond,
	}
}

// TestSubmitPollAck is the async happy path: submit answers 202 with a
// durable job, polling reaches done, the result is byte-identical to
// the synchronous endpoint's, and acking releases the job while its
// result stays reachable through the cache.
func TestSubmitPollAck(t *testing.T) {
	cfg := queueConfig(t)
	s, ts, c := startServer(t, cfg)
	defer s.Drain(context.Background())

	sub, err := c.Submit(context.Background(), "demo", demoSource, pdce.RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sub.ID == "" || sub.Cached || sub.Duplicate {
		t.Fatalf("fresh submit receipt %+v", sub)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := c.Poll(ctx, sub.ID, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.State != pdce.JobDone {
		t.Fatalf("job state %q error %q, want done", res.State, res.Error)
	}

	// Byte-identity with the synchronous path: /optimize of the same
	// program must serve the cached bytes the job produced.
	status, body, cacheState := rawOptimize(t, ts.URL, "name=demo", demoSource)
	if status != http.StatusOK {
		t.Fatalf("sync optimize: %d %s", status, body)
	}
	if cacheState != string(pdce.CacheHit) {
		t.Fatalf("sync optimize after async job: cache %q, want hit", cacheState)
	}
	if string(res.Result) != string(body) {
		t.Fatalf("async result and sync response differ:\n%s\nvs\n%s", res.Result, body)
	}

	// Ack: the job leaves the queue table...
	if _, err := c.Result(context.Background(), sub.ID, true); err != nil {
		t.Fatal(err)
	}
	snap := s.Queue().Snapshot()
	if snap.Done != 0 || snap.Acks != 1 {
		t.Fatalf("post-ack snapshot %+v, want done=0 acks=1", snap)
	}
	// ...but its result is still served, via the cache fallback.
	res2, err := c.Result(context.Background(), sub.ID, false)
	if err != nil {
		t.Fatal(err)
	}
	if res2.State != pdce.JobDone || string(res2.Result) != string(body) {
		t.Fatalf("post-ack result %+v, want cached done bytes", res2.State)
	}
}

// TestSubmitDeduplication: duplicate submissions collapse onto the
// existing job by content address, and a submission whose result is
// already cached short-circuits to done without queueing anything.
func TestSubmitDeduplication(t *testing.T) {
	cfg := queueConfig(t)
	s, ts, c := startServer(t, cfg)
	defer s.Drain(context.Background())

	sub1, err := c.Submit(context.Background(), "demo", demoSource, pdce.RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sub2, err := c.Submit(context.Background(), "demo", demoSource, pdce.RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sub2.ID != sub1.ID {
		t.Fatalf("duplicate submit got id %q, want %q", sub2.ID, sub1.ID)
	}
	if !sub2.Duplicate && !sub2.Cached {
		// The job may have finished between the submits, in which case
		// the resubmission legitimately reports the cached result.
		t.Fatalf("duplicate submit receipt %+v, want Duplicate or Cached", sub2)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := c.Poll(ctx, sub1.ID, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Now the result is cached: a third submit answers done immediately.
	sub3, err := c.Submit(context.Background(), "demo", demoSource, pdce.RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sub3.Cached || sub3.State != pdce.JobDone {
		t.Fatalf("post-completion submit receipt %+v, want cached done", sub3)
	}
	_ = ts
}

// TestQueueDisabled: without a queue directory the async endpoints
// answer 503 with a distinct kind, so callers can tell "disabled" from
// "draining".
func TestQueueDisabled(t *testing.T) {
	s, ts, c := startServer(t, server.Config{})
	defer s.Drain(context.Background())

	if _, err := c.Submit(context.Background(), "demo", demoSource, pdce.RequestOptions{}); err == nil {
		t.Fatal("submit on queue-less server succeeded")
	} else if se := new(pdce.ServerError); !asServerError(err, &se) || se.Status != http.StatusServiceUnavailable || se.Kind != "queue-disabled" {
		t.Fatalf("submit error %v, want 503 queue-disabled", err)
	}
	resp, err := http.Get(ts.URL + "/optimize/result/abc")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("result on queue-less server: %d, want 503", resp.StatusCode)
	}
}

func asServerError(err error, se **pdce.ServerError) bool {
	s, ok := err.(*pdce.ServerError)
	if ok {
		*se = s
	}
	return ok
}

// TestQueueRetryAndPoison: a job whose every attempt dies in a
// contained optimizer panic retries with backoff and is poisoned after
// the budget — parked in the failed state, surviving restarts, never
// retried again.
func TestQueueRetryAndPoison(t *testing.T) {
	cfg := queueConfig(t)
	cfg.QueueRetries = 2
	restore := faultinject.Set(func(p faultinject.Point, _ any) {
		if p == faultinject.EliminatePhase {
			panic("injected: optimizer bug")
		}
	})
	defer restore()

	s, _, c := startServer(t, cfg)
	sub, err := c.Submit(context.Background(), "demo", demoSource, pdce.RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := c.Poll(ctx, sub.ID, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.State != pdce.JobFailed || res.Attempts != 2 {
		t.Fatalf("poisoned job %+v, want failed after 2 attempts", res)
	}
	if !strings.Contains(res.Error, "injected") {
		t.Fatalf("poisoned job error %q does not carry the cause", res.Error)
	}
	if got := s.Queue().Stats().Poisoned(); got != 1 {
		t.Fatalf("poisoned counter %d, want 1", got)
	}
	snap := s.Queue().Snapshot()
	if snap.Retries != 1 || snap.Failed != 1 {
		t.Fatalf("snapshot %+v, want 1 retry and 1 failed job", snap)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Poison survives restart: the replayed job is still failed, not
	// re-run (the hook is gone — a re-run would succeed and mask the
	// bug).
	s2, _, c2 := startServer(t, cfg)
	defer s2.Drain(context.Background())
	res2, err := c2.Result(context.Background(), sub.ID, false)
	if err != nil {
		t.Fatal(err)
	}
	if res2.State != pdce.JobFailed || res2.Attempts != 2 {
		t.Fatalf("replayed poisoned job %+v, want failed after 2 attempts", res2)
	}
}

// TestQueueFsyncFailureRejectsSubmission: when the submit record cannot
// be made durable the submission must be refused — never acknowledged
// volatile — and a retry after the disk recovers starts clean.
func TestQueueFsyncFailureRejectsSubmission(t *testing.T) {
	cfg := queueConfig(t)
	s, _, c := startServer(t, cfg)
	defer s.Drain(context.Background())

	restore := faultinject.Set(func(p faultinject.Point, payload any) {
		if p == faultinject.QueueFsync {
			*payload.(*error) = io.ErrShortWrite
		}
	})
	_, err := c.Submit(context.Background(), "demo", demoSource, pdce.RequestOptions{})
	restore()
	if err == nil {
		t.Fatal("submit with failing fsync succeeded")
	}
	var se *pdce.ServerError
	if !asServerError(err, &se) || se.Status != http.StatusInternalServerError || se.Kind != "queue" {
		t.Fatalf("submit error %v, want 500 queue", err)
	}
	if snap := s.Queue().Snapshot(); snap.FsyncFailures != 1 || snap.Submits != 0 || snap.Depth != 0 {
		t.Fatalf("post-failure snapshot %+v, want the job never admitted", snap)
	}

	// Disk recovered: the same submission is accepted fresh, not as a
	// duplicate of a ghost.
	sub, err := c.Submit(context.Background(), "demo", demoSource, pdce.RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Duplicate {
		t.Fatalf("retried submit reported duplicate: %+v", sub)
	}
}

// TestQueueCrashRecovery: jobs whose submissions were acknowledged
// survive a crash (kill + WAL truncated to its synced prefix) and
// complete after restart with the same bytes the synchronous path
// computes.
func TestQueueCrashRecovery(t *testing.T) {
	cfg := queueConfig(t)
	cfg.QueueWorkers = 1

	// Stall the optimizer so the jobs are still unfinished at the kill.
	restore := faultinject.Set(func(p faultinject.Point, _ any) {
		if p == faultinject.SolverVisit {
			time.Sleep(2 * time.Millisecond)
		}
	})

	s, _, c := startServer(t, cfg)
	sources := map[string]string{
		"a": "x := 1\nout(x)",
		"b": demoSource,
		"c": "y := a + b\ny := 2\nout(y)",
	}
	ids := make(map[string]string)
	for name, src := range sources {
		sub, err := c.Submit(context.Background(), name, src, pdce.RequestOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ids[name] = sub.ID
	}

	// Crash: kill the queue, then chop the log to its durable prefix —
	// everything an fsync never covered is gone.
	q := s.Queue()
	synced := q.WALSyncedSize()
	q.Kill()
	restore()
	if err := truncateFile(q.WALPath(), synced); err != nil {
		t.Fatal(err)
	}

	// Restart on the same directory: every acknowledged job must
	// complete.
	s2, _, c2 := startServer(t, cfg)
	defer s2.Drain(context.Background())
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for name := range sources {
		res, err := c2.Poll(ctx, ids[name], time.Millisecond)
		if err != nil {
			t.Fatalf("job %s: %v", name, err)
		}
		if res.State != pdce.JobDone {
			t.Fatalf("job %s: state %q error %q", name, res.State, res.Error)
		}
		var body pdce.OptimizeResponse
		if err := json.Unmarshal(res.Result, &body); err != nil {
			t.Fatalf("job %s: result body: %v", name, err)
		}
		if body.Key != ids[name] {
			t.Fatalf("job %s: result key %q, want %q", name, body.Key, ids[name])
		}
	}
	if snap := s2.Queue().Snapshot(); snap.ReplayedJobs == 0 {
		t.Fatalf("snapshot %+v, want replayed jobs after crash recovery", snap)
	}
}

// TestQueueDrainPersistsQueuedJobs: a graceful drain finishes running
// jobs but leaves queued ones in the log; they run on the next boot.
func TestQueueDrainPersistsQueuedJobs(t *testing.T) {
	cfg := queueConfig(t)
	cfg.QueueWorkers = 1

	// One worker, stalled: the first job occupies it, the rest stay
	// queued across the drain.
	block := make(chan struct{})
	restore := faultinject.Set(func(p faultinject.Point, _ any) {
		if p == faultinject.SolverVisit {
			<-block
		}
	})

	s, _, c := startServer(t, cfg)
	var ids []string
	for _, src := range []string{"x := 1\nout(x)", demoSource, "y := 2\nout(y)"} {
		sub, err := c.Submit(context.Background(), "p", src, pdce.RequestOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, sub.ID)
	}

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	time.Sleep(10 * time.Millisecond) // let drain begin while the worker is stalled
	close(block)                      // release the running job
	if err := <-drained; err != nil {
		t.Fatal(err)
	}
	restore()

	s2, _, c2 := startServer(t, cfg)
	defer s2.Drain(context.Background())
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, id := range ids {
		res, err := c2.Poll(ctx, id, time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if res.State != pdce.JobDone {
			t.Fatalf("job %s after drain+restart: state %q error %q", id, res.State, res.Error)
		}
	}
}

// TestMetricsJobQueueSection: /metrics grows a job_queue section when
// the queue is enabled and omits it when not.
func TestMetricsJobQueueSection(t *testing.T) {
	s, _, c := startServer(t, server.Config{})
	m, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.JobQueue != nil {
		t.Fatal("queue-less server reported a job_queue section")
	}
	s.Drain(context.Background())

	cfg := queueConfig(t)
	s2, _, c2 := startServer(t, cfg)
	defer s2.Drain(context.Background())
	sub, err := c2.Submit(context.Background(), "demo", demoSource, pdce.RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := c2.Poll(ctx, sub.ID, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	m2, err := c2.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m2.JobQueue == nil {
		t.Fatal("queue-enabled server omitted the job_queue section")
	}
	if m2.JobQueue.Submits != 1 || m2.JobQueue.Completions != 1 {
		t.Fatalf("job_queue section %+v, want 1 submit and 1 completion", m2.JobQueue)
	}
}

// truncateFile chops path to size (the chaos crash model: unsynced
// bytes vanish).
func truncateFile(path string, size int64) error {
	return os.Truncate(path, size)
}
