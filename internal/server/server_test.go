package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"pdce"
	"pdce/internal/faultinject"
	"pdce/internal/server"
)

const demoSource = `
y := a + b
if * {
    y := c
}
out(x + y)
`

// startServer builds a Server plus an httptest front end.
func startServer(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server, *pdce.Client) {
	t.Helper()
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, pdce.NewClient(ts.URL)
}

// rawOptimize posts source and returns status, body, and cache header.
func rawOptimize(t *testing.T, base, query, source string) (int, []byte, string) {
	t.Helper()
	resp, err := http.Post(base+"/optimize?"+query, "text/plain", strings.NewReader(source))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header.Get("X-Pdced-Cache")
}

// TestCacheHitByteIdentical is the core acceptance path: the second
// identical request is served from the cache — the hit counter moves,
// no new optimizer run happens — and its body is byte-identical to the
// first response.
func TestCacheHitByteIdentical(t *testing.T) {
	s, ts, client := startServer(t, server.Config{})

	status, first, state := rawOptimize(t, ts.URL, "name=demo&telemetry=1", demoSource)
	if status != http.StatusOK || state != string(pdce.CacheMiss) {
		t.Fatalf("first request: status %d, cache %q", status, state)
	}
	status, second, state := rawOptimize(t, ts.URL, "name=demo&telemetry=1", demoSource)
	if status != http.StatusOK || state != string(pdce.CacheHit) {
		t.Fatalf("second request: status %d, cache %q", status, state)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("cache hit is not byte-identical:\nfirst:  %s\nsecond: %s", first, second)
	}
	if got := s.Stats().Optimizes(); got != 1 {
		t.Errorf("optimizer ran %d times, want 1 (the hit must do no solver work)", got)
	}
	snap := s.Stats().Snapshot()
	if snap.CacheHits != 1 || snap.CacheMisses != 1 {
		t.Errorf("cache counters hits=%d misses=%d, want 1/1", snap.CacheHits, snap.CacheMisses)
	}

	// The decoded payload is a real result: the optimizer removed the
	// partially dead y := a+b and the telemetry section is present.
	var resp pdce.OptimizeResponse
	if err := json.Unmarshal(second, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Stats.Telemetry == nil {
		t.Error("telemetry=1 response lacks solver metrics")
	}
	if resp.Stats.Eliminated+resp.Stats.SinkRemoved == 0 {
		t.Errorf("demo program was not optimized: %+v", resp.Stats)
	}
	if _, err := pdce.ParseCFG(resp.Program); err != nil {
		t.Errorf("response program does not round-trip: %v", err)
	}
	_ = client

	// Same program under a different whitespace spelling is still the
	// same content address.
	_, _, state = rawOptimize(t, ts.URL, "name=demo&telemetry=1",
		"// a comment\n"+strings.ReplaceAll(demoSource, "    ", "\t"))
	if state != string(pdce.CacheHit) {
		t.Errorf("reformatted source missed the cache (%q)", state)
	}

	// A semantically different program must not.
	_, _, state = rawOptimize(t, ts.URL, "name=demo&telemetry=1",
		strings.Replace(demoSource, "a + b", "a - b", 1))
	if state != string(pdce.CacheMiss) {
		t.Errorf("edited source was served from cache (%q)", state)
	}
}

func contextOK(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// stallRequests installs a ServerRequest hook that parks every
// admitted request until release is closed, reporting each arrival on
// entered.
func stallRequests(t *testing.T) (entered chan string, release chan struct{}) {
	t.Helper()
	entered = make(chan string, 16)
	release = make(chan struct{})
	restore := faultinject.Set(func(p faultinject.Point, payload any) {
		if p != faultinject.ServerRequest {
			return
		}
		name, _ := payload.(string)
		entered <- name
		<-release
	})
	t.Cleanup(restore)
	return entered, release
}

// TestQueueSaturation: with one work slot and a one-deep queue, a
// third concurrent request is shed with 429 Retry-After while
// /healthz stays green; once capacity frees, queued work completes.
func TestQueueSaturation(t *testing.T) {
	s, ts, client := startServer(t, server.Config{MaxInFlight: 1, MaxQueue: 1})
	entered, release := stallRequests(t)

	type outcome struct {
		status int
		state  string
	}
	results := make(chan outcome, 2)
	post := func(src string) {
		status, _, state := rawOptimize(t, ts.URL, "", src)
		results <- outcome{status, state}
	}
	go post("out(1)\n")
	<-entered // request 1 holds the slot

	go post("out(2)\n")
	waitFor(t, "request 2 queued", func() bool {
		m, err := client.Metrics(contextOK(t))
		return err == nil && m.Queue.Queued == 1
	})

	// Request 3 finds slot and queue full: shed immediately.
	se := mustServerError(t, ts.URL, "out(3)\n")
	if se.Status != http.StatusTooManyRequests || se.Kind != "queue-full" {
		t.Fatalf("saturated request: %+v", se)
	}
	if se.RetryAfter <= 0 {
		t.Errorf("429 without Retry-After: %+v", se)
	}

	// Health is policy-independent: still green.
	if status, err := client.Health(contextOK(t)); err != nil || status != "ok" {
		t.Errorf("healthz under saturation: %q, %v", status, err)
	}

	close(release)
	for i := 0; i < 2; i++ {
		if o := <-results; o.status != http.StatusOK {
			t.Errorf("in-flight/queued request finished %d", o.status)
		}
	}
	if snap := s.Stats().Snapshot(); snap.ShedQueueFull != 1 {
		t.Errorf("shed counter = %d, want 1", snap.ShedQueueFull)
	}
}

func mustServerError(t *testing.T, base, src string) *pdce.ServerError {
	t.Helper()
	client := pdce.NewClient(base)
	_, _, err := client.Optimize(contextOK(t), "x", src, pdce.RequestOptions{})
	if err == nil {
		t.Fatal("expected an error response")
	}
	se, ok := err.(*pdce.ServerError)
	if !ok {
		t.Fatalf("error is %T (%v), want *pdce.ServerError", err, err)
	}
	return se
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestGracefulDrain: in-flight requests complete with full responses
// during drain, new requests are refused 503, and Drain returns once
// the server is idle.
func TestGracefulDrain(t *testing.T) {
	s, ts, client := startServer(t, server.Config{MaxInFlight: 2})
	entered, release := stallRequests(t)

	results := make(chan []byte, 1)
	go func() {
		status, body, _ := rawOptimize(t, ts.URL, "name=inflight", demoSource)
		if status != http.StatusOK {
			body = nil
		}
		results <- body
	}()
	<-entered // the request is admitted and running

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	waitFor(t, "drain mode", s.Draining)

	// New work is refused while the old completes.
	se := mustServerError(t, ts.URL, "out(9)\n")
	if se.Status != http.StatusServiceUnavailable || se.Kind != "draining" {
		t.Fatalf("request during drain: %+v", se)
	}
	if status, err := client.Health(contextOK(t)); err != nil || status != "draining" {
		t.Errorf("healthz during drain: %q, %v", status, err)
	}

	select {
	case <-drained:
		t.Fatal("Drain returned while a request was still in flight")
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	body := <-results
	if body == nil {
		t.Fatal("in-flight request was dropped during drain")
	}
	var resp pdce.OptimizeResponse
	if err := json.Unmarshal(body, &resp); err != nil || resp.Program == "" {
		t.Fatalf("in-flight response truncated during drain: %v, %s", err, body)
	}
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
}

// TestPanic500NeverPoisonsCache: an injected optimizer panic answers
// 500 with the repro-bundle path; the cache stays empty, so the next
// identical request recomputes and succeeds.
func TestPanic500NeverPoisonsCache(t *testing.T) {
	reproDir := t.TempDir()
	s, ts, _ := startServer(t, server.Config{ReproDir: reproDir})

	restore := faultinject.Set(func(p faultinject.Point, _ any) {
		if p == faultinject.EliminatePhase {
			panic("injected optimizer fault")
		}
	})
	status, body, _ := rawOptimize(t, ts.URL, "name=demo", demoSource)
	restore()

	if status != http.StatusInternalServerError {
		t.Fatalf("panicking request: status %d, body %s", status, body)
	}
	var se pdce.ServerError
	if err := json.Unmarshal(body, &se); err != nil {
		t.Fatal(err)
	}
	if se.Kind != "panic" || se.ReproBundle == "" {
		t.Fatalf("panic response: %+v", se)
	}
	if _, err := os.Stat(se.ReproBundle); err != nil {
		t.Errorf("repro bundle path not on disk: %v", err)
	}
	if n := s.Cache().Len(); n != 0 {
		t.Fatalf("panicked run left %d cache entries", n)
	}
	if snap := s.Stats().Snapshot(); snap.Panics != 1 {
		t.Errorf("panic counter = %d, want 1", snap.Panics)
	}

	// The poisoned key recomputes cleanly once the fault is gone.
	status, _, state := rawOptimize(t, ts.URL, "name=demo", demoSource)
	if status != http.StatusOK || state != string(pdce.CacheMiss) {
		t.Fatalf("recovery request: status %d, cache %q", status, state)
	}
}

// TestDeadlineDegradesUncached: a tiny per-request deadline against a
// stalled solver yields a 200 degraded partial result that is never
// cached — the next request (fault removed) recomputes the optimum.
func TestDeadlineDegradesUncached(t *testing.T) {
	s, ts, _ := startServer(t, server.Config{})
	restore := faultinject.Set(func(p faultinject.Point, _ any) {
		if p == faultinject.SolverVisit {
			time.Sleep(3 * time.Millisecond)
		}
	})
	status, body, _ := rawOptimize(t, ts.URL, "name=demo&deadline_ms=1", demoSource)
	restore()
	if status != http.StatusOK {
		t.Fatalf("degraded request: status %d, body %s", status, body)
	}
	var resp pdce.OptimizeResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded || resp.ErrorKind != "deadline" {
		t.Fatalf("expected a degraded deadline result, got %+v", resp)
	}
	if n := s.Cache().Len(); n != 0 {
		t.Fatalf("degraded result was cached (%d entries)", n)
	}
	status, body, _ = rawOptimize(t, ts.URL, "name=demo", demoSource)
	if status != http.StatusOK {
		t.Fatalf("recovery: status %d", status)
	}
	var again pdce.OptimizeResponse
	if err := json.Unmarshal(body, &again); err != nil || again.Degraded {
		t.Fatalf("recovery still degraded: %v %+v", err, again)
	}
}

// TestSingleflightDedup: concurrent identical requests compute once;
// followers coalesce onto the leader's result.
func TestSingleflightDedup(t *testing.T) {
	s, ts, _ := startServer(t, server.Config{MaxInFlight: 4})
	entered, release := stallRequests(t)

	const followers = 4
	states := make(chan string, followers+1)
	post := func() {
		status, _, state := rawOptimize(t, ts.URL, "name=same", demoSource)
		if status != http.StatusOK {
			state = fmt.Sprintf("status-%d", status)
		}
		states <- state
	}
	go post()
	<-entered // the leader holds the flight slot and is stalled
	var wg sync.WaitGroup
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); post() }()
	}
	// Followers pile onto the flight entry; requests counter tells us
	// they all arrived before we release the leader.
	waitFor(t, "followers to arrive", func() bool {
		return s.Stats().Snapshot().Requests == followers+1
	})
	time.Sleep(5 * time.Millisecond) // let them reach the flight wait
	close(release)
	wg.Wait()

	counts := map[string]int{}
	for i := 0; i < followers+1; i++ {
		counts[<-states]++
	}
	if counts[string(pdce.CacheMiss)] != 1 {
		t.Errorf("outcomes %v: want exactly one miss", counts)
	}
	if got := s.Stats().Optimizes(); got != 1 {
		t.Errorf("optimizer ran %d times for %d identical requests", got, followers+1)
	}
}

// TestSpillSurvivesRestart: a second server over the same spill
// directory serves the first server's results as hits without
// recomputing.
func TestSpillSurvivesRestart(t *testing.T) {
	spill := t.TempDir()
	_, ts1, _ := startServer(t, server.Config{SpillDir: spill})
	status, first, _ := rawOptimize(t, ts1.URL, "name=demo", demoSource)
	if status != http.StatusOK {
		t.Fatal("seed request failed")
	}

	s2, ts2, _ := startServer(t, server.Config{SpillDir: spill})
	status, second, state := rawOptimize(t, ts2.URL, "name=demo", demoSource)
	if status != http.StatusOK || state != string(pdce.CacheHit) {
		t.Fatalf("restarted server: status %d, cache %q", status, state)
	}
	if !bytes.Equal(first, second) {
		t.Error("spill-recovered response differs from the original")
	}
	if s2.Stats().Optimizes() != 0 {
		t.Error("restarted server recomputed a spilled result")
	}
	if m := s2.Cache().Metrics(); m.SpillHits != 1 {
		t.Errorf("spill hits = %d, want 1", m.SpillHits)
	}
}

// TestSpillCorruptionQuarantined: a corrupted spill entry (injected at
// the ServerCacheLoad seam) is detected, never served, and the result
// is recomputed — byte-identical to the original, by determinism.
func TestSpillCorruptionQuarantined(t *testing.T) {
	spill := t.TempDir()
	_, ts1, _ := startServer(t, server.Config{SpillDir: spill})
	_, first, _ := rawOptimize(t, ts1.URL, "name=demo", demoSource)

	restore := faultinject.Set(func(p faultinject.Point, payload any) {
		if p != faultinject.ServerCacheLoad {
			return
		}
		data := payload.(*[]byte)
		if len(*data) > 0 {
			(*data)[len(*data)/2] ^= 0xFF
		}
	})
	s2, ts2, _ := startServer(t, server.Config{SpillDir: spill})
	status, body, state := rawOptimize(t, ts2.URL, "name=demo", demoSource)
	restore()

	if status != http.StatusOK || state != string(pdce.CacheMiss) {
		t.Fatalf("corrupted-spill request: status %d, cache %q", status, state)
	}
	if !bytes.Equal(first, body) {
		t.Error("recomputed response differs from the pre-corruption original")
	}
	if m := s2.Cache().Metrics(); m.SpillCorrupt != 1 {
		t.Errorf("spill corrupt counter = %d, want 1", m.SpillCorrupt)
	}
	if s2.Stats().Optimizes() != 1 {
		t.Error("corrupted entry was served instead of recomputed")
	}
}

// TestBatchEndpoint: mixed batch with a parse failure; the second
// submission is served entirely from cache with no pool run.
func TestBatchEndpoint(t *testing.T) {
	s, _, client := startServer(t, server.Config{})
	_ = s
	req := pdce.BatchOptimizeRequest{
		Mode: "pde",
		Programs: []pdce.BatchProgram{
			{Name: "ok1", Source: demoSource},
			{Name: "broken", Source: "if { nope"},
			{Name: "ok2", Source: "x := a\nout(x)\n"},
		},
	}
	resp, err := client.OptimizeBatch(contextOK(t), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("%d results", len(resp.Results))
	}
	if resp.Results[1].ErrorKind != "parse" {
		t.Errorf("broken program: %+v", resp.Results[1])
	}
	if resp.Results[0].Cached || resp.Results[0].Program == "" || resp.Results[2].Program == "" {
		t.Errorf("fresh batch entries wrong: %+v, %+v", resp.Results[0], resp.Results[2])
	}
	if resp.Metrics == nil || resp.Metrics.Jobs != 2 {
		t.Errorf("batch metrics: %+v", resp.Metrics)
	}

	again, err := client.OptimizeBatch(contextOK(t), req)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Results[0].Cached || !again.Results[2].Cached {
		t.Errorf("second batch not cached: %+v, %+v", again.Results[0], again.Results[2])
	}
	if again.Metrics != nil {
		t.Errorf("fully-cached batch still ran a pool: %+v", again.Metrics)
	}
	if again.Results[0].Program != resp.Results[0].Program {
		t.Error("cached batch entry differs from the computed one")
	}
}

// TestExplainEndpoint: ?explain returns the provenance report and
// addresses a distinct cache entry from the plain request.
func TestExplainEndpoint(t *testing.T) {
	_, ts, _ := startServer(t, server.Config{})
	status, body, state := rawOptimize(t, ts.URL, "name=demo&explain=y", demoSource)
	if status != http.StatusOK || state != string(pdce.CacheMiss) {
		t.Fatalf("explain request: %d %q", status, state)
	}
	var resp pdce.OptimizeResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Explain, "y") {
		t.Errorf("explain text: %q", resp.Explain)
	}
	// A plain request for the same program is a different entry.
	_, _, state = rawOptimize(t, ts.URL, "name=demo", demoSource)
	if state != string(pdce.CacheMiss) {
		t.Errorf("plain request hit the explain entry (%q)", state)
	}
	// Repeating the explain request hits.
	_, _, state = rawOptimize(t, ts.URL, "name=demo&explain=y", demoSource)
	if state != string(pdce.CacheHit) {
		t.Errorf("repeated explain request: %q", state)
	}
}

// TestBadRequests: validation and parse failures answer 400 with
// structured kinds.
func TestBadRequests(t *testing.T) {
	_, ts, _ := startServer(t, server.Config{})
	for _, tc := range []struct {
		query, src, kind string
	}{
		{"mode=nonsense", "out(1)\n", "bad-request"},
		{"max_rounds=minus", "out(1)\n", "bad-request"},
		{"", "if { broken", "parse"},
		{"lang=cfg", "out(1)\n", "parse"}, // WHILE text forced through the CFG parser
	} {
		status, body, _ := rawOptimize(t, ts.URL, tc.query, tc.src)
		if status != http.StatusBadRequest {
			t.Errorf("%q/%q: status %d", tc.query, tc.src, status)
			continue
		}
		var se pdce.ServerError
		if err := json.Unmarshal(body, &se); err != nil || se.Kind != tc.kind {
			t.Errorf("%q/%q: kind %q (want %q), err %v", tc.query, tc.src, se.Kind, tc.kind, err)
		}
	}
}
