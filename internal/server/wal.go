package server

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"pdce/internal/faultinject"
)

// Write-ahead log of the durable job queue.
//
// The log is a single append-only file of framed records:
//
//	[4 bytes LE payload length][4 bytes LE CRC-32 (IEEE) of payload][payload]
//
// The payload is the JSON encoding of walRecord. Appends are offered
// to the OS in one write; records whose durability the caller promised
// (job submissions — the 202 is the promise) are fsync'd before the
// promise is made.
//
// Recovery distinguishes two corruption shapes:
//
//   - A torn tail — the file ends mid-frame, or the final frame's
//     length field points past EOF. This is the normal signature of a
//     crash between write and sync. The tail is quarantined: the file
//     is truncated back to the last whole record and replay proceeds
//     with everything before it.
//   - A corrupt record mid-file — the frame is whole but its checksum
//     or encoding is wrong (bit rot, a torn sector the tail heuristic
//     cannot see). The record is quarantined and skipped, and because
//     the frame length was intact, recovery resynchronizes and keeps
//     replaying the records after it.
//
// Both counts are surfaced through RecoverStats so /metrics can report
// what recovery had to discard.

// walRecord is one logged queue event. Op decides which fields are
// meaningful; unknown fields in old logs are ignored (JSON), so the
// format is forward-extensible.
type walRecord struct {
	// Op is the event: "submit", "start", "done", "fail", or "ack".
	Op string `json:"op"`
	// ID is the job's content address (Program.CacheKey), the key
	// every event of one job shares.
	ID string `json:"id"`

	// Submission payload (op=submit): everything needed to re-run the
	// job after a crash.
	Name      string `json:"name,omitempty"`
	Source    string `json:"source,omitempty"`
	Lang      string `json:"lang,omitempty"`
	Mode      string `json:"mode,omitempty"`
	MaxRounds int    `json:"max_rounds,omitempty"`
	Telemetry bool   `json:"telemetry,omitempty"`
	Trace     bool   `json:"trace,omitempty"`

	// Request-tracing identity (op=submit): the submitting request's
	// trace ID, its enqueue span, and its Pdce-Request-Id. Replayed
	// executions in a later process lifetime join the same trace and
	// link back to the enqueue span. Absent in pre-tracing logs
	// (JSON's unknown/missing-field tolerance keeps both directions
	// compatible).
	TraceID   string `json:"trace_id,omitempty"`
	SpanID    string `json:"span_id,omitempty"`
	RequestID string `json:"request_id,omitempty"`

	// Attempt accounting (op=start/fail).
	Attempts int    `json:"attempts,omitempty"`
	Error    string `json:"error,omitempty"`

	// Result payload (op=done): the serialized OptimizeResponse bytes,
	// stored verbatim so a replayed result is byte-identical to the
	// one first computed.
	Body     []byte `json:"body,omitempty"`
	Degraded bool   `json:"degraded,omitempty"`
}

// walMaxRecord bounds one record's payload; a length field beyond it
// is treated as a torn tail, not an allocation request.
const walMaxRecord = 64 << 20

// RecoverStats reports what WAL recovery found.
type RecoverStats struct {
	// Records is the number of intact records replayed.
	Records int
	// TornBytes is the size of the quarantined tail (0 = clean file);
	// CorruptRecords counts mid-file records skipped over a bad
	// checksum or encoding.
	TornBytes      int
	CorruptRecords int
}

// WAL is the open log. Methods are safe for concurrent use.
type WAL struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	size    int64 // bytes written (logical end of file)
	synced  int64 // bytes known durable (last successful fsync)
	records int64
}

// OpenWAL replays the log at path (created if missing), truncates any
// torn tail, and returns the open log positioned for append together
// with the replayed records.
func OpenWAL(path string) (*WAL, []walRecord, RecoverStats, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, RecoverStats{}, fmt.Errorf("queue wal: %w", err)
	}
	recs, keep, st := scanWAL(data)

	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, RecoverStats{}, fmt.Errorf("queue wal: %w", err)
	}
	if int64(keep) < int64(len(data)) {
		if err := f.Truncate(int64(keep)); err != nil {
			f.Close()
			return nil, nil, RecoverStats{}, fmt.Errorf("queue wal: quarantining torn tail: %w", err)
		}
	}
	if _, err := f.Seek(int64(keep), 0); err != nil {
		f.Close()
		return nil, nil, RecoverStats{}, fmt.Errorf("queue wal: %w", err)
	}
	w := &WAL{f: f, path: path, size: int64(keep), synced: int64(keep), records: int64(st.Records)}
	return w, recs, st, nil
}

// scanWAL walks the raw file bytes and returns the intact records, the
// prefix length to keep (everything before a torn tail), and the
// recovery statistics.
func scanWAL(data []byte) (recs []walRecord, keep int, st RecoverStats) {
	off := 0
	for {
		if len(data)-off < 8 {
			// A bare partial header (or clean EOF at off == len).
			st.TornBytes = len(data) - off
			return recs, off, st
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if n <= 0 || n > walMaxRecord || off+8+n > len(data) {
			// The frame points past EOF (or is nonsense): the write was
			// torn. Everything from here is quarantined.
			st.TornBytes = len(data) - off
			return recs, off, st
		}
		payload := append([]byte(nil), data[off+8:off+8+n]...)
		off += 8 + n
		faultinject.Fire(faultinject.QueueRecover, &payload)
		if crc32.ChecksumIEEE(payload) != sum {
			st.CorruptRecords++
			continue // the frame was whole: resync and keep replaying
		}
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil || rec.Op == "" || rec.ID == "" {
			st.CorruptRecords++
			continue
		}
		st.Records++
		recs = append(recs, rec)
	}
}

// Append logs one record. With sync true the record is fsync'd before
// Append returns — the caller may then acknowledge durability to its
// client. An append or sync error leaves the log usable but reports
// the record as not durable.
func (w *WAL) Append(rec walRecord, sync bool) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("queue wal: encoding record: %w", err)
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)
	// The torn-write seam: a hook may shorten the frame, modelling a
	// crash that let only part of the record reach the disk.
	faultinject.Fire(faultinject.QueueAppend, &frame)

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("queue wal: closed")
	}
	n, err := w.f.Write(frame)
	w.size += int64(n)
	if err != nil {
		return fmt.Errorf("queue wal: append: %w", err)
	}
	w.records++
	if !sync {
		return nil
	}
	return w.syncLocked()
}

// Sync fsyncs everything appended so far.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("queue wal: closed")
	}
	return w.syncLocked()
}

func (w *WAL) syncLocked() error {
	var ferr error
	faultinject.Fire(faultinject.QueueFsync, &ferr)
	if ferr == nil {
		ferr = w.f.Sync()
	}
	if ferr != nil {
		return fmt.Errorf("queue wal: fsync: %w", ferr)
	}
	w.synced = w.size
	return nil
}

// Size returns the logical log size in bytes; SyncedSize the prefix
// known durable (everything beyond it may vanish in a crash — the
// chaos harness truncates there to simulate one). Records is the
// lifetime record count including replayed ones.
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

func (w *WAL) SyncedSize() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.synced
}

func (w *WAL) Records() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records
}

// Close syncs and closes the log. A closed log rejects appends.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	serr := w.f.Sync()
	cerr := w.f.Close()
	w.f = nil
	if serr != nil {
		return serr
	}
	return cerr
}

// abandon closes the file descriptor without syncing — the crash
// simulation path (Queue.Kill): whatever the OS already took may
// survive, nothing else is promised.
func (w *WAL) abandon() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f != nil {
		w.f.Close()
		w.f = nil
	}
}

// rewriteWAL atomically replaces the log at path with a compacted
// snapshot of recs (temp file + fsync + rename), returning the opened
// result. Compaction runs at boot, after replay: acknowledged jobs are
// dropped and each surviving job collapses to at most two records, so
// the log stays proportional to the live job set instead of the
// lifetime event count.
func rewriteWAL(path string, recs []walRecord) (*WAL, error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "wal-compact-*")
	if err != nil {
		return nil, fmt.Errorf("queue wal: compact: %w", err)
	}
	defer os.Remove(tmp.Name())
	for _, rec := range recs {
		payload, err := json.Marshal(rec)
		if err != nil {
			tmp.Close()
			return nil, fmt.Errorf("queue wal: compact: %w", err)
		}
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
		if _, err := tmp.Write(hdr[:]); err == nil {
			_, err = tmp.Write(payload)
		}
		if err != nil {
			tmp.Close()
			return nil, fmt.Errorf("queue wal: compact: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return nil, fmt.Errorf("queue wal: compact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return nil, fmt.Errorf("queue wal: compact: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return nil, fmt.Errorf("queue wal: compact: %w", err)
	}
	w, _, _, err := OpenWAL(path)
	return w, err
}
