package server

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrQueueFull is returned by Admission.Acquire when both the work
// slots and the wait queue are exhausted — the load-shedding signal
// the HTTP layer maps to 429 with Retry-After.
var ErrQueueFull = errors.New("pdced: work queue full")

// Admission is the server's admission controller: at most maxInFlight
// requests hold a work slot at once, at most maxQueue more wait for
// one, and everything beyond that is shed immediately with
// ErrQueueFull. Shedding at admission keeps a saturated server
// responsive — rejecting a request costs microseconds, queueing it
// unboundedly costs memory and every client's latency.
//
// It implements batch.Gate, so a server-embedded batch run shares the
// same global budget as single requests instead of adding its own.
type Admission struct {
	slots    chan struct{}
	queued   atomic.Int64
	maxQueue int64
}

// NewAdmission builds a controller with the given bounds (minimums of
// one slot and zero queue are enforced).
func NewAdmission(maxInFlight, maxQueue int) *Admission {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Admission{
		slots:    make(chan struct{}, maxInFlight),
		maxQueue: int64(maxQueue),
	}
}

// Acquire obtains a work slot, waiting in the bounded queue when none
// is free. It returns ErrQueueFull when the queue is also full, or
// ctx.Err() when the caller gives up first. A nil return must be
// paired with exactly one Release.
func (a *Admission) Acquire(ctx context.Context) error {
	select {
	case a.slots <- struct{}{}:
		return nil
	default:
	}
	// No free slot: take a queue position or shed. The counter check
	// admits at most maxQueue waiters; transient over-admission is
	// impossible because the position is reserved (Add) before the
	// bound is compared.
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		return ErrQueueFull
	}
	defer a.queued.Add(-1)
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release frees a slot obtained by a successful Acquire.
func (a *Admission) Release() { <-a.slots }

// Depth reports the current load: requests holding a slot and requests
// waiting for one. Both are instantaneous snapshots.
func (a *Admission) Depth() (active, queued int) {
	return len(a.slots), int(a.queued.Load())
}

// Bounds reports the configured limits.
func (a *Admission) Bounds() (maxInFlight, maxQueue int) {
	return cap(a.slots), int(a.maxQueue)
}
