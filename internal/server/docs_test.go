package server

import (
	"os"
	"reflect"
	"regexp"
	"strings"
	"testing"

	"pdce"
)

// The wire reference must not drift from the implementation: every
// query parameter the handler parses and every field /metrics emits
// has to be documented. The test derives both sets from the source of
// truth — server.go for parameters, the pdce.ServerMetrics type for
// metrics — so adding one without documenting it fails ci.

// docsAPI loads docs/API.md relative to this package.
func docsAPI(t *testing.T) string {
	t.Helper()
	data, err := os.ReadFile("../../docs/API.md")
	if err != nil {
		t.Fatalf("reading docs/API.md: %v", err)
	}
	return string(data)
}

func TestDocsCoverQueryParams(t *testing.T) {
	// Every file that registers handlers: server.go owns the optimize
	// family and /metrics, trace.go the /debug/traces family.
	var src []byte
	for _, f := range []string{"server.go", "trace.go"} {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		src = append(src, data...)
	}
	// Both spellings the handlers use: q.Get("...") on a bound
	// url.Values and the inline r.URL.Query().Get("...").
	re := regexp.MustCompile(`\bQuery\(\)\.Get\("([^"]+)"\)|\bq\.Get\("([^"]+)"\)`)
	params := map[string]bool{}
	for _, m := range re.FindAllStringSubmatch(string(src), -1) {
		for _, g := range m[1:] {
			if g != "" {
				params[g] = true
			}
		}
	}
	if len(params) < 5 {
		t.Fatalf("found only %d query parameters in server.go — the extraction regex no longer matches the code", len(params))
	}
	doc := docsAPI(t)
	for p := range params {
		if !strings.Contains(doc, "`"+p+"`") {
			t.Errorf("query parameter %q is parsed by server.go but not documented in docs/API.md", p)
		}
	}
}

// jsonTags collects every json field name emitted by t, recursing
// through structs, embedded fields, pointers, and slices.
func jsonTags(t reflect.Type, into map[string]bool) {
	switch t.Kind() {
	case reflect.Pointer, reflect.Slice, reflect.Array, reflect.Map:
		jsonTags(t.Elem(), into)
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			tag := strings.Split(f.Tag.Get("json"), ",")[0]
			if tag == "-" {
				continue
			}
			if tag != "" {
				into[tag] = true
			}
			jsonTags(f.Type, into)
		}
	}
}

func TestDocsCoverMetricsFields(t *testing.T) {
	fields := map[string]bool{}
	jsonTags(reflect.TypeOf(pdce.ServerMetrics{}), fields)
	if len(fields) < 20 {
		t.Fatalf("found only %d /metrics fields — the reflection walk no longer reaches the snapshot types", len(fields))
	}
	doc := docsAPI(t)
	for f := range fields {
		if !strings.Contains(doc, "`"+f+"`") {
			t.Errorf("/metrics field %q is emitted by pdce.ServerMetrics but not documented in docs/API.md", f)
		}
	}
}
