package server

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
)

// testKey fabricates a distinct hex-shaped key landing on shard
// (i % cacheShards), padded to the hex-digest alphabet.
func testKey(i int) string {
	return fmt.Sprintf("%02x%062x", i%cacheShards, i)
}

func TestCacheLRUEviction(t *testing.T) {
	// One entry per shard: the second insert on a shard evicts the
	// first.
	c, err := NewCache(cacheShards, "")
	if err != nil {
		t.Fatal(err)
	}
	a := testKey(0)
	b := testKey(cacheShards) // same shard as a
	c.Put(a, []byte("alpha"))
	c.Put(b, []byte("beta"))
	if _, ok := c.Get(a); ok {
		t.Error("evicted entry still present")
	}
	if body, ok := c.Get(b); !ok || string(body) != "beta" {
		t.Errorf("survivor: %q %v", body, ok)
	}
	m := c.Metrics()
	if m.Evictions != 1 || m.Entries != 1 {
		t.Errorf("evictions=%d entries=%d, want 1/1", m.Evictions, m.Entries)
	}
}

func TestCacheRecencyOrder(t *testing.T) {
	c, _ := NewCache(cacheShards*2, "") // two per shard
	a, b, d := testKey(0), testKey(cacheShards), testKey(2*cacheShards)
	c.Put(a, []byte("a"))
	c.Put(b, []byte("b"))
	c.Get(a) // refresh a: b is now oldest
	c.Put(d, []byte("d"))
	if _, ok := c.Get(b); ok {
		t.Error("least-recently-used entry survived")
	}
	if _, ok := c.Get(a); !ok {
		t.Error("recently-used entry was evicted")
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c, _ := NewCache(256, "")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := testKey(i % 64)
				if body, ok := c.Get(k); ok {
					if string(body) != "v" {
						t.Errorf("goroutine %d read %q", g, body)
					}
				} else {
					c.Put(k, []byte("v"))
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestCacheSpillRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewCache(64, dir)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(7)
	c1.Put(k, []byte("persisted"))

	// A fresh cache over the same directory recovers the entry...
	c2, _ := NewCache(64, dir)
	body, ok := c2.Get(k)
	if !ok || string(body) != "persisted" {
		t.Fatalf("spill recovery: %q %v", body, ok)
	}
	if m := c2.Metrics(); m.SpillHits != 1 {
		t.Errorf("spill hits = %d, want 1", m.SpillHits)
	}
	// ...and the recovery repopulated memory: the next Get is a pure
	// memory hit.
	c2.Get(k)
	if m := c2.Metrics(); m.Hits != 1 {
		t.Errorf("memory hits after repopulation = %d, want 1", m.Hits)
	}
}

func TestCacheSpillCorruptionQuarantine(t *testing.T) {
	dir := t.TempDir()
	c, _ := NewCache(64, dir)
	k := testKey(3)
	c.Put(k, []byte("good"))

	// Corrupt the file on disk directly (no faultinject needed at this
	// layer), then look it up through a cold cache.
	path := c.spillPath(k)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	cold, _ := NewCache(64, dir)
	if _, ok := cold.Get(k); ok {
		t.Fatal("corrupted spill entry was served")
	}
	if m := cold.Metrics(); m.SpillCorrupt != 1 {
		t.Errorf("corrupt counter = %d, want 1", m.SpillCorrupt)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("corrupted file was not quarantined: %v", err)
	}
}

func TestCacheSpillTruncatedFile(t *testing.T) {
	dir := t.TempDir()
	c, _ := NewCache(64, dir)
	k := testKey(5)
	if err := os.WriteFile(c.spillPath(k), []byte("short"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(k); ok {
		t.Fatal("malformed spill entry was served")
	}
	if m := c.Metrics(); m.SpillCorrupt != 1 {
		t.Errorf("corrupt counter = %d, want 1", m.SpillCorrupt)
	}
}

func TestCacheSpillNoTempLeaks(t *testing.T) {
	dir := t.TempDir()
	c, _ := NewCache(64, dir)
	for i := 0; i < 20; i++ {
		c.Put(testKey(i), []byte(strings.Repeat("x", 100)))
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".entry") || strings.HasPrefix(e.Name(), "tmp-") {
			t.Errorf("stray spill file %s", e.Name())
		}
	}
	if len(ents) != 20 {
		t.Errorf("%d spill files, want 20", len(ents))
	}
}
