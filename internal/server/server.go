// Package server is the pdced optimization service: a long-running
// HTTP layer over the public pdce API that turns the transformation's
// determinism into throughput.
//
// The paper's result (Theorem 3.7) makes Optimize a pure function of
// (canonical program, options), so results are content-addressed
// (pdce.Program.CacheKey) and memoized in a sharded LRU with optional
// disk spill; concurrent identical requests are deduplicated by a
// singleflight layer so a thundering herd computes once. Capacity is
// guarded by admission control: a bounded number of in-flight
// optimizations, a bounded wait queue, and immediate load shedding
// (429 Retry-After) beyond that, while /healthz stays green — a full
// queue is policy, not ill health. Failure containment rides on
// pdce.SafeOptimize: contained panics answer 500 with the repro-bundle
// path and never poison the cache; watchdog/rollback degradations
// answer 200 with the best partial result, marked degraded and
// uncached. Graceful drain rejects new work with 503 while every
// in-flight request runs to completion.
//
// cmd/pdced wires this package to flags and signals; pdce.Client is
// the matching Go client.
package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"pdce"
	"pdce/internal/faultinject"
	"pdce/internal/obs"
	"pdce/internal/store"
)

// Config sizes one Server. The zero value is usable: every field has
// a sensible default applied by New.
type Config struct {
	// CacheEntries bounds the in-memory result cache (default 4096
	// entries across 16 shards); SpillDir, when non-empty, persists
	// results to disk so warm entries survive restarts.
	CacheEntries int
	SpillDir     string

	// MaxInFlight bounds concurrent optimizations (default
	// GOMAXPROCS); MaxQueue bounds requests waiting for a slot
	// (default 4×MaxInFlight). Beyond both, requests are shed with
	// 429.
	MaxInFlight int
	MaxQueue    int

	// DefaultDeadline bounds each optimization's wall clock when the
	// request does not set its own (0 = none); RoundBudget is the
	// per-round watchdog forwarded to the optimizer (0 = none). Both
	// map to the PR-2 containment layer: expiry degrades to the best
	// partial result rather than failing the request.
	DefaultDeadline time.Duration
	RoundBudget     time.Duration

	// ReproDir receives repro bundles for contained optimizer panics.
	ReproDir string

	// BatchWorkers is the pool size for /optimize/batch (default
	// MaxInFlight). The pool additionally acquires one admission slot
	// per job, so batches share the server-wide budget.
	BatchWorkers int

	// MaxBodyBytes caps request bodies (default 8 MiB).
	MaxBodyBytes int64

	// RetryAfter is the Retry-After hint on 429/503 responses in
	// seconds (default 1).
	RetryAfter int

	// QueueDir enables the durable async job queue (POST
	// /optimize/submit): accepted jobs are logged to a write-ahead log
	// under this directory, fsync'd before the 202, and replayed on
	// boot, so acknowledged submissions survive crash and redeploy.
	// Empty disables the async endpoints (they answer 503).
	QueueDir string
	// QueueRetries bounds the attempts per job before it is poisoned
	// (parked in the failed state; default 3). QueueWorkers sizes the
	// queue's worker pool (default 2). QueueBackoff/QueueMaxBackoff
	// shape the capped exponential retry delay (defaults 50ms / 2s).
	QueueRetries    int
	QueueWorkers    int
	QueueBackoff    time.Duration
	QueueMaxBackoff time.Duration

	// Store, when non-nil, is the shared L2 result store behind the
	// in-memory cache (see store.go): local misses consult it before
	// solving, local solves publish to it, and solve ownership for keys
	// no replica has published is arbitrated cluster-wide through TTL
	// leases over the same backend. StoreVersion prefixes every store
	// key (default pdce.CacheKeyVersion()), so replicas from different
	// builds sharing one store never serve each other's entries.
	Store        store.Backend
	StoreVersion string

	// LeaseTTL bounds how long a crashed replica's solve lease can
	// stall its key fleet-wide (default 3s); LeaseOwner identifies this
	// replica in lease records (default: random per boot — a restarted
	// replica must not inherit its predecessor's leases).
	LeaseTTL   time.Duration
	LeaseOwner string

	// PeerCache serves this replica's own cache under the store wire
	// contract (GET/PUT /cache/{key}), letting fleet members use each
	// other as L2 peers with no extra infrastructure.
	PeerCache bool

	// RequestHook, when non-nil, runs at the top of every admitted
	// /optimize request, before the cache is consulted. It is a test
	// and load-modelling hook — cluster benchmarks install one that
	// serializes a fixed per-node service cost so replica scaling is
	// measurable on a single machine — and is never set in production.
	RequestHook func(r *http.Request)

	// TraceCapacity bounds the in-process request-trace store (default
	// 512 traces; negative disables tracing entirely — requests then
	// pay one nil check per boundary and the /debug/traces surface
	// answers 503). TraceSample is the tail-sampling keep probability
	// for unremarkable traces in (0,1] (default 1 = keep all within
	// capacity); error, shed, and p99-slow traces are always kept.
	// TraceSeed fixes the sampling RNG for reproducible tests (0 =
	// wall clock).
	TraceCapacity int
	TraceSample   float64
	TraceSeed     int64
}

func (c Config) withDefaults() Config {
	if c.CacheEntries <= 0 {
		c.CacheEntries = 4096
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxInFlight
	}
	if c.BatchWorkers <= 0 {
		c.BatchWorkers = c.MaxInFlight
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 1
	}
	if c.QueueRetries <= 0 {
		c.QueueRetries = 3
	}
	if c.QueueWorkers <= 0 {
		c.QueueWorkers = 2
	}
	if c.QueueBackoff <= 0 {
		c.QueueBackoff = 50 * time.Millisecond
	}
	if c.QueueMaxBackoff <= 0 {
		c.QueueMaxBackoff = 2 * time.Second
	}
	if c.TraceCapacity == 0 {
		c.TraceCapacity = 512
	}
	if c.TraceSample == 0 {
		c.TraceSample = 1
	}
	if c.StoreVersion == "" {
		c.StoreVersion = pdce.CacheKeyVersion()
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 3 * time.Second
	}
	if c.LeaseOwner == "" {
		c.LeaseOwner = randomOwner()
	}
	return c
}

// Server is one pdced instance. Construct with New, expose with
// Handler, stop with Drain.
type Server struct {
	cfg    Config
	cache  *Cache
	adm    *Admission
	stats  *obs.ServerStats
	queue  *Queue          // nil when Config.QueueDir is empty
	traces *obs.TraceStore // nil when Config.TraceCapacity < 0

	// Shared L2 store state, nil/zero when Config.Store is nil.
	storeStats *obs.StoreStats
	lease      *store.Lease
	l2wg       sync.WaitGroup // in-flight async L2 puts

	flightMu sync.Mutex
	flight   map[string]*flightCall

	drainMu  sync.Mutex
	draining bool
	inflight sync.WaitGroup

	started time.Time
}

// New builds a server from cfg (zero fields defaulted).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	cache, err := NewCache(cfg.CacheEntries, cfg.SpillDir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		cache:   cache,
		adm:     NewAdmission(cfg.MaxInFlight, cfg.MaxQueue),
		stats:   &obs.ServerStats{},
		flight:  make(map[string]*flightCall),
		started: time.Now(),
	}
	if cfg.TraceCapacity > 0 {
		s.traces = obs.NewTraceStore(cfg.TraceCapacity, cfg.TraceSample, cfg.TraceSeed)
	}
	if cfg.Store != nil {
		s.storeStats = &obs.StoreStats{}
		s.lease = store.NewLease(cfg.Store, cfg.LeaseOwner, cfg.LeaseTTL, s.storeStats)
	}
	if cfg.QueueDir != "" {
		if s.queue, err = newQueue(s, cfg); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Stats exposes the request counters (tests and cmd/pdced logging).
func (s *Server) Stats() *obs.ServerStats { return s.stats }

// Cache exposes the result cache (tests).
func (s *Server) Cache() *Cache { return s.cache }

// Admission exposes the admission controller; it implements
// batch.Gate.
func (s *Server) Admission() *Admission { return s.adm }

// Queue exposes the durable job queue (nil when disabled). Tests and
// the chaos harness use it for crash simulation and gauge assertions.
func (s *Server) Queue() *Queue { return s.queue }

// Traces exposes the request-trace store (nil when tracing is
// disabled). Tests and the chaos harness query it directly.
func (s *Server) Traces() *obs.TraceStore { return s.traces }

// Handler returns the HTTP surface:
//
//	POST /optimize             body = program source; see handleOptimize
//	POST /optimize/batch       body = pdce.BatchOptimizeRequest JSON
//	POST /optimize/submit      async submission; see handleSubmit
//	GET  /optimize/result/{id} async job state; see handleResult
//	GET  /healthz              liveness: "ok", or "draining" with 503
//	GET  /metrics              pdce.ServerMetrics JSON (?format=prom
//	                           for Prometheus text exposition)
//	GET  /debug/traces         retained request traces, newest first
//	GET  /debug/traces/{id}    one trace's span tree
//	POST /debug/traces         span ingest (pool clients export here)
//
// Every response carries Pdce-Request-Id; traced requests additionally
// carry Pdce-Trace-Id and join the caller's traceparent when present.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /optimize", s.handleOptimize)
	mux.HandleFunc("POST /optimize/batch", s.handleBatch)
	mux.HandleFunc("POST /optimize/submit", s.handleSubmit)
	mux.HandleFunc("GET /optimize/result/{id}", s.handleResult)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/traces", s.handleTraces)
	mux.HandleFunc("GET /debug/traces/{id}", s.handleTraceByID)
	mux.HandleFunc("POST /debug/traces", s.handleTraceIngest)
	if s.cfg.PeerCache {
		mux.HandleFunc("GET /cache/{key}", s.handlePeerGet) // also HEAD
		mux.HandleFunc("PUT /cache/{key}", s.handlePeerPut)
		mux.HandleFunc("GET /stats", s.handlePeerStats)
	}
	return s.withObservability(mux)
}

// --- graceful drain ---------------------------------------------------

// enter registers one in-flight request, refusing once drain began.
func (s *Server) enter() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	if s.draining {
		return false
	}
	s.inflight.Add(1)
	return true
}

func (s *Server) exit() { s.inflight.Done() }

// Draining reports whether graceful shutdown has begun.
func (s *Server) Draining() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	return s.draining
}

// BeginDrain flips the server into drain mode: every subsequent
// optimize request is rejected with 503 and /healthz turns red, while
// requests already admitted keep running.
func (s *Server) BeginDrain() {
	s.drainMu.Lock()
	s.draining = true
	s.drainMu.Unlock()
}

// Drain begins drain mode and blocks until every in-flight request
// completed or ctx expired (in which case the remaining count keeps
// running; the caller decides whether to hard-stop). With the durable
// queue enabled, its running jobs are also drained — jobs still
// queued stay in the write-ahead log and resume on the next boot.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	wait := func(wg *sync.WaitGroup) error {
		done := make(chan struct{})
		go func() {
			wg.Wait()
			close(done)
		}()
		select {
		case <-done:
			return nil
		case <-ctx.Done():
			return fmt.Errorf("pdced: drain interrupted: %w", ctx.Err())
		}
	}
	if err := wait(&s.inflight); err != nil {
		return err
	}
	if s.queue != nil {
		if err := s.queue.Drain(ctx); err != nil {
			return err
		}
	}
	// Flush async L2 publishes before reporting drained. This must run
	// after the queue drain: queue workers call l2Put until Drain stops
	// them, and a WaitGroup Add racing an in-progress Wait is undefined.
	return wait(&s.l2wg)
}

// --- singleflight -----------------------------------------------------

type flightCall struct{ done chan struct{} }

// joinFlight registers interest in key. The first caller becomes the
// leader (and must leaveFlight when finished); followers receive the
// call to wait on.
func (s *Server) joinFlight(key string) (leader bool, c *flightCall) {
	s.flightMu.Lock()
	defer s.flightMu.Unlock()
	if c, ok := s.flight[key]; ok {
		return false, c
	}
	c = &flightCall{done: make(chan struct{})}
	s.flight[key] = c
	return true, c
}

func (s *Server) leaveFlight(key string, c *flightCall) {
	s.flightMu.Lock()
	delete(s.flight, key)
	s.flightMu.Unlock()
	close(c.done)
}

// --- handlers ---------------------------------------------------------

// handleOptimize serves one program. Query parameters: name, mode
// (pde|pfe), max_rounds, deadline_ms, telemetry, trace, explain, lang
// (cfg|while; default auto-detect). The body is the program source.
//
// Responses: 200 with pdce.OptimizeResponse (the X-Pdced-Cache header
// carries hit/miss/dedup; degraded partial results are 200 too, marked
// in the body and never cached), 400 for bad input, 429 when shed, 500
// for a contained optimizer panic, 503 when draining.
func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	s.stats.AddRequest()
	if !s.enter() {
		s.stats.AddShedDraining()
		s.httpError(w, http.StatusServiceUnavailable, "draining", "server is draining", "")
		return
	}
	defer s.exit()
	start := time.Now()
	defer func() { s.stats.RecordLatency(time.Since(start)) }()
	if s.cfg.RequestHook != nil {
		s.cfg.RequestHook(r)
	}
	sp := obs.SpanFromContext(r.Context())

	o, explain, perr := optionsFromQuery(r)
	if perr != "" {
		s.httpError(w, http.StatusBadRequest, "bad-request", perr, "")
		return
	}
	src, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "bad-request", "reading body: "+err.Error(), "")
		return
	}
	name := r.URL.Query().Get("name")
	if name == "" {
		name = "request"
	}
	prog, err := parseProgram(string(src), name, r.URL.Query().Get("lang"))
	if err != nil {
		s.stats.AddParseFailure()
		s.httpError(w, http.StatusBadRequest, "parse", err.Error(), "")
		return
	}

	key := requestKey(prog, o, explain)
	csp := sp.Child("server.cache")
	body, hit := s.cache.Get(key)
	if hit {
		csp.SetAttr("outcome", "hit")
	} else {
		csp.SetAttr("outcome", "miss")
	}
	csp.End()
	if hit {
		s.stats.AddCacheHit()
		s.serve(w, body, pdce.CacheHit)
		return
	}

	// Singleflight: concurrent identical requests compute once. A
	// follower waits for the leader and re-checks the cache; if the
	// leader failed (and so cached nothing), the follower computes for
	// itself below.
	leader, call := s.joinFlight(key)
	if !leader {
		wsp := sp.Child("server.flight.wait")
		select {
		case <-call.done:
			wsp.End()
		case <-r.Context().Done():
			wsp.SetError("canceled")
			wsp.End()
			s.httpError(w, http.StatusServiceUnavailable, "canceled", "client gave up waiting", "")
			return
		}
		if body, ok := s.cache.Get(key); ok {
			s.stats.AddDedup()
			s.serve(w, body, pdce.CacheDedup)
			return
		}
	} else {
		defer s.leaveFlight(key, call)
	}

	// Shared L2: another replica (or a past life of this one) may have
	// published the result already.
	if body, ok := s.l2Get(key, sp); ok {
		s.stats.AddCacheHit()
		s.serve(w, body, pdce.CacheHit)
		return
	}
	s.stats.AddCacheMiss()

	// Cluster singleflight: before solving, race the fleet for the
	// solve lease. A lost race waits out the winner and serves its
	// published result as a dedup; a won (or lease-less) race solves
	// below, releasing the lease once the result is published.
	fetched, release := s.l2Flight(r.Context(), key, sp)
	if fetched != nil {
		s.stats.AddDedup()
		s.serve(w, fetched, pdce.CacheDedup)
		return
	}
	published := false
	defer func() {
		if !published {
			release()
		}
	}()

	asp := sp.Child("server.admission")
	if err := s.adm.Acquire(r.Context()); err != nil {
		if errors.Is(err, ErrQueueFull) {
			asp.SetError("queue-full")
			asp.End()
			s.stats.AddShedQueueFull()
			s.httpError(w, http.StatusTooManyRequests, "queue-full",
				"server at capacity, retry later", "")
			return
		}
		asp.SetError("canceled")
		asp.End()
		s.httpError(w, http.StatusServiceUnavailable, "canceled", err.Error(), "")
		return
	}
	asp.End()
	defer s.adm.Release()
	faultinject.Fire(faultinject.ServerRequest, prog.Name())

	ctx := r.Context()
	if d := s.requestDeadline(r); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	o.Context = ctx
	o.RoundBudget = s.cfg.RoundBudget
	o.ReproDir = s.cfg.ReproDir
	o.RequestTag = requestIDFrom(r.Context())
	ssp := sp.Child("solve")
	o.Span = ssp

	s.stats.AddOptimize()
	opt, st, err := prog.SafeOptimize(o)
	if err != nil {
		ssp.SetError(errorKind(err))
	}
	ssp.End()
	resp := s.buildResponse(prog.Name(), key, o, opt, st, explain)
	switch {
	case err == nil:
		body, merr := json.Marshal(resp)
		if merr != nil {
			s.httpError(w, http.StatusInternalServerError, "internal", merr.Error(), "")
			return
		}
		s.cache.Put(key, body)
		s.l2Put(key, body, sp, release)
		published = true
		s.serve(w, body, pdce.CacheMiss)
	default:
		var pe *pdce.PanicError
		if errors.As(err, &pe) {
			// A contained panic: 500 with the repro-bundle path. The
			// cache was never touched, so the poisoned run cannot be
			// replayed to anyone.
			s.stats.AddPanic()
			s.httpError(w, http.StatusInternalServerError, "panic", err.Error(), pe.Bundle)
			return
		}
		// Watchdog or verified-mode degradation: the result is correct
		// but partial. Serve it marked degraded; never cache it.
		s.stats.AddDegraded()
		resp.Degraded = true
		resp.Error = err.Error()
		resp.ErrorKind = errorKind(err)
		body, merr := json.Marshal(resp)
		if merr != nil {
			s.httpError(w, http.StatusInternalServerError, "internal", merr.Error(), "")
			return
		}
		s.serve(w, body, pdce.CacheMiss)
	}
}

// handleBatch serves many programs in one request through the PR-1
// worker pool, gated per job by the server-wide admission controller.
// Cache hits skip the pool entirely; per-program failures (parse, shed,
// degraded, panic) are reported in their entries, so the call itself is
// 200 unless the request is malformed or the server is draining.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.stats.AddRequest()
	s.stats.AddBatchRequest()
	if !s.enter() {
		s.stats.AddShedDraining()
		s.httpError(w, http.StatusServiceUnavailable, "draining", "server is draining", "")
		return
	}
	defer s.exit()
	start := time.Now()
	defer func() { s.stats.RecordLatency(time.Since(start)) }()

	var breq pdce.BatchOptimizeRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err := dec.Decode(&breq); err != nil {
		s.httpError(w, http.StatusBadRequest, "bad-request", "decoding batch request: "+err.Error(), "")
		return
	}
	if len(breq.Programs) == 0 {
		s.httpError(w, http.StatusBadRequest, "bad-request", "empty batch", "")
		return
	}
	o := pdce.Options{MaxRounds: breq.MaxRounds, Telemetry: breq.Telemetry}
	// The batch's pool jobs trace as "batch.job" children of the
	// request's root span, one per cache miss.
	o.Span = obs.SpanFromContext(r.Context())
	o.RequestTag = requestIDFrom(r.Context())
	switch breq.Mode {
	case "", "pde":
		o.Mode = pdce.Dead
	case "pfe":
		o.Mode = pdce.Faint
	default:
		s.httpError(w, http.StatusBadRequest, "bad-request",
			fmt.Sprintf("unknown mode %q (want pde or pfe)", breq.Mode), "")
		return
	}

	entries := make([]pdce.BatchEntryResult, len(breq.Programs))
	var missIdx []int
	var missProgs []*pdce.Program
	for i, bp := range breq.Programs {
		name := bp.Name
		if name == "" {
			name = fmt.Sprintf("program-%d", i)
		}
		entries[i].Name = name
		entries[i].Mode = o.Mode.String()
		prog, err := parseProgram(bp.Source, name, "")
		if err != nil {
			s.stats.AddParseFailure()
			entries[i].Error = err.Error()
			entries[i].ErrorKind = "parse"
			continue
		}
		key := requestKey(prog, o, "")
		entries[i].Key = key
		if body, ok := s.cache.Get(key); ok {
			s.stats.AddCacheHit()
			var cached pdce.OptimizeResponse
			if json.Unmarshal(body, &cached) == nil {
				entries[i].OptimizeResponse = cached
				entries[i].Cached = true
				continue
			}
		}
		s.stats.AddCacheMiss()
		missIdx = append(missIdx, i)
		missProgs = append(missProgs, prog)
	}

	resp := pdce.BatchOptimizeResponse{}
	if len(missProgs) > 0 {
		ctx := r.Context()
		deadline := s.cfg.DefaultDeadline
		if breq.DeadlineMS > 0 {
			deadline = time.Duration(breq.DeadlineMS) * time.Millisecond
		}
		if deadline > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, deadline)
			defer cancel()
		}
		o.Context = ctx
		o.RoundBudget = s.cfg.RoundBudget
		o.ReproDir = s.cfg.ReproDir
		results, metrics := pdce.OptimizeAllGated(missProgs, o, s.cfg.BatchWorkers, nil, s.adm)
		resp.Metrics = &metrics
		for j, res := range results {
			i := missIdx[j]
			e := &entries[i]
			switch {
			case res.Err == nil:
				s.stats.AddOptimize()
				*e = pdce.BatchEntryResult{
					OptimizeResponse: s.buildResponse(res.Name, e.Key, o, res.Program, res.Stats, ""),
				}
				if body, merr := json.Marshal(e.OptimizeResponse); merr == nil {
					s.cache.Put(e.Key, body)
				}
			case errors.Is(res.Err, ErrQueueFull):
				s.stats.AddShedQueueFull()
				e.Shed = true
				e.Error = res.Err.Error()
				e.ErrorKind = "queue-full"
			default:
				if res.Program != nil {
					// Degraded but usable (watchdog stop, contained
					// panic returning the input): report it with the
					// error attached, uncached.
					s.stats.AddOptimize()
					s.stats.AddDegraded()
					*e = pdce.BatchEntryResult{
						OptimizeResponse: s.buildResponse(res.Name, e.Key, o, res.Program, res.Stats, ""),
					}
					e.Degraded = true
				}
				e.Error = res.Err.Error()
				e.ErrorKind = errorKind(res.Err)
			}
		}
	}
	resp.Results = entries
	body, err := json.Marshal(resp)
	if err != nil {
		s.httpError(w, http.StatusInternalServerError, "internal", err.Error(), "")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// handleSubmit accepts one program for asynchronous optimization.
// Query parameters match /optimize minus explain (provenance reports
// are interactive-only). The job ID is the program's content address,
// so resubmitting the same program is idempotent: a duplicate answers
// 202 with the existing job's state, and a program whose result is
// already cached answers 200 with state "done" without queueing
// anything.
//
// Responses: 202 with pdce.SubmitResponse once the submission is
// durably logged (fsync'd — the 202 is the durability promise), 200
// for an immediate cache hit, 400 for bad input, 500 when the log
// cannot be written, 503 when draining or the queue is disabled.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	s.stats.AddRequest()
	if s.queue == nil {
		s.httpError(w, http.StatusServiceUnavailable, "queue-disabled",
			"async queue is disabled (no -queue-dir)", "")
		return
	}
	if !s.enter() {
		s.stats.AddShedDraining()
		s.httpError(w, http.StatusServiceUnavailable, "draining", "server is draining", "")
		return
	}
	defer s.exit()
	start := time.Now()
	defer func() { s.stats.RecordLatency(time.Since(start)) }()

	o, explain, perr := optionsFromQuery(r)
	if perr != "" {
		s.httpError(w, http.StatusBadRequest, "bad-request", perr, "")
		return
	}
	if explain != "" {
		s.httpError(w, http.StatusBadRequest, "bad-request",
			"explain is not supported on async submissions", "")
		return
	}
	src, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "bad-request", "reading body: "+err.Error(), "")
		return
	}
	name := r.URL.Query().Get("name")
	if name == "" {
		name = "request"
	}
	lang := r.URL.Query().Get("lang")
	prog, err := parseProgram(string(src), name, lang)
	if err != nil {
		s.stats.AddParseFailure()
		s.httpError(w, http.StatusBadRequest, "parse", err.Error(), "")
		return
	}

	sp := obs.SpanFromContext(r.Context())
	key := requestKey(prog, o, "")
	if _, ok := s.cache.Get(key); ok {
		// Already computed: answer done without consuming queue space.
		s.stats.AddCacheHit()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(pdce.SubmitResponse{ID: key, State: pdce.JobDone, Cached: true, TraceID: sp.TraceID()})
		return
	}

	state, dup, err := s.queue.Submit(key, prog.Name(), string(src), lang, o, sp, requestIDFrom(r.Context()))
	if err != nil {
		s.httpError(w, http.StatusInternalServerError, "queue",
			"submission not accepted: "+err.Error(), "")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(pdce.SubmitResponse{ID: key, State: state, Duplicate: dup, TraceID: sp.TraceID()})
}

// handleResult reports one async job's state. The ack query parameter
// (1/true) acknowledges a terminal job: it is dropped from the queue's
// table and freed at the next log compaction. A job unknown to the
// queue (acked, or submitted before a cache-purging restart) still
// answers done when its result is in the content-addressed cache.
//
// Responses: 200 with pdce.JobResult, 404 for an unknown ID, 503 when
// the queue is disabled.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	s.stats.AddRequest()
	if s.queue == nil {
		s.httpError(w, http.StatusServiceUnavailable, "queue-disabled",
			"async queue is disabled (no -queue-dir)", "")
		return
	}
	id := r.PathValue("id")
	ackParam := r.URL.Query().Get("ack")
	ack := ackParam == "1" || ackParam == "true"
	res, ok := s.queue.Result(id, ack)
	if !ok {
		if body, hit := s.cache.Get(id); hit {
			s.stats.AddCacheHit()
			res = pdce.JobResult{ID: id, State: pdce.JobDone, Result: body}
		} else {
			s.httpError(w, http.StatusNotFound, "not-found", "unknown job id", "")
			return
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(res)
}

// handleHealthz is the liveness probe. It stays green under load
// shedding (a full queue is capacity policy) and turns 503 "draining"
// once graceful shutdown begins, so load balancers stop routing here.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.Draining() {
		w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfter))
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(pdce.HealthResponse{Status: "draining"})
		return
	}
	json.NewEncoder(w).Encode(pdce.HealthResponse{Status: "ok"})
}

// handleMetrics serves the merged observability snapshot. The format
// query parameter selects the encoding: JSON (default) or "prom", the
// Prometheus text exposition of the same snapshot (every numeric field
// becomes a pdce_-prefixed gauge), so operators can scrape pdced
// without a sidecar.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	active, queued := s.adm.Depth()
	maxInFlight, maxQueue := s.adm.Bounds()
	m := pdce.ServerMetrics{
		Server: s.stats.Snapshot(),
		Cache:  s.cache.Metrics(),
		Queue: pdce.QueueMetrics{
			Active:      active,
			Queued:      queued,
			MaxInFlight: maxInFlight,
			MaxQueue:    maxQueue,
			Draining:    s.Draining(),
		},
		UptimeMS: time.Since(s.started).Milliseconds(),
	}
	if s.queue != nil {
		snap := s.queue.Snapshot()
		m.JobQueue = &snap
	}
	if s.traces != nil {
		snap := s.traces.Snapshot()
		m.Traces = &snap
	}
	m.Store = s.storeSnapshot()
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(m)
	case "prom":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.WriteProm(w, "pdce", m)
	default:
		s.httpError(w, http.StatusBadRequest, "bad-request",
			fmt.Sprintf("unknown format %q (want json or prom)", format), "")
	}
}

// --- plumbing ---------------------------------------------------------

// buildResponse assembles the wire result for one optimized program.
func (s *Server) buildResponse(name, key string, o pdce.Options, opt *pdce.Program, st pdce.Stats, explain string) pdce.OptimizeResponse {
	resp := pdce.OptimizeResponse{
		Name:    name,
		Key:     key,
		Mode:    o.Mode.String(),
		Program: opt.Format(),
		Listing: opt.String(),
		Stats:   st,
	}
	if explain != "" {
		resp.Explain = pdce.FormatExplain(explain, pdce.Explain(st.Telemetry, explain))
	}
	return resp
}

// serve writes a stored response body with its cache state header.
func (s *Server) serve(w http.ResponseWriter, body []byte, state pdce.CacheState) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Pdced-Cache", string(state))
	w.Write(body)
}

// httpError writes the structured error body (pdce.ServerError wire
// shape) plus Retry-After on shedding statuses.
func (s *Server) httpError(w http.ResponseWriter, status int, kind, msg, bundle string) {
	w.Header().Set("Content-Type", "application/json")
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfter))
	}
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(pdce.ServerError{Kind: kind, Message: msg, ReproBundle: bundle})
}

// requestDeadline resolves the per-request deadline: the deadline_ms
// query parameter, else the server default.
func (s *Server) requestDeadline(r *http.Request) time.Duration {
	if v := r.URL.Query().Get("deadline_ms"); v != "" {
		if ms, err := strconv.ParseInt(v, 10, 64); err == nil && ms > 0 {
			return time.Duration(ms) * time.Millisecond
		}
	}
	return s.cfg.DefaultDeadline
}

// optionsFromQuery maps query parameters to pdce.Options; the string
// return is a user-facing validation error ("" = ok).
func optionsFromQuery(r *http.Request) (o pdce.Options, explain string, perr string) {
	q := r.URL.Query()
	switch q.Get("mode") {
	case "", "pde":
		o.Mode = pdce.Dead
	case "pfe":
		o.Mode = pdce.Faint
	default:
		return o, "", fmt.Sprintf("unknown mode %q (want pde or pfe)", q.Get("mode"))
	}
	if v := q.Get("max_rounds"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return o, "", fmt.Sprintf("bad max_rounds %q", v)
		}
		o.MaxRounds = n
	}
	o.Telemetry = q.Get("telemetry") == "1" || q.Get("telemetry") == "true"
	o.Trace = q.Get("trace") == "1" || q.Get("trace") == "true"
	explain = q.Get("explain")
	if explain != "" {
		o.Trace = true // the provenance report needs the event stream
	}
	return o, explain, ""
}

// parseProgram mirrors cmd/pdce's front end: lang forces the language,
// otherwise the CFG format's keywords are sniffed.
func parseProgram(src, name, lang string) (*pdce.Program, error) {
	if lang == "" {
		lang = pdce.DetectLang(src)
	}
	switch lang {
	case "cfg":
		return pdce.ParseCFG(src)
	case "while":
		return pdce.ParseSource(name, src)
	default:
		return nil, fmt.Errorf("unknown lang %q (want cfg or while)", lang)
	}
}

// requestKey derives the cache key for one request: the program's
// content address, further hashed with the explain variable when one
// is requested (explain selects a different response body from the
// same telemetry, so it must address a distinct entry).
func requestKey(prog *pdce.Program, o pdce.Options, explain string) string {
	key := prog.CacheKey(o)
	if explain == "" {
		return key
	}
	h := sha256.Sum256([]byte(key + "|explain=" + explain))
	return hex.EncodeToString(h[:])
}

// errorKind classifies a degraded result's error for the wire.
func errorKind(err error) string {
	switch {
	case errors.Is(err, pdce.ErrDeadline):
		return "deadline"
	case errors.Is(err, pdce.ErrMiscompile):
		return "miscompile"
	case errors.Is(err, pdce.ErrPanic):
		return "panic"
	default:
		return "error"
	}
}
