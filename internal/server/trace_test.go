package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pdce"
	"pdce/internal/faultinject"
	"pdce/internal/server"
)

const (
	testTraceID = "0123456789abcdef0123456789abcdef"
	testSpanID  = "00f067aa0ba902b7"
)

// spanNames collects the stage names of a dump for containment checks.
func spanNames(dump pdce.TraceDump) map[string]int {
	out := map[string]int{}
	for _, s := range dump.Spans {
		out[s.Name]++
	}
	return out
}

func getTrace(t *testing.T, base, id string) pdce.TraceDump {
	t.Helper()
	resp, err := http.Get(base + "/debug/traces/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/traces/%s: %d %s", id, resp.StatusCode, body)
	}
	var dump pdce.TraceDump
	if err := json.Unmarshal(body, &dump); err != nil {
		t.Fatal(err)
	}
	return dump
}

// TestRequestIDOnEveryResponse: the Pdce-Request-Id header appears on
// success, on client errors, and on drain rejections — the paths a
// debugging operator most needs to correlate.
func TestRequestIDOnEveryResponse(t *testing.T) {
	s, ts, _ := startServer(t, server.Config{})

	// Minted when absent.
	status, _, _ := rawOptimize(t, ts.URL, "name=demo", demoSource)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	resp, err := http.Post(ts.URL+"/optimize", "text/plain", strings.NewReader(demoSource))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rid := resp.Header.Get("Pdce-Request-Id"); rid == "" {
		t.Error("200 response missing Pdce-Request-Id")
	}

	// Echoed when the caller supplies a sane one.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/optimize", strings.NewReader(demoSource))
	req.Header.Set("Pdce-Request-Id", "caller-id-42")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rid := resp.Header.Get("Pdce-Request-Id"); rid != "caller-id-42" {
		t.Errorf("echoed id = %q, want caller-id-42", rid)
	}

	// Replaced when the caller's id is header-unsafe.
	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/optimize", strings.NewReader(demoSource))
	req.Header.Set("Pdce-Request-Id", "evil id\twith spaces")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rid := resp.Header.Get("Pdce-Request-Id"); rid == "" || strings.Contains(rid, " ") {
		t.Errorf("unsafe id passed through: %q", rid)
	}

	// Present on a 400 parse failure.
	resp, err = http.Post(ts.URL+"/optimize", "text/plain", strings.NewReader("x := (((\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || resp.Header.Get("Pdce-Request-Id") == "" {
		t.Errorf("400 path: status %d, rid %q", resp.StatusCode, resp.Header.Get("Pdce-Request-Id"))
	}

	// Present on the 503 drain rejection.
	s.BeginDrain()
	resp, err = http.Post(ts.URL+"/optimize", "text/plain", strings.NewReader(demoSource))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Pdce-Request-Id") == "" {
		t.Errorf("503 drain path: status %d, rid %q", resp.StatusCode, resp.Header.Get("Pdce-Request-Id"))
	}
}

// TestTraceJoinAndSpanTree: a request carrying a W3C traceparent joins
// that trace, and the stored tree covers admission, cache, and solver.
func TestTraceJoinAndSpanTree(t *testing.T) {
	_, ts, _ := startServer(t, server.Config{TraceSeed: 1})

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/optimize?name=demo", strings.NewReader(demoSource))
	req.Header.Set("Traceparent", "00-"+testTraceID+"-"+testSpanID+"-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Pdce-Trace-Id"); got != testTraceID {
		t.Fatalf("Pdce-Trace-Id = %q, want the joined trace %q", got, testTraceID)
	}

	dump := getTrace(t, ts.URL, testTraceID)
	names := spanNames(dump)
	for _, want := range []string{"server.optimize", "server.cache", "server.admission", "solve", "solve.round", "solve.eliminate", "solve.sink"} {
		if names[want] == 0 {
			t.Errorf("trace missing span %q (have %v)", want, names)
		}
	}
	var root pdce.SpanRecord
	for _, sp := range dump.Spans {
		if sp.Name == "server.optimize" {
			root = sp
		}
	}
	if root.ParentID != testSpanID {
		t.Errorf("server root parent = %q, want the caller's span %q", root.ParentID, testSpanID)
	}
	if root.Attrs["status"] != "200" || root.Attrs["request_id"] == "" {
		t.Errorf("root attrs = %v", root.Attrs)
	}
	if root.Service != "pdced" {
		t.Errorf("root service = %q", root.Service)
	}

	// Cache outcome recorded: first request is a miss, second a hit
	// with a new trace.
	var cache pdce.SpanRecord
	for _, sp := range dump.Spans {
		if sp.Name == "server.cache" {
			cache = sp
		}
	}
	if cache.Attrs["outcome"] != "miss" {
		t.Errorf("first request cache outcome = %q", cache.Attrs["outcome"])
	}

	resp2, err := http.Post(ts.URL+"/optimize?name=demo", "text/plain", strings.NewReader(demoSource))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	id2 := resp2.Header.Get("Pdce-Trace-Id")
	if id2 == "" || id2 == testTraceID {
		t.Fatalf("second request trace id = %q", id2)
	}
	dump2 := getTrace(t, ts.URL, id2)
	names2 := spanNames(dump2)
	if names2["solve"] != 0 {
		t.Error("cache hit ran a solve span")
	}
	found := false
	for _, sp := range dump2.Spans {
		if sp.Name == "server.cache" && sp.Attrs["outcome"] == "hit" {
			found = true
		}
	}
	if !found {
		t.Errorf("cache-hit trace lacks a hit-outcome cache span: %+v", dump2.Spans)
	}
}

// TestTraceErrorAlwaysKept: with a near-zero sample rate, an OK trace
// is dropped but a failed request's trace survives (tail sampling).
func TestTraceErrorAlwaysKept(t *testing.T) {
	_, ts, _ := startServer(t, server.Config{TraceSample: 1e-12, TraceSeed: 7})

	resp, err := http.Post(ts.URL+"/optimize?name=demo", "text/plain", strings.NewReader(demoSource))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	okID := resp.Header.Get("Pdce-Trace-Id")
	if r2, err := http.Get(ts.URL + "/debug/traces/" + okID); err != nil {
		t.Fatal(err)
	} else {
		r2.Body.Close()
		if r2.StatusCode != http.StatusNotFound {
			t.Fatalf("unremarkable trace retained at sample=1e-12 (status %d)", r2.StatusCode)
		}
	}

	resp, err = http.Post(ts.URL+"/optimize", "text/plain", strings.NewReader("x := (((\n"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("parse failure status %d", resp.StatusCode)
	}
	dump := getTrace(t, ts.URL, resp.Header.Get("Pdce-Trace-Id"))
	var root pdce.SpanRecord
	for _, sp := range dump.Spans {
		if sp.Name == "server.optimize" {
			root = sp
		}
	}
	if root.Error != "http-400" {
		t.Errorf("error class = %q, want http-400", root.Error)
	}
}

// TestTraceDisabled: negative capacity turns the subsystem off — no
// trace header, 503 from the debug surface, request ids still flowing.
func TestTraceDisabled(t *testing.T) {
	_, ts, _ := startServer(t, server.Config{TraceCapacity: -1})
	resp, err := http.Post(ts.URL+"/optimize?name=demo", "text/plain", strings.NewReader(demoSource))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.Header.Get("Pdce-Trace-Id") != "" {
		t.Error("trace header with tracing disabled")
	}
	if resp.Header.Get("Pdce-Request-Id") == "" {
		t.Error("request id missing with tracing disabled")
	}
	for _, path := range []string{"/debug/traces", "/debug/traces/" + testTraceID} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("GET %s with tracing off: %d, want 503", path, r.StatusCode)
		}
	}
}

// TestTraceListingAndLimit covers GET /debug/traces pagination.
func TestTraceListingAndLimit(t *testing.T) {
	_, ts, _ := startServer(t, server.Config{})
	for i := 0; i < 3; i++ {
		status, _, _ := rawOptimize(t, ts.URL, "name=demo", demoSource)
		if status != http.StatusOK {
			t.Fatalf("status %d", status)
		}
	}
	resp, err := http.Get(ts.URL + "/debug/traces?limit=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list pdce.TraceList
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Traces) != 2 {
		t.Fatalf("limit=2 returned %d traces", len(list.Traces))
	}
	for _, tr := range list.Traces {
		if tr.Root != "server.optimize" || tr.Spans == 0 {
			t.Errorf("summary = %+v", tr)
		}
	}
	r, err := http.Get(ts.URL + "/debug/traces?limit=bogus")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("bad limit: status %d", r.StatusCode)
	}
}

// TestTraceIngest: externally recorded spans (the pool's side) merge
// into the store via POST /debug/traces.
func TestTraceIngest(t *testing.T) {
	_, ts, _ := startServer(t, server.Config{})
	recs := []pdce.SpanRecord{{
		TraceID:     testTraceID,
		SpanID:      testSpanID,
		Name:        "client.request",
		Service:     "pool",
		StartUnixNS: 1,
		DurationNS:  10,
	}}
	body, _ := json.Marshal(recs)
	resp, err := http.Post(ts.URL+"/debug/traces", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]int
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["ingested"] != 1 {
		t.Fatalf("ingested = %d", out["ingested"])
	}
	dump := getTrace(t, ts.URL, testTraceID)
	if len(dump.Spans) != 1 || dump.Spans[0].Service != "pool" {
		t.Fatalf("ingested dump = %+v", dump)
	}

	r, err := http.Post(ts.URL+"/debug/traces", "application/json", strings.NewReader("not json"))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage ingest: status %d", r.StatusCode)
	}
}

// TestMetricsPromFormat: ?format=prom renders the whole ServerMetrics
// surface as Prometheus gauges; unknown formats answer 400.
func TestMetricsPromFormat(t *testing.T) {
	_, ts, _ := startServer(t, server.Config{})
	if status, _, _ := rawOptimize(t, ts.URL, "name=demo", demoSource); status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	resp, err := http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"# TYPE pdce_server_requests gauge",
		"pdce_server_requests 1",
		"pdce_server_optimizes 1",
		"pdce_cache_entries",
		"pdce_traces_kept",
		`pdce_traces_stages_count{key="server.optimize"}`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("prom output missing %q", want)
		}
	}
	// JSON by default and under format=json; 400 otherwise.
	for q, wantStatus := range map[string]int{"": 200, "?format=json": 200, "?format=xml": 400} {
		r, err := http.Get(ts.URL + "/metrics" + q)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != wantStatus {
			t.Errorf("GET /metrics%s: %d, want %d", q, r.StatusCode, wantStatus)
		}
	}
}

// TestReproBundleCarriesRequestID: the repro bundle a contained panic
// writes is findable from the failing response's Pdce-Request-Id — the
// operator's path from a 500 to its replay input.
func TestReproBundleCarriesRequestID(t *testing.T) {
	reproDir := t.TempDir()
	_, ts, _ := startServer(t, server.Config{ReproDir: reproDir})
	restore := faultinject.Set(func(p faultinject.Point, _ any) {
		if p == faultinject.EliminatePhase {
			panic("injected optimizer fault")
		}
	})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/optimize?name=demo", strings.NewReader(demoSource))
	req.Header.Set("Pdce-Request-Id", "trace-me-123")
	resp, err := http.DefaultClient.Do(req)
	restore()
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d %s", resp.StatusCode, body)
	}
	var se pdce.ServerError
	if err := json.Unmarshal(body, &se); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(filepath.Base(se.ReproBundle), "trace-me-123") {
		t.Errorf("bundle %q does not carry the request id", se.ReproBundle)
	}
	// The 500's trace is an always-keep with the panic visible.
	dump := getTrace(t, ts.URL, resp.Header.Get("Pdce-Trace-Id"))
	var solve pdce.SpanRecord
	for _, sp := range dump.Spans {
		if sp.Name == "solve" {
			solve = sp
		}
	}
	if solve.Error != "panic" {
		t.Errorf("solve span error = %q, want panic", solve.Error)
	}
}

// TestQueueTraceSpans: the async path hangs its queue spans off the
// submission root — enqueue and WAL-fsync as children, and the
// worker's execute span as a later root joining the same trace.
func TestQueueTraceSpans(t *testing.T) {
	cfg := queueConfig(t)
	s, ts, c := startServer(t, cfg)
	defer s.Drain(context.Background())

	sub, err := c.Submit(context.Background(), "qtrace", demoSource, pdce.RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sub.TraceID == "" {
		t.Fatalf("submit receipt carries no trace id: %+v", sub)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := c.Poll(ctx, sub.ID, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.State != pdce.JobDone {
		t.Fatalf("job state %q error %q", res.State, res.Error)
	}
	if res.TraceID != sub.TraceID {
		t.Fatalf("poll trace id %q, want submission's %q", res.TraceID, sub.TraceID)
	}

	// The execute span ends just after the done state becomes
	// pollable, so wait for it rather than racing the worker.
	names := waitForSpan(t, ts.URL, sub.TraceID, "queue.execute")
	for _, n := range []string{"server.optimize.submit", "queue.enqueue", "queue.wal.fsync", "queue.execute", "solve"} {
		if names[n] == 0 {
			t.Errorf("trace missing span %q: %v", n, names)
		}
	}
}

// waitForSpan polls a trace until the named span appears (the worker
// publishes the done state slightly before ending its span).
func waitForSpan(t *testing.T, base, traceID, span string) map[string]int {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		names := spanNames(getTrace(t, base, traceID))
		if names[span] > 0 || time.Now().After(deadline) {
			return names
		}
		time.Sleep(time.Millisecond)
	}
}

// TestQueueReplayTraceLink is the restart contract: a job that was
// in flight when the process died replays under its ORIGINAL trace id
// (read back from the WAL), and its execute span carries an explicit
// link to the pre-crash submission so the two lifetimes join.
func TestQueueReplayTraceLink(t *testing.T) {
	cfg := queueConfig(t)
	cfg.QueueWorkers = 1

	// Block the solver once job A starts, so its "start" record is in
	// the log buffer; job B's synchronous submit append then fsyncs it
	// into the durable prefix.
	started := make(chan struct{})
	block := make(chan struct{})
	var once sync.Once
	restore := faultinject.Set(func(p faultinject.Point, _ any) {
		if p == faultinject.SolverVisit {
			once.Do(func() { close(started) })
			<-block
		}
	})

	s, _, c := startServer(t, cfg)
	subA, err := c.Submit(context.Background(), "replay-a", demoSource, pdce.RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if subA.TraceID == "" {
		t.Fatal("submission minted no trace id")
	}
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("worker never started job A")
	}
	if _, err := c.Submit(context.Background(), "replay-b", "x := 1\nout(x)", pdce.RequestOptions{}); err != nil {
		t.Fatal(err)
	}

	// Crash while A is mid-run. Kill joins the workers, so the solver
	// must be released for it to return; any record the released run
	// appends after this point lands past the captured durable prefix
	// and is chopped off by the truncate.
	q := s.Queue()
	synced := q.WALSyncedSize()
	killed := make(chan struct{})
	go func() { q.Kill(); close(killed) }()
	close(block)
	<-killed
	restore()
	if err := truncateFile(q.WALPath(), synced); err != nil {
		t.Fatal(err)
	}

	s2, ts2, c2 := startServer(t, cfg)
	defer s2.Drain(context.Background())
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := c2.Poll(ctx, subA.ID, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.State != pdce.JobDone {
		t.Fatalf("job A after replay: state %q error %q", res.State, res.Error)
	}
	if res.TraceID != subA.TraceID {
		t.Fatalf("replayed job reports trace %q, want the WAL-persisted %q", res.TraceID, subA.TraceID)
	}

	waitForSpan(t, ts2.URL, res.TraceID, "queue.execute")
	dump := getTrace(t, ts2.URL, res.TraceID)
	var linked bool
	for _, sp := range dump.Spans {
		if sp.Name != "queue.execute" {
			continue
		}
		if sp.Attrs["replayed"] != "true" {
			t.Fatalf("execute span not marked replayed: %+v", sp)
		}
		if sp.LinkTraceID != res.TraceID || sp.LinkSpanID == "" {
			t.Fatalf("execute span link broken: %+v", sp)
		}
		linked = true
	}
	if !linked {
		t.Fatalf("no queue.execute span in replayed trace: %v", spanNames(dump))
	}
}
