package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"pdce"
	"pdce/internal/faultinject"
	"pdce/internal/store"
)

// Cache is the content-addressed result cache: key (Program.CacheKey)
// → the exact serialized response bytes that answered the first
// request, so every hit is byte-identical to the miss that filled it.
//
// Layout: a fixed set of shards, each an independent mutex + LRU list,
// so concurrent lookups on different keys rarely contend; the shard is
// the key's first byte (the key is a hex SHA-256, uniformly
// distributed by construction). An optional disk-spill directory makes
// warm results survive restarts: every Put also writes a
// checksummed file, and an in-memory miss consults the directory
// before reporting a miss. Spill entries are verified on load — a
// corrupted file (detected via SHA-256, exercised through the
// faultinject.ServerCacheLoad seam) is quarantined (removed) and
// treated as a miss, never served.
type Cache struct {
	shards   [cacheShards]cacheShard
	perShard int
	spillDir string

	hits         atomic.Int64
	misses       atomic.Int64
	evictions    atomic.Int64
	spillHits    atomic.Int64
	spillCorrupt atomic.Int64
	spillSwept   atomic.Int64
}

const cacheShards = 16

type cacheShard struct {
	mu    sync.Mutex
	order *list.List               // front = most recent; values are *cacheEntry
	byKey map[string]*list.Element // key → element in order
}

type cacheEntry struct {
	key  string
	body []byte
}

// NewCache builds a cache holding at most entries results in memory
// (minimum one per shard), spilling to spillDir when non-empty (the
// directory is created if missing).
func NewCache(entries int, spillDir string) (*Cache, error) {
	per := entries / cacheShards
	if per < 1 {
		per = 1
	}
	c := &Cache{perShard: per, spillDir: spillDir}
	for i := range c.shards {
		c.shards[i].order = list.New()
		c.shards[i].byKey = make(map[string]*list.Element)
	}
	if spillDir != "" {
		if err := os.MkdirAll(spillDir, 0o755); err != nil {
			return nil, fmt.Errorf("cache spill dir: %w", err)
		}
		// A crash between CreateTemp and Rename leaves tmp-* orphans
		// that no future write ever reclaims; sweep them at boot so the
		// directory cannot accrete litter across restarts.
		c.spillSwept.Store(int64(store.SweepTemps(spillDir)))
	}
	return c, nil
}

func (c *Cache) shard(key string) *cacheShard {
	if key == "" {
		return &c.shards[0]
	}
	return &c.shards[key[0]%cacheShards]
}

// Get returns the stored response for key, consulting memory first and
// the spill directory second (a spill hit repopulates memory). The
// returned slice is shared — callers must not mutate it.
func (c *Cache) Get(key string) ([]byte, bool) {
	s := c.shard(key)
	s.mu.Lock()
	if el, ok := s.byKey[key]; ok {
		s.order.MoveToFront(el)
		body := el.Value.(*cacheEntry).body
		s.mu.Unlock()
		c.hits.Add(1)
		return body, true
	}
	s.mu.Unlock()

	if body, ok := c.loadSpill(key); ok {
		c.spillHits.Add(1)
		c.putMemory(key, body)
		return body, true
	}
	c.misses.Add(1)
	return nil, false
}

// Put stores the response bytes for key in memory and, when a spill
// directory is configured, on disk. The caller must not mutate body
// afterwards.
func (c *Cache) Put(key string, body []byte) {
	c.putMemory(key, body)
	c.writeSpill(key, body)
}

func (c *Cache) putMemory(key string, body []byte) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.byKey[key]; ok {
		// Same key, same content by construction; just refresh recency.
		s.order.MoveToFront(el)
		return
	}
	s.byKey[key] = s.order.PushFront(&cacheEntry{key: key, body: body})
	for s.order.Len() > c.perShard {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.byKey, oldest.Value.(*cacheEntry).key)
		c.evictions.Add(1)
	}
}

// Peek returns the stored response for key without touching the
// hit/miss counters or LRU recency: the peer-serving path, where a
// remote replica's lookups must not skew this replica's own cache
// statistics or working set. Spill entries are consulted but not
// promoted into memory.
func (c *Cache) Peek(key string) ([]byte, bool) {
	s := c.shard(key)
	s.mu.Lock()
	if el, ok := s.byKey[key]; ok {
		body := el.Value.(*cacheEntry).body
		s.mu.Unlock()
		return body, true
	}
	s.mu.Unlock()
	return c.loadSpill(key)
}

// Contains reports whether key is present, with Peek's non-counting
// semantics.
func (c *Cache) Contains(key string) bool {
	_, ok := c.Peek(key)
	return ok
}

// Len returns the in-memory entry count across all shards.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}

// Metrics freezes the cache counters into the /metrics wire type.
func (c *Cache) Metrics() pdce.CacheMetrics {
	m := pdce.CacheMetrics{
		Entries:      c.Len(),
		Capacity:     c.perShard * cacheShards,
		Hits:         c.hits.Load(),
		Misses:       c.misses.Load(),
		Evictions:    c.evictions.Load(),
		SpillHits:    c.spillHits.Load(),
		SpillCorrupt: c.spillCorrupt.Load(),
		SpillSwept:   c.spillSwept.Load(),
	}
	if lookups := m.Hits + m.SpillHits + m.Misses; lookups > 0 {
		m.HitRate = float64(m.Hits+m.SpillHits) / float64(lookups)
	}
	return m
}

// --- disk spill -------------------------------------------------------

// spillPath maps a key to its spill file. Keys are hex digests (the
// filesystem-safe alphabet), but an untrusted key from a crafted URL
// never reaches here — keys are always recomputed server-side.
func (c *Cache) spillPath(key string) string {
	return filepath.Join(c.spillDir, key+".entry")
}

// writeSpill persists one entry as "sha256-hex\n" + body, written to a
// temp file and renamed so readers never observe a partial write. A
// failed write degrades silently: the spill layer is an optimization,
// never a correctness dependency.
func (c *Cache) writeSpill(key string, body []byte) {
	if c.spillDir == "" {
		return
	}
	sum := sha256.Sum256(body)
	tmp, err := os.CreateTemp(c.spillDir, "tmp-*.entry")
	if err != nil {
		return
	}
	_, werr := fmt.Fprintf(tmp, "%s\n", hex.EncodeToString(sum[:]))
	if werr == nil {
		_, werr = tmp.Write(body)
	}
	if cerr := tmp.Close(); werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), c.spillPath(key)); err != nil {
		os.Remove(tmp.Name())
	}
}

// loadSpill reads one entry back, verifying the embedded checksum. A
// corrupted or malformed file is quarantined (removed) and counted; it
// is never served.
func (c *Cache) loadSpill(key string) ([]byte, bool) {
	if c.spillDir == "" {
		return nil, false
	}
	path := c.spillPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	// The corruption seam: a test hook may flip bytes here, standing
	// in for bit rot or a torn write the rename could not prevent.
	faultinject.Fire(faultinject.ServerCacheLoad, &data)

	const sumLen = sha256.Size * 2
	if len(data) < sumLen+1 || data[sumLen] != '\n' {
		c.quarantine(path)
		return nil, false
	}
	body := data[sumLen+1:]
	sum := sha256.Sum256(body)
	if hex.EncodeToString(sum[:]) != string(data[:sumLen]) {
		c.quarantine(path)
		return nil, false
	}
	return body, true
}

func (c *Cache) quarantine(path string) {
	c.spillCorrupt.Add(1)
	os.Remove(path)
}
