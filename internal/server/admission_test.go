package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestAdmissionShedsBeyondQueue(t *testing.T) {
	a := NewAdmission(1, 1)
	ctx := context.Background()
	if err := a.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	// Slot held: the next caller queues, the one after sheds.
	queued := make(chan error, 1)
	go func() { queued <- a.Acquire(ctx) }()
	waitDepth(t, a, 1, 1)
	if err := a.Acquire(ctx); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third acquire: %v, want ErrQueueFull", err)
	}
	a.Release()
	if err := <-queued; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	a.Release()
	if active, q := a.Depth(); active != 0 || q != 0 {
		t.Errorf("depth after release: %d/%d", active, q)
	}
}

func TestAdmissionContextCancel(t *testing.T) {
	a := NewAdmission(1, 4)
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- a.Acquire(ctx) }()
	waitDepth(t, a, 1, 1)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled acquire: %v", err)
	}
	// The abandoned queue position is returned: the queue is empty and
	// the freed slot is acquirable again.
	a.Release()
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatalf("reacquire after cancel: %v", err)
	}
	a.Release()
}

func TestAdmissionConcurrentNoOveradmission(t *testing.T) {
	const slots, queue, callers = 3, 2, 40
	a := NewAdmission(slots, queue)
	var mu sync.Mutex
	cur, max, rejected := 0, 0, 0
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := a.Acquire(context.Background()); err != nil {
				mu.Lock()
				rejected++
				mu.Unlock()
				return
			}
			mu.Lock()
			cur++
			if cur > max {
				max = cur
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			mu.Lock()
			cur--
			mu.Unlock()
			a.Release()
		}()
	}
	wg.Wait()
	if max > slots {
		t.Errorf("%d concurrent holders, bound is %d", max, slots)
	}
	if rejected == 0 {
		t.Error("no caller was shed despite 40 callers on 3+2 capacity")
	}
	if act, q := a.Depth(); act != 0 || q != 0 {
		t.Errorf("depth after drain: %d/%d", act, q)
	}
}

func TestAdmissionBoundsAndMinimums(t *testing.T) {
	a := NewAdmission(0, -5)
	inflight, queue := a.Bounds()
	if inflight != 1 || queue != 0 {
		t.Errorf("bounds %d/%d, want 1/0", inflight, queue)
	}
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Zero queue: an occupied slot sheds immediately.
	if err := a.Acquire(context.Background()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("zero-queue acquire: %v", err)
	}
	a.Release()
}

func waitDepth(t *testing.T, a *Admission, active, queued int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if act, q := a.Depth(); act == active && q == queued {
			return
		}
		time.Sleep(time.Millisecond)
	}
	act, q := a.Depth()
	t.Fatalf("depth %d/%d, want %d/%d", act, q, active, queued)
}
