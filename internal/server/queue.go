package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"pdce"
	"pdce/internal/obs"
)

// Queue is the durable async job queue behind POST /optimize/submit: a
// bounded worker pool over a write-ahead log (wal.go). Every accepted
// submission is logged and fsync'd before the 202 goes out, so an
// acknowledged job survives process crash and redeploy; on boot the
// log is replayed, in-flight jobs are re-enqueued, and the log is
// compacted.
//
// Jobs are keyed by the program's content address (Program.CacheKey),
// which Theorem 3.7 determinism turns into exactly-once-visible
// semantics over at-least-once execution: a duplicate submission
// collapses onto the existing job, a post-crash replay of a job whose
// result already reached the cache is a cache hit, and a replay racing
// an identical interactive request joins its singleflight — whatever
// path a job takes, exactly one result body is ever visible for its
// key.
//
// Failed attempts (contained panics, results with no usable program)
// retry with capped exponential backoff; a job exhausting the retry
// budget is poisoned — parked in the failed state for operators to
// triage via GET /optimize/result/{id} — instead of churning forever.
type Queue struct {
	srv   *Server
	wal   *WAL
	stats *obs.QueueStats

	retries    int
	workers    int
	backoff    time.Duration
	maxBackoff time.Duration
	deadline   time.Duration

	submitMu sync.Mutex // serializes Submit's check-log-admit sequence

	mu       sync.Mutex
	jobs     map[string]*qjob
	ready    []string // ids runnable now or after their backoff
	draining bool
	killed   bool

	notify chan struct{}
	drainc chan struct{}
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	drainOnce sync.Once
}

// qjob is one queued optimization.
type qjob struct {
	id     string
	name   string
	source string
	lang   string

	mode      string
	maxRounds int
	telemetry bool
	trace     bool

	state     string // pdce.JobQueued/JobRunning/JobDone/JobFailed
	attempts  int
	lastErr   string
	body      []byte
	degraded  bool
	submitted time.Time
	notBefore time.Time
	replayed  bool

	// Request-tracing identity, persisted in the WAL submit record:
	// traceID is the submitting request's trace, spanID the enqueue
	// span, requestID the Pdce-Request-Id. Execution spans — even
	// after a crash and replay in a fresh process — join the same
	// trace and link back to the enqueue span.
	traceID   string
	spanID    string
	requestID string
}

// walFile is the log's name inside Config.QueueDir.
const walFile = "queue.wal"

// newQueue opens (and replays) the log under cfg.QueueDir and starts
// the workers. Called by New when a queue directory is configured.
func newQueue(srv *Server, cfg Config) (*Queue, error) {
	if err := os.MkdirAll(cfg.QueueDir, 0o755); err != nil {
		return nil, fmt.Errorf("queue dir: %w", err)
	}
	path := filepath.Join(cfg.QueueDir, walFile)
	wal, recs, rst, err := OpenWAL(path)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	q := &Queue{
		srv:        srv,
		wal:        wal,
		stats:      &obs.QueueStats{},
		retries:    cfg.QueueRetries,
		workers:    cfg.QueueWorkers,
		backoff:    cfg.QueueBackoff,
		maxBackoff: cfg.QueueMaxBackoff,
		deadline:   cfg.DefaultDeadline,
		jobs:       make(map[string]*qjob),
		notify:     make(chan struct{}, 64),
		drainc:     make(chan struct{}),
		ctx:        ctx,
		cancel:     cancel,
	}
	q.fold(recs)
	if rst.TornBytes > 0 {
		q.stats.AddTornRecords(1)
	}
	q.stats.AddCorruptRecords(rst.CorruptRecords)

	// Compact: the replayed state collapses to at most two records per
	// live job, and acknowledged jobs disappear entirely.
	if err := wal.Close(); err != nil {
		cancel()
		return nil, err
	}
	if q.wal, err = rewriteWAL(path, q.compactRecords()); err != nil {
		cancel()
		return nil, err
	}

	for id, j := range q.jobs {
		if j.state == pdce.JobQueued {
			if j.replayed {
				q.stats.AddReplayedJobs(1)
			}
			q.ready = append(q.ready, id)
		}
	}
	for i := 0; i < q.workers; i++ {
		q.wg.Add(1)
		go q.worker()
	}
	return q, nil
}

// fold rebuilds the job table from replayed records, in log order.
func (q *Queue) fold(recs []walRecord) {
	now := time.Now()
	for _, rec := range recs {
		switch rec.Op {
		case "submit":
			if _, ok := q.jobs[rec.ID]; ok {
				continue
			}
			q.jobs[rec.ID] = &qjob{
				id: rec.ID, name: rec.Name, source: rec.Source, lang: rec.Lang,
				mode: rec.Mode, maxRounds: rec.MaxRounds,
				telemetry: rec.Telemetry, trace: rec.Trace,
				traceID: rec.TraceID, spanID: rec.SpanID, requestID: rec.RequestID,
				state: pdce.JobQueued, submitted: now,
			}
		case "start":
			if j, ok := q.jobs[rec.ID]; ok && j.state == pdce.JobQueued {
				j.replayed = true // it was in flight when the process died
			}
		case "done":
			if j, ok := q.jobs[rec.ID]; ok {
				j.state = pdce.JobDone
				j.body = rec.Body
				j.degraded = rec.Degraded
			}
		case "fail":
			if j, ok := q.jobs[rec.ID]; ok && j.state == pdce.JobQueued {
				j.attempts = rec.Attempts
				j.lastErr = rec.Error
				j.replayed = true
				if j.attempts >= q.retries {
					j.state = pdce.JobFailed // poison survives restarts
				}
			}
		case "ack":
			delete(q.jobs, rec.ID)
		}
	}
}

// compactRecords renders the current job table as a minimal log.
func (q *Queue) compactRecords() []walRecord {
	recs := make([]walRecord, 0, 2*len(q.jobs))
	for _, j := range q.jobs {
		recs = append(recs, walRecord{
			Op: "submit", ID: j.id, Name: j.name, Source: j.source, Lang: j.lang,
			Mode: j.mode, MaxRounds: j.maxRounds, Telemetry: j.telemetry, Trace: j.trace,
			TraceID: j.traceID, SpanID: j.spanID, RequestID: j.requestID,
		})
		switch j.state {
		case pdce.JobDone:
			recs = append(recs, walRecord{Op: "done", ID: j.id, Body: j.body, Degraded: j.degraded})
		case pdce.JobFailed:
			recs = append(recs, walRecord{Op: "fail", ID: j.id, Attempts: j.attempts, Error: j.lastErr})
		default:
			if j.attempts > 0 {
				recs = append(recs, walRecord{Op: "fail", ID: j.id, Attempts: j.attempts, Error: j.lastErr})
			}
		}
	}
	return recs
}

// Submit durably enqueues one job and returns its state. A job with
// the same content address already known — queued, running, done, or
// poisoned — is returned as-is (dup true) without touching the log: at
// the queue's level, resubmission is idempotent. The submit record is
// fsync'd before Submit returns; an append or fsync failure is
// returned as an error and the job is not accepted (the caller must
// not acknowledge it).
//
// sp, when non-nil, is the submitting request's span: Submit opens a
// "queue.enqueue" child with a "queue.wal.fsync" child under it, and
// persists the trace identity in the submit record so the job's later
// execution — possibly in a different process lifetime — continues
// the same trace. rid is the request's Pdce-Request-Id, stamped into
// repro bundles the job's attempts may write.
func (q *Queue) Submit(id, name, source, lang string, o pdce.Options, sp *obs.Span, rid string) (state string, dup bool, err error) {
	// Submissions are serialized by submitMu so the job table only ever
	// holds durably-logged jobs: a concurrent duplicate must not be
	// acknowledged off the back of a first submission whose fsync is
	// still in flight (and might fail).
	q.submitMu.Lock()
	defer q.submitMu.Unlock()

	q.mu.Lock()
	if q.draining || q.killed {
		q.mu.Unlock()
		return "", false, errors.New("queue is draining")
	}
	if j, ok := q.jobs[id]; ok {
		st := j.state
		q.mu.Unlock()
		q.stats.AddDupSubmit()
		return st, true, nil
	}
	q.mu.Unlock()

	esp := sp.Child("queue.enqueue")
	sc := esp.Context()
	j := &qjob{
		id: id, name: name, source: source, lang: lang,
		mode: o.Mode.String(), maxRounds: o.MaxRounds,
		telemetry: o.Telemetry, trace: o.Trace,
		traceID: sc.TraceID, spanID: sc.SpanID, requestID: rid,
		state: pdce.JobQueued, submitted: time.Now(),
	}
	rec := walRecord{
		Op: "submit", ID: id, Name: name, Source: source, Lang: lang,
		Mode: j.mode, MaxRounds: j.maxRounds, Telemetry: j.telemetry, Trace: j.trace,
		TraceID: j.traceID, SpanID: j.spanID, RequestID: j.requestID,
	}
	fsp := esp.Child("queue.wal.fsync")
	err = q.wal.Append(rec, true)
	if err != nil {
		fsp.SetError("fsync")
		fsp.End()
		esp.SetError("fsync")
		esp.End()
		// Durability could not be promised: the job was never admitted,
		// so a retried submission starts clean.
		q.stats.AddFsyncFailure()
		return "", false, err
	}
	fsp.End()
	esp.End()
	q.mu.Lock()
	q.jobs[id] = j
	q.ready = append(q.ready, id)
	q.mu.Unlock()
	q.stats.AddSubmit()
	q.wakeOne()
	return pdce.JobQueued, false, nil
}

// Result reports one job's state, embedding the stored response bytes
// for terminal jobs. With ack true a terminal job is acknowledged:
// logged, dropped from the table, and freed at the next compaction
// (its result stays reachable through the content-addressed cache as
// long as that retains it).
func (q *Queue) Result(id string, ack bool) (pdce.JobResult, bool) {
	q.mu.Lock()
	j, ok := q.jobs[id]
	if !ok {
		q.mu.Unlock()
		return pdce.JobResult{}, false
	}
	res := pdce.JobResult{
		ID:       id,
		State:    j.state,
		Attempts: j.attempts,
		Error:    j.lastErr,
		TraceID:  j.traceID,
	}
	if j.state == pdce.JobDone {
		res.Result = json.RawMessage(j.body)
		res.Error = "" // a done job's transient attempt errors are history
	}
	terminal := j.state == pdce.JobDone || j.state == pdce.JobFailed
	if ack && terminal {
		delete(q.jobs, id)
	}
	q.mu.Unlock()
	if ack && terminal {
		q.stats.AddAck()
		q.wal.Append(walRecord{Op: "ack", ID: id}, false)
	}
	return res, true
}

// Drain stops dispatching new jobs, waits (bounded by ctx) for running
// jobs to finish, and closes the log cleanly. Jobs still queued stay
// in the log and resume on the next boot. On ctx expiry the remaining
// workers are killed; their in-flight jobs replay after restart.
func (q *Queue) Drain(ctx context.Context) error {
	q.mu.Lock()
	q.draining = true
	q.mu.Unlock()
	q.drainOnce.Do(func() { close(q.drainc) })

	done := make(chan struct{})
	go func() {
		q.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return q.wal.Close()
	case <-ctx.Done():
		q.Kill()
		return fmt.Errorf("pdced: queue drain interrupted: %w", ctx.Err())
	}
}

// Kill is the crash-shaped stop: running jobs are cancelled, nothing
// further is logged, and the log file is abandoned without a final
// sync — exactly what a SIGKILL would leave behind. The chaos harness
// pairs it with truncating the file to its synced prefix.
func (q *Queue) Kill() {
	q.mu.Lock()
	q.killed = true
	q.mu.Unlock()
	q.cancel()
	q.wg.Wait()
	q.wal.abandon()
}

// WALSyncedSize exposes the durable log prefix for crash simulation.
func (q *Queue) WALSyncedSize() int64 { return q.wal.SyncedSize() }

// WALPath returns the log file's location.
func (q *Queue) WALPath() string { return q.wal.path }

// Stats exposes the queue counters (tests).
func (q *Queue) Stats() *obs.QueueStats { return q.stats }

// Snapshot freezes the queue's /metrics section.
func (q *Queue) Snapshot() obs.QueueSnapshot {
	g := obs.QueueGauges{
		WALRecords: q.wal.Records(),
		WALBytes:   q.wal.Size(),
	}
	now := time.Now()
	var oldest time.Time
	q.mu.Lock()
	for _, j := range q.jobs {
		switch j.state {
		case pdce.JobQueued:
			g.Depth++
		case pdce.JobRunning:
			g.Running++
		case pdce.JobDone:
			g.Done++
		case pdce.JobFailed:
			g.Failed++
		}
		if j.state == pdce.JobQueued || j.state == pdce.JobRunning {
			if oldest.IsZero() || j.submitted.Before(oldest) {
				oldest = j.submitted
			}
		}
	}
	q.mu.Unlock()
	if !oldest.IsZero() {
		g.OldestAgeMS = now.Sub(oldest).Milliseconds()
	}
	return q.stats.Snapshot(g)
}

// --- worker pool ------------------------------------------------------

func (q *Queue) wakeOne() {
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// worker pulls ready jobs until drain or kill.
func (q *Queue) worker() {
	defer q.wg.Done()
	for {
		j, wait, ok := q.next()
		if !ok {
			return
		}
		if j == nil {
			t := time.NewTimer(wait)
			select {
			case <-q.notify:
				t.Stop()
			case <-t.C:
			case <-q.drainc:
				t.Stop()
				return
			case <-q.ctx.Done():
				t.Stop()
				return
			}
			continue
		}
		q.run(j)
	}
}

// next claims the first runnable job. With none runnable it returns
// the wait until the earliest backoff expiry (or a long poll when the
// queue is idle); ok false means the worker should exit.
func (q *Queue) next() (j *qjob, wait time.Duration, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.draining || q.killed {
		return nil, 0, false
	}
	now := time.Now()
	wait = time.Hour
	kept := q.ready[:0]
	for i, id := range q.ready {
		job, live := q.jobs[id]
		if !live || job.state != pdce.JobQueued {
			continue // acked or superseded while waiting: drop the entry
		}
		if j == nil && job.notBefore.Sub(now) <= 0 {
			job.state = pdce.JobRunning
			j = job
			continue
		}
		if left := job.notBefore.Sub(now); left > 0 && left < wait {
			wait = left
		}
		kept = append(kept, q.ready[i])
	}
	q.ready = kept
	return j, wait, true
}

// run executes one claimed job and records its outcome.
func (q *Queue) run(j *qjob) {
	q.wal.Append(walRecord{Op: "start", ID: j.id, Attempts: j.attempts + 1}, false)

	// The execution span is a root (it decides retention in THIS
	// process's store — the submission may have happened in a previous
	// lifetime) parented on the enqueue span persisted in the WAL, so
	// the dequeue-to-done gap shows up as the tree's timing hole. A
	// replayed job additionally records an explicit restart link.
	xsp := q.srv.traces.StartSpan("queue.execute", "pdced",
		obs.SpanContext{TraceID: j.traceID, SpanID: j.spanID})
	xsp.SetAttr("job", j.id)
	xsp.SetInt("attempt", int64(j.attempts+1))
	if j.replayed {
		xsp.SetAttr("replayed", "true")
		xsp.SetLink(obs.SpanContext{TraceID: j.traceID, SpanID: j.spanID})
	}

	body, degraded, runErr := q.execute(j, xsp)
	if q.ctx.Err() != nil {
		// Killed mid-run: no outcome may be logged — the job replays
		// after restart, and determinism makes the replay harmless.
		// (The span dies with this store; the replay's span survives.)
		return
	}
	if runErr == nil {
		q.wal.Append(walRecord{Op: "done", ID: j.id, Body: body, Degraded: degraded}, true)
		q.mu.Lock()
		j.state = pdce.JobDone
		j.body = body
		j.degraded = degraded
		// Counters move before the state is visible: a poller that sees
		// "done" must also see the completion counted.
		q.stats.AddCompletion()
		if degraded {
			q.stats.AddDegraded()
		}
		q.mu.Unlock()
		if degraded {
			xsp.SetAttr("outcome", "degraded")
		} else {
			xsp.SetAttr("outcome", "done")
		}
		xsp.End()
		return
	}

	q.mu.Lock()
	j.attempts++
	j.lastErr = runErr.Error()
	attempts := j.attempts
	poisoned := attempts >= q.retries
	if poisoned {
		j.state = pdce.JobFailed
		q.stats.AddPoisoned()
	} else {
		j.state = pdce.JobQueued
		j.notBefore = time.Now().Add(q.retryDelay(attempts))
		q.ready = append(q.ready, j.id)
		q.stats.AddRetry()
	}
	q.mu.Unlock()
	q.wal.Append(walRecord{Op: "fail", ID: j.id, Attempts: attempts, Error: runErr.Error()}, poisoned)
	if poisoned {
		// Poisoned jobs make their trace an always-keep: SetError on a
		// root span survives tail sampling even if the submission's
		// side was sampled out.
		xsp.SetError("poisoned")
	} else {
		xsp.SetAttr("outcome", "retry")
	}
	xsp.End()
	if !poisoned {
		q.wakeOne()
	}
}

// retryDelay is the capped exponential backoff before attempt+1.
func (q *Queue) retryDelay(attempts int) time.Duration {
	d := q.backoff
	for i := 1; i < attempts && d < q.maxBackoff; i++ {
		d *= 2
	}
	if d > q.maxBackoff {
		d = q.maxBackoff
	}
	return d
}

// execute produces the job's serialized response. The result path
// mirrors the interactive handler: cache first, then the server-wide
// singleflight (an identical interactive request or a sibling replica
// of this job computes once), then a contained optimizer run.
func (q *Queue) execute(j *qjob, xsp *obs.Span) (body []byte, degraded bool, err error) {
	csp := xsp.Child("server.cache")
	if body, ok := q.srv.cache.Get(j.id); ok {
		csp.SetAttr("outcome", "hit")
		csp.End()
		return body, false, nil
	}
	csp.SetAttr("outcome", "miss")
	csp.End()
	leader, call := q.srv.joinFlight(j.id)
	if !leader {
		wsp := xsp.Child("server.flight.wait")
		select {
		case <-call.done:
			wsp.End()
		case <-q.ctx.Done():
			wsp.SetError("killed")
			wsp.End()
			return nil, false, q.ctx.Err()
		}
		if body, ok := q.srv.cache.Get(j.id); ok {
			return body, false, nil
		}
		// The leader failed and cached nothing; compute for ourselves.
	} else {
		defer q.srv.leaveFlight(j.id, call)
	}

	// Shared L2, then the cluster singleflight — the same ladder as the
	// interactive handler: a sibling replica's published result is this
	// job's result, and a key some replica is already solving is waited
	// out rather than re-solved.
	if body, ok := q.srv.l2Get(j.id, xsp); ok {
		return body, false, nil
	}
	fetched, release := q.srv.l2Flight(q.ctx, j.id, xsp)
	if fetched != nil {
		return fetched, false, nil
	}
	published := false
	defer func() {
		if !published {
			release()
		}
	}()

	prog, perr := parseProgram(j.source, j.name, j.lang)
	if perr != nil {
		return nil, false, perr
	}
	o := pdce.Options{MaxRounds: j.maxRounds, Telemetry: j.telemetry, Trace: j.trace}
	if j.mode == "pfe" {
		o.Mode = pdce.Faint
	}
	ctx := q.ctx
	if q.deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, q.deadline)
		defer cancel()
	}
	o.Context = ctx
	o.RoundBudget = q.srv.cfg.RoundBudget
	o.ReproDir = q.srv.cfg.ReproDir
	o.RequestTag = j.requestID
	ssp := xsp.Child("solve")
	o.Span = ssp

	opt, st, oerr := prog.SafeOptimize(o)
	if oerr != nil {
		ssp.SetError(errorKind(oerr))
	}
	ssp.End()
	resp := q.srv.buildResponse(j.name, j.id, o, opt, st, "")
	switch {
	case oerr == nil:
		b, merr := json.Marshal(resp)
		if merr != nil {
			return nil, false, merr
		}
		q.srv.cache.Put(j.id, b)
		q.srv.l2Put(j.id, b, xsp, release)
		published = true
		return b, false, nil
	default:
		var pe *pdce.PanicError
		if errors.As(oerr, &pe) || opt == nil {
			return nil, false, oerr
		}
		// Watchdog or verified-mode degradation: correct but partial.
		// Terminal for the job (a re-run would hit the same bound), but
		// marked degraded and never cached.
		resp.Degraded = true
		resp.Error = oerr.Error()
		resp.ErrorKind = errorKind(oerr)
		b, merr := json.Marshal(resp)
		if merr != nil {
			return nil, false, merr
		}
		return b, true, nil
	}
}
