package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"

	"pdce/internal/obs"
)

// Request tracing and identification middleware.
//
// Every response — including 429 shed, 500 panic, and 503 drain paths,
// which never reach a handler's happy path — carries a stable
// Pdce-Request-Id (echoed from the request when the caller set one,
// minted otherwise). With tracing enabled, every optimize-family
// request additionally runs under a root span that joins the caller's
// W3C traceparent when present, and the response carries Pdce-Trace-Id
// so callers and operators can pull the trace from /debug/traces/{id}.

// Wire header names. The request id doubles as the repro-bundle tag:
// a 500's bundle filename contains the same id the response echoed.
const (
	HeaderRequestID   = "Pdce-Request-Id"
	HeaderTraceID     = "Pdce-Trace-Id"
	HeaderTraceparent = "Traceparent"
)

type requestIDKey struct{}

// requestIDFrom returns the request's id installed by the middleware
// ("" outside a middleware-wrapped handler, i.e. only in direct
// handler unit tests).
func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// statusWriter captures the response status for the root span.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// sanitizeRequestID keeps caller-supplied request ids header- and
// filename-safe; anything dubious is replaced with a fresh id.
func sanitizeRequestID(id string) string {
	if id == "" || len(id) > 64 {
		return obs.NewRequestID()
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < 'a' || c > 'z') && (c < 'A' || c > 'Z') && (c < '0' || c > '9') && c != '-' && c != '_' && c != '.' {
			return obs.NewRequestID()
		}
	}
	return id
}

// routeSpanName maps a request to its root span's stage name, "" for
// routes that are not traced (health, metrics, and the debug surface
// itself — tracing the trace reader would fill the store with noise).
func routeSpanName(r *http.Request) string {
	switch {
	case r.URL.Path == "/optimize" && r.Method == http.MethodPost:
		return "server.optimize"
	case r.URL.Path == "/optimize/batch":
		return "server.optimize.batch"
	case r.URL.Path == "/optimize/submit":
		return "server.optimize.submit"
	case strings.HasPrefix(r.URL.Path, "/optimize/result/"):
		return "server.optimize.result"
	}
	return ""
}

// withObservability wraps the whole handler surface: request-id echo
// on every response, and a root span per traced route when the trace
// store is enabled.
func (s *Server) withObservability(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := sanitizeRequestID(r.Header.Get(HeaderRequestID))
		w.Header().Set(HeaderRequestID, rid)
		ctx := context.WithValue(r.Context(), requestIDKey{}, rid)

		name := routeSpanName(r)
		if s.traces == nil || name == "" {
			next.ServeHTTP(w, r.WithContext(ctx))
			return
		}

		parent, _ := obs.ParseTraceparent(r.Header.Get(HeaderTraceparent))
		span := s.traces.StartSpan(name, "pdced", parent)
		span.SetAttr("request_id", rid)
		w.Header().Set(HeaderTraceID, span.TraceID())
		ctx = obs.ContextWithSpan(ctx, span)

		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			status := sw.status
			if status == 0 {
				status = http.StatusOK
			}
			span.SetInt("status", int64(status))
			if status >= 400 {
				// Any failed response makes the trace an always-keep:
				// 429s and 500s are exactly what the tail sampler must
				// never drop.
				span.SetError("http-" + strconv.Itoa(status))
			}
			span.End()
		}()
		next.ServeHTTP(sw, r.WithContext(ctx))
	})
}

// handleTraces lists retained traces, newest first. Query parameter
// limit bounds the listing (default 100).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if s.traces == nil {
		s.httpError(w, http.StatusServiceUnavailable, "traces-disabled",
			"request tracing is disabled (trace store capacity 0)", "")
		return
	}
	limit := 100
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.httpError(w, http.StatusBadRequest, "bad-request", "bad limit "+strconv.Quote(v), "")
			return
		}
		limit = n
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.traces.Summaries(limit))
}

// handleTraceByID serves one retained trace's span tree.
func (s *Server) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	if s.traces == nil {
		s.httpError(w, http.StatusServiceUnavailable, "traces-disabled",
			"request tracing is disabled (trace store capacity 0)", "")
		return
	}
	dump, ok := s.traces.Get(r.PathValue("id"))
	if !ok {
		s.httpError(w, http.StatusNotFound, "not-found",
			"unknown trace id (never recorded, sampled out, or evicted)", "")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(dump)
}

// handleTraceIngest merges externally-recorded spans (the pool client
// exports its side of each request here, so one trace shows both
// processes). Body: JSON array of span records.
func (s *Server) handleTraceIngest(w http.ResponseWriter, r *http.Request) {
	if s.traces == nil {
		s.httpError(w, http.StatusServiceUnavailable, "traces-disabled",
			"request tracing is disabled (trace store capacity 0)", "")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "bad-request", "reading body: "+err.Error(), "")
		return
	}
	var recs []obs.SpanRecord
	if err := json.Unmarshal(body, &recs); err != nil {
		s.httpError(w, http.StatusBadRequest, "bad-request", "decoding spans: "+err.Error(), "")
		return
	}
	n := s.traces.Ingest(recs)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]int{"ingested": n})
}
