package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"time"

	"pdce/internal/obs"
	"pdce/internal/store"
)

// Shared L2 result store.
//
// The in-memory LRU (cache.go) is one replica's memory of Theorem 3.7
// determinism; the shared store is the fleet's. A pluggable
// store.Backend sits behind every replica's L1: a local miss consults
// the store before solving (backfilling L1 on a hit), and every local
// solve publishes its result back, best-effort and asynchronously. A
// rescheduled replica therefore boots warm — its predecessor's
// results, and its siblings', are one Get away.
//
// The store also extends the in-process singleflight cluster-wide:
// before solving a key no replica has published, the replica races a
// TTL lease (store.Lease) over the same backend. The winner solves
// and publishes; losers poll for the winner's result and fall back to
// a local solve only when the lease expires (owner crashed) or the
// backend fails. Every store failure mode degrades to "solve locally"
// — the L2 tier can slow a cold fleet down, never break it.
//
// Store keys are the L1 content address prefixed with the cache-key
// format version (store.VersionedKey), so replicas from different
// builds sharing one store address disjoint key spaces.

// storeKey maps a raw L1 cache key to its versioned store key.
func (s *Server) storeKey(key string) string {
	return store.VersionedKey(s.cfg.StoreVersion, key)
}

// StoreStats exposes the L2 counters (tests, cmd/pdced logging); nil
// when no store is configured.
func (s *Server) StoreStats() *obs.StoreStats { return s.storeStats }

// randomOwner derives a boot-unique lease owner id. A restarted
// replica must not inherit its dead predecessor's leases, so the id is
// random per process, never host-derived.
func randomOwner() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "pdced-unknown"
	}
	return "pdced-" + hex.EncodeToString(b[:])
}

// l2Get consults the shared store for key after an L1 miss. A hit
// backfills L1 (memory and spill) so the next request is local. Backend
// errors are counted and served as misses.
func (s *Server) l2Get(key string, sp *obs.Span) ([]byte, bool) {
	if s.cfg.Store == nil {
		return nil, false
	}
	gsp := sp.Child("cache.l2.get")
	start := time.Now()
	body, err := s.cfg.Store.Get(s.storeKey(key))
	s.storeStats.RecordGetLatency(time.Since(start))
	switch {
	case err == nil:
		s.storeStats.AddL2Hit()
		gsp.SetAttr("outcome", "hit")
		gsp.End()
		s.cache.Put(key, body)
		return body, true
	case errors.Is(err, store.ErrNotFound):
		s.storeStats.AddL2Miss()
		gsp.SetAttr("outcome", "miss")
		gsp.End()
	default:
		s.storeStats.AddGetFailure()
		gsp.SetError("backend")
		gsp.End()
	}
	return nil, false
}

// noRelease is the release func for paths that hold no lease.
func noRelease() {}

// l2Flight is the cluster-wide singleflight: called by a replica about
// to solve key (L1 and L2 both missed), it arbitrates solve ownership
// over the store. It returns either the result body (another replica
// won and published — serve it, nothing to release) or a release func
// the caller must invoke once its own result is published or the solve
// abandoned. A nil body with noRelease means solve locally without a
// lease (store disabled, backend down, or caller canceled) — the
// always-safe degradation.
func (s *Server) l2Flight(ctx context.Context, key string, sp *obs.Span) ([]byte, func()) {
	if s.cfg.Store == nil || s.lease == nil {
		return nil, noRelease
	}
	sk := s.storeKey(key)
	asp := sp.Child("lease.acquire")
	won, err := s.lease.Acquire(sk)
	if err != nil {
		s.storeStats.AddLeaseError()
		asp.SetError("backend")
		asp.End()
		return nil, noRelease
	}
	if won {
		s.storeStats.AddLeaseWin()
		asp.SetAttr("outcome", "won")
		asp.End()
		return nil, func() { s.lease.Release(sk) }
	}
	s.storeStats.AddLeaseLoss()
	asp.SetAttr("outcome", "lost")
	asp.End()

	// Another replica owns the solve. Poll for its published result;
	// re-arbitrate each round so an expired lease (the owner crashed)
	// hands the solve to us instead of wedging. Leases are never
	// renewed, so one of the two exits is guaranteed within a TTL.
	interval := s.lease.TTL() / 10
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	if interval > 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	wsp := sp.Child("lease.wait")
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			wsp.SetError("canceled")
			wsp.End()
			return nil, noRelease
		case <-t.C:
		}
		body, err := s.cfg.Store.Get(sk)
		if err == nil {
			s.storeStats.AddLeaseFetch()
			wsp.SetAttr("outcome", "fetched")
			wsp.End()
			s.cache.Put(key, body)
			return body, noRelease
		}
		if !errors.Is(err, store.ErrNotFound) {
			s.storeStats.AddGetFailure()
			wsp.SetError("backend")
			wsp.End()
			return nil, noRelease
		}
		won, err := s.lease.Acquire(sk)
		if err != nil {
			s.storeStats.AddLeaseError()
			wsp.SetError("backend")
			wsp.End()
			return nil, noRelease
		}
		if won {
			// The owner died before publishing; the solve is ours now.
			s.storeStats.AddLeaseWin()
			wsp.SetAttr("outcome", "took-over")
			wsp.End()
			return nil, func() { s.lease.Release(sk) }
		}
	}
}

// l2Put publishes a freshly solved result to the shared store and then
// releases the solve lease, both asynchronously — the response goes
// out without waiting on the backend. A failed put costs the fleet a
// warm entry, never the request; the span marks the scheduling point
// (the upload outlives the request, and late-ending spans would be
// dropped by the trace store).
func (s *Server) l2Put(key string, body []byte, sp *obs.Span, release func()) {
	if s.cfg.Store == nil {
		release()
		return
	}
	sp.Child("cache.l2.put").End()
	s.l2wg.Add(1)
	go func() {
		defer s.l2wg.Done()
		defer release()
		if _, err := s.cfg.Store.Put(s.storeKey(key), body); err != nil {
			s.storeStats.AddPutFailure()
			return
		}
		s.storeStats.AddPut()
	}()
}

// storeSnapshot freezes the /metrics store section; nil when no store
// is configured.
func (s *Server) storeSnapshot() *obs.StoreSnapshot {
	if s.cfg.Store == nil {
		return nil
	}
	var g obs.StoreGauges
	if st, err := s.cfg.Store.Stats(); err == nil {
		g.Blobs = st.Blobs
		g.Bytes = st.Bytes
	}
	snap := s.storeStats.Snapshot(g)
	return &snap
}

// --- peer cache serving ----------------------------------------------

// With Config.PeerCache enabled, a replica serves its own L1 under the
// store wire contract (GET/PUT /cache/{key}), so a fleet can use its
// members as each other's L2 without any shared infrastructure — each
// peer is just an HTTPStore base URL. Keys cross the wire in versioned
// form; a key carrying a different build's version prefix answers 404,
// which is the mixed-version guard at the peer boundary.

// peerKey strips this build's version prefix from a wire key, ok false
// when the key belongs to a different key-format version.
func (s *Server) peerKey(wire string) (string, bool) {
	return strings.CutPrefix(wire, s.cfg.StoreVersion+"-")
}

// handlePeerGet serves one L1 entry to a peer replica (GET and HEAD).
// Lookups bypass the hit/miss counters — peer traffic must not skew
// this replica's own cache statistics.
func (s *Server) handlePeerGet(w http.ResponseWriter, r *http.Request) {
	key, ok := s.peerKey(r.PathValue("key"))
	if !ok {
		http.Error(w, "version mismatch", http.StatusNotFound)
		return
	}
	body, ok := s.cache.Peek(key)
	if !ok {
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if r.Method == http.MethodHead {
		w.WriteHeader(http.StatusOK)
		return
	}
	w.Write(body)
}

// handlePeerPut accepts one entry pushed by a peer replica into this
// replica's L1. The blob is an immutable fact under its content
// address, so the write-once contract holds: 201 on first store, 200
// when the entry already exists.
func (s *Server) handlePeerPut(w http.ResponseWriter, r *http.Request) {
	key, ok := s.peerKey(r.PathValue("key"))
	if !ok {
		http.Error(w, "version mismatch", http.StatusNotFound)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if s.cache.Contains(key) {
		w.WriteHeader(http.StatusOK)
		return
	}
	s.cache.Put(key, body)
	w.WriteHeader(http.StatusCreated)
}

// handlePeerStats serves this replica's cache size under the store
// wire contract's /stats shape.
func (s *Server) handlePeerStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	// Byte totals are not tracked per L1 entry; blobs alone size the peer.
	json.NewEncoder(w).Encode(store.Stats{Blobs: int64(s.cache.Len())})
}
