package server

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"pdce/internal/faultinject"
)

// wal_test.go exercises the log's recovery edge cases white-box: empty
// and missing files, torn tails, mid-file corruption, and the
// append/fsync crash window. The queue-level consequences (jobs
// surviving, jobs lost only when unacknowledged) are covered in
// queue_test.go and internal/chaos.

func walPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "queue.wal")
}

func mustAppend(t *testing.T, w *WAL, rec walRecord, sync bool) {
	t.Helper()
	if err := w.Append(rec, sync); err != nil {
		t.Fatalf("append %+v: %v", rec, err)
	}
}

func TestWALMissingAndEmptyFile(t *testing.T) {
	path := walPath(t)
	// Missing file: clean empty log.
	w, recs, st, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || st != (RecoverStats{}) {
		t.Fatalf("missing file: recs=%v st=%+v, want clean empty", recs, st)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Empty file (created above): same.
	w, recs, st, err = OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if len(recs) != 0 || st != (RecoverStats{}) {
		t.Fatalf("empty file: recs=%v st=%+v, want clean empty", recs, st)
	}
}

func TestWALRoundTrip(t *testing.T) {
	path := walPath(t)
	w, _, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w, walRecord{Op: "submit", ID: "a", Source: "x := 1"}, true)
	mustAppend(t, w, walRecord{Op: "start", ID: "a", Attempts: 1}, false)
	mustAppend(t, w, walRecord{Op: "done", ID: "a", Body: []byte(`{"ok":true}`)}, true)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, recs, st, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if st.Records != 3 || st.TornBytes != 0 || st.CorruptRecords != 0 {
		t.Fatalf("recovery stats %+v, want 3 clean records", st)
	}
	if len(recs) != 3 || recs[0].Op != "submit" || recs[2].Op != "done" {
		t.Fatalf("replayed %+v", recs)
	}
	if string(recs[2].Body) != `{"ok":true}` {
		t.Fatalf("done body %q not preserved", recs[2].Body)
	}
}

// TestWALTornFinalRecord covers the crash-between-write-and-sync
// signature: the final frame reaches the disk only partially. Recovery
// must quarantine the tail, truncate the file back to the last whole
// record, and replay everything before it.
func TestWALTornFinalRecord(t *testing.T) {
	path := walPath(t)
	w, _, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w, walRecord{Op: "submit", ID: "a", Source: "x := 1"}, true)
	intact := w.Size()
	mustAppend(t, w, walRecord{Op: "submit", ID: "b", Source: "y := 2"}, true)
	w.Close()

	// Tear the final record: keep the intact prefix plus a few bytes of
	// the second frame.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:intact+5], 0o644); err != nil {
		t.Fatal(err)
	}

	w2, recs, st, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 1 || st.TornBytes != 5 || st.CorruptRecords != 0 {
		t.Fatalf("recovery stats %+v, want 1 record + 5 torn bytes", st)
	}
	if len(recs) != 1 || recs[0].ID != "a" {
		t.Fatalf("replayed %+v, want only job a", recs)
	}
	// The torn tail must be gone from disk so the next append starts at
	// a record boundary.
	if w2.Size() != intact {
		t.Fatalf("post-recovery size %d, want truncated to %d", w2.Size(), intact)
	}
	mustAppend(t, w2, walRecord{Op: "submit", ID: "c", Source: "z := 3"}, true)
	w2.Close()
	_, recs, st, err = OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].ID != "c" || st.CorruptRecords != 0 {
		t.Fatalf("after append-over-torn-tail: recs=%+v st=%+v", recs, st)
	}
}

// TestWALCorruptRecordMidFile covers bit rot: a mid-file record whose
// frame is whole but whose checksum fails. The record is quarantined
// and — because the frame length was intact — the records after it are
// still replayed.
func TestWALCorruptRecordMidFile(t *testing.T) {
	path := walPath(t)
	w, _, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w, walRecord{Op: "submit", ID: "a", Source: "x := 1"}, true)
	mid := w.Size()
	mustAppend(t, w, walRecord{Op: "submit", ID: "b", Source: "y := 2"}, true)
	end := w.Size()
	mustAppend(t, w, walRecord{Op: "submit", ID: "c", Source: "z := 3"}, true)
	w.Close()

	// Flip one payload byte inside the middle record.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[mid+8] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_ = end

	w2, recs, st, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if st.Records != 2 || st.CorruptRecords != 1 || st.TornBytes != 0 {
		t.Fatalf("recovery stats %+v, want 2 records + 1 corrupt", st)
	}
	if len(recs) != 2 || recs[0].ID != "a" || recs[1].ID != "c" {
		t.Fatalf("replayed %+v, want a and c (b quarantined)", recs)
	}
}

// TestWALCorruptViaRecoverHook is the same corruption delivered through
// the faultinject seam the chaos harness uses.
func TestWALCorruptViaRecoverHook(t *testing.T) {
	path := walPath(t)
	w, _, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w, walRecord{Op: "submit", ID: "a", Source: "x := 1"}, true)
	mustAppend(t, w, walRecord{Op: "submit", ID: "b", Source: "y := 2"}, true)
	w.Close()

	n := 0
	defer faultinject.Set(func(p faultinject.Point, payload any) {
		if p == faultinject.QueueRecover {
			n++
			if n == 1 { // corrupt the first replayed record only
				(*payload.(*[]byte))[0] ^= 0xFF
			}
		}
	})()
	_, recs, st, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.CorruptRecords != 1 || len(recs) != 1 || recs[0].ID != "b" {
		t.Fatalf("recs=%+v st=%+v, want only b with 1 corrupt", recs, st)
	}
}

// TestWALCrashBetweenAppendAndFsync simulates the unsynced-write crash
// window: a record appended without sync may not survive. The synced
// prefix must replay exactly; truncating to SyncedSize (what the chaos
// harness does to model the crash) must never lose a synced record.
func TestWALCrashBetweenAppendAndFsync(t *testing.T) {
	path := walPath(t)
	w, _, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w, walRecord{Op: "submit", ID: "a", Source: "x := 1"}, true)
	synced := w.SyncedSize()
	mustAppend(t, w, walRecord{Op: "start", ID: "a", Attempts: 1}, false)
	if w.SyncedSize() != synced {
		t.Fatalf("unsynced append moved SyncedSize to %d", w.SyncedSize())
	}
	if w.Size() <= synced {
		t.Fatalf("append did not grow the file (size %d, synced %d)", w.Size(), synced)
	}
	w.abandon() // crash: no final sync

	// The crash took everything after the synced prefix.
	if err := os.Truncate(path, synced); err != nil {
		t.Fatal(err)
	}
	_, recs, st, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 1 || len(recs) != 1 || recs[0].ID != "a" || recs[0].Op != "submit" {
		t.Fatalf("synced prefix replay: recs=%+v st=%+v", recs, st)
	}
}

// TestWALFsyncFailure: a failing fsync must surface as an Append error
// (the queue then refuses the submission) while the log stays usable.
func TestWALFsyncFailure(t *testing.T) {
	path := walPath(t)
	w, _, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	fail := errors.New("injected: disk on fire")
	restore := faultinject.Set(func(p faultinject.Point, payload any) {
		if p == faultinject.QueueFsync {
			*payload.(*error) = fail
		}
	})
	err = w.Append(walRecord{Op: "submit", ID: "a", Source: "x := 1"}, true)
	restore()
	if err == nil || !errors.Is(err, fail) {
		t.Fatalf("append with failing fsync: err=%v, want injected failure", err)
	}
	// The log recovers: the next synced append succeeds.
	mustAppend(t, w, walRecord{Op: "submit", ID: "b", Source: "y := 2"}, true)
}

// TestWALTornAppendViaHook covers the QueueAppend seam: a hook that
// truncates the outgoing frame produces exactly the torn-tail shape
// recovery quarantines.
func TestWALTornAppendViaHook(t *testing.T) {
	path := walPath(t)
	w, _, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w, walRecord{Op: "submit", ID: "a", Source: "x := 1"}, true)
	restore := faultinject.Set(func(p faultinject.Point, payload any) {
		if p == faultinject.QueueAppend {
			f := payload.(*[]byte)
			*f = (*f)[:len(*f)/2]
		}
	})
	mustAppend(t, w, walRecord{Op: "submit", ID: "b", Source: "y := 2"}, true)
	restore()
	w.abandon()

	_, recs, st, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].ID != "a" || st.TornBytes == 0 {
		t.Fatalf("torn append: recs=%+v st=%+v, want only a + torn tail", recs, st)
	}
}

// TestWALFrameSanity rejects nonsense length fields as torn tails
// rather than allocating from them.
func TestWALFrameSanity(t *testing.T) {
	var frame [16]byte
	binary.LittleEndian.PutUint32(frame[:], uint32(walMaxRecord+1))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(nil))
	recs, keep, st := scanWAL(frame[:])
	if len(recs) != 0 || keep != 0 || st.TornBytes != 16 {
		t.Fatalf("oversized length: recs=%v keep=%d st=%+v", recs, keep, st)
	}
	recs, keep, st = scanWAL([]byte{1, 2, 3})
	if len(recs) != 0 || keep != 0 || st.TornBytes != 3 {
		t.Fatalf("short header: recs=%v keep=%d st=%+v", recs, keep, st)
	}
}
