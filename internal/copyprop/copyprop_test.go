package copyprop

import (
	"strings"
	"testing"

	"pdce/internal/baseline"
	"pdce/internal/cfg"
	"pdce/internal/core"
	"pdce/internal/lcm"
	"pdce/internal/parser"
	"pdce/internal/progen"
	"pdce/internal/verify"
)

func nodeText(t *testing.T, g *cfg.Graph, label string) string {
	t.Helper()
	n, ok := g.NodeByLabel(label)
	if !ok {
		t.Fatalf("no node %q", label)
	}
	var parts []string
	for _, s := range n.Stmts {
		parts = append(parts, s.String())
	}
	return strings.Join(parts, "; ")
}

func TestPropagateStraightLine(t *testing.T) {
	g := parser.MustParseCFG(`
node 1 { y := x; out(y+1) }
edge s 1
edge 1 e
`)
	out, st := Optimize(g)
	if st.Rewritten != 1 {
		t.Errorf("rewritten = %d", st.Rewritten)
	}
	if got := nodeText(t, out, "1"); got != "y := x; out(x+1)" {
		t.Errorf("node 1 = %q", got)
	}
}

func TestPropagationKilledBySourceModification(t *testing.T) {
	g := parser.MustParseCFG(`
node 1 { y := x; x := 0; out(y) }
edge s 1
edge 1 e
`)
	out, st := Optimize(g)
	if st.Rewritten != 0 {
		t.Errorf("propagated through a killed copy:\n%s", out)
	}
}

func TestPropagationKilledByDestModification(t *testing.T) {
	g := parser.MustParseCFG(`
node 1 { y := x; y := 5; out(y) }
edge s 1
edge 1 e
`)
	out, _ := Optimize(g)
	if got := nodeText(t, out, "1"); got != "y := x; y := 5; out(y)" {
		t.Errorf("node 1 = %q", got)
	}
}

func TestPropagationAcrossJoinNeedsAllPaths(t *testing.T) {
	// Copy y := x only on one branch: the join must not substitute.
	g := parser.MustParseCFG(`
node 0 {}
node 1 { y := x }
node 2 { y := 7 }
node 3 { out(y) }
edge s 0
edge 0 1
edge 0 2
edge 1 3
edge 2 3
edge 3 e
`)
	out, _ := Optimize(g)
	if got := nodeText(t, out, "3"); got != "out(y)" {
		t.Errorf("join substituted a one-sided copy: %q", got)
	}
	// With the same copy on both branches, it must substitute.
	g2 := parser.MustParseCFG(`
node 0 {}
node 1 { y := x }
node 2 { y := x }
node 3 { out(y) }
edge s 0
edge 0 1
edge 0 2
edge 1 3
edge 2 3
edge 3 e
`)
	out2, _ := Optimize(g2)
	if got := nodeText(t, out2, "3"); got != "out(x)" {
		t.Errorf("join missed an all-paths copy: %q", got)
	}
}

func TestPropagationChain(t *testing.T) {
	g := parser.MustParseCFG(`
node 1 { y := x; z := y; out(z) }
edge s 1
edge 1 e
`)
	out, st := Optimize(g)
	if got := nodeText(t, out, "1"); got != "y := x; z := x; out(x)" {
		t.Errorf("node 1 = %q (passes=%d)", got, st.Passes)
	}
	// The now-dead copies are elimination's job:
	elim := baseline.IteratedDCE(out)
	if elim.Graph.NumAssignments() != 0 {
		t.Errorf("dce after copyprop left %d assignments", elim.Graph.NumAssignments())
	}
}

func TestPropagationInLoop(t *testing.T) {
	// y := x inside a loop where x is loop-invariant: uses of y
	// after the copy may be rewritten; the back edge re-establishes
	// the copy each iteration.
	g := parser.MustParseSource("p", `
i := 3
do {
    y := x
    out(y)
    i := i - 1
} while i > 0
`)
	out, st := Optimize(g)
	if st.Rewritten == 0 {
		t.Errorf("no propagation inside loop:\n%s", out)
	}
	rep := verify.CheckTransformed(g, out, verify.Options{Seeds: 16, OutputsOnly: true})
	if !rep.OK() {
		t.Error(rep)
	}
}

func TestSelfCopyIgnored(t *testing.T) {
	g := parser.MustParseCFG(`
node 1 { x := x; out(x) }
edge s 1
edge 1 e
`)
	out, st := Optimize(g)
	if st.Rewritten != 0 {
		t.Errorf("self copy triggered rewriting:\n%s", out)
	}
}

func TestSemanticsOnRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		params := progen.Params{Seed: seed, Stmts: 60, Vars: 4, LoopProb: 0.15, BranchProb: 0.25}
		if seed%5 == 0 {
			params.Irreducible = true
		}
		g := progen.Generate(params)
		out, _ := Optimize(g)
		cfg.MustValidate(out)
		// Copy propagation changes which variables expressions
		// read but not program outputs, and it never adds or
		// removes assignments, so the full check (including
		// non-impairment) applies: pattern *texts* change, so use
		// the outputs-only mode plus an explicit statement-count
		// equality.
		rep := verify.CheckTransformed(g, out, verify.Options{Seeds: 24, Fuel: 512, OutputsOnly: true})
		if !rep.OK() {
			t.Errorf("seed %d: %s", seed, rep)
		}
		if out.NumStmts() != g.NumStmts() {
			t.Errorf("seed %d: statement count changed %d -> %d", seed, g.NumStmts(), out.NumStmts())
		}
	}
}

// TestFootnote1 reproduces the paper's footnote 1: on the Figure 3
// loop pair, interleaving code motion (lcm) with copy propagation and
// dead code elimination removes the right-hand-side *computations*
// from the loop — but the assignment to x stays inside the loop.
// Partial dead code elimination removes it.
func TestFootnote1(t *testing.T) {
	// Figure 3's loop with the paper's pair shape (first instruction
	// defines an operand of the second); uses after the loop keep
	// both values live on some path.
	g := parser.MustParseCFG(`
node 1 {}
node 2 {
  y := a+b
  x := y-d
}
node 3 {}
node 4 {}
node 7 { out(y) }
node 8 { out(x) }
node 9 {}
edge s 1
edge 1 2
edge 2 3
edge 3 2
edge 3 4
edge 4 7
edge 4 8
edge 7 9
edge 8 9
edge 9 e
`)

	// One application of the interleaved conventional combination —
	// the granularity of [10]: code motion, then copy propagation,
	// then dead code elimination (iterated; elimination has no
	// second-order interplay with the other two within one round).
	r, err := lcm.Optimize(g)
	if err != nil {
		t.Fatal(err)
	}
	conventional := r.Graph
	Apply(conventional)
	for core.EliminateDead(conventional).Changed() {
	}
	rep := verify.CheckTransformed(g, conventional, verify.Options{Seeds: 32, Fuel: 512, OutputsOnly: true})
	if !rep.OK() {
		t.Fatalf("conventional pipeline broke semantics: %s", rep)
	}

	// Footnote 1's claim: the right-hand-side computations left the
	// loop (y's value arrives via a hoisted temporary), but an
	// assignment writing x remains inside it.
	if !assignOnCycle(conventional, "x") {
		t.Errorf("footnote 1 not reproduced: conventional round emptied the loop\n%s", conventional)
	}

	// pde removes the whole pair from the loop.
	opt, _, err := core.PDE(g)
	if err != nil {
		t.Fatal(err)
	}
	if assignOnCycle(opt, "x") || assignOnCycle(opt, "y") {
		t.Errorf("pde left the pair in the loop:\n%s", opt)
	}
}

// assignOnCycle reports whether some assignment to v sits on a cycle.
func assignOnCycle(g *cfg.Graph, v string) bool {
	for _, n := range g.Nodes() {
		has := false
		for _, s := range n.Stmts {
			if a, ok := s.(interface{ String() string }); ok && strings.HasPrefix(a.String(), v+" :=") {
				has = true
			}
		}
		if !has {
			continue
		}
		// Is n on a cycle?
		seen := map[*cfg.Node]bool{}
		stack := append([]*cfg.Node(nil), n.Succs()...)
		for len(stack) > 0 {
			m := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if m == n {
				return true
			}
			if seen[m] {
				continue
			}
			seen[m] = true
			stack = append(stack, m.Succs()...)
		}
	}
	return false
}
