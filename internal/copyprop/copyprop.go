// Package copyprop implements global copy propagation: where a copy
// x := y provably holds (x and y unmodified since the copy on every
// incoming path), later uses of x are rewritten to y.
//
// In this repository the pass plays the role the paper assigns it in
// footnote 1: Dhamdhere, Rosen and Zadeck's interleaving of code
// motion and copy propagation [10] can remove the right-hand-side
// computations of Figure 3's loop-invariant pair from the loop — but
// the assignment to the pair's second variable stays behind, which
// partial dead code elimination removes. The footnote-1 experiment in
// the baseline tests and examples composes lcm + copyprop + dce to
// reproduce exactly that gap.
//
// The analysis is a classic forward bit-vector problem over the copy
// occurrences of the program (available copies): a copy is generated
// by its occurrence, killed by any modification of either side, and
// meets by intersection at joins.
package copyprop

import (
	"pdce/internal/bitvec"
	"pdce/internal/cfg"
	"pdce/internal/dataflow"
	"pdce/internal/ir"
)

// copyPair is a copy pattern x := y.
type copyPair struct {
	dst, src ir.Var
}

// table indexes the distinct copy patterns of a program.
type table struct {
	pairs []copyPair
	index map[copyPair]int
	// killedBy[v] lists the copy indices invalidated by a
	// modification of v (copies with v on either side).
	killedBy map[ir.Var][]int
}

func collect(g *cfg.Graph) *table {
	t := &table{index: make(map[copyPair]int), killedBy: make(map[ir.Var][]int)}
	for _, n := range g.Nodes() {
		for _, s := range n.Stmts {
			a, ok := s.(ir.Assign)
			if !ok {
				continue
			}
			ref, ok := a.RHS.(ir.VarRef)
			if !ok || ref.Name == a.LHS {
				continue // not a copy, or the no-op x := x
			}
			p := copyPair{dst: a.LHS, src: ref.Name}
			if _, dup := t.index[p]; dup {
				continue
			}
			i := len(t.pairs)
			t.pairs = append(t.pairs, p)
			t.index[p] = i
			t.killedBy[p.dst] = append(t.killedBy[p.dst], i)
			t.killedBy[p.src] = append(t.killedBy[p.src], i)
		}
	}
	return t
}

// step updates the available-copies vector across one statement.
func (t *table) step(s ir.Stmt, v *bitvec.Vector) {
	d, ok := ir.Def(s)
	if !ok {
		return
	}
	for _, i := range t.killedBy[d] {
		v.Clear(i)
	}
	if a := s.(ir.Assign); true {
		if ref, isRef := a.RHS.(ir.VarRef); isRef && ref.Name != a.LHS {
			if i, known := t.index[copyPair{dst: a.LHS, src: ref.Name}]; known {
				v.Set(i)
			}
		}
	}
}

type copyProblem struct {
	t    *table
	bits int
}

func (p *copyProblem) Bits() int                     { return p.bits }
func (p *copyProblem) Direction() dataflow.Direction { return dataflow.Forward }
func (p *copyProblem) Meet() dataflow.Meet           { return dataflow.Intersect }
func (p *copyProblem) Boundary() *bitvec.Vector      { return bitvec.New(p.bits) }
func (p *copyProblem) Top() *bitvec.Vector           { return bitvec.NewAllOnes(p.bits) }

func (p *copyProblem) Transfer(n *cfg.Node, in, out *bitvec.Vector) {
	out.CopyFrom(in)
	for _, s := range n.Stmts {
		p.t.step(s, out)
	}
}

// Stats describes an Apply run.
type Stats struct {
	// Rewritten counts statements whose uses were substituted.
	Rewritten int
	// Passes counts analysis+rewrite sweeps until the fixpoint
	// (propagating a copy can expose another).
	Passes int
}

// Changed reports whether the pass altered the program.
func (s Stats) Changed() bool { return s.Rewritten > 0 }

// Apply propagates copies in g in place until no further substitution
// applies. Only uses are rewritten; removing the then-dead copies is
// deliberately left to the elimination passes (core.EliminateDead and
// friends), keeping each pass single-purpose.
func Apply(g *cfg.Graph) Stats {
	var st Stats
	// Each pass shortens copy chains (substitution always moves a
	// use to an older, stable value), so the fixpoint arrives within
	// a chain-length number of passes; the cap turns a hypothetical
	// implementation bug into visible truncation instead of a hang.
	limit := g.NumStmts() + 10
	for st.Passes < limit {
		st.Passes++
		rewritten := applyOnce(g)
		if rewritten == 0 {
			return st
		}
		st.Rewritten += rewritten
	}
	return st
}

func applyOnce(g *cfg.Graph) int {
	t := collect(g)
	if len(t.pairs) == 0 {
		return 0
	}
	sol := dataflow.Solve(g, &copyProblem{t: t, bits: len(t.pairs)})

	rewritten := 0
	for _, n := range g.Nodes() {
		avail := sol.In[n.ID].Copy()
		for si, s := range n.Stmts {
			// Build the substitution valid at this point:
			// dst ↦ src for every available copy. Chains
			// (x:=y available and y:=z available) resolve
			// across the outer fixpoint iterations.
			subst := make(map[ir.Var]ir.Var)
			avail.ForEach(func(i int) {
				p := t.pairs[i]
				if _, dup := subst[p.dst]; !dup {
					subst[p.dst] = p.src
				}
			})
			if len(subst) > 0 {
				if ns, changed := rewriteStmt(s, subst); changed {
					n.Stmts[si] = ns
					s = ns
					rewritten++
				}
			}
			t.step(s, avail)
		}
	}
	return rewritten
}

// rewriteStmt substitutes uses in one statement. The left-hand side of
// an assignment is a definition, never a use, and stays.
func rewriteStmt(s ir.Stmt, subst map[ir.Var]ir.Var) (ir.Stmt, bool) {
	switch st := s.(type) {
	case ir.Assign:
		rhs := ir.SubstVars(st.RHS, subst)
		if ir.ExprEqual(rhs, st.RHS) {
			return s, false
		}
		return ir.Assign{LHS: st.LHS, RHS: rhs}, true
	case ir.Out:
		arg := ir.SubstVars(st.Arg, subst)
		if ir.ExprEqual(arg, st.Arg) {
			return s, false
		}
		return ir.Out{Arg: arg}, true
	case ir.Branch:
		cond := ir.SubstVars(st.Cond, subst)
		if ir.ExprEqual(cond, st.Cond) {
			return s, false
		}
		return ir.Branch{Cond: cond}, true
	}
	return s, false
}

// Optimize is the non-destructive entry point: it clones g, applies
// copy propagation, and returns the result.
func Optimize(g *cfg.Graph) (*cfg.Graph, Stats) {
	out := g.Clone()
	st := Apply(out)
	return out, st
}
