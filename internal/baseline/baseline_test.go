package baseline

import (
	"testing"

	"pdce/internal/cfg"
	"pdce/internal/core"
	"pdce/internal/figures"
	"pdce/internal/parser"
	"pdce/internal/progen"
	"pdce/internal/verify"
)

func TestIteratedDCEChain(t *testing.T) {
	// A dead chain requires multiple dce rounds (the
	// elimination-elimination effect), and iteration provides them.
	g := parser.MustParseCFG(`
node 1 {
  a := 1
  b := a+1
  c := b+1
  out(9)
}
edge s 1
edge 1 e
`)
	r := IteratedDCE(g)
	if r.Removed != 3 {
		t.Errorf("removed %d, want 3", r.Removed)
	}
	if r.Rounds < 3 {
		t.Errorf("rounds = %d, want at least 3 (one per chain link plus fixpoint check)", r.Rounds)
	}
	cfg.MustValidate(r.Graph)
}

func TestIteratedDCELeavesPartiallyDead(t *testing.T) {
	// Figure 1: dce alone cannot remove the partially dead y := a+b.
	fig, _ := figures.ByNum(1)
	g := fig.Graph()
	r := IteratedDCE(g)
	if r.Removed != 0 {
		t.Errorf("dce removed %d from figure 1; partially dead code should be out of reach", r.Removed)
	}
}

func TestIteratedFCESingleStep(t *testing.T) {
	// Faint elimination removes a whole faint chain in one step; the
	// second round only confirms the fixpoint.
	g := parser.MustParseCFG(`
node 1 {
  a := 1
  b := a+1
  c := b+1
  out(9)
}
edge s 1
edge 1 e
`)
	r := IteratedFCE(g)
	if r.Removed != 3 {
		t.Errorf("removed %d, want 3", r.Removed)
	}
	if r.Rounds != 2 {
		t.Errorf("rounds = %d, want 2 (one removing, one confirming)", r.Rounds)
	}
}

func TestDefUseDCEMatchesFCE(t *testing.T) {
	// The optimistic def-use marking detects exactly the faint
	// assignments (Section 5.2).
	for seed := int64(0); seed < 30; seed++ {
		params := progen.Params{Seed: seed, Stmts: 50, Vars: 5, LoopProb: 0.15}
		if seed%4 == 1 {
			params.Irreducible = true
		}
		g := progen.Generate(params)
		du := DefUseDCE(g)
		fce := IteratedFCE(g)
		if du.Removed != fce.Removed {
			t.Errorf("seed %d: def-use removed %d, fce removed %d", seed, du.Removed, fce.Removed)
		}
		if !cfg.Equal(du.Graph, fce.Graph) {
			t.Errorf("seed %d: def-use and fce results differ", seed)
		}
	}
}

func TestDefUseDCESemantics(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := progen.Generate(progen.Params{Seed: seed, Stmts: 40, Vars: 5})
		r := DefUseDCE(g)
		rep := verify.CheckTransformed(g, r.Graph, verify.Options{Seeds: 24, Fuel: 512})
		if !rep.OK() {
			t.Errorf("seed %d: %s", seed, rep)
		}
	}
}

func TestSingleRoundMissesSecondOrderEffects(t *testing.T) {
	// Figure 3's dependent pair needs several rounds; a single round
	// must achieve strictly less than the fixpoint.
	fig, _ := figures.ByNum(3)
	g := fig.Graph()
	sr, err := SingleRound(g, core.ModeDead)
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := core.PDE(g)
	if err != nil {
		t.Fatal(err)
	}
	// Single round is still correct...
	rep := verify.CheckTransformed(g, sr.Graph, verify.Options{Seeds: 32, Fuel: 512})
	if !rep.OK() {
		t.Fatalf("single round broke semantics: %s", rep)
	}
	// ...but the loop still contains an assignment that the full
	// algorithm removes.
	imp := verify.MeasureImprovement(g, sr.Graph, 32, 512)
	impFull := verify.MeasureImprovement(g, full, 32, 512)
	if imp.Savings() >= impFull.Savings() {
		t.Errorf("single round savings %.3f not below full pde %.3f",
			imp.Savings(), impFull.Savings())
	}
}

func TestSingleRoundValidatesInput(t *testing.T) {
	g := cfg.New("broken")
	g.AddNode("orphan")
	if _, err := SingleRound(g, core.ModeDead); err == nil {
		t.Error("invalid input accepted")
	}
}

func TestUnionSinkImpairsLoops(t *testing.T) {
	// The union-meet ablation on the paper's Figure 5 must impair
	// executions (that's what it exists to demonstrate): the
	// assignment gets pushed into the second loop, exactly the
	// Briggs/Cooper hazard the paper describes.
	fig, _ := figures.ByNum(5)
	g := fig.Graph()
	r := UnionSinkOnce(g)
	cfg.MustValidate(r.Graph)
	rep := verify.CheckTransformed(g, r.Graph, verify.Options{Seeds: 64, Fuel: 512})
	if rep.OK() {
		t.Errorf("union sinking unexpectedly preserved all guarantees on figure 5:\n%s", r.Graph)
	}
}

func TestPDEOutperformsElimOnlyBaselines(t *testing.T) {
	// On the figure corpus, pde's dynamic savings dominate the pure
	// eliminators (which find nothing partially dead).
	for _, fig := range figures.All() {
		if fig.ExpectedPDE == "" {
			continue
		}
		g := fig.Graph()
		pde, _, err := core.PDE(g)
		if err != nil {
			t.Fatal(err)
		}
		dce := IteratedDCE(g)
		sPDE := verify.MeasureImprovement(g, pde, 48, 512).Savings()
		sDCE := verify.MeasureImprovement(g, dce.Graph, 48, 512).Savings()
		if sPDE < sDCE {
			t.Errorf("%s: pde savings %.3f below dce %.3f", fig.Name, sPDE, sDCE)
		}
	}
}
