// Package baseline implements the comparison points of the paper's
// Related Work and Section 5.2:
//
//   - IteratedDCE / IteratedFCE: the "usual approaches" — pure dead or
//     faint code elimination without any code motion. Everything they
//     remove, pde/pfe removes too; partially dead code stays behind.
//   - DefUseDCE: the classic def-use-graph marking algorithm
//     (references [2, 21, 30]): optimistic marking from relevant
//     statements over def-use chains, which detects exactly the faint
//     assignments.
//   - SingleRound: one sinking step followed by one elimination step —
//     the power of an algorithm without second-order iteration
//     (Figures 3, 10, 11, 12 defeat it).
//   - UnionSink: an intentionally unsafe ablation replacing the
//     product (all-paths) confluence of the delayability system with a
//     sum (some-path), which is the essential difference to eager
//     instruction sinking à la Briggs/Cooper: it pushes code into
//     loops and impairs (or even breaks) executions — the hazard the
//     paper's Related Work calls out. It exists to be *measured
//     failing* in the C6 experiment.
package baseline

import (
	"fmt"

	"pdce/internal/analysis"
	"pdce/internal/bitvec"
	"pdce/internal/cfg"
	"pdce/internal/core"
	"pdce/internal/dataflow"
	"pdce/internal/ir"
)

// Result pairs a transformed program with simple counts.
type Result struct {
	Graph   *cfg.Graph
	Removed int
	Rounds  int
}

// IteratedDCE applies dead code elimination to its fixpoint (no
// sinking). This is classic global dead code elimination: second-order
// elimination-elimination effects are handled by iteration, partially
// dead assignments are not touched.
func IteratedDCE(g *cfg.Graph) Result {
	out := g.Clone()
	res := Result{Graph: out}
	for {
		res.Rounds++
		st := core.EliminateDead(out)
		res.Removed += st.Removed
		if !st.Changed() {
			return res
		}
	}
}

// IteratedFCE applies faint code elimination to its fixpoint (no
// sinking). A single step already removes all faint assignments;
// iterating confirms the fixpoint.
func IteratedFCE(g *cfg.Graph) Result {
	out := g.Clone()
	res := Result{Graph: out}
	for {
		res.Rounds++
		st := core.EliminateFaint(out)
		res.Removed += st.Removed
		if !st.Changed() {
			return res
		}
	}
}

// DefUseDCE eliminates useless assignments with the def-use-graph
// marking algorithm: seed the worklist with the definitions reaching
// relevant statements, propagate need backwards over def-use chains,
// and sweep every unmarked assignment. With these optimistic
// assumptions every faint assignment is detected (Section 5.2).
func DefUseDCE(g *cfg.Graph) Result {
	out := g.Clone()
	rd := analysis.ReachingDefs(out)
	fp := rd.Flat

	marked := make([]bool, len(rd.Defs))
	var queue []int // def bits to process

	markDefsOf := func(i int, vars map[ir.Var]bool) {
		rd.In[i].ForEach(func(bit int) {
			def := fp.Instrs[rd.Defs[bit]].Stmt.(ir.Assign)
			if vars[def.LHS] && !marked[bit] {
				marked[bit] = true
				queue = append(queue, bit)
			}
		})
	}

	// Seed: defs feeding relevant statements.
	for i, instr := range fp.Instrs {
		if ir.IsRelevant(instr.Stmt) {
			markDefsOf(i, ir.UsesSet(instr.Stmt))
		}
	}
	// Propagate: a needed assignment needs the defs of its operands.
	for len(queue) > 0 {
		bit := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		di := rd.Defs[bit]
		markDefsOf(di, ir.UsesSet(fp.Instrs[di].Stmt))
	}

	// Sweep.
	res := Result{Graph: out, Rounds: 1}
	removeAt := make(map[*cfg.Node]map[int]bool)
	for bit, di := range rd.Defs {
		if !marked[bit] {
			instr := fp.Instrs[di]
			if removeAt[instr.Node] == nil {
				removeAt[instr.Node] = make(map[int]bool)
			}
			removeAt[instr.Node][instr.Index] = true
		}
	}
	for _, n := range out.Nodes() {
		dead := removeAt[n]
		if len(dead) == 0 {
			continue
		}
		kept := n.Stmts[:0]
		for si, s := range n.Stmts {
			if dead[si] {
				res.Removed++
				continue
			}
			kept = append(kept, s)
		}
		n.Stmts = kept
	}
	return res
}

// SingleRound performs exactly one assignment sinking step followed by
// one elimination step — the shape of a PDE algorithm without
// second-order iteration. The result is correct but generally
// suboptimal; cmd/benchpaper quantifies the gap.
func SingleRound(g *cfg.Graph, mode core.Mode) (Result, error) {
	if errs := cfg.Validate(g); len(errs) > 0 {
		return Result{}, fmt.Errorf("baseline: invalid input: %s", errs[0])
	}
	out := g.Clone()
	cfg.SplitCriticalEdges(out)
	core.Sink(out)
	var st core.ElimStats
	if mode == core.ModeFaint {
		st = core.EliminateFaint(out)
	} else {
		st = core.EliminateDead(out)
	}
	cfg.RemoveEmptySynthetic(out)
	return Result{Graph: out, Removed: st.Removed, Rounds: 1}, nil
}

// --- union-meet sinking ablation ------------------------------------

// unionDelayProblem is the delayability system of Table 2 with the
// product over predecessors replaced by a sum: a pattern counts as
// delayed to a node as soon as it is delayable along *some* incoming
// path. This discards the paper's justification invariant
// (Definition 3.2, condition 2) and is the analytical core of why
// eager sinking schemes can push computations into loops.
type unionDelayProblem struct {
	locals *analysis.Locals
	bits   int
}

func (p *unionDelayProblem) Bits() int                     { return p.bits }
func (p *unionDelayProblem) Direction() dataflow.Direction { return dataflow.Forward }
func (p *unionDelayProblem) Meet() dataflow.Meet           { return dataflow.Union }
func (p *unionDelayProblem) Boundary() *bitvec.Vector      { return bitvec.New(p.bits) }
func (p *unionDelayProblem) Top() *bitvec.Vector           { return bitvec.New(p.bits) } // least fixpoint

func (p *unionDelayProblem) Transfer(n *cfg.Node, in, out *bitvec.Vector) {
	out.CopyFrom(in)
	out.AndNot(p.locals.LocBlocked[n.ID])
	out.Or(p.locals.LocDelayed[n.ID])
}

// UnionSinkOnce performs one sinking step under the unsafe union-meet
// delayability, followed by one dce step. Deliberately NOT semantics
// preserving in general; used only as a measured ablation.
func UnionSinkOnce(g *cfg.Graph) Result {
	out := g.Clone()
	cfg.SplitCriticalEdges(out)
	pt := out.CollectPatterns()
	locals := analysis.ComputeLocals(out, pt)
	prob := &unionDelayProblem{locals: locals, bits: pt.Len()}
	sol := dataflow.Solve(out, prob)

	// Derive insertion predicates exactly as analysis.Delayability
	// does, but over the union solution.
	nIns := make([]*bitvec.Vector, out.NumNodes())
	xIns := make([]*bitvec.Vector, out.NumNodes())
	for _, n := range out.Nodes() {
		ni := sol.In[n.ID].Copy()
		ni.And(locals.LocBlocked[n.ID])
		nIns[n.ID] = ni
		some := bitvec.New(pt.Len())
		for _, m := range n.Succs() {
			nd := sol.In[m.ID].Copy()
			nd.Not()
			some.Or(nd)
		}
		xi := sol.Out[n.ID].Copy()
		xi.And(some)
		xIns[n.ID] = xi
	}
	applyInsertRemove(out, pt, locals, nIns, xIns)
	st := core.EliminateDead(out)
	cfg.RemoveEmptySynthetic(out)
	return Result{Graph: out, Removed: st.Removed, Rounds: 1}
}

// applyInsertRemove mirrors core's sinking application for the
// ablation: remove candidates, materialize insertions (keeping
// candidates fused with an exit insertion in place).
func applyInsertRemove(g *cfg.Graph, pt *ir.PatternTable, locals *analysis.Locals, nIns, xIns []*bitvec.Vector) {
	for _, n := range g.Nodes() {
		keep := map[int]bool{}
		remove := map[int]bool{}
		var exitPatterns []int
		for pi := 0; pi < pt.Len(); pi++ {
			si := locals.Candidate(n.ID, pi)
			if si < 0 {
				continue
			}
			if xIns[n.ID].Get(pi) {
				keep[si] = true
			} else {
				remove[si] = true
			}
		}
		xIns[n.ID].ForEach(func(pi int) {
			if locals.Candidate(n.ID, pi) < 0 {
				exitPatterns = append(exitPatterns, pi)
			}
		})
		if len(remove) == 0 && len(exitPatterns) == 0 && nIns[n.ID].IsZero() {
			continue
		}
		var stmts []ir.Stmt
		nIns[n.ID].ForEach(func(pi int) { stmts = append(stmts, pt.MakeAssign(pi)) })
		for si, s := range n.Stmts {
			if remove[si] && !keep[si] {
				continue
			}
			stmts = append(stmts, s)
		}
		// Unlike the safe algorithm, the union ablation can demand
		// exit insertions at branching nodes; keep a Branch
		// terminator last so the graph stays structurally valid.
		insertAt := len(stmts)
		if k := len(stmts); k > 0 {
			if _, isBranch := stmts[k-1].(ir.Branch); isBranch {
				insertAt = k - 1
			}
		}
		tail := append([]ir.Stmt(nil), stmts[insertAt:]...)
		stmts = stmts[:insertAt]
		for _, pi := range exitPatterns {
			stmts = append(stmts, pt.MakeAssign(pi))
		}
		stmts = append(stmts, tail...)
		n.Stmts = stmts
	}
}
