package hoist

import (
	"strings"
	"testing"

	"pdce/internal/cfg"
	"pdce/internal/core"
	"pdce/internal/figures"
	"pdce/internal/parser"
	"pdce/internal/progen"
	"pdce/internal/verify"
)

func TestHoistStraightLine(t *testing.T) {
	g := parser.MustParseCFG(`
node 1 { a := 1 }
node 2 { x := c+d }
node 3 { out(x+a) }
edge s 1
edge 1 2
edge 2 3
edge 3 e
`)
	out, st, err := Optimize(g)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Changed() {
		t.Fatal("nothing hoisted")
	}
	// x := c+d can rise into node 1 (a := 1 does not block it); it
	// stops there because the start node cannot host code.
	n1, _ := out.NodeByLabel("1")
	text := nodeTextOf(n1)
	if !strings.Contains(text, "x := c+d") {
		t.Errorf("node 1 = %q, want the hoisted assignment", text)
	}
	rep := verify.CheckTransformed(g, out, verify.Options{Seeds: 24})
	if !rep.OK() {
		t.Error(rep)
	}
}

func TestHoistBlockedByDependency(t *testing.T) {
	g := parser.MustParseCFG(`
node 1 { a := 1; x := a+b; out(x) }
edge s 1
edge 1 e
`)
	out, st, err := Optimize(g)
	if err != nil {
		t.Fatal(err)
	}
	if st.Changed() {
		t.Errorf("hoisted a blocked assignment:\n%s", out)
	}
}

func TestHoistStopsAtUnanticipatedBranch(t *testing.T) {
	// x := a+b occurs only on one branch: hoisting above the branch
	// point would execute it on the other path too — inadmissible.
	g := parser.MustParseCFG(`
node 0 {}
node 1 { x := a+b; out(x) }
node 2 { out(b) }
node 3 {}
edge s 0
edge 0 1
edge 0 2
edge 1 3
edge 2 3
edge 3 e
`)
	out, _, err := Optimize(g)
	if err != nil {
		t.Fatal(err)
	}
	n0, _ := out.NodeByLabel("0")
	if len(n0.Stmts) != 0 {
		t.Errorf("assignment speculated above the branch: %v", n0.Stmts)
	}
	rep := verify.CheckTransformed(g, out, verify.Options{Seeds: 24})
	if !rep.OK() {
		t.Error(rep)
	}
}

func TestHoistMergesAcrossJoin(t *testing.T) {
	// The same pattern at the start of both branches rises above the
	// branch point (the m-to-n mirror image).
	g := parser.MustParseCFG(`
node 0 {}
node 1 { x := a+b; out(x+1) }
node 2 { x := a+b; out(x+2) }
node 3 {}
edge s 0
edge 0 1
edge 0 2
edge 1 3
edge 2 3
edge 3 e
`)
	out, st, err := Optimize(g)
	if err != nil {
		t.Fatal(err)
	}
	n0, _ := out.NodeByLabel("0")
	if nodeTextOf(n0) != "x := a+b" {
		t.Errorf("node 0 = %q, want the merged assignment", nodeTextOf(n0))
	}
	if st.RemovedCandidates < 2 {
		t.Errorf("removed %d candidates, want both branch copies", st.RemovedCandidates)
	}
	rep := verify.CheckTransformed(g, out, verify.Options{Seeds: 24})
	if !rep.OK() {
		t.Error(rep)
	}
}

func TestHoistIdempotent(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := progen.Generate(progen.Params{Seed: seed, Stmts: 40, Vars: 5})
		once, _, err := Optimize(g)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		twice, st, err := Optimize(once)
		if err != nil {
			t.Fatalf("seed %d second: %v", seed, err)
		}
		if st.Changed() || !cfg.Equal(once, twice) {
			t.Errorf("seed %d: hoisting not idempotent", seed)
		}
	}
}

func TestHoistPreservesSemanticsAndCounts(t *testing.T) {
	// Hoisting relocates assignments 1:1 along paths: the full check
	// (outputs + per-pattern non-impairment) must pass, and counts
	// are in fact *equal*, not merely bounded.
	for seed := int64(0); seed < 20; seed++ {
		params := progen.Params{Seed: seed, Stmts: 50, Vars: 5, LoopProb: 0.15, BranchProb: 0.25}
		if seed%4 == 2 {
			params.Irreducible = true
		}
		g := progen.Generate(params)
		out, _, err := Optimize(g)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		cfg.MustValidate(out)
		rep := verify.CheckTransformed(g, out, verify.Options{Seeds: 24, Fuel: 512})
		if !rep.OK() {
			t.Errorf("seed %d: %s", seed, rep)
		}
		imp := verify.MeasureImprovement(g, out, 24, 512)
		if imp.OrigAssigns != imp.OptAssigns {
			t.Errorf("seed %d: hoisting changed dynamic counts %d -> %d (must be exactly preserved)",
				seed, imp.OrigAssigns, imp.OptAssigns)
		}
	}
}

// TestHoistCannotEliminatePartialDeadness reproduces the paper's
// Related-Work claim about Dhamdhere's hoisting-based assignment
// motion [9]: on the figure corpus, hoisting never reduces dynamic
// assignment counts (savings stay at exactly zero), while pde does.
func TestHoistCannotEliminatePartialDeadness(t *testing.T) {
	sawPDEWin := false
	for _, fig := range figures.All() {
		if fig.ExpectedPDE == "" {
			continue
		}
		g := fig.Graph()
		hoisted, _, err := Optimize(g)
		if err != nil {
			t.Fatalf("%s: %v", fig.Name, err)
		}
		sHoist := verify.MeasureImprovement(g, hoisted, 48, 512).Savings()
		if sHoist != 0 {
			t.Errorf("%s: hoisting changed dynamic cost by %.3f — it must be cost-neutral", fig.Name, sHoist)
		}
		pde, _, err := core.PDE(g)
		if err != nil {
			t.Fatal(err)
		}
		if verify.MeasureImprovement(g, pde, 48, 512).Savings() > 0 {
			sawPDEWin = true
		}
	}
	if !sawPDEWin {
		t.Error("pde saved nothing on the whole figure corpus — comparison meaningless")
	}
}

func TestHoistRejectsInvalidInput(t *testing.T) {
	g := cfg.New("bad")
	g.AddNode("orphan")
	if _, _, err := Optimize(g); err == nil {
		t.Error("invalid graph accepted")
	}
}

func nodeTextOf(n *cfg.Node) string {
	var parts []string
	for _, s := range n.Stmts {
		parts = append(parts, s.String())
	}
	return strings.Join(parts, "; ")
}
