// Package hoist implements assignment *hoisting*: moving assignments
// against the control flow as far as possible — the mirror image of
// the paper's assignment sinking. It exists as the Related-Work
// baseline the paper contrasts itself with: Dhamdhere's extension of
// partial redundancy elimination to assignment movement (reference
// [9]) hoists assignments rather than sinking them, "which does not
// allow any elimination of partially dead code". The hoisting
// experiment demonstrates exactly that: hoisting is semantics
// preserving and may shorten temporaries' distance to their uses, but
// its dynamic assignment counts never beat the original program, while
// pde's do.
//
// The machinery mirrors Table 2 under time reversal:
//
//	X-HOIST_n = false                            if n = e
//	          = ∏_{m ∈ succ(n)} N-HOIST_m        otherwise
//	N-HOIST_n = LOCCAND_n + ¬LOCBLOCKED_n · X-HOIST_n
//
//	X-INSERT_n = X-HOIST_n · LOCBLOCKED_n
//	N-INSERT_n = N-HOIST_n · Σ_{m ∈ pred(n)} ¬X-HOIST_m
//
// where a hoisting candidate is the *first* occurrence of a pattern in
// a block with no blocker before it, and blocking is the same
// (symmetric) predicate as for sinking. Justifiability is automatic:
// N-HOIST at a point means every path leaving it reaches a removed
// candidate before any blocker, so an inserted instance is always
// consumed, on every path, exactly once.
//
// Like classic PRE, hoisting can move a faulting evaluation to an
// earlier point of the same path; outputs between the two points are
// then lost on faulting runs. Hoisting is therefore verified on
// fault-free workloads.
package hoist

import (
	"fmt"

	"pdce/internal/bitvec"
	"pdce/internal/cfg"
	"pdce/internal/dataflow"
	"pdce/internal/ir"
)

// Locals holds the hoisting-local predicates.
type Locals struct {
	Patterns *ir.PatternTable

	// LocCand marks blocks containing a hoisting candidate (one bit
	// per pattern); CandidateIdx gives its statement index or -1.
	LocCand      []*bitvec.Vector
	LocBlocked   []*bitvec.Vector
	CandidateIdx [][]int
}

// ComputeLocals computes hoisting candidates: the first occurrence of
// each pattern in a block, provided no earlier instruction of the
// block blocks the pattern.
func ComputeLocals(g *cfg.Graph, pt *ir.PatternTable) *Locals {
	numNodes := g.NumNodes()
	np := pt.Len()
	l := &Locals{
		Patterns:     pt,
		LocCand:      make([]*bitvec.Vector, numNodes),
		LocBlocked:   make([]*bitvec.Vector, numNodes),
		CandidateIdx: make([][]int, numNodes),
	}
	for _, n := range g.Nodes() {
		lc := bitvec.New(np)
		lb := bitvec.New(np)
		cand := make([]int, np)
		for i := range cand {
			cand[i] = -1
		}
		blockedAbove := bitvec.New(np)
		for si, s := range n.Stmts {
			if pi, ok := pt.IndexOfStmt(s); ok && !blockedAbove.Get(pi) && cand[pi] < 0 {
				lc.Set(pi)
				cand[pi] = si
			}
			for pi := 0; pi < np; pi++ {
				if pt.BlocksIdx(s, pi) {
					blockedAbove.Set(pi)
					lb.Set(pi)
				}
			}
		}
		l.LocCand[n.ID] = lc
		l.LocBlocked[n.ID] = lb
		l.CandidateIdx[n.ID] = cand
	}
	return l
}

type hoistProblem struct {
	l    *Locals
	bits int
}

func (p *hoistProblem) Bits() int                     { return p.bits }
func (p *hoistProblem) Direction() dataflow.Direction { return dataflow.Backward }
func (p *hoistProblem) Meet() dataflow.Meet           { return dataflow.Intersect }
func (p *hoistProblem) Boundary() *bitvec.Vector      { return bitvec.New(p.bits) }
func (p *hoistProblem) Top() *bitvec.Vector           { return bitvec.NewAllOnes(p.bits) }

// N = LOCCAND + ¬LOCBLOCKED·X
func (p *hoistProblem) Transfer(n *cfg.Node, out, in *bitvec.Vector) {
	in.CopyFrom(out)
	in.AndNot(p.l.LocBlocked[n.ID])
	in.Or(p.l.LocCand[n.ID])
}

// Result is the hoistability solution with insertion predicates.
type Result struct {
	Locals           *Locals
	NHoist, XHoist   []*bitvec.Vector
	NInsert, XInsert []*bitvec.Vector
}

// Analyze solves the hoistability system on g (critical edges must be
// split, so entry insertions never target join nodes).
func Analyze(g *cfg.Graph, pt *ir.PatternTable) *Result {
	l := ComputeLocals(g, pt)
	sol := dataflow.Solve(g, &hoistProblem{l: l, bits: pt.Len()})
	r := &Result{
		Locals: l,
		NHoist: sol.In, XHoist: sol.Out,
		NInsert: make([]*bitvec.Vector, g.NumNodes()),
		XInsert: make([]*bitvec.Vector, g.NumNodes()),
	}
	// Start boundary — the mirror of Table 2's N-DELAYED_s = false:
	// nothing hoists through the start node, so the frontier (and
	// hence the insertion) lands at the entries of its successors.
	// X-HOIST_s feeds no other equation backward, so clearing it
	// after the solve is exact.
	r.XHoist[g.Start.ID].ClearAll()
	for _, n := range g.Nodes() {
		xi := r.XHoist[n.ID].Copy()
		xi.And(l.LocBlocked[n.ID])
		r.XInsert[n.ID] = xi

		somePredNotHoist := bitvec.New(pt.Len())
		for _, m := range n.Preds() {
			xh := r.XHoist[m.ID].Copy()
			xh.Not()
			somePredNotHoist.Or(xh)
		}
		ni := r.NHoist[n.ID].Copy()
		ni.And(somePredNotHoist)
		r.NInsert[n.ID] = ni
	}
	return r
}

// Stats describes one hoisting application.
type Stats struct {
	RemovedCandidates int
	Inserted          int
}

// Changed reports whether the transformation altered the program.
func (s Stats) Changed() bool { return s.RemovedCandidates > 0 || s.Inserted > 0 }

// hoistOnce performs one exhaustive hoisting step on g (critical
// edges already split). Decisions are made globally before any
// mutation: keep-fusions couple a node's insertions with candidates in
// *other* nodes (a branch node's exit insertion materializes at its
// successors' entries), so removal and insertion cannot be decided
// block-locally as in the sinking direction.
func hoistOnce(g *cfg.Graph) Stats {
	pt := g.CollectPatterns()
	r := Analyze(g, pt)
	l := r.Locals

	var st Stats
	type insertion struct {
		n       *cfg.Node
		atEntry bool
		pi      int
	}
	var pending []insertion
	keep := make(map[*cfg.Node]map[int]bool) // stmt indices to keep

	markKeep := func(n *cfg.Node, si int) {
		if keep[n] == nil {
			keep[n] = make(map[int]bool)
		}
		keep[n][si] = true
	}

	// Phase 1: decide insertions and fusions.
	for _, n := range g.Nodes() {
		cand := l.CandidateIdx[n.ID]
		// Entry insertions: fuse with the block's own candidate
		// (the paper's stability shape: N-INSERT = LOCCAND means
		// invariance modulo intra-block order).
		r.NInsert[n.ID].ForEach(func(pi int) {
			if si := cand[pi]; si >= 0 {
				markKeep(n, si)
			} else {
				pending = append(pending, insertion{n: n, atEntry: true, pi: pi})
			}
		})
		// Exit insertions.
		r.XInsert[n.ID].ForEach(func(pi int) {
			if len(n.Succs()) <= 1 {
				if _, isBranch := n.Terminator(); !isBranch {
					pending = append(pending, insertion{n: n, atEntry: false, pi: pi})
					return
				}
			}
			// The physical exit slot of a branching node is
			// occupied by the branch; place the instance at
			// the entry of every successor instead (each has
			// exactly one predecessor after edge splitting,
			// so every path through n still executes exactly
			// one instance). When every successor already
			// holds a candidate of the pattern, the whole
			// move is the identity: fuse.
			allHave := true
			for _, m := range n.Succs() {
				if l.CandidateIdx[m.ID][pi] < 0 {
					allHave = false
					break
				}
			}
			if allHave {
				for _, m := range n.Succs() {
					markKeep(m, l.CandidateIdx[m.ID][pi])
				}
				return
			}
			for _, m := range n.Succs() {
				if si := l.CandidateIdx[m.ID][pi]; si >= 0 {
					markKeep(m, si)
				} else {
					pending = append(pending, insertion{n: m, atEntry: true, pi: pi})
				}
			}
		})
	}

	// Phase 2: remove candidates not kept.
	for _, n := range g.Nodes() {
		cand := l.CandidateIdx[n.ID]
		remove := map[int]bool{}
		for pi := 0; pi < pt.Len(); pi++ {
			if si := cand[pi]; si >= 0 && !keep[n][si] {
				remove[si] = true
			}
		}
		if len(remove) == 0 {
			continue
		}
		kept := n.Stmts[:0]
		for si, s := range n.Stmts {
			if remove[si] {
				st.RemovedCandidates++
				continue
			}
			kept = append(kept, s)
		}
		n.Stmts = kept
	}

	// Phase 3: materialize insertions.
	for _, ins := range pending {
		a := pt.MakeAssign(ins.pi)
		if ins.atEntry {
			ins.n.Stmts = append([]ir.Stmt{a}, ins.n.Stmts...)
		} else {
			ins.n.Stmts = append(ins.n.Stmts, a)
		}
		st.Inserted++
	}
	return st
}

// Optimize hoists every assignment of a copy of g as far up as
// admissible, iterating until stable (hoisting one assignment can
// unblock another, mirroring the sinking-sinking effect).
func Optimize(g *cfg.Graph) (*cfg.Graph, Stats, error) {
	if errs := cfg.Validate(g); len(errs) > 0 {
		return nil, Stats{}, fmt.Errorf("hoist: invalid input: %s", errs[0])
	}
	out := g.Clone()
	cfg.SplitCriticalEdges(out)
	// Split every edge from the start node into a *join* with a
	// synthetic landing block. The mirror of footnote 6 — no entry
	// insertions at multi-predecessor nodes, which is what
	// guarantees each path crosses the insertion frontier exactly
	// once — requires every predecessor of a join to be a
	// single-successor node that can host code. The start node
	// cannot (it must stay empty), so such joins get a dedicated
	// pre-entry block; empty ones are removed again afterwards.
	// Single-predecessor successors of start need no landing block:
	// their own entry is an unambiguous insertion point.
	for _, m := range append([]*cfg.Node(nil), out.Start.Succs()...) {
		if len(m.Preds()) <= 1 {
			continue
		}
		label := fmt.Sprintf("H%s,%s", out.Start.Label, m.Label)
		for k := 2; ; k++ {
			if _, taken := out.NodeByLabel(label); !taken {
				break
			}
			label = fmt.Sprintf("H%s,%s#%d", out.Start.Label, m.Label, k)
		}
		mid := out.AddNode(label)
		mid.Synthetic = true
		out.SplitEdgeWith(out.Start, m, mid)
	}
	var total Stats
	limit := 10*out.NumStmts() + 100
	for round := 0; ; round++ {
		if round > limit {
			return nil, total, fmt.Errorf("hoist: did not stabilize within %d rounds", limit)
		}
		st := hoistOnce(out)
		total.RemovedCandidates += st.RemovedCandidates
		total.Inserted += st.Inserted
		if !st.Changed() {
			break
		}
	}
	cfg.RemoveEmptySynthetic(out)
	if errs := cfg.Validate(out); len(errs) > 0 {
		return nil, total, fmt.Errorf("hoist: produced invalid graph: %s", errs[0])
	}
	return out, total, nil
}
