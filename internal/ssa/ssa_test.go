package ssa

import (
	"strings"
	"testing"

	"pdce/internal/baseline"
	"pdce/internal/cfg"
	"pdce/internal/parser"
	"pdce/internal/progen"
	"pdce/internal/verify"
)

func TestBuildStraightLine(t *testing.T) {
	g := parser.MustParseCFG(`
node 1 { x := 1; x := x+1; out(x) }
edge s 1
edge 1 e
`)
	p := Build(g)
	if p.NumPhis != 0 {
		t.Errorf("straight line placed %d phis", p.NumPhis)
	}
	n, _ := g.NodeByLabel("1")
	d0 := p.DefAt[n.ID][0]
	d1 := p.DefAt[n.ID][1]
	if d0.Version == d1.Version {
		t.Error("two defs of x share a version")
	}
	// x := x+1 uses the first def.
	if len(p.UsesAt[n.ID][1]) != 1 || p.UsesAt[n.ID][1][0] != d0.ID {
		t.Errorf("second statement uses %v, want [%d]", p.UsesAt[n.ID][1], d0.ID)
	}
	// out(x) uses the second def.
	if len(p.UsesAt[n.ID][2]) != 1 || p.UsesAt[n.ID][2][0] != d1.ID {
		t.Errorf("out uses %v, want [%d]", p.UsesAt[n.ID][2], d1.ID)
	}
}

func TestBuildDiamondPhi(t *testing.T) {
	g := parser.MustParseCFG(`
node a {}
node b { x := 1 }
node c { x := 2 }
node d { out(x) }
edge s a
edge a b
edge a c
edge b d
edge c d
edge d e
`)
	p := Build(g)
	d, _ := g.NodeByLabel("d")
	phis := p.PhisAt[d.ID]
	if len(phis) != 1 || phis[0].Var != "x" {
		t.Fatalf("phis at join = %v", phis)
	}
	phi := phis[0]
	if len(phi.Operands) != 2 {
		t.Fatalf("phi operands = %v", phi.Operands)
	}
	// Operands come from the two branch defs, aligned with preds.
	b, _ := g.NodeByLabel("b")
	c, _ := g.NodeByLabel("c")
	wantOps := map[int]bool{p.DefAt[b.ID][0].ID: true, p.DefAt[c.ID][0].ID: true}
	for _, op := range phi.Operands {
		if !wantOps[op] {
			t.Errorf("unexpected phi operand %d", op)
		}
	}
	// out(x) reads the phi.
	if p.UsesAt[d.ID][0][0] != phi.ID {
		t.Error("join use does not read the phi")
	}
}

func TestBuildLoopPhi(t *testing.T) {
	g := parser.MustParseSource("p", `
i := 3
while i > 0 { i := i - 1 }
out(i)
`)
	p := Build(g)
	// The loop header needs a phi for i.
	totalPhis := 0
	for _, n := range g.Nodes() {
		totalPhis += len(p.PhisAt[n.ID])
	}
	if totalPhis == 0 {
		t.Error("loop produced no phi")
	}
	if p.NumPhis != totalPhis {
		t.Error("NumPhis inconsistent")
	}
}

func TestUndefUses(t *testing.T) {
	g := parser.MustParseCFG(`
node 1 { out(a+b) }
edge s 1
edge 1 e
`)
	p := Build(g)
	n, _ := g.NodeByLabel("1")
	uses := p.UsesAt[n.ID][0]
	if len(uses) != 2 {
		t.Fatalf("uses = %v", uses)
	}
	for _, id := range uses {
		if !p.Defs[id].IsUndef {
			t.Error("use of uninitialized variable not bound to undef")
		}
	}
}

func TestEliminateRemovesFaintChain(t *testing.T) {
	g := parser.MustParseCFG(`
node 1 {
  a := 1
  b := a+1
  c := b+1
  out(7)
}
edge s 1
edge 1 e
`)
	out, removed := Eliminate(g)
	if removed != 3 {
		t.Errorf("removed %d, want the whole chain (3)", removed)
	}
	if out.NumAssignments() != 0 {
		t.Errorf("assignments left: %d", out.NumAssignments())
	}
	cfg.MustValidate(out)
}

func TestEliminateKeepsLiveCode(t *testing.T) {
	g := parser.MustParseSource("p", `
x := 1
y := x + 1
out(y)
`)
	out, removed := Eliminate(g)
	if removed != 0 {
		t.Errorf("removed %d live assignments", removed)
	}
	if !cfg.Equal(g, out) {
		t.Error("graph changed despite nothing to remove")
	}
}

func TestEliminateFigure9SelfLoop(t *testing.T) {
	g := parser.MustParseCFG(`
node 1 {}
node 2 {}
node 3 { x := x+1 }
node 4 {}
edge s 1
edge 1 2
edge 2 3
edge 2 4
edge 3 2
edge 4 e
`)
	out, removed := Eliminate(g)
	if removed != 1 {
		t.Errorf("removed %d, want the faint self-increment", removed)
	}
	n3, _ := out.NodeByLabel("3")
	if len(n3.Stmts) != 0 {
		t.Error("x := x+1 survived")
	}
}

func TestEliminateBranchOperandsLive(t *testing.T) {
	g := parser.MustParseSource("p", `
c := n + 1
if c > 0 { out(1) } else { out(2) }
`)
	_, removed := Eliminate(g)
	if removed != 0 {
		t.Error("assignment feeding a branch condition was removed")
	}
}

// TestEliminateMatchesIteratedFCE cross-validates two very different
// implementations of "remove exactly the useless assignments": SSA
// mark-and-sweep (this package) against the slotwise faint-variable
// fixpoint (analysis + core). They must remove the same statements.
func TestEliminateMatchesIteratedFCE(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		params := progen.Params{Seed: seed, Stmts: 60, Vars: 5, LoopProb: 0.15, BranchProb: 0.25}
		if seed%4 == 0 {
			params.Irreducible = true
		}
		g := progen.Generate(params)
		bySSA, nSSA := Eliminate(g)
		byFCE := baseline.IteratedFCE(g)
		if nSSA != byFCE.Removed {
			t.Errorf("seed %d: ssa removed %d, fce removed %d", seed, nSSA, byFCE.Removed)
		}
		if diffs := cfg.Diff(bySSA, byFCE.Graph); len(diffs) > 0 {
			t.Errorf("seed %d: results differ:\n  %s", seed, strings.Join(diffs, "\n  "))
		}
	}
}

// TestEliminatePreservesSemantics replays executions against the
// swept program.
func TestEliminatePreservesSemantics(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		g := progen.Generate(progen.Params{Seed: seed, Stmts: 50, Vars: 6})
		out, _ := Eliminate(g)
		rep := verify.CheckTransformed(g, out, verify.Options{Seeds: 24, Fuel: 512})
		if !rep.OK() {
			t.Errorf("seed %d: %s", seed, rep)
		}
	}
}

func TestProgramString(t *testing.T) {
	g := parser.MustParseCFG(`
node a {}
node b { x := 1 }
node c { x := 2 }
node d { out(x) }
edge s a
edge a b
edge a c
edge b d
edge c d
edge d e
`)
	p := Build(g)
	str := p.String()
	if !strings.Contains(str, "phi(") {
		t.Errorf("String() missing phi rendering:\n%s", str)
	}
	if !strings.Contains(str, "x.") {
		t.Errorf("String() missing versioned names:\n%s", str)
	}
}
