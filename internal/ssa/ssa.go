// Package ssa builds static single assignment form over flow graphs
// (Cytron, Ferrante, Rosen, Wegman, Zadeck — reference [5] of the
// paper) and implements the sparse def-use dead code elimination that
// the paper cites as the strongest conventional elimination baseline:
// mark every definition transitively needed by a relevant statement,
// sweep the rest.
//
// The construction is non-destructive: SSA is an overlay of
// definition objects and use links over an existing cfg.Graph; the
// graph's statements are never rewritten. Eliminate clones the graph
// and removes the unmarked assignments.
//
// SSA-based sweeping removes exactly the faint assignments: a
// definition stays only if a use chain connects it to an out or
// branch statement, which is the contrapositive of the faint
// criterion of Table 1. The test suite cross-validates this against
// the slotwise faint solver.
package ssa

import (
	"fmt"

	"pdce/internal/cfg"
	"pdce/internal/ir"
)

// Def is one SSA definition: a parameterless "undef" at the start
// node, a phi at a join, or an assignment occurrence.
type Def struct {
	ID      int
	Var     ir.Var
	Version int

	// Kind discrimination: exactly one of the following shapes.
	IsUndef bool
	IsPhi   bool
	// Node/StmtIndex locate an assignment occurrence (IsPhi and
	// IsUndef false) or the join block of a phi.
	Node      *cfg.Node
	StmtIndex int

	// Operands are the definition IDs this definition reads: the
	// RHS variable defs of an assignment, or one entry per
	// predecessor for a phi (aligned with Node.Preds()).
	Operands []int
}

// Name renders the SSA name, e.g. "x.3".
func (d *Def) Name() string { return fmt.Sprintf("%s.%d", d.Var, d.Version) }

// Program is the SSA overlay.
type Program struct {
	Graph *cfg.Graph
	Defs  []*Def

	// PhisAt lists the phi definitions of each block (by NodeID).
	PhisAt [][]*Def

	// DefAt[nodeID][stmtIndex] is the def created by that
	// assignment occurrence, or nil.
	DefAt [][]*Def

	// UsesAt[nodeID][stmtIndex] lists the def IDs read by that
	// statement (for assignments, outs and branches).
	UsesAt [][][]int

	// NumPhis counts placed phi functions.
	NumPhis int
}

// Build constructs minimal SSA form for g. g must be valid; every node
// is assumed reachable (cfg.Validate guarantees this).
func Build(g *cfg.Graph) *Program {
	p := &Program{
		Graph:  g,
		PhisAt: make([][]*Def, g.NumNodes()),
		DefAt:  make([][]*Def, g.NumNodes()),
		UsesAt: make([][][]int, g.NumNodes()),
	}
	for _, n := range g.Nodes() {
		p.DefAt[n.ID] = make([]*Def, len(n.Stmts))
		p.UsesAt[n.ID] = make([][]int, len(n.Stmts))
	}

	dom := cfg.BuildDomTree(g)
	df := dom.DominanceFrontiers()

	// Collect the blocks defining each variable.
	defBlocks := make(map[ir.Var][]*cfg.Node)
	seenIn := make(map[ir.Var]map[*cfg.Node]bool)
	for _, n := range g.Nodes() {
		for _, s := range n.Stmts {
			if d, ok := ir.Def(s); ok {
				if seenIn[d] == nil {
					seenIn[d] = make(map[*cfg.Node]bool)
				}
				if !seenIn[d][n] {
					seenIn[d][n] = true
					defBlocks[d] = append(defBlocks[d], n)
				}
			}
		}
	}

	// Phi placement at iterated dominance frontiers.
	for v, blocks := range defBlocks {
		hasPhi := make(map[*cfg.Node]bool)
		work := append([]*cfg.Node(nil), blocks...)
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, j := range df[b] {
				if hasPhi[j] {
					continue
				}
				hasPhi[j] = true
				phi := &Def{
					ID:       len(p.Defs),
					Var:      v,
					IsPhi:    true,
					Node:     j,
					Operands: make([]int, len(j.Preds())),
				}
				p.Defs = append(p.Defs, phi)
				p.PhisAt[j.ID] = append(p.PhisAt[j.ID], phi)
				p.NumPhis++
				if !seenIn[v][j] {
					seenIn[v][j] = true
					work = append(work, j)
				}
			}
		}
	}

	// Renaming: dominator-tree walk with per-variable def stacks.
	// Every variable starts with an undef definition so uses of
	// uninitialized variables resolve (the paper's programs read
	// free variables like a, b at will).
	stacks := make(map[ir.Var][]*Def)
	versions := make(map[ir.Var]int)
	undefs := make(map[ir.Var]*Def)
	current := func(v ir.Var) *Def {
		if st := stacks[v]; len(st) > 0 {
			return st[len(st)-1]
		}
		u := undefs[v]
		if u == nil {
			u = &Def{ID: len(p.Defs), Var: v, IsUndef: true, Node: g.Start}
			p.Defs = append(p.Defs, u)
			undefs[v] = u
		}
		return u
	}

	var rename func(n *cfg.Node)
	rename = func(n *cfg.Node) {
		push := func(d *Def) {
			versions[d.Var]++
			d.Version = versions[d.Var]
			stacks[d.Var] = append(stacks[d.Var], d)
		}
		for _, phi := range p.PhisAt[n.ID] {
			push(phi)
		}
		for si, s := range n.Stmts {
			var uses []int
			ir.Uses(s, func(v ir.Var) { uses = append(uses, current(v).ID) })
			p.UsesAt[n.ID][si] = uses
			if dvar, ok := ir.Def(s); ok {
				d := &Def{ID: len(p.Defs), Var: dvar, Node: n, StmtIndex: si}
				p.Defs = append(p.Defs, d)
				d.Operands = uses
				p.DefAt[n.ID][si] = d
				push(d)
			}
		}
		for _, succ := range n.Succs() {
			// Which predecessor position is n for succ?
			pos := -1
			for i, pr := range succ.Preds() {
				if pr == n {
					pos = i
					break
				}
			}
			for _, phi := range p.PhisAt[succ.ID] {
				phi.Operands[pos] = current(phi.Var).ID
			}
		}
		for _, child := range dom.Children(n) {
			rename(child)
		}
		// Pop this block's definitions.
		for _, phi := range p.PhisAt[n.ID] {
			st := stacks[phi.Var]
			stacks[phi.Var] = st[:len(st)-1]
		}
		for _, d := range p.DefAt[n.ID] {
			if d != nil {
				st := stacks[d.Var]
				stacks[d.Var] = st[:len(st)-1]
			}
		}
	}
	rename(g.Start)
	return p
}

// MarkLive runs the optimistic mark phase: definitions reachable from
// relevant statements through operand edges. It returns the marked
// set, indexed by Def.ID.
func (p *Program) MarkLive() []bool {
	marked := make([]bool, len(p.Defs))
	var queue []int
	mark := func(id int) {
		if !marked[id] {
			marked[id] = true
			queue = append(queue, id)
		}
	}
	for _, n := range p.Graph.Nodes() {
		for si, s := range n.Stmts {
			if ir.IsRelevant(s) {
				for _, id := range p.UsesAt[n.ID][si] {
					mark(id)
				}
			}
		}
	}
	for len(queue) > 0 {
		id := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, op := range p.Defs[id].Operands {
			mark(op)
		}
	}
	return marked
}

// Eliminate clones g and removes every assignment whose SSA definition
// is not transitively needed by a relevant statement. It returns the
// transformed graph and the number of assignments removed.
func Eliminate(g *cfg.Graph) (*cfg.Graph, int) {
	out := g.Clone()
	p := Build(out)
	marked := p.MarkLive()
	removed := 0
	for _, n := range out.Nodes() {
		if len(n.Stmts) == 0 {
			continue
		}
		defs := p.DefAt[n.ID]
		kept := n.Stmts[:0]
		for si := range n.Stmts {
			if d := defs[si]; d != nil && !marked[d.ID] {
				removed++
				continue
			}
			kept = append(kept, n.Stmts[si])
		}
		n.Stmts = kept
	}
	return out, removed
}

// String renders the SSA program for debugging and documentation
// examples: each block with its phis and renamed statements.
func (p *Program) String() string {
	var out []byte
	appendf := func(format string, args ...any) {
		out = append(out, fmt.Sprintf(format, args...)...)
	}
	for _, n := range p.Graph.Nodes() {
		appendf("%s:\n", n.Label)
		for _, phi := range p.PhisAt[n.ID] {
			appendf("  %s = phi(", phi.Name())
			for i, op := range phi.Operands {
				if i > 0 {
					appendf(", ")
				}
				appendf("%s", p.Defs[op].Name())
			}
			appendf(")\n")
		}
		for si, s := range n.Stmts {
			if d := p.DefAt[n.ID][si]; d != nil {
				appendf("  %s = %s\n", d.Name(), s.(ir.Assign).RHS)
			} else {
				appendf("  %s\n", s)
			}
		}
	}
	return string(out)
}
