package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"math"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Request tracing.
//
// The provenance Trace (trace.go) explains what one optimizer run did
// to one program; the types here explain where one *request* spent its
// time across the whole serving stack — pool routing, retries and
// hedges, server admission, cache, singleflight, the durable queue's
// fsync and workers, and the solver's fixpoint rounds. A request is a
// tree of Spans sharing one trace ID, propagated over the wire in the
// W3C traceparent header so client- and server-side spans land in the
// same tree, and finalized into a bounded TraceStore with tail-based
// sampling: the decision to keep a trace is made when its root span
// ends, so error, shed, poisoned, and p99-slow traces are always
// retained while unremarkable ones are down-sampled.
//
// Like everything in this package, the span layer is nil-safe: every
// method on a nil *Span or nil *TraceStore is a no-op, so a server or
// pool running with tracing disabled pays a single nil check per
// boundary and allocates nothing.

// SpanContext identifies one span on the wire: a 16-byte trace ID and
// an 8-byte span ID, lowercase hex. The zero value is "no context".
type SpanContext struct {
	TraceID string
	SpanID  string
}

// Valid reports whether the context names a real trace.
func (sc SpanContext) Valid() bool {
	return isHex(sc.TraceID, 32) && sc.TraceID != zeroTraceID
}

// Traceparent renders the W3C trace-context header value
// (version 00, sampled flag set).
func (sc SpanContext) Traceparent() string {
	spanID := sc.SpanID
	if !isHex(spanID, 16) {
		spanID = zeroSpanID
	}
	return "00-" + sc.TraceID + "-" + spanID + "-01"
}

const (
	zeroTraceID = "00000000000000000000000000000000"
	zeroSpanID  = "0000000000000000"
)

// ParseTraceparent decodes a W3C traceparent header value. Unknown
// versions are accepted as long as the field layout matches (the spec's
// forward-compatibility rule); a malformed or all-zero value returns
// ok false.
func ParseTraceparent(s string) (SpanContext, bool) {
	// version "-" traceid(32) "-" spanid(16) "-" flags(2)
	if len(s) < 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, false
	}
	if !isHex(s[:2], 2) || s[:2] == "ff" {
		return SpanContext{}, false
	}
	sc := SpanContext{TraceID: s[3:35], SpanID: s[36:52]}
	if !isHex(sc.TraceID, 32) || !isHex(sc.SpanID, 16) {
		return SpanContext{}, false
	}
	if sc.TraceID == zeroTraceID || sc.SpanID == zeroSpanID {
		return SpanContext{}, false
	}
	return sc, true
}

func isHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < n; i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// NewTraceID returns a fresh 16-byte trace ID in hex.
func NewTraceID() string { return randHex(16) }

// NewSpanID returns a fresh 8-byte span ID in hex.
func NewSpanID() string { return randHex(8) }

// NewRequestID returns a fresh 8-byte request ID in hex — the value
// echoed in the Pdce-Request-Id header.
func NewRequestID() string { return randHex(8) }

func randHex(n int) string {
	b := make([]byte, n)
	rand.Read(b)
	return hex.EncodeToString(b)
}

// SpanRecord is one finished span's frozen wire form — the element of
// GET /debug/traces/{id} and POST /debug/traces payloads. The shape is
// pinned by the golden trace schema; extend it and the schema together.
type SpanRecord struct {
	TraceID string `json:"trace_id"`
	SpanID  string `json:"span_id"`
	// ParentID is empty for root spans. A span whose parent is absent
	// from the store (lost to a crash or recorded on another process)
	// renders as a root of the reassembled tree.
	ParentID string `json:"parent_id,omitempty"`
	// Name is the stage ("client.attempt", "server.optimize", "solve",
	// "solve.round", "queue.execute", ...); Service the emitting side
	// ("pool" or "pdced").
	Name    string `json:"name"`
	Service string `json:"service"`
	// StartUnixNS is the span's start as unix nanoseconds; DurationNS
	// its wall-clock length.
	StartUnixNS int64 `json:"start_unix_ns"`
	DurationNS  int64 `json:"duration_ns"`
	// Attrs carries small string attributes (replica, attempt number,
	// cache state, rounds). Error classifies a failed span ("shed",
	// "panic", "poisoned", ...); empty means success.
	Attrs map[string]string `json:"attrs,omitempty"`
	Error string            `json:"error,omitempty"`
	// LinkTraceID/LinkSpanID point at a causally-related span in
	// another lifetime — a queue job replayed after a daemon restart
	// links back to the submission span recorded in the WAL.
	LinkTraceID string `json:"link_trace_id,omitempty"`
	LinkSpanID  string `json:"link_span_id,omitempty"`
}

// Span is one live (unfinished) span. Create roots with
// TraceStore.StartSpan and children with Child; End finalizes the span
// into the store. All methods are nil-safe and safe for concurrent
// use.
type Span struct {
	store *TraceStore
	root  bool

	mu    sync.Mutex
	rec   SpanRecord
	start time.Time
	ended bool
}

// StartSpan opens a root span: the span that decides, when it ends,
// whether its trace is retained (tail sampling). With a valid parent
// context the span joins that trace (and records the parent); without
// one it starts a fresh trace. A nil store returns a nil span, on
// which every method is a no-op.
func (ts *TraceStore) StartSpan(name, service string, parent SpanContext) *Span {
	if ts == nil {
		return nil
	}
	s := &Span{
		store: ts,
		root:  true,
		start: time.Now(),
	}
	s.rec = SpanRecord{
		SpanID:      NewSpanID(),
		Name:        name,
		Service:     service,
		StartUnixNS: s.start.UnixNano(),
	}
	if parent.Valid() {
		s.rec.TraceID = parent.TraceID
		if isHex(parent.SpanID, 16) && parent.SpanID != zeroSpanID {
			s.rec.ParentID = parent.SpanID
		}
	} else {
		s.rec.TraceID = NewTraceID()
	}
	return s
}

// Child opens a sub-span of s in the same trace. Nil-safe: a nil
// receiver returns nil.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	traceID, parentID, service := s.rec.TraceID, s.rec.SpanID, s.rec.Service
	s.mu.Unlock()
	c := &Span{store: s.store, start: time.Now()}
	c.rec = SpanRecord{
		TraceID:     traceID,
		SpanID:      NewSpanID(),
		ParentID:    parentID,
		Name:        name,
		Service:     service,
		StartUnixNS: c.start.UnixNano(),
	}
	return c
}

// Context returns the span's wire identity (zero for a nil span).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return SpanContext{TraceID: s.rec.TraceID, SpanID: s.rec.SpanID}
}

// TraceID returns the span's trace ID ("" for a nil span).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rec.TraceID
}

// SetAttr records one string attribute.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.rec.Attrs == nil {
		s.rec.Attrs = make(map[string]string, 4)
	}
	s.rec.Attrs[key] = value
	s.mu.Unlock()
}

// SetInt records one integer attribute.
func (s *Span) SetInt(key string, value int64) {
	s.SetAttr(key, strconv.FormatInt(value, 10))
}

// SetError classifies the span as failed. On a root span a non-empty
// class makes the trace an always-keep for tail sampling.
func (s *Span) SetError(class string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.rec.Error = class
	s.mu.Unlock()
}

// SetLink records a causal link to a span from another lifetime.
func (s *Span) SetLink(sc SpanContext) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.rec.LinkTraceID = sc.TraceID
	s.rec.LinkSpanID = sc.SpanID
	s.mu.Unlock()
}

// End finalizes the span into its store. Idempotent; a root span's End
// runs the tail-sampling decision for its whole trace.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.rec.DurationNS = int64(time.Since(s.start))
	rec := s.rec
	root := s.root
	s.mu.Unlock()
	s.store.finish(rec, root)
}

// --- trace store ------------------------------------------------------

// traceEntry is one retained trace.
type traceEntry struct {
	spans []SpanRecord
	// root summarizes the deciding root span for listings.
	rootName    string
	rootError   string
	startUnixNS int64
	durationNS  int64
}

// stageAgg aggregates one stage name's latency for /metrics.
type stageAgg struct {
	count int64
	lat   []int64
	next  int
	max   int64
}

// Store sizing that is policy, not configuration: bounds chosen so the
// store's worst case stays a few megabytes regardless of traffic.
const (
	spansPerTraceCap = 256  // spans retained per trace
	droppedIDsCap    = 4096 // remembered sampled-out trace IDs
	stageNamesCap    = 128  // distinct stage names aggregated
	stageWindow      = 256  // latency ring per stage
	rootLatWindow    = 1024 // root-duration ring for the slow threshold
	slowMinSamples   = 64   // roots seen before the p99 gate activates
)

// TraceStore is the bounded in-process trace store with tail-based
// sampling. Construct with NewTraceStore; a nil store is a valid
// "tracing off" value (StartSpan returns nil, every query is empty).
type TraceStore struct {
	mu sync.Mutex

	capacity int
	sample   float64
	rngState uint64

	pending      map[string][]SpanRecord // traces whose root has not ended
	pendingOrder []string
	kept         map[string]*traceEntry
	keptOrder    []string
	dropped      map[string]bool // sampled-out IDs: late spans are discarded
	droppedOrder []string

	rootLat  []int64 // ring of root durations backing the p99-slow gate
	rootNext int

	stages map[string]*stageAgg

	started    int64
	keptCount  int64
	keptErrors int64
	keptSlow   int64
	sampledOut int64
	evicted    int64
	ingested   int64
}

// NewTraceStore builds a store retaining at most capacity traces
// (<=0 selects 512). sample is the keep probability for unremarkable
// traces in [0,1]; error and p99-slow traces are always kept. seed
// fixes the sampling RNG (0 = wall clock) for reproducible tests.
func NewTraceStore(capacity int, sample float64, seed int64) *TraceStore {
	if capacity <= 0 {
		capacity = 512
	}
	if sample < 0 {
		sample = 0
	}
	if sample > 1 {
		sample = 1
	}
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &TraceStore{
		capacity: capacity,
		sample:   sample,
		rngState: uint64(seed),
		pending:  make(map[string][]SpanRecord),
		kept:     make(map[string]*traceEntry),
		dropped:  make(map[string]bool),
		stages:   make(map[string]*stageAgg),
	}
}

// rng is a splitmix64 step — enough randomness for sampling without
// dragging in math/rand state.
func (ts *TraceStore) rng() float64 {
	ts.rngState += 0x9e3779b97f4a7c15
	z := ts.rngState
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

// finish records one ended span. Root spans run the retention decision
// for their trace.
func (ts *TraceStore) finish(rec SpanRecord, root bool) {
	if ts == nil {
		return
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.recordStage(rec.Name, rec.DurationNS)
	if e, ok := ts.kept[rec.TraceID]; ok {
		appendSpan(e, rec)
		return
	}
	if ts.dropped[rec.TraceID] {
		if root && rec.Error != "" {
			// A later root errored (a queue job poisoned after its
			// submission trace was sampled out): resurrect the trace —
			// error traces are always-keep, whatever came before.
			delete(ts.dropped, rec.TraceID)
			ts.decide(rec, []SpanRecord{rec})
		}
		return
	}
	buf := ts.bufferPending(rec)
	if root {
		delete(ts.pending, rec.TraceID)
		ts.decide(rec, buf)
	}
}

// bufferPending stashes rec with its trace's undecided spans, evicting
// the oldest pending trace beyond capacity, and returns the buffer.
func (ts *TraceStore) bufferPending(rec SpanRecord) []SpanRecord {
	buf, ok := ts.pending[rec.TraceID]
	if !ok {
		if len(ts.pendingOrder) >= ts.capacity {
			oldest := ts.pendingOrder[0]
			ts.pendingOrder = ts.pendingOrder[1:]
			delete(ts.pending, oldest)
		}
		ts.pendingOrder = append(ts.pendingOrder, rec.TraceID)
	}
	if len(buf) < spansPerTraceCap {
		buf = append(buf, rec)
	}
	ts.pending[rec.TraceID] = buf
	return buf
}

// decide runs tail sampling for one trace, given its deciding root
// record and buffered spans. Caller holds ts.mu.
func (ts *TraceStore) decide(root SpanRecord, spans []SpanRecord) {
	ts.started++
	keep := false
	switch {
	case root.Error != "":
		keep = true
		ts.keptErrors++
	case ts.isSlowLocked(root.DurationNS):
		keep = true
		ts.keptSlow++
	default:
		keep = ts.sample > 0 && ts.rng() < ts.sample
	}
	// The threshold must not see the deciding duration: feed the ring
	// after the comparison.
	if len(ts.rootLat) < rootLatWindow {
		ts.rootLat = append(ts.rootLat, root.DurationNS)
	} else {
		ts.rootLat[ts.rootNext] = root.DurationNS
		ts.rootNext = (ts.rootNext + 1) % rootLatWindow
	}
	if !keep {
		ts.sampledOut++
		if len(ts.droppedOrder) >= droppedIDsCap {
			oldest := ts.droppedOrder[0]
			ts.droppedOrder = ts.droppedOrder[1:]
			delete(ts.dropped, oldest)
		}
		ts.dropped[root.TraceID] = true
		ts.droppedOrder = append(ts.droppedOrder, root.TraceID)
		return
	}
	ts.keptCount++
	e := &traceEntry{
		rootName:    root.Name,
		rootError:   root.Error,
		startUnixNS: root.StartUnixNS,
		durationNS:  root.DurationNS,
	}
	e.spans = append(e.spans, spans...)
	ts.kept[root.TraceID] = e
	ts.keptOrder = append(ts.keptOrder, root.TraceID)
	for len(ts.keptOrder) > ts.capacity {
		oldest := ts.keptOrder[0]
		ts.keptOrder = ts.keptOrder[1:]
		delete(ts.kept, oldest)
		ts.evicted++
	}
}

// isSlowLocked reports whether a root duration clears the p99 of the
// recent-root ring. Inactive until enough roots have been seen.
func (ts *TraceStore) isSlowLocked(d int64) bool {
	if len(ts.rootLat) < slowMinSamples {
		return false
	}
	return d >= ts.slowThresholdLocked()
}

func (ts *TraceStore) slowThresholdLocked() int64 {
	if len(ts.rootLat) < slowMinSamples {
		return math.MaxInt64
	}
	lat := make([]int64, len(ts.rootLat))
	copy(lat, ts.rootLat)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return lat[nearestRank(len(lat), 99)]
}

func appendSpan(e *traceEntry, rec SpanRecord) {
	if len(e.spans) < spansPerTraceCap {
		e.spans = append(e.spans, rec)
	}
}

// recordStage folds one span into the per-stage latency aggregates.
// Caller holds ts.mu.
func (ts *TraceStore) recordStage(name string, d int64) {
	agg, ok := ts.stages[name]
	if !ok {
		if len(ts.stages) >= stageNamesCap {
			return
		}
		agg = &stageAgg{}
		ts.stages[name] = agg
	}
	agg.count++
	if len(agg.lat) < stageWindow {
		agg.lat = append(agg.lat, d)
	} else {
		agg.lat[agg.next] = d
		agg.next = (agg.next + 1) % stageWindow
	}
	if d > agg.max {
		agg.max = d
	}
}

// Ingest merges externally-recorded spans — the pool client POSTs its
// side of each request here so /debug/traces/{id} shows one tree
// spanning both processes. Spans of a kept trace are appended; spans
// of a sampled-out trace are discarded; spans of an unknown trace are
// buffered, and a root among them finalizes the trace exactly like a
// local root ending.
func (ts *TraceStore) Ingest(recs []SpanRecord) int {
	if ts == nil || len(recs) == 0 {
		return 0
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	n := 0
	for _, rec := range recs {
		if !isHex(rec.TraceID, 32) || !isHex(rec.SpanID, 16) || rec.Name == "" {
			continue
		}
		n++
		ts.ingested++
		ts.recordStage(rec.Name, rec.DurationNS)
		if e, ok := ts.kept[rec.TraceID]; ok {
			appendSpan(e, rec)
			continue
		}
		if ts.dropped[rec.TraceID] {
			// Same resurrection rule as locally-ended roots: an errored
			// root arriving for a sampled-out trace revives it.
			if rec.ParentID == "" && rec.Error != "" {
				delete(ts.dropped, rec.TraceID)
				ts.decide(rec, []SpanRecord{rec})
			}
			continue
		}
		buf := ts.bufferPending(rec)
		if rec.ParentID == "" {
			// A rootless batch stays pending until some root arrives.
			delete(ts.pending, rec.TraceID)
			ts.decide(rec, buf)
		}
	}
	return n
}

// TraceSummary is one retained trace's listing row (GET /debug/traces).
type TraceSummary struct {
	TraceID     string `json:"trace_id"`
	Root        string `json:"root"`
	Spans       int    `json:"spans"`
	StartUnixNS int64  `json:"start_unix_ns"`
	DurationNS  int64  `json:"duration_ns"`
	Error       string `json:"error,omitempty"`
}

// TraceList is the JSON body of GET /debug/traces.
type TraceList struct {
	Traces []TraceSummary `json:"traces"`
}

// Summaries lists retained traces, newest first, at most limit rows
// (<=0 = all).
func (ts *TraceStore) Summaries(limit int) TraceList {
	out := TraceList{Traces: []TraceSummary{}}
	if ts == nil {
		return out
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	for i := len(ts.keptOrder) - 1; i >= 0; i-- {
		if limit > 0 && len(out.Traces) >= limit {
			break
		}
		id := ts.keptOrder[i]
		e, ok := ts.kept[id]
		if !ok {
			continue
		}
		out.Traces = append(out.Traces, TraceSummary{
			TraceID:     id,
			Root:        e.rootName,
			Spans:       len(e.spans),
			StartUnixNS: e.startUnixNS,
			DurationNS:  e.durationNS,
			Error:       e.rootError,
		})
	}
	return out
}

// TraceDump is the JSON body of GET /debug/traces/{id}: the trace's
// spans, parent IDs encoding the tree, ordered by start time.
type TraceDump struct {
	TraceID string       `json:"trace_id"`
	Spans   []SpanRecord `json:"spans"`
}

// Get returns one retained trace's spans (start-ordered), or ok false.
func (ts *TraceStore) Get(id string) (TraceDump, bool) {
	if ts == nil {
		return TraceDump{}, false
	}
	ts.mu.Lock()
	e, ok := ts.kept[id]
	if !ok {
		ts.mu.Unlock()
		return TraceDump{}, false
	}
	spans := make([]SpanRecord, len(e.spans))
	copy(spans, e.spans)
	ts.mu.Unlock()
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].StartUnixNS < spans[j].StartUnixNS })
	return TraceDump{TraceID: id, Spans: spans}, true
}

// Export is Get for span shipping: the records of a retained trace
// (nil when the trace was sampled out or is unknown).
func (ts *TraceStore) Export(id string) []SpanRecord {
	dump, ok := ts.Get(id)
	if !ok {
		return nil
	}
	return dump.Spans
}

// StageStats is one stage name's latency aggregate in the snapshot.
type StageStats struct {
	Count int64 `json:"count"`
	P50NS int64 `json:"p50_ns"`
	P95NS int64 `json:"p95_ns"`
	MaxNS int64 `json:"max_ns"`
}

// TraceStoreSnapshot is the "traces" section of pdced's /metrics.
type TraceStoreSnapshot struct {
	// Traces is the retained count; Capacity the bound.
	Traces   int `json:"traces"`
	Capacity int `json:"capacity"`
	// Decided counts finalized traces; Kept the retained subset, split
	// into always-keeps (errors, p99-slow) and sampled keeps by the
	// KeptErrors/KeptSlow counters. SampledOut + Kept = Decided.
	Decided    int64 `json:"decided"`
	Kept       int64 `json:"kept"`
	KeptErrors int64 `json:"kept_errors"`
	KeptSlow   int64 `json:"kept_slow"`
	SampledOut int64 `json:"sampled_out"`
	// Evicted counts retained traces pushed out by capacity;
	// IngestedSpans the spans merged via Ingest (client-side exports).
	Evicted       int64 `json:"evicted"`
	IngestedSpans int64 `json:"ingested_spans"`
	// SampleRate is the configured keep probability for unremarkable
	// traces; SlowThresholdNS the current p99-slow gate (0 until
	// enough roots have been observed).
	SampleRate      float64 `json:"sample_rate"`
	SlowThresholdNS int64   `json:"slow_threshold_ns"`
	// Stages maps stage names to latency aggregates over each stage's
	// recent spans (per-stage p50/p95: queue-wait, cache lookups,
	// solve time, ...).
	Stages map[string]StageStats `json:"stages,omitempty"`
}

// Snapshot freezes the store's counters and per-stage aggregates.
// Nil-safe: a nil store yields a zero snapshot.
func (ts *TraceStore) Snapshot() TraceStoreSnapshot {
	if ts == nil {
		return TraceStoreSnapshot{}
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	snap := TraceStoreSnapshot{
		Traces:        len(ts.kept),
		Capacity:      ts.capacity,
		Decided:       ts.started,
		Kept:          ts.keptCount,
		KeptErrors:    ts.keptErrors,
		KeptSlow:      ts.keptSlow,
		SampledOut:    ts.sampledOut,
		Evicted:       ts.evicted,
		IngestedSpans: ts.ingested,
		SampleRate:    ts.sample,
	}
	if len(ts.rootLat) >= slowMinSamples {
		snap.SlowThresholdNS = ts.slowThresholdLocked()
	}
	if len(ts.stages) > 0 {
		snap.Stages = make(map[string]StageStats, len(ts.stages))
		for name, agg := range ts.stages {
			lat := make([]int64, len(agg.lat))
			copy(lat, agg.lat)
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			st := StageStats{Count: agg.count, MaxNS: agg.max}
			if len(lat) > 0 {
				st.P50NS = lat[nearestRank(len(lat), 50)]
				st.P95NS = lat[nearestRank(len(lat), 95)]
			}
			snap.Stages[name] = st
		}
	}
	return snap
}

// --- context plumbing -------------------------------------------------

type spanCtxKey struct{}

// ContextWithSpan attaches a span to a context so lower layers (the
// HTTP client, nested optimizer calls) can pick it up.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the span attached to ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}
