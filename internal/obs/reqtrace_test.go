package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
)

// mkRec builds a synthetic finished span for Ingest-driven tests —
// feeding records directly is the only way to control durations, which
// the tail sampler's slow gate keys on.
func mkRec(traceID, spanID, parentID, name string, durNS int64, errClass string) SpanRecord {
	return SpanRecord{
		TraceID:     traceID,
		SpanID:      spanID,
		ParentID:    parentID,
		Name:        name,
		Service:     "test",
		StartUnixNS: 1,
		DurationNS:  durNS,
		Error:       errClass,
	}
}

// tid/sid render deterministic well-formed IDs from a small integer.
func tid(n int) string { return strings.Repeat("0", 24) + padHex8(n) }
func sid(n int) string { return strings.Repeat("0", 8) + padHex8(n) }

func padHex8(n int) string {
	const hexdig = "0123456789abcdef"
	out := make([]byte, 8)
	for i := 7; i >= 0; i-- {
		out[i] = hexdig[n&0xf]
		n >>= 4
	}
	return string(out)
}

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: tid(7), SpanID: sid(9)}
	back, ok := ParseTraceparent(sc.Traceparent())
	if !ok || back != sc {
		t.Fatalf("round trip: got %+v ok=%v, want %+v", back, ok, sc)
	}
	// Future versions must parse (W3C forward compatibility)...
	if _, ok := ParseTraceparent("cc-" + tid(7) + "-" + sid(9) + "-01"); !ok {
		t.Error("future version rejected")
	}
	// ...but these must not.
	bad := []string{
		"",
		"00-" + tid(7) + "-" + sid(9),         // truncated
		"ff-" + tid(7) + "-" + sid(9) + "-01", // forbidden version
		"00-" + zeroTraceID + "-" + sid(9) + "-01",             // zero trace
		"00-" + tid(7) + "-" + zeroSpanID + "-01",              // zero span
		"00-ABCDEF00000000000000000000000007-" + sid(9) + "-01", // uppercase hex
		"00_" + tid(7) + "-" + sid(9) + "-01",                  // wrong separator
	}
	for _, s := range bad {
		if _, ok := ParseTraceparent(s); ok {
			t.Errorf("ParseTraceparent(%q) accepted", s)
		}
	}
}

func TestSpanTreeAndRetention(t *testing.T) {
	ts := NewTraceStore(8, 1.0, 42)
	root := ts.StartSpan("server.optimize", "pdced", SpanContext{})
	root.SetAttr("request_id", "abc")
	child := root.Child("solve")
	grand := child.Child("solve.round")
	grand.SetInt("round", 1)
	grand.End()
	child.End()
	root.End()

	dump, ok := ts.Get(root.TraceID())
	if !ok {
		t.Fatal("trace not retained with sample=1")
	}
	if len(dump.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(dump.Spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range dump.Spans {
		if s.TraceID != root.TraceID() {
			t.Errorf("span %s has trace %s", s.Name, s.TraceID)
		}
		byName[s.Name] = s
	}
	if byName["server.optimize"].ParentID != "" {
		t.Error("root has a parent")
	}
	if byName["solve"].ParentID != byName["server.optimize"].SpanID {
		t.Error("solve is not a child of the root")
	}
	if byName["solve.round"].ParentID != byName["solve"].SpanID {
		t.Error("solve.round is not a child of solve")
	}
	if byName["solve.round"].Attrs["round"] != "1" {
		t.Errorf("round attr = %q", byName["solve.round"].Attrs["round"])
	}
	if list := ts.Summaries(0); len(list.Traces) != 1 || list.Traces[0].Spans != 3 {
		t.Errorf("summaries = %+v", list)
	}
}

func TestSpanJoinsParentContext(t *testing.T) {
	ts := NewTraceStore(8, 1.0, 42)
	parent := SpanContext{TraceID: tid(3), SpanID: sid(4)}
	root := ts.StartSpan("server.optimize", "pdced", parent)
	if root.TraceID() != parent.TraceID {
		t.Fatalf("root trace %s, want joined %s", root.TraceID(), parent.TraceID)
	}
	root.End()
	dump, _ := ts.Get(parent.TraceID)
	if len(dump.Spans) != 1 || dump.Spans[0].ParentID != parent.SpanID {
		t.Fatalf("joined span = %+v", dump.Spans)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	ts := NewTraceStore(8, 1.0, 42)
	root := ts.StartSpan("r", "t", SpanContext{})
	root.End()
	root.End()
	if snap := ts.Snapshot(); snap.Decided != 1 {
		t.Fatalf("double End decided %d traces", snap.Decided)
	}
}

func TestNilSpanAndStoreSafe(t *testing.T) {
	var ts *TraceStore
	sp := ts.StartSpan("x", "y", SpanContext{})
	if sp != nil {
		t.Fatal("nil store made a span")
	}
	// All of these must be no-ops, not panics.
	sp.SetAttr("k", "v")
	sp.SetInt("k", 1)
	sp.SetError("boom")
	sp.SetLink(SpanContext{})
	sp.End()
	if c := sp.Child("z"); c != nil {
		t.Fatal("nil span made a child")
	}
	if sp.TraceID() != "" || sp.Context().Valid() {
		t.Fatal("nil span has identity")
	}
	if ts.Ingest([]SpanRecord{mkRec(tid(1), sid(1), "", "r", 1, "")}) != 0 {
		t.Fatal("nil store ingested")
	}
	if _, ok := ts.Get(tid(1)); ok {
		t.Fatal("nil store returned a trace")
	}
	ts.Snapshot()
	ts.Summaries(0)
}

func TestTailSamplingSampleOutAndErrorKeep(t *testing.T) {
	ts := NewTraceStore(64, 0, 42) // sample 0: only always-keeps survive
	for i := 1; i <= 10; i++ {
		ts.Ingest([]SpanRecord{mkRec(tid(i), sid(i), "", "r", 100, "")})
	}
	if snap := ts.Snapshot(); snap.Kept != 0 || snap.SampledOut != 10 {
		t.Fatalf("sample=0 kept %d, sampled out %d", snap.Kept, snap.SampledOut)
	}
	// A late span of a sampled-out trace is discarded, not resurrected.
	ts.Ingest([]SpanRecord{mkRec(tid(1), sid(99), sid(1), "late", 1, "")})
	if _, ok := ts.Get(tid(1)); ok {
		t.Fatal("late child resurrected a dropped trace")
	}
	// An errored root is always kept, whatever the sample rate.
	ts.Ingest([]SpanRecord{mkRec(tid(11), sid(11), "", "r", 100, "shed")})
	dump, ok := ts.Get(tid(11))
	if !ok {
		t.Fatal("error trace sampled out")
	}
	if dump.Spans[0].Error != "shed" {
		t.Fatalf("error class = %q", dump.Spans[0].Error)
	}
	snap := ts.Snapshot()
	if snap.KeptErrors != 1 {
		t.Errorf("kept_errors = %d", snap.KeptErrors)
	}
}

func TestTailSamplingErrorResurrection(t *testing.T) {
	ts := NewTraceStore(64, 0, 42)
	// The submission trace is sampled out...
	ts.Ingest([]SpanRecord{mkRec(tid(1), sid(1), "", "server.optimize.submit", 100, "")})
	if _, ok := ts.Get(tid(1)); ok {
		t.Fatal("premise: trace should be dropped")
	}
	// ...then the queue job poisons: the later ERRORED root resurrects
	// the trace — poison traces must be inspectable.
	ts.Ingest([]SpanRecord{mkRec(tid(1), sid(2), "", "queue.execute", 100, "poisoned")})
	dump, ok := ts.Get(tid(1))
	if !ok {
		t.Fatal("poisoned root did not resurrect the dropped trace")
	}
	if len(dump.Spans) != 1 || dump.Spans[0].Error != "poisoned" {
		t.Fatalf("resurrected trace = %+v", dump.Spans)
	}
}

func TestTailSamplingSlowKeep(t *testing.T) {
	ts := NewTraceStore(1024, 0, 42)
	// Establish a latency baseline of 100ns roots (past the activation
	// threshold), then finish one far above p99: kept as slow.
	for i := 1; i <= slowMinSamples; i++ {
		ts.Ingest([]SpanRecord{mkRec(tid(i), sid(i), "", "r", 100, "")})
	}
	ts.Ingest([]SpanRecord{mkRec(tid(999), sid(999), "", "r", 1_000_000, "")})
	if _, ok := ts.Get(tid(999)); !ok {
		t.Fatal("p99-slow trace sampled out")
	}
	snap := ts.Snapshot()
	if snap.KeptSlow != 1 {
		t.Errorf("kept_slow = %d", snap.KeptSlow)
	}
	if snap.SlowThresholdNS == 0 {
		t.Error("slow threshold not reported after activation")
	}
	// The deciding duration must not have fed the threshold before its
	// own comparison — but it must afterwards: a second identical slow
	// root still clears the (now raised) nearest-rank p99 at equality.
	if !ts.isSlowLocked(1_000_000) {
		t.Error("ring did not absorb the slow sample after deciding")
	}
}

func TestTraceCapacityEviction(t *testing.T) {
	ts := NewTraceStore(4, 1.0, 42)
	for i := 1; i <= 6; i++ {
		ts.Ingest([]SpanRecord{mkRec(tid(i), sid(i), "", "r", 1, "")})
	}
	snap := ts.Snapshot()
	if snap.Traces != 4 || snap.Evicted != 2 {
		t.Fatalf("traces=%d evicted=%d, want 4/2", snap.Traces, snap.Evicted)
	}
	if _, ok := ts.Get(tid(1)); ok {
		t.Error("oldest trace survived eviction")
	}
	if _, ok := ts.Get(tid(6)); !ok {
		t.Error("newest trace evicted")
	}
	// Newest first in the listing.
	list := ts.Summaries(2)
	if len(list.Traces) != 2 || list.Traces[0].TraceID != tid(6) || list.Traces[1].TraceID != tid(5) {
		t.Errorf("summaries order = %+v", list.Traces)
	}
}

func TestIngestValidatesAndBuffers(t *testing.T) {
	ts := NewTraceStore(8, 1.0, 42)
	n := ts.Ingest([]SpanRecord{
		mkRec("short", sid(1), "", "r", 1, ""),        // bad trace ID
		mkRec(tid(1), "short", "", "r", 1, ""),        // bad span ID
		mkRec(tid(1), sid(1), "", "", 1, ""),          // missing name
		mkRec(tid(1), sid(2), sid(9), "child", 1, ""), // valid, rootless
	})
	if n != 1 {
		t.Fatalf("ingested %d, want 1", n)
	}
	// Rootless batches stay pending: not queryable yet.
	if _, ok := ts.Get(tid(1)); ok {
		t.Fatal("rootless trace visible")
	}
	// The root arriving later finalizes the buffered spans with it.
	ts.Ingest([]SpanRecord{mkRec(tid(1), sid(9), "", "root", 1, "")})
	dump, ok := ts.Get(tid(1))
	if !ok || len(dump.Spans) != 2 {
		t.Fatalf("after root: ok=%v spans=%d, want 2", ok, len(dump.Spans))
	}
}

func TestIngestIntoKeptTrace(t *testing.T) {
	ts := NewTraceStore(8, 1.0, 42)
	root := ts.StartSpan("server.optimize", "pdced", SpanContext{})
	root.End()
	// The pool ships its client-side spans after the server decided:
	// they merge into the kept trace.
	n := ts.Ingest([]SpanRecord{mkRec(root.TraceID(), sid(50), "", "client.request", 5, "")})
	if n != 1 {
		t.Fatalf("ingested %d", n)
	}
	dump, _ := ts.Get(root.TraceID())
	if len(dump.Spans) != 2 {
		t.Fatalf("merged trace has %d spans", len(dump.Spans))
	}
	if snap := ts.Snapshot(); snap.IngestedSpans != 1 {
		t.Errorf("ingested_spans = %d", snap.IngestedSpans)
	}
}

func TestStageAggregates(t *testing.T) {
	ts := NewTraceStore(8, 1.0, 42)
	for i := int64(1); i <= 4; i++ {
		ts.Ingest([]SpanRecord{mkRec(tid(int(i)), sid(int(i)), "", "solve", i*100, "")})
	}
	snap := ts.Snapshot()
	agg, ok := snap.Stages["solve"]
	if !ok {
		t.Fatal("no solve stage aggregate")
	}
	if agg.Count != 4 || agg.MaxNS != 400 {
		t.Errorf("solve agg = %+v", agg)
	}
	if agg.P50NS != 200 || agg.P95NS != 400 {
		t.Errorf("solve percentiles = p50 %d p95 %d", agg.P50NS, agg.P95NS)
	}
}

func TestSpanLink(t *testing.T) {
	ts := NewTraceStore(8, 1.0, 42)
	root := ts.StartSpan("queue.execute", "pdced", SpanContext{TraceID: tid(1), SpanID: sid(1)})
	root.SetLink(SpanContext{TraceID: tid(1), SpanID: sid(1)})
	root.End()
	dump, _ := ts.Get(tid(1))
	if dump.Spans[0].LinkTraceID != tid(1) || dump.Spans[0].LinkSpanID != sid(1) {
		t.Fatalf("link = %s/%s", dump.Spans[0].LinkTraceID, dump.Spans[0].LinkSpanID)
	}
}

func TestTraceStoreConcurrent(t *testing.T) {
	ts := NewTraceStore(64, 0.5, 42)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				root := ts.StartSpan("r", "t", SpanContext{})
				c := root.Child("c")
				c.SetAttr("g", "x")
				c.End()
				root.End()
				ts.Snapshot()
				ts.Summaries(4)
				ts.Get(root.TraceID())
			}
		}(g)
	}
	wg.Wait()
	snap := ts.Snapshot()
	if snap.Decided != 400 {
		t.Fatalf("decided %d traces, want 400", snap.Decided)
	}
	if snap.Kept+snap.SampledOut != snap.Decided {
		t.Fatalf("kept %d + sampled_out %d != decided %d", snap.Kept, snap.SampledOut, snap.Decided)
	}
}

func TestContextPlumbing(t *testing.T) {
	ts := NewTraceStore(8, 1.0, 42)
	root := ts.StartSpan("r", "t", SpanContext{})
	ctx := ContextWithSpan(context.Background(), root)
	if got := SpanFromContext(ctx); got != root {
		t.Fatal("span did not round-trip through context")
	}
	if got := SpanFromContext(context.Background()); got != nil {
		t.Fatal("empty context produced a span")
	}
	// Attaching nil leaves the context untouched.
	if ctx2 := ContextWithSpan(ctx, nil); SpanFromContext(ctx2) != root {
		t.Fatal("nil attach clobbered the existing span")
	}
}
