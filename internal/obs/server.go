package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ServerStats accumulates the request-level counters of the serving
// layer (internal/server, cmd/pdced). Like the rest of this package it
// is nil-safe — every method does nothing on a nil receiver — and safe
// for concurrent use: counters are atomic, the latency reservoir takes
// a short mutex per sample.
//
// The counters classify each request's path through the server:
// a request is answered from the in-memory or spilled cache (CacheHits),
// coalesced onto a concurrent identical computation (Dedups), shed at
// admission (ShedQueueFull) or during drain (ShedDraining), or actually
// optimized (Optimizes — the only counter whose increment means solver
// work happened). Panics and Degraded track the containment layer's
// outcomes; ParseFailures the inputs that never reached the optimizer.
type ServerStats struct {
	requests      atomic.Int64
	batchRequests atomic.Int64
	optimizes     atomic.Int64
	cacheHits     atomic.Int64
	cacheMisses   atomic.Int64
	dedups        atomic.Int64
	shedQueueFull atomic.Int64
	shedDraining  atomic.Int64
	panics        atomic.Int64
	degraded      atomic.Int64
	parseFailures atomic.Int64

	mu      sync.Mutex
	lat     []int64 // ring buffer of request latencies, ns
	next    int
	samples int64
}

// latencyWindow is the reservoir size backing the latency percentiles:
// large enough for stable p95 figures, small enough that a snapshot
// copy is cheap.
const latencyWindow = 1024

// Nil-safe counter increments, one per request classification.

func (s *ServerStats) AddRequest() {
	if s != nil {
		s.requests.Add(1)
	}
}

func (s *ServerStats) AddBatchRequest() {
	if s != nil {
		s.batchRequests.Add(1)
	}
}

func (s *ServerStats) AddOptimize() {
	if s != nil {
		s.optimizes.Add(1)
	}
}

func (s *ServerStats) AddCacheHit() {
	if s != nil {
		s.cacheHits.Add(1)
	}
}

func (s *ServerStats) AddCacheMiss() {
	if s != nil {
		s.cacheMisses.Add(1)
	}
}

func (s *ServerStats) AddDedup() {
	if s != nil {
		s.dedups.Add(1)
	}
}

func (s *ServerStats) AddShedQueueFull() {
	if s != nil {
		s.shedQueueFull.Add(1)
	}
}

func (s *ServerStats) AddShedDraining() {
	if s != nil {
		s.shedDraining.Add(1)
	}
}

func (s *ServerStats) AddPanic() {
	if s != nil {
		s.panics.Add(1)
	}
}

func (s *ServerStats) AddDegraded() {
	if s != nil {
		s.degraded.Add(1)
	}
}

func (s *ServerStats) AddParseFailure() {
	if s != nil {
		s.parseFailures.Add(1)
	}
}

// RecordLatency feeds one served request's wall-clock duration into
// the percentile reservoir (a fixed ring of the most recent samples).
func (s *ServerStats) RecordLatency(d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.lat == nil {
		s.lat = make([]int64, 0, latencyWindow)
	}
	if len(s.lat) < latencyWindow {
		s.lat = append(s.lat, int64(d))
	} else {
		s.lat[s.next] = int64(d)
	}
	s.next = (s.next + 1) % latencyWindow
	s.samples++
	s.mu.Unlock()
}

// Optimizes returns the number of actual optimizer runs so far — the
// counter E2E tests watch to prove a cache hit did no solver work.
func (s *ServerStats) Optimizes() int64 {
	if s == nil {
		return 0
	}
	return s.optimizes.Load()
}

// ServerSnapshot is the frozen, JSON-taggable view of ServerStats —
// the "server" section of pdced's /metrics payload.
type ServerSnapshot struct {
	Requests      int64 `json:"requests"`
	BatchRequests int64 `json:"batch_requests"`
	// Optimizes counts actual optimizer runs; every other request was
	// answered from the cache, coalesced, or shed.
	Optimizes   int64 `json:"optimizes"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// CacheHitRate is hits/(hits+misses) over served lookups.
	CacheHitRate float64 `json:"cache_hit_rate"`
	// Dedups counts requests coalesced onto an identical in-flight
	// computation by singleflight.
	Dedups int64 `json:"dedups"`
	// Load shedding: requests rejected because the admission queue was
	// full (429) or the server was draining (503).
	ShedQueueFull int64 `json:"shed_queue_full"`
	ShedDraining  int64 `json:"shed_draining"`
	// Containment outcomes: contained optimizer panics (500) and
	// degraded partial results (deadline/rollback, served 200).
	Panics        int64 `json:"panics"`
	Degraded      int64 `json:"degraded"`
	ParseFailures int64 `json:"parse_failures"`

	// Request latency over the most recent window (nearest-rank
	// percentiles); Samples is the lifetime sample count.
	P50NS   int64 `json:"p50_ns"`
	P95NS   int64 `json:"p95_ns"`
	MaxNS   int64 `json:"max_ns"`
	Samples int64 `json:"latency_samples"`
}

// Snapshot freezes the counters and computes the latency percentiles.
// Nil-safe: a nil receiver yields a zero snapshot.
func (s *ServerStats) Snapshot() ServerSnapshot {
	if s == nil {
		return ServerSnapshot{}
	}
	snap := ServerSnapshot{
		Requests:      s.requests.Load(),
		BatchRequests: s.batchRequests.Load(),
		Optimizes:     s.optimizes.Load(),
		CacheHits:     s.cacheHits.Load(),
		CacheMisses:   s.cacheMisses.Load(),
		Dedups:        s.dedups.Load(),
		ShedQueueFull: s.shedQueueFull.Load(),
		ShedDraining:  s.shedDraining.Load(),
		Panics:        s.panics.Load(),
		Degraded:      s.degraded.Load(),
		ParseFailures: s.parseFailures.Load(),
	}
	if lookups := snap.CacheHits + snap.CacheMisses; lookups > 0 {
		snap.CacheHitRate = float64(snap.CacheHits) / float64(lookups)
	}

	s.mu.Lock()
	lat := make([]int64, len(s.lat))
	copy(lat, s.lat)
	snap.Samples = s.samples
	s.mu.Unlock()
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		snap.P50NS = lat[nearestRank(len(lat), 50)]
		snap.P95NS = lat[nearestRank(len(lat), 95)]
		snap.MaxNS = lat[len(lat)-1]
	}
	return snap
}

// nearestRank returns the 0-based index of the p-th percentile under
// the nearest-rank definition for a sorted sample of size n.
func nearestRank(n, p int) int {
	r := (p*n + 99) / 100
	if r < 1 {
		r = 1
	}
	if r > n {
		r = n
	}
	return r - 1
}
