package obs

import (
	"sync"
	"testing"
	"time"
)

func TestServerStatsNilSafe(t *testing.T) {
	var s *ServerStats
	s.AddRequest()
	s.AddBatchRequest()
	s.AddOptimize()
	s.AddCacheHit()
	s.AddCacheMiss()
	s.AddDedup()
	s.AddShedQueueFull()
	s.AddShedDraining()
	s.AddPanic()
	s.AddDegraded()
	s.AddParseFailure()
	s.RecordLatency(time.Millisecond)
	if s.Optimizes() != 0 {
		t.Error("nil Optimizes != 0")
	}
	if snap := s.Snapshot(); snap != (ServerSnapshot{}) {
		t.Errorf("nil snapshot is non-zero: %+v", snap)
	}
}

func TestServerStatsCountersAndHitRate(t *testing.T) {
	s := &ServerStats{}
	for i := 0; i < 3; i++ {
		s.AddRequest()
		s.AddCacheHit()
	}
	s.AddRequest()
	s.AddCacheMiss()
	s.AddOptimize()
	s.AddPanic()
	s.AddDegraded()
	snap := s.Snapshot()
	if snap.Requests != 4 || snap.CacheHits != 3 || snap.CacheMisses != 1 {
		t.Errorf("counters: %+v", snap)
	}
	if snap.CacheHitRate != 0.75 {
		t.Errorf("hit rate %v, want 0.75", snap.CacheHitRate)
	}
	if snap.Optimizes != 1 || snap.Panics != 1 || snap.Degraded != 1 {
		t.Errorf("outcome counters: %+v", snap)
	}
}

func TestServerStatsLatencyPercentiles(t *testing.T) {
	s := &ServerStats{}
	// 100 samples: 1ms..100ms. Nearest-rank p50 = 50th value, p95 =
	// 95th, max = 100th.
	for i := 1; i <= 100; i++ {
		s.RecordLatency(time.Duration(i) * time.Millisecond)
	}
	snap := s.Snapshot()
	if snap.Samples != 100 {
		t.Fatalf("samples = %d", snap.Samples)
	}
	if got := time.Duration(snap.P50NS); got != 50*time.Millisecond {
		t.Errorf("p50 = %v", got)
	}
	if got := time.Duration(snap.P95NS); got != 95*time.Millisecond {
		t.Errorf("p95 = %v", got)
	}
	if got := time.Duration(snap.MaxNS); got != 100*time.Millisecond {
		t.Errorf("max = %v", got)
	}
}

func TestServerStatsLatencyWindowWraps(t *testing.T) {
	s := &ServerStats{}
	// Overfill the ring: the oldest samples (all 1ns) are displaced by
	// the newest (all 1ms), so the percentiles reflect only the window.
	for i := 0; i < latencyWindow; i++ {
		s.RecordLatency(1)
	}
	for i := 0; i < latencyWindow; i++ {
		s.RecordLatency(time.Millisecond)
	}
	snap := s.Snapshot()
	if snap.Samples != 2*latencyWindow {
		t.Errorf("lifetime samples = %d, want %d", snap.Samples, 2*latencyWindow)
	}
	if time.Duration(snap.P50NS) != time.Millisecond {
		t.Errorf("p50 after wrap = %v, want 1ms", time.Duration(snap.P50NS))
	}
}

func TestServerStatsConcurrent(t *testing.T) {
	s := &ServerStats{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.AddRequest()
				s.AddCacheHit()
				s.RecordLatency(time.Duration(i))
			}
		}()
	}
	wg.Wait()
	snap := s.Snapshot()
	if snap.Requests != 4000 || snap.CacheHits != 4000 || snap.Samples != 4000 {
		t.Errorf("after concurrent load: %+v", snap)
	}
}
