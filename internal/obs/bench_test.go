package obs

import (
	"os"
	"path/filepath"
	"testing"
)

func TestAggregateBenchStats(t *testing.T) {
	points := []BenchPoint{
		{Exp: "C1", Name: "pde", N: 64, Rep: 0, NSPerOp: 100},
		{Exp: "C1", Name: "pde", N: 64, Rep: 1, NSPerOp: 300},
		{Exp: "C1", Name: "pde", N: 64, Rep: 2, NSPerOp: 200},
		{Exp: "C1", Name: "pde", N: 64, Rep: 3, NSPerOp: 900},
		{Exp: "C1", Name: "pde", N: 64, Rep: 4, NSPerOp: 250},
	}
	aggs := AggregateBench(points)
	if len(aggs) != 1 {
		t.Fatalf("aggregates = %d, want 1", len(aggs))
	}
	a := aggs[0]
	if a.Metric != BenchTimeMetric || a.Count != 5 {
		t.Fatalf("bad aggregate %+v", a)
	}
	// Sorted: 100 200 250 300 900.
	if a.Median != 250 {
		t.Errorf("median = %v, want 250", a.Median)
	}
	if a.P95 != 900 {
		t.Errorf("p95 = %v, want 900 (nearest rank)", a.P95)
	}
	// Deviations from 250: 150 50 0 50 650 → sorted 0 50 50 150 650 → MAD 50.
	if a.MAD != 50 {
		t.Errorf("mad = %v, want 50", a.MAD)
	}
	if a.Min != 100 || a.Max != 900 {
		t.Errorf("min/max = %v/%v, want 100/900", a.Min, a.Max)
	}
}

// TestAggregateBenchOrder pins the deterministic ordering: series in
// first-appearance order, metrics sorted within a series.
func TestAggregateBenchOrder(t *testing.T) {
	points := []BenchPoint{
		{Exp: "C5", Name: "z-series", Rep: 0, Metrics: map[string]float64{"zz": 1, "aa": 2}},
		{Exp: "C5", Name: "a-series", Rep: 0, NSPerOp: 10, Metrics: map[string]float64{"mm": 3}},
		{Exp: "C5", Name: "z-series", Rep: 1, Metrics: map[string]float64{"zz": 1, "aa": 2}},
	}
	aggs := AggregateBench(points)
	var got []string
	for _, a := range aggs {
		got = append(got, a.Name+"/"+a.Metric)
	}
	want := []string{"z-series/aa", "z-series/zz", "a-series/mm", "a-series/ns_per_op"}
	if len(got) != len(want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestQuantileNearest(t *testing.T) {
	s := []float64{1, 2, 3, 4}
	if q := quantileNearest(s, 0.5); q != 2 {
		t.Errorf("median of 4 = %v, want 2 (nearest rank)", q)
	}
	if q := quantileNearest(s, 0.95); q != 4 {
		t.Errorf("p95 of 4 = %v, want 4", q)
	}
	if q := quantileNearest(nil, 0.5); q != 0 {
		t.Errorf("empty = %v", q)
	}
}

// TestLegacyMigration reads a version-1 flat report as a single-run
// history, so pre-harness BENCH_paper.json files keep loading.
func TestLegacyMigration(t *testing.T) {
	legacy := []byte(`{
  "quick": true,
  "seeds": 3,
  "gomaxprocs": 2,
  "records": [
    {"exp": "C1", "name": "pde", "n": 64, "ns_per_op": 123, "metrics": {"exponent": 1.5}},
    {"exp": "F", "name": "fig1", "metrics": {"ok": 1}}
  ]
}`)
	h, err := ParseBenchHistory(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if h.Schema != BenchSchemaVersion || len(h.Runs) != 1 {
		t.Fatalf("schema=%d runs=%d", h.Schema, len(h.Runs))
	}
	run := h.Runs[0]
	if run.RunID != "legacy" || run.Kind != "legacy" || !run.Quick || run.Seeds != 3 || run.Repeats != 1 {
		t.Fatalf("migrated header %+v", run)
	}
	if len(run.Records) != 2 || len(run.Aggregates) == 0 {
		t.Fatalf("migrated %d records, %d aggregates", len(run.Records), len(run.Aggregates))
	}
	if st, ok := run.Stat("C1", "pde", 64, BenchTimeMetric); !ok || st.Median != 123 {
		t.Errorf("Stat = %+v, %v", st, ok)
	}
}

func TestAppendBenchRunUpgradesLegacy(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(`{"quick":false,"seeds":5,"gomaxprocs":1,"records":[{"exp":"C1","name":"pde","n":64,"ns_per_op":7}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	run := BenchRun{RunID: "r2", Kind: "quick", Records: []BenchPoint{{Exp: "C1", Name: "pde", N: 64, NSPerOp: 9}}}
	if err := AppendBenchRun(path, run); err != nil {
		t.Fatal(err)
	}
	h, err := LoadBenchHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Runs) != 2 || h.Runs[0].Kind != "legacy" || h.Runs[1].RunID != "r2" {
		t.Fatalf("upgraded history %+v", h.Runs)
	}
	// Appending again keeps growing; the file is now schema 2.
	if err := AppendBenchRun(path, BenchRun{RunID: "r3", Kind: "quick"}); err != nil {
		t.Fatal(err)
	}
	h, err = LoadBenchHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Runs) != 3 {
		t.Fatalf("runs = %d, want 3", len(h.Runs))
	}
}

func TestLoadBenchHistoryMissing(t *testing.T) {
	h, err := LoadBenchHistory(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatal(err)
	}
	if h.Schema != BenchSchemaVersion || len(h.Runs) != 0 {
		t.Fatalf("missing file: %+v", h)
	}
}

func TestNewestSkipsMilestones(t *testing.T) {
	h := &BenchHistory{Schema: BenchSchemaVersion, Runs: []BenchRun{
		{RunID: "a", Kind: "full"},
		{RunID: "m", Kind: "milestone"},
	}}
	if got := h.Newest(nil); got == nil || got.RunID != "a" {
		t.Errorf("Newest(nil) = %+v, want run a", got)
	}
	if got := h.Newest(func(r *BenchRun) bool { return r.Kind == "milestone" }); got == nil || got.RunID != "m" {
		t.Errorf("Newest(milestone) = %+v, want run m", got)
	}
	if got := (&BenchHistory{}).Newest(nil); got != nil {
		t.Errorf("empty history Newest = %+v", got)
	}
}
