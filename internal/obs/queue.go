package obs

import "sync/atomic"

// QueueStats accumulates the counters of the durable async job queue
// (internal/server's WAL-backed queue). Like the other collectors in
// this package it is nil-safe — every method does nothing on a nil
// receiver — and safe for concurrent use.
//
// The counters split into three groups: the submission path (Submits,
// DupSubmits — duplicate submissions collapsed onto an existing job by
// content address), the execution path (Completions, Retries, Poisoned
// — jobs quarantined after exhausting their retry budget — and Acks),
// and crash recovery (ReplayedJobs — jobs re-enqueued from the log on
// boot, TornRecords — incomplete log tails truncated at recovery,
// CorruptRecords — mid-log checksum failures quarantined while later
// records were still replayed, and FsyncFailures). Gauges that only
// the live queue knows — depth, running jobs, oldest queued age — are
// passed into Snapshot by the caller.
type QueueStats struct {
	submits        atomic.Int64
	dupSubmits     atomic.Int64
	completions    atomic.Int64
	degraded       atomic.Int64
	retries        atomic.Int64
	poisoned       atomic.Int64
	acks           atomic.Int64
	replayedJobs   atomic.Int64
	tornRecords    atomic.Int64
	corruptRecords atomic.Int64
	fsyncFailures  atomic.Int64
}

// Nil-safe counter increments, one per queue event.

func (s *QueueStats) AddSubmit() {
	if s != nil {
		s.submits.Add(1)
	}
}

func (s *QueueStats) AddDupSubmit() {
	if s != nil {
		s.dupSubmits.Add(1)
	}
}

func (s *QueueStats) AddCompletion() {
	if s != nil {
		s.completions.Add(1)
	}
}

func (s *QueueStats) AddDegraded() {
	if s != nil {
		s.degraded.Add(1)
	}
}

func (s *QueueStats) AddRetry() {
	if s != nil {
		s.retries.Add(1)
	}
}

func (s *QueueStats) AddPoisoned() {
	if s != nil {
		s.poisoned.Add(1)
	}
}

func (s *QueueStats) AddAck() {
	if s != nil {
		s.acks.Add(1)
	}
}

func (s *QueueStats) AddReplayedJobs(n int) {
	if s != nil {
		s.replayedJobs.Add(int64(n))
	}
}

func (s *QueueStats) AddTornRecords(n int) {
	if s != nil {
		s.tornRecords.Add(int64(n))
	}
}

func (s *QueueStats) AddCorruptRecords(n int) {
	if s != nil {
		s.corruptRecords.Add(int64(n))
	}
}

func (s *QueueStats) AddFsyncFailure() {
	if s != nil {
		s.fsyncFailures.Add(1)
	}
}

// Poisoned returns the poison-quarantine count — the counter operators
// alert on (a poisoned job means N consecutive attempts failed).
func (s *QueueStats) Poisoned() int64 {
	if s == nil {
		return 0
	}
	return s.poisoned.Load()
}

// QueueGauges is the instantaneous state only the live queue can
// report, passed into Snapshot alongside the lifetime counters.
type QueueGauges struct {
	// Depth is the number of jobs waiting to run (ready + backing
	// off); Running the jobs currently executing; Done/Failed the
	// retained terminal jobs awaiting acknowledgement.
	Depth   int
	Running int
	Done    int
	Failed  int
	// OldestAgeMS is the age of the oldest non-terminal job in
	// milliseconds (0 when none).
	OldestAgeMS int64
	// WALRecords/WALBytes size the live write-ahead log.
	WALRecords int64
	WALBytes   int64
}

// QueueSnapshot is the frozen, JSON-taggable view of QueueStats — the
// "job_queue" section of pdced's /metrics payload.
type QueueSnapshot struct {
	// Instantaneous queue state.
	Depth       int   `json:"depth"`
	Running     int   `json:"running"`
	Done        int   `json:"done"`
	Failed      int   `json:"failed"`
	OldestAgeMS int64 `json:"oldest_age_ms"`
	WALRecords  int64 `json:"wal_records"`
	WALBytes    int64 `json:"wal_bytes"`

	// Lifetime submission counters: accepted submissions and duplicate
	// submissions collapsed onto an existing job by content address.
	Submits    int64 `json:"submits"`
	DupSubmits int64 `json:"dup_submits"`
	// Execution outcomes: completed jobs (Degraded the subset cut
	// short by the containment layer), retries scheduled after failed
	// attempts, jobs poisoned after exhausting the retry budget, and
	// client acknowledgements of terminal results.
	Completions int64 `json:"completions"`
	Degraded    int64 `json:"queue_degraded"`
	Retries     int64 `json:"retries"`
	Poisoned    int64 `json:"poisoned"`
	Acks        int64 `json:"acks"`
	// Crash recovery: jobs re-enqueued from the log on boot, torn log
	// tails truncated, corrupt mid-log records quarantined, and fsync
	// failures surfaced to submitters.
	ReplayedJobs   int64 `json:"replayed_jobs"`
	TornRecords    int64 `json:"torn_records"`
	CorruptRecords int64 `json:"corrupt_records"`
	FsyncFailures  int64 `json:"fsync_failures"`
}

// Snapshot freezes the counters together with the caller-supplied
// gauges. Nil-safe: a nil receiver yields a snapshot of the gauges
// alone.
func (s *QueueStats) Snapshot(g QueueGauges) QueueSnapshot {
	snap := QueueSnapshot{
		Depth:       g.Depth,
		Running:     g.Running,
		Done:        g.Done,
		Failed:      g.Failed,
		OldestAgeMS: g.OldestAgeMS,
		WALRecords:  g.WALRecords,
		WALBytes:    g.WALBytes,
	}
	if s == nil {
		return snap
	}
	snap.Submits = s.submits.Load()
	snap.DupSubmits = s.dupSubmits.Load()
	snap.Completions = s.completions.Load()
	snap.Degraded = s.degraded.Load()
	snap.Retries = s.retries.Load()
	snap.Poisoned = s.poisoned.Load()
	snap.Acks = s.acks.Load()
	snap.ReplayedJobs = s.replayedJobs.Load()
	snap.TornRecords = s.tornRecords.Load()
	snap.CorruptRecords = s.corruptRecords.Load()
	snap.FsyncFailures = s.fsyncFailures.Load()
	return snap
}
