// Package obs is the optimizer's observability layer: solver metrics,
// provenance traces, and the serializable Telemetry snapshot that
// core.Stats carries back to callers.
//
// The design constraint is that telemetry must cost nothing when it is
// off. Every collection point in the pipeline goes through a nil-safe
// method on a pointer type from this package — a nil *Collector, nil
// *SolverMetrics, or nil *Trace turns the call into a single branch on
// the receiver — so the hot path of an uninstrumented run is identical
// to the pre-telemetry code. When a collector is installed, counters
// are atomic (the batch pipeline shares option structs across worker
// goroutines) and trace appends take a mutex (events from one run are
// sequential anyway; the lock is for OptimizeAll callers that share a
// collector, which is legal but attributes events to one stream).
//
// Three layers:
//
//   - SolverMetrics — per-analysis counters (node visits, worklist
//     pushes, solves by kind, incremental-reuse seeding, bit-vector
//     ops, slot updates) fed by internal/dataflow and
//     internal/analysis.
//   - Trace — the provenance event stream: every eliminated
//     assignment, every sinking-candidate removal, every materialized
//     instance, recorded with round, phase, pattern, and block, fed by
//     internal/core.
//   - Telemetry — the plain, JSON-taggable snapshot of both, attached
//     to core.Stats at the end of a run and surfaced through
//     pdce.Report.
package obs

import "sync/atomic"

// SolveKind classifies one fixpoint solve for the reuse accounting.
type SolveKind int

// Solve kinds.
const (
	// SolveFull is a from-scratch solve: every node re-initialized
	// to top and seeded.
	SolveFull SolveKind = iota
	// SolveIncremental is an affected-region re-solve seeded from a
	// previous solution plus a dirty set.
	SolveIncremental
)

// SolverMetrics accumulates the cost counters of one analysis (delay,
// dead, or faint) across a whole driver run. All methods are safe on a
// nil receiver (they do nothing) and safe for concurrent use.
type SolverMetrics struct {
	solves            atomic.Int64
	fullSolves        atomic.Int64
	incrementalSolves atomic.Int64
	sparseSolves      atomic.Int64
	denseSolves       atomic.Int64
	cacheHits         atomic.Int64
	cancelled         atomic.Int64

	nodeVisits atomic.Int64
	pushes     atomic.Int64
	passes     atomic.Int64
	maxDepth   atomic.Int64
	seeded     atomic.Int64
	seedable   atomic.Int64
	vecOps     atomic.Int64

	slotUpdates atomic.Int64
}

// SolveCost carries the work counters of one completed fixpoint solve
// into RecordSolve.
type SolveCost struct {
	// Visits counts block transfer evaluations (dense) or per-bit
	// region node visits (sparse); Pushes worklist insertions.
	Visits, Pushes int
	// Passes is the number of priority-order sweeps the worklist
	// needed to converge (1 on acyclic and most structured graphs);
	// MaxWorklistDepth the deepest the worklist ever got.
	Passes, MaxWorklistDepth int
	// Seeded/Seedable feed the incremental-reuse accounting: the
	// nodes placed on the initial worklist against the nodes the
	// solve could have seeded. Sparse solves report 0/0 — they seed
	// def/use frontiers, not node regions, so they stand outside the
	// dense reuse ratio.
	Seeded, Seedable int
	// VecOps counts bulk bit-vector operations.
	VecOps int
	// Sparse classifies the solve path taken (per-pattern frontier
	// propagation vs dense whole-universe iteration).
	Sparse bool
	// Cancelled marks a watchdog-interrupted solve whose partial
	// result was discarded.
	Cancelled bool
}

// RecordSolve accounts one block-level fixpoint solve.
//
// Seeded/Seedable accumulate into the incremental-reuse hit rate: a
// full dense solve seeds everything (no reuse), an incremental solve
// seeds only the affected region (the rest of the previous solution
// was reused verbatim). The sparse/dense classification is recorded
// independently of the full/incremental one.
func (m *SolverMetrics) RecordSolve(kind SolveKind, c SolveCost) {
	if m == nil {
		return
	}
	m.solves.Add(1)
	if kind == SolveIncremental {
		m.incrementalSolves.Add(1)
	} else {
		m.fullSolves.Add(1)
	}
	if c.Sparse {
		m.sparseSolves.Add(1)
	} else {
		m.denseSolves.Add(1)
	}
	if c.Cancelled {
		m.cancelled.Add(1)
	}
	m.nodeVisits.Add(int64(c.Visits))
	m.pushes.Add(int64(c.Pushes))
	m.passes.Add(int64(c.Passes))
	maxUpdate(&m.maxDepth, int64(c.MaxWorklistDepth))
	m.seeded.Add(int64(c.Seeded))
	m.seedable.Add(int64(c.Seedable))
	m.vecOps.Add(int64(c.VecOps))
}

// maxUpdate raises an atomic counter to v if v is larger.
func maxUpdate(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// RecordCacheHit accounts a solve that was answered entirely from the
// cached previous solution (an empty dirty set): maximal reuse, zero
// work.
func (m *SolverMetrics) RecordCacheHit() {
	if m == nil {
		return
	}
	m.solves.Add(1)
	m.cacheHits.Add(1)
}

// RecordSlotSolve accounts one slotwise faint-variable solve, whose
// unit of work is the slot update rather than the block visit.
func (m *SolverMetrics) RecordSlotSolve(slotUpdates, pushes int, cancelled bool) {
	if m == nil {
		return
	}
	m.solves.Add(1)
	m.fullSolves.Add(1)
	m.denseSolves.Add(1)
	if cancelled {
		m.cancelled.Add(1)
	}
	m.slotUpdates.Add(int64(slotUpdates))
	m.pushes.Add(int64(pushes))
}

// Snapshot freezes the counters into a plain serializable struct.
func (m *SolverMetrics) Snapshot() SolverSnapshot {
	if m == nil {
		return SolverSnapshot{}
	}
	s := SolverSnapshot{
		Solves:            m.solves.Load(),
		FullSolves:        m.fullSolves.Load(),
		IncrementalSolves: m.incrementalSolves.Load(),
		SparseSolves:      m.sparseSolves.Load(),
		DenseSolves:       m.denseSolves.Load(),
		CacheHits:         m.cacheHits.Load(),
		CancelledSolves:   m.cancelled.Load(),
		NodeVisits:        m.nodeVisits.Load(),
		WorklistPushes:    m.pushes.Load(),
		Passes:            m.passes.Load(),
		MaxWorklistDepth:  m.maxDepth.Load(),
		SeededNodes:       m.seeded.Load(),
		SeedableNodes:     m.seedable.Load(),
		VectorOps:         m.vecOps.Load(),
		SlotUpdates:       m.slotUpdates.Load(),
	}
	if s.SeedableNodes > 0 {
		s.ReuseRate = 1 - float64(s.SeededNodes)/float64(s.SeedableNodes)
	}
	return s
}

// SolverSnapshot is the frozen, JSON-serializable form of one
// analysis's SolverMetrics.
type SolverSnapshot struct {
	// Solves is the total number of Solve calls, split into
	// FullSolves (from scratch), IncrementalSolves (affected-region
	// re-solves), and CacheHits (answered from the cached previous
	// solution without touching the worklist). CancelledSolves counts
	// solves the watchdog interrupted; their partial results were
	// discarded.
	Solves            int64 `json:"solves"`
	FullSolves        int64 `json:"full_solves"`
	IncrementalSolves int64 `json:"incremental_solves"`
	CacheHits         int64 `json:"cache_hits"`
	CancelledSolves   int64 `json:"cancelled_solves"`

	// SparseSolves and DenseSolves classify each recorded solve by
	// the path taken: per-pattern frontier propagation vs dense
	// whole-universe iteration. In auto mode their ratio shows what
	// the density/reducibility heuristic actually chose.
	SparseSolves int64 `json:"sparse_solves"`
	DenseSolves  int64 `json:"dense_solves"`

	// NodeVisits counts block transfer evaluations, WorklistPushes
	// worklist insertions (seeds plus requeues). Passes accumulates
	// the priority worklist's sweep counts (a sweep is one
	// monotone front through the solve order; RPO keeps this at
	// O(loop nesting) on reducible graphs), and MaxWorklistDepth is
	// the deepest any solve's worklist got — together they attribute
	// RPO-vs-FIFO ordering gains. SeededNodes / SeedableNodes
	// accumulate each solve's initial worklist against the graph
	// size; ReuseRate = 1 - seeded/seedable is the fraction of node
	// solutions carried over unrecomputed — 0 for a run of full
	// solves, approaching 1 when incremental re-seeding pays.
	NodeVisits       int64   `json:"node_visits"`
	WorklistPushes   int64   `json:"worklist_pushes"`
	Passes           int64   `json:"passes"`
	MaxWorklistDepth int64   `json:"max_worklist_depth"`
	SeededNodes      int64   `json:"seeded_nodes"`
	SeedableNodes    int64   `json:"seedable_nodes"`
	ReuseRate        float64 `json:"reuse_rate"`

	// VectorOps counts bulk bit-vector operations (meets, transfer
	// copies, change tests) performed by the block-level solver.
	VectorOps int64 `json:"vector_ops"`

	// SlotUpdates counts slot processings of the slotwise faint
	// solver — the quantity Section 6.1.2 bounds by O(i·v).
	SlotUpdates int64 `json:"slot_updates"`
}

// ArenaSnapshot describes the slab allocator state behind one or more
// solvers' solution storage.
type ArenaSnapshot struct {
	// Slabs is the number of backing chunks, CapWords their combined
	// capacity in 64-bit words, UsedWords the words actually carved.
	Slabs     int64 `json:"slabs"`
	CapWords  int64 `json:"cap_words"`
	UsedWords int64 `json:"used_words"`
}

// Telemetry is the serializable observability section of a run,
// attached to core.Stats when a Collector was installed.
type Telemetry struct {
	// Delay, Dead, and Faint are the per-analysis solver metrics.
	// Only the analyses the selected mode runs are populated (pde:
	// delay+dead, pfe: delay+faint).
	Delay SolverSnapshot `json:"delay"`
	Dead  SolverSnapshot `json:"dead"`
	Faint SolverSnapshot `json:"faint"`

	// Arena aggregates slab statistics over the run's pooled
	// bit-vector storage.
	Arena ArenaSnapshot `json:"arena"`

	// BitvecOps is the process-global bit-vector op meter's delta
	// across the run (see bitvec.EnableOpCount); 0 unless the meter
	// was enabled. Concurrent runs share the meter, so in batch mode
	// the per-run delta attributes overlapping work.
	BitvecOps int64 `json:"bitvec_ops"`

	// Events is the provenance trace, present when tracing was on.
	Events []Event `json:"events,omitempty"`
}

// Collector is the root telemetry sink of one optimization run: one
// SolverMetrics per analysis, optional provenance tracing, and arena
// accounting. A nil *Collector disables everything.
type Collector struct {
	Delay SolverMetrics
	Dead  SolverMetrics
	Faint SolverMetrics

	// Trace is the provenance event sink; nil leaves tracing off
	// while metrics still collect.
	Trace *Trace

	arenaSlabs atomic.Int64
	arenaCap   atomic.Int64
	arenaUsed  atomic.Int64
}

// NewCollector returns a collector; with trace set it also records
// provenance events.
func NewCollector(trace bool) *Collector {
	c := &Collector{}
	if trace {
		c.Trace = &Trace{}
	}
	return c
}

// DelayMetrics returns the delayability metrics sink, nil on a nil
// collector.
func (c *Collector) DelayMetrics() *SolverMetrics {
	if c == nil {
		return nil
	}
	return &c.Delay
}

// DeadMetrics returns the dead-variable metrics sink, nil on a nil
// collector.
func (c *Collector) DeadMetrics() *SolverMetrics {
	if c == nil {
		return nil
	}
	return &c.Dead
}

// FaintMetrics returns the faint-variable metrics sink, nil on a nil
// collector.
func (c *Collector) FaintMetrics() *SolverMetrics {
	if c == nil {
		return nil
	}
	return &c.Faint
}

// Tracer returns the provenance sink, nil on a nil collector or when
// tracing is off.
func (c *Collector) Tracer() *Trace {
	if c == nil {
		return nil
	}
	return c.Trace
}

// AddArena folds one arena's slab statistics into the run totals.
func (c *Collector) AddArena(slabs, capWords, usedWords int) {
	if c == nil {
		return
	}
	c.arenaSlabs.Add(int64(slabs))
	c.arenaCap.Add(int64(capWords))
	c.arenaUsed.Add(int64(usedWords))
}

// Snapshot freezes the collector into the serializable Telemetry
// section. bitvecOps is the caller-measured delta of the global
// bit-vector op meter (0 when not metered).
func (c *Collector) Snapshot(bitvecOps int64) *Telemetry {
	if c == nil {
		return nil
	}
	return &Telemetry{
		Delay: c.Delay.Snapshot(),
		Dead:  c.Dead.Snapshot(),
		Faint: c.Faint.Snapshot(),
		Arena: ArenaSnapshot{
			Slabs:     c.arenaSlabs.Load(),
			CapWords:  c.arenaCap.Load(),
			UsedWords: c.arenaUsed.Load(),
		},
		BitvecOps: bitvecOps,
		Events:    c.Trace.Events(),
	}
}
