// Package obs is the optimizer's observability layer: solver metrics,
// provenance traces, and the serializable Telemetry snapshot that
// core.Stats carries back to callers.
//
// The design constraint is that telemetry must cost nothing when it is
// off. Every collection point in the pipeline goes through a nil-safe
// method on a pointer type from this package — a nil *Collector, nil
// *SolverMetrics, or nil *Trace turns the call into a single branch on
// the receiver — so the hot path of an uninstrumented run is identical
// to the pre-telemetry code. When a collector is installed, counters
// are atomic (the batch pipeline shares option structs across worker
// goroutines) and trace appends take a mutex (events from one run are
// sequential anyway; the lock is for OptimizeAll callers that share a
// collector, which is legal but attributes events to one stream).
//
// Three layers:
//
//   - SolverMetrics — per-analysis counters (node visits, worklist
//     pushes, solves by kind, incremental-reuse seeding, bit-vector
//     ops, slot updates) fed by internal/dataflow and
//     internal/analysis.
//   - Trace — the provenance event stream: every eliminated
//     assignment, every sinking-candidate removal, every materialized
//     instance, recorded with round, phase, pattern, and block, fed by
//     internal/core.
//   - Telemetry — the plain, JSON-taggable snapshot of both, attached
//     to core.Stats at the end of a run and surfaced through
//     pdce.Report.
package obs

import "sync/atomic"

// SolveKind classifies one fixpoint solve for the reuse accounting.
type SolveKind int

// Solve kinds.
const (
	// SolveFull is a from-scratch solve: every node re-initialized
	// to top and seeded.
	SolveFull SolveKind = iota
	// SolveIncremental is an affected-region re-solve seeded from a
	// previous solution plus a dirty set.
	SolveIncremental
)

// SolverMetrics accumulates the cost counters of one analysis (delay,
// dead, or faint) across a whole driver run. All methods are safe on a
// nil receiver (they do nothing) and safe for concurrent use.
type SolverMetrics struct {
	solves            atomic.Int64
	fullSolves        atomic.Int64
	incrementalSolves atomic.Int64
	cacheHits         atomic.Int64
	cancelled         atomic.Int64

	nodeVisits atomic.Int64
	pushes     atomic.Int64
	seeded     atomic.Int64
	seedable   atomic.Int64
	vecOps     atomic.Int64

	slotUpdates atomic.Int64
}

// RecordSolve accounts one block-level fixpoint solve.
//
// seeded is the number of nodes placed on the initial worklist and
// seedable the number of nodes the solve could have seeded (the whole
// graph); their accumulated ratio is the incremental-reuse hit rate:
// a full solve seeds everything (no reuse), an incremental solve seeds
// only the affected region (the rest of the previous solution was
// reused verbatim).
func (m *SolverMetrics) RecordSolve(kind SolveKind, visits, pushes, seeded, seedable, vecOps int, cancelled bool) {
	if m == nil {
		return
	}
	m.solves.Add(1)
	if kind == SolveIncremental {
		m.incrementalSolves.Add(1)
	} else {
		m.fullSolves.Add(1)
	}
	if cancelled {
		m.cancelled.Add(1)
	}
	m.nodeVisits.Add(int64(visits))
	m.pushes.Add(int64(pushes))
	m.seeded.Add(int64(seeded))
	m.seedable.Add(int64(seedable))
	m.vecOps.Add(int64(vecOps))
}

// RecordCacheHit accounts a solve that was answered entirely from the
// cached previous solution (an empty dirty set): maximal reuse, zero
// work.
func (m *SolverMetrics) RecordCacheHit() {
	if m == nil {
		return
	}
	m.solves.Add(1)
	m.cacheHits.Add(1)
}

// RecordSlotSolve accounts one slotwise faint-variable solve, whose
// unit of work is the slot update rather than the block visit.
func (m *SolverMetrics) RecordSlotSolve(slotUpdates, pushes int, cancelled bool) {
	if m == nil {
		return
	}
	m.solves.Add(1)
	m.fullSolves.Add(1)
	if cancelled {
		m.cancelled.Add(1)
	}
	m.slotUpdates.Add(int64(slotUpdates))
	m.pushes.Add(int64(pushes))
}

// Snapshot freezes the counters into a plain serializable struct.
func (m *SolverMetrics) Snapshot() SolverSnapshot {
	if m == nil {
		return SolverSnapshot{}
	}
	s := SolverSnapshot{
		Solves:            m.solves.Load(),
		FullSolves:        m.fullSolves.Load(),
		IncrementalSolves: m.incrementalSolves.Load(),
		CacheHits:         m.cacheHits.Load(),
		CancelledSolves:   m.cancelled.Load(),
		NodeVisits:        m.nodeVisits.Load(),
		WorklistPushes:    m.pushes.Load(),
		SeededNodes:       m.seeded.Load(),
		SeedableNodes:     m.seedable.Load(),
		VectorOps:         m.vecOps.Load(),
		SlotUpdates:       m.slotUpdates.Load(),
	}
	if s.SeedableNodes > 0 {
		s.ReuseRate = 1 - float64(s.SeededNodes)/float64(s.SeedableNodes)
	}
	return s
}

// SolverSnapshot is the frozen, JSON-serializable form of one
// analysis's SolverMetrics.
type SolverSnapshot struct {
	// Solves is the total number of Solve calls, split into
	// FullSolves (from scratch), IncrementalSolves (affected-region
	// re-solves), and CacheHits (answered from the cached previous
	// solution without touching the worklist). CancelledSolves counts
	// solves the watchdog interrupted; their partial results were
	// discarded.
	Solves            int64 `json:"solves"`
	FullSolves        int64 `json:"full_solves"`
	IncrementalSolves int64 `json:"incremental_solves"`
	CacheHits         int64 `json:"cache_hits"`
	CancelledSolves   int64 `json:"cancelled_solves"`

	// NodeVisits counts block transfer evaluations, WorklistPushes
	// worklist insertions (seeds plus requeues). SeededNodes /
	// SeedableNodes accumulate each solve's initial worklist against
	// the graph size; ReuseRate = 1 - seeded/seedable is the fraction
	// of node solutions carried over unrecomputed — 0 for a run of
	// full solves, approaching 1 when incremental re-seeding pays.
	NodeVisits     int64   `json:"node_visits"`
	WorklistPushes int64   `json:"worklist_pushes"`
	SeededNodes    int64   `json:"seeded_nodes"`
	SeedableNodes  int64   `json:"seedable_nodes"`
	ReuseRate      float64 `json:"reuse_rate"`

	// VectorOps counts bulk bit-vector operations (meets, transfer
	// copies, change tests) performed by the block-level solver.
	VectorOps int64 `json:"vector_ops"`

	// SlotUpdates counts slot processings of the slotwise faint
	// solver — the quantity Section 6.1.2 bounds by O(i·v).
	SlotUpdates int64 `json:"slot_updates"`
}

// ArenaSnapshot describes the slab allocator state behind one or more
// solvers' solution storage.
type ArenaSnapshot struct {
	// Slabs is the number of backing chunks, CapWords their combined
	// capacity in 64-bit words, UsedWords the words actually carved.
	Slabs     int64 `json:"slabs"`
	CapWords  int64 `json:"cap_words"`
	UsedWords int64 `json:"used_words"`
}

// Telemetry is the serializable observability section of a run,
// attached to core.Stats when a Collector was installed.
type Telemetry struct {
	// Delay, Dead, and Faint are the per-analysis solver metrics.
	// Only the analyses the selected mode runs are populated (pde:
	// delay+dead, pfe: delay+faint).
	Delay SolverSnapshot `json:"delay"`
	Dead  SolverSnapshot `json:"dead"`
	Faint SolverSnapshot `json:"faint"`

	// Arena aggregates slab statistics over the run's pooled
	// bit-vector storage.
	Arena ArenaSnapshot `json:"arena"`

	// BitvecOps is the process-global bit-vector op meter's delta
	// across the run (see bitvec.EnableOpCount); 0 unless the meter
	// was enabled. Concurrent runs share the meter, so in batch mode
	// the per-run delta attributes overlapping work.
	BitvecOps int64 `json:"bitvec_ops"`

	// Events is the provenance trace, present when tracing was on.
	Events []Event `json:"events,omitempty"`
}

// Collector is the root telemetry sink of one optimization run: one
// SolverMetrics per analysis, optional provenance tracing, and arena
// accounting. A nil *Collector disables everything.
type Collector struct {
	Delay SolverMetrics
	Dead  SolverMetrics
	Faint SolverMetrics

	// Trace is the provenance event sink; nil leaves tracing off
	// while metrics still collect.
	Trace *Trace

	arenaSlabs atomic.Int64
	arenaCap   atomic.Int64
	arenaUsed  atomic.Int64
}

// NewCollector returns a collector; with trace set it also records
// provenance events.
func NewCollector(trace bool) *Collector {
	c := &Collector{}
	if trace {
		c.Trace = &Trace{}
	}
	return c
}

// DelayMetrics returns the delayability metrics sink, nil on a nil
// collector.
func (c *Collector) DelayMetrics() *SolverMetrics {
	if c == nil {
		return nil
	}
	return &c.Delay
}

// DeadMetrics returns the dead-variable metrics sink, nil on a nil
// collector.
func (c *Collector) DeadMetrics() *SolverMetrics {
	if c == nil {
		return nil
	}
	return &c.Dead
}

// FaintMetrics returns the faint-variable metrics sink, nil on a nil
// collector.
func (c *Collector) FaintMetrics() *SolverMetrics {
	if c == nil {
		return nil
	}
	return &c.Faint
}

// Tracer returns the provenance sink, nil on a nil collector or when
// tracing is off.
func (c *Collector) Tracer() *Trace {
	if c == nil {
		return nil
	}
	return c.Trace
}

// AddArena folds one arena's slab statistics into the run totals.
func (c *Collector) AddArena(slabs, capWords, usedWords int) {
	if c == nil {
		return
	}
	c.arenaSlabs.Add(int64(slabs))
	c.arenaCap.Add(int64(capWords))
	c.arenaUsed.Add(int64(usedWords))
}

// Snapshot freezes the collector into the serializable Telemetry
// section. bitvecOps is the caller-measured delta of the global
// bit-vector op meter (0 when not metered).
func (c *Collector) Snapshot(bitvecOps int64) *Telemetry {
	if c == nil {
		return nil
	}
	return &Telemetry{
		Delay: c.Delay.Snapshot(),
		Dead:  c.Dead.Snapshot(),
		Faint: c.Faint.Snapshot(),
		Arena: ArenaSnapshot{
			Slabs:     c.arenaSlabs.Load(),
			CapWords:  c.arenaCap.Load(),
			UsedWords: c.arenaUsed.Load(),
		},
		BitvecOps: bitvecOps,
		Events:    c.Trace.Events(),
	}
}
