package obs

import (
	"fmt"
	"io"
	"reflect"
	"sort"
	"strings"
)

// Prometheus text exposition (format=prom on pdced's /metrics).
//
// Rather than hand-maintaining a parallel list of metrics — which
// would drift from the JSON surface the moment a snapshot grows a
// field — WriteProm renders any JSON-tagged snapshot struct by
// reflection: every numeric field becomes a gauge named by its json
// tag path, maps become labeled series, and the docs guard's
// reflection walk therefore covers both wire formats at once.

// WriteProm renders v in the Prometheus text exposition format
// (version 0.0.4). Numeric and bool fields become gauges named
// prefix_<path> where <path> joins the json tags along the way;
// map[string]T fields become one series per key with a {key="..."}
// label. String fields are skipped (Prometheus has no string samples).
// Output is deterministic: series are emitted in sorted name order.
func WriteProm(w io.Writer, prefix string, v any) error {
	c := &promCollector{samples: make(map[string][]promSample)}
	c.walk(reflect.ValueOf(v), prefix, "")
	names := make([]string, 0, len(c.samples))
	for name := range c.samples {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", name); err != nil {
			return err
		}
		ss := c.samples[name]
		sort.Slice(ss, func(i, j int) bool { return ss[i].label < ss[j].label })
		for _, s := range ss {
			var err error
			if s.label == "" {
				_, err = fmt.Fprintf(w, "%s %s\n", name, s.value)
			} else {
				_, err = fmt.Fprintf(w, "%s{key=%q} %s\n", name, s.label, s.value)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

type promSample struct {
	label string
	value string
}

type promCollector struct {
	samples map[string][]promSample
}

func (c *promCollector) add(name, label, value string) {
	c.samples[name] = append(c.samples[name], promSample{label: label, value: value})
}

// walk recurses through v emitting samples. name is the metric name
// accumulated so far; label the map key in effect (one level of
// labeling is supported — nested maps flatten their inner path into
// the metric name).
func (c *promCollector) walk(v reflect.Value, name, label string) {
	switch v.Kind() {
	case reflect.Pointer, reflect.Interface:
		if v.IsNil() {
			return
		}
		c.walk(v.Elem(), name, label)
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			tag := strings.Split(f.Tag.Get("json"), ",")[0]
			if tag == "-" {
				continue
			}
			if tag == "" {
				tag = strings.ToLower(f.Name)
			}
			c.walk(v.Field(i), joinMetric(name, tag), label)
		}
	case reflect.Map:
		keys := make([]string, 0, v.Len())
		iter := v.MapRange()
		for iter.Next() {
			keys = append(keys, fmt.Sprint(iter.Key().Interface()))
		}
		sort.Strings(keys)
		for _, k := range keys {
			c.walk(v.MapIndex(reflect.ValueOf(k)), name, k)
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		c.add(name, label, fmt.Sprintf("%d", v.Int()))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		c.add(name, label, fmt.Sprintf("%d", v.Uint()))
	case reflect.Float32, reflect.Float64:
		c.add(name, label, fmt.Sprintf("%g", v.Float()))
	case reflect.Bool:
		b := "0"
		if v.Bool() {
			b = "1"
		}
		c.add(name, label, b)
	}
	// Strings, slices, and anything else have no Prometheus sample
	// form and are skipped.
}

func joinMetric(base, tag string) string {
	var b strings.Builder
	b.Grow(len(base) + 1 + len(tag))
	b.WriteString(base)
	if base != "" {
		b.WriteByte('_')
	}
	for _, r := range tag {
		if r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9') {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}
