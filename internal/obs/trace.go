package obs

import "sync"

// Event kinds. Together they cover every way the fixpoint driver
// touches an assignment, so the ordered stream of one run is a full
// provenance record: follow one pattern's events and you watch it be
// carried to an insertion frontier (sink-remove + insert-*), pinned in
// place (fuse), or removed for good (eliminate, or a sink-remove with
// no matching insert — the assignment was dead along all of its
// remaining paths and sank off the program).
const (
	// KindSplitEdge records a synthetic node inserted by
	// critical-edge splitting during setup (round 0). Block is the
	// synthetic node's label, Detail the "from->to" edge it split.
	KindSplitEdge = "split-edge"

	// KindEliminate records an assignment removed by a dead or faint
	// elimination step (Analysis says which justified it).
	KindEliminate = "eliminate"

	// KindSinkRemove records a sinking-candidate occurrence taken
	// out of its block by the sinking transformation.
	KindSinkRemove = "sink-remove"

	// KindInsertEntry and KindInsertExit record a materialized
	// instance of a pattern at a block boundary — the frontier where
	// delaying had to stop.
	KindInsertEntry = "insert-entry"
	KindInsertExit  = "insert-exit"

	// KindFuse records the stability case: a candidate whose removal
	// and exit-insertion cancelled, leaving the occurrence in place
	// (Section 5.4's X-INSERT = LOCDELAYED invariance).
	KindFuse = "fuse"
)

// Event is one provenance record.
type Event struct {
	// Seq is the global 0-based event order within the run.
	Seq int `json:"seq"`
	// Round is the 1-based driver round (0 for setup events); Phase
	// is "setup", "eliminate", or "sink".
	Round int    `json:"round"`
	Phase string `json:"phase"`
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	// Analysis names the analysis that justified the step: "dead" or
	// "faint" for eliminations, "delay" for sinking events.
	Analysis string `json:"analysis,omitempty"`
	// Var is the left-hand-side variable of the affected assignment;
	// Pattern its full "x := t" pattern.
	Var     string `json:"var,omitempty"`
	Pattern string `json:"pattern,omitempty"`
	// Block is the label of the block the event happened in (the
	// destination block for insertions).
	Block string `json:"block"`
	// Detail carries kind-specific context (the split edge).
	Detail string `json:"detail,omitempty"`
}

// Trace is an append-only provenance event buffer. All methods are
// nil-safe and concurrency-safe.
type Trace struct {
	mu       sync.Mutex
	seq      int
	round    int
	phase    string
	analysis string
	events   []Event
}

// BeginPhase sets the (round, phase, analysis) context stamped onto
// subsequent Record calls, so the recording sites inside the
// transformation kernels do not need to thread driver state.
func (t *Trace) BeginPhase(round int, phase, analysis string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.round, t.phase, t.analysis = round, phase, analysis
	t.mu.Unlock()
}

// Record appends one event in the current phase context.
func (t *Trace) Record(kind, block, variable, pattern string) {
	t.record(kind, block, variable, pattern, "")
}

// RecordDetail is Record with a kind-specific detail string.
func (t *Trace) RecordDetail(kind, block, variable, pattern, detail string) {
	t.record(kind, block, variable, pattern, detail)
}

func (t *Trace) record(kind, block, variable, pattern, detail string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, Event{
		Seq:      t.seq,
		Round:    t.round,
		Phase:    t.phase,
		Kind:     kind,
		Analysis: t.analysis,
		Var:      variable,
		Pattern:  pattern,
		Block:    block,
		Detail:   detail,
	})
	t.seq++
	t.mu.Unlock()
}

// Events returns a copy of the recorded stream in order. Nil-safe.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.events) == 0 {
		return nil
	}
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// Len returns the number of recorded events. Nil-safe.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}
