package obs

import (
	"strings"
	"testing"
)

func TestWritePromRendersTaggedStructs(t *testing.T) {
	type inner struct {
		Count int64   `json:"count"`
		Rate  float64 `json:"hit_rate"`
	}
	type snap struct {
		Requests int64            `json:"requests"`
		Healthy  bool             `json:"healthy"`
		Skipped  string           `json:"skipped_string"`
		Hidden   int64            `json:"-"`
		Cache    inner            `json:"cache"`
		PerNode  map[string]int64 `json:"per_node,omitempty"`
		Nested   map[string]inner `json:"nested,omitempty"`
		Ptr      *inner           `json:"ptr,omitempty"`
	}
	v := snap{
		Requests: 7,
		Healthy:  true,
		Skipped:  "not a sample",
		Hidden:   99,
		Cache:    inner{Count: 3, Rate: 0.5},
		PerNode:  map[string]int64{"b": 2, "a": 1},
		Nested:   map[string]inner{"n1": {Count: 4}},
	}
	var b strings.Builder
	if err := WriteProm(&b, "pdce", v); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := []string{
		"# TYPE pdce_requests gauge\npdce_requests 7\n",
		"pdce_healthy 1\n",
		"pdce_cache_count 3\n",
		"pdce_cache_hit_rate 0.5\n",
		"pdce_per_node{key=\"a\"} 1\n",
		"pdce_per_node{key=\"b\"} 2\n",
		"pdce_nested_count{key=\"n1\"} 4\n",
	}
	for _, w := range want {
		if !strings.Contains(out, w) {
			t.Errorf("output missing %q\n---\n%s", w, out)
		}
	}
	if strings.Contains(out, "skipped") || strings.Contains(out, "not a sample") {
		t.Error("string field rendered")
	}
	if strings.Contains(out, "99") {
		t.Error("json:\"-\" field rendered")
	}
	if strings.Contains(out, "ptr") {
		t.Error("nil pointer rendered")
	}
	// Map keys within one series are label-sorted.
	if strings.Index(out, `key="a"`) > strings.Index(out, `key="b"`) {
		t.Error("labels not sorted")
	}
}

func TestWritePromDeterministic(t *testing.T) {
	type snap struct {
		B int64            `json:"b"`
		A int64            `json:"a"`
		M map[string]int64 `json:"m"`
	}
	v := snap{A: 1, B: 2, M: map[string]int64{"z": 1, "y": 2, "x": 3}}
	var first string
	for i := 0; i < 5; i++ {
		var b strings.Builder
		if err := WriteProm(&b, "p", v); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = b.String()
		} else if b.String() != first {
			t.Fatalf("run %d diverged:\n%s\n---\n%s", i, b.String(), first)
		}
	}
	// Series names in sorted order: p_a before p_b before p_m.
	if strings.Index(first, "p_a ") > strings.Index(first, "p_b ") {
		t.Error("series not name-sorted")
	}
}

func TestWritePromSanitizesNames(t *testing.T) {
	type snap struct {
		Odd int64 `json:"odd.name-here"`
	}
	var b strings.Builder
	if err := WriteProm(&b, "p", snap{Odd: 1}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "p_odd_name_here 1") {
		t.Fatalf("unsanitized name:\n%s", b.String())
	}
}

// TestWritePromRealSnapshot pins the reflection walk against the real
// /metrics payload shape: every top-level section must produce at
// least one gauge, proving a snapshot refactor cannot silently empty
// the Prometheus surface.
func TestWritePromRealSnapshot(t *testing.T) {
	stats := &ServerStats{}
	stats.AddRequest()
	stats.AddCacheHit()
	ts := NewTraceStore(8, 1.0, 42)
	ts.StartSpan("server.optimize", "pdced", SpanContext{}).End()
	payload := struct {
		Server ServerSnapshot     `json:"server"`
		Traces TraceStoreSnapshot `json:"traces"`
	}{stats.Snapshot(), ts.Snapshot()}
	var b strings.Builder
	if err := WriteProm(&b, "pdce", payload); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, w := range []string{
		"pdce_server_requests 1",
		"pdce_server_cache_hits 1",
		"pdce_traces_kept 1",
		`pdce_traces_stages_count{key="server.optimize"} 1`,
	} {
		if !strings.Contains(out, w) {
			t.Errorf("real snapshot missing %q\n---\n%s", w, out)
		}
	}
}
