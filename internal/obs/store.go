package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// StoreStats accumulates the shared L2 blob store's counters
// (internal/store wired through internal/server). Like the rest of
// this package it is nil-safe — every method does nothing on a nil
// receiver — and safe for concurrent use.
//
// The counters split into the read path (L2Hits/L2Misses plus
// GetFailures, backend errors served as misses), the publish path
// (Puts and PutFailures — puts are best-effort and asynchronous, so a
// failure costs the fleet a warm entry, never a request), and the
// cluster singleflight (LeaseWins — solves this replica owned,
// LeaseLosses — solves another replica owned, LeaseExpiries — dead
// owners' leases reclaimed, LeaseFetches — results fetched from the
// winning replica instead of re-solved, LeaseErrors — lease traffic
// that failed against the backend). Gauges only the backend knows —
// blob count and byte total — are passed into Snapshot by the caller.
type StoreStats struct {
	l2Hits      atomic.Int64
	l2Misses    atomic.Int64
	puts        atomic.Int64
	putFailures atomic.Int64
	getFailures atomic.Int64

	leaseWins     atomic.Int64
	leaseLosses   atomic.Int64
	leaseExpiries atomic.Int64
	leaseFetches  atomic.Int64
	leaseErrors   atomic.Int64

	mu      sync.Mutex
	lat     []int64 // ring buffer of L2 get latencies, ns
	next    int
	samples int64
}

// Nil-safe counter increments, one per store event.

func (s *StoreStats) AddL2Hit() {
	if s != nil {
		s.l2Hits.Add(1)
	}
}

func (s *StoreStats) AddL2Miss() {
	if s != nil {
		s.l2Misses.Add(1)
	}
}

func (s *StoreStats) AddPut() {
	if s != nil {
		s.puts.Add(1)
	}
}

func (s *StoreStats) AddPutFailure() {
	if s != nil {
		s.putFailures.Add(1)
	}
}

func (s *StoreStats) AddGetFailure() {
	if s != nil {
		s.getFailures.Add(1)
	}
}

func (s *StoreStats) AddLeaseWin() {
	if s != nil {
		s.leaseWins.Add(1)
	}
}

func (s *StoreStats) AddLeaseLoss() {
	if s != nil {
		s.leaseLosses.Add(1)
	}
}

func (s *StoreStats) AddLeaseExpiry() {
	if s != nil {
		s.leaseExpiries.Add(1)
	}
}

func (s *StoreStats) AddLeaseFetch() {
	if s != nil {
		s.leaseFetches.Add(1)
	}
}

func (s *StoreStats) AddLeaseError() {
	if s != nil {
		s.leaseErrors.Add(1)
	}
}

// L2Hits returns the L2 hit count — the counter fleet benchmarks and
// tests watch to prove a restarted replica warmed from the store.
func (s *StoreStats) L2Hits() int64 {
	if s == nil {
		return 0
	}
	return s.l2Hits.Load()
}

// LeaseExpiries returns the reclaimed-lease count (tests).
func (s *StoreStats) LeaseExpiries() int64 {
	if s == nil {
		return 0
	}
	return s.leaseExpiries.Load()
}

// RecordGetLatency feeds one L2 get's wall-clock duration into the
// percentile reservoir (the same fixed-ring scheme as ServerStats).
func (s *StoreStats) RecordGetLatency(d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.lat == nil {
		s.lat = make([]int64, 0, latencyWindow)
	}
	if len(s.lat) < latencyWindow {
		s.lat = append(s.lat, int64(d))
	} else {
		s.lat[s.next] = int64(d)
	}
	s.next = (s.next + 1) % latencyWindow
	s.samples++
	s.mu.Unlock()
}

// StoreGauges is the instantaneous backend state passed into Snapshot
// alongside the lifetime counters.
type StoreGauges struct {
	// Blobs/Bytes size the backend's current contents (zero when the
	// backend cannot report, e.g. a peer without a /stats surface).
	Blobs int64
	Bytes int64
}

// StoreSnapshot is the frozen, JSON-taggable view of StoreStats — the
// "store" section of pdced's /metrics payload.
type StoreSnapshot struct {
	// Backend contents.
	Blobs int64 `json:"blobs"`
	Bytes int64 `json:"bytes"`

	// L2 read path: hits backfill L1, misses fall through to the
	// lease-arbitrated solve, get failures are backend errors served
	// as misses.
	L2Hits      int64   `json:"l2_hits"`
	L2Misses    int64   `json:"l2_misses"`
	L2HitRate   float64 `json:"l2_hit_rate"`
	GetFailures int64   `json:"l2_get_failures"`

	// Publish path: best-effort async puts after local solves.
	Puts        int64 `json:"l2_puts"`
	PutFailures int64 `json:"l2_put_failures"`

	// Cluster singleflight: solves owned here, solves owned elsewhere,
	// dead owners' leases reclaimed, results fetched from the winner
	// instead of re-solved, and lease traffic lost to backend errors.
	LeaseWins     int64 `json:"lease_wins"`
	LeaseLosses   int64 `json:"lease_losses"`
	LeaseExpiries int64 `json:"lease_expiries"`
	LeaseFetches  int64 `json:"lease_fetches"`
	LeaseErrors   int64 `json:"lease_errors"`

	// L2 get latency over the most recent window (nearest-rank
	// percentiles); Samples is the lifetime sample count.
	GetP50NS int64 `json:"get_p50_ns"`
	GetP95NS int64 `json:"get_p95_ns"`
	GetMaxNS int64 `json:"get_max_ns"`
	Samples  int64 `json:"get_latency_samples"`
}

// Snapshot freezes the counters together with the caller-supplied
// gauges. Nil-safe: a nil receiver yields a snapshot of the gauges
// alone.
func (s *StoreStats) Snapshot(g StoreGauges) StoreSnapshot {
	snap := StoreSnapshot{Blobs: g.Blobs, Bytes: g.Bytes}
	if s == nil {
		return snap
	}
	snap.L2Hits = s.l2Hits.Load()
	snap.L2Misses = s.l2Misses.Load()
	snap.GetFailures = s.getFailures.Load()
	snap.Puts = s.puts.Load()
	snap.PutFailures = s.putFailures.Load()
	snap.LeaseWins = s.leaseWins.Load()
	snap.LeaseLosses = s.leaseLosses.Load()
	snap.LeaseExpiries = s.leaseExpiries.Load()
	snap.LeaseFetches = s.leaseFetches.Load()
	snap.LeaseErrors = s.leaseErrors.Load()
	if lookups := snap.L2Hits + snap.L2Misses; lookups > 0 {
		snap.L2HitRate = float64(snap.L2Hits) / float64(lookups)
	}

	s.mu.Lock()
	lat := make([]int64, len(s.lat))
	copy(lat, s.lat)
	snap.Samples = s.samples
	s.mu.Unlock()
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		snap.GetP50NS = lat[nearestRank(len(lat), 50)]
		snap.GetP95NS = lat[nearestRank(len(lat), 95)]
		snap.GetMaxNS = lat[len(lat)-1]
	}
	return snap
}
