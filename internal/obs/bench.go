// Bench record schema for the paper-reproduction harness.
//
// cmd/benchpaper executes the experiment matrix declared in
// experiments.json and appends one BenchRun per invocation to the
// BENCH_paper.json history; cmd/benchreport consumes the history to
// regenerate the reproduction documentation and to gate regressions.
// The shapes here are the contract between the two (pinned by
// testdata/bench.schema.json): raw per-repeat data points stay in
// Records, and every number the docs or the gate consume comes from
// the variance-aware Aggregates computed across repeats.
package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// BenchSchemaVersion is the current BENCH_paper.json history format.
// Version 1 was the implicit pre-history format: a single flat report
// ({quick, seeds, gomaxprocs, records}) overwritten on every run;
// LoadBenchHistory still reads it by wrapping the report into a
// single-run history.
const BenchSchemaVersion = 2

// BenchPoint is one raw measured data point of one experiment repeat.
// Exp/Name/N identify the measurement series; Rep is the repeat index
// within the run (0-based). NSPerOp carries the measured wall time
// where the experiment has one; all other measurements live in
// Metrics under stable names.
type BenchPoint struct {
	Exp     string             `json:"exp"`
	Name    string             `json:"name"`
	N       int                `json:"n,omitempty"`
	Rep     int                `json:"rep"`
	NSPerOp int64              `json:"ns_per_op,omitempty"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// BenchTimeMetric is the pseudo-metric name under which a point's
// NSPerOp participates in aggregation, so wall time gets the same
// variance treatment as every other measurement.
const BenchTimeMetric = "ns_per_op"

// BenchStat is the variance-aware aggregate of one metric of one
// measurement series across a run's repeats.
type BenchStat struct {
	Exp    string  `json:"exp"`
	Name   string  `json:"name"`
	N      int     `json:"n,omitempty"`
	Metric string  `json:"metric"`
	Count  int     `json:"count"`
	Median float64 `json:"median"`
	P95    float64 `json:"p95"`
	MAD    float64 `json:"mad"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

// BenchRun is one benchpaper invocation: the resolved configuration,
// every raw per-repeat point, and the per-series aggregates.
type BenchRun struct {
	RunID string `json:"run_id"`
	// Kind classifies the run for baseline selection and rendering:
	// "full", "quick", "smoke" (the CI gate's matrix), "legacy" (a
	// migrated version-1 report), or "milestone" (a hand-recorded
	// historical data point for the perf-trajectory docs; never used
	// as a gate baseline or doc table source).
	Kind       string       `json:"kind"`
	Time       string       `json:"time,omitempty"`
	Quick      bool         `json:"quick"`
	Seeds      int          `json:"seeds"`
	Repeats    int          `json:"repeats"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Note       string       `json:"note,omitempty"`
	Exps       []string     `json:"experiments,omitempty"`
	Records    []BenchPoint `json:"records"`
	Aggregates []BenchStat  `json:"aggregates,omitempty"`
}

// BenchHistory is the whole BENCH_paper.json file: an append-only log
// of runs, oldest first.
type BenchHistory struct {
	Schema int        `json:"schema"`
	Runs   []BenchRun `json:"runs"`
}

// benchSeriesKey orders aggregates: first-appearance order of the
// (exp, name, n) series in the record stream, then metric name.
type benchSeriesKey struct {
	exp  string
	name string
	n    int
}

// AggregateBench computes the variance-aware aggregates of a run's raw
// points: for every (exp, name, n) series and every metric observed in
// it (including the ns_per_op pseudo-metric), the median, nearest-rank
// p95, median absolute deviation, and min/max across repeats. The
// result order is deterministic — series in first-appearance order,
// metrics sorted — so marshaling a run is byte-stable.
func AggregateBench(points []BenchPoint) []BenchStat {
	var order []benchSeriesKey
	series := make(map[benchSeriesKey]map[string][]float64)
	for _, p := range points {
		k := benchSeriesKey{p.Exp, p.Name, p.N}
		m, ok := series[k]
		if !ok {
			m = make(map[string][]float64)
			series[k] = m
			order = append(order, k)
		}
		if p.NSPerOp > 0 {
			m[BenchTimeMetric] = append(m[BenchTimeMetric], float64(p.NSPerOp))
		}
		for name, v := range p.Metrics {
			m[name] = append(m[name], v)
		}
	}
	var out []BenchStat
	for _, k := range order {
		m := series[k]
		names := make([]string, 0, len(m))
		for name := range m {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			vals := m[name]
			st := BenchStat{Exp: k.exp, Name: k.name, N: k.n, Metric: name, Count: len(vals)}
			st.Median, st.P95, st.MAD, st.Min, st.Max = benchStats(vals)
			out = append(out, st)
		}
	}
	return out
}

// benchStats computes the aggregate statistics of one value set.
// Quantiles use the nearest-rank method on the sorted values, so every
// reported number is an actually-measured value, not an interpolation.
func benchStats(vals []float64) (median, p95, mad, min, max float64) {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	median = quantileNearest(s, 0.5)
	p95 = quantileNearest(s, 0.95)
	min, max = s[0], s[len(s)-1]
	dev := make([]float64, len(s))
	for i, v := range s {
		d := v - median
		if d < 0 {
			d = -d
		}
		dev[i] = d
	}
	sort.Float64s(dev)
	mad = quantileNearest(dev, 0.5)
	return median, p95, mad, min, max
}

// quantileNearest returns the nearest-rank q-quantile of sorted s.
func quantileNearest(s []float64, q float64) float64 {
	if len(s) == 0 {
		return 0
	}
	rank := int(q*float64(len(s)) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > len(s) {
		rank = len(s)
	}
	return s[rank-1]
}

// Stat returns the aggregate of one metric of one series, computing it
// from the raw records when the run carries no precomputed aggregates
// (milestone runs are hand-recorded without them).
func (r *BenchRun) Stat(exp, name string, n int, metric string) (BenchStat, bool) {
	aggs := r.Aggregates
	if len(aggs) == 0 {
		aggs = AggregateBench(r.Records)
	}
	for _, a := range aggs {
		if a.Exp == exp && a.Name == name && a.N == n && a.Metric == metric {
			return a, true
		}
	}
	return BenchStat{}, false
}

// HasExp reports whether the run measured experiment exp.
func (r *BenchRun) HasExp(exp string) bool {
	for _, p := range r.Records {
		if p.Exp == exp {
			return true
		}
	}
	return false
}

// legacyBenchReport is the version-1 BENCH_paper.json shape: one flat
// single-shot report, overwritten per run.
type legacyBenchReport struct {
	Quick      bool `json:"quick"`
	Seeds      int  `json:"seeds"`
	GOMAXPROCS int  `json:"gomaxprocs"`
	Records    []struct {
		Exp     string             `json:"exp"`
		Name    string             `json:"name"`
		N       int                `json:"n,omitempty"`
		NSPerOp int64              `json:"ns_per_op,omitempty"`
		Metrics map[string]float64 `json:"metrics,omitempty"`
	} `json:"records"`
}

// LoadBenchHistory reads a BENCH_paper.json history. A missing file is
// an empty history. A version-1 flat report is migrated in memory into
// a single-run history (run id "legacy", repeat 0 for every record),
// so appending the next run upgrades the file in place.
func LoadBenchHistory(path string) (*BenchHistory, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &BenchHistory{Schema: BenchSchemaVersion}, nil
	}
	if err != nil {
		return nil, err
	}
	return ParseBenchHistory(data)
}

// ParseBenchHistory decodes a history document, migrating the
// version-1 flat-report shape when encountered.
func ParseBenchHistory(data []byte) (*BenchHistory, error) {
	var probe struct {
		Schema int             `json:"schema"`
		Runs   json.RawMessage `json:"runs"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("bench history: %w", err)
	}
	if probe.Runs == nil && probe.Schema == 0 {
		var legacy legacyBenchReport
		if err := json.Unmarshal(data, &legacy); err != nil {
			return nil, fmt.Errorf("bench history (legacy): %w", err)
		}
		run := BenchRun{
			RunID:      "legacy",
			Kind:       "legacy",
			Quick:      legacy.Quick,
			Seeds:      legacy.Seeds,
			Repeats:    1,
			GOMAXPROCS: legacy.GOMAXPROCS,
		}
		for _, rec := range legacy.Records {
			run.Records = append(run.Records, BenchPoint{
				Exp: rec.Exp, Name: rec.Name, N: rec.N,
				NSPerOp: rec.NSPerOp, Metrics: rec.Metrics,
			})
		}
		run.Aggregates = AggregateBench(run.Records)
		return &BenchHistory{Schema: BenchSchemaVersion, Runs: []BenchRun{run}}, nil
	}
	var h BenchHistory
	if err := json.Unmarshal(data, &h); err != nil {
		return nil, fmt.Errorf("bench history: %w", err)
	}
	if h.Schema != BenchSchemaVersion {
		return nil, fmt.Errorf("bench history: schema %d, want %d", h.Schema, BenchSchemaVersion)
	}
	return &h, nil
}

// SaveBenchHistory writes the history with stable formatting (the file
// is committed, so regenerating with unchanged data must be a no-op).
func SaveBenchHistory(path string, h *BenchHistory) error {
	data, err := json.MarshalIndent(h, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// AppendBenchRun loads the history at path (migrating a legacy file),
// appends the run, and writes the upgraded history back.
func AppendBenchRun(path string, run BenchRun) error {
	h, err := LoadBenchHistory(path)
	if err != nil {
		return err
	}
	h.Schema = BenchSchemaVersion
	h.Runs = append(h.Runs, run)
	return SaveBenchHistory(path, h)
}

// Newest returns the most recent run satisfying keep (nil = any run
// that is not a milestone), or nil.
func (h *BenchHistory) Newest(keep func(*BenchRun) bool) *BenchRun {
	for i := len(h.Runs) - 1; i >= 0; i-- {
		r := &h.Runs[i]
		if keep == nil {
			if r.Kind != "milestone" {
				return r
			}
			continue
		}
		if keep(r) {
			return r
		}
	}
	return nil
}
