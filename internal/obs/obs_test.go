package obs

import (
	"encoding/json"
	"reflect"
	"sync"
	"testing"
)

// TestNilSafety pins the package's core contract: every collection
// call on a nil receiver is a no-op, never a panic — that is what lets
// the pipeline call unconditionally on the hot path.
func TestNilSafety(t *testing.T) {
	var c *Collector
	c.AddArena(1, 2, 3)
	if c.Snapshot(0) != nil {
		t.Error("nil collector snapshot should be nil")
	}
	if c.DelayMetrics() != nil || c.DeadMetrics() != nil || c.FaintMetrics() != nil || c.Tracer() != nil {
		t.Error("nil collector must hand out nil sinks")
	}

	var m *SolverMetrics
	m.RecordSolve(SolveFull, SolveCost{Visits: 1, Pushes: 2, Seeded: 3, Seedable: 4, VecOps: 5})
	m.RecordCacheHit()
	m.RecordSlotSolve(1, 2, true)
	if got := m.Snapshot(); got != (SolverSnapshot{}) {
		t.Errorf("nil metrics snapshot = %+v, want zero", got)
	}

	var tr *Trace
	tr.BeginPhase(1, "eliminate", "dead")
	tr.Record(KindEliminate, "b1", "x", "x := a+b")
	tr.RecordDetail(KindSplitEdge, "S", "", "", "1->2")
	if tr.Events() != nil || tr.Len() != 0 {
		t.Error("nil trace must stay empty")
	}
}

func TestSolverMetricsAccounting(t *testing.T) {
	var m SolverMetrics
	// One full solve over 10 nodes, then an incremental one seeding 2
	// of 10, then a cache hit.
	m.RecordSolve(SolveFull, SolveCost{Visits: 10, Pushes: 12, Passes: 2, MaxWorklistDepth: 10, Seeded: 10, Seedable: 10, VecOps: 30})
	m.RecordSolve(SolveIncremental, SolveCost{Visits: 3, Pushes: 3, Passes: 1, MaxWorklistDepth: 3, Seeded: 2, Seedable: 10, VecOps: 9, Sparse: true})
	m.RecordCacheHit()

	s := m.Snapshot()
	if s.Solves != 3 || s.FullSolves != 1 || s.IncrementalSolves != 1 || s.CacheHits != 1 {
		t.Errorf("solve split wrong: %+v", s)
	}
	if s.NodeVisits != 13 || s.WorklistPushes != 15 || s.VectorOps != 39 {
		t.Errorf("work counters wrong: %+v", s)
	}
	if s.SparseSolves != 1 || s.DenseSolves != 1 {
		t.Errorf("sparse/dense split wrong: %+v", s)
	}
	if s.Passes != 3 || s.MaxWorklistDepth != 10 {
		t.Errorf("pass/depth counters wrong: %+v", s)
	}
	// 12 of 20 seedable nodes seeded -> reuse rate 0.4.
	if s.SeededNodes != 12 || s.SeedableNodes != 20 {
		t.Errorf("seed counters wrong: %+v", s)
	}
	if got, want := s.ReuseRate, 0.4; got != want {
		t.Errorf("reuse rate = %v, want %v", got, want)
	}
}

func TestSolverMetricsCancelled(t *testing.T) {
	var m SolverMetrics
	m.RecordSolve(SolveFull, SolveCost{Visits: 5, Pushes: 5, Seeded: 5, Seedable: 5, Cancelled: true})
	m.RecordSlotSolve(100, 40, true)
	s := m.Snapshot()
	if s.CancelledSolves != 2 {
		t.Errorf("cancelled = %d, want 2", s.CancelledSolves)
	}
	if s.SlotUpdates != 100 {
		t.Errorf("slot updates = %d, want 100", s.SlotUpdates)
	}
}

// TestTraceOrderingAndContext checks that BeginPhase context stamps
// subsequent events and Seq numbers are dense and ordered.
func TestTraceOrderingAndContext(t *testing.T) {
	tr := &Trace{}
	tr.BeginPhase(0, "setup", "")
	tr.RecordDetail(KindSplitEdge, "S2,4", "", "", "2->4")
	tr.BeginPhase(1, "sink", "delay")
	tr.Record(KindSinkRemove, "2", "y", "y := a+b")
	tr.Record(KindInsertEntry, "4", "y", "y := a+b")
	tr.BeginPhase(2, "eliminate", "dead")
	tr.Record(KindEliminate, "4", "y", "y := a+b")

	evs := tr.Events()
	if len(evs) != 4 || tr.Len() != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != i {
			t.Errorf("event %d has seq %d", i, ev.Seq)
		}
	}
	want := []struct {
		round             int
		phase, kind, anal string
	}{
		{0, "setup", KindSplitEdge, ""},
		{1, "sink", KindSinkRemove, "delay"},
		{1, "sink", KindInsertEntry, "delay"},
		{2, "eliminate", KindEliminate, "dead"},
	}
	for i, w := range want {
		ev := evs[i]
		if ev.Round != w.round || ev.Phase != w.phase || ev.Kind != w.kind || ev.Analysis != w.anal {
			t.Errorf("event %d = %+v, want %+v", i, ev, w)
		}
	}

	// Events must return an isolated copy.
	evs[0].Block = "mutated"
	if tr.Events()[0].Block == "mutated" {
		t.Error("Events returned aliased storage")
	}
}

// TestTraceConcurrent exercises concurrent appends (run with -race).
func TestTraceConcurrent(t *testing.T) {
	tr := &Trace{}
	var wg sync.WaitGroup
	const writers, perWriter = 8, 100
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				tr.Record(KindEliminate, "b", "x", "x := 1")
			}
		}()
	}
	wg.Wait()
	if got := tr.Len(); got != writers*perWriter {
		t.Errorf("lost events: %d of %d", got, writers*perWriter)
	}
	seen := make(map[int]bool)
	for _, ev := range tr.Events() {
		if seen[ev.Seq] {
			t.Fatalf("duplicate seq %d", ev.Seq)
		}
		seen[ev.Seq] = true
	}
}

// TestCollectorConcurrent exercises the atomic counters under
// contention (run with -race).
func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector(true)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c.DelayMetrics().RecordSolve(SolveIncremental, SolveCost{Visits: 1, Pushes: 1, Seeded: 1, Seedable: 2, VecOps: 1})
				c.DeadMetrics().RecordCacheHit()
				c.FaintMetrics().RecordSlotSolve(3, 1, false)
				c.AddArena(0, 8, 4)
				c.Tracer().Record(KindSinkRemove, "b", "x", "x := 1")
			}
		}()
	}
	wg.Wait()
	tel := c.Snapshot(77)
	if tel.Delay.Solves != 400 || tel.Dead.CacheHits != 400 || tel.Faint.SlotUpdates != 1200 {
		t.Errorf("lost counter updates: %+v", tel)
	}
	if tel.Arena.UsedWords != 1600 || tel.BitvecOps != 77 {
		t.Errorf("arena/bitvec wrong: %+v", tel)
	}
	if len(tel.Events) != 400 {
		t.Errorf("lost trace events: %d", len(tel.Events))
	}
}

// TestTelemetryJSONRoundTrip pins that the snapshot serializes and
// round-trips losslessly — the contract behind -metrics-json.
func TestTelemetryJSONRoundTrip(t *testing.T) {
	c := NewCollector(true)
	c.DelayMetrics().RecordSolve(SolveFull, SolveCost{Visits: 10, Pushes: 12, Passes: 1, MaxWorklistDepth: 10, Seeded: 10, Seedable: 10, VecOps: 33})
	c.DelayMetrics().RecordSolve(SolveIncremental, SolveCost{Visits: 2, Pushes: 2, Passes: 1, MaxWorklistDepth: 2, Seeded: 1, Seedable: 10, VecOps: 6})
	c.DeadMetrics().RecordCacheHit()
	c.FaintMetrics().RecordSlotSolve(50, 20, false)
	c.AddArena(2, 16384, 900)
	c.Tracer().BeginPhase(1, "eliminate", "dead")
	c.Tracer().Record(KindEliminate, "3", "x", "x := a+b")
	tel := c.Snapshot(123)

	data, err := json.Marshal(tel)
	if err != nil {
		t.Fatal(err)
	}
	var back Telemetry
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*tel, back) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back, *tel)
	}
}
