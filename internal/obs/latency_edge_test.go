package obs

import (
	"sync"
	"testing"
	"time"
)

// Latency-ring percentile edges shared by ServerStats and ClientStats:
// the empty ring, the single sample, and the exact wraparound where
// the write index returns to zero.

func TestLatencyRingEmpty(t *testing.T) {
	var srv ServerStats
	snap := srv.Snapshot()
	if snap.P50NS != 0 || snap.P95NS != 0 || snap.MaxNS != 0 || snap.Samples != 0 {
		t.Errorf("empty server ring: %+v", snap)
	}
	var cli ClientStats
	if cli.P95() != 0 {
		t.Errorf("empty client ring p95 = %v", cli.P95())
	}
	csnap := cli.Snapshot()
	if csnap.P50NS != 0 || csnap.P95NS != 0 || csnap.Samples != 0 {
		t.Errorf("empty client ring: %+v", csnap)
	}
}

func TestLatencyRingOneSample(t *testing.T) {
	var srv ServerStats
	srv.RecordLatency(7 * time.Millisecond)
	snap := srv.Snapshot()
	// With n=1 every nearest-rank percentile is that sample.
	if time.Duration(snap.P50NS) != 7*time.Millisecond ||
		time.Duration(snap.P95NS) != 7*time.Millisecond ||
		time.Duration(snap.MaxNS) != 7*time.Millisecond || snap.Samples != 1 {
		t.Errorf("one-sample server ring: %+v", snap)
	}
	var cli ClientStats
	cli.RecordLatency(7 * time.Millisecond)
	if cli.P95() != 7*time.Millisecond {
		t.Errorf("one-sample client p95 = %v", cli.P95())
	}
}

func TestLatencyRingExactWraparound(t *testing.T) {
	var s ServerStats
	// Fill the ring exactly: the next sample must land at index 0,
	// displacing the oldest — an off-by-one here would either drop the
	// new sample or grow the ring past its window.
	for i := 0; i < latencyWindow; i++ {
		s.RecordLatency(time.Microsecond)
	}
	s.RecordLatency(time.Second) // the wraparound write
	snap := s.Snapshot()
	if snap.Samples != latencyWindow+1 {
		t.Errorf("lifetime samples = %d, want %d", snap.Samples, latencyWindow+1)
	}
	if time.Duration(snap.MaxNS) != time.Second {
		t.Errorf("max after wraparound = %v, want 1s (new sample lost)", time.Duration(snap.MaxNS))
	}
	// The window still holds exactly latencyWindow samples: 1023 fast
	// ones and the 1s outlier, so p50 is still the fast value.
	if time.Duration(snap.P50NS) != time.Microsecond {
		t.Errorf("p50 after wraparound = %v", time.Duration(snap.P50NS))
	}
}

// TestServerStatsSnapshotRace snapshots concurrently WITH the writers
// (the existing concurrency test only snapshots after they finish), so
// -race proves readers never observe the ring mid-update.
func TestServerStatsSnapshotRace(t *testing.T) {
	var s ServerStats
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s.AddRequest()
				s.AddOptimize()
				s.RecordLatency(time.Duration(i))
			}
		}()
	}
	for i := 0; i < 200; i++ {
		snap := s.Snapshot()
		if snap.Requests < 0 || snap.P95NS < snap.P50NS {
			t.Fatalf("inconsistent snapshot: %+v", snap)
		}
	}
	close(stop)
	wg.Wait()
}

func TestClientStatsSnapshotRace(t *testing.T) {
	var s ClientStats
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := []string{"a", "b"}[g%2]
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s.AddAttempt(base)
				s.AddFailure(base)
				s.AddHedge()
				s.AddAffinityHit()
				s.RecordLatency(time.Duration(i))
			}
		}(g)
	}
	for i := 0; i < 200; i++ {
		snap := s.Snapshot()
		for base, rc := range snap.Replicas {
			if rc.Attempts < 0 {
				t.Fatalf("replica %s: %+v", base, rc)
			}
		}
		s.P95()
	}
	close(stop)
	wg.Wait()
}
