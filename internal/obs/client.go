package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ClientStats accumulates the request-level counters of the
// cluster-aware client (pdce.Pool): where requests were routed, how
// often the router had to give up on a replica, and what hedging won.
// Like ServerStats it is nil-safe — every method does nothing on a nil
// receiver — and safe for concurrent use.
//
// The affinity counters classify completed requests by whether the
// replica that answered was the key's home replica (the first ring
// member for its affinity hash). On a healthy ring the hit rate is
// 1.0; it degrades exactly as far as ejections, cooldowns, and hedges
// force traffic off home nodes, which makes it the single number to
// watch for cache-locality health.
type ClientStats struct {
	mu       sync.Mutex
	replicas map[string]*ReplicaCounters

	failovers     atomic.Int64
	hedges        atomic.Int64
	hedgesWon     atomic.Int64
	affinityHits  atomic.Int64
	affinityMiss  atomic.Int64
	parseFallback atomic.Int64

	latMu   sync.Mutex
	lat     []int64 // ring buffer of successful request latencies, ns
	next    int
	samples int64
}

// ReplicaCounters is one replica's view of the pool's traffic.
type ReplicaCounters struct {
	// Attempts counts requests sent to the replica (including hedges);
	// Failures the subset that came back with a retryable failure.
	Attempts int64 `json:"attempts"`
	Failures int64 `json:"failures"`
	// Ejections counts health transitions out of the ring (failed
	// probe, draining report, transport failure), Readmissions the
	// probe-driven returns.
	Ejections    int64 `json:"ejections"`
	Readmissions int64 `json:"readmissions"`
}

func (s *ClientStats) replica(base string) *ReplicaCounters {
	if s.replicas == nil {
		s.replicas = make(map[string]*ReplicaCounters)
	}
	rc, ok := s.replicas[base]
	if !ok {
		rc = &ReplicaCounters{}
		s.replicas[base] = rc
	}
	return rc
}

// AddAttempt counts one request sent to base.
func (s *ClientStats) AddAttempt(base string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.replica(base).Attempts++
	s.mu.Unlock()
}

// AddFailure counts one failed attempt against base.
func (s *ClientStats) AddFailure(base string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.replica(base).Failures++
	s.mu.Unlock()
}

// AddEjection counts base leaving the healthy set.
func (s *ClientStats) AddEjection(base string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.replica(base).Ejections++
	s.mu.Unlock()
}

// AddReadmission counts base returning to the healthy set.
func (s *ClientStats) AddReadmission(base string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.replica(base).Readmissions++
	s.mu.Unlock()
}

// AddFailover counts one retry that moved to a different ring member.
func (s *ClientStats) AddFailover() {
	if s != nil {
		s.failovers.Add(1)
	}
}

// AddHedge counts one launched hedged request; AddHedgeWin the subset
// where the hedge answered before the primary.
func (s *ClientStats) AddHedge() {
	if s != nil {
		s.hedges.Add(1)
	}
}

func (s *ClientStats) AddHedgeWin() {
	if s != nil {
		s.hedgesWon.Add(1)
	}
}

// AddAffinityHit counts a request answered by its key's home replica;
// AddAffinityMiss one answered anywhere else.
func (s *ClientStats) AddAffinityHit() {
	if s != nil {
		s.affinityHits.Add(1)
	}
}

func (s *ClientStats) AddAffinityMiss() {
	if s != nil {
		s.affinityMiss.Add(1)
	}
}

// AddParseFallback counts an affinity key computed from the raw source
// bytes because the client-side parse failed (the server will reject
// the request, but it still has to be routed somewhere).
func (s *ClientStats) AddParseFallback() {
	if s != nil {
		s.parseFallback.Add(1)
	}
}

// RecordLatency feeds one successful request's end-to-end duration
// (including retries and hedging) into the percentile reservoir.
func (s *ClientStats) RecordLatency(d time.Duration) {
	if s == nil {
		return
	}
	s.latMu.Lock()
	if s.lat == nil {
		s.lat = make([]int64, 0, latencyWindow)
	}
	if len(s.lat) < latencyWindow {
		s.lat = append(s.lat, int64(d))
	} else {
		s.lat[s.next] = int64(d)
	}
	s.next = (s.next + 1) % latencyWindow
	s.samples++
	s.latMu.Unlock()
}

// P95 returns the 95th-percentile successful-request latency over the
// current window, or 0 when no samples exist. Pool derives its default
// hedge delay from it: hedging below the p95 would duplicate most
// requests, hedging at it only the slow tail.
func (s *ClientStats) P95() time.Duration {
	if s == nil {
		return 0
	}
	s.latMu.Lock()
	lat := make([]int64, len(s.lat))
	copy(lat, s.lat)
	s.latMu.Unlock()
	if len(lat) == 0 {
		return 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return time.Duration(lat[nearestRank(len(lat), 95)])
}

// ClientSnapshot is the frozen, JSON-taggable view of ClientStats.
type ClientSnapshot struct {
	// Replicas maps each replica base URL to its counters.
	Replicas map[string]ReplicaCounters `json:"replicas,omitempty"`
	// Failovers counts retries that moved to a different ring member.
	Failovers int64 `json:"failovers"`
	// Hedges/HedgesWon count launched hedged requests and those that
	// answered before their primary.
	Hedges    int64 `json:"hedges"`
	HedgesWon int64 `json:"hedges_won"`
	// Affinity hit/miss counts and their ratio over completed requests.
	AffinityHits    int64   `json:"affinity_hits"`
	AffinityMisses  int64   `json:"affinity_misses"`
	AffinityHitRate float64 `json:"affinity_hit_rate"`
	// ParseFallbacks counts affinity keys derived from raw bytes
	// because the client-side parse failed.
	ParseFallbacks int64 `json:"parse_fallbacks"`

	// Successful-request latency over the most recent window
	// (nearest-rank percentiles); Samples is the lifetime count.
	P50NS   int64 `json:"p50_ns"`
	P95NS   int64 `json:"p95_ns"`
	MaxNS   int64 `json:"max_ns"`
	Samples int64 `json:"latency_samples"`
}

// Snapshot freezes the counters. Nil-safe: a nil receiver yields a
// zero snapshot.
func (s *ClientStats) Snapshot() ClientSnapshot {
	if s == nil {
		return ClientSnapshot{}
	}
	snap := ClientSnapshot{
		Failovers:      s.failovers.Load(),
		Hedges:         s.hedges.Load(),
		HedgesWon:      s.hedgesWon.Load(),
		AffinityHits:   s.affinityHits.Load(),
		AffinityMisses: s.affinityMiss.Load(),
		ParseFallbacks: s.parseFallback.Load(),
	}
	if total := snap.AffinityHits + snap.AffinityMisses; total > 0 {
		snap.AffinityHitRate = float64(snap.AffinityHits) / float64(total)
	}
	s.mu.Lock()
	if len(s.replicas) > 0 {
		snap.Replicas = make(map[string]ReplicaCounters, len(s.replicas))
		for base, rc := range s.replicas {
			snap.Replicas[base] = *rc
		}
	}
	s.mu.Unlock()

	s.latMu.Lock()
	lat := make([]int64, len(s.lat))
	copy(lat, s.lat)
	snap.Samples = s.samples
	s.latMu.Unlock()
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		snap.P50NS = lat[nearestRank(len(lat), 50)]
		snap.P95NS = lat[nearestRank(len(lat), 95)]
		snap.MaxNS = lat[len(lat)-1]
	}
	return snap
}
