package store

import (
	"encoding/json"
	"time"

	"pdce/internal/obs"
)

// Cluster-wide singleflight.
//
// Within one replica, concurrent identical requests are deduplicated
// by the server's in-process singleflight. Across a fleet the same
// thundering herd — N replicas all cold on the same key — needs a
// shared arbiter, and the write-once Backend already is one: a Put
// either creates the key or doesn't, atomically. A lease is a small
// record Put under a derived key; whoever's record lands owns the
// solve, everyone else polls for the owner's published result instead
// of re-solving.
//
// Leases carry a TTL and are never renewed, which bounds every
// failure mode: a crashed owner's lease expires and the next claimant
// deletes it and takes over, so a dead replica can never wedge the
// fleet. The delete-then-reclaim window means two replicas can
// occasionally both believe they own a key — that costs one duplicate
// solve of a deterministic function, not a correctness bug, which is
// why this CAS does not need to be perfect, only cheap.

// Lease arbitrates solve ownership for content addresses over a
// shared Backend.
type Lease struct {
	b     Backend
	owner string
	ttl   time.Duration
	stats *obs.StoreStats

	// now is the clock, swappable in tests.
	now func() time.Time
}

// NewLease builds a lease arbiter. owner must be unique per replica
// (pdced defaults it to a random id per boot — a restarted replica
// must not inherit its dead predecessor's leases). stats may be nil.
func NewLease(b Backend, owner string, ttl time.Duration, stats *obs.StoreStats) *Lease {
	return &Lease{b: b, owner: owner, ttl: ttl, stats: stats, now: time.Now}
}

// TTL returns the configured lease lifetime.
func (l *Lease) TTL() time.Duration { return l.ttl }

// LeaseKey derives the lease record's store key for a blob key. It is
// exported so tests and operators can inspect lease records directly.
func LeaseKey(key string) string { return "lease-" + key }

// leaseRecord is the JSON payload of a lease blob.
type leaseRecord struct {
	Owner string `json:"owner"`
	// ExpiresMS is the expiry wall clock in Unix milliseconds.
	// Wall-clock expiry across machines assumes loosely synchronized
	// clocks; skew on the order of the TTL only shifts how soon a
	// crashed owner's lease is reclaimed.
	ExpiresMS int64 `json:"expires_ms"`
}

// Acquire tries to claim the solve lease for key. won true means the
// caller owns the solve and should Release after publishing (or
// abandoning) its result. won false with nil error means another
// replica holds a live lease — poll the store for its result, or call
// Acquire again to take over once it expires. An error means the
// backend is unreachable; callers should solve locally.
func (l *Lease) Acquire(key string) (won bool, err error) {
	lk := LeaseKey(key)
	rec, _ := json.Marshal(leaseRecord{
		Owner:     l.owner,
		ExpiresMS: l.now().Add(l.ttl).UnixMilli(),
	})
	// A few rounds of put / read-back / expire absorb every
	// interleaving; the bound only guards against a pathological
	// backend, not a real schedule.
	for attempt := 0; attempt < 4; attempt++ {
		if _, err := l.b.Put(lk, rec); err != nil {
			return false, err
		}
		cur, err := l.b.Get(lk)
		if err == ErrNotFound {
			continue // holder released between our put and read; retry
		}
		if err != nil {
			return false, err
		}
		var held leaseRecord
		if json.Unmarshal(cur, &held) != nil || held.Owner == "" {
			// Garbage record (torn write survived a checksum-less
			// backend, or a buggy writer): break it and retry.
			l.b.Delete(lk)
			continue
		}
		if held.Owner == l.owner {
			return true, nil
		}
		if held.ExpiresMS <= l.now().UnixMilli() {
			// The owner died (or stalled past its TTL). Reclaim: delete
			// the corpse and race for the empty slot on the next round.
			l.stats.AddLeaseExpiry()
			l.b.Delete(lk)
			continue
		}
		return false, nil
	}
	return false, nil
}

// Release frees the lease for key if this replica holds it. Releasing
// a lease that was lost, expired, or never acquired is a no-op —
// Release is safe to call on every exit path.
func (l *Lease) Release(key string) {
	lk := LeaseKey(key)
	cur, err := l.b.Get(lk)
	if err != nil {
		return
	}
	var held leaseRecord
	if json.Unmarshal(cur, &held) != nil || held.Owner != l.owner {
		return
	}
	l.b.Delete(lk)
}
