package store_test

import (
	"encoding/json"
	"sync"
	"testing"
	"time"

	"pdce/internal/obs"
	"pdce/internal/store"
)

// TestLeaseSingleWinner is the arbitration property: N replicas
// racing Acquire on one key elect exactly one owner.
func TestLeaseSingleWinner(t *testing.T) {
	b := store.NewMemStore()
	const replicas = 8
	var wg sync.WaitGroup
	wins := make(chan string, replicas)
	for i := 0; i < replicas; i++ {
		l := store.NewLease(b, string(rune('a'+i))+"-replica", time.Minute, nil)
		wg.Add(1)
		go func() {
			defer wg.Done()
			won, err := l.Acquire("contended-key")
			if err != nil {
				t.Error(err)
				return
			}
			if won {
				wins <- "won"
			}
		}()
	}
	wg.Wait()
	close(wins)
	n := 0
	for range wins {
		n++
	}
	if n != 1 {
		t.Fatalf("%d replicas won the lease, want exactly 1", n)
	}
}

// TestLeaseReacquireAndRelease pins idempotent re-acquire by the
// owner, exclusion of others, and handoff after Release.
func TestLeaseReacquireAndRelease(t *testing.T) {
	b := store.NewMemStore()
	a := store.NewLease(b, "replica-a", time.Minute, nil)
	c := store.NewLease(b, "replica-c", time.Minute, nil)

	if won, err := a.Acquire("k"); err != nil || !won {
		t.Fatalf("a.Acquire = %v, %v", won, err)
	}
	if won, err := a.Acquire("k"); err != nil || !won {
		t.Fatalf("owner re-Acquire = %v, %v, want won", won, err)
	}
	if won, err := c.Acquire("k"); err != nil || won {
		t.Fatalf("c.Acquire against live lease = %v, %v, want lost", won, err)
	}
	// Releasing someone else's lease is a no-op.
	c.Release("k")
	if won, _ := c.Acquire("k"); won {
		t.Fatal("foreign Release freed the lease")
	}
	a.Release("k")
	if won, err := c.Acquire("k"); err != nil || !won {
		t.Fatalf("Acquire after Release = %v, %v, want won", won, err)
	}
}

// TestLeaseExpiryReclaim is the crashed-owner property: a lease whose
// owner never releases is reclaimed after its TTL, and the reclaim is
// counted — a dead replica can never wedge the fleet.
func TestLeaseExpiryReclaim(t *testing.T) {
	b := store.NewMemStore()
	dead := store.NewLease(b, "dead-replica", 20*time.Millisecond, nil)
	if won, err := dead.Acquire("k"); err != nil || !won {
		t.Fatalf("dead.Acquire = %v, %v", won, err)
	}
	// dead-replica "crashes" here: no Release, no renewal.

	stats := &obs.StoreStats{}
	live := store.NewLease(b, "live-replica", 20*time.Millisecond, stats)
	if won, _ := live.Acquire("k"); won {
		t.Fatal("live replica stole an unexpired lease")
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		won, err := live.Acquire("k")
		if err != nil {
			t.Fatal(err)
		}
		if won {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("expired lease was never reclaimed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if stats.LeaseExpiries() == 0 {
		t.Fatal("reclaim was not counted as a lease expiry")
	}
}

// TestLeaseGarbageRecordBroken: an unparseable lease record (a torn
// write on a checksum-less backend) is broken and re-arbitrated, not
// honored forever.
func TestLeaseGarbageRecordBroken(t *testing.T) {
	b := store.NewMemStore()
	if _, err := b.Put(store.LeaseKey("k"), []byte("not json at all")); err != nil {
		t.Fatal(err)
	}
	l := store.NewLease(b, "replica-a", time.Minute, nil)
	if won, err := l.Acquire("k"); err != nil || !won {
		t.Fatalf("Acquire over garbage record = %v, %v, want won", won, err)
	}
	// The record now parses and names the new owner.
	rec, err := b.Get(store.LeaseKey("k"))
	if err != nil {
		t.Fatal(err)
	}
	var held struct {
		Owner string `json:"owner"`
	}
	if json.Unmarshal(rec, &held) != nil || held.Owner != "replica-a" {
		t.Fatalf("lease record after reclaim = %s", rec)
	}
}
