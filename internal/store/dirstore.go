package store

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync/atomic"
)

// DirStore is the shared-filesystem Backend: one directory (typically
// an NFS or other shared mount) holding checksummed blob files that
// any number of replicas — possibly on different machines, possibly
// running different pdced builds — read and write concurrently
// without coordination.
//
// Layout: blobs live under 256 fanout directories keyed by a hash of
// the blob key (root/ab/<key>.blob), so a warm fleet's store never
// accumulates a directory large enough to make lookups or sweeps
// slow. Each file is "sha256-hex\n" + body, the same self-verifying
// format as the server's spill cache: a corrupted file is detected on
// read, quarantined, and reported as a miss, never served.
//
// Writes are crash-safe and write-once: the blob is staged as a
// tmp-* file in the root, fsync'd, then hard-linked to its final
// name. Link fails if the name exists, which is exactly the
// write-once semantics Backend requires — the first writer wins and
// every later writer (writing identical bytes, by determinism) is a
// silent no-op. A crash between stage and link leaves only a tmp-*
// orphan, which SweepTemps removes at the next boot.
type DirStore struct {
	root string

	blobs atomic.Int64
	bytes atomic.Int64
	// swept is how many orphaned temp files boot cleanup removed.
	swept int64
}

// blobSuffix names blob files; headerLen is the checksum line's size.
const (
	blobSuffix = ".blob"
	headerLen  = sha256.Size*2 + 1 // hex digest + '\n'
)

// NewDirStore opens (creating if needed) a directory-backed store,
// sweeping orphaned temp files and sizing the existing contents.
func NewDirStore(root string) (*DirStore, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("store: dir root: %w", err)
	}
	d := &DirStore{root: root}
	d.swept = int64(SweepTemps(root))
	// Size what a previous fleet left behind. Errors here are
	// deliberately soft: a half-readable store still serves.
	filepath.WalkDir(root, func(path string, e fs.DirEntry, err error) error {
		if err != nil || e.IsDir() || filepath.Ext(e.Name()) != blobSuffix {
			return nil
		}
		if info, ierr := e.Info(); ierr == nil {
			d.blobs.Add(1)
			if sz := info.Size() - headerLen; sz > 0 {
				d.bytes.Add(sz)
			}
		}
		return nil
	})
	return d, nil
}

// Swept reports how many orphaned temp files NewDirStore removed.
func (d *DirStore) Swept() int64 { return d.swept }

// path maps a key to its blob file. The fanout shard is a hash of the
// key, not its prefix — keys carry a shared version prefix, so their
// leading bytes are the least uniform part.
func (d *DirStore) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(d.root, hex.EncodeToString(sum[:1]), key+blobSuffix)
}

// Put implements Backend: stage, fsync, link.
func (d *DirStore) Put(key string, body []byte) (bool, error) {
	if !ValidKey(key) {
		return false, errInvalidKey(key)
	}
	final := d.path(key)
	// Cheap fast path: racing writers carry identical bytes, so an
	// existing file ends the call. The link below still arbitrates the
	// true race.
	if _, err := os.Stat(final); err == nil {
		return false, nil
	}
	tmp, err := os.CreateTemp(d.root, tempPrefix+"*"+blobSuffix)
	if err != nil {
		return false, fmt.Errorf("store: stage blob: %w", err)
	}
	defer os.Remove(tmp.Name())
	sum := sha256.Sum256(body)
	if _, err = fmt.Fprintf(tmp, "%s\n", hex.EncodeToString(sum[:])); err == nil {
		_, err = tmp.Write(body)
	}
	if err == nil {
		err = tmp.Sync() // the blob must be durable before it is visible
	}
	if cerr := tmp.Close(); err != nil || cerr != nil {
		if err == nil {
			err = cerr
		}
		return false, fmt.Errorf("store: write blob: %w", err)
	}
	if err := os.MkdirAll(filepath.Dir(final), 0o755); err != nil {
		return false, fmt.Errorf("store: fanout dir: %w", err)
	}
	if err := os.Link(tmp.Name(), final); err != nil {
		if errors.Is(err, fs.ErrExist) {
			return false, nil // lost the race; the winner's bytes are ours too
		}
		return false, fmt.Errorf("store: publish blob: %w", err)
	}
	d.blobs.Add(1)
	d.bytes.Add(int64(len(body)))
	syncDir(filepath.Dir(final))
	return true, nil
}

// Get implements Backend, verifying the embedded checksum. A corrupt
// or malformed file is quarantined (removed) and reported as a miss:
// the caller re-solves and may re-publish a good copy.
func (d *DirStore) Get(key string) ([]byte, error) {
	if !ValidKey(key) {
		return nil, ErrNotFound
	}
	path := d.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, ErrNotFound
		}
		return nil, fmt.Errorf("store: read blob: %w", err)
	}
	if len(data) < headerLen || data[headerLen-1] != '\n' {
		d.quarantine(path, 0)
		return nil, ErrNotFound
	}
	body := data[headerLen:]
	sum := sha256.Sum256(body)
	if hex.EncodeToString(sum[:]) != string(data[:headerLen-1]) {
		d.quarantine(path, int64(len(body)))
		return nil, ErrNotFound
	}
	return body, nil
}

func (d *DirStore) quarantine(path string, bodyLen int64) {
	if os.Remove(path) == nil {
		d.blobs.Add(-1)
		d.bytes.Add(-bodyLen)
	}
}

// Has implements Backend.
func (d *DirStore) Has(key string) (bool, error) {
	if !ValidKey(key) {
		return false, nil
	}
	_, err := os.Stat(d.path(key))
	if err == nil {
		return true, nil
	}
	if errors.Is(err, fs.ErrNotExist) {
		return false, nil
	}
	return false, err
}

// Delete implements Backend.
func (d *DirStore) Delete(key string) error {
	if !ValidKey(key) {
		return nil
	}
	path := d.path(key)
	info, err := os.Stat(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		return err
	}
	if err := os.Remove(path); err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		return err
	}
	d.blobs.Add(-1)
	if sz := info.Size() - headerLen; sz > 0 {
		d.bytes.Add(-sz)
	}
	return nil
}

// Stats implements Backend from the maintained counters — no
// directory walk on the metrics path. Counters can drift under
// external deletion (an operator pruning the shared directory); a
// restart resizes from disk.
func (d *DirStore) Stats() (Stats, error) {
	return Stats{Blobs: d.blobs.Load(), Bytes: d.bytes.Load()}, nil
}

// syncDir fsyncs a directory so a just-linked name survives power
// loss. Best effort: some filesystems refuse directory fsync, and the
// blob itself is already durable.
func syncDir(dir string) {
	if f, err := os.Open(dir); err == nil {
		f.Sync()
		f.Close()
	}
}
