package store_test

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pdce/internal/store"
)

// backends enumerates every Backend implementation under one
// conformance suite, HTTPStore included (served by Handler over a
// DirStore, so the wire contract and the directory layout are tested
// together).
func backends(t *testing.T) map[string]store.Backend {
	t.Helper()
	dir, err := store.NewDirStore(filepath.Join(t.TempDir(), "dirstore"))
	if err != nil {
		t.Fatal(err)
	}
	httpDir, err := store.NewDirStore(filepath.Join(t.TempDir(), "blobd"))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(store.Handler(httpDir))
	t.Cleanup(ts.Close)
	return map[string]store.Backend{
		"mem":  store.NewMemStore(),
		"dir":  dir,
		"http": store.NewHTTPStore(ts.URL, ts.Client()),
	}
}

// TestBackendConformance pins the Backend contract — write-once puts,
// get/has/delete agreement, stats — across every implementation.
func TestBackendConformance(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			key := "pdce-cache-v1-" + strings.Repeat("ab", 32)
			body := []byte("first writer's bytes")

			if _, err := b.Get(key); !errors.Is(err, store.ErrNotFound) {
				t.Fatalf("Get on empty store: err = %v, want ErrNotFound", err)
			}
			if ok, err := b.Has(key); err != nil || ok {
				t.Fatalf("Has on empty store = %v, %v", ok, err)
			}

			created, err := b.Put(key, body)
			if err != nil || !created {
				t.Fatalf("first Put: created=%v err=%v", created, err)
			}
			// Write-once: the second writer loses and the first bytes stay.
			created, err = b.Put(key, []byte("second writer's bytes"))
			if err != nil || created {
				t.Fatalf("second Put: created=%v err=%v, want false nil", created, err)
			}
			got, err := b.Get(key)
			if err != nil || !bytes.Equal(got, body) {
				t.Fatalf("Get = %q, %v; want first writer's bytes", got, err)
			}
			if ok, err := b.Has(key); err != nil || !ok {
				t.Fatalf("Has after Put = %v, %v", ok, err)
			}

			st, err := b.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if st.Blobs != 1 || st.Bytes != int64(len(body)) {
				t.Fatalf("Stats = %+v, want 1 blob of %d bytes", st, len(body))
			}

			if err := b.Delete(key); err != nil {
				t.Fatal(err)
			}
			if err := b.Delete(key); err != nil {
				t.Fatalf("Delete of absent key: %v", err)
			}
			if _, err := b.Get(key); !errors.Is(err, store.ErrNotFound) {
				t.Fatalf("Get after Delete: err = %v, want ErrNotFound", err)
			}
			if st, _ := b.Stats(); st.Blobs != 0 || st.Bytes != 0 {
				t.Fatalf("Stats after Delete = %+v, want empty", st)
			}

			// Invalid keys are refused, never escaped into paths or URLs.
			for _, bad := range []string{"", ".", "..", "a/b", "a b", strings.Repeat("x", 300)} {
				if _, err := b.Put(bad, body); err == nil {
					t.Errorf("Put(%q) accepted an invalid key", bad)
				}
				if _, err := b.Get(bad); !errors.Is(err, store.ErrNotFound) {
					t.Errorf("Get(%q): err = %v, want ErrNotFound", bad, err)
				}
			}
		})
	}
}

// TestDirStoreSurvivesReopen is the shared-filesystem property: a
// second DirStore (a rescheduled replica, or a different machine on
// the same mount) sees the first one's blobs and sizes them.
func TestDirStoreSurvivesReopen(t *testing.T) {
	root := t.TempDir()
	d1, err := store.NewDirStore(root)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := d1.Put(fmt.Sprintf("pdce-cache-v1-key-%02d", i), []byte(strings.Repeat("x", 100+i))); err != nil {
			t.Fatal(err)
		}
	}
	d2, err := store.NewDirStore(root)
	if err != nil {
		t.Fatal(err)
	}
	st, err := d2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Blobs != 20 {
		t.Fatalf("reopened store sees %d blobs, want 20", st.Blobs)
	}
	body, err := d2.Get("pdce-cache-v1-key-07")
	if err != nil || len(body) != 107 {
		t.Fatalf("reopened Get = %d bytes, %v", len(body), err)
	}
}

// TestDirStoreQuarantinesCorruption flips bytes on disk and expects a
// miss plus removal, never a served corrupt blob.
func TestDirStoreQuarantinesCorruption(t *testing.T) {
	root := t.TempDir()
	d, err := store.NewDirStore(root)
	if err != nil {
		t.Fatal(err)
	}
	key := "pdce-cache-v1-corrupt-me"
	if _, err := d.Put(key, []byte("precious result bytes")); err != nil {
		t.Fatal(err)
	}
	// Find the blob file and flip a payload byte.
	var path string
	filepath.Walk(root, func(p string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && strings.HasSuffix(p, ".blob") {
			path = p
		}
		return nil
	})
	if path == "" {
		t.Fatal("blob file not found")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Get(key); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("corrupt blob: err = %v, want ErrNotFound", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt blob was not quarantined")
	}
}

// TestSweepTemps pins the crash-litter sweep both directly and
// through NewDirStore's boot path.
func TestSweepTemps(t *testing.T) {
	root := t.TempDir()
	for _, name := range []string{"tmp-123.blob", "tmp-zzz.entry", "keeper.blob"} {
		if err := os.WriteFile(filepath.Join(root, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	os.Mkdir(filepath.Join(root, "tmp-dir"), 0o755) // dirs are never swept
	if n := store.SweepTemps(root); n != 2 {
		t.Fatalf("SweepTemps removed %d files, want 2", n)
	}
	if _, err := os.Stat(filepath.Join(root, "keeper.blob")); err != nil {
		t.Fatal("sweep removed a non-temp file")
	}
	if _, err := os.Stat(filepath.Join(root, "tmp-dir")); err != nil {
		t.Fatal("sweep removed a directory")
	}

	// Boot path: a DirStore opening over crash litter removes it and
	// reports the count.
	orphan := filepath.Join(root, "tmp-orphan.blob")
	if err := os.WriteFile(orphan, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := store.NewDirStore(root)
	if err != nil {
		t.Fatal(err)
	}
	if d.Swept() != 1 {
		t.Fatalf("NewDirStore swept %d, want 1", d.Swept())
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("orphan temp survived boot")
	}
}

// TestHandlerWire pins the HTTP status codes the wire contract
// promises (201 create, 200 idempotent re-put, 404 miss, 204 delete,
// 400 bad key) — the codes HTTPStore and peer replicas key off.
func TestHandlerWire(t *testing.T) {
	ts := httptest.NewServer(store.Handler(store.NewMemStore()))
	defer ts.Close()
	key := "pdce-cache-v1-wire-test"
	put := func(k string) int {
		req, _ := http.NewRequest(http.MethodPut, ts.URL+"/cache/"+k, strings.NewReader("blob"))
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := put(key); code != http.StatusCreated {
		t.Fatalf("first PUT = %d, want 201", code)
	}
	if code := put(key); code != http.StatusOK {
		t.Fatalf("second PUT = %d, want 200", code)
	}
	// A key the alphabet refuses ('..' path navigation) must be
	// rejected, whether by the mux (redirect/404) or the handler (400).
	if code := put(".."); code < 300 {
		t.Fatalf("bad-key PUT = %d, want rejection", code)
	}
	resp, err := http.Get(ts.URL + "/cache/" + key)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET = %d, want 200", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/cache/absent-key-0000")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET absent = %d, want 404", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/cache/"+key, nil)
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE = %d, want 204", resp.StatusCode)
	}
}

// TestOpen pins the -store flag grammar.
func TestOpen(t *testing.T) {
	if b, err := store.Open("off"); b != nil || err != nil {
		t.Fatalf("off = %v, %v", b, err)
	}
	if b, err := store.Open(""); b != nil || err != nil {
		t.Fatalf("empty = %v, %v", b, err)
	}
	if b, err := store.Open("mem"); err != nil || b == nil {
		t.Fatalf("mem = %v, %v", b, err)
	}
	if b, err := store.Open("dir:" + t.TempDir()); err != nil || b == nil {
		t.Fatalf("dir = %v, %v", b, err)
	}
	if b, err := store.Open("http://localhost:1"); err != nil || b == nil {
		t.Fatalf("http = %v, %v", b, err)
	}
	for _, bad := range []string{"dir:", "ftp://x", "nonsense"} {
		if _, err := store.Open(bad); err == nil {
			t.Errorf("Open(%q) accepted an invalid spec", bad)
		}
	}
}
