package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// HTTPStore is the Backend client for the blob wire contract served
// by cmd/pdce-blobd (and, for GET/PUT, by pdced replicas running with
// peer caching on):
//
//	PUT    /cache/{key}  body = blob; 201 created, 200 already stored
//	GET    /cache/{key}  200 + body, or 404
//	HEAD   /cache/{key}  200 or 404
//	DELETE /cache/{key}  204 (absent keys included)
//	GET    /stats        {"blobs":N,"bytes":M} (optional; 404 = zeros)
//
// The contract is fleet-internal and unauthenticated by design — run
// it on a private network, like any shared cache tier.
type HTTPStore struct {
	base   string
	client *http.Client
}

// NewHTTPStore returns a client for the blob server at base (e.g.
// "http://blobd:8742"). client nil uses a dedicated client with a 5s
// timeout — bounded, because every call sits on the serving path's
// miss handling and must degrade, not hang.
func NewHTTPStore(base string, client *http.Client) *HTTPStore {
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	return &HTTPStore{base: strings.TrimRight(base, "/"), client: client}
}

func (h *HTTPStore) url(key string) string { return h.base + "/cache/" + key }

// Put implements Backend.
func (h *HTTPStore) Put(key string, body []byte) (bool, error) {
	if !ValidKey(key) {
		return false, errInvalidKey(key)
	}
	req, err := http.NewRequest(http.MethodPut, h.url(key), bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := h.client.Do(req)
	if err != nil {
		return false, fmt.Errorf("store: put %s: %w", key, err)
	}
	defer drain(resp)
	switch resp.StatusCode {
	case http.StatusCreated:
		return true, nil
	case http.StatusOK:
		return false, nil
	default:
		return false, fmt.Errorf("store: put %s: %s", key, resp.Status)
	}
}

// Get implements Backend.
func (h *HTTPStore) Get(key string) ([]byte, error) {
	if !ValidKey(key) {
		return nil, ErrNotFound
	}
	resp, err := h.client.Get(h.url(key))
	if err != nil {
		return nil, fmt.Errorf("store: get %s: %w", key, err)
	}
	defer drain(resp)
	switch resp.StatusCode {
	case http.StatusOK:
		return io.ReadAll(resp.Body)
	case http.StatusNotFound:
		return nil, ErrNotFound
	default:
		return nil, fmt.Errorf("store: get %s: %s", key, resp.Status)
	}
}

// Has implements Backend.
func (h *HTTPStore) Has(key string) (bool, error) {
	if !ValidKey(key) {
		return false, nil
	}
	resp, err := h.client.Head(h.url(key))
	if err != nil {
		return false, fmt.Errorf("store: head %s: %w", key, err)
	}
	defer drain(resp)
	switch resp.StatusCode {
	case http.StatusOK:
		return true, nil
	case http.StatusNotFound:
		return false, nil
	default:
		return false, fmt.Errorf("store: head %s: %s", key, resp.Status)
	}
}

// Delete implements Backend.
func (h *HTTPStore) Delete(key string) error {
	if !ValidKey(key) {
		return nil
	}
	req, err := http.NewRequest(http.MethodDelete, h.url(key), nil)
	if err != nil {
		return err
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return fmt.Errorf("store: delete %s: %w", key, err)
	}
	defer drain(resp)
	switch resp.StatusCode {
	case http.StatusNoContent, http.StatusOK, http.StatusNotFound:
		return nil
	default:
		return fmt.Errorf("store: delete %s: %s", key, resp.Status)
	}
}

// Stats implements Backend. A server without a /stats surface (a
// pdced peer serving only /cache) reports zeros, not an error.
func (h *HTTPStore) Stats() (Stats, error) {
	resp, err := h.client.Get(h.base + "/stats")
	if err != nil {
		return Stats{}, fmt.Errorf("store: stats: %w", err)
	}
	defer drain(resp)
	switch resp.StatusCode {
	case http.StatusOK:
		var s Stats
		if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
			return Stats{}, fmt.Errorf("store: stats: %w", err)
		}
		return s, nil
	case http.StatusNotFound, http.StatusMethodNotAllowed:
		return Stats{}, nil
	default:
		return Stats{}, fmt.Errorf("store: stats: %s", resp.Status)
	}
}

// drain consumes and closes a response body so the transport's
// connections are reused.
func drain(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}
