package store

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
)

// maxBlobBytes caps PUT bodies on the blob wire. Cached optimize
// responses are tens of kilobytes; the cap only exists so a confused
// or hostile client cannot stream gigabytes into the store.
const maxBlobBytes = 16 << 20

// Handler serves a Backend over the blob wire contract (see HTTPStore
// for the method table). cmd/pdce-blobd mounts it as its whole
// surface; tests mount it on httptest servers to exercise HTTPStore
// against every backend.
func Handler(b Backend) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /cache/{key}", func(w http.ResponseWriter, r *http.Request) {
		key := r.PathValue("key")
		if !ValidKey(key) {
			http.Error(w, "invalid key", http.StatusBadRequest)
			return
		}
		body, err := b.Get(key)
		switch {
		case errors.Is(err, ErrNotFound):
			http.NotFound(w, r)
		case err != nil:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		default:
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Write(body)
		}
	})
	mux.HandleFunc("PUT /cache/{key}", func(w http.ResponseWriter, r *http.Request) {
		key := r.PathValue("key")
		if !ValidKey(key) {
			http.Error(w, "invalid key", http.StatusBadRequest)
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBlobBytes))
		if err != nil {
			http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
			return
		}
		created, err := b.Put(key, body)
		switch {
		case err != nil:
			http.Error(w, err.Error(), http.StatusInsufficientStorage)
		case created:
			w.WriteHeader(http.StatusCreated)
		default:
			w.WriteHeader(http.StatusOK)
		}
	})
	mux.HandleFunc("DELETE /cache/{key}", func(w http.ResponseWriter, r *http.Request) {
		key := r.PathValue("key")
		if !ValidKey(key) {
			http.Error(w, "invalid key", http.StatusBadRequest)
			return
		}
		if err := b.Delete(key); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, _ *http.Request) {
		s, err := b.Stats()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(s)
	})
	return mux
}
