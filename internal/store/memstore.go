package store

import "sync"

// MemStore is the in-memory Backend: a mutex-guarded map. It backs
// tests and the chaos harness — a fleet of in-process replicas shares
// one MemStore the way a real fleet shares a blobd — and the "mem"
// form of the -store flag for single-process demos.
type MemStore struct {
	mu    sync.RWMutex
	blobs map[string][]byte
	bytes int64
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{blobs: make(map[string][]byte)}
}

// Put implements Backend. The body is copied, so the caller may reuse
// its slice.
func (m *MemStore) Put(key string, body []byte) (bool, error) {
	if !ValidKey(key) {
		return false, errInvalidKey(key)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.blobs[key]; ok {
		return false, nil
	}
	cp := make([]byte, len(body))
	copy(cp, body)
	m.blobs[key] = cp
	m.bytes += int64(len(cp))
	return true, nil
}

// Get implements Backend.
func (m *MemStore) Get(key string) ([]byte, error) {
	m.mu.RLock()
	b, ok := m.blobs[key]
	m.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	cp := make([]byte, len(b))
	copy(cp, b)
	return cp, nil
}

// Has implements Backend.
func (m *MemStore) Has(key string) (bool, error) {
	m.mu.RLock()
	_, ok := m.blobs[key]
	m.mu.RUnlock()
	return ok, nil
}

// Delete implements Backend.
func (m *MemStore) Delete(key string) error {
	m.mu.Lock()
	if b, ok := m.blobs[key]; ok {
		m.bytes -= int64(len(b))
		delete(m.blobs, key)
	}
	m.mu.Unlock()
	return nil
}

// Stats implements Backend.
func (m *MemStore) Stats() (Stats, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return Stats{Blobs: int64(len(m.blobs)), Bytes: m.bytes}, nil
}

type keyError string

func (e keyError) Error() string { return "store: invalid key " + string(e) }

func errInvalidKey(key string) error { return keyError(key) }
