// Package store is the shared persistence tier behind pdced's
// content-addressed result cache: a pluggable L2 blob store that a
// whole fleet of replicas reads and writes, plus the cluster-wide
// singleflight lease built on top of it (lease.go).
//
// The paper's determinism result (Theorem 3.7) is what makes a shared
// store safe at all: a cache entry is a pure function of its key, so
// blobs are immutable facts — two replicas racing to write the same
// key write the same bytes, and write-once semantics make the race
// benign. The Backend interface is deliberately tiny (Put/Get/Has/
// Delete/Stats over opaque blobs) so an implementation is a few
// hundred lines: MemStore for tests and the chaos harness, DirStore
// for a shared filesystem, HTTPStore for the pdce-blobd daemon or a
// sibling pdced's /cache surface.
//
// Every backend is an optimization, never a correctness dependency:
// the serving layer treats any backend error as a miss and solves
// locally, so a dead or slow store degrades the fleet to per-replica
// caching instead of failing requests.
package store

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
)

// ErrNotFound is returned by Get for a key with no stored blob.
var ErrNotFound = errors.New("store: blob not found")

// Stats sizes a backend's current contents. The json tags are the
// /stats wire shape served by Handler and decoded by HTTPStore.
type Stats struct {
	// Blobs is the stored blob count, Bytes their payload total.
	Blobs int64 `json:"blobs"`
	Bytes int64 `json:"bytes"`
}

// Backend is one shared blob store. Blobs are immutable and keyed by
// content address (Program.CacheKey, version-prefixed via
// VersionedKey), so implementations provide write-once semantics:
// a Put on an existing key keeps the existing blob and reports
// created false. That single guarantee is what the lease layer's
// compare-and-set rides on, and what makes racing writers benign.
//
// Implementations must be safe for concurrent use.
type Backend interface {
	// Put stores body under key unless the key already exists, in
	// which case the stored blob is kept untouched. created reports
	// whether this call created the blob.
	Put(key string, body []byte) (created bool, err error)
	// Get returns the blob stored under key, ErrNotFound when absent.
	// The returned slice is the caller's to keep; implementations must
	// not retain or mutate it.
	Get(key string) ([]byte, error)
	// Has reports whether key holds a blob, without reading it.
	Has(key string) (bool, error)
	// Delete removes key's blob; deleting an absent key is not an
	// error. It exists for lease expiry and operator cleanup — cached
	// results are immutable and never deleted by the serving path.
	Delete(key string) error
	// Stats sizes the store's current contents.
	Stats() (Stats, error)
}

// VersionedKey namespaces a content address under a cache-key
// generation (pdce.CacheKeyVersion). A fleet mixing optimizer
// versions — mid-rollout, or rolled half back — shares one store
// without ever serving version X's result for version Y's request:
// the generations address disjoint key spaces, and the old
// generation's blobs age out instead of poisoning the new one.
func VersionedKey(version, key string) string {
	return version + "-" + key
}

// maxKeyLen bounds keys well under common filename limits, leaving
// room for DirStore's ".blob" suffix and temp-file decoration.
const maxKeyLen = 200

// ValidKey reports whether key is safe for every backend: non-empty,
// bounded, and drawn from a filesystem- and URL-safe alphabet
// (letters, digits, '.', '_', '-'). Keys reaching the store are
// server-derived (hex digests plus version prefixes), so a rejection
// means a programming error or a crafted peer request — both are
// refused rather than escaped.
func ValidKey(key string) bool {
	if len(key) == 0 || len(key) > maxKeyLen {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z':
		case c >= 'A' && c <= 'Z':
		case c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	// "." and ".." are valid by alphabet but are path navigation.
	return key != "." && key != ".."
}

// tempPrefix marks in-progress writes in directory-backed stores (and
// the server's spill directory, which shares the same convention): a
// blob is staged as tmp-* and atomically renamed or linked into
// place, so any surviving tmp-* file is an orphan from a crash
// between create and rename.
const tempPrefix = "tmp-"

// SweepTemps removes orphaned temp files (tmp-*) directly inside dir,
// returning how many were removed. It is called at boot — by DirStore
// on its root and by the server's spill cache on its directory —
// where nothing can still be mid-write, so everything matching the
// prefix is crash litter. A missing directory sweeps zero.
func SweepTemps(dir string) int {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	removed := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasPrefix(e.Name(), tempPrefix) {
			continue
		}
		if os.Remove(filepath.Join(dir, e.Name())) == nil {
			removed++
		}
	}
	return removed
}

// Open builds a backend from a -store flag value:
//
//	off            no shared store (nil backend)
//	mem            process-local in-memory store (tests, demos)
//	dir:/path      DirStore on a shared filesystem directory
//	http://host    HTTPStore against pdce-blobd or a peer pdced
//	https://host   same, over TLS
func Open(spec string) (Backend, error) {
	switch {
	case spec == "" || spec == "off":
		return nil, nil
	case spec == "mem":
		return NewMemStore(), nil
	case strings.HasPrefix(spec, "dir:"):
		path := strings.TrimPrefix(spec, "dir:")
		if path == "" {
			return nil, errors.New("store: dir: form needs a path (dir:/var/cache/pdce-store)")
		}
		return NewDirStore(path)
	case strings.HasPrefix(spec, "http://") || strings.HasPrefix(spec, "https://"):
		return NewHTTPStore(spec, nil), nil
	default:
		return nil, errors.New("store: unknown form " + spec + " (want off, mem, dir:/path, or http://host)")
	}
}
