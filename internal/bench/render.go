package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"pdce/internal/obs"
)

// expOrder is the canonical experiment ordering for generated docs.
var expOrder = []string{"F", "C1", "C2", "C3", "C4", "C5", "C6", "C7", "C8", "C9", "C9b", "C10", "C11", "C12"}

// expTitles are the built-in section titles; an experiment's Title in
// experiments.json overrides them.
var expTitles = map[string]string{
	"F":   "Figures 1–13: paper transformation vs. implementation",
	"C1":  "pde wall-clock scaling on structured programs",
	"C2":  "pfe scaling and the pfe/pde cost ratio",
	"C3":  "code growth factor w (§6.2)",
	"C4":  "driver iterations r until stabilization (§6.3)",
	"C5":  "optimization power: dynamic assignment savings vs. baselines",
	"C6":  "safety ablation: all-paths (paper) vs. some-path (eager) sinking",
	"C7":  "assignment hoisting cannot eliminate partial deadness",
	"C8":  "liveness pressure before/after pde",
	"C9":  "incremental driver and batch-optimization throughput",
	"C9b": "dataflow engines: dense vs. sparse vs. auto",
	"C10": "serving throughput: cold vs. warm content-addressed cache",
	"C11": "cluster serving: replica scaling, affinity, fault tolerance",
	"C12": "shared persistence: fleet kill/reschedule recovery through the L2 store",
}

// Renderer turns a BENCH_paper.json history into the generated pieces
// of the reproduction docs. Every render method is deterministic:
// rendering the same history twice yields identical bytes, which is
// what lets the drift guard byte-compare committed docs against a
// fresh render.
type Renderer struct {
	H *obs.BenchHistory
	M *Matrix
}

// NewRenderer builds a renderer; a nil matrix uses the defaults.
func NewRenderer(h *obs.BenchHistory, m *Matrix) *Renderer {
	if m == nil {
		m = DefaultMatrix()
	}
	return &Renderer{H: h, M: m}
}

// docRun picks the run that documents experiment exp: the newest
// non-milestone run that measured it.
func (r *Renderer) docRun(exp string) *obs.BenchRun {
	return r.H.Newest(func(run *obs.BenchRun) bool {
		return run.Kind != "milestone" && run.HasExp(exp)
	})
}

// title returns the section title for an experiment.
func (r *Renderer) title(exp string) string {
	if e := r.M.Exp(exp); e != nil && e.Title != "" {
		return e.Title
	}
	if t, ok := expTitles[exp]; ok {
		return t
	}
	return exp
}

// expsPresent lists every experiment measured by any non-milestone
// run, in canonical order (unknown ids follow, sorted).
func (r *Renderer) expsPresent() []string {
	seen := map[string]bool{}
	for _, run := range r.H.Runs {
		if run.Kind == "milestone" {
			continue
		}
		for _, p := range run.Records {
			seen[p.Exp] = true
		}
	}
	var out []string
	for _, id := range expOrder {
		if seen[id] {
			out = append(out, id)
			delete(seen, id)
		}
	}
	var rest []string
	for id := range seen {
		rest = append(rest, id)
	}
	sort.Strings(rest)
	return append(out, rest...)
}

// Blocks returns every named generated block the splicer maintains in
// the hand-written docs: "exp:<ID>" for each measured experiment plus
// "readme-perf" for the README performance table.
func (r *Renderer) Blocks() map[string]string {
	blocks := map[string]string{"readme-perf": r.ReadmePerfBlock()}
	for _, exp := range r.expsPresent() {
		blocks["exp:"+exp] = r.ExpBlock(exp)
	}
	return blocks
}

// ExpBlock renders one experiment's generated table (with its source
// caption) for splicing into EXPERIMENTS.md.
func (r *Renderer) ExpBlock(exp string) string {
	run := r.docRun(exp)
	if run == nil {
		return "_No recorded run measures " + exp + "._\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Run `%s` (%s, seeds %d); median across repeats, ±MAD where nonzero.\n\n",
		run.RunID, run.Kind, run.Seeds)
	b.WriteString(r.expTable(run, exp))
	return b.String()
}

// expTable renders the generic variance-aware table of one experiment
// in one run: a row per measurement series, the wall-time aggregate
// columns where measured, then one column per metric (median ±MAD).
func (r *Renderer) expTable(run *obs.BenchRun, exp string) string {
	aggs := run.Aggregates
	if len(aggs) == 0 {
		aggs = obs.AggregateBench(run.Records)
	}
	type seriesKey struct {
		name string
		n    int
	}
	var order []seriesKey
	series := map[seriesKey]map[string]obs.BenchStat{}
	metricSet := map[string]bool{}
	hasTime, hasN := false, false
	for _, a := range aggs {
		if a.Exp != exp {
			continue
		}
		k := seriesKey{a.Name, a.N}
		m, ok := series[k]
		if !ok {
			m = map[string]obs.BenchStat{}
			series[k] = m
			order = append(order, k)
		}
		m[a.Metric] = a
		if a.Metric == obs.BenchTimeMetric {
			hasTime = true
		} else {
			metricSet[a.Metric] = true
		}
		if a.N != 0 {
			hasN = true
		}
	}
	if len(order) == 0 {
		return "_No data points for " + exp + "._\n"
	}
	metrics := make([]string, 0, len(metricSet))
	for m := range metricSet {
		metrics = append(metrics, m)
	}
	sort.Strings(metrics)

	header := []string{"series"}
	align := []string{"---"}
	if hasN {
		header, align = append(header, "n"), append(align, "---:")
	}
	if hasTime {
		header = append(header, "time (median)", "p95", "mad", "min…max")
		align = append(align, "---:", "---:", "---:", "---:")
	}
	for _, m := range metrics {
		header, align = append(header, m), append(align, "---:")
	}
	var b strings.Builder
	b.WriteString("| " + strings.Join(header, " | ") + " |\n")
	b.WriteString("|" + strings.Join(align, "|") + "|\n")
	for _, k := range order {
		row := []string{k.name}
		if hasN {
			if k.n != 0 {
				row = append(row, fmt.Sprintf("%d", k.n))
			} else {
				row = append(row, "–")
			}
		}
		if hasTime {
			if t, ok := series[k][obs.BenchTimeMetric]; ok {
				row = append(row, fmtDur(t.Median), fmtDur(t.P95), fmtDur(t.MAD),
					fmtDur(t.Min)+"…"+fmtDur(t.Max))
			} else {
				row = append(row, "–", "–", "–", "–")
			}
		}
		for _, m := range metrics {
			if st, ok := series[k][m]; ok {
				cell := fmtF(st.Median)
				if st.MAD > 0 {
					cell += " ±" + fmtF(st.MAD)
				}
				row = append(row, cell)
			} else {
				row = append(row, "–")
			}
		}
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// milestoneRuns returns the hand-recorded historical runs, in history
// order (oldest first).
func (r *Renderer) milestoneRuns() []*obs.BenchRun {
	var out []*obs.BenchRun
	for i := range r.H.Runs {
		if r.H.Runs[i].Kind == "milestone" {
			out = append(out, &r.H.Runs[i])
		}
	}
	return out
}

// milestoneLabel derives the column label from the run id: everything
// after the first dash, dashes spaced ("m0-seed" → "seed").
func milestoneLabel(run *obs.BenchRun) string {
	id := run.RunID
	if i := strings.Index(id, "-"); i >= 0 {
		id = id[i+1:]
	}
	return strings.ReplaceAll(id, "-", " ")
}

// ReadmePerfBlock renders the README performance table: the
// BenchmarkPDEScaling trajectory across the recorded optimization
// milestones, plus the latest committed run's headline number.
func (r *Renderer) ReadmePerfBlock() string {
	miles := r.milestoneRuns()
	if len(miles) == 0 {
		return "_No milestone runs recorded in BENCH_paper.json._\n"
	}
	first, last := miles[0], miles[len(miles)-1]
	var ns []int
	for _, p := range first.Records {
		if p.Exp == "PERF" && p.Name == "pde-scaling" {
			ns = append(ns, p.N)
		}
	}
	sort.Ints(ns)

	header := []string{"n (stmts)", milestoneLabel(first) + " (ns/op)"}
	align := []string{"---:", "---:"}
	for _, m := range miles[1:] {
		header, align = append(header, milestoneLabel(m)), append(align, "---:")
	}
	header = append(header, "total speedup", "allocs "+milestoneLabel(first), "allocs now")
	align = append(align, "---:", "---:", "---:")

	var b strings.Builder
	b.WriteString("| " + strings.Join(header, " | ") + " |\n")
	b.WriteString("|" + strings.Join(align, "|") + "|\n")
	for _, n := range ns {
		row := []string{fmt.Sprintf("%d", n)}
		var firstNS, lastNS float64
		for _, m := range miles {
			st, ok := m.Stat("PERF", "pde-scaling", n, obs.BenchTimeMetric)
			if !ok {
				row = append(row, "–")
				continue
			}
			row = append(row, groupInt(int64(st.Median)))
			if m == first {
				firstNS = st.Median
			}
			if m == last {
				lastNS = st.Median
			}
		}
		if firstNS > 0 && lastNS > 0 {
			row = append(row, fmt.Sprintf("%.1fx", firstNS/lastNS))
		} else {
			row = append(row, "–")
		}
		for _, m := range []*obs.BenchRun{first, last} {
			if st, ok := m.Stat("PERF", "pde-scaling", n, "allocs"); ok {
				row = append(row, groupInt(int64(st.Median)))
			} else {
				row = append(row, "–")
			}
		}
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	if line := r.latestScalingLine(); line != "" {
		b.WriteString("\n" + line + "\n")
	}
	return b.String()
}

// latestScalingLine summarizes the newest recorded C1 measurement at
// its largest program size.
func (r *Renderer) latestScalingLine() string {
	run := r.docRun("C1")
	if run == nil {
		return ""
	}
	aggs := run.Aggregates
	if len(aggs) == 0 {
		aggs = obs.AggregateBench(run.Records)
	}
	best := obs.BenchStat{N: -1}
	for _, a := range aggs {
		if a.Exp == "C1" && a.Metric == obs.BenchTimeMetric && a.N > best.N {
			best = a
		}
	}
	if best.N < 0 {
		return ""
	}
	return fmt.Sprintf("Latest recorded run (`%s`, %s): full pde fixpoint at n=%d in %s median (±%s MAD over %d repeat(s); see [docs/BENCHMARKS.md](docs/BENCHMARKS.md)).",
		run.RunID, run.Kind, best.N, fmtDur(best.Median), fmtDur(best.MAD), best.Count)
}

// BenchmarksDoc renders the whole generated docs/BENCHMARKS.md.
func (r *Renderer) BenchmarksDoc() string {
	var b strings.Builder
	b.WriteString("<!-- GENERATED FILE — do not edit. `go run ./cmd/benchreport` regenerates it from BENCH_paper.json. -->\n\n")
	b.WriteString("# Benchmarks — generated reproduction record\n\n")
	b.WriteString("Every table below is rendered by `cmd/benchreport` from the committed\n")
	b.WriteString("`BENCH_paper.json` run history (written by `cmd/benchpaper` executing the\n")
	b.WriteString("`experiments.json` matrix). Numbers are medians across a run's repeats;\n")
	b.WriteString("±MAD marks the measured variance band, and `benchreport -check` gates\n")
	b.WriteString("regressions against it. See [EXPERIMENTS-HOWTO.md](EXPERIMENTS-HOWTO.md)\n")
	b.WriteString("for the workflow and [EXPERIMENTS.md](../EXPERIMENTS.md) for the\n")
	b.WriteString("interpretation of each experiment against the paper's claims.\n\n")

	b.WriteString("## Run inventory\n\n")
	b.WriteString("| run | kind | time | seeds | repeats | gomaxprocs | points | note |\n")
	b.WriteString("|-----|------|------|------:|--------:|-----------:|-------:|------|\n")
	for i := range r.H.Runs {
		run := &r.H.Runs[i]
		t := run.Time
		if t == "" {
			t = "–"
		}
		note := run.Note
		if note == "" {
			note = "–"
		}
		fmt.Fprintf(&b, "| `%s` | %s | %s | %d | %d | %d | %d | %s |\n",
			run.RunID, run.Kind, t, run.Seeds, run.Repeats, run.GOMAXPROCS,
			len(run.Records), note)
	}
	b.WriteString("\n")

	for _, exp := range r.expsPresent() {
		fmt.Fprintf(&b, "## %s — %s\n\n", exp, r.title(exp))
		b.WriteString(r.ExpBlock(exp))
		b.WriteString("\n")
	}

	b.WriteString("## Performance trajectory\n\n")
	if miles := r.milestoneRuns(); len(miles) > 0 {
		b.WriteString("`BenchmarkPDEScaling` (full pde fixpoint, ns/op medians) across the\n")
		b.WriteString("recorded optimization milestones:\n\n")
		b.WriteString(r.ReadmePerfBlock())
		b.WriteString("\n")
	}
	b.WriteString("C1 scaling medians at each run's largest measured size:\n\n")
	b.WriteString("| run | kind | n | time (median) | mad |\n")
	b.WriteString("|-----|------|--:|--------------:|----:|\n")
	for i := range r.H.Runs {
		run := &r.H.Runs[i]
		if run.Kind == "milestone" || !run.HasExp("C1") {
			continue
		}
		aggs := run.Aggregates
		if len(aggs) == 0 {
			aggs = obs.AggregateBench(run.Records)
		}
		best := obs.BenchStat{N: -1}
		for _, a := range aggs {
			if a.Exp == "C1" && a.Metric == obs.BenchTimeMetric && a.N > best.N {
				best = a
			}
		}
		if best.N < 0 {
			continue
		}
		fmt.Fprintf(&b, "| `%s` | %s | %d | %s | %s |\n",
			run.RunID, run.Kind, best.N, fmtDur(best.Median), fmtDur(best.MAD))
	}
	return b.String()
}

// fmtDur formats a nanosecond quantity as a human duration with a
// fixed, deterministic precision per magnitude.
func fmtDur(ns float64) string {
	if ns <= 0 {
		return "0s"
	}
	d := float64(ns)
	switch {
	case d < 1e3:
		return fmt.Sprintf("%.0fns", d)
	case d < 1e6:
		return sig3(d/1e3) + "µs"
	case d < 1e9:
		return sig3(d/1e6) + "ms"
	default:
		return sig3(d/1e9) + "s"
	}
}

// sig3 prints v (known to be in [0.001, 1000)) with three significant
// digits using fixed decimal notation.
func sig3(v float64) string {
	switch {
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// fmtF formats a metric value: integers exactly, fractions with a
// magnitude-scaled fixed precision.
func fmtF(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	a := v
	if a < 0 {
		a = -a
	}
	switch {
	case a >= 100:
		return fmt.Sprintf("%.0f", v)
	case a >= 10:
		return fmt.Sprintf("%.1f", v)
	case a >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// groupInt formats an integer with comma thousands separators.
func groupInt(v int64) string {
	s := fmt.Sprintf("%d", v)
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	out := strings.Join(parts, ",")
	if neg {
		out = "-" + out
	}
	return out
}

// RunStamp formats a wall-clock time as the run id cmd/benchpaper
// uses, so ids sort chronologically in the inventory.
func RunStamp(t time.Time) string {
	return t.UTC().Format("20060102-150405")
}
