package bench

import (
	"strings"
	"testing"

	"pdce/internal/obs"
)

// mkRun builds a quick run measuring C1/pde at n=64 with the given
// per-repeat wall times and a perfect "ok" metric.
func mkRun(id string, ns ...int64) obs.BenchRun {
	var pts []obs.BenchPoint
	for rep, v := range ns {
		pts = append(pts, obs.BenchPoint{
			Exp: "C1", Name: "pde", N: 64, Rep: rep, NSPerOp: v,
			Metrics: map[string]float64{"ok": 1},
		})
	}
	return obs.BenchRun{
		RunID: id, Kind: "quick", Quick: true, Repeats: len(ns),
		Records: pts, Aggregates: obs.AggregateBench(pts),
	}
}

func baselineHistory(extra ...obs.BenchRun) *obs.BenchHistory {
	h := &obs.BenchHistory{Schema: obs.BenchSchemaVersion, Runs: []obs.BenchRun{
		mkRun("b1", 900, 950),
		mkRun("b2", 1000, 1050),
		mkRun("b3", 1100, 1000),
	}}
	h.Runs = append(h.Runs, extra...)
	return h
}

// TestGateWithinNoisePasses is half the acceptance criterion: jitter
// inside the measured variance band must not fail the gate.
func TestGateWithinNoisePasses(t *testing.T) {
	// Baseline medians 900/1000/1050 → center 1000; the time floor
	// (0.60·1000 = 600) dominates the MAD band, so 1500 is in-band.
	h := baselineHistory(mkRun("new", 1500, 1450))
	res, err := Check(h, CheckConfig{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Run != "new" || len(res.Baselines) != 3 {
		t.Fatalf("run=%s baselines=%v", res.Run, res.Baselines)
	}
	if res.Checked == 0 {
		t.Fatal("nothing checked")
	}
	if len(res.Regressions) != 0 {
		t.Fatalf("within-noise jitter flagged: %v", res.Regressions)
	}
}

// TestGateOutOfBandFails is the other half: a real slowdown beyond the
// band must fail.
func TestGateOutOfBandFails(t *testing.T) {
	h := baselineHistory(mkRun("new", 5000, 5100))
	res, err := Check(h, CheckConfig{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regressions) != 1 {
		t.Fatalf("regressions = %v, want exactly the ns_per_op one", res.Regressions)
	}
	r := res.Regressions[0]
	if r.Exp != "C1" || r.Metric != obs.BenchTimeMetric || r.Direction != "lower" {
		t.Errorf("bad regression %+v", r)
	}
	if !strings.Contains(r.String(), "C1/pde n=64") {
		t.Errorf("String() = %q", r.String())
	}
}

// TestGateHigherIsBetter flags a drop in a higher-is-better metric.
func TestGateHigherIsBetter(t *testing.T) {
	bad := mkRun("new", 1000, 1000)
	for i := range bad.Records {
		bad.Records[i].Metrics["ok"] = 0
	}
	bad.Aggregates = obs.AggregateBench(bad.Records)
	h := baselineHistory(bad)
	res, err := Check(h, CheckConfig{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res.Regressions {
		if r.Metric == "ok" && r.Direction == "higher" {
			found = true
		}
	}
	if !found {
		t.Fatalf("ok-metric drop not flagged: %v", res.Regressions)
	}
}

// TestGateToleranceWidensBands: the noisy-host override knob.
func TestGateToleranceWidensBands(t *testing.T) {
	h := baselineHistory(mkRun("new", 5000, 5100))
	res, err := Check(h, CheckConfig{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regressions) != 0 {
		t.Fatalf("tolerance 10 still flags: %v", res.Regressions)
	}
}

// TestGateDirectionsOverride disables gating for a metric via config.
func TestGateDirectionsOverride(t *testing.T) {
	h := baselineHistory(mkRun("new", 5000, 5100))
	res, err := Check(h, CheckConfig{Directions: map[string]string{obs.BenchTimeMetric: "skip"}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regressions) != 0 {
		t.Fatalf("skipped metric still flagged: %v", res.Regressions)
	}
}

// TestGateBaselineSelection: milestone runs and different-scale runs
// never serve as baselines; without any comparable baseline nothing is
// checked.
func TestGateBaselineSelection(t *testing.T) {
	mile := mkRun("m0", 1)
	mile.Kind = "milestone"
	full := mkRun("full-run", 100000)
	full.Quick, full.Kind = false, "full"
	h := &obs.BenchHistory{Schema: obs.BenchSchemaVersion, Runs: []obs.BenchRun{
		mile, full, mkRun("new", 5000),
	}}
	res, err := Check(h, CheckConfig{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Baselines) != 0 || res.Checked != 0 || len(res.Regressions) != 0 {
		t.Fatalf("gate used incomparable baselines: %+v", res)
	}

	// Window caps how far back baselines reach.
	var runs []obs.BenchRun
	for _, id := range []string{"a", "b", "c", "d"} {
		runs = append(runs, mkRun(id, 1000))
	}
	runs = append(runs, mkRun("new", 1000))
	h = &obs.BenchHistory{Schema: obs.BenchSchemaVersion, Runs: runs}
	res, err = Check(h, CheckConfig{Window: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Baselines) != 2 || res.Baselines[0] != "d" || res.Baselines[1] != "c" {
		t.Fatalf("window: baselines = %v", res.Baselines)
	}
}

func TestGateEmptyHistory(t *testing.T) {
	if _, err := Check(&obs.BenchHistory{}, CheckConfig{}, 0); err == nil {
		t.Error("empty history accepted")
	}
}
