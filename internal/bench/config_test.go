package bench

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadMatrixMissingIsDefault(t *testing.T) {
	m, err := LoadMatrix(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatal(err)
	}
	def := DefaultMatrix()
	if m.Defaults.Seeds != def.Defaults.Seeds || len(m.Defaults.Sizes) != len(def.Defaults.Sizes) {
		t.Errorf("missing file defaults = %+v", m.Defaults)
	}
	if len(m.Smoke.Exps) == 0 {
		t.Error("missing file has no smoke matrix")
	}
}

func TestLoadMatrixBackfillsDefaults(t *testing.T) {
	path := filepath.Join(t.TempDir(), "experiments.json")
	doc := `{
  "defaults": {"seeds": 7},
  "experiments": [
    {"id": "C9", "params": {"programs": 40}, "quick_params": {"programs": 10}},
    {"id": "C1", "sizes": [32, 64], "seeds": 2, "repeats": 5}
  ]
}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := LoadMatrix(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Defaults.Seeds != 7 {
		t.Errorf("seeds = %d", m.Defaults.Seeds)
	}
	// Unset fields backfill from the built-in defaults.
	if len(m.Defaults.Sizes) == 0 || len(m.Defaults.QuickSizes) == 0 || len(m.Smoke.Exps) == 0 {
		t.Errorf("backfill missing: %+v", m)
	}

	c1 := m.Exp("C1")
	if got := m.Sizes(c1, false); len(got) != 2 || got[0] != 32 {
		t.Errorf("C1 sizes = %v", got)
	}
	if m.Seeds(c1) != 2 || m.Repeats(c1) != 5 {
		t.Errorf("C1 seeds/repeats = %d/%d", m.Seeds(c1), m.Repeats(c1))
	}
	// C1 declares no quick sizes → defaults.
	if got := m.Sizes(c1, true); len(got) != len(m.Defaults.QuickSizes) {
		t.Errorf("C1 quick sizes = %v", got)
	}

	c9 := m.Exp("C9")
	if m.Seeds(c9) != 7 {
		t.Errorf("C9 inherits seeds: %d", m.Seeds(c9))
	}
	if got := c9.Param("programs", false, 32, 12); got != 40 {
		t.Errorf("C9 programs = %d, want config 40", got)
	}
	if got := c9.Param("programs", true, 32, 12); got != 10 {
		t.Errorf("C9 quick programs = %d, want config 10", got)
	}
	if got := c9.Param("stmts", false, 256, 128); got != 256 {
		t.Errorf("C9 stmts = %d, want built-in 256", got)
	}
	if got := c9.Param("stmts", true, 256, 128); got != 128 {
		t.Errorf("C9 quick stmts = %d, want built-in 128", got)
	}

	// Unknown experiments resolve to all-defaults.
	cx := m.Exp("C99")
	if m.Seeds(cx) != 7 || cx.Param("anything", false, 3, 1) != 3 {
		t.Errorf("unknown experiment not defaulted")
	}
	if got := cx.ClientsOr([]int{1, 4}); len(got) != 2 {
		t.Errorf("ClientsOr default = %v", got)
	}
}

func TestLoadMatrixRejectsBadJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "experiments.json")
	if err := os.WriteFile(path, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadMatrix(path); err == nil {
		t.Error("malformed config accepted")
	}
}

func TestCheckConfigDefaults(t *testing.T) {
	c := CheckConfig{}.withDefaults()
	if c.Window != 5 || c.MADK != 4 || c.RelFloor != 0.10 || c.TimeRelFloor != 0.60 {
		t.Errorf("defaults = %+v", c)
	}
	c = CheckConfig{Window: 2, MADK: 1, RelFloor: 0.5, TimeRelFloor: 0.9}.withDefaults()
	if c.Window != 2 || c.MADK != 1 || c.RelFloor != 0.5 || c.TimeRelFloor != 0.9 {
		t.Errorf("overrides lost: %+v", c)
	}
}

// TestRepoMatrixMatchesBuiltins loads the committed experiments.json
// and checks it against the harness's built-in workload constants, so
// the config file and the code defaults can't drift silently.
func TestRepoMatrixMatchesBuiltins(t *testing.T) {
	m, err := LoadMatrix("../../experiments.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Experiments) == 0 {
		t.Fatal("committed experiments.json declares no experiments")
	}
	for id, want := range map[string]map[string]int{
		"C9":  {"programs": 32, "stmts": 256},
		"C10": {"programs": 16, "stmts": 192, "warm_reps": 5},
		"C11": {"programs": 48, "stmts": 160, "warm_reps": 6, "clients": 16},
		"C12": {"programs": 48, "stmts": 160, "clients": 16, "replicas": 4},
	} {
		e := m.Exp(id)
		for key, v := range want {
			if got := e.Param(key, false, -1, -1); got != v {
				t.Errorf("%s %s = %d, want %d", id, key, got, v)
			}
		}
	}
	if len(m.Smoke.Exps) == 0 || m.Smoke.Repeats < 2 {
		t.Errorf("smoke matrix %+v cannot feed the variance gate", m.Smoke)
	}
}
