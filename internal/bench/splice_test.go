package bench

import (
	"strings"
	"testing"
)

const spliceDoc = `# Doc

Prose before.

<!-- generated:begin exp:C1 -->
| old | table |
<!-- generated:end exp:C1 -->

Prose between.

<!-- generated:begin readme-perf -->
stale
<!-- generated:end readme-perf -->

Prose after.
`

func TestListGenerated(t *testing.T) {
	names := ListGenerated([]byte(spliceDoc))
	if len(names) != 2 || names[0] != "exp:C1" || names[1] != "readme-perf" {
		t.Fatalf("names = %v", names)
	}
}

func TestSpliceGenerated(t *testing.T) {
	out, changed, err := SpliceGenerated([]byte(spliceDoc), "exp:C1", "| new | table |\n")
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Error("no change reported")
	}
	s := string(out)
	if !strings.Contains(s, "<!-- generated:begin exp:C1 -->\n| new | table |\n<!-- generated:end exp:C1 -->") {
		t.Errorf("splice result:\n%s", s)
	}
	if !strings.Contains(s, "Prose before.") || !strings.Contains(s, "Prose between.") || !strings.Contains(s, "stale") {
		t.Errorf("surrounding content damaged:\n%s", s)
	}

	// Idempotency: splicing the same content again is a byte no-op.
	out2, changed, err := SpliceGenerated(out, "exp:C1", "| new | table |")
	if err != nil {
		t.Fatal(err)
	}
	if changed || string(out2) != s {
		t.Error("re-splice not idempotent")
	}

	if _, _, err := SpliceGenerated([]byte(spliceDoc), "missing", "x\n"); err == nil {
		t.Error("missing block accepted")
	}
}

func TestSpliceAll(t *testing.T) {
	blocks := map[string]string{
		"exp:C1":      "| c1 |\n",
		"readme-perf": "| perf |\n",
		"exp:C2":      "| unused renderer is fine |\n",
	}
	out, changed, err := SpliceAll([]byte(spliceDoc), blocks)
	if err != nil {
		t.Fatal(err)
	}
	if !changed || !strings.Contains(string(out), "| c1 |") || !strings.Contains(string(out), "| perf |") {
		t.Errorf("SpliceAll:\n%s", out)
	}

	// A marker with no renderer is an error, not a silent freeze.
	doc := spliceDoc + "\n<!-- generated:begin exp:TYPO -->\nx\n<!-- generated:end exp:TYPO -->\n"
	if _, _, err := SpliceAll([]byte(doc), blocks); err == nil {
		t.Error("unknown marker accepted")
	}
}
