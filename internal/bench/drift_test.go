package bench

import (
	"os"
	"path/filepath"
	"testing"

	"pdce/internal/obs"
)

// TestCommittedDocs is the docs drift guard: every generated table in
// the committed reproduction docs must byte-match a fresh render of the
// committed BENCH_paper.json history. A benchmark run without the
// matching `go run ./cmd/benchreport` regeneration (or a hand edit
// inside a generated block) fails here.
func TestCommittedDocs(t *testing.T) {
	root := "../.."
	h, err := obs.LoadBenchHistory(filepath.Join(root, "BENCH_paper.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Runs) == 0 {
		t.Fatal("committed history is empty")
	}
	m, err := LoadMatrix(filepath.Join(root, "experiments.json"))
	if err != nil {
		t.Fatal(err)
	}
	r := NewRenderer(h, m)

	want := r.BenchmarksDoc()
	got, err := os.ReadFile(filepath.Join(root, "docs", "BENCHMARKS.md"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != want {
		t.Errorf("docs/BENCHMARKS.md is stale: run `go run ./cmd/benchreport`")
	}

	blocks := r.Blocks()
	for _, name := range []string{"EXPERIMENTS.md", "README.md"} {
		doc, err := os.ReadFile(filepath.Join(root, name))
		if err != nil {
			t.Fatal(err)
		}
		if len(ListGenerated(doc)) == 0 {
			t.Errorf("%s declares no generated blocks", name)
			continue
		}
		next, changed, err := SpliceAll(doc, blocks)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if changed {
			t.Errorf("%s generated blocks are stale: run `go run ./cmd/benchreport`", name)
		}
		_ = next
	}
}
