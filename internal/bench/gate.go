package bench

import (
	"fmt"
	"sort"
	"strings"

	"pdce/internal/obs"
)

// Metric directions: what "worse" means. Metrics not listed (and not
// overridden in CheckConfig.Directions) are skipped — gating a metric
// whose better direction is unknown would turn every improvement into
// a CI failure.
var metricDirections = map[string]string{
	obs.BenchTimeMetric: "lower",
	"violations":        "lower",
	"pde_violations":    "lower",
	"errors":            "lower",
	"re_solves":         "lower",
	"node_visits":       "lower",
	"w_mean":            "lower",
	"w_max":             "lower",
	"exponent":          "lower",

	"ok":                 "higher",
	"reqs_per_s":         "higher",
	"cold_reqs_per_s":    "higher",
	"restart_reqs_per_s": "higher",
	"programs_per_s":     "higher",
	"speedup":            "higher",
	"speedup_vs_1":       "higher",
	"speedup_vs_cold":    "higher",
	"affinity_hit_rate":  "higher",
	"fleet_hit_rate":     "higher",
	"byte_identical":     "higher",
	"dce":                "higher",
	"fce":                "higher",
	"dudce":              "higher",
	"ssadce":             "higher",
	"pde1":               "higher",
	"pde":                "higher",
	"pfe":                "higher",
	"pde_savings":        "higher",
}

// timeDerived reports whether a metric moves with the host's clock and
// load (wall times, request rates, speedup ratios), which widens its
// relative band floor.
func timeDerived(metric string) bool {
	return metric == obs.BenchTimeMetric ||
		strings.Contains(metric, "reqs_per_s") ||
		strings.Contains(metric, "programs_per_s") ||
		strings.HasPrefix(metric, "speedup")
}

// Regression is one metric of the newest run that moved outside its
// variance band in the worse direction.
type Regression struct {
	Exp       string
	Name      string
	N         int
	Metric    string
	Direction string  // "lower" or "higher" is better
	Newest    float64 // newest run's median
	Baseline  float64 // median of the baseline window's medians
	Band      float64 // allowed deviation around the baseline
}

func (r Regression) String() string {
	series := r.Name
	if r.N != 0 {
		series = fmt.Sprintf("%s n=%d", r.Name, r.N)
	}
	return fmt.Sprintf("%s/%s %s: %s is worse than baseline %s beyond the ±%s band (%s is better)",
		r.Exp, series, r.Metric, fmtF(r.Newest), fmtF(r.Baseline), fmtF(r.Band), r.Direction)
}

// GateResult is the regression gate's verdict over one history.
type GateResult struct {
	Run         string   // newest run id, the run under test
	Baselines   []string // baseline window run ids, newest first
	Checked     int      // metrics compared
	Skipped     int      // metrics without a direction or a baseline
	Regressions []Regression
}

// Check gates the newest run of the history against the baseline
// window: the up-to-Window preceding non-milestone runs at the same
// scale (quick vs. full). A metric regresses only when its median
// moves in the worse direction beyond the measured variance band
//
//	max(MADK·max(window MAD, newest run's across-repeat MAD),
//	    floor·|baseline median|) · tolerance
//
// so noisy metrics get wide bands from their own history and
// deterministic metrics fall back to the relative floor. tolerance
// (≤0 = 1.0) scales every band — the override knob for noisy hosts.
func Check(h *obs.BenchHistory, cfg CheckConfig, tolerance float64) (*GateResult, error) {
	cfg = cfg.withDefaults()
	if tolerance <= 0 {
		tolerance = 1.0
	}
	newest := h.Newest(nil)
	if newest == nil {
		return nil, fmt.Errorf("history has no runs to check")
	}
	var window []*obs.BenchRun
	for i := len(h.Runs) - 1; i >= 0 && len(window) < cfg.Window; i-- {
		run := &h.Runs[i]
		if run == newest || run.Kind == "milestone" || run.Quick != newest.Quick {
			continue
		}
		window = append(window, run)
	}
	res := &GateResult{Run: newest.RunID}
	for _, run := range window {
		res.Baselines = append(res.Baselines, run.RunID)
	}

	aggs := newest.Aggregates
	if len(aggs) == 0 {
		aggs = obs.AggregateBench(newest.Records)
	}
	for _, a := range aggs {
		dir := metricDirections[a.Metric]
		if d, ok := cfg.Directions[a.Metric]; ok {
			dir = d
		}
		if dir != "lower" && dir != "higher" {
			res.Skipped++
			continue
		}
		var baseMedians []float64
		for _, run := range window {
			if st, ok := run.Stat(a.Exp, a.Name, a.N, a.Metric); ok {
				baseMedians = append(baseMedians, st.Median)
			}
		}
		if len(baseMedians) == 0 {
			res.Skipped++
			continue
		}
		sort.Float64s(baseMedians)
		center := median(baseMedians)
		spread := madOf(baseMedians, center)
		if a.MAD > spread {
			spread = a.MAD
		}
		floor := cfg.RelFloor
		if timeDerived(a.Metric) {
			floor = cfg.TimeRelFloor
		}
		band := cfg.MADK * spread
		if f := floor * abs(center); f > band {
			band = f
		}
		band *= tolerance
		res.Checked++
		worse := (dir == "lower" && a.Median > center+band) ||
			(dir == "higher" && a.Median < center-band)
		if worse {
			res.Regressions = append(res.Regressions, Regression{
				Exp: a.Exp, Name: a.Name, N: a.N, Metric: a.Metric,
				Direction: dir, Newest: a.Median, Baseline: center, Band: band,
			})
		}
	}
	return res, nil
}

func median(sorted []float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		return sorted[mid]
	}
	return (sorted[mid-1] + sorted[mid]) / 2
}

func madOf(vals []float64, center float64) float64 {
	devs := make([]float64, len(vals))
	for i, v := range vals {
		devs[i] = abs(v - center)
	}
	sort.Float64s(devs)
	return median(devs)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
