package bench

import (
	"flag"
	"os"
	"strings"
	"testing"
	"time"

	"pdce/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden render files")

func fixtureHistory(t *testing.T) *obs.BenchHistory {
	t.Helper()
	h, err := obs.LoadBenchHistory("testdata/history.json")
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestGoldenBenchmarksDoc byte-compares the full generated document
// against the committed golden render of the fixture history. Run
// `go test ./internal/bench -run Golden -update` after an intentional
// renderer change.
func TestGoldenBenchmarksDoc(t *testing.T) {
	r := NewRenderer(fixtureHistory(t), nil)
	got := r.BenchmarksDoc()
	if got != r.BenchmarksDoc() {
		t.Fatal("render is not deterministic")
	}
	const golden = "testdata/golden_benchmarks.md"
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("render drifted from golden (re-run with -update if intended)\n--- got ---\n%s", got)
	}
}

// TestGoldenReadmePerf pins the README trajectory block the same way.
func TestGoldenReadmePerf(t *testing.T) {
	r := NewRenderer(fixtureHistory(t), nil)
	got := r.ReadmePerfBlock()
	const golden = "testdata/golden_readme_perf.md"
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("readme-perf drifted from golden (re-run with -update if intended)\n--- got ---\n%s", got)
	}
}

func TestRendererBlocks(t *testing.T) {
	r := NewRenderer(fixtureHistory(t), nil)
	blocks := r.Blocks()
	for _, name := range []string{"readme-perf", "exp:C1", "exp:C4"} {
		if blocks[name] == "" {
			t.Errorf("missing block %s", name)
		}
	}
	if _, ok := blocks["exp:PERF"]; ok {
		t.Error("milestone pseudo-experiment leaked into doc blocks")
	}
	// The C1 block cites its source run and carries the variance table.
	c1 := blocks["exp:C1"]
	if !strings.Contains(c1, "Run `20260101-120000` (quick, seeds 3)") {
		t.Errorf("C1 caption: %s", c1)
	}
	if !strings.Contains(c1, "| pde | 64 | 520µs |") {
		t.Errorf("C1 median row missing: %s", c1)
	}
	// Metrics-only experiments render without the time columns.
	if strings.Contains(blocks["exp:C4"], "time (median)") {
		t.Errorf("C4 has time columns with no timing data: %s", blocks["exp:C4"])
	}
}

func TestFormatters(t *testing.T) {
	for _, tc := range []struct {
		ns   float64
		want string
	}{
		{0, "0s"}, {999, "999ns"}, {1000, "1.00µs"}, {520000, "520µs"},
		{1215000, "1.22ms"}, {38145702, "38.1ms"}, {3651480766, "3.65s"},
	} {
		if got := fmtDur(tc.ns); got != tc.want {
			t.Errorf("fmtDur(%v) = %q, want %q", tc.ns, got, tc.want)
		}
	}
	for _, tc := range []struct {
		v    float64
		want string
	}{
		{0, "0"}, {3, "3"}, {1234, "1234"}, {2.5, "2.50"}, {0.123456, "0.123"},
		{12.34, "12.3"}, {123.4, "123"}, {-4.25, "-4.25"},
	} {
		if got := fmtF(tc.v); got != tc.want {
			t.Errorf("fmtF(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
	for _, tc := range []struct {
		v    int64
		want string
	}{
		{0, "0"}, {999, "999"}, {1000, "1,000"}, {1536640, "1,536,640"}, {-12345, "-12,345"},
	} {
		if got := groupInt(tc.v); got != tc.want {
			t.Errorf("groupInt(%d) = %q, want %q", tc.v, got, tc.want)
		}
	}
	if got := RunStamp(time.Date(2026, 8, 9, 1, 2, 3, 0, time.UTC)); got != "20260809-010203" {
		t.Errorf("RunStamp = %q", got)
	}
}
