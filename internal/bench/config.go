// Package bench is the experiments-as-config layer of the paper
// reproduction harness: the experiments.json matrix that cmd/benchpaper
// executes, the deterministic renderer that cmd/benchreport uses to
// generate the reproduction documentation from BENCH_paper.json
// history, and the noise-aware regression gate behind `benchreport
// -check`.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
)

// Matrix is the experiments.json document: the declared experiment
// matrix plus the regression-gate configuration. Every field has a
// built-in default, so a missing file behaves like the pre-config
// hardcoded harness.
type Matrix struct {
	Check       CheckConfig `json:"check"`
	Defaults    Defaults    `json:"defaults"`
	Smoke       Smoke       `json:"smoke"`
	Experiments []ExpConfig `json:"experiments,omitempty"`
}

// Defaults apply to every experiment that does not override them.
type Defaults struct {
	Seeds      int   `json:"seeds,omitempty"`
	Repeats    int   `json:"repeats,omitempty"`
	Sizes      []int `json:"sizes,omitempty"`
	QuickSizes []int `json:"quick_sizes,omitempty"`
}

// Smoke is the CI-scale matrix behind `make bench-check`: a subset of
// experiments at reduced size, run with its own seeds/repeats so the
// gate has variance to measure without a full benchmark run.
type Smoke struct {
	Exps    []string `json:"experiments,omitempty"`
	Seeds   int      `json:"seeds,omitempty"`
	Repeats int      `json:"repeats,omitempty"`
	Sizes   []int    `json:"sizes,omitempty"`
}

// ExpConfig declares one experiment of the matrix. Zero fields fall
// back to Defaults (seeds, repeats, sizes) or to the experiment's
// built-in workload constants (params).
type ExpConfig struct {
	ID          string         `json:"id"`
	Title       string         `json:"title,omitempty"`
	Seeds       int            `json:"seeds,omitempty"`
	Repeats     int            `json:"repeats,omitempty"`
	Sizes       []int          `json:"sizes,omitempty"`
	QuickSizes  []int          `json:"quick_sizes,omitempty"`
	Params      map[string]int `json:"params,omitempty"`
	QuickParams map[string]int `json:"quick_params,omitempty"`
	Clients     []int          `json:"clients,omitempty"`
	Replicas    []int          `json:"replicas,omitempty"`
	StoreModes  []string       `json:"store_modes,omitempty"`
}

// CheckConfig tunes the regression gate. The band around a baseline
// metric is max(MADK·spread, RelFloor·|baseline|), where spread is the
// larger of the baseline window's MAD and the newest run's
// across-repeat MAD; time-derived metrics (wall clock, request rates,
// speedups) use TimeRelFloor instead of RelFloor, since they move with
// the host. Directions overrides or disables the built-in
// better-direction table per metric ("lower", "higher", "skip").
type CheckConfig struct {
	Window       int               `json:"window,omitempty"`
	MADK         float64           `json:"mad_k,omitempty"`
	RelFloor     float64           `json:"rel_floor,omitempty"`
	TimeRelFloor float64           `json:"time_rel_floor,omitempty"`
	Directions   map[string]string `json:"directions,omitempty"`
}

func (c CheckConfig) withDefaults() CheckConfig {
	if c.Window <= 0 {
		c.Window = 5
	}
	if c.MADK <= 0 {
		c.MADK = 4
	}
	if c.RelFloor <= 0 {
		c.RelFloor = 0.10
	}
	if c.TimeRelFloor <= 0 {
		c.TimeRelFloor = 0.60
	}
	return c
}

// DefaultMatrix mirrors the harness's pre-config behaviour: the full
// and quick size sweeps and single-repeat runs.
func DefaultMatrix() *Matrix {
	return &Matrix{
		Defaults: Defaults{
			Seeds:      5,
			Repeats:    1,
			Sizes:      []int{64, 128, 256, 512, 1024, 2048, 4096},
			QuickSizes: []int{64, 128, 256, 512},
		},
		Smoke: Smoke{
			Exps:    []string{"C1", "C4", "C9b"},
			Seeds:   3,
			Repeats: 2,
			Sizes:   []int{64, 128},
		},
	}
}

// LoadMatrix reads an experiments.json file; a missing file yields the
// built-in default matrix. Loaded documents are backfilled with the
// defaults for any zero field.
func LoadMatrix(path string) (*Matrix, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return DefaultMatrix(), nil
	}
	if err != nil {
		return nil, err
	}
	var m Matrix
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	def := DefaultMatrix()
	if m.Defaults.Seeds == 0 {
		m.Defaults.Seeds = def.Defaults.Seeds
	}
	if m.Defaults.Repeats == 0 {
		m.Defaults.Repeats = def.Defaults.Repeats
	}
	if len(m.Defaults.Sizes) == 0 {
		m.Defaults.Sizes = def.Defaults.Sizes
	}
	if len(m.Defaults.QuickSizes) == 0 {
		m.Defaults.QuickSizes = def.Defaults.QuickSizes
	}
	if len(m.Smoke.Exps) == 0 {
		m.Smoke = def.Smoke
	}
	return &m, nil
}

// Exp returns the declared config for an experiment id, or an empty
// config (all defaults) when the matrix does not mention it.
func (m *Matrix) Exp(id string) *ExpConfig {
	for i := range m.Experiments {
		if m.Experiments[i].ID == id {
			return &m.Experiments[i]
		}
	}
	return &ExpConfig{ID: id}
}

// Sizes resolves the program-size sweep for one experiment.
func (m *Matrix) Sizes(e *ExpConfig, quick bool) []int {
	if quick {
		if e != nil && len(e.QuickSizes) > 0 {
			return e.QuickSizes
		}
		return m.Defaults.QuickSizes
	}
	if e != nil && len(e.Sizes) > 0 {
		return e.Sizes
	}
	return m.Defaults.Sizes
}

// Seeds resolves the per-configuration seed count for one experiment.
func (m *Matrix) Seeds(e *ExpConfig) int {
	if e != nil && e.Seeds > 0 {
		return e.Seeds
	}
	return m.Defaults.Seeds
}

// Repeats resolves how many times one experiment runs per invocation.
func (m *Matrix) Repeats(e *ExpConfig) int {
	if e != nil && e.Repeats > 0 {
		return e.Repeats
	}
	if m.Defaults.Repeats > 0 {
		return m.Defaults.Repeats
	}
	return 1
}

// Param resolves a named workload knob: the quick override map wins in
// quick mode, then the full map, then the given built-in fallbacks.
func (e *ExpConfig) Param(key string, quick bool, full, quickDef int) int {
	if e != nil {
		if quick {
			if v, ok := e.QuickParams[key]; ok {
				return v
			}
		} else if v, ok := e.Params[key]; ok {
			return v
		}
	}
	if quick {
		return quickDef
	}
	return full
}

// ClientsOr returns the declared client-concurrency sweep or def.
func (e *ExpConfig) ClientsOr(def []int) []int {
	if e != nil && len(e.Clients) > 0 {
		return e.Clients
	}
	return def
}

// ReplicasOr returns the declared replica sweep or def.
func (e *ExpConfig) ReplicasOr(def []int) []int {
	if e != nil && len(e.Replicas) > 0 {
		return e.Replicas
	}
	return def
}

// StoreModesOr returns the declared store-mode set or def.
func (e *ExpConfig) StoreModesOr(def []string) []string {
	if e != nil && len(e.StoreModes) > 0 {
		return e.StoreModes
	}
	return def
}
