package bench

import (
	"fmt"
	"regexp"
	"strings"
)

// Generated-block markers. Everything between a begin/end pair is
// owned by the renderer; the surrounding prose stays hand-written.
//
//	<!-- generated:begin exp:C1 -->
//	| series | ... |
//	<!-- generated:end exp:C1 -->
const (
	beginMarkerFmt = "<!-- generated:begin %s -->"
	endMarkerFmt   = "<!-- generated:end %s -->"
)

var markerRe = regexp.MustCompile(`<!-- generated:begin ([A-Za-z0-9:._-]+) -->`)

// ListGenerated returns the names of every generated block declared in
// a document, in order of appearance.
func ListGenerated(doc []byte) []string {
	var names []string
	for _, m := range markerRe.FindAllSubmatch(doc, -1) {
		names = append(names, string(m[1]))
	}
	return names
}

// SpliceGenerated replaces the named generated block's content,
// returning the new document and whether it changed. The begin and
// end marker lines stay; content (which must end with a newline) is
// placed verbatim between them. Splicing identical content is a no-op
// byte-for-byte, which is what makes regeneration idempotent.
func SpliceGenerated(doc []byte, name, content string) ([]byte, bool, error) {
	begin := fmt.Sprintf(beginMarkerFmt, name)
	end := fmt.Sprintf(endMarkerFmt, name)
	s := string(doc)
	bi := strings.Index(s, begin)
	if bi < 0 {
		return nil, false, fmt.Errorf("generated block %q: begin marker not found", name)
	}
	rest := s[bi+len(begin):]
	ei := strings.Index(rest, end)
	if ei < 0 {
		return nil, false, fmt.Errorf("generated block %q: end marker not found", name)
	}
	if !strings.HasSuffix(content, "\n") {
		content += "\n"
	}
	out := s[:bi+len(begin)] + "\n" + content + s[bi+len(begin)+ei:]
	return []byte(out), out != s, nil
}

// SpliceAll updates every generated block declared in the document
// from the blocks map, erroring on blocks the renderer does not know
// (a typo in a marker would otherwise silently freeze stale content).
// It returns the new document and whether anything changed.
func SpliceAll(doc []byte, blocks map[string]string) ([]byte, bool, error) {
	changed := false
	for _, name := range ListGenerated(doc) {
		content, ok := blocks[name]
		if !ok {
			return nil, false, fmt.Errorf("generated block %q: no renderer for it", name)
		}
		next, ch, err := SpliceGenerated(doc, name, content)
		if err != nil {
			return nil, false, err
		}
		doc, changed = next, changed || ch
	}
	return doc, changed, nil
}
