package verify

import (
	"fmt"
	"sort"
	"strings"

	"pdce/internal/cfg"
	"pdce/internal/ir"
)

// IsAcyclic reports whether g contains no directed cycle.
func IsAcyclic(g *cfg.Graph) bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, g.NumNodes())
	var visit func(n *cfg.Node) bool
	visit = func(n *cfg.Node) bool {
		color[n.ID] = gray
		for _, s := range n.Succs() {
			switch color[s.ID] {
			case gray:
				return false
			case white:
				if !visit(s) {
					return false
				}
			}
		}
		color[n.ID] = black
		return true
	}
	return visit(g.Start)
}

// PathProfile maps a branch-decision sequence (the identity of a
// complete s→e path; Definition 3.6 footnote 5: the preserved
// branching structure makes paths of the original and transformed
// program correspond) to the number of occurrences of each assignment
// pattern along that path.
type PathProfile map[string]map[ir.Pattern]int

// EnumerateProfiles walks every s→e path of an acyclic graph and
// returns its profile. It returns an error for cyclic graphs or when
// more than maxPaths paths exist (0 selects 1 << 16).
func EnumerateProfiles(g *cfg.Graph, maxPaths int) (PathProfile, error) {
	if !IsAcyclic(g) {
		return nil, fmt.Errorf("verify: graph %q is cyclic; path profiles require an acyclic graph", g.Name)
	}
	if maxPaths <= 0 {
		maxPaths = 1 << 16
	}
	prof := PathProfile{}
	var decisions []string
	counts := map[ir.Pattern]int{}

	var walk func(n *cfg.Node) error
	walk = func(n *cfg.Node) error {
		local := make([]ir.Pattern, 0, len(n.Stmts))
		for _, s := range n.Stmts {
			if p, ok := ir.PatternOf(s); ok {
				counts[p]++
				local = append(local, p)
			}
		}
		defer func() {
			for _, p := range local {
				counts[p]--
			}
		}()
		if n == g.End {
			if len(prof) >= maxPaths {
				return fmt.Errorf("verify: more than %d paths", maxPaths)
			}
			key := strings.Join(decisions, ",")
			snapshot := make(map[ir.Pattern]int)
			for p, c := range counts {
				if c > 0 {
					snapshot[p] = c
				}
			}
			prof[key] = snapshot
			return nil
		}
		succs := n.Succs()
		for i, s := range succs {
			// Only genuine branch points contribute to the
			// path identity: single-successor hops (including
			// through synthetic nodes) are invisible, which is
			// what lets profiles of the original and the
			// transformed graph share keys.
			if len(succs) > 1 {
				decisions = append(decisions, fmt.Sprint(i))
			}
			if err := walk(s); err != nil {
				return err
			}
			if len(succs) > 1 {
				decisions = decisions[:len(decisions)-1]
			}
		}
		return nil
	}
	if err := walk(g.Start); err != nil {
		return nil, err
	}
	return prof, nil
}

// BetterOrEqual implements Definition 3.6 on acyclic graphs: a is at
// least as good as b when on every path p and for every assignment
// pattern α, the number of occurrences of α on p in a is at most that
// in b. It returns the list of witnesses against the relation (empty
// when a ⊒ b holds).
func BetterOrEqual(a, b *cfg.Graph, maxPaths int) ([]string, error) {
	pa, err := EnumerateProfiles(a, maxPaths)
	if err != nil {
		return nil, err
	}
	pb, err := EnumerateProfiles(b, maxPaths)
	if err != nil {
		return nil, err
	}
	var bad []string
	keys := make([]string, 0, len(pa))
	for k := range pa {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		cb, ok := pb[k]
		if !ok {
			bad = append(bad, fmt.Sprintf("path [%s] exists only in the first graph (branching structure changed)", k))
			continue
		}
		for p, na := range pa[k] {
			if na > cb[p] {
				bad = append(bad, fmt.Sprintf("path [%s]: pattern %q occurs %d times, %d in comparison", k, p, na, cb[p]))
			}
		}
	}
	for k := range pb {
		if _, ok := pa[k]; !ok {
			bad = append(bad, fmt.Sprintf("path [%s] exists only in the second graph (branching structure changed)", k))
		}
	}
	return bad, nil
}
