package verify

import (
	"fmt"

	"pdce/internal/cfg"
	"pdce/internal/interp"
)

// EnumerateDecisions walks the complete tree of nondeterministic
// branch decisions of g, bounded by fuel per execution and maxRuns in
// total, and returns every decision sequence that drives one complete
// execution. For acyclic programs this is the exact set of program
// paths; for cyclic programs the fuel bound truncates infinite
// branches (truncated runs are still returned — their sequences replay
// deterministically either way).
//
// The enumeration works by prefix extension: a run is performed with a
// candidate prefix; if the interpreter consumed the whole prefix and
// asked for more, the prefix forks into one child per successor
// choice.
func EnumerateDecisions(g *cfg.Graph, fuel, maxRuns int) ([][]int, error) {
	if fuel <= 0 {
		fuel = interp.DefaultFuel
	}
	var complete [][]int
	queue := [][]int{{}}
	runs := 0
	for len(queue) > 0 {
		prefix := queue[0]
		queue = queue[1:]
		runs++
		if maxRuns > 0 && runs > maxRuns {
			return nil, fmt.Errorf("verify: more than %d executions while enumerating decisions", maxRuns)
		}
		oracle := &countingOracle{decisions: prefix}
		interp.Run(g, oracle, interp.Config{MaxBlockVisits: fuel})
		if oracle.extended {
			// The run needed more decisions than the prefix
			// held: fork on the first missing choice.
			for c := 0; c < oracle.firstWidth; c++ {
				child := make([]int, len(prefix)+1)
				copy(child, prefix)
				child[len(prefix)] = c
				queue = append(queue, child)
			}
			continue
		}
		complete = append(complete, prefix)
	}
	return complete, nil
}

// countingOracle replays a fixed prefix and records whether the
// execution needed more decisions (and how wide the first missing
// choice point was).
type countingOracle struct {
	decisions  []int
	pos        int
	extended   bool
	firstWidth int
}

func (o *countingOracle) Choose(_ *cfg.Node, numSuccs int) int {
	if o.pos < len(o.decisions) {
		d := o.decisions[o.pos]
		o.pos++
		if d >= numSuccs {
			d = numSuccs - 1
		}
		return d
	}
	if !o.extended {
		o.extended = true
		o.firstWidth = numSuccs
	}
	return 0
}

// CheckTransformedExhaustive verifies orig against opt over EVERY
// nondeterministic execution (up to fuel truncation), rather than a
// random sample — feasible for the paper's figure-sized programs. The
// decision tree is enumerated on the original program; each sequence
// is replayed on both.
func CheckTransformedExhaustive(orig, opt *cfg.Graph, fuel, maxRuns int) (*Report, error) {
	if maxRuns <= 0 {
		maxRuns = 1 << 14
	}
	seqs, err := EnumerateDecisions(orig, fuel, maxRuns)
	if err != nil {
		return nil, err
	}
	rep := &Report{}
	for i, seq := range seqs {
		cfgn := interp.Config{MaxBlockVisits: fuel}
		a := interp.Replay(orig, seq, cfgn)
		b := interp.Replay(opt, seq, cfgn)
		rep.Executions++
		compareTraces(rep, i, a, b, false)
	}
	return rep, nil
}
