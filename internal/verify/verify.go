// Package verify checks the paper's guarantees on concrete program
// pairs:
//
//   - Semantics preservation (Section 3): the transformed program
//     produces the same output trace on the similar execution — the
//     one taking the same branch decisions — with the single permitted
//     exception that run-time errors may be *reduced* (an eliminated
//     or postponed assignment no longer faults).
//   - Non-impairment (guarantee below Definition 3.6): on every
//     execution, the transformed program executes at most as many
//     instances of every assignment pattern as the original.
//   - The static "better" relation of Definition 3.6, decidable by
//     path enumeration on acyclic graphs.
package verify

import (
	"fmt"

	"pdce/internal/cfg"
	"pdce/internal/interp"
	"pdce/internal/ir"
)

// Report collects the findings of an equivalence check.
type Report struct {
	// Executions is the number of sampled executions.
	Executions int
	// Violations lists hard failures (semantics changes or
	// impairments); empty means the pair passed.
	Violations []string
	// FaultReductions counts executions on which the original
	// faulted but the transformed program kept going — a permitted
	// semantics change.
	FaultReductions int
	// Truncated counts executions where fuel ran out and only the
	// output prefix was compared.
	Truncated int
}

// OK reports whether no violation was found.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// String summarizes the report.
func (r *Report) String() string {
	if r.OK() {
		return fmt.Sprintf("ok: %d executions (%d truncated, %d fault reductions)",
			r.Executions, r.Truncated, r.FaultReductions)
	}
	return fmt.Sprintf("FAILED: %d violations in %d executions; first: %s",
		len(r.Violations), r.Executions, r.Violations[0])
}

// Options configures an equivalence check.
type Options struct {
	// Seeds is the number of random executions to sample
	// (default 64).
	Seeds int
	// Fuel bounds each execution in block visits (default
	// interp.DefaultFuel).
	Fuel int
	// Inputs optionally supplies initial stores to cycle through.
	Inputs []map[ir.Var]int64
	// OutputsOnly skips the non-impairment (assignment count)
	// comparison, checking observable behaviour only. Required for
	// transformations that legitimately rename or add assignments,
	// such as lazy code motion's temporaries.
	OutputsOnly bool
}

// CheckTransformed verifies that opt is a valid result of partial dead
// code elimination applied to orig: semantics preserved (modulo fault
// reduction) and no execution impaired.
func CheckTransformed(orig, opt *cfg.Graph, o Options) *Report {
	if o.Seeds <= 0 {
		o.Seeds = 64
	}
	if o.Fuel <= 0 {
		o.Fuel = interp.DefaultFuel
	}
	if len(o.Inputs) == 0 {
		o.Inputs = []map[ir.Var]int64{nil}
	}
	rep := &Report{}
	for s := 0; s < o.Seeds; s++ {
		input := o.Inputs[s%len(o.Inputs)]
		cfgn := interp.Config{MaxBlockVisits: o.Fuel, Input: input}
		a := interp.Run(orig, interp.NewSeededOracle(uint64(s)*2654435761+1), cfgn)
		b := interp.Replay(opt, a.Decisions, cfgn)
		rep.Executions++
		compareTraces(rep, s, a, b, o.OutputsOnly)
	}
	return rep
}

func compareTraces(rep *Report, seed int, a, b *interp.Trace, outputsOnly bool) {
	fail := func(format string, args ...any) {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("seed %d: %s", seed, fmt.Sprintf(format, args...)))
	}

	truncated := a.Outcome == interp.OutOfFuel || b.Outcome == interp.OutOfFuel
	if truncated {
		rep.Truncated++
		// Fuel is counted in block visits, which differ between
		// the two graphs (synthetic nodes), so only the common
		// output prefix is comparable.
		if !interp.PrefixOutputsEqual(a, b) {
			fail("output prefixes diverge: %v vs %v", a.Outputs, b.Outputs)
		}
		return
	}

	switch a.Outcome {
	case interp.Terminated:
		if b.Outcome == interp.Faulted {
			fail("transformed program introduced a run-time error: %v at node %s", b.Err, b.FaultNode)
			return
		}
		if !interp.OutputsEqual(a, b) {
			fail("outputs differ: %v vs %v", a.Outputs, b.Outputs)
			return
		}
	case interp.Faulted:
		// The original faulted. The transformation may remove or
		// postpone the fault; everything observed before the
		// original fault must be preserved.
		if !prefixOf(a.Outputs, b.Outputs) {
			fail("outputs before original fault not preserved: %v vs %v", a.Outputs, b.Outputs)
			return
		}
		if b.Outcome != interp.Faulted || len(b.Outputs) != len(a.Outputs) {
			rep.FaultReductions++
		}
		// Assignment counts are incomparable across a fault
		// divergence (the runs have different lengths).
		return
	}

	if outputsOnly {
		return
	}

	// Non-impairment: per-pattern executed instances must not grow.
	for p, nb := range b.PatternExecs {
		if na := a.PatternExecs[p]; nb > na {
			fail("pattern %q impaired: executed %d times, originally %d", p, nb, na)
		}
	}
	if b.AssignExecs > a.AssignExecs {
		fail("total assignment executions grew: %d vs %d", b.AssignExecs, a.AssignExecs)
	}
}

func prefixOf(short, long []int64) bool {
	if len(short) > len(long) {
		return false
	}
	for i, x := range short {
		if long[i] != x {
			return false
		}
	}
	return true
}

// CountImprovement summarizes, over sampled executions, how many
// assignment instances the transformation saved — the quantity the
// paper's Definition 3.6 orders programs by. Positive totals mean opt
// executes fewer assignments.
type CountImprovement struct {
	Executions              int
	OrigAssigns, OptAssigns int
}

// Savings returns the fraction of dynamic assignment executions
// removed (0 when the original executed none).
func (c CountImprovement) Savings() float64 {
	if c.OrigAssigns == 0 {
		return 0
	}
	return 1 - float64(c.OptAssigns)/float64(c.OrigAssigns)
}

// MeasureImprovement samples executions and accumulates dynamic
// assignment counts for both programs. Faulting and out-of-fuel
// executions are skipped (counts are incomparable there).
func MeasureImprovement(orig, opt *cfg.Graph, seeds, fuel int) CountImprovement {
	if fuel <= 0 {
		fuel = interp.DefaultFuel
	}
	var c CountImprovement
	for s := 0; s < seeds; s++ {
		cfgn := interp.Config{MaxBlockVisits: fuel}
		a := interp.Run(orig, interp.NewSeededOracle(uint64(s)*2654435761+1), cfgn)
		if a.Outcome != interp.Terminated {
			continue
		}
		b := interp.Replay(opt, a.Decisions, cfgn)
		if b.Outcome != interp.Terminated {
			continue
		}
		c.Executions++
		c.OrigAssigns += a.AssignExecs
		c.OptAssigns += b.AssignExecs
	}
	return c
}
