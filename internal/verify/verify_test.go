package verify

import (
	"fmt"
	"strings"
	"testing"

	"pdce/internal/parser"
)

func TestCheckTransformedIdentity(t *testing.T) {
	g := parser.MustParseSource("p", `
x := a + b
if * { out(x) } else { out(0) }
`)
	rep := CheckTransformed(g, g.Clone(), Options{Seeds: 16})
	if !rep.OK() {
		t.Fatalf("identity transformation flagged: %s", rep)
	}
	if rep.Executions != 16 {
		t.Errorf("Executions = %d", rep.Executions)
	}
}

func TestCheckTransformedCatchesOutputChange(t *testing.T) {
	g := parser.MustParseSource("p", `out(1)`)
	h := parser.MustParseSource("p", `out(2)`)
	rep := CheckTransformed(g, h, Options{Seeds: 4})
	if rep.OK() {
		t.Fatal("changed output not detected")
	}
	if !strings.Contains(rep.Violations[0], "outputs differ") {
		t.Errorf("violation = %q", rep.Violations[0])
	}
}

func TestCheckTransformedCatchesImpairment(t *testing.T) {
	// "Optimized" program executes the assignment on both branches
	// instead of one — a Definition 3.6 impairment even though the
	// outputs agree.
	orig := parser.MustParseCFG(`
node 0 {}
node 1 { x := a+b; out(x) }
node 2 { out(a+b) }
node 3 {}
edge s 0
edge 0 1
edge 0 2
edge 1 3
edge 2 3
edge 3 e
`)
	worse := parser.MustParseCFG(`
node 0 { x := a+b }
node 1 { out(x) }
node 2 { out(a+b) }
node 3 {}
edge s 0
edge 0 1
edge 0 2
edge 1 3
edge 2 3
edge 3 e
`)
	rep := CheckTransformed(orig, worse, Options{Seeds: 32})
	if rep.OK() {
		t.Fatal("impairment not detected")
	}
	found := false
	for _, v := range rep.Violations {
		if strings.Contains(v, "impaired") {
			found = true
		}
	}
	if !found {
		t.Errorf("no impairment violation in %v", rep.Violations)
	}
	// OutputsOnly mode must accept the pair (outputs agree).
	rep2 := CheckTransformed(orig, worse, Options{Seeds: 32, OutputsOnly: true})
	if !rep2.OK() {
		t.Errorf("OutputsOnly flagged an output-equivalent pair: %s", rep2)
	}
}

func TestCheckTransformedFaultReductionPermitted(t *testing.T) {
	orig := parser.MustParseSource("p", `
z := 0
x := 1 / z
out(5)
`)
	// The faulting assignment eliminated: execution now succeeds.
	opt := parser.MustParseSource("p", `
z := 0
out(5)
`)
	rep := CheckTransformed(orig, opt, Options{Seeds: 4})
	if !rep.OK() {
		t.Fatalf("fault reduction flagged as violation: %s", rep)
	}
	if rep.FaultReductions == 0 {
		t.Error("fault reduction not counted")
	}
}

func TestCheckTransformedFaultIntroductionRejected(t *testing.T) {
	orig := parser.MustParseSource("p", `
z := 0
out(5)
`)
	opt := parser.MustParseSource("p", `
z := 0
x := 1 / z
out(5)
`)
	rep := CheckTransformed(orig, opt, Options{Seeds: 4})
	if rep.OK() {
		t.Fatal("introduced fault not detected")
	}
	if !strings.Contains(rep.Violations[0], "introduced a run-time error") {
		t.Errorf("violation = %q", rep.Violations[0])
	}
}

func TestCheckTransformedTruncatedRuns(t *testing.T) {
	// A loop that never terminates on a concrete condition: every
	// execution runs out of fuel.
	g := parser.MustParseSource("p", `
while 1 > 0 { out(1) }
out(2)
`)
	rep := CheckTransformed(g, g.Clone(), Options{Seeds: 8, Fuel: 16})
	if !rep.OK() {
		t.Fatalf("identical diverging programs flagged: %s", rep)
	}
	if rep.Truncated == 0 {
		t.Error("no truncated executions recorded despite tiny fuel")
	}
}

func TestIsAcyclic(t *testing.T) {
	acyclic := parser.MustParseSource("p", `
if * { out(1) } else { out(2) }
`)
	if !IsAcyclic(acyclic) {
		t.Error("diamond reported cyclic")
	}
	cyclic := parser.MustParseSource("p", `
while * { skip }
out(1)
`)
	if IsAcyclic(cyclic) {
		t.Error("loop reported acyclic")
	}
}

func TestEnumerateProfiles(t *testing.T) {
	g := parser.MustParseCFG(`
node 0 {}
node 1 { x := a+b }
node 2 {}
node 3 { out(x) }
edge s 0
edge 0 1
edge 0 2
edge 1 3
edge 2 3
edge 3 e
`)
	prof, err := EnumerateProfiles(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof) != 2 {
		t.Fatalf("profiles = %v, want 2 paths", prof)
	}
	// Path through node 1 (decision 0) carries one occurrence.
	p0, ok := prof["0"]
	if !ok {
		t.Fatalf("no path keyed 0: %v", prof)
	}
	total := 0
	for _, c := range p0 {
		total += c
	}
	if total != 1 {
		t.Errorf("path 0 pattern count = %d, want 1", total)
	}
	if counts := prof["1"]; len(counts) != 0 {
		t.Errorf("path 1 counts = %v, want none", counts)
	}
}

func TestEnumerateProfilesRejectsCycles(t *testing.T) {
	g := parser.MustParseSource("p", `
while * { skip }
out(1)
`)
	if _, err := EnumerateProfiles(g, 0); err == nil {
		t.Error("cycle not rejected")
	}
}

func TestEnumerateProfilesPathLimit(t *testing.T) {
	// 2^12 paths exceed a limit of 100.
	src := "out(1)\n"
	for i := 0; i < 12; i++ {
		src = "if * { skip } else { skip }\n" + src
	}
	g, err := parser.ParseSource("p", src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EnumerateProfiles(g, 100); err == nil {
		t.Error("path explosion not reported")
	}
}

func TestBetterOrEqual(t *testing.T) {
	orig := parser.MustParseCFG(`
node 0 {}
node 1 { x := a+b; out(x) }
node 2 { x := a+b }
node 3 {}
edge s 0
edge 0 1
edge 0 2
edge 1 3
edge 2 3
edge 3 e
`)
	// The version with the dead occurrence on path 2 removed.
	better := parser.MustParseCFG(`
node 0 {}
node 1 { x := a+b; out(x) }
node 2 {}
node 3 {}
edge s 0
edge 0 1
edge 0 2
edge 1 3
edge 2 3
edge 3 e
`)
	if bad, err := BetterOrEqual(better, orig, 0); err != nil || len(bad) > 0 {
		t.Errorf("better ⊒ orig rejected: %v %v", bad, err)
	}
	// The reverse direction must fail: orig has an extra occurrence
	// on the path through node 2.
	bad, err := BetterOrEqual(orig, better, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) == 0 {
		t.Error("orig ⊒ better accepted; the relation is not symmetric here")
	}
}

func TestMeasureImprovement(t *testing.T) {
	orig := parser.MustParseSource("p", `
x := a + b
y := c + d
out(x)
`)
	opt := parser.MustParseSource("p", `
x := a + b
out(x)
`)
	imp := MeasureImprovement(orig, opt, 8, 0)
	if imp.Executions != 8 {
		t.Errorf("Executions = %d", imp.Executions)
	}
	if imp.Savings() <= 0.49 || imp.Savings() >= 0.51 {
		t.Errorf("Savings = %f, want 0.5", imp.Savings())
	}
}

func TestReportString(t *testing.T) {
	r := &Report{Executions: 3}
	if !strings.Contains(r.String(), "ok") {
		t.Error("ok report misrendered")
	}
	r.Violations = append(r.Violations, "boom")
	if !strings.Contains(r.String(), "FAILED") {
		t.Error("failing report misrendered")
	}
}

// --- exhaustive enumeration -------------------------------------------

func TestEnumerateDecisionsDiamond(t *testing.T) {
	g := parser.MustParseSource("p", `
if * { out(1) } else { out(2) }
if * { out(3) } else { out(4) }
`)
	seqs, err := EnumerateDecisions(g, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 4 {
		t.Fatalf("enumerated %d executions, want 4: %v", len(seqs), seqs)
	}
	seen := map[string]bool{}
	for _, s := range seqs {
		seen[fmt.Sprint(s)] = true
	}
	for _, want := range []string{"[0 0]", "[0 1]", "[1 0]", "[1 1]"} {
		if !seen[want] {
			t.Errorf("missing decision sequence %s", want)
		}
	}
}

func TestEnumerateDecisionsStraightLine(t *testing.T) {
	g := parser.MustParseSource("p", `out(1)`)
	seqs, err := EnumerateDecisions(g, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 1 || len(seqs[0]) != 0 {
		t.Fatalf("want one empty sequence, got %v", seqs)
	}
}

func TestEnumerateDecisionsLoopTruncated(t *testing.T) {
	// A nondeterministic loop has unboundedly many decision
	// sequences; the fuel bound makes the tree finite.
	g := parser.MustParseSource("p", `
while * { skip }
out(1)
`)
	seqs, err := EnumerateDecisions(g, 12, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) < 4 {
		t.Errorf("loop enumeration suspiciously small: %d", len(seqs))
	}
}

func TestEnumerateDecisionsRunCap(t *testing.T) {
	src := "out(1)\n"
	for i := 0; i < 10; i++ {
		src = "if * { skip } else { skip }\n" + src
	}
	g, err := parser.ParseSource("p", src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EnumerateDecisions(g, 0, 100); err == nil {
		t.Error("run cap not enforced")
	}
}

func TestCheckTransformedExhaustive(t *testing.T) {
	orig := parser.MustParseSource("p", `
y := a + b
if * { y := c }
out(x + y)
`)
	// A correct optimization passes...
	good := parser.MustParseCFG(`
node b1 {}
node b2 { y := c }
node b3 { y := a+b }
node b4 { out(x+y) }
edge s b1
edge b1 b2
edge b1 b3
edge b2 b4
edge b3 b4
edge b4 e
`)
	rep, err := CheckTransformedExhaustive(orig, good, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || rep.Executions != 2 {
		t.Fatalf("good pair rejected: %s (execs=%d)", rep, rep.Executions)
	}
	// ...and an output-changing one fails (the changed branch writes
	// a different constant, observable even under the default
	// all-zero environment).
	bad := parser.MustParseSource("p", `
y := a + b
if * { y := c + 5 }
out(x + y)
`)
	rep2, err := CheckTransformedExhaustive(orig, bad, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.OK() {
		t.Error("semantics change not caught exhaustively")
	}
}
