package cfg

import (
	"fmt"
	"strings"
)

// DOT renders the graph in Graphviz dot syntax, in the visual style of
// the paper's figures: rectangular nodes listing their statements,
// synthetic nodes dashed. Useful with `cmd/pdce -dot`.
func DOT(g *Graph) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", g.Name)
	sb.WriteString("  node [shape=box, fontname=\"monospace\"];\n")
	for _, n := range g.nodes {
		var body string
		if n.IsEmpty() {
			body = n.Label
		} else {
			var lines []string
			for _, s := range n.Stmts {
				lines = append(lines, escapeDOT(s.String()))
			}
			body = n.Label + `\n` + strings.Join(lines, `\n`)
		}
		attrs := fmt.Sprintf("label=\"%s\"", body)
		if n.Synthetic {
			attrs += ", style=dashed"
		}
		if n == g.Start || n == g.End {
			attrs += ", shape=ellipse"
		}
		fmt.Fprintf(&sb, "  %q [%s];\n", n.Label, attrs)
	}
	for _, e := range g.Edges() {
		label := ""
		if _, isBranch := e.From.Terminator(); isBranch {
			if e.From.succs[0] == e.To {
				label = " [label=\"T\"]"
			} else {
				label = " [label=\"F\"]"
			}
		}
		fmt.Fprintf(&sb, "  %q -> %q%s;\n", e.From.Label, e.To.Label, label)
	}
	sb.WriteString("}\n")
	return sb.String()
}

func escapeDOT(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return s
}
