package cfg

// DomTree holds the immediate-dominator relation of a graph, computed
// with the iterative algorithm of Cooper, Harvey and Kennedy ("A
// Simple, Fast Dominance Algorithm"). It is the substrate for the SSA
// construction used by the def-use-based dead code elimination
// baseline (Cytron et al., reference [5] of the paper).
type DomTree struct {
	g *Graph
	// idom[id] is the immediate dominator of node id; idom of Start
	// is Start itself; nil for unreachable nodes.
	idom []*Node
	// children of each node in the dominator tree.
	children [][]*Node
	// rpoIndex[id] is the node's position in reverse postorder, or
	// -1 for unreachable nodes.
	rpoIndex []int
}

// BuildDomTree computes the dominator tree of the subgraph reachable
// from Start.
func BuildDomTree(g *Graph) *DomTree {
	rpo := ReversePostorder(g)
	t := &DomTree{
		g:        g,
		idom:     make([]*Node, len(g.nodes)),
		children: make([][]*Node, len(g.nodes)),
		rpoIndex: make([]int, len(g.nodes)),
	}
	for i := range t.rpoIndex {
		t.rpoIndex[i] = -1
	}
	for i, n := range rpo {
		t.rpoIndex[n.ID] = i
	}
	t.idom[g.Start.ID] = g.Start
	for changed := true; changed; {
		changed = false
		for _, n := range rpo {
			if n == g.Start {
				continue
			}
			var newIdom *Node
			for _, p := range n.preds {
				if t.idom[p.ID] == nil {
					continue // p not yet processed / unreachable
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = t.intersect(p, newIdom)
				}
			}
			if newIdom != nil && t.idom[n.ID] != newIdom {
				t.idom[n.ID] = newIdom
				changed = true
			}
		}
	}
	for _, n := range rpo {
		if n == g.Start {
			continue
		}
		if d := t.idom[n.ID]; d != nil {
			t.children[d.ID] = append(t.children[d.ID], n)
		}
	}
	return t
}

func (t *DomTree) intersect(a, b *Node) *Node {
	for a != b {
		for t.rpoIndex[a.ID] > t.rpoIndex[b.ID] {
			a = t.idom[a.ID]
		}
		for t.rpoIndex[b.ID] > t.rpoIndex[a.ID] {
			b = t.idom[b.ID]
		}
	}
	return a
}

// IDom returns the immediate dominator of n (Start for Start itself;
// nil for nodes unreachable from Start).
func (t *DomTree) IDom(n *Node) *Node {
	if n == t.g.Start {
		return t.g.Start
	}
	return t.idom[n.ID]
}

// Children returns n's children in the dominator tree.
func (t *DomTree) Children(n *Node) []*Node { return t.children[n.ID] }

// Dominates reports whether a dominates b (reflexively).
func (t *DomTree) Dominates(a, b *Node) bool {
	if t.rpoIndex[b.ID] < 0 {
		return false
	}
	for {
		if a == b {
			return true
		}
		if b == t.g.Start {
			return false
		}
		b = t.idom[b.ID]
		if b == nil {
			return false
		}
	}
}

// Reducible reports whether the subgraph reachable from Start is
// reducible: every retreating edge (an edge u→v with v at or before u
// in reverse postorder) is a true back edge, i.e. its target dominates
// its source. On a reducible graph a round-robin pass order in reverse
// postorder converges in O(loop-nesting-depth) sweeps (Hecht/Ullman);
// the sparse/dense solver selection uses this as its structural gate,
// since the bound — and the priority worklist's pass guarantee — does
// not hold for irreducible regions like the paper's Figure 5.
func Reducible(g *Graph) bool {
	t := BuildDomTree(g)
	for _, u := range g.nodes {
		if t.rpoIndex[u.ID] < 0 {
			continue // unreachable
		}
		for _, v := range u.succs {
			if t.rpoIndex[v.ID] <= t.rpoIndex[u.ID] && !t.Dominates(v, u) {
				return false
			}
		}
	}
	return true
}

// DominanceFrontiers computes DF(n) for every reachable node, per
// Cooper-Harvey-Kennedy: for each join node j and predecessor p, every
// node on the idom-chain from p up to (but excluding) idom(j) has j in
// its frontier.
func (t *DomTree) DominanceFrontiers() map[*Node][]*Node {
	df := make(map[*Node][]*Node)
	in := make(map[*Node]map[*Node]bool)
	add := func(n, j *Node) {
		if in[n] == nil {
			in[n] = make(map[*Node]bool)
		}
		if !in[n][j] {
			in[n][j] = true
			df[n] = append(df[n], j)
		}
	}
	for _, j := range t.g.nodes {
		if t.rpoIndex[j.ID] < 0 || len(j.preds) < 2 {
			continue
		}
		for _, p := range j.preds {
			if t.rpoIndex[p.ID] < 0 {
				continue
			}
			runner := p
			for runner != t.idom[j.ID] && runner != nil {
				add(runner, j)
				if runner == t.g.Start {
					break
				}
				runner = t.idom[runner.ID]
			}
		}
	}
	return df
}
