package cfg

// ReversePostorder returns the nodes reachable from Start in reverse
// postorder of a depth-first search — the canonical iteration order
// for forward dataflow problems (predecessors tend to precede
// successors, so round-robin passes converge quickly even on the
// irreducible graphs the paper's Figure 5 exercises).
func ReversePostorder(g *Graph) []*Node {
	post := postorder(g)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Postorder returns the nodes reachable from Start in DFS postorder —
// the preferred order for backward dataflow problems.
func Postorder(g *Graph) []*Node {
	return postorder(g)
}

func postorder(g *Graph) []*Node {
	seen := make([]bool, len(g.nodes))
	var out []*Node
	// Iterative DFS; generated stress programs can be deep enough
	// to make recursion risky.
	type frame struct {
		n    *Node
		next int
	}
	stack := []frame{{n: g.Start}}
	seen[g.Start.ID] = true
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		if top.next < len(top.n.succs) {
			s := top.n.succs[top.next]
			top.next++
			if !seen[s.ID] {
				seen[s.ID] = true
				stack = append(stack, frame{n: s})
			}
			continue
		}
		out = append(out, top.n)
		stack = stack[:len(stack)-1]
	}
	return out
}

// ReachableFromStart returns, indexed by NodeID, whether each node is
// reachable from Start.
func ReachableFromStart(g *Graph) []bool {
	seen := make([]bool, len(g.nodes))
	var stack []*Node
	push := func(n *Node) {
		if !seen[n.ID] {
			seen[n.ID] = true
			stack = append(stack, n)
		}
	}
	push(g.Start)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range n.succs {
			push(s)
		}
	}
	return seen
}

// ReachesEnd returns, indexed by NodeID, whether each node can reach
// End.
func ReachesEnd(g *Graph) []bool {
	seen := make([]bool, len(g.nodes))
	var stack []*Node
	push := func(n *Node) {
		if !seen[n.ID] {
			seen[n.ID] = true
			stack = append(stack, n)
		}
	}
	push(g.End)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range n.preds {
			push(p)
		}
	}
	return seen
}
