package cfg

import "testing"

// chain builds s -> nodes... -> e and returns the named nodes.
func edges(g *Graph, pairs ...[2]*Node) {
	for _, p := range pairs {
		g.AddEdge(p[0], p[1])
	}
}

func TestReducibleStructured(t *testing.T) {
	// Diamond feeding a natural loop: reducible.
	g := New("structured")
	a, b, c, d := g.AddNode("a"), g.AddNode("b"), g.AddNode("c"), g.AddNode("d")
	l := g.AddNode("l")
	edges(g,
		[2]*Node{g.Start, a},
		[2]*Node{a, b}, [2]*Node{a, c},
		[2]*Node{b, d}, [2]*Node{c, d},
		[2]*Node{d, l}, [2]*Node{l, d}, // natural loop with header d
		[2]*Node{l, g.End},
	)
	MustValidate(g)
	if !Reducible(g) {
		t.Error("structured graph reported irreducible")
	}
}

func TestReducibleSelfLoop(t *testing.T) {
	g := New("selfloop")
	a := g.AddNode("a")
	edges(g, [2]*Node{g.Start, a}, [2]*Node{a, a}, [2]*Node{a, g.End})
	MustValidate(g)
	if !Reducible(g) {
		t.Error("self loop reported irreducible")
	}
}

func TestIrreducibleTwoEntryLoop(t *testing.T) {
	// The classic two-entry loop: Start branches to both x and y,
	// which form a cycle. Neither dominates the other, so whichever
	// retreating edge the DFS finds cannot be a back edge.
	g := New("irreducible")
	x, y := g.AddNode("x"), g.AddNode("y")
	edges(g,
		[2]*Node{g.Start, x}, [2]*Node{g.Start, y},
		[2]*Node{x, y}, [2]*Node{y, x},
		[2]*Node{x, g.End},
	)
	MustValidate(g)
	if Reducible(g) {
		t.Error("two-entry loop reported reducible")
	}
}
