package cfg

import (
	"strings"
	"testing"

	"pdce/internal/ir"
)

// diamond builds s -> a -> {b, c} -> d -> e.
func diamond(t *testing.T) (*Graph, *Node, *Node, *Node, *Node) {
	t.Helper()
	g := New("diamond")
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	d := g.AddNode("d")
	g.AddEdge(g.Start, a)
	g.AddEdge(a, b)
	g.AddEdge(a, c)
	g.AddEdge(b, d)
	g.AddEdge(c, d)
	g.AddEdge(d, g.End)
	return g, a, b, c, d
}

func TestNewGraphShape(t *testing.T) {
	g := New("t")
	if g.Start.Label != "s" || g.End.Label != "e" {
		t.Fatal("start/end labels wrong")
	}
	if g.NumNodes() != 2 || g.NumEdges() != 0 {
		t.Fatal("fresh graph not empty")
	}
}

func TestDuplicateLabelPanics(t *testing.T) {
	g := New("t")
	g.AddNode("x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate label did not panic")
		}
	}()
	g.AddNode("x")
}

func TestDuplicateEdgePanics(t *testing.T) {
	g := New("t")
	a := g.AddNode("a")
	g.AddEdge(g.Start, a)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate edge did not panic")
		}
	}()
	g.AddEdge(g.Start, a)
}

func TestAdjacency(t *testing.T) {
	g, a, b, c, d := diamond(t)
	if len(a.Succs()) != 2 || a.Succs()[0] != b || a.Succs()[1] != c {
		t.Error("successor order not preserved")
	}
	if len(d.Preds()) != 2 {
		t.Error("preds wrong")
	}
	if !g.HasEdge(a, b) || g.HasEdge(b, a) {
		t.Error("HasEdge wrong")
	}
	if g.NumEdges() != 6 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
}

func TestValidateAcceptsDiamond(t *testing.T) {
	g, _, _, _, _ := diamond(t)
	if errs := Validate(g); len(errs) > 0 {
		t.Fatalf("diamond invalid: %v", errs)
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	contains := func(errs []string, frag string) bool {
		for _, e := range errs {
			if strings.Contains(e, frag) {
				return true
			}
		}
		return false
	}

	// Unreachable node.
	g := New("t")
	a := g.AddNode("a")
	g.AddEdge(g.Start, g.End)
	_ = a
	errs := Validate(g)
	if !contains(errs, "unreachable") {
		t.Errorf("unreachable node not reported: %v", errs)
	}

	// Node that cannot reach the end.
	g2 := New("t2")
	a2 := g2.AddNode("a")
	b2 := g2.AddNode("trap")
	g2.AddEdge(g2.Start, a2)
	g2.AddEdge(a2, g2.End)
	g2.AddEdge(a2, b2)
	g2.AddEdge(b2, b2)
	errs2 := Validate(g2)
	if !contains(errs2, "cannot reach end") {
		t.Errorf("trap node not reported: %v", errs2)
	}

	// Branch statement not last / wrong successor count.
	g3 := New("t3")
	a3 := g3.AddNode("a")
	a3.Stmts = []ir.Stmt{ir.Branch{Cond: ir.V("c")}, ir.Skip{}}
	g3.AddEdge(g3.Start, a3)
	g3.AddEdge(a3, g3.End)
	errs3 := Validate(g3)
	if !contains(errs3, "not last") {
		t.Errorf("misplaced branch not reported: %v", errs3)
	}

	// Statements in start node.
	g4 := New("t4")
	g4.Start.Stmts = []ir.Stmt{ir.Skip{}}
	a4 := g4.AddNode("a")
	g4.AddEdge(g4.Start, a4)
	g4.AddEdge(a4, g4.End)
	errs4 := Validate(g4)
	if !contains(errs4, "start node must be empty") {
		t.Errorf("non-empty start not reported: %v", errs4)
	}
}

func TestCriticalEdgeDetectionAndSplit(t *testing.T) {
	// s -> a -> {b, j}; p -> j: edge a->j is critical.
	g := New("crit")
	a := g.AddNode("a")
	b := g.AddNode("b")
	p := g.AddNode("p")
	j := g.AddNode("j")
	g.AddEdge(g.Start, a)
	g.AddEdge(g.Start, p)
	g.AddEdge(a, b)
	g.AddEdge(a, j)
	g.AddEdge(p, j)
	g.AddEdge(b, g.End)
	g.AddEdge(j, g.End)

	if !IsCriticalEdge(a, j) {
		t.Fatal("a->j should be critical")
	}
	if IsCriticalEdge(a, b) || IsCriticalEdge(p, j) {
		t.Fatal("non-critical edges misclassified")
	}
	// s has two successors and a/p single preds: s->a not critical.
	if IsCriticalEdge(g.Start, a) {
		t.Fatal("s->a should not be critical")
	}
	if CountCriticalEdges(g) != 1 {
		t.Fatalf("CountCriticalEdges = %d", CountCriticalEdges(g))
	}

	inserted := SplitCriticalEdges(g)
	if len(inserted) != 1 {
		t.Fatalf("split %d edges, want 1", len(inserted))
	}
	mid := inserted[0]
	if !mid.Synthetic || mid.Label != "Sa,j" {
		t.Errorf("synthetic node wrong: %q synthetic=%v", mid.Label, mid.Synthetic)
	}
	if g.HasEdge(a, j) {
		t.Error("original critical edge still present")
	}
	if !g.HasEdge(a, mid) || !g.HasEdge(mid, j) {
		t.Error("split edges missing")
	}
	// Successor order of a preserved: b first, then the new node.
	if a.Succs()[0] != b || a.Succs()[1] != mid {
		t.Error("successor order changed by splitting")
	}
	if CountCriticalEdges(g) != 0 {
		t.Error("critical edges remain after splitting")
	}
	MustValidate(g)
}

func TestRemoveEmptySynthetic(t *testing.T) {
	g := New("rs")
	a := g.AddNode("a")
	b := g.AddNode("b")
	p := g.AddNode("p")
	j := g.AddNode("j")
	g.AddEdge(g.Start, a)
	g.AddEdge(g.Start, p)
	g.AddEdge(a, b)
	g.AddEdge(a, j)
	g.AddEdge(p, j)
	g.AddEdge(b, g.End)
	g.AddEdge(j, g.End)
	before := g.Format()
	SplitCriticalEdges(g)
	removed := RemoveEmptySynthetic(g)
	if removed != 1 {
		t.Fatalf("removed %d, want 1", removed)
	}
	if g.Format() != before {
		t.Errorf("split+remove is not the identity:\n%s\nvs\n%s", g.Format(), before)
	}
	MustValidate(g)
}

func TestRemoveEmptySyntheticKeepsNonEmpty(t *testing.T) {
	g := New("rs2")
	a := g.AddNode("a")
	b := g.AddNode("b")
	p := g.AddNode("p")
	j := g.AddNode("j")
	g.AddEdge(g.Start, a)
	g.AddEdge(g.Start, p)
	g.AddEdge(a, b)
	g.AddEdge(a, j)
	g.AddEdge(p, j)
	g.AddEdge(b, g.End)
	g.AddEdge(j, g.End)
	mids := SplitCriticalEdges(g)
	mids[0].Stmts = append(mids[0].Stmts, ir.Assign{LHS: "x", RHS: ir.C(1)})
	if RemoveEmptySynthetic(g) != 0 {
		t.Error("non-empty synthetic node was removed")
	}
}

func TestOrders(t *testing.T) {
	g, a, b, c, d := diamond(t)
	rpo := ReversePostorder(g)
	pos := map[*Node]int{}
	for i, n := range rpo {
		pos[n] = i
	}
	if pos[g.Start] != 0 {
		t.Error("start not first in RPO")
	}
	if !(pos[a] < pos[b] && pos[a] < pos[c] && pos[b] < pos[d] && pos[c] < pos[d] && pos[d] < pos[g.End]) {
		t.Error("RPO does not respect the diamond's topological order")
	}
	po := Postorder(g)
	if po[len(po)-1] != g.Start {
		t.Error("start not last in postorder")
	}
}

func TestReachability(t *testing.T) {
	g, a, _, _, _ := diamond(t)
	from := ReachableFromStart(g)
	to := ReachesEnd(g)
	for _, n := range g.Nodes() {
		if !from[n.ID] || !to[n.ID] {
			t.Errorf("node %s reachability wrong", n.Label)
		}
	}
	_ = a
}

func TestDominators(t *testing.T) {
	g, a, b, c, d := diamond(t)
	dom := BuildDomTree(g)
	if dom.IDom(a) != g.Start {
		t.Error("idom(a) != s")
	}
	if dom.IDom(b) != a || dom.IDom(c) != a {
		t.Error("idom of branches != a")
	}
	if dom.IDom(d) != a {
		t.Error("idom of join != a (should skip b and c)")
	}
	if !dom.Dominates(a, d) || dom.Dominates(b, d) {
		t.Error("Dominates wrong")
	}
	df := dom.DominanceFrontiers()
	if len(df[b]) != 1 || df[b][0] != d {
		t.Errorf("DF(b) = %v, want [d]", df[b])
	}
	if len(df[a]) != 0 {
		t.Errorf("DF(a) = %v, want empty", df[a])
	}
}

func TestDominatorsLoop(t *testing.T) {
	// s -> h; h -> body -> h; h -> x -> e
	g := New("loop")
	h := g.AddNode("h")
	body := g.AddNode("b")
	x := g.AddNode("x")
	g.AddEdge(g.Start, h)
	g.AddEdge(h, body)
	g.AddEdge(h, x)
	g.AddEdge(body, h)
	g.AddEdge(x, g.End)
	dom := BuildDomTree(g)
	if dom.IDom(body) != h || dom.IDom(x) != h {
		t.Error("loop idoms wrong")
	}
	df := dom.DominanceFrontiers()
	// body's frontier is the header it loops back to.
	if len(df[body]) != 1 || df[body][0] != h {
		t.Errorf("DF(body) = %v, want [h]", df[body])
	}
	// h is in its own frontier (it dominates body which re-enters h).
	found := false
	for _, n := range df[h] {
		if n == h {
			found = true
		}
	}
	if !found {
		t.Errorf("DF(h) = %v, want to contain h", df[h])
	}
}

func TestCloneIndependence(t *testing.T) {
	g, a, _, _, _ := diamond(t)
	a.Stmts = []ir.Stmt{ir.Assign{LHS: "x", RHS: ir.C(1)}}
	c := g.Clone()
	if !Equal(g, c) {
		t.Fatal("clone not equal to original")
	}
	ca, _ := c.NodeByLabel("a")
	ca.Stmts = append(ca.Stmts, ir.Skip{})
	if Equal(g, c) {
		t.Fatal("mutating clone affected original (or Equal is broken)")
	}
	if len(a.Stmts) != 1 {
		t.Fatal("original statements changed")
	}
}

func TestDiffReportsAllKinds(t *testing.T) {
	g1, a1, _, _, _ := diamond(t)
	g2 := g1.Clone()
	a1.Stmts = []ir.Stmt{ir.Skip{}}
	diffs := Diff(g1, g2)
	if len(diffs) != 1 || !strings.Contains(diffs[0], "node a") {
		t.Errorf("Diff = %v", diffs)
	}

	g3 := g1.Clone()
	extra := g3.AddNode("z")
	g3.AddEdge(g3.Start, extra)
	g3.AddEdge(extra, g3.End)
	diffs = Diff(g1, g3)
	joined := strings.Join(diffs, "\n")
	if !strings.Contains(joined, "only in second graph") {
		t.Errorf("Diff missed extra node/edges: %v", diffs)
	}
}

func TestFormatRoundTripStable(t *testing.T) {
	g, a, _, _, d := diamond(t)
	a.Stmts = []ir.Stmt{ir.Assign{LHS: "x", RHS: ir.Add(ir.V("a"), ir.V("b"))}}
	d.Stmts = []ir.Stmt{ir.Out{Arg: ir.V("x")}}
	f1 := g.Format()
	f2 := g.Clone().Format()
	if f1 != f2 {
		t.Error("Format not deterministic across clone")
	}
	if !strings.Contains(f1, "x := a+b") || !strings.Contains(f1, "out(x)") {
		t.Errorf("Format missing statements:\n%s", f1)
	}
}

func TestPatternCounts(t *testing.T) {
	g, a, b, _, _ := diamond(t)
	st := ir.Assign{LHS: "x", RHS: ir.Add(ir.V("a"), ir.V("b"))}
	a.Stmts = []ir.Stmt{st}
	b.Stmts = []ir.Stmt{st, ir.Out{Arg: ir.V("x")}}
	counts := PatternCounts(g)
	p, _ := ir.PatternOf(st)
	if counts[p] != 2 {
		t.Errorf("PatternCounts = %v", counts)
	}
}

func TestDOTOutput(t *testing.T) {
	g, a, _, _, _ := diamond(t)
	a.Stmts = []ir.Stmt{ir.Branch{Cond: ir.V("c")}}
	dot := DOT(g)
	for _, frag := range []string{"digraph", `"a" ->`, "label=\"T\"", "label=\"F\""} {
		if !strings.Contains(dot, frag) {
			t.Errorf("DOT output missing %q:\n%s", frag, dot)
		}
	}
}

func TestNumCounters(t *testing.T) {
	g, a, _, _, _ := diamond(t)
	a.Stmts = []ir.Stmt{
		ir.Assign{LHS: "x", RHS: ir.C(1)},
		ir.Out{Arg: ir.V("x")},
	}
	if g.NumStmts() != 2 || g.NumAssignments() != 1 {
		t.Errorf("NumStmts=%d NumAssignments=%d", g.NumStmts(), g.NumAssignments())
	}
	vars := g.CollectVars()
	if vars.Len() != 1 {
		t.Errorf("CollectVars.Len = %d", vars.Len())
	}
	pt := g.CollectPatterns()
	if pt.Len() != 1 {
		t.Errorf("CollectPatterns.Len = %d", pt.Len())
	}
}

func TestTerminator(t *testing.T) {
	_, a, _, _, _ := diamond(t)
	if _, ok := a.Terminator(); ok {
		t.Error("branch reported on plain node")
	}
	a.Stmts = []ir.Stmt{ir.Skip{}, ir.Branch{Cond: ir.V("c")}}
	if b, ok := a.Terminator(); !ok || b.Cond.Key() != "c" {
		t.Error("Terminator missed trailing branch")
	}
}
