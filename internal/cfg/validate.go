package cfg

import (
	"fmt"

	"pdce/internal/ir"
)

// Validate checks the structural invariants the paper assumes of a
// flow graph (Section 2) and the ones this implementation additionally
// relies on. It returns a list of violations (empty means valid):
//
//   - Start has no predecessors and End has no successors.
//   - Start and End represent the empty statement (no statements).
//   - Every node lies on a path from Start to End.
//   - A Branch statement appears only as the last statement of its
//     block, and a block with a Branch has exactly two successors.
//   - Every non-end node has at least one successor.
//   - Adjacency is consistent (a ∈ preds(b) iff b ∈ succs(a)).
func Validate(g *Graph) []string {
	var errs []string
	bad := func(format string, args ...any) {
		errs = append(errs, fmt.Sprintf(format, args...))
	}
	if len(g.Start.preds) != 0 {
		bad("start node %s has %d predecessors", g.Start.Label, len(g.Start.preds))
	}
	if len(g.End.succs) != 0 {
		bad("end node %s has %d successors", g.End.Label, len(g.End.succs))
	}
	if !g.Start.IsEmpty() {
		bad("start node must be empty, has %d statements", len(g.Start.Stmts))
	}
	if !g.End.IsEmpty() {
		bad("end node must be empty, has %d statements", len(g.End.Stmts))
	}
	fromStart := ReachableFromStart(g)
	toEnd := ReachesEnd(g)
	for _, n := range g.nodes {
		if !fromStart[n.ID] {
			bad("node %s is unreachable from start", n.Label)
		}
		if !toEnd[n.ID] {
			bad("node %s cannot reach end", n.Label)
		}
		if n != g.End && len(n.succs) == 0 {
			bad("node %s has no successors but is not the end node", n.Label)
		}
		for i, s := range n.Stmts {
			if _, isBranch := s.(ir.Branch); isBranch {
				if i != len(n.Stmts)-1 {
					bad("node %s: branch statement at position %d is not last", n.Label, i)
				} else if len(n.succs) != 2 {
					bad("node %s: branch statement with %d successors (want 2)", n.Label, len(n.succs))
				}
			}
		}
		for _, s := range n.succs {
			if !hasNode(s.preds, n) {
				bad("edge %s->%s missing from %s's predecessor list", n.Label, s.Label, s.Label)
			}
		}
		for _, p := range n.preds {
			if !hasNode(p.succs, n) {
				bad("edge %s->%s missing from %s's successor list", p.Label, n.Label, p.Label)
			}
		}
	}
	return errs
}

func hasNode(list []*Node, n *Node) bool {
	for _, x := range list {
		if x == n {
			return true
		}
	}
	return false
}

// MustValidate panics with all violations if g is invalid. Test
// helpers and the transformation drivers use it to fail fast when an
// intermediate program breaks an invariant.
func MustValidate(g *Graph) {
	if errs := Validate(g); len(errs) > 0 {
		msg := "cfg: invalid graph " + g.Name + ":"
		for _, e := range errs {
			msg += "\n  " + e
		}
		panic(msg)
	}
}
