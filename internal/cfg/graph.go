// Package cfg implements the directed flow graphs G = (N, E, s, e) of
// the paper: nodes are basic blocks of statements, edges form the
// nondeterministic branching structure, and s and e are the unique
// start and end nodes, both empty, with no predecessors and no
// successors respectively (Section 2).
//
// The package also provides the structural machinery the algorithm and
// its baselines need: critical-edge splitting (Section 2.1), traversal
// orders, dominators and dominance frontiers (for the SSA baseline),
// cloning, structural comparison, and text/DOT rendering.
package cfg

import (
	"fmt"

	"pdce/internal/ir"
)

// NodeID densely numbers the nodes of a graph in creation order. IDs
// are stable across transformations that do not add nodes; splitting
// critical edges appends new IDs.
type NodeID int

// Node is a basic block.
type Node struct {
	ID    NodeID
	Label string // human-readable name; unique within the graph
	Stmts []ir.Stmt

	// Synthetic marks nodes inserted by critical-edge splitting
	// (the paper's S_{m,n} nodes). Synthetic nodes that remain
	// empty after optimization can be removed for presentation.
	Synthetic bool

	succs []*Node
	preds []*Node
}

// Succs returns the successor blocks in edge order. For a block ending
// in an ir.Branch, Succs()[0] is the branch-taken target. The returned
// slice is owned by the graph; callers must not modify it.
func (n *Node) Succs() []*Node { return n.succs }

// Preds returns the predecessor blocks. The returned slice is owned by
// the graph; callers must not modify it.
func (n *Node) Preds() []*Node { return n.preds }

// IsEmpty reports whether the block contains no statements (pure skip).
func (n *Node) IsEmpty() bool { return len(n.Stmts) == 0 }

// Terminator returns the block's final statement if it is a Branch.
func (n *Node) Terminator() (ir.Branch, bool) {
	if len(n.Stmts) == 0 {
		return ir.Branch{}, false
	}
	b, ok := n.Stmts[len(n.Stmts)-1].(ir.Branch)
	return b, ok
}

// Graph is a flow graph with unique start and end nodes.
type Graph struct {
	Name  string
	Start *Node
	End   *Node

	nodes   []*Node
	byLabel map[string]*Node
}

// New creates a graph with fresh, empty start and end nodes labeled
// "s" and "e".
func New(name string) *Graph {
	g := &Graph{Name: name, byLabel: make(map[string]*Node)}
	g.Start = g.AddNode("s")
	g.End = g.AddNode("e")
	return g
}

// AddNode creates a block with the given label. It panics if the label
// is already taken: labels name nodes in test expectations and error
// messages, so collisions are programming errors.
func (g *Graph) AddNode(label string) *Node {
	if _, dup := g.byLabel[label]; dup {
		panic(fmt.Sprintf("cfg: duplicate node label %q in graph %q", label, g.Name))
	}
	n := &Node{ID: NodeID(len(g.nodes)), Label: label}
	g.nodes = append(g.nodes, n)
	g.byLabel[label] = n
	return n
}

// NumNodes returns the number of nodes ever added (including start and
// end).
func (g *Graph) NumNodes() int { return len(g.nodes) }

// Node returns the node with the given ID.
func (g *Graph) Node(id NodeID) *Node { return g.nodes[id] }

// NodeByLabel returns the node with the given label, if present.
func (g *Graph) NodeByLabel(label string) (*Node, bool) {
	n, ok := g.byLabel[label]
	return n, ok
}

// Nodes returns all nodes in ID order. The slice is owned by the graph.
func (g *Graph) Nodes() []*Node { return g.nodes }

// AddEdge appends an edge from a to b. Multi-edges are rejected: the
// paper's model has at most one edge between a pair of nodes, and a
// duplicate always indicates a construction bug.
func (g *Graph) AddEdge(a, b *Node) {
	for _, s := range a.succs {
		if s == b {
			panic(fmt.Sprintf("cfg: duplicate edge %s->%s", a.Label, b.Label))
		}
	}
	a.succs = append(a.succs, b)
	b.preds = append(b.preds, a)
}

// HasEdge reports whether an edge a->b exists.
func (g *Graph) HasEdge(a, b *Node) bool {
	for _, s := range a.succs {
		if s == b {
			return true
		}
	}
	return false
}

// redirectEdge replaces the edge a->b with a->mid and mid->b,
// preserving a's successor order (important for branch targets) and
// b's predecessor order.
func (g *Graph) redirectEdge(a, b, mid *Node) {
	replaced := false
	for i, s := range a.succs {
		if s == b {
			a.succs[i] = mid
			replaced = true
			break
		}
	}
	if !replaced {
		panic(fmt.Sprintf("cfg: redirect of missing edge %s->%s", a.Label, b.Label))
	}
	for i, p := range b.preds {
		if p == a {
			b.preds[i] = mid
			break
		}
	}
	mid.succs = append(mid.succs, b)
	mid.preds = append(mid.preds, a)
}

// Edge is a pair of nodes connected by an edge.
type Edge struct {
	From, To *Node
}

// Edges returns every edge, ordered by source ID then successor
// position.
func (g *Graph) Edges() []Edge {
	var out []Edge
	for _, n := range g.nodes {
		for _, s := range n.succs {
			out = append(out, Edge{From: n, To: s})
		}
	}
	return out
}

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int {
	c := 0
	for _, n := range g.nodes {
		c += len(n.succs)
	}
	return c
}

// NumStmts returns the total number of statements over all blocks —
// the paper's instruction count i.
func (g *Graph) NumStmts() int {
	c := 0
	for _, n := range g.nodes {
		c += len(n.Stmts)
	}
	return c
}

// NumAssignments returns the number of assignment statements.
func (g *Graph) NumAssignments() int {
	c := 0
	for _, n := range g.nodes {
		for _, s := range n.Stmts {
			if _, ok := s.(ir.Assign); ok {
				c++
			}
		}
	}
	return c
}

// CollectVars returns a VarTable over every variable occurring in the
// program, in first-occurrence order (ID order of blocks, then
// statement order).
func (g *Graph) CollectVars() *ir.VarTable {
	t := ir.NewVarTable()
	for _, n := range g.nodes {
		for _, s := range n.Stmts {
			t.AddStmt(s)
		}
	}
	return t
}

// CollectPatterns returns a PatternTable over every assignment pattern
// occurring in the program.
func (g *Graph) CollectPatterns() *ir.PatternTable {
	t := ir.NewPatternTable()
	for _, n := range g.nodes {
		for _, s := range n.Stmts {
			if a, ok := s.(ir.Assign); ok {
				t.Add(a)
			}
		}
	}
	return t
}

// ForEachStmt calls f for every statement, in block-ID then
// statement order, with its owning node and index.
func (g *Graph) ForEachStmt(f func(n *Node, idx int, s ir.Stmt)) {
	for _, n := range g.nodes {
		for i, s := range n.Stmts {
			f(n, i, s)
		}
	}
}
