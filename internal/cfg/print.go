package cfg

import (
	"fmt"
	"sort"
	"strings"

	"pdce/internal/ir"
)

// Format renders the graph in the low-level textual format accepted by
// internal/parser.ParseCFG, so Format/ParseCFG round-trip:
//
//	graph "name"
//	node 1 {
//	  y := a+b
//	}
//	edge s 1
//	edge 1 e
//
// Start and end nodes are implicit ("s" and "e"). Nodes appear in ID
// order, edges in source-ID order; the rendering is deterministic.
func (g *Graph) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "graph %q\n", g.Name)
	for _, n := range g.nodes {
		if n == g.Start || n == g.End {
			continue
		}
		if n.Synthetic {
			fmt.Fprintf(&sb, "node %s synthetic {\n", quoteLabel(n.Label))
		} else {
			fmt.Fprintf(&sb, "node %s {\n", quoteLabel(n.Label))
		}
		for _, s := range n.Stmts {
			fmt.Fprintf(&sb, "  %s\n", s)
		}
		sb.WriteString("}\n")
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&sb, "edge %s %s\n", quoteLabel(e.From.Label), quoteLabel(e.To.Label))
	}
	return sb.String()
}

// quoteLabel quotes labels containing characters outside the bare-word
// alphabet of the parser.
func quoteLabel(l string) string {
	for _, r := range l {
		if !(r == '_' || r == '.' || r >= '0' && r <= '9' ||
			r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z') {
			return fmt.Sprintf("%q", l)
		}
	}
	if l == "" {
		return `""`
	}
	return l
}

// String returns a compact human-oriented listing: one line per node
// with its statements and successors. Used in error messages and by
// cmd/figures.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, n := range g.nodes {
		var parts []string
		for _, s := range n.Stmts {
			parts = append(parts, s.String())
		}
		body := strings.Join(parts, "; ")
		var succ []string
		for _, s := range n.succs {
			succ = append(succ, s.Label)
		}
		line := fmt.Sprintf("%-8s [%s] -> %s", n.Label, body, strings.Join(succ, " "))
		sb.WriteString(strings.TrimRight(line, " "))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Snapshot captures the statements of every node keyed by label, for
// structural comparison in tests.
func (g *Graph) Snapshot() map[string][]string {
	m := make(map[string][]string, len(g.nodes))
	for _, n := range g.nodes {
		strs := make([]string, len(n.Stmts))
		for i, s := range n.Stmts {
			strs[i] = s.String()
		}
		m[n.Label] = strs
	}
	return m
}

// Diff compares two graphs structurally — same labels, same per-node
// statements, same edges — and returns a human-readable description of
// every discrepancy, or nil if the graphs are identical. Statement
// order within a node is significant.
func Diff(a, b *Graph) []string {
	var diffs []string
	as, bs := a.Snapshot(), b.Snapshot()
	labels := make(map[string]bool)
	for l := range as {
		labels[l] = true
	}
	for l := range bs {
		labels[l] = true
	}
	sorted := make([]string, 0, len(labels))
	for l := range labels {
		sorted = append(sorted, l)
	}
	sort.Strings(sorted)
	for _, l := range sorted {
		sa, aOK := as[l]
		sb, bOK := bs[l]
		switch {
		case !aOK:
			diffs = append(diffs, fmt.Sprintf("node %s only in second graph", l))
		case !bOK:
			diffs = append(diffs, fmt.Sprintf("node %s only in first graph", l))
		case strings.Join(sa, ";") != strings.Join(sb, ";"):
			diffs = append(diffs, fmt.Sprintf("node %s: [%s] vs [%s]",
				l, strings.Join(sa, "; "), strings.Join(sb, "; ")))
		}
	}
	ae, be := edgeSet(a), edgeSet(b)
	var edgeKeys []string
	for k := range ae {
		edgeKeys = append(edgeKeys, k)
	}
	for k := range be {
		if !ae[k] {
			edgeKeys = append(edgeKeys, k)
		}
	}
	sort.Strings(edgeKeys)
	for _, k := range edgeKeys {
		switch {
		case !ae[k]:
			diffs = append(diffs, fmt.Sprintf("edge %s only in second graph", k))
		case !be[k]:
			diffs = append(diffs, fmt.Sprintf("edge %s only in first graph", k))
		}
	}
	return diffs
}

func edgeSet(g *Graph) map[string]bool {
	m := make(map[string]bool)
	for _, e := range g.Edges() {
		m[e.From.Label+"->"+e.To.Label] = true
	}
	return m
}

// Equal reports whether a and b are structurally identical (see Diff).
func Equal(a, b *Graph) bool { return len(Diff(a, b)) == 0 }

// PatternCounts tallies, per assignment pattern, the number of static
// occurrences in the program — the quantity the paper's Definition 3.6
// compares along paths.
func PatternCounts(g *Graph) map[ir.Pattern]int {
	m := make(map[ir.Pattern]int)
	for _, n := range g.nodes {
		for _, s := range n.Stmts {
			if p, ok := ir.PatternOf(s); ok {
				m[p]++
			}
		}
	}
	return m
}
