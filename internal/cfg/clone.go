package cfg

import "pdce/internal/ir"

// Clone returns a deep copy of the graph: fresh nodes with copied
// statement slices and copied adjacency. Statements themselves are
// immutable and shared.
//
// The optimizer drivers clone their input so the caller's graph is
// never mutated, and the verifier clones to compare before/after.
func (g *Graph) Clone() *Graph {
	c := &Graph{Name: g.Name, byLabel: make(map[string]*Node, len(g.byLabel))}
	c.nodes = make([]*Node, len(g.nodes))
	for i, n := range g.nodes {
		m := &Node{
			ID:        n.ID,
			Label:     n.Label,
			Synthetic: n.Synthetic,
			Stmts:     append([]ir.Stmt(nil), n.Stmts...),
		}
		c.nodes[i] = m
		c.byLabel[m.Label] = m
	}
	for i, n := range g.nodes {
		m := c.nodes[i]
		m.succs = make([]*Node, len(n.succs))
		for j, s := range n.succs {
			m.succs[j] = c.nodes[s.ID]
		}
		m.preds = make([]*Node, len(n.preds))
		for j, p := range n.preds {
			m.preds[j] = c.nodes[p.ID]
		}
	}
	c.Start = c.nodes[g.Start.ID]
	c.End = c.nodes[g.End.ID]
	return c
}
