package cfg

import "fmt"

// IsCriticalEdge reports whether a->b is a critical edge: one leading
// from a node with more than one successor to a node with more than
// one predecessor (Section 2.1). Critical edges block both partial
// redundancy elimination and partial dead code elimination, because an
// insertion on such an edge cannot be placed in either endpoint
// without affecting an unrelated path.
func IsCriticalEdge(a, b *Node) bool {
	return len(a.succs) > 1 && len(b.preds) > 1
}

// CountCriticalEdges returns the number of critical edges in g.
func CountCriticalEdges(g *Graph) int {
	c := 0
	for _, e := range g.Edges() {
		if IsCriticalEdge(e.From, e.To) {
			c++
		}
	}
	return c
}

// SplitCriticalEdges inserts a fresh synthetic node S_{m,n} into every
// critical edge (m, n), exactly as Figure 8(b) of the paper prescribes,
// and returns the inserted nodes. Branch-target order on m is
// preserved, so branch semantics are unchanged.
//
// The paper's algorithm assumes this normalization has been performed;
// core.PDE and core.PFE call it before transforming.
func SplitCriticalEdges(g *Graph) []*Node {
	var inserted []*Node
	// Collect first: redirecting edges while iterating Edges()
	// would skip successors.
	var critical []Edge
	for _, e := range g.Edges() {
		if IsCriticalEdge(e.From, e.To) {
			critical = append(critical, e)
		}
	}
	for _, e := range critical {
		label := fmt.Sprintf("S%s,%s", e.From.Label, e.To.Label)
		// Guard against pathological label collisions (e.g. a
		// user node literally named "S1,2").
		base := label
		for k := 2; ; k++ {
			if _, taken := g.byLabel[label]; !taken {
				break
			}
			label = fmt.Sprintf("%s#%d", base, k)
		}
		mid := g.AddNode(label)
		mid.Synthetic = true
		g.redirectEdge(e.From, e.To, mid)
		inserted = append(inserted, mid)
	}
	return inserted
}

// SplitEdgeWith replaces the edge a->b with a->mid and mid->b,
// preserving branch-target order on a. mid must be a freshly created,
// unconnected node. Used by transformations that need an insertion
// point on an edge neither endpoint can host (e.g. lazy code motion
// inserting on an edge out of the empty start node).
func (g *Graph) SplitEdgeWith(a, b, mid *Node) {
	if len(mid.succs) != 0 || len(mid.preds) != 0 {
		panic("cfg: SplitEdgeWith requires an unconnected middle node")
	}
	g.redirectEdge(a, b, mid)
}

// RemoveEmptySynthetic unlinks every synthetic node that is still
// empty, reconnecting its unique predecessor to its unique successor —
// the inverse of SplitCriticalEdges for nodes that never received an
// insertion. Figures in the paper draw such nodes dashed; removing
// them recovers the original branching structure for presentation.
//
// A synthetic node is only removed when the rejoined edge would not
// create a duplicate edge.
func RemoveEmptySynthetic(g *Graph) int {
	removed := 0
	for _, n := range g.nodes {
		if !n.Synthetic || !n.IsEmpty() || len(n.preds) != 1 || len(n.succs) != 1 {
			continue
		}
		p, s := n.preds[0], n.succs[0]
		if p == n || s == n || g.HasEdge(p, s) {
			continue
		}
		// Splice p -> n -> s into p -> s, preserving positions.
		for i, x := range p.succs {
			if x == n {
				p.succs[i] = s
			}
		}
		for i, x := range s.preds {
			if x == n {
				s.preds[i] = p
			}
		}
		n.succs = nil
		n.preds = nil
		removed++
	}
	if removed > 0 {
		g.compact()
	}
	return removed
}

// compact drops unlinked nodes from the node list and renumbers IDs.
func (g *Graph) compact() {
	kept := g.nodes[:0]
	for _, n := range g.nodes {
		if n == g.Start || n == g.End || len(n.preds) > 0 || len(n.succs) > 0 {
			n.ID = NodeID(len(kept))
			kept = append(kept, n)
		} else {
			delete(g.byLabel, n.Label)
		}
	}
	g.nodes = kept
}
