package cfg

import (
	"math/rand"
	"testing"
)

// randomGraph builds a random valid graph: a backbone guaranteeing
// start-reach and end-reach plus random extra edges.
func randomGraph(seed int64, blocks int) *Graph {
	r := rand.New(rand.NewSource(seed))
	g := New("rand")
	ns := make([]*Node, blocks)
	for i := range ns {
		ns[i] = g.AddNode(string(rune('A'+i%26)) + string(rune('0'+i/26)))
	}
	g.AddEdge(g.Start, ns[0])
	for i := 0; i+1 < blocks; i++ {
		g.AddEdge(ns[i], ns[i+1])
	}
	g.AddEdge(ns[blocks-1], g.End)
	for i := 0; i < blocks; i++ {
		a, b := ns[r.Intn(blocks)], ns[r.Intn(blocks)]
		if a != b && !g.HasEdge(a, b) {
			g.AddEdge(a, b)
		}
	}
	MustValidate(g)
	return g
}

// bruteDominates computes "a dominates b" by definition: removing a
// from the graph must make b unreachable from start (or a == b).
func bruteDominates(g *Graph, a, b *Node) bool {
	if a == b {
		return true
	}
	seen := map[*Node]bool{a: true} // pretend a is removed
	var stack []*Node
	if g.Start != a {
		stack = append(stack, g.Start)
		seen[g.Start] = true
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == b {
			return false
		}
		for _, s := range n.Succs() {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return true
}

// TestDominatorsMatchBruteForce cross-validates the
// Cooper-Harvey-Kennedy iterative dominator computation against the
// by-definition algorithm on random (frequently irreducible) graphs.
func TestDominatorsMatchBruteForce(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		g := randomGraph(seed, 4+int(seed%9))
		dom := BuildDomTree(g)
		for _, a := range g.Nodes() {
			for _, b := range g.Nodes() {
				want := bruteDominates(g, a, b)
				got := dom.Dominates(a, b)
				if got != want {
					t.Fatalf("seed %d: Dominates(%s, %s) = %v, brute force says %v\n%s",
						seed, a.Label, b.Label, got, want, g)
				}
			}
		}
	}
}

// TestIDomIsStrictDominatorMinimal: idom(n) strictly dominates n, and
// no other strict dominator of n sits strictly between them.
func TestIDomIsStrictDominatorMinimal(t *testing.T) {
	for seed := int64(30); seed < 45; seed++ {
		g := randomGraph(seed, 4+int(seed%7))
		dom := BuildDomTree(g)
		for _, n := range g.Nodes() {
			if n == g.Start {
				continue
			}
			id := dom.IDom(n)
			if id == nil {
				t.Fatalf("seed %d: reachable node %s has no idom", seed, n.Label)
			}
			if !bruteDominates(g, id, n) || id == n {
				t.Fatalf("seed %d: idom(%s)=%s does not strictly dominate it", seed, n.Label, id.Label)
			}
			for _, d := range g.Nodes() {
				if d == n || d == id {
					continue
				}
				if bruteDominates(g, d, n) && bruteDominates(g, id, d) {
					t.Fatalf("seed %d: %s sits between idom(%s)=%s and %s",
						seed, d.Label, n.Label, id.Label, n.Label)
				}
			}
		}
	}
}

// TestDominanceFrontierDefinition checks DF against its definition: j
// is in DF(n) iff n dominates some predecessor of j but does not
// strictly dominate j.
func TestDominanceFrontierDefinition(t *testing.T) {
	for seed := int64(50); seed < 62; seed++ {
		g := randomGraph(seed, 5+int(seed%6))
		dom := BuildDomTree(g)
		df := dom.DominanceFrontiers()
		inDF := func(n, j *Node) bool {
			for _, x := range df[n] {
				if x == j {
					return true
				}
			}
			return false
		}
		for _, n := range g.Nodes() {
			for _, j := range g.Nodes() {
				want := false
				for _, p := range j.Preds() {
					if dom.Dominates(n, p) && !(dom.Dominates(n, j) && n != j) {
						want = true
					}
				}
				if got := inDF(n, j); got != want {
					t.Fatalf("seed %d: DF(%s) contains %s = %v, definition says %v",
						seed, n.Label, j.Label, got, want)
				}
			}
		}
	}
}
