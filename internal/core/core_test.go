package core_test

import (
	"strings"
	"testing"

	"pdce/internal/cfg"
	"pdce/internal/core"
	"pdce/internal/parser"
)

func parse(t *testing.T, src string) *cfg.Graph {
	t.Helper()
	g, err := parser.ParseCFG(src)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func stmtsOf(t *testing.T, g *cfg.Graph, label string) string {
	t.Helper()
	n, ok := g.NodeByLabel(label)
	if !ok {
		t.Fatalf("no node %q", label)
	}
	var parts []string
	for _, s := range n.Stmts {
		parts = append(parts, s.String())
	}
	return strings.Join(parts, "; ")
}

// --- Sink step in isolation ---------------------------------------------

func TestSinkMovesPastNonBlockingStatement(t *testing.T) {
	g := parse(t, `
node 1 { x := a+b; c := 1 }
node 2 { out(x+c) }
edge s 1
edge 1 2
edge 2 e
`)
	st := core.Sink(g)
	if !st.Changed() {
		t.Fatal("sink reported no change")
	}
	// Both assignments are candidates and move to the entry of the
	// block holding the blocking use.
	if got := stmtsOf(t, g, "2"); got != "x := a+b; c := 1; out(x+c)" {
		t.Errorf("node 2 = %q", got)
	}
	if got := stmtsOf(t, g, "1"); got != "" {
		t.Errorf("node 1 = %q, want empty", got)
	}
}

func TestSinkKeepsCandidateInPlaceAtFrontier(t *testing.T) {
	// x := a+b is already as late as possible: its block's successor
	// join is not delayed on the other path. X-INSERT = LOCDELAYED,
	// so the statement must not churn.
	g := parse(t, `
node 0 {}
node 1 { x := a+b }
node 2 {}
node 3 { out(x) }
edge s 0
edge 0 1
edge 0 2
edge 1 3
edge 2 3
edge 3 e
`)
	before := g.Format()
	st := core.Sink(g)
	if st.Changed() {
		t.Errorf("stable placement was changed:\n%s", g.Format())
	}
	if g.Format() != before {
		t.Error("graph text changed despite no-op report")
	}
	if !core.SinkStable(g) {
		t.Error("SinkStable disagrees")
	}
}

func TestSinkDropsAssignmentDeadToEnd(t *testing.T) {
	// Nothing downstream uses x: delayability runs off the end node
	// and the assignment simply disappears (an admissible pde
	// sequence).
	g := parse(t, `
node 1 { x := a+b; out(b) }
edge s 1
edge 1 e
`)
	// x := a+b is blocked by nothing after it... out(b) does not
	// block it (x unused), so it is a candidate and sinks off the
	// program.
	st := core.Sink(g)
	if st.RemovedCandidates != 1 || st.InsertedEntry+st.InsertedExit != 0 {
		t.Errorf("stats = %+v, want pure removal", st)
	}
	if got := stmtsOf(t, g, "1"); got != "out(b)" {
		t.Errorf("node 1 = %q", got)
	}
}

func TestSinkManyToOne(t *testing.T) {
	// Figure 7 shape: candidates in both predecessors, single
	// justified insertion at the join's use.
	g := parse(t, `
node 0 {}
node 1 { a := a+1 }
node 2 { a := a+1 }
node 3 { out(a) }
edge s 0
edge 0 1
edge 0 2
edge 1 3
edge 2 3
edge 3 e
`)
	st := core.Sink(g)
	if st.RemovedCandidates != 2 {
		t.Errorf("removed %d candidates, want 2", st.RemovedCandidates)
	}
	if st.InsertedEntry != 1 {
		t.Errorf("inserted %d at entries, want exactly 1", st.InsertedEntry)
	}
	if got := stmtsOf(t, g, "3"); got != "a := a+1; out(a)" {
		t.Errorf("node 3 = %q", got)
	}
}

func TestSinkRefusesUnjustifiedJoin(t *testing.T) {
	// Candidate only in one predecessor of the join: insertion at
	// the join would not be justified on the other path, so the
	// assignment must stop at the frontier (its own block's exit).
	g := parse(t, `
node 0 {}
node 1 { x := a+b }
node 2 {}
node 3 { out(x) }
edge s 0
edge 0 1
edge 0 2
edge 1 3
edge 2 3
edge 3 e
`)
	core.Sink(g)
	if got := stmtsOf(t, g, "3"); got != "out(x)" {
		t.Errorf("join received an unjustified insertion: %q", got)
	}
	if got := stmtsOf(t, g, "1"); got != "x := a+b" {
		t.Errorf("node 1 = %q", got)
	}
}

// --- Eliminate steps in isolation ----------------------------------------

func TestEliminateDeadRemovesOnlyDead(t *testing.T) {
	g := parse(t, `
node 1 { x := 1; y := 2; out(x) }
edge s 1
edge 1 e
`)
	st := core.EliminateDead(g)
	if st.Removed != 1 {
		t.Errorf("removed %d, want 1", st.Removed)
	}
	if got := stmtsOf(t, g, "1"); got != "x := 1; out(x)" {
		t.Errorf("node 1 = %q", got)
	}
}

func TestEliminateDeadNeedsIterationForChains(t *testing.T) {
	g := parse(t, `
node 1 { a := 1; b := a+1; out(0) }
edge s 1
edge 1 e
`)
	st1 := core.EliminateDead(g)
	if st1.Removed != 1 {
		t.Fatalf("first round removed %d, want 1 (only the chain tail)", st1.Removed)
	}
	st2 := core.EliminateDead(g)
	if st2.Removed != 1 {
		t.Fatalf("second round removed %d, want 1 (the now-dead head)", st2.Removed)
	}
	if got := stmtsOf(t, g, "1"); got != "out(0)" {
		t.Errorf("node 1 = %q", got)
	}
}

func TestEliminateFaintRemovesChainAtOnce(t *testing.T) {
	g := parse(t, `
node 1 { a := 1; b := a+1; out(0) }
edge s 1
edge 1 e
`)
	st := core.EliminateFaint(g)
	if st.Removed != 2 {
		t.Errorf("removed %d, want the whole chain in one step", st.Removed)
	}
}

func TestEliminateKeepsBranchOperands(t *testing.T) {
	g := parse(t, `
node 1 { c := n+1; branch(c>0) }
node 2 { out(1) }
node 3 { out(2) }
node 4 {}
edge s 1
edge 1 2
edge 1 3
edge 2 4
edge 3 4
edge 4 e
`)
	if st := core.EliminateFaint(g); st.Removed != 0 {
		t.Error("assignment feeding a branch condition eliminated")
	}
}

// --- Driver behaviours ----------------------------------------------------

func TestTransformRejectsInvalidGraph(t *testing.T) {
	g := cfg.New("bad")
	g.AddNode("floating")
	if _, _, err := core.PDE(g); err == nil {
		t.Error("invalid graph accepted")
	}
}

func TestTransformStatsShape(t *testing.T) {
	g := parse(t, `
node 1 { y := a+b }
node 2 {}
node 3 { y := c }
node 4 {}
node 5 { out(x+y) }
edge s 1
edge 1 2
edge 2 3
edge 2 4
edge 3 5
edge 4 5
edge 5 e
`)
	_, st, err := core.PDE(g)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rounds < 2 {
		t.Errorf("Rounds = %d, want ≥ 2 (a changing round plus the confirming one)", st.Rounds)
	}
	if st.OriginalStmts != 3 || st.FinalStmts != 3 {
		t.Errorf("stmt accounting: %d -> %d, want 3 -> 3", st.OriginalStmts, st.FinalStmts)
	}
	if st.PeakStmts < st.OriginalStmts {
		t.Error("PeakStmts below original")
	}
	if st.GrowthFactor() < 1 {
		t.Errorf("growth factor %f < 1", st.GrowthFactor())
	}
	if st.Eliminated != 1 {
		t.Errorf("Eliminated = %d, want 1 (the copy killed by y := c)", st.Eliminated)
	}
}

// TestWhileLoopPairStaysPut documents the algorithm's necessary
// conservatism: in a zero-trip (top-test) while loop the invariant
// pair must NOT be sunk out of the loop. An instance inserted after
// the loop would execute on the zero-iteration path where no original
// occurrence ran — violating Definition 3.2's justification condition
// and Definition 3.6's never-more-work guarantee.
func TestWhileLoopPairStaysPut(t *testing.T) {
	g, err := parser.ParseSource("p", `
sum := 0
i := n
while i > 0 {
    scale := base * 4
    bias := scale + off
    sum := sum + i
    i := i - 1
}
if * {
    out(sum + bias)
} else {
    out(sum)
}
`)
	if err != nil {
		t.Fatal(err)
	}
	opt, _, err := core.PDE(g)
	if err != nil {
		t.Fatal(err)
	}
	// The pair must still be inside the loop body (the block that
	// latches back to the header).
	foundInLoop := false
	for _, n := range opt.Nodes() {
		body := strings.Contains(nodeText(n), "scale := base*4")
		if !body {
			continue
		}
		// Does this node lie on a cycle?
		if onCycle(n) {
			foundInLoop = true
		}
	}
	if !foundInLoop {
		t.Errorf("invariant pair left a zero-trip while loop:\n%s", opt)
	}
}

func nodeText(n *cfg.Node) string {
	var parts []string
	for _, s := range n.Stmts {
		parts = append(parts, s.String())
	}
	return strings.Join(parts, "; ")
}

func onCycle(n *cfg.Node) bool {
	seen := map[*cfg.Node]bool{}
	stack := append([]*cfg.Node(nil), n.Succs()...)
	for len(stack) > 0 {
		m := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if m == n {
			return true
		}
		if seen[m] {
			continue
		}
		seen[m] = true
		stack = append(stack, m.Succs()...)
	}
	return false
}

// TestDoWhilePairLeavesLoop is the positive counterpart: with a
// post-test loop the same pair fully leaves the loop (Figure 3/4).
func TestDoWhilePairLeavesLoop(t *testing.T) {
	g, err := parser.ParseSource("p", `
sum := 0
i := n
do {
    scale := base * 4
    bias := scale + off
    sum := sum + i
    i := i - 1
} while i > 0
if * {
    out(sum + bias)
} else {
    out(sum)
}
`)
	if err != nil {
		t.Fatal(err)
	}
	opt, _, err := core.PDE(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range opt.Nodes() {
		if strings.Contains(nodeText(n), "scale := base*4") && onCycle(n) {
			t.Errorf("invariant pair still on a cycle:\n%s", opt)
		}
	}
}

// TestModeString covers the Stringer.
func TestModeString(t *testing.T) {
	if core.ModeDead.String() != "pde" || core.ModeFaint.String() != "pfe" {
		t.Error("mode names wrong")
	}
}

// TestSinkInsertOrderDeterministic: multiple patterns inserted at one
// point appear in a stable order across runs.
func TestSinkInsertOrderDeterministic(t *testing.T) {
	src := `
node 1 { x := a+b; y := c+d }
node 2 { out(x+y) }
edge s 1
edge 1 2
edge 2 e
`
	first := ""
	for i := 0; i < 5; i++ {
		g := parse(t, src)
		core.Sink(g)
		got := stmtsOf(t, g, "2")
		if first == "" {
			first = got
		} else if got != first {
			t.Fatalf("nondeterministic insertion order: %q vs %q", got, first)
		}
	}
	if !strings.HasPrefix(first, "x := a+b; y := c+d") {
		t.Errorf("insertion order = %q, want pattern-table order", first)
	}
}

// TestSelfReferentialPatternSinks: x := x+1 both uses and defines x;
// it must still sink to its use like any other pattern.
func TestSelfReferentialPatternSinks(t *testing.T) {
	g := parse(t, `
node 1 { x := x+1; junk := 0 }
node 2 {}
node 3 { out(x) }
node 4 { out(junk) }
node 5 {}
edge s 1
edge 1 2
edge 2 3
edge 2 4
edge 3 5
edge 4 5
edge 5 e
`)
	opt, _, err := core.PDE(g)
	if err != nil {
		t.Fatal(err)
	}
	if got := stmtsOf(t, opt, "3"); got != "x := x+1; out(x)" {
		t.Errorf("node 3 = %q", got)
	}
	if got := stmtsOf(t, opt, "4"); got != "junk := 0; out(junk)" {
		t.Errorf("node 4 = %q", got)
	}
	if got := stmtsOf(t, opt, "1"); got != "" {
		t.Errorf("node 1 = %q, want empty", got)
	}
}
