package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"pdce/internal/cfg"
)

// This file is the driver's fault-containment layer: panic recovery
// (SafeTransform), the fixpoint watchdog (wall-clock deadline via
// Options.Ctx plus a per-round budget via Options.RoundBudget), and
// round-boundary verification rollback (Options.RoundCheck). The
// guiding invariant is that the working graph is a semantically valid,
// correctly transformed program at every phase boundary — each
// eliminate or sink step is a complete admissible transformation — so
// stopping between phases and returning the current graph degrades
// the result's optimality, never its correctness.

// PanicError is a panic recovered from inside the optimizer by
// SafeTransform, carrying the panic value and the stack at the panic
// site.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("core: internal panic: %v", e.Value)
}

// ErrRoundBudget is the cause recorded by an InterruptError when the
// per-round budget (Options.RoundBudget), rather than the context,
// expired.
var ErrRoundBudget = errors.New("core: round budget exhausted")

// InterruptError reports that the watchdog stopped the fixpoint
// iteration. The graph returned alongside it is the best
// phase-boundary program reached — valid and correct, possibly short
// of the optimum.
type InterruptError struct {
	// Rounds is the number of rounds entered when the run stopped.
	Rounds int
	// Phase names the iteration point that observed the expiry:
	// "round" (between rounds), "eliminate" or "sink" (the analysis
	// that was abandoned mid-solve or the boundary after it).
	Phase string
	// Cause is the context's error or ErrRoundBudget.
	Cause error
}

func (e *InterruptError) Error() string {
	return fmt.Sprintf("core: interrupted at %s after %d rounds: %v", e.Phase, e.Rounds, e.Cause)
}

func (e *InterruptError) Unwrap() error { return e.Cause }

// RoundCheckError reports that Options.RoundCheck rejected a round's
// result. The graph returned alongside it is the last one the check
// accepted (the input program when the very first round failed).
type RoundCheckError struct {
	// Round is the round whose result failed; GoodRound the round
	// rolled back to (0 = the untransformed input).
	Round, GoodRound int
	// Err is the checker's verdict.
	Err error
}

func (e *RoundCheckError) Error() string {
	return fmt.Sprintf("core: round %d failed verification (rolled back to round %d): %v",
		e.Round, e.GoodRound, e.Err)
}

func (e *RoundCheckError) Unwrap() error { return e.Err }

// Partial reports whether err still came with a usable program:
// watchdog interrupts return the best phase-boundary graph, round
// check failures the last verified one. Transform returns a non-nil
// graph exactly for these errors.
func Partial(err error) bool {
	var ie *InterruptError
	var re *RoundCheckError
	return errors.As(err, &ie) || errors.As(err, &re)
}

// ErrorClass names err's containment category for telemetry and
// request tracing: "panic", "interrupt", "round-check", a bare
// "error" for anything else, "" for nil.
func ErrorClass(err error) string {
	if err == nil {
		return ""
	}
	var pe *PanicError
	var ie *InterruptError
	var re *RoundCheckError
	switch {
	case errors.As(err, &pe):
		return "panic"
	case errors.As(err, &ie):
		return "interrupt"
	case errors.As(err, &re):
		return "round-check"
	}
	return "error"
}

// SafeTransform is Transform with panic containment: a panic anywhere
// inside the run — the driver, an analysis, a callback — is recovered
// and returned as a *PanicError instead of unwinding into the caller.
// The input graph is never mutated (Transform works on a clone), so
// the caller can safely fall back to it.
func SafeTransform(g *cfg.Graph, opt Options) (res *cfg.Graph, st Stats, err error) {
	defer func() {
		if v := recover(); v != nil {
			res, err = nil, &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	return Transform(g, opt)
}

// watchdog tracks the two expiry conditions of a run: the caller's
// context (wall-clock deadline or cancellation) and the per-round
// budget. A nil *watchdog is inert, so unconfigured runs pay nothing.
type watchdog struct {
	ctx        context.Context
	budget     time.Duration
	roundStart time.Time
}

func newWatchdog(opt Options) *watchdog {
	if opt.Ctx == nil && opt.RoundBudget <= 0 {
		return nil
	}
	w := &watchdog{ctx: opt.Ctx, budget: opt.RoundBudget}
	w.startRound()
	return w
}

func (w *watchdog) startRound() {
	if w != nil && w.budget > 0 {
		w.roundStart = time.Now()
	}
}

func (w *watchdog) expired() bool {
	if w == nil {
		return false
	}
	if w.ctx != nil && w.ctx.Err() != nil {
		return true
	}
	return w.budget > 0 && time.Since(w.roundStart) > w.budget
}

// checkFunc adapts the watchdog to the solvers' cancellation hook; nil
// when no watchdog is configured, so solvers skip the checks entirely.
func (w *watchdog) checkFunc() func() bool {
	if w == nil {
		return nil
	}
	return w.expired
}

func (w *watchdog) cause() error {
	if w.ctx != nil && w.ctx.Err() != nil {
		return w.ctx.Err()
	}
	return ErrRoundBudget
}

// interrupt builds the InterruptError for the current stop point.
func (w *watchdog) interrupt(rounds int, phase string) error {
	return &InterruptError{Rounds: rounds, Phase: phase, Cause: w.cause()}
}

// roundVerifier carries the rollback state of Options.RoundCheck
// across rounds. A nil *roundVerifier is inert.
type roundVerifier struct {
	check     func(g *cfg.Graph, round int) error
	lastGood  *cfg.Graph
	goodRound int
}

func newRoundVerifier(opt Options, out *cfg.Graph) *roundVerifier {
	if opt.RoundCheck == nil {
		return nil
	}
	// Round 0 — the split but untransformed input — is trivially
	// semantics-preserving, so it is the initial rollback target.
	return &roundVerifier{check: opt.RoundCheck, lastGood: out.Clone()}
}

// verifyRound checks the round's result. On acceptance it advances the
// rollback snapshot (only when the round changed something — a
// no-change round is byte-identical to the previous snapshot) and
// returns (nil, nil). On rejection it returns the last good graph and
// the wrapped error.
func (v *roundVerifier) verifyRound(out *cfg.Graph, round int, changed bool) (*cfg.Graph, error) {
	if v == nil {
		return nil, nil
	}
	if err := v.check(out, round); err != nil {
		return v.lastGood, &RoundCheckError{Round: round, GoodRound: v.goodRound, Err: err}
	}
	if changed {
		v.lastGood = out.Clone()
		v.goodRound = round
	}
	return nil, nil
}

// best returns the graph a watchdog interrupt should surface: with
// verification active only verified snapshots qualify; otherwise the
// current phase-boundary graph is already the best correct result.
func (v *roundVerifier) best(out *cfg.Graph) *cfg.Graph {
	if v == nil {
		return out
	}
	return v.lastGood
}
