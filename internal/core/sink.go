// Package core implements the paper's contribution: the assignment
// sinking procedure `ask` (Section 5.3), the dead and faint code
// elimination procedures `dce`/`fce` (Section 5.2), and the exhaustive
// fixpoint drivers `pde`/`pfe` (Section 5.1) that alternate them until
// the program stabilizes, capturing all second-order effects of
// Section 4. By Theorem 5.2 the stable program is optimal in the
// universe of programs reachable by admissible assignment sinkings and
// dead (faint) code eliminations.
package core

import (
	"sort"

	"pdce/internal/analysis"
	"pdce/internal/cfg"
	"pdce/internal/ir"
	"pdce/internal/obs"
)

// SinkStats describes one application of the assignment sinking
// transformation.
type SinkStats struct {
	// RemovedCandidates is the number of sinking-candidate
	// occurrences taken out of their blocks (excluding candidates
	// kept in place by the X-INSERT fusion).
	RemovedCandidates int
	// InsertedEntry and InsertedExit count materialized instances.
	InsertedEntry, InsertedExit int
	// SolverVisits is the delayability solver's work.
	SolverVisits int
}

// Changed reports whether the transformation altered the program.
func (s SinkStats) Changed() bool {
	return s.RemovedCandidates > 0 || s.InsertedEntry > 0 || s.InsertedExit > 0
}

// Sink performs one exhaustive assignment-sinking step (`ask`) on g in
// place, for every assignment pattern simultaneously: it solves the
// delayability system of Table 2 and then
//
//   - removes every sinking candidate,
//   - inserts an instance of α at the entry of n where N-INSERT_n(α),
//   - inserts an instance of α at the exit of n where X-INSERT_n(α).
//
// When X-INSERT_n(α) holds and n itself contains the candidate of α,
// removal and exit-insertion cancel; the candidate is kept in place.
// This realizes the paper's stability condition (Section 5.4:
// X-INSERT = LOCDELAYED means invariance) without intra-block churn,
// and keeps program texts stable for golden tests.
//
// g must have its critical edges split (cfg.SplitCriticalEdges):
// footnote 6's guarantee that branching nodes receive no exit
// insertions — which the placement below relies on for blocks ending
// in a Branch — holds only then.
func Sink(g *cfg.Graph) SinkStats {
	return sinkObserved(g, nil, nil)
}

// sinkObserved is Sink with telemetry: tr receives the provenance
// events of the rewrite, m the delayability solve's cost counters.
// Both may be nil.
func sinkObserved(g *cfg.Graph, tr *obs.Trace, m *obs.SolverMetrics) SinkStats {
	pt := g.CollectPatterns()
	ix := analysis.NewPatternIndex(pt)
	locals := ix.Locals(g)
	delay := analysis.DelayabilityWithLocals(g, locals)
	recordSolve(m, obs.SolveFull, delay.Stats, g.NumNodes())
	return applySink(g, ix, locals, delay, nil, tr)
}

// blockEdit is the rewrite notification shared by the transformation
// passes: old is the block's statement slice from before the rewrite,
// and ops encodes the new statement list's provenance — entry i of the
// new list is old[ops[i]] when ops[i] >= 0, or a freshly materialized
// instance of pattern ^ops[i] when ops[i] < 0. The incremental driver
// uses the encoding to splice solver-side per-block caches instead of
// re-resolving every statement against the pattern table.
type blockEdit func(n *cfg.Node, old []ir.Stmt, ops []int32)

// sinkScratch holds applySink's reusable per-block buffers.
type sinkScratch struct {
	removeIdx     []int   // candidate statement indices to drop
	entryPatterns []int   // pattern indices to insert at block entry
	exitPatterns  []int   // pattern indices to insert at block exit
	ops           []int32 // provenance of the rewritten statement list
	opsTail       []int32 // ops of the tail displaced by exit inserts
}

// applySink rewrites every block according to a solved delayability
// system. changed, when non-nil, is called once per block whose
// statement list was altered.
//
// Multiple instances inserted at the same block boundary are ordered
// by the pattern's first occurrence in the pre-sink program, not by
// pattern-table index: the insertion set is determined by the solved
// predicates, but table indices depend on the enumeration order of
// whichever program version built the table. First-occurrence order
// coincides with table order when the table was collected from the
// current program (the reference driver), and is equally computable
// from a superset table carried across the whole run (the incremental
// driver) — so both drivers emit identical text.
func applySink(g *cfg.Graph, ix *analysis.PatternIndex, locals *analysis.Locals, delay *analysis.DelayResult, changed blockEdit, tr *obs.Trace) SinkStats {
	pt := ix.Patterns
	var st SinkStats
	st.SolverVisits = delay.Stats.NodeVisits
	rank := occurrenceRanks(g, ix)
	var sc sinkScratch
	for _, n := range g.Nodes() {
		nIns := delay.NInsert[n.ID]
		xIns := delay.XInsert[n.ID]

		// Fast path: a block with no candidates and no insertions is
		// untouched (and emits no trace events). Three word scans
		// with early exit beat the ForEach closures below.
		if len(locals.Cands[n.ID]) == 0 && nIns.IsZero() && xIns.IsZero() {
			continue
		}

		sc.removeIdx = sc.removeIdx[:0]
		sc.entryPatterns = sc.entryPatterns[:0]
		sc.exitPatterns = sc.exitPatterns[:0]

		// A candidate whose pattern has X-INSERT here is fused:
		// removal and exit-insertion cancel, the occurrence stays.
		// Each statement is the candidate of at most its own
		// pattern, so the remove and keep sets cannot collide.
		// Iterated in ascending pattern order (not Cands order) to
		// keep trace-event order identical across drivers.
		locals.LocDelayed[n.ID].ForEach(func(pi int) {
			if si := locals.Candidate(n.ID, pi); si >= 0 {
				if !xIns.Get(pi) {
					sc.removeIdx = append(sc.removeIdx, si)
				} else if tr != nil {
					p := pt.Pattern(pi)
					tr.Record(obs.KindFuse, n.Label, string(p.LHS), p.String())
				}
			}
		})
		nIns.ForEach(func(pi int) {
			sc.entryPatterns = append(sc.entryPatterns, pi)
		})
		// Exit insertions for patterns without a local candidate.
		xIns.ForEach(func(pi int) {
			if locals.Candidate(n.ID, pi) < 0 {
				sc.exitPatterns = append(sc.exitPatterns, pi)
			}
		})
		if len(sc.removeIdx) == 0 && len(sc.entryPatterns) == 0 && len(sc.exitPatterns) == 0 {
			continue
		}
		sortByRank(sc.entryPatterns, rank)
		sortByRank(sc.exitPatterns, rank)

		newStmts := make([]ir.Stmt, 0, len(n.Stmts)+len(sc.entryPatterns)+len(sc.exitPatterns))
		sc.ops = sc.ops[:0]
		for _, pi := range sc.entryPatterns {
			newStmts = append(newStmts, pt.MakeAssign(pi))
			sc.ops = append(sc.ops, ^int32(pi))
			st.InsertedEntry++
			if tr != nil {
				p := pt.Pattern(pi)
				tr.Record(obs.KindInsertEntry, n.Label, string(p.LHS), p.String())
			}
		}
		for si, s := range n.Stmts {
			if containsInt(sc.removeIdx, si) {
				st.RemovedCandidates++
				if tr != nil {
					if p, ok := ir.PatternOf(s); ok {
						tr.Record(obs.KindSinkRemove, n.Label, string(p.LHS), p.String())
					}
				}
				continue
			}
			newStmts = append(newStmts, s)
			sc.ops = append(sc.ops, int32(si))
		}
		if len(sc.exitPatterns) > 0 {
			// Exit insertions. With critical edges split these
			// never target branching nodes (footnote 6), but Sink
			// is also usable standalone on unsplit graphs: a
			// Branch terminator must stay last, and placing the
			// instance before it is exact — X-DELAYED only holds
			// past a branch that does not block the pattern.
			insertAt := len(newStmts)
			if k := len(newStmts); k > 0 {
				if _, isBranch := newStmts[k-1].(ir.Branch); isBranch {
					insertAt = k - 1
				}
			}
			tail := append([]ir.Stmt(nil), newStmts[insertAt:]...)
			newStmts = newStmts[:insertAt]
			sc.opsTail = append(sc.opsTail[:0], sc.ops[insertAt:]...)
			sc.ops = sc.ops[:insertAt]
			for _, pi := range sc.exitPatterns {
				newStmts = append(newStmts, pt.MakeAssign(pi))
				sc.ops = append(sc.ops, ^int32(pi))
				st.InsertedExit++
				if tr != nil {
					p := pt.Pattern(pi)
					tr.Record(obs.KindInsertExit, n.Label, string(p.LHS), p.String())
				}
			}
			newStmts = append(newStmts, tail...)
			sc.ops = append(sc.ops, sc.opsTail...)
		}
		old := n.Stmts
		n.Stmts = newStmts
		if changed != nil {
			changed(n, old, sc.ops)
		}
	}
	return st
}

// occurrenceRanks maps each pattern index to the position of its first
// occurrence in g (node order, then statement order); patterns with no
// occurrence get a rank past every real one. Insertions are sourced
// from sinking candidates, so every inserted pattern has a real rank.
// Lookups go through the index's statement memo — this runs once per
// sinking round over every statement of the program.
func occurrenceRanks(g *cfg.Graph, ix *analysis.PatternIndex) []int {
	rank := make([]int, ix.Patterns.Len())
	for i := range rank {
		rank[i] = int(^uint(0) >> 1)
	}
	r := 0
	for _, n := range g.Nodes() {
		ix.ForEachPatternStmt(n, func(si, pi int) {
			if rank[pi] > r {
				rank[pi] = r
				r++
			}
		})
	}
	return rank
}

// sortByRank orders pattern indices by their occurrence rank.
func sortByRank(idx []int, rank []int) {
	if len(idx) < 2 {
		return
	}
	sort.Slice(idx, func(i, j int) bool { return rank[idx[i]] < rank[idx[j]] })
}

func containsInt(xs []int, x int) bool {
	for _, y := range xs {
		if y == x {
			return true
		}
	}
	return false
}

// SinkStable reports whether an assignment-sinking step would leave g
// invariant — the paper's termination condition for ask.
func SinkStable(g *cfg.Graph) bool {
	pt := g.CollectPatterns()
	return analysis.Delayability(g, pt).Stable(g)
}
