// Package core implements the paper's contribution: the assignment
// sinking procedure `ask` (Section 5.3), the dead and faint code
// elimination procedures `dce`/`fce` (Section 5.2), and the exhaustive
// fixpoint drivers `pde`/`pfe` (Section 5.1) that alternate them until
// the program stabilizes, capturing all second-order effects of
// Section 4. By Theorem 5.2 the stable program is optimal in the
// universe of programs reachable by admissible assignment sinkings and
// dead (faint) code eliminations.
package core

import (
	"pdce/internal/analysis"
	"pdce/internal/cfg"
	"pdce/internal/ir"
)

// SinkStats describes one application of the assignment sinking
// transformation.
type SinkStats struct {
	// RemovedCandidates is the number of sinking-candidate
	// occurrences taken out of their blocks (excluding candidates
	// kept in place by the X-INSERT fusion).
	RemovedCandidates int
	// InsertedEntry and InsertedExit count materialized instances.
	InsertedEntry, InsertedExit int
	// SolverVisits is the delayability solver's work.
	SolverVisits int
}

// Changed reports whether the transformation altered the program.
func (s SinkStats) Changed() bool {
	return s.RemovedCandidates > 0 || s.InsertedEntry > 0 || s.InsertedExit > 0
}

// Sink performs one exhaustive assignment-sinking step (`ask`) on g in
// place, for every assignment pattern simultaneously: it solves the
// delayability system of Table 2 and then
//
//   - removes every sinking candidate,
//   - inserts an instance of α at the entry of n where N-INSERT_n(α),
//   - inserts an instance of α at the exit of n where X-INSERT_n(α).
//
// When X-INSERT_n(α) holds and n itself contains the candidate of α,
// removal and exit-insertion cancel; the candidate is kept in place.
// This realizes the paper's stability condition (Section 5.4:
// X-INSERT = LOCDELAYED means invariance) without intra-block churn,
// and keeps program texts stable for golden tests.
//
// g must have its critical edges split (cfg.SplitCriticalEdges):
// footnote 6's guarantee that branching nodes receive no exit
// insertions — which the placement below relies on for blocks ending
// in a Branch — holds only then.
func Sink(g *cfg.Graph) SinkStats {
	pt := g.CollectPatterns()
	locals := analysis.ComputeLocals(g, pt)
	delay := analysis.DelayabilityWithLocals(g, locals)
	return applySink(g, pt, locals, delay)
}

func applySink(g *cfg.Graph, pt *ir.PatternTable, locals *analysis.Locals, delay *analysis.DelayResult) SinkStats {
	var st SinkStats
	st.SolverVisits = delay.Stats.NodeVisits
	for _, n := range g.Nodes() {
		nIns := delay.NInsert[n.ID]
		xIns := delay.XInsert[n.ID]
		cand := locals.CandidateIdx[n.ID]

		// keepInPlace[si] marks candidate statement indices fused
		// with an exit insertion; removeIdx marks candidates to
		// drop.
		var removeAny, insertAny bool
		keep := map[int]bool{}
		remove := map[int]bool{}
		for pi := 0; pi < pt.Len(); pi++ {
			si := cand[pi]
			if si < 0 {
				continue
			}
			if xIns.Get(pi) {
				keep[si] = true
			} else {
				remove[si] = true
				removeAny = true
			}
		}
		if !nIns.IsZero() {
			insertAny = true
		}
		// Exit insertions for patterns without a local candidate.
		var exitPatterns []int
		xIns.ForEach(func(pi int) {
			if cand[pi] < 0 {
				exitPatterns = append(exitPatterns, pi)
				insertAny = true
			}
		})
		if !removeAny && !insertAny {
			continue
		}

		newStmts := make([]ir.Stmt, 0, len(n.Stmts)+nIns.Count()+len(exitPatterns))
		nIns.ForEach(func(pi int) {
			newStmts = append(newStmts, pt.MakeAssign(pi))
			st.InsertedEntry++
		})
		for si, s := range n.Stmts {
			if remove[si] && !keep[si] {
				st.RemovedCandidates++
				continue
			}
			newStmts = append(newStmts, s)
		}
		// Exit insertions. With critical edges split these never
		// target branching nodes (footnote 6), but Sink is also
		// usable standalone on unsplit graphs: a Branch terminator
		// must stay last, and placing the instance before it is
		// exact — X-DELAYED only holds past a branch that does not
		// block the pattern.
		insertAt := len(newStmts)
		if k := len(newStmts); k > 0 {
			if _, isBranch := newStmts[k-1].(ir.Branch); isBranch {
				insertAt = k - 1
			}
		}
		tail := append([]ir.Stmt(nil), newStmts[insertAt:]...)
		newStmts = newStmts[:insertAt]
		for _, pi := range exitPatterns {
			newStmts = append(newStmts, pt.MakeAssign(pi))
			st.InsertedExit++
		}
		n.Stmts = append(newStmts, tail...)
	}
	return st
}

// SinkStable reports whether an assignment-sinking step would leave g
// invariant — the paper's termination condition for ask.
func SinkStable(g *cfg.Graph) bool {
	pt := g.CollectPatterns()
	return analysis.Delayability(g, pt).Stable(g)
}
