package core

import (
	"context"
	"fmt"
	"time"

	"pdce/internal/analysis"
	"pdce/internal/bitvec"
	"pdce/internal/cfg"
	"pdce/internal/dataflow"
	"pdce/internal/faultinject"
	"pdce/internal/ir"
	"pdce/internal/obs"
)

// Mode selects the elimination power of the driver.
type Mode int

// Driver modes.
const (
	// ModeDead alternates assignment sinking with dead code
	// elimination — the paper's pde.
	ModeDead Mode = iota
	// ModeFaint alternates assignment sinking with faint code
	// elimination — the paper's pfe.
	ModeFaint
)

func (m Mode) String() string {
	if m == ModeFaint {
		return "pfe"
	}
	return "pde"
}

// Options configures the driver.
type Options struct {
	// Mode selects pde (dead) or pfe (faint).
	Mode Mode

	// MaxRounds limits the number of eliminate+sink rounds; 0 means
	// iterate to the fixpoint. The paper suggests such limits as a
	// practical heuristic (Section 7); with a limit the result may
	// be suboptimal but is still correct.
	MaxRounds int

	// KeepSynthetic retains empty synthetic nodes from
	// critical-edge splitting in the result. By default they are
	// removed again (the paper draws them dashed; only the ones
	// that received an insertion materialize, like S4,5 in
	// Figure 6).
	KeepSynthetic bool

	// Hot, when non-nil, localizes the optimization to the blocks
	// it accepts — the paper's Section 7 "hot areas" heuristic.
	// Cold blocks are left textually untouched: no code moves out
	// of, into, or through them (arriving code stops at their
	// entry), and nothing inside them is eliminated.
	Hot HotPredicate

	// Solver selects the dataflow execution engine for the
	// incremental driver's block-level analyses (delayability and
	// dead variables): dense priority-worklist iteration, per-pattern
	// sparse propagation, or the default automatic choice by seed
	// density and graph reducibility. All three produce byte-identical
	// programs — the equivalence property tests pin this — so the
	// switch trades time, not results. The reference driver and the
	// slotwise faint analysis ignore it.
	Solver dataflow.SolverMode

	// NoIncremental forces the reference driver, which rebuilds the
	// variable and pattern universes and re-solves every analysis
	// from scratch each round. The default incremental driver fixes
	// the universes once and re-seeds each round's solvers from the
	// previous solution plus the blocks that changed; the two
	// produce identical programs (the equivalence property tests
	// pin this down), so this switch exists for cross-checking and
	// for measuring the incremental speedup. Hot-region runs always
	// use the reference driver.
	NoIncremental bool

	// Observe, when non-nil, is called after every elimination and
	// sinking phase with a snapshot of the intermediate program —
	// the way to watch the paper's second-order effects unfold.
	// Snapshotting clones the graph, so leave this nil in
	// performance-sensitive runs.
	Observe func(PhaseEvent)

	// Ctx, when non-nil, bounds the run: when it is cancelled or its
	// deadline expires, the fixpoint iteration stops at the next
	// checkpoint (a phase boundary, or mid-solve via the solvers'
	// cancellation hook) and Transform returns the best
	// phase-boundary graph reached so far together with an
	// *InterruptError. The graph is correct — every phase boundary
	// is — just possibly short of the optimum.
	Ctx context.Context

	// RoundBudget, when positive, bounds each eliminate+sink round's
	// wall-clock time. A round that exceeds it is abandoned the same
	// way a context expiry is. Ctx and RoundBudget compose; either
	// alone activates the watchdog.
	RoundBudget time.Duration

	// RoundCheck, when non-nil, is invoked after every completed
	// round with the current working graph (synthetic nodes still
	// present) and the 1-based round number. A non-nil return stops
	// the run: Transform rolls back to the last graph the check
	// accepted (the untransformed input when round 1 fails) and
	// returns it with a *RoundCheckError. This is the hook behind
	// verified mode: the caller supplies a semantics oracle
	// comparing the intermediate graph against the original input.
	RoundCheck func(g *cfg.Graph, round int) error

	// Collector, when non-nil, receives the run's telemetry: solver
	// cost counters per analysis, arena slab statistics, and — when
	// the collector's Trace is armed — the provenance event stream
	// (one event per split edge, elimination, candidate removal,
	// insertion, and fusion). Transform attaches the frozen snapshot
	// to Stats.Telemetry. A nil collector makes every collection
	// point a no-op; hot-region runs collect solver metrics only
	// coarsely and record no provenance.
	Collector *obs.Collector

	// Span, when non-nil, is the request-tracing span covering this
	// run: each fixpoint round opens a "solve.round" child with
	// "solve.eliminate"/"solve.sink" phase children, and Transform
	// annotates the span with round and effect counts on exit. The
	// driver never ends the span — its creator does. A nil span costs
	// one pointer check per phase and allocates nothing (the same
	// discipline as Collector).
	Span *obs.Span
}

// roundSpans manages one driver loop's round and phase child spans.
// All methods no-op when the run is untraced (nil parent), keeping the
// hot loop allocation-free.
type roundSpans struct {
	parent *obs.Span
	round  *obs.Span
	phase  *obs.Span
}

func (rs *roundSpans) beginRound(n int) {
	if rs.parent == nil {
		return
	}
	rs.endRound()
	rs.round = rs.parent.Child("solve.round")
	rs.round.SetInt("round", int64(n))
}

func (rs *roundSpans) beginPhase(name string) {
	if rs.parent == nil {
		return
	}
	rs.phase.End()
	rs.phase = rs.round.Child(name)
}

func (rs *roundSpans) endRound() {
	if rs.parent == nil {
		return
	}
	rs.phase.End()
	rs.phase = nil
	rs.round.End()
	rs.round = nil
}

// PhaseEvent describes one completed phase of the fixpoint iteration.
type PhaseEvent struct {
	// Round is the 1-based round number; Phase is "eliminate" or
	// "sink".
	Round int
	Phase string
	// Changed reports whether the phase altered the program;
	// Removed and Inserted count its statement-level effects.
	Changed           bool
	Removed, Inserted int
	// Graph is an isolated snapshot of the program after the phase.
	Graph *cfg.Graph
}

// Stats describes a full driver run.
type Stats struct {
	// Rounds is the number of eliminate+sink rounds executed
	// (including the final round that confirmed stability) — the
	// paper's iteration count r.
	Rounds int

	// Eliminated is the total number of assignments removed by
	// elimination steps; RemovedBySinking counts candidates whose
	// removal was not matched by any insertion (they sank off the
	// end of the program); Inserted counts materialized instances.
	Eliminated       int
	Inserted         int
	SinkRemoved      int
	CriticalEdges    int
	SyntheticRemoved int

	// OriginalStmts, FinalStmts and PeakStmts track code size; the
	// paper's growth factor w is PeakStmts/OriginalStmts
	// (Section 6.2).
	OriginalStmts, FinalStmts, PeakStmts int

	// ElimSolverWork and SinkSolverWork accumulate analysis effort.
	ElimSolverWork, SinkSolverWork int

	// Telemetry is the frozen observability snapshot of the run,
	// non-nil exactly when Options.Collector was set.
	Telemetry *obs.Telemetry
}

// GrowthFactor returns the paper's w: the maximal factor by which the
// instruction count grew during the run.
func (s Stats) GrowthFactor() float64 {
	if s.OriginalStmts == 0 {
		return 1
	}
	return float64(s.PeakStmts) / float64(s.OriginalStmts)
}

// errInvalid and errNoFixpoint keep error texts consistent between the
// deterministic and the chaotic driver.
func errInvalid(msg string) error {
	return fmt.Errorf("core: invalid graph: %s", msg)
}

func errNoFixpoint(mode Mode, limit int) error {
	return fmt.Errorf("core: %s did not stabilize within %d rounds (implementation bug)", mode, limit)
}

// roundCap returns the safety bound on driver rounds. Termination is
// guaranteed by the paper's Theorem 3.7; the cap converts a potential
// implementation bug from a hang into an error.
func roundCap(g *cfg.Graph) int {
	return 10*g.NumStmts() + 10*g.NumNodes() + 100
}

// Transform runs partial dead (faint) code elimination on a copy of g
// and returns the optimized program. The input graph is not modified.
//
// The driver first splits critical edges (Section 2.1), then
// alternates elimination and sinking until neither changes the
// program (Section 5.4). Eliminating before sinking lets the first
// sinking step start from a minimal program; the fixpoint is
// independent of this order (Theorem 3.7: any chaotic iteration that
// applies both transformations sufficiently often reaches the optimum).
//
// Two error classes come with a non-nil, usable graph (Partial
// reports them): an *InterruptError carries the best phase-boundary
// program the watchdog allowed, a *RoundCheckError the last program
// Options.RoundCheck accepted. All other errors return a nil graph.
func Transform(g *cfg.Graph, opt Options) (*cfg.Graph, Stats, error) {
	if errs := cfg.Validate(g); len(errs) > 0 {
		return nil, Stats{}, fmt.Errorf("core: invalid input graph: %s", errs[0])
	}
	var ops0 int64
	if opt.Collector != nil && bitvec.OpCountEnabled() {
		ops0 = bitvec.OpCount()
	}
	out := g.Clone()
	var st Stats
	st.OriginalStmts = out.NumStmts()
	st.PeakStmts = st.OriginalStmts
	synth := cfg.SplitCriticalEdges(out)
	st.CriticalEdges = len(synth)
	if tr := opt.Collector.Tracer(); tr != nil {
		tr.BeginPhase(0, "setup", "")
		for _, m := range synth {
			from, to := "?", "?"
			if ps := m.Preds(); len(ps) == 1 {
				from = ps[0].Label
			}
			if ss := m.Succs(); len(ss) == 1 {
				to = ss[0].Label
			}
			tr.RecordDetail(obs.KindSplitEdge, m.Label, "", "", from+"->"+to)
		}
	}

	var err error
	if opt.Hot != nil || opt.NoIncremental {
		out, err = runReference(out, opt, &st)
	} else {
		out, err = runIncremental(out, opt, &st)
	}
	if err != nil && !Partial(err) {
		return nil, st, err
	}

	if !opt.KeepSynthetic {
		st.SyntheticRemoved = cfg.RemoveEmptySynthetic(out)
	}
	st.FinalStmts = out.NumStmts()
	if errs := cfg.Validate(out); len(errs) > 0 {
		return nil, st, fmt.Errorf("core: %s produced invalid graph: %s", opt.Mode, errs[0])
	}
	if opt.Collector != nil {
		var opsDelta int64
		if bitvec.OpCountEnabled() {
			opsDelta = bitvec.OpCount() - ops0
		}
		st.Telemetry = opt.Collector.Snapshot(opsDelta)
	}
	if opt.Span != nil {
		opt.Span.SetAttr("mode", opt.Mode.String())
		opt.Span.SetInt("rounds", int64(st.Rounds))
		opt.Span.SetInt("eliminated", int64(st.Eliminated))
		opt.Span.SetInt("inserted", int64(st.Inserted))
		opt.Span.SetInt("stmts_in", int64(st.OriginalStmts))
		opt.Span.SetInt("stmts_out", int64(st.FinalStmts))
	}
	return out, st, err
}

// recordSolve folds one throwaway block-level solve's stats into a
// metrics sink — the reference driver's coarse accounting (its solvers
// live for a single phase, so there is nothing incremental to report).
func recordSolve(m *obs.SolverMetrics, kind obs.SolveKind, st dataflow.SolverStats, seedable int) {
	if st.Sparse {
		seedable = 0 // sparse solves have no dense seeding to reuse
	}
	m.RecordSolve(kind, obs.SolveCost{
		Visits:           st.NodeVisits,
		Pushes:           st.Pushes,
		Passes:           st.Passes,
		MaxWorklistDepth: st.MaxWorklistDepth,
		Seeded:           st.Seeded,
		Seedable:         seedable,
		VecOps:           st.VecOps,
		Sparse:           st.Sparse,
		Cancelled:        st.Cancelled,
	})
}

// runReference is the from-scratch driver loop: each phase rebuilds its
// universes and re-solves its analysis on the current program. It is
// the semantic reference for runIncremental and the only driver that
// supports hot-region localization. The returned graph is out itself,
// except after a verification rollback (the last accepted snapshot) or
// a watchdog interrupt under verification (ditto).
func runReference(out *cfg.Graph, opt Options, st *Stats) (*cfg.Graph, error) {
	col := opt.Collector
	tr := col.Tracer()
	elimAnalysis := "dead"
	if opt.Mode == ModeFaint {
		elimAnalysis = "faint"
	}
	var hot HotPredicate
	if opt.Hot != nil {
		hot = effectiveHot(opt.Hot)
	}
	eliminate := func() ElimStats {
		switch {
		case hot != nil && opt.Mode == ModeFaint:
			return eliminateFaintHot(out, hot)
		case hot != nil:
			return eliminateDeadHot(out, hot)
		case opt.Mode == ModeFaint:
			fr := analysis.FaintVarsObserve(out, out.CollectVars(), nil, col.FaintMetrics())
			return eliminateFaintSolved(out, fr, nil, tr)
		default:
			dr := analysis.DeadVars(out)
			recordSolve(col.DeadMetrics(), obs.SolveFull, dr.Stats, out.NumNodes())
			return eliminateDeadSolved(out, dr, nil, tr)
		}
	}
	sink := func() SinkStats {
		if hot != nil {
			return sinkHot(out, hot)
		}
		return sinkObserved(out, tr, col.DelayMetrics())
	}

	wd := newWatchdog(opt)
	rv := newRoundVerifier(opt, out)
	rs := roundSpans{parent: opt.Span}
	defer rs.endRound()
	limit := roundCap(out)
	for {
		if wd.expired() {
			return rv.best(out), wd.interrupt(st.Rounds, "round")
		}
		st.Rounds++
		wd.startRound()
		rs.beginRound(st.Rounds)
		if st.Rounds > limit {
			return nil, errNoFixpoint(opt.Mode, limit)
		}

		faultinject.Fire(faultinject.EliminatePhase, out)
		rs.beginPhase("solve.eliminate")
		tr.BeginPhase(st.Rounds, "eliminate", elimAnalysis)
		e := eliminate()
		st.Eliminated += e.Removed
		st.ElimSolverWork += e.SolverWork
		if opt.Observe != nil {
			opt.Observe(PhaseEvent{
				Round: st.Rounds, Phase: "eliminate",
				Changed: e.Changed(), Removed: e.Removed,
				Graph: out.Clone(),
			})
		}
		if wd.expired() {
			return rv.best(out), wd.interrupt(st.Rounds, "eliminate")
		}

		rs.beginPhase("solve.sink")
		tr.BeginPhase(st.Rounds, "sink", "delay")
		s := sink()
		st.Inserted += s.InsertedEntry + s.InsertedExit
		st.SinkRemoved += s.RemovedCandidates
		st.SinkSolverWork += s.SolverVisits
		faultinject.Fire(faultinject.SinkPhase, out)
		if opt.Observe != nil {
			opt.Observe(PhaseEvent{
				Round: st.Rounds, Phase: "sink",
				Changed:  s.Changed(),
				Removed:  s.RemovedCandidates,
				Inserted: s.InsertedEntry + s.InsertedExit,
				Graph:    out.Clone(),
			})
		}
		if n := out.NumStmts(); n > st.PeakStmts {
			st.PeakStmts = n
		}

		changed := e.Changed() || s.Changed()
		if good, err := rv.verifyRound(out, st.Rounds, changed); err != nil {
			return good, err
		}
		if !changed {
			return out, nil
		}
		if opt.MaxRounds > 0 && st.Rounds >= opt.MaxRounds {
			return out, nil
		}
	}
}

// dirtySet accumulates the blocks mutated since an analysis last saw
// the program. take hands the accumulated set to a solver and swaps in
// the spare buffer, so callbacks fired after the solve append to fresh
// storage while the solver still reads the returned slice.
type dirtySet struct {
	mark  []bool
	ids   []cfg.NodeID
	spare []cfg.NodeID
}

func newDirtySet(n int) *dirtySet { return &dirtySet{mark: make([]bool, n)} }

func (d *dirtySet) add(id cfg.NodeID) {
	if !d.mark[id] {
		d.mark[id] = true
		d.ids = append(d.ids, id)
	}
}

func (d *dirtySet) empty() bool { return len(d.ids) == 0 }

func (d *dirtySet) take() []cfg.NodeID {
	ids := d.ids
	for _, id := range ids {
		d.mark[id] = false
	}
	d.ids = d.spare[:0]
	d.spare = ids
	return ids
}

// runIncremental is the round-to-round reuse driver. The variable and
// pattern universes are collected once, after critical-edge splitting,
// and kept for the whole run; both are supersets of every later
// round's universe, which is exact (see DeadSolver and DelaySolver for
// the arguments). Each phase records the blocks it mutates; the next
// solve of each analysis re-seeds from the previous solution and the
// accumulated dirty set instead of restarting from Top.
//
// The faint analysis is slotwise over a flat instruction numbering
// that shifts with every mutation, so it is not re-seeded — but its
// solution is cached and reused whenever a round begins with no
// pending mutations (the common tail of long runs, where sinking has
// stabilized and elimination finds nothing).
func runIncremental(out *cfg.Graph, opt Options, st *Stats) (*cfg.Graph, error) {
	vars := out.CollectVars()
	pt := out.CollectPatterns()
	col := opt.Collector
	tr := col.Tracer()

	wd := newWatchdog(opt)
	rv := newRoundVerifier(opt, out)
	cancel := wd.checkFunc()

	delay := analysis.NewDelaySolver(out, pt)
	delay.SetCancel(cancel)
	delay.SetMetrics(col.DelayMetrics())
	delay.SetMode(opt.Solver)
	var deadSolver *analysis.DeadSolver
	var faintRes *analysis.FaintResult
	if opt.Mode == ModeDead {
		deadSolver = analysis.NewDeadSolver(out, vars)
		deadSolver.SetCancel(cancel)
		deadSolver.SetMetrics(col.DeadMetrics())
		deadSolver.SetMode(opt.Solver)
	}
	if col != nil {
		// The solvers live for the whole run; fold their arena slab
		// state into the collector on every exit path.
		defer func() {
			a := delay.ArenaStats()
			col.AddArena(a.Slabs, a.CapWords, a.UsedWords)
			if deadSolver != nil {
				a = deadSolver.ArenaStats()
				col.AddArena(a.Slabs, a.CapWords, a.UsedWords)
			}
		}()
	}

	// pendElim holds blocks changed since the elimination analysis
	// last saw the program; pendSink since the delayability solver
	// did. An elimination in round r dirties the same round's sink
	// and the next round's elimination; a sink dirties both of the
	// next round's phases.
	pendElim := newDirtySet(out.NumNodes())
	pendSink := newDirtySet(out.NumNodes())
	onChange := func(n *cfg.Node, old []ir.Stmt, ops []int32) {
		// Splice the solvers' per-block statement caches along the
		// rewrite instead of letting them re-resolve the block against
		// the pattern table (sync is optional — a missed or stale sync
		// is caught by the caches' slice-header validation).
		delay.Index.SyncRewrite(n, old, ops)
		if deadSolver != nil {
			deadSolver.SyncRewrite(n, old, ops)
		}
		pendElim.add(n.ID)
		pendSink.add(n.ID)
	}

	rs := roundSpans{parent: opt.Span}
	defer rs.endRound()
	limit := roundCap(out)
	for {
		if wd.expired() {
			return rv.best(out), wd.interrupt(st.Rounds, "round")
		}
		st.Rounds++
		wd.startRound()
		rs.beginRound(st.Rounds)
		if st.Rounds > limit {
			return nil, errNoFixpoint(opt.Mode, limit)
		}

		faultinject.Fire(faultinject.EliminatePhase, out)
		rs.beginPhase("solve.eliminate")
		var e ElimStats
		if opt.Mode == ModeFaint {
			tr.BeginPhase(st.Rounds, "eliminate", "faint")
			if faintRes == nil || !pendElim.empty() {
				faintRes = analysis.FaintVarsObserve(out, vars, cancel, col.FaintMetrics())
				if faintRes.Cancelled {
					faintRes = nil
					return rv.best(out), wd.interrupt(st.Rounds, "eliminate")
				}
				pendElim.take()
				e = eliminateFaintSolved(out, faintRes, onChange, tr)
			} else {
				col.FaintMetrics().RecordCacheHit()
				e = eliminateFaintSolved(out, faintRes, onChange, tr)
				e.SolverWork = 0 // cached solution, no new work
			}
		} else {
			tr.BeginPhase(st.Rounds, "eliminate", "dead")
			res := deadSolver.Solve(pendElim.take())
			if res.Stats.Cancelled {
				return rv.best(out), wd.interrupt(st.Rounds, "eliminate")
			}
			e = eliminateDeadSolved(out, res, onChange, tr)
		}
		st.Eliminated += e.Removed
		st.ElimSolverWork += e.SolverWork
		if opt.Observe != nil {
			opt.Observe(PhaseEvent{
				Round: st.Rounds, Phase: "eliminate",
				Changed: e.Changed(), Removed: e.Removed,
				Graph: out.Clone(),
			})
		}
		if e.Changed() && opt.Mode == ModeFaint {
			// The cached flat numbering is stale now.
			faintRes = nil
		}

		if wd.expired() {
			return rv.best(out), wd.interrupt(st.Rounds, "sink")
		}
		rs.beginPhase("solve.sink")
		tr.BeginPhase(st.Rounds, "sink", "delay")
		dres := delay.Solve(pendSink.take())
		if dres.Stats.Cancelled {
			return rv.best(out), wd.interrupt(st.Rounds, "sink")
		}
		s := applySink(out, delay.Index, delay.Locals(), dres, onChange, tr)
		st.Inserted += s.InsertedEntry + s.InsertedExit
		st.SinkRemoved += s.RemovedCandidates
		st.SinkSolverWork += s.SolverVisits
		faultinject.Fire(faultinject.SinkPhase, out)
		if opt.Observe != nil {
			opt.Observe(PhaseEvent{
				Round: st.Rounds, Phase: "sink",
				Changed:  s.Changed(),
				Removed:  s.RemovedCandidates,
				Inserted: s.InsertedEntry + s.InsertedExit,
				Graph:    out.Clone(),
			})
		}
		if s.Changed() {
			faintRes = nil
		}
		if n := out.NumStmts(); n > st.PeakStmts {
			st.PeakStmts = n
		}

		changed := e.Changed() || s.Changed()
		if good, err := rv.verifyRound(out, st.Rounds, changed); err != nil {
			return good, err
		}
		if !changed {
			return out, nil
		}
		if opt.MaxRounds > 0 && st.Rounds >= opt.MaxRounds {
			return out, nil
		}
	}
}

// PDE runs partial dead code elimination (sinking + dead code
// elimination) to its fixpoint.
func PDE(g *cfg.Graph) (*cfg.Graph, Stats, error) {
	return Transform(g, Options{Mode: ModeDead})
}

// PFE runs partial faint code elimination (sinking + faint code
// elimination) to its fixpoint.
func PFE(g *cfg.Graph) (*cfg.Graph, Stats, error) {
	return Transform(g, Options{Mode: ModeFaint})
}
