package core

import (
	"fmt"

	"pdce/internal/cfg"
)

// Mode selects the elimination power of the driver.
type Mode int

// Driver modes.
const (
	// ModeDead alternates assignment sinking with dead code
	// elimination — the paper's pde.
	ModeDead Mode = iota
	// ModeFaint alternates assignment sinking with faint code
	// elimination — the paper's pfe.
	ModeFaint
)

func (m Mode) String() string {
	if m == ModeFaint {
		return "pfe"
	}
	return "pde"
}

// Options configures the driver.
type Options struct {
	// Mode selects pde (dead) or pfe (faint).
	Mode Mode

	// MaxRounds limits the number of eliminate+sink rounds; 0 means
	// iterate to the fixpoint. The paper suggests such limits as a
	// practical heuristic (Section 7); with a limit the result may
	// be suboptimal but is still correct.
	MaxRounds int

	// KeepSynthetic retains empty synthetic nodes from
	// critical-edge splitting in the result. By default they are
	// removed again (the paper draws them dashed; only the ones
	// that received an insertion materialize, like S4,5 in
	// Figure 6).
	KeepSynthetic bool

	// Hot, when non-nil, localizes the optimization to the blocks
	// it accepts — the paper's Section 7 "hot areas" heuristic.
	// Cold blocks are left textually untouched: no code moves out
	// of, into, or through them (arriving code stops at their
	// entry), and nothing inside them is eliminated.
	Hot HotPredicate

	// Observe, when non-nil, is called after every elimination and
	// sinking phase with a snapshot of the intermediate program —
	// the way to watch the paper's second-order effects unfold.
	// Snapshotting clones the graph, so leave this nil in
	// performance-sensitive runs.
	Observe func(PhaseEvent)
}

// PhaseEvent describes one completed phase of the fixpoint iteration.
type PhaseEvent struct {
	// Round is the 1-based round number; Phase is "eliminate" or
	// "sink".
	Round int
	Phase string
	// Changed reports whether the phase altered the program;
	// Removed and Inserted count its statement-level effects.
	Changed           bool
	Removed, Inserted int
	// Graph is an isolated snapshot of the program after the phase.
	Graph *cfg.Graph
}

// Stats describes a full driver run.
type Stats struct {
	// Rounds is the number of eliminate+sink rounds executed
	// (including the final round that confirmed stability) — the
	// paper's iteration count r.
	Rounds int

	// Eliminated is the total number of assignments removed by
	// elimination steps; RemovedBySinking counts candidates whose
	// removal was not matched by any insertion (they sank off the
	// end of the program); Inserted counts materialized instances.
	Eliminated       int
	Inserted         int
	SinkRemoved      int
	CriticalEdges    int
	SyntheticRemoved int

	// OriginalStmts, FinalStmts and PeakStmts track code size; the
	// paper's growth factor w is PeakStmts/OriginalStmts
	// (Section 6.2).
	OriginalStmts, FinalStmts, PeakStmts int

	// ElimSolverWork and SinkSolverWork accumulate analysis effort.
	ElimSolverWork, SinkSolverWork int
}

// GrowthFactor returns the paper's w: the maximal factor by which the
// instruction count grew during the run.
func (s Stats) GrowthFactor() float64 {
	if s.OriginalStmts == 0 {
		return 1
	}
	return float64(s.PeakStmts) / float64(s.OriginalStmts)
}

// errInvalid and errNoFixpoint keep error texts consistent between the
// deterministic and the chaotic driver.
func errInvalid(msg string) error {
	return fmt.Errorf("core: invalid graph: %s", msg)
}

func errNoFixpoint(mode Mode, limit int) error {
	return fmt.Errorf("core: %s did not stabilize within %d rounds (implementation bug)", mode, limit)
}

// roundCap returns the safety bound on driver rounds. Termination is
// guaranteed by the paper's Theorem 3.7; the cap converts a potential
// implementation bug from a hang into an error.
func roundCap(g *cfg.Graph) int {
	return 10*g.NumStmts() + 10*g.NumNodes() + 100
}

// Transform runs partial dead (faint) code elimination on a copy of g
// and returns the optimized program. The input graph is not modified.
//
// The driver first splits critical edges (Section 2.1), then
// alternates elimination and sinking until neither changes the
// program (Section 5.4). Eliminating before sinking lets the first
// sinking step start from a minimal program; the fixpoint is
// independent of this order (Theorem 3.7: any chaotic iteration that
// applies both transformations sufficiently often reaches the optimum).
func Transform(g *cfg.Graph, opt Options) (*cfg.Graph, Stats, error) {
	if errs := cfg.Validate(g); len(errs) > 0 {
		return nil, Stats{}, fmt.Errorf("core: invalid input graph: %s", errs[0])
	}
	out := g.Clone()
	var st Stats
	st.OriginalStmts = out.NumStmts()
	st.PeakStmts = st.OriginalStmts
	st.CriticalEdges = len(cfg.SplitCriticalEdges(out))

	var hot HotPredicate
	if opt.Hot != nil {
		hot = effectiveHot(opt.Hot)
	}
	eliminate := func() ElimStats {
		switch {
		case hot != nil && opt.Mode == ModeFaint:
			return eliminateFaintHot(out, hot)
		case hot != nil:
			return eliminateDeadHot(out, hot)
		case opt.Mode == ModeFaint:
			return EliminateFaint(out)
		default:
			return EliminateDead(out)
		}
	}
	sink := func() SinkStats {
		if hot != nil {
			return sinkHot(out, hot)
		}
		return Sink(out)
	}

	limit := roundCap(out)
	for {
		st.Rounds++
		if st.Rounds > limit {
			return nil, st, fmt.Errorf("core: %s did not stabilize within %d rounds (implementation bug)", opt.Mode, limit)
		}

		e := eliminate()
		st.Eliminated += e.Removed
		st.ElimSolverWork += e.SolverWork
		if opt.Observe != nil {
			opt.Observe(PhaseEvent{
				Round: st.Rounds, Phase: "eliminate",
				Changed: e.Changed(), Removed: e.Removed,
				Graph: out.Clone(),
			})
		}

		s := sink()
		st.Inserted += s.InsertedEntry + s.InsertedExit
		st.SinkRemoved += s.RemovedCandidates
		st.SinkSolverWork += s.SolverVisits
		if opt.Observe != nil {
			opt.Observe(PhaseEvent{
				Round: st.Rounds, Phase: "sink",
				Changed:  s.Changed(),
				Removed:  s.RemovedCandidates,
				Inserted: s.InsertedEntry + s.InsertedExit,
				Graph:    out.Clone(),
			})
		}
		if n := out.NumStmts(); n > st.PeakStmts {
			st.PeakStmts = n
		}

		if !e.Changed() && !s.Changed() {
			break
		}
		if opt.MaxRounds > 0 && st.Rounds >= opt.MaxRounds {
			break
		}
	}

	if !opt.KeepSynthetic {
		st.SyntheticRemoved = cfg.RemoveEmptySynthetic(out)
	}
	st.FinalStmts = out.NumStmts()
	if errs := cfg.Validate(out); len(errs) > 0 {
		return nil, st, fmt.Errorf("core: %s produced invalid graph: %s", opt.Mode, errs[0])
	}
	return out, st, nil
}

// PDE runs partial dead code elimination (sinking + dead code
// elimination) to its fixpoint.
func PDE(g *cfg.Graph) (*cfg.Graph, Stats, error) {
	return Transform(g, Options{Mode: ModeDead})
}

// PFE runs partial faint code elimination (sinking + faint code
// elimination) to its fixpoint.
func PFE(g *cfg.Graph) (*cfg.Graph, Stats, error) {
	return Transform(g, Options{Mode: ModeFaint})
}
