package core_test

import (
	"testing"

	"pdce/internal/core"
	"pdce/internal/progen"
)

// TestIncrementalMatchesReference pins down the incremental driver's
// exactness: across a spread of random programs (structured, loopy,
// dense, irreducible) and both modes, the round-to-round reuse driver
// must produce byte-identical output text and identical run statistics
// to the from-scratch reference driver. 50 seeds x 4 shapes = 200
// programs per mode.
func TestIncrementalMatchesReference(t *testing.T) {
	graphs := randomPrograms(t, 50)
	for _, mode := range []core.Mode{core.ModeDead, core.ModeFaint} {
		for _, g := range graphs {
			inc, incSt, err := core.Transform(g, core.Options{Mode: mode})
			if err != nil {
				t.Fatalf("%s/%v incremental: %v", g.Name, mode, err)
			}
			ref, refSt, err := core.Transform(g, core.Options{Mode: mode, NoIncremental: true})
			if err != nil {
				t.Fatalf("%s/%v reference: %v", g.Name, mode, err)
			}
			if got, want := inc.Format(), ref.Format(); got != want {
				t.Errorf("%s/%v: incremental and reference outputs differ\nincremental:\n%s\nreference:\n%s",
					g.Name, mode, got, want)
				continue
			}
			if incSt.Rounds != refSt.Rounds ||
				incSt.Eliminated != refSt.Eliminated ||
				incSt.Inserted != refSt.Inserted ||
				incSt.SinkRemoved != refSt.SinkRemoved ||
				incSt.PeakStmts != refSt.PeakStmts {
				t.Errorf("%s/%v: stats diverge: incremental %+v, reference %+v",
					g.Name, mode, incSt, refSt)
			}
		}
	}
}

// TestIncrementalMatchesReferenceTruncated checks the equivalence also
// holds under a MaxRounds truncation (the drivers must agree on the
// intermediate program, not just the fixpoint).
func TestIncrementalMatchesReferenceTruncated(t *testing.T) {
	for seed := 0; seed < 25; seed++ {
		g := progen.Generate(progen.Params{Seed: int64(seed), Stmts: 60, Vars: 5, LoopProb: 0.2, BranchProb: 0.3})
		for _, rounds := range []int{1, 2} {
			inc, _, err := core.Transform(g, core.Options{Mode: core.ModeDead, MaxRounds: rounds})
			if err != nil {
				t.Fatal(err)
			}
			ref, _, err := core.Transform(g, core.Options{Mode: core.ModeDead, MaxRounds: rounds, NoIncremental: true})
			if err != nil {
				t.Fatal(err)
			}
			if inc.Format() != ref.Format() {
				t.Errorf("seed %d, MaxRounds=%d: outputs differ\nincremental:\n%s\nreference:\n%s",
					seed, rounds, inc.Format(), ref.Format())
			}
		}
	}
}

// TestIncrementalObserveSnapshots checks that the per-phase snapshots
// of the two drivers agree — the incremental driver must not merely
// reach the same fixpoint but walk the same intermediate programs.
func TestIncrementalObserveSnapshots(t *testing.T) {
	for seed := 0; seed < 10; seed++ {
		g := progen.Generate(progen.Params{Seed: int64(seed), Stmts: 50, Vars: 4, BranchProb: 0.3})
		snap := func(noInc bool) []string {
			var out []string
			_, _, err := core.Transform(g, core.Options{
				Mode:          core.ModeDead,
				NoIncremental: noInc,
				Observe: func(ev core.PhaseEvent) {
					out = append(out, ev.Phase+"\n"+ev.Graph.Format())
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			return out
		}
		inc, ref := snap(false), snap(true)
		if len(inc) != len(ref) {
			t.Fatalf("seed %d: phase counts differ: %d vs %d", seed, len(inc), len(ref))
		}
		for i := range inc {
			if inc[i] != ref[i] {
				t.Errorf("seed %d: phase %d snapshots differ\nincremental:\n%s\nreference:\n%s",
					seed, i, inc[i], ref[i])
				break
			}
		}
	}
}
