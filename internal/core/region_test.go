package core_test

import (
	"strings"
	"testing"

	"pdce/internal/analysis"
	"pdce/internal/cfg"
	"pdce/internal/core"
	"pdce/internal/progen"
	"pdce/internal/verify"
)

// hotSet builds a HotPredicate from labels.
func hotSet(labels ...string) core.HotPredicate {
	set := make(map[string]bool, len(labels))
	for _, l := range labels {
		set[l] = true
	}
	return func(n *cfg.Node) bool { return set[n.Label] }
}

// TestHotRegionFullEqualsUnrestricted: marking every block hot must
// reproduce the unrestricted result exactly.
func TestHotRegionFullEqualsUnrestricted(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := progen.Generate(progen.Params{Seed: seed, Stmts: 50, LoopProb: 0.15, BranchProb: 0.25})
		full, _, err := core.PDE(g)
		if err != nil {
			t.Fatal(err)
		}
		allHot, _, err := core.Transform(g, core.Options{
			Mode: core.ModeDead,
			Hot:  func(*cfg.Node) bool { return true },
		})
		if err != nil {
			t.Fatal(err)
		}
		if diffs := cfg.Diff(full, allHot); len(diffs) > 0 {
			t.Errorf("seed %d: all-hot differs from unrestricted:\n  %s",
				seed, strings.Join(diffs, "\n  "))
		}
	}
}

// TestHotRegionEmptyIsIdentity: with no hot blocks, the program is
// returned unchanged (modulo nothing — even synthetic split nodes are
// removed again).
func TestHotRegionEmptyIsIdentity(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := progen.Generate(progen.Params{Seed: seed, Stmts: 40})
		out, st, err := core.Transform(g, core.Options{
			Mode: core.ModeDead,
			Hot:  func(*cfg.Node) bool { return false },
		})
		if err != nil {
			t.Fatal(err)
		}
		if st.Eliminated != 0 || st.Inserted != 0 || st.SinkRemoved != 0 {
			t.Errorf("seed %d: empty region still transformed: %+v", seed, st)
		}
		if diffs := cfg.Diff(g, out); len(diffs) > 0 {
			t.Errorf("seed %d: program changed:\n  %s", seed, strings.Join(diffs, "\n  "))
		}
	}
}

// TestHotRegionPreservesSemantics: arbitrary regions never break the
// guarantees.
func TestHotRegionPreservesSemantics(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		params := progen.Params{Seed: seed, Stmts: 60, Vars: 5, LoopProb: 0.15, BranchProb: 0.25}
		if seed%4 == 0 {
			params.Irreducible = true
		}
		g := progen.Generate(params)
		// Region: every block whose ID is even — deliberately
		// arbitrary and disconnected.
		hot := func(n *cfg.Node) bool { return n.ID%2 == 0 }
		for _, mode := range []core.Mode{core.ModeDead, core.ModeFaint} {
			out, _, err := core.Transform(g, core.Options{Mode: mode, Hot: hot})
			if err != nil {
				t.Fatalf("seed %d/%v: %v", seed, mode, err)
			}
			rep := verify.CheckTransformed(g, out, verify.Options{Seeds: 24, Fuel: 512})
			if !rep.OK() {
				t.Errorf("seed %d/%v: %s", seed, mode, rep)
			}
		}
	}
}

// TestHotRegionColdBlocksUntouched: statements of cold blocks are
// byte-identical after the run.
func TestHotRegionColdBlocksUntouched(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := progen.Generate(progen.Params{Seed: seed, Stmts: 60, Vars: 5, BranchProb: 0.3})
		hot := func(n *cfg.Node) bool { return n.ID%3 == 0 }
		out, _, err := core.Transform(g, core.Options{Mode: core.ModeDead, Hot: hot})
		if err != nil {
			t.Fatal(err)
		}
		before := g.Snapshot()
		after := out.Snapshot()
		for _, n := range g.Nodes() {
			if hot(n) {
				continue
			}
			a := strings.Join(before[n.Label], ";")
			// Cold blocks may only GAIN statements at their
			// entry boundary (code arriving from a hot
			// neighbourhood lands there); the original suffix
			// must be intact. They must never lose anything.
			b := strings.Join(after[n.Label], ";")
			if !strings.HasSuffix(b, a) {
				t.Errorf("seed %d: cold block %s modified beyond boundary insertions:\n  before %q\n  after  %q",
					seed, n.Label, a, b)
			}
		}
	}
}

// TestHotRegionLocalizesFigure3: with the loop marked hot and the
// rest cold, the loop-invariant pair still leaves the loop (it lands
// at the boundary), while a fully cold program keeps it.
func TestHotRegionLocalizesFigure3(t *testing.T) {
	src := `
node 1 {}
node 2 {
  c := y-e
  x := c+1
}
node 3 {}
node 4 {}
node 7 { out(c) }
node 8 { out(x) }
node 9 {}
edge s 1
edge 1 2
edge 2 3
edge 3 2
edge 3 4
edge 4 7
edge 4 8
edge 7 9
edge 8 9
edge 9 e
`
	g := parse(t, src)
	out, st, err := core.Transform(g, core.Options{
		Mode: core.ModeDead,
		Hot:  hotSet("2", "3"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.SinkRemoved == 0 {
		t.Fatalf("nothing moved out of the hot loop:\n%s", out)
	}
	// The pair leaves the loop blocks and stops at the cold
	// boundary (entry of node 4 or the split backedge node).
	n2, _ := out.NodeByLabel("2")
	if len(n2.Stmts) != 0 {
		t.Errorf("hot loop body not emptied: %v", n2.Stmts)
	}
	rep := verify.CheckTransformed(g, out, verify.Options{Seeds: 32})
	if !rep.OK() {
		t.Error(rep)
	}
}

// TestPressureMeasurement exercises the liveness-pressure metric on a
// pde run. Sinking is two-sided for pressure (the moved target's range
// shrinks, its operands' ranges stretch), so the robust claims are:
// peak pressure does not grow here, and eliminating partially dead
// code strictly reduces mean pressure when a dead range disappears.
func TestPressureMeasurement(t *testing.T) {
	// Elimination effect: y := a+b is dead on one branch; pde's
	// cleanup removes y's useless range there.
	g := parse(t, `
node 1 { y := a+b }
node 2 {}
node 3 { y := c }
node 4 {}
node 5 { out(x+y) }
edge s 1
edge 1 2
edge 2 3
edge 2 4
edge 3 5
edge 4 5
edge 5 e
`)
	opt, _, err := core.PDE(g)
	if err != nil {
		t.Fatal(err)
	}
	before := analysis.Pressure(g)
	after := analysis.Pressure(opt)
	if after.Max > before.Max {
		t.Errorf("peak pressure grew: %d -> %d\n%s", before.Max, after.Max, opt)
	}
	// Direction of the *mean* is workload-dependent (sinking
	// y := a+b here shortens y's range but stretches a's and b's —
	// a net increase, which is fine: pde optimizes executed work,
	// not pressure). Assert only metric consistency.
	for _, st := range []analysis.PressureStats{before, after} {
		if st.Points == 0 || st.Total == 0 {
			t.Error("metric sampled nothing")
		}
		if st.Max > st.Total || st.Mean() > float64(st.Max) {
			t.Errorf("inconsistent stats: %+v", st)
		}
	}
	// Determinism.
	if again := analysis.Pressure(g); again != before {
		t.Errorf("pressure not deterministic: %+v vs %+v", before, again)
	}
}
