package core

import (
	"math/rand"

	"pdce/internal/cfg"
	"pdce/internal/ir"
)

// The paper (end of Section 3) states that the optimal program is not
// unique, but that a canonical representative exists which is unique
// up to some reordering inside basic blocks; and Theorem 3.7 states
// that ANY sequence of sinking and elimination steps that applies both
// "sufficiently often" reaches an optimum. This file provides the
// machinery to check both claims mechanically:
//
//   - Canonicalize normalizes intra-block statement order by bubbling
//     data-independent adjacent statements into ascending textual
//     order (relevant statements are barriers: their mutual order is
//     observable). Two optimal programs that differ only by the
//     permitted reordering canonicalize identically.
//   - TransformChaotic drives the fixpoint with a seeded random
//     interleaving of elimination and sinking steps instead of the
//     deterministic alternation.

// independentStmts reports whether adjacent statements a; b can be
// swapped without changing semantics: no data dependence in either
// direction, and not both observable (relevant statements must keep
// their order among themselves). Branch statements never move (they
// must remain block terminators).
func independentStmts(a, b ir.Stmt) bool {
	if _, isBranch := a.(ir.Branch); isBranch {
		return false
	}
	if _, isBranch := b.(ir.Branch); isBranch {
		return false
	}
	if ir.IsRelevant(a) && ir.IsRelevant(b) {
		return false
	}
	if da, ok := ir.Def(a); ok {
		if ir.UsesVarStmt(b, da) || ir.Mods(b, da) {
			return false
		}
	}
	if db, ok := ir.Def(b); ok {
		if ir.UsesVarStmt(a, db) || ir.Mods(a, db) {
			return false
		}
	}
	return true
}

// Canonicalize reorders data-independent adjacent statements of every
// block into ascending textual order, in place. The result is a
// canonical representative of the program's intra-block reordering
// class: a fixpoint of adjacent swaps ordered by statement text.
func Canonicalize(g *cfg.Graph) {
	for _, n := range g.Nodes() {
		stmts := n.Stmts
		for changed := true; changed; {
			changed = false
			for i := 0; i+1 < len(stmts); i++ {
				a, b := stmts[i], stmts[i+1]
				if independentStmts(a, b) && b.String() < a.String() {
					stmts[i], stmts[i+1] = b, a
					changed = true
				}
			}
		}
	}
}

// CanonicallyEqual reports whether two programs are identical up to
// the reordering of independent statements within blocks — the paper's
// equivalence of optimal programs.
func CanonicallyEqual(a, b *cfg.Graph) bool {
	ca, cb := a.Clone(), b.Clone()
	Canonicalize(ca)
	Canonicalize(cb)
	return cfg.Equal(ca, cb)
}

// TransformChaotic runs the optimization as a chaotic iteration
// (Theorem 3.7): at each step a seeded coin decides whether to apply
// an elimination or a sinking step; the loop ends once both leave the
// program unchanged back to back. The result must be an optimum — the
// canonical-equality tests compare it against the deterministic
// driver's result.
func TransformChaotic(g *cfg.Graph, mode Mode, seed int64) (*cfg.Graph, Stats, error) {
	if errs := cfg.Validate(g); len(errs) > 0 {
		return nil, Stats{}, errInvalid(errs[0])
	}
	out := g.Clone()
	var st Stats
	st.OriginalStmts = out.NumStmts()
	st.PeakStmts = st.OriginalStmts
	st.CriticalEdges = len(cfg.SplitCriticalEdges(out))

	rng := rand.New(rand.NewSource(seed))
	limit := roundCap(out)
	elimStable, sinkStable := false, false
	for steps := 0; !(elimStable && sinkStable); steps++ {
		if steps > limit {
			return nil, st, errNoFixpoint(mode, limit)
		}
		st.Rounds++
		if rng.Intn(2) == 0 {
			var e ElimStats
			if mode == ModeFaint {
				e = EliminateFaint(out)
			} else {
				e = EliminateDead(out)
			}
			st.Eliminated += e.Removed
			elimStable = !e.Changed()
			if e.Changed() {
				sinkStable = false
			}
		} else {
			s := Sink(out)
			st.Inserted += s.InsertedEntry + s.InsertedExit
			st.SinkRemoved += s.RemovedCandidates
			sinkStable = !s.Changed()
			if s.Changed() {
				elimStable = false
			}
		}
		if n := out.NumStmts(); n > st.PeakStmts {
			st.PeakStmts = n
		}
	}

	st.SyntheticRemoved = cfg.RemoveEmptySynthetic(out)
	st.FinalStmts = out.NumStmts()
	if errs := cfg.Validate(out); len(errs) > 0 {
		return nil, st, errInvalid(errs[0])
	}
	return out, st, nil
}
