package core_test

import (
	"fmt"
	"strings"
	"testing"

	"pdce/internal/cfg"
	"pdce/internal/core"
	"pdce/internal/ir"
	"pdce/internal/progen"
	"pdce/internal/verify"
)

// randomPrograms yields a spread of generated workloads: structured
// programs of varying shapes and irreducible arbitrary graphs.
func randomPrograms(tb testing.TB, count int) []*cfg.Graph {
	tb.Helper()
	var out []*cfg.Graph
	for seed := 0; seed < count; seed++ {
		params := []progen.Params{
			{Seed: int64(seed), Stmts: 30},
			{Seed: int64(seed), Stmts: 60, Vars: 4, LoopProb: 0.2, BranchProb: 0.3},
			{Seed: int64(seed), Stmts: 45, Vars: 12, CondProb: 0.9},
			{Seed: int64(seed), Stmts: 40, Irreducible: true},
		}
		for _, p := range params {
			out = append(out, progen.Generate(p))
		}
	}
	return out
}

// TestTransformPreservesSemantics replays executions of random
// programs against their pde/pfe results: identical outputs (up to
// fault reduction) and no impaired execution.
func TestTransformPreservesSemantics(t *testing.T) {
	for _, g := range randomPrograms(t, 12) {
		for _, mode := range []core.Mode{core.ModeDead, core.ModeFaint} {
			opt, _, err := core.Transform(g, core.Options{Mode: mode})
			if err != nil {
				t.Fatalf("%s/%v: %v", g.Name, mode, err)
			}
			rep := verify.CheckTransformed(g, opt, verify.Options{Seeds: 24, Fuel: 512})
			if !rep.OK() {
				t.Errorf("%s/%v: %s\noriginal:\n%s\ntransformed:\n%s",
					g.Name, mode, rep, g, opt)
			}
		}
	}
}

// TestTransformWithFaultsPreservesSemantics exercises the permitted
// semantics change: programs with division can only lose run-time
// errors, never gain them.
func TestTransformWithFaultsPreservesSemantics(t *testing.T) {
	for seed := 0; seed < 20; seed++ {
		g := progen.Generate(progen.Params{Seed: int64(seed), Stmts: 40, DivProb: 0.3, Vars: 5})
		opt, _, err := core.PDE(g)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		rep := verify.CheckTransformed(g, opt, verify.Options{Seeds: 32, Fuel: 512})
		if !rep.OK() {
			t.Errorf("%s: %s", g.Name, rep)
		}
	}
}

// TestTransformIdempotentRandom re-runs the driver on its own output.
func TestTransformIdempotentRandom(t *testing.T) {
	for _, g := range randomPrograms(t, 6) {
		for _, mode := range []core.Mode{core.ModeDead, core.ModeFaint} {
			once, _, err := core.Transform(g, core.Options{Mode: mode})
			if err != nil {
				t.Fatalf("%s/%v: %v", g.Name, mode, err)
			}
			twice, _, err := core.Transform(once, core.Options{Mode: mode})
			if err != nil {
				t.Fatalf("%s/%v second: %v", g.Name, mode, err)
			}
			if diffs := cfg.Diff(once, twice); len(diffs) > 0 {
				t.Errorf("%s/%v not idempotent:\n  %s", g.Name, mode, strings.Join(diffs, "\n  "))
			}
		}
	}
}

// TestPFEAtLeastAsStrongAsPDE: everything pde achieves, pfe achieves
// too — the pfe result never has more statements, and its dynamic
// assignment counts never exceed pde's.
func TestPFEAtLeastAsStrongAsPDE(t *testing.T) {
	for _, g := range randomPrograms(t, 8) {
		pde, _, err := core.PDE(g)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		pfe, _, err := core.PFE(g)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if pfe.NumStmts() > pde.NumStmts() {
			t.Errorf("%s: pfe kept %d statements, pde only %d", g.Name, pfe.NumStmts(), pde.NumStmts())
		}
		imp := verify.MeasureImprovement(pde, pfe, 16, 512)
		if imp.OptAssigns > imp.OrigAssigns {
			t.Errorf("%s: pfe executes more assignments (%d) than pde (%d)",
				g.Name, imp.OptAssigns, imp.OrigAssigns)
		}
	}
}

// TestStaticBetterOnAcyclic checks Definition 3.6 literally on acyclic
// programs: the transformed program is at least as good as the
// original on every path.
func TestStaticBetterOnAcyclic(t *testing.T) {
	checked := 0
	for seed := 0; seed < 40 && checked < 15; seed++ {
		g := progen.Generate(progen.Params{Seed: int64(seed), Stmts: 25, LoopProb: 0.0001, BranchProb: 0.3})
		if !verify.IsAcyclic(g) {
			continue
		}
		checked++
		for _, mode := range []core.Mode{core.ModeDead, core.ModeFaint} {
			opt, _, err := core.Transform(g, core.Options{Mode: mode})
			if err != nil {
				t.Fatalf("%s/%v: %v", g.Name, mode, err)
			}
			bad, err := verify.BetterOrEqual(opt, g, 1<<15)
			if err != nil {
				t.Fatalf("%s/%v: %v", g.Name, mode, err)
			}
			if len(bad) > 0 {
				t.Errorf("%s/%v not better-or-equal:\n  %s\noriginal:\n%s\nopt:\n%s",
					g.Name, mode, strings.Join(bad, "\n  "), g, opt)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no acyclic programs generated; adjust generator parameters")
	}
}

// TestMaxRoundsStillSound: truncating the fixpoint iteration (the
// paper's Section 7 heuristic) must stay semantics-preserving and
// non-impairing — it only costs optimality.
func TestMaxRoundsStillSound(t *testing.T) {
	for _, g := range randomPrograms(t, 4) {
		for rounds := 1; rounds <= 3; rounds++ {
			opt, st, err := core.Transform(g, core.Options{Mode: core.ModeDead, MaxRounds: rounds})
			if err != nil {
				t.Fatalf("%s/r%d: %v", g.Name, rounds, err)
			}
			if st.Rounds > rounds {
				t.Errorf("%s: ran %d rounds, limit was %d", g.Name, st.Rounds, rounds)
			}
			rep := verify.CheckTransformed(g, opt, verify.Options{Seeds: 12, Fuel: 512})
			if !rep.OK() {
				t.Errorf("%s/r%d: %s", g.Name, rounds, rep)
			}
		}
	}
}

// TestTransformNeverGrowsDynamicCost measures the improvement metric
// itself: the optimized program's sampled dynamic assignment count is
// never larger, and the savings are nonnegative.
func TestTransformNeverGrowsDynamicCost(t *testing.T) {
	for _, g := range randomPrograms(t, 6) {
		opt, _, err := core.PDE(g)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		imp := verify.MeasureImprovement(g, opt, 24, 512)
		if imp.OptAssigns > imp.OrigAssigns {
			t.Errorf("%s: dynamic assignments grew %d -> %d", g.Name, imp.OrigAssigns, imp.OptAssigns)
		}
		if imp.Savings() < 0 {
			t.Errorf("%s: negative savings %f", g.Name, imp.Savings())
		}
	}
}

// TestOptimumIsStableUnderBothSteps: the pde result is simultaneously
// a fixpoint of elimination and of sinking — Section 5.4's
// termination condition, asserted directly on the outputs.
func TestOptimumIsStableUnderBothSteps(t *testing.T) {
	for _, g := range randomPrograms(t, 6) {
		opt, _, err := core.PDE(g)
		if err != nil {
			t.Fatal(err)
		}
		// Elimination finds nothing.
		scratch := opt.Clone()
		if st := core.EliminateDead(scratch); st.Changed() {
			t.Errorf("%s: optimum still had %d dead assignments", g.Name, st.Removed)
		}
		// Sinking (on the split graph, as the driver runs it) finds
		// nothing.
		scratch2 := opt.Clone()
		cfg.SplitCriticalEdges(scratch2)
		if !core.SinkStable(scratch2) {
			t.Errorf("%s: optimum not sink-stable", g.Name)
		}
	}
}

// TestWorstCaseCodeGrowth constructs the §6.2 regime: one candidate
// assignment fanning out into k branches, each of which needs its own
// copy (every branch uses the value after locally clobbering an
// unrelated variable, so the copies cannot re-merge). The peak size
// grows with the fan-out — w > 1 — but stays bounded by the paper's
// O(b) argument (inserted instances ≤ instructions on any acyclic
// path).
func TestWorstCaseCodeGrowth(t *testing.T) {
	const k = 8
	g := cfg.New("growth")
	top := g.AddNode("top")
	top.Stmts = []ir.Stmt{ir.Assign{LHS: "x", RHS: ir.Add(ir.V("a"), ir.V("b"))}}
	fan := g.AddNode("fan")
	g.AddEdge(g.Start, top)
	g.AddEdge(top, fan)
	join := g.AddNode("join")
	for i := 0; i < k; i++ {
		arm := g.AddNode(fmt.Sprintf("arm%d", i))
		// Each arm redefines x on a sub-branch, making the
		// top-level assignment partially dead per arm, then uses
		// x: a copy must materialize in each arm.
		arm.Stmts = []ir.Stmt{
			ir.Assign{LHS: "y", RHS: ir.C(int64(i))},
			ir.Out{Arg: ir.Add(ir.V("x"), ir.V("y"))},
		}
		g.AddEdge(fan, arm)
		g.AddEdge(arm, join)
	}
	g.AddEdge(join, g.End)
	cfg.MustValidate(g)

	opt, st, err := core.PDE(g)
	if err != nil {
		t.Fatal(err)
	}
	if st.GrowthFactor() <= 1 {
		t.Errorf("expected code growth, w = %.3f", st.GrowthFactor())
	}
	// The single occurrence became one per arm.
	count := 0
	for _, n := range opt.Nodes() {
		for _, s := range n.Stmts {
			if s.String() == "x := a+b" {
				count++
			}
		}
	}
	if count != k {
		t.Errorf("expected %d fanned-out copies, found %d:\n%s", k, count, opt)
	}
	// Still semantics preserving and never worse per execution.
	rep := verify.CheckTransformed(g, opt, verify.Options{Seeds: 48})
	if !rep.OK() {
		t.Error(rep)
	}
}
