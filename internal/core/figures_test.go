package core_test

import (
	"strings"
	"testing"

	"pdce/internal/cfg"
	"pdce/internal/core"
	"pdce/internal/figures"
)

// TestFigures runs pde and pfe over every paper figure and compares
// the result with the paper's expected transformation.
func TestFigures(t *testing.T) {
	for _, fig := range figures.All() {
		fig := fig
		t.Run(fig.Name, func(t *testing.T) {
			in := fig.Graph()
			before := in.Format()

			if want := fig.PDEGraph(); want != nil {
				got, st, err := core.PDE(in)
				if err != nil {
					t.Fatalf("PDE: %v", err)
				}
				if diffs := cfg.Diff(got, want); len(diffs) > 0 {
					t.Errorf("PDE result mismatch (rounds=%d):\n  %s\ngot:\n%s\nwant:\n%s",
						st.Rounds, strings.Join(diffs, "\n  "), got, want)
				}
			}
			if want := fig.PFEGraph(); want != nil {
				got, st, err := core.PFE(in)
				if err != nil {
					t.Fatalf("PFE: %v", err)
				}
				if diffs := cfg.Diff(got, want); len(diffs) > 0 {
					t.Errorf("PFE result mismatch (rounds=%d):\n  %s\ngot:\n%s\nwant:\n%s",
						st.Rounds, strings.Join(diffs, "\n  "), got, want)
				}
			}
			if after := in.Format(); after != before {
				t.Errorf("input graph was mutated by the driver:\nbefore:\n%s\nafter:\n%s", before, after)
			}
		})
	}
}

// TestFiguresIdempotent checks that re-running the driver on its own
// output changes nothing — the fixpoint property of Section 5.4.
func TestFiguresIdempotent(t *testing.T) {
	for _, fig := range figures.All() {
		fig := fig
		t.Run(fig.Name, func(t *testing.T) {
			for _, mode := range []core.Mode{core.ModeDead, core.ModeFaint} {
				once, _, err := core.Transform(fig.Graph(), core.Options{Mode: mode})
				if err != nil {
					t.Fatalf("%v: %v", mode, err)
				}
				twice, st, err := core.Transform(once, core.Options{Mode: mode})
				if err != nil {
					t.Fatalf("%v second run: %v", mode, err)
				}
				if diffs := cfg.Diff(once, twice); len(diffs) > 0 {
					t.Errorf("%v not idempotent (rounds=%d):\n  %s", mode, st.Rounds, strings.Join(diffs, "\n  "))
				}
			}
		})
	}
}
