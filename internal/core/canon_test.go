package core_test

import (
	"strings"
	"testing"

	"pdce/internal/cfg"
	"pdce/internal/core"
	"pdce/internal/figures"
	"pdce/internal/progen"
	"pdce/internal/verify"
)

func TestCanonicalizeOrdersIndependentStatements(t *testing.T) {
	g := parse(t, `
node 1 { b := 2; a := 1; out(a+b) }
edge s 1
edge 1 e
`)
	core.Canonicalize(g)
	if got := stmtsOf(t, g, "1"); got != "a := 1; b := 2; out(a+b)" {
		t.Errorf("canonical order = %q", got)
	}
}

func TestCanonicalizeRespectsDependences(t *testing.T) {
	cases := []struct{ name, stmts, want string }{
		{"flow dependence", "b := 1; a := b+1", "b := 1; a := b+1"},
		{"anti dependence", "z := a; a := 1", "z := a; a := 1"},
		{"output dependence", "x := 2; x := 1", "x := 2; x := 1"},
		{"relevant order", "out(2); out(1)", "out(2); out(1)"},
		{"assign past out ok", "out(z); a := 1", "a := 1; out(z)"},
		{"assign used by out", "out(a); a := 1", "out(a); a := 1"},
	}
	for _, c := range cases {
		g := parse(t, "node 1 { "+c.stmts+" }\nnode 2 { out(x+a+b+z) }\nedge s 1\nedge 1 2\nedge 2 e\n")
		core.Canonicalize(g)
		if got := stmtsOf(t, g, "1"); got != c.want {
			t.Errorf("%s: canonical = %q, want %q", c.name, got, c.want)
		}
	}
}

func TestCanonicalizeNeverMovesBranch(t *testing.T) {
	g := parse(t, `
node 1 { z := 1; branch(c>0) }
node 2 { out(z) }
node 3 { out(0) }
node 4 {}
edge s 1
edge 1 2
edge 1 3
edge 2 4
edge 3 4
edge 4 e
`)
	core.Canonicalize(g)
	if got := stmtsOf(t, g, "1"); got != "z := 1; branch(c>0)" {
		t.Errorf("branch moved: %q", got)
	}
	cfg.MustValidate(g)
}

func TestCanonicalizePreservesSemantics(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		g := progen.Generate(progen.Params{Seed: seed, Stmts: 50, Vars: 5, LoopProb: 0.1, BranchProb: 0.25})
		c := g.Clone()
		core.Canonicalize(c)
		rep := verify.CheckTransformed(g, c, verify.Options{Seeds: 24, Fuel: 512})
		if !rep.OK() {
			t.Errorf("seed %d: canonicalization broke semantics: %s", seed, rep)
		}
		// Idempotent.
		c2 := c.Clone()
		core.Canonicalize(c2)
		if !cfg.Equal(c, c2) {
			t.Errorf("seed %d: canonicalization not idempotent", seed)
		}
	}
}

// TestChaoticIterationReachesSameOptimum validates Theorem 3.7: any
// chaotic interleaving of elimination and sinking steps converges to
// the same program as the deterministic driver, up to the canonical
// intra-block reordering the paper permits.
func TestChaoticIterationReachesSameOptimum(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		params := progen.Params{Seed: seed, Stmts: 45, Vars: 5, LoopProb: 0.15, BranchProb: 0.25}
		if seed%4 == 1 {
			params.Irreducible = true
		}
		g := progen.Generate(params)
		for _, mode := range []core.Mode{core.ModeDead, core.ModeFaint} {
			want, _, err := core.Transform(g, core.Options{Mode: mode})
			if err != nil {
				t.Fatalf("seed %d/%v: %v", seed, mode, err)
			}
			for chaosSeed := int64(0); chaosSeed < 3; chaosSeed++ {
				got, _, err := core.TransformChaotic(g, mode, chaosSeed*7+1)
				if err != nil {
					t.Fatalf("seed %d/%v/chaos %d: %v", seed, mode, chaosSeed, err)
				}
				if !core.CanonicallyEqual(got, want) {
					ca, cb := got.Clone(), want.Clone()
					core.Canonicalize(ca)
					core.Canonicalize(cb)
					t.Errorf("seed %d/%v/chaos %d: chaotic result differs from deterministic optimum:\n  %s",
						seed, mode, chaosSeed,
						strings.Join(cfg.Diff(ca, cb), "\n  "))
				}
			}
		}
	}
}

// TestChaoticOnFigures: the chaotic driver reproduces every paper
// figure as well.
func TestChaoticOnFigures(t *testing.T) {
	for _, fig := range figures.All() {
		want := fig.PDEGraph()
		if want == nil {
			continue
		}
		got, _, err := core.TransformChaotic(fig.Graph(), core.ModeDead, 42)
		if err != nil {
			t.Fatalf("%s: %v", fig.Name, err)
		}
		if !core.CanonicallyEqual(got, want) {
			t.Errorf("%s: chaotic driver missed the paper's result:\n%s\nvs\n%s", fig.Name, got, want)
		}
	}
}

// TestOrderIndependenceOfDriverPhases: running sink before eliminate
// in every round reaches the same canonical optimum as the default
// eliminate-first driver — the per-round phase order is immaterial.
func TestOrderIndependenceOfDriverPhases(t *testing.T) {
	// The chaotic driver with alternating-coin seeds covers this
	// implicitly, but pin one explicit sink-first schedule: seed the
	// rng so that the first step is a sink (probe a few seeds).
	g := progen.Generate(progen.Params{Seed: 3, Stmts: 60, Vars: 5, BranchProb: 0.3})
	want, _, err := core.PDE(g)
	if err != nil {
		t.Fatal(err)
	}
	for chaos := int64(0); chaos < 8; chaos++ {
		got, _, err := core.TransformChaotic(g, core.ModeDead, chaos)
		if err != nil {
			t.Fatal(err)
		}
		if !core.CanonicallyEqual(got, want) {
			t.Fatalf("chaos seed %d diverged", chaos)
		}
	}
}

// TestObserverSeesSecondOrderEffects watches the driver on the
// Figure 3 pair: the observer must see at least two *changing* sink
// phases (the second assignment leaves first, unblocking the first —
// the sinking-sinking second-order effect) and a later changing
// elimination (the transient back-edge copy dying).
func TestObserverSeesSecondOrderEffects(t *testing.T) {
	fig, err := figures.ByNum(3)
	if err != nil {
		t.Fatal(err)
	}
	var events []core.PhaseEvent
	_, _, err = core.Transform(fig.Graph(), core.Options{
		Mode:    core.ModeDead,
		Observe: func(ev core.PhaseEvent) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	changingSinks, changingElims := 0, 0
	for _, ev := range events {
		if !ev.Changed {
			continue
		}
		switch ev.Phase {
		case "sink":
			changingSinks++
		case "eliminate":
			changingElims++
		}
	}
	if changingSinks < 2 {
		t.Errorf("saw %d changing sink phases, want >= 2 (second-order effect)", changingSinks)
	}
	if changingElims < 1 {
		t.Errorf("saw %d changing eliminations, want >= 1", changingElims)
	}
	// The final two events confirm stability.
	if len(events) < 2 {
		t.Fatal("too few events")
	}
	for _, ev := range events[len(events)-2:] {
		if ev.Changed {
			t.Error("final round reported changes")
		}
	}
	// Snapshots are isolated: mutating one must not affect others.
	first := events[0].Graph
	firstText := first.Format()
	events[1].Graph.Nodes()[2].Stmts = nil
	if first.Format() != firstText {
		t.Error("observer snapshots share state")
	}
}
