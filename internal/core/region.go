package core

import (
	"pdce/internal/analysis"
	"pdce/internal/cfg"
)

// HotPredicate selects the blocks the optimizer may rearrange — the
// "hot areas" localization the paper proposes in Section 7 for
// limiting the cost of the exhaustive iteration. Cold blocks are
// treated as opaque: no candidate inside them moves, nothing sinks
// through them (they block every pattern, so arriving code lands at
// their entry), and no assignment inside them is eliminated. The
// restriction is purely a strengthening of the local predicates, so
// correctness is inherited from the unrestricted algorithm.
type HotPredicate func(n *cfg.Node) bool

// effectiveHot extends the user predicate to synthetic nodes, which
// did not exist when the predicate was written: a synthetic node is
// hot when any neighbour is (it sits on an edge between them and must
// not cut a hot path).
func effectiveHot(hot HotPredicate) HotPredicate {
	return func(n *cfg.Node) bool {
		if !n.Synthetic {
			return hot(n)
		}
		for _, p := range n.Preds() {
			if !p.Synthetic && hot(p) {
				return true
			}
		}
		for _, s := range n.Succs() {
			if !s.Synthetic && hot(s) {
				return true
			}
		}
		return false
	}
}

// restrictLocals strengthens the sinking-local predicates for cold
// blocks: no candidates, everything blocked.
func restrictLocals(g *cfg.Graph, l *analysis.Locals, hot HotPredicate) {
	for _, n := range g.Nodes() {
		if hot(n) {
			continue
		}
		l.LocDelayed[n.ID].ClearAll()
		l.LocBlocked[n.ID].SetAll()
		l.Cands[n.ID] = l.Cands[n.ID][:0]
	}
}

// sinkHot is Sink restricted to a hot region.
func sinkHot(g *cfg.Graph, hot HotPredicate) SinkStats {
	pt := g.CollectPatterns()
	ix := analysis.NewPatternIndex(pt)
	locals := ix.Locals(g)
	restrictLocals(g, locals, hot)
	delay := analysis.DelayabilityWithLocals(g, locals)
	return applySink(g, ix, locals, delay, nil, nil)
}

// eliminateDeadHot is EliminateDead restricted to hot blocks. The
// analysis stays global (deadness must account for cold uses); only
// the removals are filtered.
func eliminateDeadHot(g *cfg.Graph, hot HotPredicate) ElimStats {
	return filterElim(g, hot, EliminateDead)
}

// eliminateFaintHot is EliminateFaint restricted to hot blocks.
func eliminateFaintHot(g *cfg.Graph, hot HotPredicate) ElimStats {
	return filterElim(g, hot, EliminateFaint)
}

// filterElim runs the full elimination on a scratch copy and applies
// only the removals in hot blocks back to g. Running the analysis on g
// and filtering directly would be equally correct; the scratch copy
// keeps the hot/cold split out of the elimination kernels.
func filterElim(g *cfg.Graph, hot HotPredicate, elim func(*cfg.Graph) ElimStats) ElimStats {
	scratch := g.Clone()
	full := elim(scratch)
	if full.Removed == 0 {
		return full
	}
	var st ElimStats
	st.SolverWork = full.SolverWork
	for _, n := range g.Nodes() {
		if !hot(n) {
			continue
		}
		sn, _ := scratch.NodeByLabel(n.Label)
		if len(sn.Stmts) != len(n.Stmts) {
			st.Removed += len(n.Stmts) - len(sn.Stmts)
			n.Stmts = append(n.Stmts[:0], sn.Stmts...)
		}
	}
	return st
}
